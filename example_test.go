package microbandit_test

import (
	"fmt"

	"microbandit"
)

// ExampleAgent shows the bandit-step protocol on a deterministic
// environment: arm 2 always pays best, and DUCB finds it.
func ExampleAgent() {
	agent := microbandit.MustNew(microbandit.Config{
		Arms:      4,
		Policy:    microbandit.NewDUCB(0.05, 0.99),
		Normalize: true,
		Seed:      1,
	})
	rewards := []float64{0.2, 0.4, 0.9, 0.1}
	for step := 0; step < 200; step++ {
		arm := agent.Step()
		agent.Reward(rewards[arm])
	}
	fmt.Println("best arm:", agent.BestArm())
	// Output: best arm: 2
}

// ExampleNewPrefetchAgent builds the paper's prefetching configuration
// (Table 6) and reports its hardware storage footprint: 8 bytes per arm.
func ExampleNewPrefetchAgent() {
	agent := microbandit.NewPrefetchAgent(1)
	fmt.Println("arms:", agent.Arms())
	fmt.Println("storage bytes:", agent.Arms()*8)
	// Output:
	// arms: 11
	// storage bytes: 88
}

// ExampleNewDUCBSweepMeta demonstrates the §9 hierarchical extension: a
// high-level bandit choosing among DUCB hyperparameter variants.
func ExampleNewDUCBSweepMeta() {
	meta, err := microbandit.NewDUCBSweepMeta(6, [][2]float64{
		{0.04, 0.99},
		{0.04, 0.999},
	}, true, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	for step := 0; step < 100; step++ {
		arm := meta.Step()
		meta.Reward(float64(arm)) // higher arms pay more
	}
	fmt.Println("levels:", meta.Levels(), "arms:", meta.Arms(), "best arm:", meta.BestLevel() >= 0)
	// Output: levels: 2 arms: 6 best arm: true
}
