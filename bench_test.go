package microbandit_test

// The root benchmark suite regenerates every table and figure of the
// paper (DESIGN.md's per-experiment index maps each benchmark to its
// experiment). Each benchmark runs the corresponding harness experiment
// at a compact preset and reports the experiment's headline metric via
// b.ReportMetric, so `go test -bench=. -benchmem` both times the
// experiment pipelines and prints the reproduced numbers.
//
// cmd/mab-report regenerates the full rendered tables at larger presets.

import (
	"testing"

	"microbandit/internal/harness"
	"microbandit/internal/obs"
)

// benchOptions is the compact preset used by the benchmark suite: small
// enough that every experiment completes in seconds, large enough that
// the learning dynamics (round-robin phase + main loop) are exercised.
func benchOptions() harness.Options {
	o := harness.Smoke()
	o.Insts = 400_000
	o.StepL2 = 250
	o.MaxApps = 2
	o.SMTCycles = 400_000
	o.EpochLen = 4 * 1024
	o.RREpochs = 4
	o.MaxMixes = 4
	// The suite benches the experiments themselves, so runs stay serial;
	// the *Parallel variants below measure the worker-pool speedup.
	o.Workers = 1
	return o
}

// --- Parallel-engine benches ------------------------------------------
//
// The serial benchmarks above fix Workers=1; these two rerun the
// heaviest experiments with the default worker pool (one worker per
// CPU), so `go test -bench 'Table8|Fig5'` shows the serial-vs-parallel
// wall-clock side by side. cmd/mab-report -parbench records the same
// comparison to BENCH_parallel.json.

func BenchmarkTable8Parallel(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	o.Workers = 0 // default pool: one worker per CPU
	for i := 0; i < b.N; i++ {
		res := harness.Table8(o)
		b.ReportMetric(res.Algos["DUCB"].GMean, "ducb_gmean_%")
	}
}

func BenchmarkFig5Parallel(b *testing.B) {
	o := benchOptions()
	o.MaxMixes = 2
	o.SMTCycles = 150_000
	o.EpochLen = 2048
	o.Workers = 0 // default pool: one worker per CPU
	for i := 0; i < b.N; i++ {
		res := harness.Fig5(o)
		if len(res.Rows) > 0 {
			b.ReportMetric(res.Rows[0].BestDelta*100, "best_vs_choi_%")
		}
	}
}

func BenchmarkFig2TemporalHomogeneity(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res := harness.Fig2(o)
		b.ReportMetric(res.AvgTop1*100, "top1_%")
		b.ReportMetric(res.AvgTop2*100, "top2_%")
	}
}

func BenchmarkFig5PolicySpace(b *testing.B) {
	o := benchOptions()
	o.MaxMixes = 2
	o.SMTCycles = 150_000
	o.EpochLen = 2048
	for i := 0; i < b.N; i++ {
		res := harness.Fig5(o)
		if len(res.Rows) > 0 {
			b.ReportMetric(res.Rows[0].BestDelta*100, "best_vs_choi_%")
			b.ReportMetric(res.Rows[0].WorstDelta*100, "worst_vs_choi_%")
		}
	}
}

func BenchmarkTable8PrefetchTuneSet(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Table8(o)
		b.ReportMetric(res.Algos["DUCB"].GMean, "ducb_gmean_%")
		b.ReportMetric(res.Algos["Pythia"].GMean, "pythia_gmean_%")
		b.ReportMetric(res.Algos["Single"].Min, "single_min_%")
	}
}

func BenchmarkTable9SMTTuneSet(b *testing.B) {
	o := benchOptions()
	o.MaxMixes = 2
	for i := 0; i < b.N; i++ {
		res := harness.Table9(o)
		b.ReportMetric(res.Algos["DUCB"].GMean, "ducb_gmean_%")
		b.ReportMetric(res.Algos["Choi"].GMean, "choi_gmean_%")
	}
}

func BenchmarkFig7ExplorationTraces(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels := append(harness.Fig7Prefetch(o), harness.Fig7SMT(o)...)
		switches := 0
		for _, p := range panels {
			switches += len(p.Arms)
		}
		b.ReportMetric(float64(len(panels)), "panels")
		b.ReportMetric(float64(switches), "arm_switches")
	}
}

func BenchmarkFig8SingleCore(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res := harness.Fig8(o)
		b.ReportMetric(res.Norm["Bandit"]["all"], "bandit_norm")
		b.ReportMetric(res.Speedup("Bandit", "Stride"), "vs_stride_%")
		b.ReportMetric(res.Speedup("Bandit", "Pythia"), "vs_pythia_%")
	}
}

func BenchmarkFig9Classification(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Fig9(o)
		for _, row := range res.Rows {
			if row.Kind == "Bandit" {
				b.ReportMetric(row.Timely, "bandit_timely")
				b.ReportMetric(row.Wrong, "bandit_wrong")
			}
		}
	}
}

func BenchmarkFig10BandwidthSweep(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Fig10(o)
		// The paper's headline: Bandit vs Pythia at the most constrained
		// configuration (150 MTPS).
		b.ReportMetric((res.Bandit[0]/res.Pythia[0]-1)*100, "150mtps_vs_pythia_%")
	}
}

func BenchmarkFig11AltHierarchy(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Fig11(o)
		b.ReportMetric(res.Norm["Bandit"]["all"], "bandit_norm")
	}
}

func BenchmarkFig12MultiLevel(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Fig12(o)
		for j, k := range res.Kinds {
			if k == "Stride_Bandit" {
				b.ReportMetric(res.Norm[j], "stride_bandit_norm")
			}
		}
	}
}

func BenchmarkFig13SMTMixes(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res := harness.Fig13(o)
		b.ReportMetric((res.GMeanVsChoi-1)*100, "vs_choi_%")
		b.ReportMetric((res.GMeanVsIC-1)*100, "vs_icount_%")
	}
}

func BenchmarkFig14FourCore(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Fig14(o)
		for j, k := range res.Kinds {
			if k == "Bandit" {
				b.ReportMetric(res.Norm[j], "bandit_norm")
			}
		}
	}
}

func BenchmarkFig15RenameBreakdown(b *testing.B) {
	o := benchOptions()
	o.MaxMixes = 2
	for i := 0; i < b.N; i++ {
		res := harness.Fig15(o)
		b.ReportMetric(res.Fractions["Bandit"]["running"]*100, "bandit_running_%")
		b.ReportMetric(res.Fractions["Choi"]["running"]*100, "choi_running_%")
	}
}

func BenchmarkAreaPowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AreaPower()
		b.ReportMetric(float64(res.Prefetch.StorageBytes), "storage_B")
		b.ReportMetric(res.AreaFrac*100, "die_area_%")
	}
}

// --- Ablation benches (DESIGN.md design choices) ----------------------

func BenchmarkAblationNormalization(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.AblationNormalization(o)
		b.ReportMetric(res.Rows[0].Value*100, "with_norm_%best")
		b.ReportMetric(res.Rows[1].Value*100, "raw_%best")
	}
}

func BenchmarkAblationRRRestart(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	o.Insts = 250_000
	for i := 0; i < b.N; i++ {
		res := harness.AblationRRRestart(o)
		b.ReportMetric(res.Rows[0].Value, "p0_sumipc")
		b.ReportMetric(res.Rows[1].Value, "p001_sumipc")
	}
}

func BenchmarkAblationStepRR(b *testing.B) {
	o := benchOptions()
	o.MaxMixes = 2
	for i := 0; i < b.N; i++ {
		res := harness.AblationStepRR(o)
		b.ReportMetric(res.Rows[0].Value, "rr1_sumipc")
		b.ReportMetric(res.Rows[len(res.Rows)-1].Value, "rrlong_sumipc")
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	o := benchOptions()
	o.Insts = 600_000 // long enough to cross an mcf phase at smoke scale
	for i := 0; i < b.N; i++ {
		res := harness.AblationGamma(o)
		b.ReportMetric(res.Rows[2].Value, "g0.999_ipc")
		b.ReportMetric(res.Rows[4].Value, "ucb_ipc")
	}
}

func BenchmarkAblationArms(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.AblationArms(o)
		b.ReportMetric(res.Rows[0].Value, "arms11_ipc")
		b.ReportMetric(res.Rows[2].Value, "arms2_ipc")
	}
}

func BenchmarkExtensionsBOPAndMeta(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.Extras(o)
		b.ReportMetric(res.BOPNorm, "bop_norm")
		b.ReportMetric(res.BanditNorm, "bandit_norm")
		b.ReportMetric(res.MetaNorm, "meta_norm")
	}
}

func BenchmarkRewardMetrics(b *testing.B) {
	o := benchOptions()
	o.MaxMixes = 2
	for i := 0; i < b.N; i++ {
		res := harness.RewardMetrics(o)
		b.ReportMetric(res.Fairness[0], "sumipc_fairness")
		b.ReportMetric(res.Fairness[2], "harmonic_fairness")
	}
}

func BenchmarkTuningSweep(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	o.Insts = 200_000
	for i := 0; i < b.N; i++ {
		res := harness.Tuning(o)
		b.ReportMetric(res.Best.GMeanIPC, "best_gmean_ipc")
	}
}

// BenchmarkAgentStep isolates the reusable agent itself: the per-step
// cost of the DUCB arm selection and update (the operation the hardware
// agent performs once per bandit step).
func BenchmarkAgentStep(b *testing.B) {
	agent := newBenchAgent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arm := agent.Step()
		agent.Reward(1.0 + float64(arm)*0.01)
	}
}

// BenchmarkAgentStepTelemetryOff is the zero-cost-when-disabled contract
// for the obs layer: the telemetry hooks are compiled into the agent but
// no recorder is attached, so the per-step cost and allocation count must
// match BenchmarkAgentStep (`go test -bench AgentStep` shows the pair
// side by side).
func BenchmarkAgentStepTelemetryOff(b *testing.B) {
	agent := newBenchAgent()
	agent.SetRecorder(nil, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arm := agent.Step()
		agent.Reward(1.0 + float64(arm)*0.01)
	}
}

// BenchmarkAgentStepTelemetryNop attaches the drop-everything recorder,
// bounding the cost of the emission path itself (event construction plus
// the interface call) independent of any real sink.
func BenchmarkAgentStepTelemetryNop(b *testing.B) {
	agent := newBenchAgent()
	agent.SetRecorder(obs.Nop{}, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arm := agent.Step()
		agent.Reward(1.0 + float64(arm)*0.01)
	}
}

func BenchmarkAblationTargetLevel(b *testing.B) {
	o := benchOptions()
	o.MaxApps = 1
	for i := 0; i < b.N; i++ {
		res := harness.AblationTargetLevel(o)
		b.ReportMetric(res.Rows[0].Value, "l2fill_ipc")
		b.ReportMetric(res.Rows[1].Value, "extended_ipc")
	}
}
