module microbandit

go 1.22
