// Command mab-prefetch runs prefetching simulations: one or more
// applications from the synthetic catalog under one prefetcher
// configuration, printing IPC plus hierarchy statistics. It is the
// interactive probe for the prefetching use case (the batch experiments
// live in mab-report).
//
// Usage:
//
//	mab-prefetch -app lbm17 -pf bandit [-insts 4000000] [-mtps 2400]
//	             [-algo ducb|ucb|eps|single|periodic|static:N]
//	             [-faults noise:0.5,stuckarm:1] [-trace] [-list]
//	             [-telemetry out.jsonl] [-telemetry-every 100]
//	mab-prefetch -app lbm17,mcf06,bfs -j 4
//	mab-prefetch -app all -j 0
//
// With a comma-separated -app list (or "all"), the simulations fan out
// across -j worker goroutines and the reports print in input order. A
// failing app is reported on stderr without taking down its siblings.
// Bad flag values exit 2 with the valid choices.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/fault"
	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/par"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
	"microbandit/internal/version"
)

// runConfig carries the per-run flag values into the worker pool.
type runConfig struct {
	pfName    string
	algo      string
	insts     int64
	stepL2    int
	seed      uint64
	showTrace bool
	memCfg    mem.Config
	faults    fault.Set
	obsEvery  int
}

func main() {
	appNames := flag.String("app", "lbm17", "application(s): a catalog name, a comma-separated list, or \"all\"")
	pfName := flag.String("pf", "bandit", "prefetcher: "+strings.Join(prefetch.Names(), ", "))
	algo := flag.String("algo", "ducb", "bandit algorithm: "+strings.Join(core.AlgoNames(), ", "))
	insts := flag.Int64("insts", 4_000_000, "instructions to simulate")
	mtps := flag.Float64("mtps", 2400, "DRAM channel rate (mega-transfers/s)")
	altCache := flag.Bool("altcache", false, "use the Fig. 11 cache hierarchy (1MB L2 / 1.5MB LLC)")
	stepL2 := flag.Int("step", 1000, "bandit step length in L2 demand accesses")
	seed := flag.Uint64("seed", 1, "random seed")
	faultSpec := flag.String("faults", "", "inject faults: comma-separated kind:intensity[:seed] ("+strings.Join(fault.KindNames(), ", ")+")")
	showTrace := flag.Bool("trace", false, "print the arm exploration trace")
	telemetry := flag.String("telemetry", "", "write a JSONL telemetry event stream to this path (plus timeline.csv/regret.csv alongside)")
	telemetryEvery := flag.Int("telemetry-every", 100, "telemetry snapshot/interval cadence in bandit steps")
	list := flag.Bool("list", false, "list catalog applications and exit")
	workers := flag.Int("j", 0, "worker goroutines for multi-app runs (0 = one per CPU)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("mab-prefetch", version.String())
		return
	}
	if *list {
		for _, a := range trace.Catalog() {
			fmt.Printf("%-16s %s\n", a.Name, a.Suite)
		}
		return
	}

	// Validate every flag before any simulation starts: bad values exit 2
	// with usage, never a mid-run panic.
	if *insts <= 0 {
		usageErr(fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	if *stepL2 <= 0 {
		usageErr(fmt.Errorf("-step must be positive, got %d", *stepL2))
	}
	if *mtps <= 0 {
		usageErr(fmt.Errorf("-mtps must be positive, got %g", *mtps))
	}
	if *workers < 0 {
		usageErr(fmt.Errorf("-j must be >= 0, got %d", *workers))
	}
	if *telemetryEvery <= 0 {
		usageErr(fmt.Errorf("-telemetry-every must be positive, got %d", *telemetryEvery))
	}
	faults, err := fault.ParseSet(*faultSpec)
	if err != nil {
		usageErr(fmt.Errorf("-faults: %v", err))
	}

	var apps []trace.App
	if *appNames == "all" {
		apps = trace.Catalog()
	} else {
		for _, name := range strings.Split(*appNames, ",") {
			app, err := trace.ByName(strings.TrimSpace(name))
			if err != nil {
				usageErr(fmt.Errorf("%v (valid: %s, or \"all\")", err, catalogNames()))
			}
			apps = append(apps, app)
		}
	}

	memCfg := mem.DefaultConfig()
	if *altCache {
		memCfg = mem.AltCacheConfig()
	}
	memCfg.MTPS = *mtps
	cfg := runConfig{
		pfName: *pfName, algo: *algo, insts: *insts, stepL2: *stepL2,
		seed: *seed, showTrace: *showTrace, memCfg: memCfg, faults: faults,
		obsEvery: *telemetryEvery,
	}

	// Validate the prefetcher/algorithm configuration once before fanning
	// out.
	if _, err := simulate(context.Background(), apps[0], cfg, true, nil); err != nil {
		usageErr(err)
	}
	// Telemetry slots are claimed by app index, so the assembled stream
	// is byte-identical at every -j value.
	var collector *obs.Collector
	if *telemetry != "" {
		collector = obs.NewCollector(*telemetryEvery)
	}
	// SIGINT/SIGTERM cancels the fan-out: in-flight simulations stop at
	// the next 100k-instruction chunk, unstarted apps never run, and
	// everything that did finish still prints (plus telemetry) below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Each app is an independent simulation with its own hierarchy and
	// seed; reports come back in input order regardless of worker count. A
	// failing or panicking run becomes a per-job error; the siblings'
	// reports still print and the process exits 1.
	type jobIn struct {
		i   int
		app trace.App
	}
	jobs := make([]jobIn, len(apps))
	for i, app := range apps {
		jobs[i] = jobIn{i, app}
	}
	reports, errs := par.RunCtx(ctx, par.CtxOpts{Workers: *workers}, jobs, func(ctx context.Context, j jobIn) (string, error) {
		var rec obs.Recorder
		if collector != nil {
			rec = collector.Slot(j.i, j.app.Name)
		}
		return simulate(ctx, j.app, cfg, false, rec)
	})
	failed := 0
	for i, report := range reports {
		if errs[i] != nil {
			if !errors.Is(errs[i], context.Canceled) {
				failed++
				fmt.Fprintf(os.Stderr, "mab-prefetch: %s: %v\n", apps[i].Name, errs[i])
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(report)
	}
	if collector != nil {
		if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "mab-prefetch: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "mab-prefetch: interrupted; results above are partial")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mab-prefetch: %d of %d runs failed; results above are partial\n", failed, len(apps))
		os.Exit(1)
	}
}

// simulate runs one app and returns its formatted report. dryRun only
// checks that the prefetcher/algorithm configuration parses. rec, when
// non-nil, receives the run's telemetry stream. If ctx is canceled
// mid-run the simulation stops at the next chunk boundary and the report
// covers the instructions that did run, flagged as partial.
func simulate(ctx context.Context, app trace.App, cfg runConfig, dryRun bool, rec obs.Recorder) (string, error) {
	seed := cfg.seed
	hier := mem.NewHierarchy(cfg.memCfg)
	if bf := fault.Bandwidth(cfg.faults, seed); bf != nil {
		hier.DRAM().SetBandwidthFault(bf)
	}
	gen := fault.Generator(app.New(seed), cfg.faults, seed)
	c := cpu.New(cpu.DefaultConfig(), hier, gen)

	l2, tun, err := prefetch.NewByName(cfg.pfName, seed)
	if err != nil {
		return "", err
	}
	var ctrl core.Controller
	if tun != nil {
		ctrl, err = core.ParseAlgo(cfg.algo, tun.NumArms(), seed, true)
		if err != nil {
			return "", err
		}
		// Attach telemetry before the fault wrapper so the stream
		// reports the agent's decisions, not the fault's corruptions.
		obs.Attach(ctrl, rec, cfg.obsEvery)
		ctrl = fault.Controller(ctrl, cfg.faults, seed)
		tun = fault.Tunable(tun, cfg.faults, seed)
	}
	if dryRun {
		return "", nil
	}
	if rec != nil {
		for _, spec := range cfg.faults {
			rec.Record(obs.Event{Kind: obs.KindFault, Label: spec.String()})
		}
	}

	r := cpu.NewRunner(c, l2, ctrl, tun)
	r.StepL2 = cfg.stepL2
	if cfg.showTrace {
		r.RecordArms()
	}
	if rec != nil {
		r.Obs = rec
		r.ObsEvery = cfg.obsEvery
	}
	interrupted := r.RunCtx(ctx, cfg.insts) != nil
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindRunEnd, Step: r.Steps(),
			Fields: obs.NewFields().Set(obs.FieldIPC, c.IPC())})
	}

	var b strings.Builder
	st := hier.Stats()
	cl := hier.Classify()
	fmt.Fprintf(&b, "app=%s prefetcher=%s insts=%d cycles=%d\n", app.Name, cfg.pfName, c.Insts(), c.Cycles())
	if interrupted {
		fmt.Fprintf(&b, "INTERRUPTED after %d of %d instructions; statistics are partial\n", c.Insts(), cfg.insts)
	}
	if len(cfg.faults) > 0 {
		fmt.Fprintf(&b, "faults: %s\n", cfg.faults.String())
	}
	fmt.Fprintf(&b, "IPC: %.4f\n", c.IPC())
	fmt.Fprintf(&b, "L2 demand accesses: %d   LLC misses: %d   DRAM reads: %d\n",
		st.L2Demand, st.LLCMisses, hier.DRAM().Reads())
	fmt.Fprintf(&b, "prefetches issued: %d   timely: %d   late: %d   wrong: %d   dropped: %d\n",
		st.PrefIssued, cl.Timely, cl.Late, cl.Wrong, st.PrefDropped)
	if ctrl != nil {
		fmt.Fprintf(&b, "bandit steps: %d\n", r.Steps())
	}
	if cfg.showTrace {
		b.WriteString("arm trace (cycle:arm):\n")
		for _, s := range r.ArmTrace {
			fmt.Fprintf(&b, "  %d:%d", s.Cycle, s.Arm)
		}
		b.WriteByte('\n')
		if agent, ok := ctrl.(*core.Agent); ok {
			fmt.Fprintf(&b, "final rTable: %v\n", agent.Rewards())
		}
	}
	return b.String(), nil
}

// catalogNames returns the valid -app values for error messages.
func catalogNames() string {
	var names []string
	for _, a := range trace.Catalog() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// usageErr reports a bad flag value and exits 2.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "mab-prefetch:", err)
	flag.Usage()
	os.Exit(2)
}
