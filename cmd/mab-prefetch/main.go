// Command mab-prefetch runs prefetching simulations: one or more
// applications from the synthetic catalog under one prefetcher
// configuration, printing IPC plus hierarchy statistics. It is the
// interactive probe for the prefetching use case (the batch experiments
// live in mab-report).
//
// Usage:
//
//	mab-prefetch -app lbm17 -pf bandit [-insts 4000000] [-mtps 2400]
//	             [-algo ducb|ucb|eps|single|periodic|static:N]
//	             [-trace] [-list]
//	mab-prefetch -app lbm17,mcf06,bfs -j 4
//	mab-prefetch -app all -j 0
//
// With a comma-separated -app list (or "all"), the simulations fan out
// across -j worker goroutines and the reports print in input order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/par"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// runConfig carries the per-run flag values into the worker pool.
type runConfig struct {
	pfName    string
	algo      string
	insts     int64
	stepL2    int
	seed      uint64
	showTrace bool
	memCfg    mem.Config
}

func main() {
	appNames := flag.String("app", "lbm17", "application(s): a catalog name, a comma-separated list, or \"all\"")
	pfName := flag.String("pf", "bandit", "prefetcher: none, stride, bingo, mlop, pythia, bandit")
	algo := flag.String("algo", "ducb", "bandit algorithm: ducb, ucb, eps, single, periodic, static:N")
	insts := flag.Int64("insts", 4_000_000, "instructions to simulate")
	mtps := flag.Float64("mtps", 2400, "DRAM channel rate (mega-transfers/s)")
	altCache := flag.Bool("altcache", false, "use the Fig. 11 cache hierarchy (1MB L2 / 1.5MB LLC)")
	stepL2 := flag.Int("step", 1000, "bandit step length in L2 demand accesses")
	seed := flag.Uint64("seed", 1, "random seed")
	showTrace := flag.Bool("trace", false, "print the arm exploration trace")
	list := flag.Bool("list", false, "list catalog applications and exit")
	workers := flag.Int("j", 0, "worker goroutines for multi-app runs (0 = one per CPU)")
	flag.Parse()

	if *list {
		for _, a := range trace.Catalog() {
			fmt.Printf("%-16s %s\n", a.Name, a.Suite)
		}
		return
	}

	var apps []trace.App
	if *appNames == "all" {
		apps = trace.Catalog()
	} else {
		for _, name := range strings.Split(*appNames, ",") {
			app, err := trace.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			apps = append(apps, app)
		}
	}

	memCfg := mem.DefaultConfig()
	if *altCache {
		memCfg = mem.AltCacheConfig()
	}
	memCfg.MTPS = *mtps
	cfg := runConfig{
		pfName: *pfName, algo: *algo, insts: *insts, stepL2: *stepL2,
		seed: *seed, showTrace: *showTrace, memCfg: memCfg,
	}

	// Validate the configuration once before fanning out.
	if _, err := simulate(apps[0], cfg, true); err != nil {
		fatal(err)
	}
	// Each app is an independent simulation with its own hierarchy and
	// seed; reports come back in input order regardless of worker count.
	type out struct {
		report string
		err    error
	}
	outs := par.Run(*workers, apps, func(app trace.App) out {
		report, err := simulate(app, cfg, false)
		return out{report, err}
	})
	for i, o := range outs {
		if o.err != nil {
			fatal(o.err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(o.report)
	}
}

// simulate runs one app and returns its formatted report. dryRun only
// checks that the prefetcher/algorithm configuration parses.
func simulate(app trace.App, cfg runConfig, dryRun bool) (string, error) {
	hier := mem.NewHierarchy(cfg.memCfg)
	c := cpu.New(cpu.DefaultConfig(), hier, app.New(cfg.seed))

	var (
		l2   prefetch.Prefetcher
		ctrl core.Controller
		tun  prefetch.Tunable
	)
	switch strings.ToLower(cfg.pfName) {
	case "none":
		l2 = prefetch.Null{}
	case "stride":
		l2 = prefetch.NewIPStride(64, 4)
	case "bingo":
		l2 = prefetch.NewBingo(64)
	case "mlop":
		l2 = prefetch.NewMLOP()
	case "pythia":
		l2 = prefetch.NewPythia(cfg.seed)
	case "bandit":
		ens := prefetch.NewTable7Ensemble()
		pol, err := banditPolicy(cfg.algo, ens.NumArms())
		if err != nil {
			return "", err
		}
		if pol != nil {
			ctrl = core.MustNew(core.Config{
				Arms: ens.NumArms(), Policy: pol, Normalize: true,
				Seed: cfg.seed, RecordTrace: true,
			})
		} else {
			// static:N
			n, _ := strconv.Atoi(strings.TrimPrefix(cfg.algo, "static:"))
			ctrl = core.FixedArm(n)
		}
		l2, tun = ens, ens
	default:
		return "", fmt.Errorf("unknown prefetcher %q", cfg.pfName)
	}
	if dryRun {
		return "", nil
	}

	r := cpu.NewRunner(c, l2, ctrl, tun)
	r.StepL2 = cfg.stepL2
	if cfg.showTrace {
		r.RecordArms()
	}
	r.Run(cfg.insts)

	var b strings.Builder
	st := hier.Stats()
	cl := hier.Classify()
	fmt.Fprintf(&b, "app=%s prefetcher=%s insts=%d cycles=%d\n", app.Name, cfg.pfName, c.Insts(), c.Cycles())
	fmt.Fprintf(&b, "IPC: %.4f\n", c.IPC())
	fmt.Fprintf(&b, "L2 demand accesses: %d   LLC misses: %d   DRAM reads: %d\n",
		st.L2Demand, st.LLCMisses, hier.DRAM().Reads())
	fmt.Fprintf(&b, "prefetches issued: %d   timely: %d   late: %d   wrong: %d   dropped: %d\n",
		st.PrefIssued, cl.Timely, cl.Late, cl.Wrong, st.PrefDropped)
	if ctrl != nil {
		fmt.Fprintf(&b, "bandit steps: %d\n", r.Steps())
	}
	if cfg.showTrace {
		b.WriteString("arm trace (cycle:arm):\n")
		for _, s := range r.ArmTrace {
			fmt.Fprintf(&b, "  %d:%d", s.Cycle, s.Arm)
		}
		b.WriteByte('\n')
		if agent, ok := ctrl.(*core.Agent); ok {
			fmt.Fprintf(&b, "final rTable: %v\n", agent.Rewards())
		}
	}
	return b.String(), nil
}

// banditPolicy parses the -algo flag; returns (nil, nil) for static:N.
func banditPolicy(name string, arms int) (core.Policy, error) {
	switch {
	case name == "ducb":
		return core.NewDUCB(core.PrefetchC, core.PrefetchGamma), nil
	case name == "ucb":
		return core.NewUCB(core.PrefetchC), nil
	case name == "eps":
		return core.NewEpsilonGreedy(0.05), nil
	case name == "single":
		return core.NewSingle(), nil
	case name == "periodic":
		return core.NewPeriodic(8, 4), nil
	case strings.HasPrefix(name, "static:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil || n < 0 || n >= arms {
			return nil, fmt.Errorf("bad static arm in %q (have %d arms)", name, arms)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mab-prefetch:", err)
	os.Exit(1)
}
