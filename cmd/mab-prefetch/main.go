// Command mab-prefetch runs a single prefetching simulation: one
// application from the synthetic catalog, one prefetcher configuration,
// and prints IPC plus hierarchy statistics. It is the interactive probe
// for the prefetching use case (the batch experiments live in
// mab-report).
//
// Usage:
//
//	mab-prefetch -app lbm17 -pf bandit [-insts 4000000] [-mtps 2400]
//	             [-algo ducb|ucb|eps|single|periodic|static:N]
//	             [-trace] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

func main() {
	appName := flag.String("app", "lbm17", "application from the synthetic catalog")
	pfName := flag.String("pf", "bandit", "prefetcher: none, stride, bingo, mlop, pythia, bandit")
	algo := flag.String("algo", "ducb", "bandit algorithm: ducb, ucb, eps, single, periodic, static:N")
	insts := flag.Int64("insts", 4_000_000, "instructions to simulate")
	mtps := flag.Float64("mtps", 2400, "DRAM channel rate (mega-transfers/s)")
	altCache := flag.Bool("altcache", false, "use the Fig. 11 cache hierarchy (1MB L2 / 1.5MB LLC)")
	stepL2 := flag.Int("step", 1000, "bandit step length in L2 demand accesses")
	seed := flag.Uint64("seed", 1, "random seed")
	showTrace := flag.Bool("trace", false, "print the arm exploration trace")
	list := flag.Bool("list", false, "list catalog applications and exit")
	flag.Parse()

	if *list {
		for _, a := range trace.Catalog() {
			fmt.Printf("%-16s %s\n", a.Name, a.Suite)
		}
		return
	}

	app, err := trace.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	memCfg := mem.DefaultConfig()
	if *altCache {
		memCfg = mem.AltCacheConfig()
	}
	memCfg.MTPS = *mtps

	hier := mem.NewHierarchy(memCfg)
	c := cpu.New(cpu.DefaultConfig(), hier, app.New(*seed))

	var (
		l2   prefetch.Prefetcher
		ctrl core.Controller
		tun  prefetch.Tunable
	)
	switch strings.ToLower(*pfName) {
	case "none":
		l2 = prefetch.Null{}
	case "stride":
		l2 = prefetch.NewIPStride(64, 4)
	case "bingo":
		l2 = prefetch.NewBingo(64)
	case "mlop":
		l2 = prefetch.NewMLOP()
	case "pythia":
		l2 = prefetch.NewPythia(*seed)
	case "bandit":
		ens := prefetch.NewTable7Ensemble()
		pol, err := banditPolicy(*algo, ens.NumArms())
		if err != nil {
			fatal(err)
		}
		if pol != nil {
			ctrl = core.MustNew(core.Config{
				Arms: ens.NumArms(), Policy: pol, Normalize: true,
				Seed: *seed, RecordTrace: true,
			})
		} else {
			// static:N
			n, _ := strconv.Atoi(strings.TrimPrefix(*algo, "static:"))
			ctrl = core.FixedArm(n)
		}
		l2, tun = ens, ens
	default:
		fatal(fmt.Errorf("unknown prefetcher %q", *pfName))
	}

	r := cpu.NewRunner(c, l2, ctrl, tun)
	r.StepL2 = *stepL2
	if *showTrace {
		r.RecordArms()
	}
	r.Run(*insts)

	st := hier.Stats()
	cl := hier.Classify()
	fmt.Printf("app=%s prefetcher=%s insts=%d cycles=%d\n", app.Name, *pfName, c.Insts(), c.Cycles())
	fmt.Printf("IPC: %.4f\n", c.IPC())
	fmt.Printf("L2 demand accesses: %d   LLC misses: %d   DRAM reads: %d\n",
		st.L2Demand, st.LLCMisses, hier.DRAM().Reads())
	fmt.Printf("prefetches issued: %d   timely: %d   late: %d   wrong: %d   dropped: %d\n",
		st.PrefIssued, cl.Timely, cl.Late, cl.Wrong, st.PrefDropped)
	if ctrl != nil {
		fmt.Printf("bandit steps: %d\n", r.Steps())
	}
	if *showTrace {
		fmt.Println("arm trace (cycle:arm):")
		for _, s := range r.ArmTrace {
			fmt.Printf("  %d:%d", s.Cycle, s.Arm)
		}
		fmt.Println()
		if agent, ok := ctrl.(*core.Agent); ok {
			fmt.Printf("final rTable: %v\n", agent.Rewards())
		}
	}
}

// banditPolicy parses the -algo flag; returns (nil, nil) for static:N.
func banditPolicy(name string, arms int) (core.Policy, error) {
	switch {
	case name == "ducb":
		return core.NewDUCB(core.PrefetchC, core.PrefetchGamma), nil
	case name == "ucb":
		return core.NewUCB(core.PrefetchC), nil
	case name == "eps":
		return core.NewEpsilonGreedy(0.05), nil
	case name == "single":
		return core.NewSingle(), nil
	case name == "periodic":
		return core.NewPeriodic(8, 4), nil
	case strings.HasPrefix(name, "static:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil || n < 0 || n >= arms {
			return nil, fmt.Errorf("bad static arm in %q (have %d arms)", name, arms)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mab-prefetch:", err)
	os.Exit(1)
}
