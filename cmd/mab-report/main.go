// Command mab-report regenerates the paper's tables and figures.
//
// Usage:
//
//	mab-report [-preset smoke|quick|full] [-exp id] [-list] [-seed n] [-j n]
//	mab-report -robust [-faults noise:0.5,stuckarm:1:7]
//	mab-report -scenarios [-scenario dramsched,cacheins]
//	mab-report -robust -telemetry out.jsonl [-telemetry-every 100]
//	mab-report -parbench BENCH_parallel.json [-preset quick] [-j n]
//	mab-report -servebench BENCH_batch.json [-servebench-duration 2s] [-j n]
//	mab-report -clusterbench BENCH_cluster.json [-clusterbench-duration 2s] [-j n]
//	mab-report -simbench BENCH_sim.json [-simbench-baseline old.json] [-simbench-insts n]
//	mab-report -exp fig8 -pprof profdir
//
// With no -exp it runs every experiment in paper order; -list prints the
// experiment registry (ids match DESIGN.md's per-experiment index).
// -robust runs the fault-injection robustness sweep, optionally with a
// custom -faults sweep (comma-separated kind:intensity[:seed] specs, one
// sweep row each). -scenarios runs every registered decision scenario
// (DRAM scheduling, cache insertion, prefetch degree, prefetch config,
// agent selection) with the same bandit against each scenario's static
// arms; -scenario filters to a comma-separated subset, and unknown names
// exit 2 listing the valid ones. -parbench times the heaviest experiments serial vs
// parallel and writes the wall-clock comparison as JSON. -servebench
// measures serving throughput — the scalar step/reward baseline, then a
// /v1/batch size sweep — and writes BENCH_batch.json. -clusterbench
// measures an in-process serving ring three ways (per-node direct load,
// routed load, and routed load across a mid-run node kill) and writes
// BENCH_cluster.json. -simbench
// measures raw single-run simulator throughput (insts/sec per catalog
// workload) and writes BENCH_sim.json, optionally computing speedups
// against a previously recorded run.
//
// Failed experiment jobs (including recovered panics) never crash the
// report: the affected experiment renders partial results, an error
// appendix lists the failures, and the process exits 1. Bad flag values
// exit 2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"microbandit/internal/cluster"
	"microbandit/internal/fault"
	"microbandit/internal/harness"
	"microbandit/internal/obs"
	"microbandit/internal/par"
	"microbandit/internal/scenario"
	"microbandit/internal/serve"
	"microbandit/internal/serve/loadgen"
	"microbandit/internal/simbench"
	"microbandit/internal/trace"
	"microbandit/internal/version"
)

func main() {
	preset := flag.String("preset", "quick", "run size: smoke, quick, or full")
	expID := flag.String("exp", "", "run a single experiment by id (e.g. fig8, table9)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 1, "base random seed")
	csvDir := flag.String("csvdir", "", "also write per-experiment CSV files into this directory")
	workers := flag.Int("j", 0, "worker goroutines per experiment (0 = one per CPU, 1 = serial)")
	robust := flag.Bool("robust", false, "run the fault-injection robustness sweep")
	scenarios := flag.Bool("scenarios", false, "run the cross-scenario reusability experiment (one bandit, every decision problem)")
	scenarioNames := flag.String("scenario", "", "with -scenarios: comma-separated scenario names to run ("+strings.Join(scenario.Names(), ", ")+")")
	faultSpec := flag.String("faults", "", "with -robust: custom sweep as comma-separated kind:intensity[:seed] ("+strings.Join(fault.KindNames(), ", ")+")")
	parBench := flag.String("parbench", "", "time Table8 and Fig5 serial vs parallel, write JSON here")
	serveBench := flag.String("servebench", "", "measure serving throughput (scalar baseline + /v1/batch size sweep), write JSON here")
	serveBenchDur := flag.Duration("servebench-duration", 2*time.Second, "with -servebench: measured window per configuration")
	clusterBench := flag.String("clusterbench", "", "measure cluster serving (per-node direct, routed, and routed-across-a-node-kill), write JSON here")
	clusterBenchDur := flag.Duration("clusterbench-duration", 2*time.Second, "with -clusterbench: measured window per phase")
	clusterBenchNodes := flag.Int("clusterbench-nodes", 3, "with -clusterbench: ring size")
	simBench := flag.String("simbench", "", "measure single-run simulator throughput (insts/sec per workload), write JSON here")
	simBenchBaseline := flag.String("simbench-baseline", "", "with -simbench: previously recorded BENCH_sim.json to compute speedups against")
	simBenchInsts := flag.Int64("simbench-insts", simbench.DefaultInsts, "with -simbench: instructions per workload")
	simBenchGuard := flag.Float64("simbench-guard", 0, "with -simbench-baseline: exit 1 if gmean speedup vs the baseline falls below this ratio (skipped when the CPU counts differ)")
	noChunkCache := flag.Bool("no-chunk-cache", false, "disable the shared trace chunk cache for experiment runs (outputs are byte-identical either way; this only trades speed for memory)")
	telemetry := flag.String("telemetry", "", "with -robust: write a JSONL telemetry event stream to this path (plus timeline.csv/regret.csv alongside)")
	telemetryEvery := flag.Int("telemetry-every", 100, "telemetry snapshot/interval cadence in bandit steps")
	pprofDir := flag.String("pprof", "", "capture cpu.pprof, heap.pprof, and runtime metrics into this directory")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("mab-report", version.String())
		return
	}
	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	var o harness.Options
	switch *preset {
	case "smoke":
		o = harness.Smoke()
	case "quick":
		o = harness.Quick()
	case "full":
		o = harness.Full()
	default:
		fmt.Fprintf(os.Stderr, "mab-report: unknown preset %q (valid: smoke, quick, full)\n", *preset)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "mab-report: -j must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *faultSpec != "" && !*robust {
		fmt.Fprintln(os.Stderr, "mab-report: -faults requires -robust")
		os.Exit(2)
	}
	if *scenarioNames != "" && !*scenarios {
		fmt.Fprintln(os.Stderr, "mab-report: -scenario requires -scenarios")
		os.Exit(2)
	}
	if *telemetry != "" && !*robust && !*scenarios {
		fmt.Fprintln(os.Stderr, "mab-report: -telemetry requires -robust or -scenarios")
		os.Exit(2)
	}
	if *telemetryEvery <= 0 {
		fmt.Fprintf(os.Stderr, "mab-report: -telemetry-every must be positive, got %d\n", *telemetryEvery)
		os.Exit(2)
	}
	if *simBenchBaseline != "" && *simBench == "" {
		fmt.Fprintln(os.Stderr, "mab-report: -simbench-baseline requires -simbench")
		os.Exit(2)
	}
	if *simBenchInsts <= 0 {
		fmt.Fprintf(os.Stderr, "mab-report: -simbench-insts must be positive, got %d\n", *simBenchInsts)
		os.Exit(2)
	}
	if *simBenchGuard < 0 {
		fmt.Fprintf(os.Stderr, "mab-report: -simbench-guard must be >= 0, got %v\n", *simBenchGuard)
		os.Exit(2)
	}
	if *simBenchGuard > 0 && *simBenchBaseline == "" {
		fmt.Fprintln(os.Stderr, "mab-report: -simbench-guard requires -simbench-baseline")
		os.Exit(2)
	}
	o.Seed = *seed
	o.Workers = *workers
	// Collect per-job failures instead of crashing: experiments render
	// partial results and the appendix below lists what failed.
	o.Errs = harness.NewErrorLog()
	// SIGINT/SIGTERM cancels the experiment engine: in-flight simulations
	// stop at the next chunk boundary, canceled jobs land in the error
	// appendix, and whatever finished still renders before the exit.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	o.Ctx = ctx
	interrupted = func() bool { return ctx.Err() != nil }

	// Profiling spans every simulation below; exits go through exit() so
	// the capture flushes (os.Exit skips defers).
	profStop = startProfiling(*pprofDir)

	if *parBench != "" {
		if err := runParBench(*parBench, *preset, o); err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *simBench != "" {
		if err := runSimBench(*simBench, *simBenchBaseline, *simBenchInsts, *seed, *simBenchGuard); err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *serveBench != "" {
		if err := runServeBench(ctx, *serveBench, *workers, *seed, *serveBenchDur); err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *clusterBench != "" {
		if err := runClusterBench(ctx, *clusterBench, *clusterBenchNodes, *workers, *seed, *clusterBenchDur); err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	// Experiment runs share one trace chunk cache: sweeps replay the same
	// (app, seed) trace across many agent configurations, and a memoized
	// slab turns every repeat into a memcpy. Rendered text and CSV are
	// byte-identical with the cache on or off (pinned by
	// TestChunkCacheInvariant), so this is on by default.
	if !*noChunkCache {
		o.ChunkCache = trace.NewChunkCache(0)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			exit(1)
		}
	}

	if *scenarios {
		names := scenario.Names()
		if *scenarioNames != "" {
			names = strings.Split(*scenarioNames, ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
		}
		var collector *obs.Collector
		if *telemetry != "" {
			collector = obs.NewCollector(*telemetryEvery)
			o.Obs = collector
		}
		start := time.Now()
		r, err := harness.ScenariosWith(o, names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(r.Render())
		if *csvDir != "" {
			writeCSV(*csvDir, "scenarios", r.CSV())
		}
		if collector != nil {
			if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
				fmt.Fprintf(os.Stderr, "mab-report: telemetry: %v\n", err)
				exit(1)
			}
		}
		fmt.Printf("(scenarios: %.1fs)\n", time.Since(start).Seconds())
		exitAfterAppendix(o.Errs)
	}

	if *robust {
		sweep := harness.DefaultFaultSweep()
		if *faultSpec != "" {
			set, err := fault.ParseSet(*faultSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mab-report: -faults: %v\n", err)
				os.Exit(2)
			}
			sweep = set
		}
		var collector *obs.Collector
		if *telemetry != "" {
			collector = obs.NewCollector(*telemetryEvery)
			o.Obs = collector
		}
		start := time.Now()
		r := harness.RobustWith(o, sweep)
		fmt.Print(r.Render())
		if *csvDir != "" {
			writeCSV(*csvDir, "robust", r.CSV())
		}
		if collector != nil {
			if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
				fmt.Fprintf(os.Stderr, "mab-report: telemetry: %v\n", err)
				exit(1)
			}
		}
		fmt.Printf("(robust: %.1fs)\n", time.Since(start).Seconds())
		exitAfterAppendix(o.Errs)
	}

	if *expID != "" {
		e, ok := harness.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "mab-report: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.ID, e.Desc)
		fmt.Print(runOne(e, o, *csvDir))
		fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
		exitAfterAppendix(o.Errs)
	}
	anyFailed := false
	for _, e := range harness.Experiments() {
		if interrupted() {
			break
		}
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.ID, e.Desc)
		fmt.Print(runOne(e, o, *csvDir))
		if o.Errs.Len() > 0 {
			anyFailed = true
			fmt.Print(harness.RenderFailures(o.Errs.Drain()))
		}
		fmt.Printf("(%s: %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if anyFailed {
		exit(1)
	}
	exit(0)
}

// profStop finalizes the -pprof capture; replaced by startProfiling.
var profStop = func() {}

// interrupted reports whether SIGINT/SIGTERM canceled the run; replaced
// in main once the signal context exists.
var interrupted = func() bool { return false }

// exit flushes the profiling capture before terminating: os.Exit skips
// deferred calls, so every post-simulation exit path must come through
// here. An interrupted run never exits 0 — its results are partial.
func exit(code int) {
	if interrupted() {
		fmt.Fprintln(os.Stderr, "mab-report: interrupted; results above are partial")
		if code == 0 {
			code = 1
		}
	}
	profStop()
	os.Exit(code)
}

// exitAfterAppendix prints the error appendix for any collected failures
// and exits: 0 for a clean run, 1 for a partial one.
func exitAfterAppendix(errs *harness.ErrorLog) {
	if errs.Len() == 0 {
		exit(0)
	}
	fmt.Print(harness.RenderFailures(errs.Drain()))
	exit(1)
}

// startProfiling begins a CPU profile in dir and returns the stop
// function that finalizes cpu.pprof, captures heap.pprof, and dumps the
// runtime/metrics registry as JSON. An empty dir is a no-op capture.
func startProfiling(dir string) func() {
	if dir == "" {
		return func() {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: -pprof: %v\n", err)
		os.Exit(1)
	}
	cpuF, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: -pprof: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: -pprof: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		cpuF.Close()
		if heapF, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
			runtime.GC()
			if err := pprof.WriteHeapProfile(heapF); err != nil {
				fmt.Fprintf(os.Stderr, "mab-report: -pprof heap: %v\n", err)
			}
			heapF.Close()
		} else {
			fmt.Fprintf(os.Stderr, "mab-report: -pprof heap: %v\n", err)
		}
		writeRuntimeMetrics(filepath.Join(dir, "runtime-metrics.json"))
	}
}

// writeRuntimeMetrics samples every runtime/metrics entry and writes the
// scalar values (histograms are summarized by their sample count) as a
// JSON object keyed by metric name.
func writeRuntimeMetrics(path string) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			total := uint64(0)
			for _, c := range s.Value.Float64Histogram().Counts {
				total += c
			}
			out[s.Name+":samples"] = total
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: -pprof metrics: %v\n", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: -pprof metrics: %v\n", err)
	}
}

// writeCSV writes one experiment's CSV file, reporting but not dying on
// I/O errors.
func writeCSV(dir, id, csv string) {
	path := filepath.Join(dir, id+".csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: writing %s: %v\n", path, err)
	}
}

// runOne executes an experiment once, writing its CSV alongside when a
// CSV directory is configured and the experiment has a tabular form.
func runOne(e harness.Experiment, o harness.Options, csvDir string) string {
	if csvDir == "" {
		return e.Run(o)
	}
	text, csv, ok := harness.RunWithCSV(e.ID, o)
	if !ok {
		return e.Run(o)
	}
	writeCSV(csvDir, e.ID, csv)
	return text
}

// runSimBench measures single-run simulator throughput per workload and
// writes the BENCH_sim.json report, merging speedups against a prior
// recording when one is supplied.
func runSimBench(path, baselinePath string, insts int64, seed uint64, guard float64) error {
	rep := simbench.Run(insts, seed)
	var base simbench.Report
	if baselinePath != "" {
		var err error
		base, err = simbench.ReadReport(baselinePath)
		if err != nil {
			return err
		}
		rep = simbench.Merge(rep, base)
	}
	for _, w := range rep.Workloads {
		line := fmt.Sprintf("%-8s (%s): %.0f insts/sec", w.Name, w.App, w.InstsPerSec)
		if w.InstsPerSecMemo > 0 {
			line += fmt.Sprintf(" (memo %.0f, hit %.2f, ff %.2f)", w.InstsPerSecMemo, w.ChunkHitRate, w.FFCoverage)
		}
		line += fmt.Sprintf(", ipc %.4f", w.IPC)
		if w.Speedup > 0 {
			line += fmt.Sprintf(", %.2fx vs baseline", w.Speedup)
		}
		if w.SpeedupMemo > 0 {
			line += fmt.Sprintf(" (memo %.2fx)", w.SpeedupMemo)
		}
		fmt.Println(line)
	}
	if rep.GMeanSpeedup > 0 {
		fmt.Printf("gmean speedup: %.2fx\n", rep.GMeanSpeedup)
	}
	if rep.GMeanSpeedupMemo > 0 {
		fmt.Printf("gmean speedup (warm chunk cache): %.2fx\n", rep.GMeanSpeedupMemo)
	}
	// Write the report before the guard verdict so a failing run still
	// leaves its measurements behind for diagnosis.
	if err := simbench.WriteReport(path, rep); err != nil {
		return err
	}
	if guard > 0 {
		switch {
		case base.CPUs != rep.CPUs:
			// Different vCPU class: absolute throughput is not
			// comparable, so the guard abstains rather than flaking.
			fmt.Printf("simbench guard: skipped (baseline recorded on %d CPUs, this host has %d)\n",
				base.CPUs, rep.CPUs)
		case rep.GMeanSpeedup < guard:
			return fmt.Errorf("simbench guard: gmean %.3fx vs %s is below the %.2fx floor",
				rep.GMeanSpeedup, baselinePath, guard)
		default:
			fmt.Printf("simbench guard: ok (gmean %.2fx >= %.2fx floor)\n", rep.GMeanSpeedup, guard)
		}
	}
	return nil
}

// serveBenchReport is the BENCH_batch.json schema: the scalar
// step/reward baseline plus a /v1/batch size sweep, all on one server
// configuration.
type serveBenchReport struct {
	CPUs      int               `json:"cpus"`
	Workers   int               `json:"workers"`
	DurationS float64           `json:"duration_s"`
	Scalar    *loadgen.Result   `json:"scalar"`
	Batch     []*loadgen.Result `json:"batch"`
	// MaxDecisionsPerSec is the headline: the best throughput any
	// configuration reached, and the batch size that reached it
	// (0 = the scalar baseline).
	MaxDecisionsPerSec float64 `json:"max_decisions_per_sec"`
	BestBatch          int     `json:"best_batch"`
	// SpeedupVsScalar is MaxDecisionsPerSec over the scalar baseline's
	// decisions/sec.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// runServeBench measures an in-process decision server: the scalar
// protocol first, then /v1/batch across batch sizes. Every
// configuration gets a fresh server, so learned state never leaks
// between runs.
func runServeBench(ctx context.Context, path string, workers int, seed uint64, dur time.Duration) error {
	if workers <= 0 {
		workers = 8
	}
	rep := serveBenchReport{
		CPUs:      runtime.NumCPU(),
		Workers:   workers,
		DurationS: dur.Seconds(),
	}
	run := func(batch int) (*loadgen.Result, error) {
		srv := serve.New(serve.Config{Version: version.String()})
		return loadgen.Run(ctx, loadgen.Options{
			Handler:  srv,
			Workers:  workers,
			Duration: dur,
			Batch:    batch,
			Spec:     serve.Spec{Algo: "ducb", Arms: 8, Seed: seed},
		})
	}

	fmt.Printf("servebench: scalar baseline (%d workers, %v)...\n", workers, dur)
	scalar, err := run(0)
	if err != nil {
		return err
	}
	fmt.Printf("  scalar: %.0f decisions/sec, p50 %.1fµs/req\n", scalar.DecisionsPerSec, scalar.P50Us)
	rep.Scalar = scalar
	rep.MaxDecisionsPerSec = scalar.DecisionsPerSec

	for _, b := range []int{1, 4, 16, 64, 256} {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		fmt.Printf("servebench: batch=%d...\n", b)
		res, err := run(b)
		if err != nil {
			return err
		}
		fmt.Printf("  batch=%d: %.0f decisions/sec, p50 %.2fµs/decision\n",
			b, res.DecisionsPerSec, res.P50PerDecisionUs)
		rep.Batch = append(rep.Batch, res)
		if res.DecisionsPerSec > rep.MaxDecisionsPerSec {
			rep.MaxDecisionsPerSec = res.DecisionsPerSec
			rep.BestBatch = b
		}
	}
	if scalar.DecisionsPerSec > 0 {
		rep.SpeedupVsScalar = rep.MaxDecisionsPerSec / scalar.DecisionsPerSec
	}
	fmt.Printf("servebench: best %.0f decisions/sec at batch=%d (%.1fx over scalar)\n",
		rep.MaxDecisionsPerSec, rep.BestBatch, rep.SpeedupVsScalar)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runClusterBench measures an in-process serving ring three ways —
// per-node direct load, the same load through the router, and routed
// load across a mid-run node kill — and writes BENCH_cluster.json.
func runClusterBench(ctx context.Context, path string, nodes, workers int, seed uint64, dur time.Duration) error {
	fmt.Printf("clusterbench: %d nodes, %d workers, %v per phase...\n", nodes, workers, dur)
	rep, err := cluster.RunBench(ctx, cluster.BenchConfig{
		Nodes:    nodes,
		Workers:  workers,
		Duration: dur,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  direct: %.0f decisions/sec across %d nodes\n", rep.Direct.DecisionsPerSec, rep.Nodes)
	fmt.Printf("  routed: %.0f decisions/sec (%.2fx direct-to-routed overhead)\n", rep.Routed.DecisionsPerSec, rep.RouterOverhead)
	fmt.Printf("  failover: killed %s mid-load; recovered in %.1fms, %.0f decisions/sec, %d errors, %d retries, %d resyncs\n",
		rep.Failover.Victim, rep.Failover.RecoveryMS, rep.Failover.Run.DecisionsPerSec,
		rep.Failover.Run.Errors, rep.Failover.Run.Retries, rep.Failover.Run.Resyncs)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parBenchEntry is one experiment's serial-vs-parallel timing.
type parBenchEntry struct {
	Experiment string  `json:"experiment"`
	SerialS    float64 `json:"serial_s"`
	ParallelS  float64 `json:"parallel_s"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"output_identical"`
	// ChunkHitRate and FFCoverage describe the parallel run: the
	// fraction of trace chunks served from the shared memo cache
	// (cross-configuration sweep reuse) and the fraction of simulated
	// instructions retired through the steady-state fast-forward path.
	ChunkHitRate float64 `json:"chunk_hit_rate"`
	FFCoverage   float64 `json:"ff_coverage"`
}

// parBenchReport is the BENCH_parallel.json schema.
type parBenchReport struct {
	Preset  string          `json:"preset"`
	CPUs    int             `json:"cpus"`
	Workers int             `json:"workers"`
	Entries []parBenchEntry `json:"entries"`
}

// runParBench times the two heaviest experiments (the Fig. 5 policy
// sweep and the Table 8 static-arm oracle) serial vs parallel and
// writes the comparison to path. It also cross-checks that both modes
// rendered identical bytes — the engine's determinism contract.
func runParBench(path, preset string, o harness.Options) error {
	workers := o.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	rep := parBenchReport{
		Preset:  preset,
		CPUs:    runtime.NumCPU(),
		Workers: workers,
	}
	for _, id := range []string{"table8", "fig5"} {
		// Each mode gets its own cold chunk cache so the serial and
		// parallel timings see identical memoization behavior and the
		// speedup stays an apples-to-apples engine comparison.
		serial := o
		serial.Workers = 1
		serial.ChunkCache = trace.NewChunkCache(0)
		parallel := o
		parallel.Workers = workers
		parallel.ChunkCache = trace.NewChunkCache(0)
		parallel.SimCounters = &harness.SimCounters{}

		fmt.Printf("timing %s serial...\n", id)
		t0 := time.Now()
		textS, _, ok := harness.RunWithCSV(id, serial)
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		serialS := time.Since(t0).Seconds()

		fmt.Printf("timing %s parallel (j=%d)...\n", id, workers)
		t0 = time.Now()
		textP, _, _ := harness.RunWithCSV(id, parallel)
		parallelS := time.Since(t0).Seconds()

		e := parBenchEntry{
			Experiment:   id,
			SerialS:      serialS,
			ParallelS:    parallelS,
			Identical:    textS == textP,
			ChunkHitRate: parallel.SimCounters.HitRate(),
			FFCoverage:   parallel.SimCounters.FFCoverage(),
		}
		if parallelS > 0 {
			e.Speedup = serialS / parallelS
		}
		fmt.Printf("%s: serial %.1fs, parallel %.1fs, speedup %.2fx, identical=%v, chunk hit %.2f, ff %.2f\n",
			id, e.SerialS, e.ParallelS, e.Speedup, e.Identical, e.ChunkHitRate, e.FFCoverage)
		rep.Entries = append(rep.Entries, e)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
