// Command mab-report regenerates the paper's tables and figures.
//
// Usage:
//
//	mab-report [-preset smoke|quick|full] [-exp id] [-list] [-seed n]
//
// With no -exp it runs every experiment in paper order; -list prints the
// experiment registry (ids match DESIGN.md's per-experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"microbandit/internal/harness"
)

func main() {
	preset := flag.String("preset", "quick", "run size: smoke, quick, or full")
	expID := flag.String("exp", "", "run a single experiment by id (e.g. fig8, table9)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 1, "base random seed")
	csvDir := flag.String("csvdir", "", "also write per-experiment CSV files into this directory")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	var o harness.Options
	switch *preset {
	case "smoke":
		o = harness.Smoke()
	case "quick":
		o = harness.Quick()
	case "full":
		o = harness.Full()
	default:
		fmt.Fprintf(os.Stderr, "mab-report: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	o.Seed = *seed

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mab-report: %v\n", err)
			os.Exit(1)
		}
	}

	if *expID != "" {
		e, ok := harness.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "mab-report: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.ID, e.Desc)
		fmt.Print(runOne(e, o, *csvDir))
		fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
		return
	}
	for _, e := range harness.Experiments() {
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.ID, e.Desc)
		fmt.Print(runOne(e, o, *csvDir))
		fmt.Printf("(%s: %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}

// runOne executes an experiment once, writing its CSV alongside when a
// CSV directory is configured and the experiment has a tabular form.
func runOne(e harness.Experiment, o harness.Options, csvDir string) string {
	if csvDir == "" {
		return e.Run(o)
	}
	text, csv, ok := harness.RunWithCSV(e.ID, o)
	if !ok {
		return e.Run(o)
	}
	path := filepath.Join(csvDir, e.ID+".csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mab-report: writing %s: %v\n", path, err)
	}
	return text
}
