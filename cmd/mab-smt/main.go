// Command mab-smt runs SMT instruction-fetch simulations: one or more
// 2-thread mixes under one fetch PG controller (bandit, Choi, ICount, or
// any static policy), printing per-thread IPC plus the rename-stage
// breakdown. The batch experiments live in mab-report.
//
// Usage:
//
//	mab-smt -mix gcc-lbm -ctrl bandit [-cycles 3000000]
//	        [-telemetry out.jsonl] [-telemetry-every 100]
//	mab-smt -mix mcf-lbm -ctrl policy:LSQC_1111
//	mab-smt -mix gcc-lbm,mcf-lbm,x264-bwaves -j 4
//	mab-smt -list
//
// With a comma-separated -mix list, the simulations fan out across -j
// worker goroutines and the reports print in input order. A failing mix
// is reported on stderr without taking down its siblings. Bad flag
// values exit 2 with the valid choices.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"microbandit/internal/obs"
	"microbandit/internal/par"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/version"
)

// runConfig carries the per-run flag values into the worker pool.
type runConfig struct {
	ctrlName   string
	cycles     int64
	epoch      int64
	rrEpochs   int
	mainEpochs int
	seed       uint64
	showTrace  bool
	obsEvery   int
}

func main() {
	mixNames := flag.String("mix", "gcc-lbm", "2-thread mix(es) as appA-appB, comma-separated")
	ctrlName := flag.String("ctrl", "bandit", "controller: bandit, choi, icount, or policy:<mnemonic>")
	cycles := flag.Int64("cycles", 3_000_000, "cycles to simulate")
	epoch := flag.Int64("epoch", 16*1024, "Hill Climbing epoch length in cycles")
	rrEpochs := flag.Int("rrepochs", 8, "bandit step length during the initial RR phase, in epochs")
	mainEpochs := flag.Int("mainepochs", 2, "bandit step length during the main loop, in epochs")
	seed := flag.Uint64("seed", 1, "random seed")
	showTrace := flag.Bool("trace", false, "print the arm exploration trace")
	telemetry := flag.String("telemetry", "", "write a JSONL telemetry event stream to this path (plus timeline.csv/regret.csv alongside)")
	telemetryEvery := flag.Int("telemetry-every", 100, "telemetry snapshot/interval cadence in bandit steps")
	list := flag.Bool("list", false, "list thread profiles and exit")
	workers := flag.Int("j", 0, "worker goroutines for multi-mix runs (0 = one per CPU)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("mab-smt", version.String())
		return
	}
	if *list {
		for _, p := range smtwork.Profiles() {
			fmt.Printf("%-12s load=%.2f store=%.2f branch=%.2f fp=%.2f\n",
				p.Name, p.LoadFrac, p.StoreFrac, p.BranchFrac, p.FPFrac)
		}
		return
	}

	// Validate every flag before any simulation starts: bad values exit 2
	// with usage, never a mid-run panic.
	if *cycles <= 0 {
		usageErr(fmt.Errorf("-cycles must be positive, got %d", *cycles))
	}
	if *epoch <= 0 {
		usageErr(fmt.Errorf("-epoch must be positive, got %d", *epoch))
	}
	if *rrEpochs <= 0 || *mainEpochs <= 0 {
		usageErr(fmt.Errorf("-rrepochs and -mainepochs must be positive, got %d and %d", *rrEpochs, *mainEpochs))
	}
	if *workers < 0 {
		usageErr(fmt.Errorf("-j must be >= 0, got %d", *workers))
	}
	if *telemetryEvery <= 0 {
		usageErr(fmt.Errorf("-telemetry-every must be positive, got %d", *telemetryEvery))
	}
	if err := validateCtrl(*ctrlName); err != nil {
		usageErr(err)
	}

	var mixes []smtwork.Mix
	for _, name := range strings.Split(*mixNames, ",") {
		name = strings.TrimSpace(name)
		parts := strings.SplitN(name, "-", 2)
		if len(parts) != 2 {
			usageErr(fmt.Errorf("mix must be appA-appB, got %q", name))
		}
		a, err := smtwork.ByName(parts[0])
		if err != nil {
			usageErr(fmt.Errorf("%v (valid: %s)", err, profileNames()))
		}
		b, err := smtwork.ByName(parts[1])
		if err != nil {
			usageErr(fmt.Errorf("%v (valid: %s)", err, profileNames()))
		}
		mixes = append(mixes, smtwork.Mix{A: a, B: b})
	}

	cfg := runConfig{
		ctrlName: *ctrlName, cycles: *cycles, epoch: *epoch,
		rrEpochs: *rrEpochs, mainEpochs: *mainEpochs,
		seed: *seed, showTrace: *showTrace, obsEvery: *telemetryEvery,
	}
	// Telemetry slots are claimed by mix index, so the assembled stream
	// is byte-identical at every -j value.
	var collector *obs.Collector
	if *telemetry != "" {
		collector = obs.NewCollector(*telemetryEvery)
	}
	// SIGINT/SIGTERM cancels the fan-out: in-flight simulations stop at
	// the next epoch boundary, unstarted mixes never run, and everything
	// that did finish still prints (plus telemetry) below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Each mix is an independent simulation with its own state and seed;
	// reports come back in input order regardless of worker count. A
	// failing or panicking run becomes a per-job error; the siblings'
	// reports still print and the process exits 1.
	type jobIn struct {
		i   int
		mix smtwork.Mix
	}
	jobs := make([]jobIn, len(mixes))
	for i, mix := range mixes {
		jobs[i] = jobIn{i, mix}
	}
	reports, errs := par.RunCtx(ctx, par.CtxOpts{Workers: *workers}, jobs, func(ctx context.Context, j jobIn) (string, error) {
		var rec obs.Recorder
		if collector != nil {
			rec = collector.Slot(j.i, j.mix.Name())
		}
		return simulate(ctx, j.mix, cfg, rec)
	})
	failed := 0
	for i, report := range reports {
		if errs[i] != nil {
			if !errors.Is(errs[i], context.Canceled) {
				failed++
				fmt.Fprintf(os.Stderr, "mab-smt: %s: %v\n", mixes[i].Name(), errs[i])
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(report)
	}
	if collector != nil {
		if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "mab-smt: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "mab-smt: interrupted; results above are partial")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mab-smt: %d of %d runs failed; results above are partial\n", failed, len(mixes))
		os.Exit(1)
	}
}

// validateCtrl checks the -ctrl flag before fan-out.
func validateCtrl(name string) error {
	switch {
	case name == "bandit", name == "choi", name == "icount":
		return nil
	case strings.HasPrefix(name, "policy:"):
		_, err := simsmt.ParsePolicy(strings.TrimPrefix(name, "policy:"))
		return err
	default:
		return fmt.Errorf("unknown controller %q (valid: bandit, choi, icount, policy:<mnemonic>)", name)
	}
}

// simulate runs one mix and returns its formatted report. rec, when
// non-nil, receives the run's telemetry stream. If ctx is canceled
// mid-run the simulation stops at the next epoch boundary and the
// report covers the cycles that did run, flagged as partial.
func simulate(ctx context.Context, mix smtwork.Mix, cfg runConfig, rec obs.Recorder) (string, error) {
	sim := simsmt.NewSim(mix.A, mix.B, cfg.seed)
	var runner *simsmt.Runner
	switch {
	case cfg.ctrlName == "bandit":
		agent := simsmt.NewBanditAgent(cfg.seed)
		obs.Attach(agent, rec, cfg.obsEvery)
		runner = simsmt.NewRunner(sim, agent, simsmt.Table1Arms(), true)
	case cfg.ctrlName == "choi":
		runner = simsmt.NewFixedRunner(sim, simsmt.ChoiPolicy, true)
	case cfg.ctrlName == "icount":
		runner = simsmt.NewFixedRunner(sim, simsmt.ICountPolicy, false)
	case strings.HasPrefix(cfg.ctrlName, "policy:"):
		p, err := simsmt.ParsePolicy(strings.TrimPrefix(cfg.ctrlName, "policy:"))
		if err != nil {
			return "", err
		}
		runner = simsmt.NewFixedRunner(sim, p, true)
	default:
		return "", fmt.Errorf("unknown controller %q", cfg.ctrlName)
	}
	runner.EpochLen = cfg.epoch
	runner.RREpochs = cfg.rrEpochs
	runner.MainEpochs = cfg.mainEpochs
	if cfg.showTrace {
		runner.RecordArms()
	}
	if rec != nil {
		runner.Obs = rec
		runner.ObsEvery = cfg.obsEvery
	}
	interrupted := runner.RunCyclesCtx(ctx, cfg.cycles) != nil
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindRunEnd, Cycle: sim.Cycle(),
			Fields: obs.NewFields().Set(obs.FieldSumIPC, sim.SumIPC())})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "mix=%s ctrl=%s cycles=%d policy=%s\n",
		mix.Name(), cfg.ctrlName, sim.Cycle(), sim.Policy())
	if interrupted {
		fmt.Fprintf(&b, "INTERRUPTED after %d of %d cycles; statistics are partial\n", sim.Cycle(), cfg.cycles)
	}
	fmt.Fprintf(&b, "thread0 (%s): %d uops   thread1 (%s): %d uops\n",
		mix.A.Name, sim.Committed(0), mix.B.Name, sim.Committed(1))
	fmt.Fprintf(&b, "sum IPC: %.4f   hill-climb share: %.3f\n", sim.SumIPC(), sim.Share())
	rs := sim.RenameStats()
	total := float64(rs.Total())
	fmt.Fprintf(&b, "rename: running %.1f%%  idle %.1f%%  stalled %.1f%% "+
		"(ROB %.1f%%, IQ %.1f%%, LQ %.1f%%, SQ %.1f%%, RF %.1f%%)\n",
		pct(rs.Running, total), pct(rs.Idle, total), pct(rs.Stalled(), total),
		pct(rs.StallROB, total), pct(rs.StallIQ, total), pct(rs.StallLQ, total),
		pct(rs.StallSQ, total), pct(rs.StallRF, total))
	if cfg.showTrace {
		b.WriteString("arm trace (cycle:arm):\n")
		for _, s := range runner.ArmTrace {
			fmt.Fprintf(&b, "  %d:%d", s.Cycle, s.Arm)
		}
		b.WriteByte('\n')
		arms := simsmt.Table1Arms()
		for i, p := range arms {
			fmt.Fprintf(&b, "  arm %d = %s\n", i, p)
		}
	}
	return b.String(), nil
}

// profileNames returns the valid mix components for error messages.
func profileNames() string {
	var names []string
	for _, p := range smtwork.Profiles() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

func pct(n int64, total float64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / total * 100
}

// usageErr reports a bad flag value and exits 2.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "mab-smt:", err)
	flag.Usage()
	os.Exit(2)
}
