// Command mab-smt runs a single SMT instruction-fetch simulation: one
// 2-thread mix, one fetch PG controller (bandit, Choi, ICount, or any
// static policy), and prints per-thread IPC plus the rename-stage
// breakdown. The batch experiments live in mab-report.
//
// Usage:
//
//	mab-smt -mix gcc-lbm -ctrl bandit [-cycles 3000000]
//	mab-smt -mix mcf-lbm -ctrl policy:LSQC_1111
//	mab-smt -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
)

func main() {
	mixName := flag.String("mix", "gcc-lbm", "2-thread mix as appA-appB")
	ctrlName := flag.String("ctrl", "bandit", "controller: bandit, choi, icount, or policy:<mnemonic>")
	cycles := flag.Int64("cycles", 3_000_000, "cycles to simulate")
	epoch := flag.Int64("epoch", 16*1024, "Hill Climbing epoch length in cycles")
	rrEpochs := flag.Int("rrepochs", 8, "bandit step length during the initial RR phase, in epochs")
	mainEpochs := flag.Int("mainepochs", 2, "bandit step length during the main loop, in epochs")
	seed := flag.Uint64("seed", 1, "random seed")
	showTrace := flag.Bool("trace", false, "print the arm exploration trace")
	list := flag.Bool("list", false, "list thread profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range smtwork.Profiles() {
			fmt.Printf("%-12s load=%.2f store=%.2f branch=%.2f fp=%.2f\n",
				p.Name, p.LoadFrac, p.StoreFrac, p.BranchFrac, p.FPFrac)
		}
		return
	}

	parts := strings.SplitN(*mixName, "-", 2)
	if len(parts) != 2 {
		fatal(fmt.Errorf("mix must be appA-appB, got %q", *mixName))
	}
	a, err := smtwork.ByName(parts[0])
	if err != nil {
		fatal(err)
	}
	b, err := smtwork.ByName(parts[1])
	if err != nil {
		fatal(err)
	}

	sim := simsmt.NewSim(a, b, *seed)
	var runner *simsmt.Runner
	switch {
	case *ctrlName == "bandit":
		runner = simsmt.NewRunner(sim, simsmt.NewBanditAgent(*seed), simsmt.Table1Arms(), true)
	case *ctrlName == "choi":
		runner = simsmt.NewFixedRunner(sim, simsmt.ChoiPolicy, true)
	case *ctrlName == "icount":
		runner = simsmt.NewFixedRunner(sim, simsmt.ICountPolicy, false)
	case strings.HasPrefix(*ctrlName, "policy:"):
		p, err := simsmt.ParsePolicy(strings.TrimPrefix(*ctrlName, "policy:"))
		if err != nil {
			fatal(err)
		}
		runner = simsmt.NewFixedRunner(sim, p, true)
	default:
		fatal(fmt.Errorf("unknown controller %q", *ctrlName))
	}
	runner.EpochLen = *epoch
	runner.RREpochs = *rrEpochs
	runner.MainEpochs = *mainEpochs
	if *showTrace {
		runner.RecordArms()
	}
	runner.RunCycles(*cycles)

	fmt.Printf("mix=%s ctrl=%s cycles=%d policy=%s\n",
		*mixName, *ctrlName, sim.Cycle(), sim.Policy())
	fmt.Printf("thread0 (%s): %d uops   thread1 (%s): %d uops\n",
		a.Name, sim.Committed(0), b.Name, sim.Committed(1))
	fmt.Printf("sum IPC: %.4f   hill-climb share: %.3f\n", sim.SumIPC(), sim.Share())
	rs := sim.RenameStats()
	total := float64(rs.Total())
	fmt.Printf("rename: running %.1f%%  idle %.1f%%  stalled %.1f%% "+
		"(ROB %.1f%%, IQ %.1f%%, LQ %.1f%%, SQ %.1f%%, RF %.1f%%)\n",
		pct(rs.Running, total), pct(rs.Idle, total), pct(rs.Stalled(), total),
		pct(rs.StallROB, total), pct(rs.StallIQ, total), pct(rs.StallLQ, total),
		pct(rs.StallSQ, total), pct(rs.StallRF, total))
	if *showTrace {
		fmt.Println("arm trace (cycle:arm):")
		for _, s := range runner.ArmTrace {
			fmt.Printf("  %d:%d", s.Cycle, s.Arm)
		}
		fmt.Println()
		arms := simsmt.Table1Arms()
		for i, p := range arms {
			fmt.Printf("  arm %d = %s\n", i, p)
		}
	}
}

func pct(n int64, total float64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / total * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mab-smt:", err)
	os.Exit(1)
}
