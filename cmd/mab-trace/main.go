// Command mab-trace records synthetic applications into the binary trace
// format and replays trace files through the core model — the trace-driven
// methodology of the paper's ChampSim platform (§6.1), including the
// concatenate-short-traces rule of §6.2 (replayed traces loop until the
// instruction budget is met).
//
// Usage:
//
//	mab-trace record -app lbm17 -insts 2000000 -out lbm17.mbt
//	mab-trace record -app lbm17,mcf06,bfs -j 4
//	mab-trace replay -in lbm17.mbt -insts 4000000 -pf bandit
//	mab-trace info -in lbm17.mbt
//	mab-trace run -app lbm17,mcf06 -telemetry out.jsonl -telemetry-every 100 -j 8
//	mab-trace -telemetry out.jsonl -telemetry-every 100
//
// With a comma-separated -app list (or "all"), record writes one
// <app>.mbt per application, fanning the recordings out across -j worker
// goroutines.
//
// The run mode simulates catalog applications under the bandit
// prefetcher directly (no trace file round trip) and is the quickest
// path to a telemetry stream: -telemetry writes the JSONL event stream
// plus timeline.csv and regret.csv next to it, byte-identical at every
// -j value. Invoking mab-trace with bare flags (no subcommand) is
// shorthand for run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/par"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
	"microbandit/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch {
	case os.Args[1] == "-version", os.Args[1] == "--version", os.Args[1] == "version":
		fmt.Println("mab-trace", version.String())
	case os.Args[1] == "record":
		record(os.Args[2:])
	case os.Args[1] == "replay":
		replay(os.Args[2:])
	case os.Args[1] == "info":
		info(os.Args[2:])
	case os.Args[1] == "run":
		run(os.Args[2:])
	case strings.HasPrefix(os.Args[1], "-"):
		// Bare flags: shorthand for the run mode.
		run(os.Args[1:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mab-trace {record|replay|info|run|version} [flags]")
	os.Exit(2)
}

// interruptCtx returns a context canceled by SIGINT/SIGTERM, so long
// simulations stop at the next chunk boundary and still report the
// partial statistics (plus telemetry) they accumulated.
func interruptCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// run simulates catalog applications under the Table 7 bandit
// prefetcher, emitting telemetry when -telemetry is set. Each app is an
// independent job claiming the telemetry slot matching its input index,
// so the assembled stream does not depend on -j.
func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	appNames := fs.String("app", "lbm17,mcf06", "application(s): a catalog name, a comma-separated list, or \"all\"")
	insts := fs.Int64("insts", 1_000_000, "instructions to simulate per app")
	stepL2 := fs.Int("step", 500, "bandit step length in L2 demand accesses")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("j", 0, "worker goroutines (0 = one per CPU)")
	telemetry := fs.String("telemetry", "", "write a JSONL telemetry event stream to this path (plus timeline.csv/regret.csv alongside)")
	telemetryEvery := fs.Int("telemetry-every", 100, "telemetry snapshot/interval cadence in bandit steps")
	simFields := fs.Bool("sim-fields", false, "with -telemetry: add simulator-effectiveness fields (chunk_hit_rate, ff_coverage) to interval events")
	_ = fs.Parse(args)

	if *insts <= 0 {
		usageErr(fs, fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	if *stepL2 <= 0 {
		usageErr(fs, fmt.Errorf("-step must be positive, got %d", *stepL2))
	}
	if *workers < 0 {
		usageErr(fs, fmt.Errorf("-j must be >= 0, got %d", *workers))
	}
	if *telemetryEvery <= 0 {
		usageErr(fs, fmt.Errorf("-telemetry-every must be positive, got %d", *telemetryEvery))
	}
	var apps []trace.App
	if *appNames == "all" {
		apps = trace.Catalog()
	} else {
		for _, name := range strings.Split(*appNames, ",") {
			app, err := trace.ByName(strings.TrimSpace(name))
			if err != nil {
				usageErr(fs, fmt.Errorf("%v (valid: %s, or \"all\")", err, catalogNames()))
			}
			apps = append(apps, app)
		}
	}

	var collector *obs.Collector
	if *telemetry != "" {
		collector = obs.NewCollector(*telemetryEvery)
	}
	type jobIn struct {
		i   int
		app trace.App
	}
	jobs := make([]jobIn, len(apps))
	for i, app := range apps {
		jobs[i] = jobIn{i, app}
	}
	ctx, stop := interruptCtx()
	defer stop()
	reports, errs := par.RunCtx(ctx, par.CtxOpts{Workers: *workers}, jobs, func(ctx context.Context, j jobIn) (string, error) {
		var rec obs.Recorder
		if collector != nil {
			rec = collector.Slot(j.i, j.app.Name)
		}
		return runOne(ctx, j.app, *insts, *stepL2, *seed, *telemetryEvery, rec, *simFields)
	})
	failed := 0
	for i, report := range reports {
		if errs[i] != nil {
			if !errors.Is(errs[i], context.Canceled) {
				failed++
				fmt.Fprintf(os.Stderr, "mab-trace: %s: %v\n", apps[i].Name, errs[i])
			}
			continue
		}
		fmt.Print(report)
	}
	if collector != nil {
		if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
			fatal(fmt.Errorf("telemetry: %w", err))
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "mab-trace: interrupted; results above are partial")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mab-trace: %d of %d runs failed; results above are partial\n", failed, len(apps))
		os.Exit(1)
	}
}

// runOne simulates one app under the bandit prefetcher and returns its
// report line. An interrupted run reports the instructions that did run,
// flagged as partial.
func runOne(ctx context.Context, app trace.App, insts int64, stepL2 int, seed uint64, every int, rec obs.Recorder, simFields bool) (string, error) {
	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), hier, app.New(seed))
	ens := prefetch.NewTable7Ensemble()
	agent := core.MustNew(core.Config{
		Arms: ens.NumArms(), Policy: core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
		Normalize: true, Seed: seed,
	})
	obs.Attach(agent, rec, every)
	runner := cpu.NewRunner(c, ens, agent, ens)
	runner.StepL2 = stepL2
	if rec != nil {
		runner.Obs = rec
		runner.ObsEvery = every
		runner.ObsSimCounters = simFields
	}
	interrupted := runner.RunCtx(ctx, insts) != nil
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindRunEnd, Step: runner.Steps(),
			Fields: obs.NewFields().Set(obs.FieldIPC, c.IPC())})
	}
	note := ""
	if interrupted {
		note = " [interrupted; partial]"
	}
	return fmt.Sprintf("ran %s: %d insts, %d cycles, IPC %.4f, %d bandit steps%s\n",
		app.Name, c.Insts(), c.Cycles(), c.IPC(), runner.Steps(), note), nil
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appNames := fs.String("app", "lbm17", "application(s) to record: a name, a comma-separated list, or \"all\"")
	insts := fs.Int64("insts", 2_000_000, "instructions to record")
	out := fs.String("out", "", "output trace file (single app only; default <app>.mbt)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("j", 0, "worker goroutines for multi-app recording (0 = one per CPU)")
	_ = fs.Parse(args)

	if *insts <= 0 {
		usageErr(fs, fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	if *workers < 0 {
		usageErr(fs, fmt.Errorf("-j must be >= 0, got %d", *workers))
	}
	var apps []trace.App
	if *appNames == "all" {
		apps = trace.Catalog()
	} else {
		for _, name := range strings.Split(*appNames, ",") {
			app, err := trace.ByName(strings.TrimSpace(name))
			if err != nil {
				usageErr(fs, fmt.Errorf("%v (valid: %s, or \"all\")", err, catalogNames()))
			}
			apps = append(apps, app)
		}
	}
	if *out != "" && len(apps) > 1 {
		usageErr(fs, fmt.Errorf("-out only applies to a single app; got %d", len(apps)))
	}

	// Each recording owns its generator and output file; reports print in
	// input order regardless of worker count. An interrupt abandons
	// in-flight recordings and removes their partial files — a truncated
	// trace would silently shorten every later replay.
	ctx, stop := interruptCtx()
	defer stop()
	reports, errs := par.RunCtx(ctx, par.CtxOpts{Workers: *workers}, apps, func(ctx context.Context, app trace.App) (string, error) {
		path := *out
		if path == "" {
			path = app.Name + ".mbt"
		}
		return recordOne(ctx, app, path, *insts, *seed)
	})
	for i, report := range reports {
		if errs[i] != nil {
			if errors.Is(errs[i], context.Canceled) {
				continue
			}
			fatal(errs[i])
		}
		fmt.Print(report)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "mab-trace: interrupted; unfinished recordings were removed")
		os.Exit(1)
	}
}

// recordOne writes one application's trace file and returns the report
// line. On cancellation the partial file is removed and ctx's error
// returned.
func recordOne(ctx context.Context, app trace.App, path string, insts int64, seed uint64) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, app.Name)
	if err != nil {
		return "", err
	}
	// Generation goes through the chunked source — slab-sized batches,
	// bit-identical to the scalar stream — with a short final chunk for
	// budgets that are not a multiple of ChunkLen. The file format is
	// unchanged: chunking is purely a producer-side batching.
	src := trace.SourceOf(app.New(seed))
	var chunk trace.Chunk
	var inst trace.Inst
	for done := int64(0); done < insts; {
		if ctx.Err() != nil {
			f.Close()
			os.Remove(path)
			return "", ctx.Err()
		}
		n := int64(trace.ChunkLen)
		if rem := insts - done; rem < n {
			n = rem
		}
		chunk.Reset(int(n))
		src.NextChunk(&chunk)
		for i := 0; i < chunk.Len(); i++ {
			chunk.Get(i, &inst)
			if err := w.Write(&inst); err != nil {
				return "", err
			}
		}
		done += n
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("recorded %d instructions of %s to %s (%d bytes, %.2f B/inst)\n",
		w.Count(), app.Name, path, st.Size(), float64(st.Size())/float64(w.Count())), nil
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	insts := fs.Int64("insts", 4_000_000, "instructions to simulate (trace loops if shorter)")
	pf := fs.String("pf", "none", "prefetcher: none, stride, bandit")
	seed := fs.Uint64("seed", 1, "bandit seed")
	telemetry := fs.String("telemetry", "", "write a JSONL telemetry event stream to this path (plus timeline.csv/regret.csv alongside)")
	telemetryEvery := fs.Int("telemetry-every", 100, "telemetry snapshot/interval cadence in bandit steps")
	simFields := fs.Bool("sim-fields", false, "with -telemetry: add simulator-effectiveness fields (chunk_hit_rate, ff_coverage) to interval events")
	_ = fs.Parse(args)

	if *in == "" {
		usageErr(fs, fmt.Errorf("replay needs -in"))
	}
	if *insts <= 0 {
		usageErr(fs, fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	if *telemetryEvery <= 0 {
		usageErr(fs, fmt.Errorf("-telemetry-every must be positive, got %d", *telemetryEvery))
	}
	switch *pf {
	case "none", "stride", "bandit":
	default:
		usageErr(fs, fmt.Errorf("unknown prefetcher %q (valid: none, stride, bandit)", *pf))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	insts2, err := r.ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(insts2) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}
	// §6.2: short traces are concatenated until the budget is reached.
	gen := trace.NewLoop(r.TraceName(), insts2)

	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), hier, gen)
	var (
		l2   prefetch.Prefetcher = prefetch.Null{}
		ctrl core.Controller
		tun  prefetch.Tunable
	)
	switch *pf {
	case "none":
	case "stride":
		l2 = prefetch.NewIPStride(64, 4)
	case "bandit":
		ens := prefetch.NewTable7Ensemble()
		ctrl = core.MustNew(core.Config{
			Arms: ens.NumArms(), Policy: core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: true, Seed: *seed,
		})
		l2, tun = ens, ens
	default:
		fatal(fmt.Errorf("unknown prefetcher %q", *pf))
	}
	var rec obs.Recorder
	var collector *obs.Collector
	if *telemetry != "" {
		collector = obs.NewCollector(*telemetryEvery)
		rec = collector.Slot(0, r.TraceName())
		obs.Attach(ctrl, rec, *telemetryEvery)
	}
	runner := cpu.NewRunner(c, l2, ctrl, tun)
	if rec != nil {
		runner.Obs = rec
		runner.ObsEvery = *telemetryEvery
		runner.ObsSimCounters = *simFields
	}
	ctx, stop := interruptCtx()
	defer stop()
	interrupted := runner.RunCtx(ctx, *insts) != nil
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindRunEnd, Step: runner.Steps(),
			Fields: obs.NewFields().Set(obs.FieldIPC, c.IPC())})
		if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
			fatal(fmt.Errorf("telemetry: %w", err))
		}
	}
	note := ""
	if interrupted {
		note = " [interrupted; partial]"
	}
	fmt.Printf("replayed %s: %d insts, %d cycles, IPC %.4f%s\n",
		r.TraceName(), c.Insts(), c.Cycles(), c.IPC(), note)
	if interrupted {
		os.Exit(1)
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	_ = fs.Parse(args)
	if *in == "" {
		usageErr(fs, fmt.Errorf("info needs -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var counts [5]int64
	var total int64
	var inst trace.Inst
	for {
		if err := r.Read(&inst); err != nil {
			break
		}
		counts[inst.Kind]++
		total++
	}
	fmt.Printf("trace %s: %d instructions\n", r.TraceName(), total)
	for k, n := range counts {
		if total > 0 {
			fmt.Printf("  %-7s %10d (%.1f%%)\n", trace.Kind(k), n, 100*float64(n)/float64(total))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mab-trace:", err)
	os.Exit(1)
}

// catalogNames returns the valid -app values for error messages.
func catalogNames() string {
	var names []string
	for _, a := range trace.Catalog() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// usageErr reports a bad flag value and exits 2 with the subcommand's
// usage.
func usageErr(fs *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "mab-trace:", err)
	fs.Usage()
	os.Exit(2)
}
