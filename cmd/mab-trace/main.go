// Command mab-trace records synthetic applications into the binary trace
// format and replays trace files through the core model — the trace-driven
// methodology of the paper's ChampSim platform (§6.1), including the
// concatenate-short-traces rule of §6.2 (replayed traces loop until the
// instruction budget is met).
//
// Usage:
//
//	mab-trace record -app lbm17 -insts 2000000 -out lbm17.mbt
//	mab-trace record -app lbm17,mcf06,bfs -j 4
//	mab-trace replay -in lbm17.mbt -insts 4000000 -pf bandit
//	mab-trace info -in lbm17.mbt
//
// With a comma-separated -app list (or "all"), record writes one
// <app>.mbt per application, fanning the recordings out across -j worker
// goroutines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/par"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mab-trace {record|replay|info} [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appNames := fs.String("app", "lbm17", "application(s) to record: a name, a comma-separated list, or \"all\"")
	insts := fs.Int64("insts", 2_000_000, "instructions to record")
	out := fs.String("out", "", "output trace file (single app only; default <app>.mbt)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("j", 0, "worker goroutines for multi-app recording (0 = one per CPU)")
	_ = fs.Parse(args)

	if *insts <= 0 {
		usageErr(fs, fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	if *workers < 0 {
		usageErr(fs, fmt.Errorf("-j must be >= 0, got %d", *workers))
	}
	var apps []trace.App
	if *appNames == "all" {
		apps = trace.Catalog()
	} else {
		for _, name := range strings.Split(*appNames, ",") {
			app, err := trace.ByName(strings.TrimSpace(name))
			if err != nil {
				usageErr(fs, fmt.Errorf("%v (valid: %s, or \"all\")", err, catalogNames()))
			}
			apps = append(apps, app)
		}
	}
	if *out != "" && len(apps) > 1 {
		usageErr(fs, fmt.Errorf("-out only applies to a single app; got %d", len(apps)))
	}

	// Each recording owns its generator and output file; reports print in
	// input order regardless of worker count.
	type result struct {
		report string
		err    error
	}
	results := par.Run(*workers, apps, func(app trace.App) result {
		path := *out
		if path == "" {
			path = app.Name + ".mbt"
		}
		report, err := recordOne(app, path, *insts, *seed)
		return result{report, err}
	})
	for _, r := range results {
		if r.err != nil {
			fatal(r.err)
		}
		fmt.Print(r.report)
	}
}

// recordOne writes one application's trace file and returns the report
// line.
func recordOne(app trace.App, path string, insts int64, seed uint64) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, app.Name)
	if err != nil {
		return "", err
	}
	g := app.New(seed)
	var inst trace.Inst
	for i := int64(0); i < insts; i++ {
		g.Next(&inst)
		if err := w.Write(&inst); err != nil {
			return "", err
		}
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("recorded %d instructions of %s to %s (%d bytes, %.2f B/inst)\n",
		w.Count(), app.Name, path, st.Size(), float64(st.Size())/float64(w.Count())), nil
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	insts := fs.Int64("insts", 4_000_000, "instructions to simulate (trace loops if shorter)")
	pf := fs.String("pf", "none", "prefetcher: none, stride, bandit")
	seed := fs.Uint64("seed", 1, "bandit seed")
	_ = fs.Parse(args)

	if *in == "" {
		usageErr(fs, fmt.Errorf("replay needs -in"))
	}
	if *insts <= 0 {
		usageErr(fs, fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	switch *pf {
	case "none", "stride", "bandit":
	default:
		usageErr(fs, fmt.Errorf("unknown prefetcher %q (valid: none, stride, bandit)", *pf))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	insts2, err := r.ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(insts2) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}
	// §6.2: short traces are concatenated until the budget is reached.
	gen := trace.NewLoop(r.TraceName(), insts2)

	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), hier, gen)
	var (
		l2   prefetch.Prefetcher = prefetch.Null{}
		ctrl core.Controller
		tun  prefetch.Tunable
	)
	switch *pf {
	case "none":
	case "stride":
		l2 = prefetch.NewIPStride(64, 4)
	case "bandit":
		ens := prefetch.NewTable7Ensemble()
		ctrl = core.MustNew(core.Config{
			Arms: ens.NumArms(), Policy: core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: true, Seed: *seed,
		})
		l2, tun = ens, ens
	default:
		fatal(fmt.Errorf("unknown prefetcher %q", *pf))
	}
	runner := cpu.NewRunner(c, l2, ctrl, tun)
	runner.Run(*insts)
	fmt.Printf("replayed %s: %d insts, %d cycles, IPC %.4f\n",
		r.TraceName(), c.Insts(), c.Cycles(), c.IPC())
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	_ = fs.Parse(args)
	if *in == "" {
		usageErr(fs, fmt.Errorf("info needs -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var counts [5]int64
	var total int64
	var inst trace.Inst
	for {
		if err := r.Read(&inst); err != nil {
			break
		}
		counts[inst.Kind]++
		total++
	}
	fmt.Printf("trace %s: %d instructions\n", r.TraceName(), total)
	for k, n := range counts {
		if total > 0 {
			fmt.Printf("  %-7s %10d (%.1f%%)\n", trace.Kind(k), n, 100*float64(n)/float64(total))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mab-trace:", err)
	os.Exit(1)
}

// catalogNames returns the valid -app values for error messages.
func catalogNames() string {
	var names []string
	for _, a := range trace.Catalog() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// usageErr reports a bad flag value and exits 2 with the subcommand's
// usage.
func usageErr(fs *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "mab-trace:", err)
	fs.Usage()
	os.Exit(2)
}
