package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"microbandit/internal/trace"
)

// TestRecordRoundTripChunkBoundary records an instruction budget that
// straddles a chunk boundary (one full slab plus a short tail) and
// checks the file replays exactly the scalar generator stream — the
// chunked record path must not change the .mbt format or the bytes in
// it, including for budgets that are not a multiple of ChunkLen.
func TestRecordRoundTripChunkBoundary(t *testing.T) {
	const insts = trace.ChunkLen + 37
	app, err := trace.ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lbm17.mbt")
	if _, err := recordOne(context.Background(), app, path, insts, 1); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.TraceName() != app.Name {
		t.Fatalf("trace name = %q, want %q", r.TraceName(), app.Name)
	}

	// The recorded stream must match a fresh scalar generator bit for
	// bit, across the ChunkLen boundary and through the short tail.
	g := app.New(1)
	var got, want trace.Inst
	for i := 0; i < insts; i++ {
		if err := r.Read(&got); err != nil {
			t.Fatalf("inst %d: read: %v", i, err)
		}
		g.Next(&want)
		if got != want {
			t.Fatalf("inst %d: recorded %+v, scalar generator %+v", i, got, want)
		}
	}
	if err := r.Read(&got); err == nil {
		t.Fatalf("trace longer than the %d-instruction budget", insts)
	}
}

// TestReplayLoopChunked pins the §6.2 loop-replay path: a Loop over the
// recorded instructions serves chunks identical to its scalar stream
// even when reads wrap past the end of the trace mid-chunk.
func TestReplayLoopChunked(t *testing.T) {
	const insts = trace.ChunkLen/2 + 11 // wraps several times per chunk
	app, err := trace.ByName("mcf06")
	if err != nil {
		t.Fatal(err)
	}
	g := app.New(7)
	recorded := make([]trace.Inst, insts)
	for i := range recorded {
		g.Next(&recorded[i])
	}

	scalar := trace.NewLoop(app.Name, recorded)
	chunked := trace.SourceOf(trace.NewLoop(app.Name, recorded))
	var c trace.Chunk
	var want trace.Inst
	pos := 0
	for read := 0; read < 3*trace.ChunkLen; read += c.Len() {
		c.Reset(trace.ChunkLen)
		chunked.NextChunk(&c)
		for i := 0; i < c.Len(); i++ {
			var got trace.Inst
			c.Get(i, &got)
			scalar.Next(&want)
			if got != want {
				t.Fatalf("inst %d (loop pos %d): chunked %+v, scalar %+v", read+i, pos, got, want)
			}
			pos = (pos + 1) % insts
		}
	}
}
