// Command mab-serve runs the bandit decision server and its load
// generator.
//
// Usage:
//
//	mab-serve serve [-addr :8080] [-shards 64]
//	                [-checkpoint ckpt.json] [-checkpoint-every 30s]
//	                [-telemetry out.jsonl] [-telemetry-every 100]
//	mab-serve loadgen [-workers 8] [-duration 2s] [-arms 8] [-algo ducb]
//	                  [-batch N] [-warmup 200ms] [-out BENCH_serve.json]
//	mab-serve -version
//
// serve starts the HTTP API. With -checkpoint it restores existing
// sessions from the file on start, persists all sessions on the
// -checkpoint-every interval, and — on SIGINT/SIGTERM — drains in-flight
// requests and writes a final checkpoint before exiting, so a restarted
// server resumes every session's exact decision sequence.
//
// loadgen measures an in-process server (no sockets): closed-loop
// workers each drive a private session flat out — or, with -batch N,
// N sessions each through one /v1/batch request per round — and the
// run's throughput and p50/p99/p999 request latencies print as JSON
// (and land in -out when set). A warmup window (default a tenth of the
// duration) runs first and is excluded from the measurement.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"microbandit/internal/core"
	"microbandit/internal/obs"
	"microbandit/internal/serve"
	"microbandit/internal/serve/loadgen"
	"microbandit/internal/version"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usageErr(errors.New("expected a subcommand: serve, loadgen, or -version"))
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Println("mab-serve", version.String())
	case "serve":
		runServe(args[1:])
	case "loadgen":
		runLoadgen(args[1:])
	case "-h", "--help", "help":
		usage(os.Stdout)
	default:
		usageErr(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

// runServe is the server subcommand: restore, listen, checkpoint on a
// timer, drain and checkpoint on SIGINT/SIGTERM.
func runServe(args []string) {
	fs := flag.NewFlagSet("mab-serve serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", serve.DefaultShards, "session store shards (rounded up to a power of two)")
	ckptPath := fs.String("checkpoint", "", "checkpoint file: restored on start, written on the interval and on shutdown")
	ckptEvery := fs.Duration("checkpoint-every", 30*time.Second, "checkpoint interval (0 disables periodic checkpoints)")
	telemetry := fs.String("telemetry", "", "write a JSONL telemetry event stream to this path on shutdown")
	telemetryEvery := fs.Int("telemetry-every", 100, "telemetry snapshot cadence in bandit steps")
	fs.Parse(args)
	if *shards <= 0 {
		usageErr(fmt.Errorf("-shards must be positive, got %d", *shards))
	}
	if *telemetryEvery <= 0 {
		usageErr(fmt.Errorf("-telemetry-every must be positive, got %d", *telemetryEvery))
	}

	store := serve.NewStore(*shards)
	if *ckptPath != "" {
		restored, err := serve.LoadCheckpoint(*ckptPath, *shards)
		switch {
		case err == nil:
			store = restored
			fmt.Fprintf(os.Stderr, "mab-serve: restored %d sessions from %s\n", store.Len(), *ckptPath)
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "mab-serve: no checkpoint at %s; starting empty\n", *ckptPath)
		default:
			// A corrupt checkpoint is fatal: silently starting empty would
			// discard every session on the next checkpoint write.
			fmt.Fprintf(os.Stderr, "mab-serve: %v\n", err)
			os.Exit(1)
		}
	}

	var collector *obs.Collector
	cfg := serve.Config{
		Store:          store,
		ObsEvery:       *telemetryEvery,
		Version:        version.String(),
		CheckpointPath: *ckptPath,
	}
	if *telemetry != "" {
		collector = obs.NewCollector(*telemetryEvery)
		cfg.Obs = collector.Slot(0, "serve")
	}
	srv := serve.New(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints, stopping with the signal context.
	tickerDone := make(chan struct{})
	if *ckptPath != "" && *ckptEvery > 0 {
		go func() {
			defer close(tickerDone)
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := store.WriteCheckpoint(*ckptPath); err != nil {
						fmt.Fprintf(os.Stderr, "mab-serve: checkpoint: %v\n", err)
					}
				}
			}
		}()
	} else {
		close(tickerDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mab-serve: %s listening on %s\n", version.String(), *addr)

	exit := 0
	select {
	case err := <-serveErr:
		// The listener failed outright (bad address, port in use).
		fmt.Fprintf(os.Stderr, "mab-serve: %v\n", err)
		exit = 1
	case <-ctx.Done():
		// Drain in-flight requests, bounded so a wedged connection cannot
		// hold the shutdown hostage past the final checkpoint.
		fmt.Fprintln(os.Stderr, "mab-serve: signal received; draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := httpSrv.Shutdown(shutCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: drain: %v\n", err)
			exit = 1
		}
	}
	stop()
	<-tickerDone

	// Final state persists after the last request finished.
	if *ckptPath != "" {
		if err := store.WriteCheckpoint(*ckptPath); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: final checkpoint: %v\n", err)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "mab-serve: checkpointed %d sessions to %s\n", store.Len(), *ckptPath)
		}
	}
	if collector != nil {
		if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: telemetry: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// runLoadgen is the load generator subcommand, measuring an in-process
// server instance.
func runLoadgen(args []string) {
	fs := flag.NewFlagSet("mab-serve loadgen", flag.ExitOnError)
	workers := fs.Int("workers", 8, "closed-loop workers (one session each)")
	duration := fs.Duration("duration", 2*time.Second, "measured run length")
	batch := fs.Int("batch", 0, "sessions per worker driven through one /v1/batch request per round (0 = scalar step/reward)")
	warmup := fs.Duration("warmup", 0, "unmeasured warmup before the clock starts (0 = duration/10, negative disables)")
	arms := fs.Int("arms", 8, "arms per session")
	algo := fs.String("algo", "ducb", "bandit algorithm: "+strings.Join(core.AlgoNames(), ", "))
	seed := fs.Uint64("seed", 1, "base seed (diversified per worker)")
	shards := fs.Int("shards", serve.DefaultShards, "session store shards")
	out := fs.String("out", "", "also write the result JSON to this file")
	fs.Parse(args)
	if *workers <= 0 {
		usageErr(fmt.Errorf("-workers must be positive, got %d", *workers))
	}
	if *duration <= 0 {
		usageErr(fmt.Errorf("-duration must be positive, got %v", *duration))
	}

	// An interrupt ends the run early; the partial measurement still
	// prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(serve.Config{Store: serve.NewStore(*shards), Version: version.String()})
	res, err := loadgen.Run(ctx, loadgen.Options{
		Handler:  srv,
		Workers:  *workers,
		Duration: *duration,
		Batch:    *batch,
		Warmup:   *warmup,
		Spec:     serve.Spec{Algo: *algo, Arms: *arms, Seed: *seed},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mab-serve: loadgen: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mab-serve: loadgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: loadgen: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage(w *os.File) {
	fmt.Fprintln(w, `mab-serve — bandit decision server

  mab-serve serve [-addr :8080] [-shards N] [-checkpoint ckpt.json]
                  [-checkpoint-every 30s] [-telemetry out.jsonl]
  mab-serve loadgen [-workers 8] [-duration 2s] [-arms 8] [-algo ducb]
                    [-batch N] [-warmup 200ms] [-out BENCH_serve.json]
  mab-serve -version

Run "mab-serve serve -h" or "mab-serve loadgen -h" for flag details.`)
}

// usageErr reports a bad invocation and exits 2.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "mab-serve:", err)
	usage(os.Stderr)
	os.Exit(2)
}
