// Command mab-serve runs the bandit decision server and its load
// generator.
//
// Usage:
//
//	mab-serve serve [-addr :8080] [-shards 64]
//	                [-checkpoint ckpt.json] [-checkpoint-every 30s]
//	                [-telemetry out.jsonl] [-telemetry-every 100]
//	mab-serve node [-addr :8081] [-name node-0] [-replica http://host:port]
//	               [-replica-name node-1] [-replicate-every 250ms]
//	               [-checkpoint ckpt.json] [-shards 64]
//	mab-serve router [-addr :8080] [-nodes name=url,name=url,...]
//	                 [-probe-every 250ms] [-fail-after 3] [-vnodes 64]
//	mab-serve loadgen [-workers 8] [-duration 2s] [-arms 8] [-algo ducb]
//	                  [-batch N] [-warmup 200ms] [-out BENCH_serve.json]
//	                  [-target http://host:port[,http://host:port...]]
//	mab-serve -version
//
// serve starts the HTTP API. With -checkpoint it restores existing
// sessions from the file on start, persists all sessions on the
// -checkpoint-every interval, and — on SIGINT/SIGTERM — drains in-flight
// requests and writes a final checkpoint before exiting, so a restarted
// server resumes every session's exact decision sequence.
//
// node runs one member of a serving ring: the same HTTP API plus the
// /v1/replica/* receiver endpoints, and — with -replica — a background
// replicator streaming checkpoint record deltas to its ring successor.
// On SIGINT/SIGTERM the node drains in two beats: readiness fails first
// (the router stops placing traffic), then mutating operations bounce
// with Retry-After while a final replica sync and checkpoint land.
//
// router fronts a ring of nodes: a consistent-hash ring places every
// session, scalar and batch operations forward to their owner, and a
// node whose probes and requests keep failing is replaced by promoting
// its ring successor (which holds its replicated checkpoints).
//
// loadgen measures an in-process server (no sockets): closed-loop
// workers each drive a private session flat out — or, with -batch N,
// N sessions each through one /v1/batch request per round — and the
// run's throughput and p50/p99/p999 request latencies print as JSON
// (and land in -out when set). A warmup window (default a tenth of the
// duration) runs first and is excluded from the measurement. With
// -target the same workers drive one or more live servers over real
// sockets instead (round-robin across the URLs), and the result carries
// a per-target latency breakdown.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"microbandit/internal/cluster"
	"microbandit/internal/core"
	"microbandit/internal/obs"
	"microbandit/internal/serve"
	"microbandit/internal/serve/loadgen"
	"microbandit/internal/version"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usageErr(errors.New("expected a subcommand: serve, loadgen, or -version"))
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Println("mab-serve", version.String())
	case "serve":
		runServe(args[1:])
	case "node":
		runNode(args[1:])
	case "router":
		runRouter(args[1:])
	case "loadgen":
		runLoadgen(args[1:])
	case "-h", "--help", "help":
		usage(os.Stdout)
	default:
		usageErr(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

// runServe is the server subcommand: restore, listen, checkpoint on a
// timer, drain and checkpoint on SIGINT/SIGTERM.
func runServe(args []string) {
	fs := flag.NewFlagSet("mab-serve serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", serve.DefaultShards, "session store shards (rounded up to a power of two)")
	ckptPath := fs.String("checkpoint", "", "checkpoint file: restored on start, written on the interval and on shutdown")
	ckptEvery := fs.Duration("checkpoint-every", 30*time.Second, "checkpoint interval (0 disables periodic checkpoints)")
	telemetry := fs.String("telemetry", "", "write a JSONL telemetry event stream to this path on shutdown")
	telemetryEvery := fs.Int("telemetry-every", 100, "telemetry snapshot cadence in bandit steps")
	fs.Parse(args)
	if *shards <= 0 {
		usageErr(fmt.Errorf("-shards must be positive, got %d", *shards))
	}
	if *telemetryEvery <= 0 {
		usageErr(fmt.Errorf("-telemetry-every must be positive, got %d", *telemetryEvery))
	}

	store := serve.NewStore(*shards)
	if *ckptPath != "" {
		restored, err := serve.LoadCheckpoint(*ckptPath, *shards)
		switch {
		case err == nil:
			store = restored
			fmt.Fprintf(os.Stderr, "mab-serve: restored %d sessions from %s\n", store.Len(), *ckptPath)
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "mab-serve: no checkpoint at %s; starting empty\n", *ckptPath)
		default:
			// A corrupt checkpoint is fatal: silently starting empty would
			// discard every session on the next checkpoint write.
			fmt.Fprintf(os.Stderr, "mab-serve: %v\n", err)
			os.Exit(1)
		}
	}

	var collector *obs.Collector
	cfg := serve.Config{
		Store:          store,
		ObsEvery:       *telemetryEvery,
		Version:        version.String(),
		CheckpointPath: *ckptPath,
	}
	if *telemetry != "" {
		collector = obs.NewCollector(*telemetryEvery)
		cfg.Obs = collector.Slot(0, "serve")
	}
	srv := serve.New(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints, stopping with the signal context.
	tickerDone := make(chan struct{})
	if *ckptPath != "" && *ckptEvery > 0 {
		go func() {
			defer close(tickerDone)
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := store.WriteCheckpoint(*ckptPath); err != nil {
						fmt.Fprintf(os.Stderr, "mab-serve: checkpoint: %v\n", err)
					}
				}
			}
		}()
	} else {
		close(tickerDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mab-serve: %s listening on %s\n", version.String(), *addr)

	exit := 0
	select {
	case err := <-serveErr:
		// The listener failed outright (bad address, port in use).
		fmt.Fprintf(os.Stderr, "mab-serve: %v\n", err)
		exit = 1
	case <-ctx.Done():
		// Drain in-flight requests, bounded so a wedged connection cannot
		// hold the shutdown hostage past the final checkpoint.
		fmt.Fprintln(os.Stderr, "mab-serve: signal received; draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := httpSrv.Shutdown(shutCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: drain: %v\n", err)
			exit = 1
		}
	}
	stop()
	<-tickerDone

	// Final state persists after the last request finished.
	if *ckptPath != "" {
		if err := store.WriteCheckpoint(*ckptPath); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: final checkpoint: %v\n", err)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "mab-serve: checkpointed %d sessions to %s\n", store.Len(), *ckptPath)
		}
	}
	if collector != nil {
		if err := obs.WriteFiles(*telemetry, *telemetryEvery, collector.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: telemetry: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// runNode is the cluster-node subcommand: one ring member with the
// replica receiver mounted and, when -replica is set, a background
// replicator shipping checkpoint deltas to its successor.
func runNode(args []string) {
	fs := flag.NewFlagSet("mab-serve node", flag.ExitOnError)
	addr := fs.String("addr", ":8081", "listen address")
	name := fs.String("name", "", "this node's logical name (labels its checkpoint stream; required)")
	replica := fs.String("replica", "", "ring successor's base URL to stream checkpoints to (empty = no replication)")
	replicaName := fs.String("replica-name", "", "ring successor's logical name (defaults to the -replica URL)")
	replicateEvery := fs.Duration("replicate-every", cluster.DefaultReplicateEvery, "replication cadence")
	ckptPath := fs.String("checkpoint", "", "local checkpoint file: restored on start, written on shutdown")
	shards := fs.Int("shards", serve.DefaultShards, "session store shards")
	grace := fs.Duration("drain-grace", 2*time.Second, "pause between failing readiness and refusing operations on shutdown")
	fs.Parse(args)
	if *name == "" {
		usageErr(errors.New("node: -name is required (ring placement depends on it)"))
	}
	if *shards <= 0 {
		usageErr(fmt.Errorf("-shards must be positive, got %d", *shards))
	}

	store := serve.NewStore(*shards)
	if *ckptPath != "" {
		restored, err := serve.LoadCheckpoint(*ckptPath, *shards)
		switch {
		case err == nil:
			store = restored
			fmt.Fprintf(os.Stderr, "mab-serve: node %s restored %d sessions from %s\n", *name, store.Len(), *ckptPath)
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "mab-serve: node %s: no checkpoint at %s; starting empty\n", *name, *ckptPath)
		default:
			fmt.Fprintf(os.Stderr, "mab-serve: node %s: %v\n", *name, err)
			os.Exit(1)
		}
	}

	cfg := cluster.NodeConfig{
		Name:           *name,
		Server:         serve.Config{Store: store, Version: version.String(), CheckpointPath: *ckptPath},
		ReplicateEvery: *replicateEvery,
	}
	if *replica != "" {
		rname := *replicaName
		if rname == "" {
			rname = *replica
		}
		cfg.Replica = cluster.Endpoint{
			Name:   rname,
			Base:   strings.TrimRight(*replica, "/"),
			Client: &http.Client{Timeout: 10 * time.Second},
		}
	}
	node := cluster.NewNode(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	replDone := make(chan struct{})
	go func() { defer close(replDone); node.Run(ctx) }()

	httpSrv := &http.Server{Addr: *addr, Handler: node}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mab-serve: node %s (%s) listening on %s\n", *name, version.String(), *addr)

	exit := 0
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "mab-serve: node %s: %v\n", *name, err)
		exit = 1
	case <-ctx.Done():
		// Two-beat drain: fail readiness first so the router stops
		// placing traffic, then refuse mutating operations with
		// Retry-After while the final sync and checkpoint land.
		fmt.Fprintf(os.Stderr, "mab-serve: node %s: signal received; draining\n", *name)
		node.Server().SetState(serve.StateNotReady)
		time.Sleep(*grace)
		node.Server().SetState(serve.StateDraining)
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := httpSrv.Shutdown(shutCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: node %s: drain: %v\n", *name, err)
			exit = 1
		}
		if r := node.Replicator(); r != nil {
			syncCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := r.Sync(syncCtx); err != nil {
				fmt.Fprintf(os.Stderr, "mab-serve: node %s: final replica sync: %v\n", *name, err)
				exit = 1
			}
			cancel()
		}
	}
	stop()
	<-replDone
	if *ckptPath != "" {
		if err := store.WriteCheckpoint(*ckptPath); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: node %s: final checkpoint: %v\n", *name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// runRouter is the cluster-router subcommand.
func runRouter(args []string) {
	fs := flag.NewFlagSet("mab-serve router", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	nodeList := fs.String("nodes", "", "comma-separated ring membership, in replication order: name=url[,name=url...] (required)")
	probeEvery := fs.Duration("probe-every", 250*time.Millisecond, "readiness probe cadence")
	failAfter := fs.Int("fail-after", 3, "consecutive failure signals before promoting a node's replica")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual ring points per node")
	fs.Parse(args)
	if *nodeList == "" {
		usageErr(errors.New("router: -nodes is required"))
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var rns []cluster.RouterNode
	for _, entry := range strings.Split(*nodeList, ",") {
		name, url, ok := strings.Cut(entry, "=")
		if !ok {
			name, url = entry, entry
		}
		if name == "" || url == "" {
			usageErr(fmt.Errorf("router: bad -nodes entry %q (want name=url)", entry))
		}
		rns = append(rns, cluster.RouterNode{Name: name, Endpoint: cluster.Endpoint{
			Name:   name,
			Base:   strings.TrimRight(url, "/"),
			Client: client,
		}})
	}
	rt := cluster.NewRouter(cluster.RouterConfig{
		Nodes:      rns,
		VNodes:     *vnodes,
		ProbeEvery: *probeEvery,
		FailAfter:  *failAfter,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	probeDone := make(chan struct{})
	go func() { defer close(probeDone); rt.Run(ctx) }()

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mab-serve: router (%s) fronting %d nodes on %s\n", version.String(), len(rns), *addr)

	exit := 0
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "mab-serve: router: %v\n", err)
		exit = 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := httpSrv.Shutdown(shutCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: router: drain: %v\n", err)
			exit = 1
		}
	}
	stop()
	<-probeDone
	os.Exit(exit)
}

// runLoadgen is the load generator subcommand, measuring an in-process
// server instance.
func runLoadgen(args []string) {
	fs := flag.NewFlagSet("mab-serve loadgen", flag.ExitOnError)
	workers := fs.Int("workers", 8, "closed-loop workers (one session each)")
	duration := fs.Duration("duration", 2*time.Second, "measured run length")
	batch := fs.Int("batch", 0, "sessions per worker driven through one /v1/batch request per round (0 = scalar step/reward)")
	warmup := fs.Duration("warmup", 0, "unmeasured warmup before the clock starts (0 = duration/10, negative disables)")
	arms := fs.Int("arms", 8, "arms per session")
	algo := fs.String("algo", "ducb", "bandit algorithm: "+strings.Join(core.AlgoNames(), ", "))
	seed := fs.Uint64("seed", 1, "base seed (diversified per worker)")
	shards := fs.Int("shards", serve.DefaultShards, "session store shards")
	out := fs.String("out", "", "also write the result JSON to this file")
	target := fs.String("target", "", "comma-separated base URLs of live servers to drive over sockets (empty = in-process)")
	fs.Parse(args)
	if *workers <= 0 {
		usageErr(fmt.Errorf("-workers must be positive, got %d", *workers))
	}
	if *duration <= 0 {
		usageErr(fmt.Errorf("-duration must be positive, got %v", *duration))
	}
	// Validate -target before any work starts: a trailing comma or doubled
	// separator should fail the invocation, not silently drop a target.
	var targets []string
	if *target != "" {
		var err error
		if targets, err = parseTargets(*target); err != nil {
			usageErr(err)
		}
	}

	// An interrupt ends the run early; the partial measurement still
	// prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := loadgen.Options{
		Workers:  *workers,
		Duration: *duration,
		Batch:    *batch,
		Warmup:   *warmup,
		Spec:     serve.Spec{Algo: *algo, Arms: *arms, Seed: *seed},
	}
	if len(targets) > 0 {
		for _, base := range targets {
			opts.Targets = append(opts.Targets, loadgen.NewHTTPTarget(base, base))
		}
	} else {
		opts.Handler = serve.New(serve.Config{Store: serve.NewStore(*shards), Version: version.String()})
	}
	res, err := loadgen.Run(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mab-serve: loadgen: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mab-serve: loadgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mab-serve: loadgen: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage(w *os.File) {
	fmt.Fprintln(w, `mab-serve — bandit decision server

  mab-serve serve [-addr :8080] [-shards N] [-checkpoint ckpt.json]
                  [-checkpoint-every 30s] [-telemetry out.jsonl]
  mab-serve node [-addr :8081] -name node-0 [-replica http://host:port]
                 [-replica-name node-1] [-replicate-every 250ms]
                 [-checkpoint ckpt.json] [-drain-grace 2s]
  mab-serve router [-addr :8080] -nodes name=url,name=url,...
                   [-probe-every 250ms] [-fail-after 3] [-vnodes 64]
  mab-serve loadgen [-workers 8] [-duration 2s] [-arms 8] [-algo ducb]
                    [-batch N] [-warmup 200ms] [-out BENCH_serve.json]
                    [-target http://host:port[,...]]
  mab-serve -version

Run "mab-serve <subcommand> -h" for flag details.`)
}

// parseTargets splits and validates the loadgen -target value: a
// comma-separated list of base URLs. Empty elements — trailing commas,
// doubled separators, whitespace-only entries — are rejected so a typo
// fails the run up front instead of dropping a target or producing a
// worker that hammers an empty URL. Trailing slashes are trimmed so path
// joining stays uniform.
func parseTargets(flagVal string) ([]string, error) {
	parts := strings.Split(flagVal, ",")
	targets := make([]string, 0, len(parts))
	for _, base := range parts {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" {
			return nil, fmt.Errorf("-target has an empty URL in %q (want URL[,URL...], e.g. http://host:8081,http://host:8082)", flagVal)
		}
		targets = append(targets, base)
	}
	return targets, nil
}

// usageErr reports a bad invocation and exits 2.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "mab-serve:", err)
	usage(os.Stderr)
	os.Exit(2)
}
