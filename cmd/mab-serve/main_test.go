package main

import (
	"strings"
	"testing"
)

func TestParseTargetsValid(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"http://a:8081", []string{"http://a:8081"}},
		{"http://a:8081/", []string{"http://a:8081"}},
		{"http://a:8081,http://b:8082", []string{"http://a:8081", "http://b:8082"}},
		{" http://a:8081 , http://b:8082/ ", []string{"http://a:8081", "http://b:8082"}},
	}
	for _, c := range cases {
		got, err := parseTargets(c.in)
		if err != nil {
			t.Errorf("parseTargets(%q): unexpected error %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseTargets(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseTargets(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestParseTargetsEmptyURLs: trailing commas, doubled separators, and
// whitespace-only entries must be rejected — with the valid form in the
// message — rather than minting a worker pool aimed at an empty URL.
func TestParseTargetsEmptyURLs(t *testing.T) {
	for _, in := range []string{
		"http://a:8081,",
		",http://a:8081",
		"http://a:8081,,http://b:8082",
		"http://a:8081, ,http://b:8082",
		",",
		"   ",
		"/",
	} {
		got, err := parseTargets(in)
		if err == nil {
			t.Errorf("parseTargets(%q) = %v, want an error", in, got)
			continue
		}
		if !strings.Contains(err.Error(), "URL[,URL...]") {
			t.Errorf("parseTargets(%q) error %q does not show the valid form", in, err)
		}
		if !strings.Contains(err.Error(), in) {
			t.Errorf("parseTargets(%q) error %q does not echo the input", in, err)
		}
	}
}
