// SMT fetch example: the paper's second use case end-to-end.
//
// A Micro-Armed Bandit selects the fetch Priority & Gating policy of a
// 2-way SMT pipeline on top of Choi & Yeung's Hill-Climbing threshold
// controller, and is compared against the Choi policy (IC_1011) and plain
// ICount (IC_0000) on a gcc+lbm mix — the §3.3 scenario where lbm's
// store-queue appetite rewards LSQ-aware policies.
//
// Run: go run ./examples/smtfetch
package main

import (
	"fmt"

	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
)

func main() {
	a, err := smtwork.ByName("gcc")
	if err != nil {
		panic(err)
	}
	b, err := smtwork.ByName("lbm")
	if err != nil {
		panic(err)
	}
	const cycles = 3_000_000

	fmt.Printf("2-way SMT, mix %s-%s, %d cycles\n\n", a.Name, b.Name, cycles)

	run := func(name string, mk func(sim *simsmt.SMT) *simsmt.Runner) float64 {
		sim := simsmt.NewSim(a, b, 11)
		r := mk(sim)
		r.EpochLen = 8 * 1024
		r.RunCycles(cycles)
		rs := sim.RenameStats()
		total := float64(rs.Total())
		fmt.Printf("%-8s sum IPC %.4f  (policy %s; rename: run %.0f%% / stall %.0f%% / idle %.0f%%)\n",
			name, sim.SumIPC(), sim.Policy(),
			100*float64(rs.Running)/total, 100*float64(rs.Stalled())/total,
			100*float64(rs.Idle)/total)
		return sim.SumIPC()
	}

	icount := run("ICount", func(sim *simsmt.SMT) *simsmt.Runner {
		return simsmt.NewFixedRunner(sim, simsmt.ICountPolicy, false)
	})
	choi := run("Choi", func(sim *simsmt.SMT) *simsmt.Runner {
		return simsmt.NewFixedRunner(sim, simsmt.ChoiPolicy, true)
	})
	bandit := run("Bandit", func(sim *simsmt.SMT) *simsmt.Runner {
		r := simsmt.NewRunner(sim, simsmt.NewBanditAgent(11), simsmt.Table1Arms(), true)
		r.RREpochs = 8
		return r
	})

	fmt.Printf("\nBandit vs Choi: %+.1f%%   Bandit vs ICount: %+.1f%%\n",
		(bandit/choi-1)*100, (bandit/icount-1)*100)
	fmt.Println("\nThe Bandit discovers that LSQ-aware arms keep lbm from exhausting")
	fmt.Println("the store queue, which the LSQ-unaware Choi policy cannot see.")
}
