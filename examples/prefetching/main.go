// Prefetching example: the paper's first use case end-to-end.
//
// A Micro-Armed Bandit orchestrates the next-line / stream / PC-stride
// prefetcher ensemble (Table 7 arms) at the L2 of a trace-driven
// out-of-order core. The example runs three synthetic applications with
// very different access characters and shows which arm the Bandit settles
// on for each — the temporal homogeneity the paper exploits.
//
// Run: go run ./examples/prefetching
package main

import (
	"fmt"

	"microbandit"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

func main() {
	fmt.Println("Bandit-orchestrated L2 prefetching (Table 7 arms)")
	fmt.Println()
	for _, appName := range []string{"libquantum", "cactusADM", "canneal"} {
		app, err := trace.ByName(appName)
		if err != nil {
			panic(err)
		}

		// Baseline: no prefetching.
		base := cpu.New(cpu.DefaultConfig(), mem.NewHierarchy(mem.DefaultConfig()), app.New(7))
		cpu.NewRunner(base, prefetch.Null{}, nil, nil).Run(1_500_000)

		// Bandit-controlled ensemble.
		hier := mem.NewHierarchy(mem.DefaultConfig())
		c := cpu.New(cpu.DefaultConfig(), hier, app.New(7))
		ens := prefetch.NewTable7Ensemble()
		agent := microbandit.NewPrefetchAgent(7)
		r := cpu.NewRunner(c, ens, agent, ens)
		r.StepL2 = 500
		r.Run(1_500_000)

		best := agent.BestArm()
		cl := hier.Classify()
		fmt.Printf("%-12s IPC %.3f -> %.3f (%+5.1f%%)  favored arm %d [%s]\n",
			appName, base.IPC(), c.IPC(), (c.IPC()/base.IPC()-1)*100,
			best, ens.Arm(best))
		fmt.Printf("             prefetches: timely %d, late %d, wrong %d\n",
			cl.Timely, cl.Late, cl.Wrong)
	}
	fmt.Println()
	fmt.Println("Each application settles on a different arm: streams want deep")
	fmt.Println("stream prefetching, strided FP code wants the stride prefetcher,")
	fmt.Println("and pointer chasing is best served by staying conservative.")
}
