// Bandwidth-sweep example: the Fig. 10 scenario in miniature.
//
// The same application runs under Pythia and under the Bandit at four
// DRAM channel rates. Because the Bandit's reward is the end result
// (IPC), it learns to stop prefetching aggressively when bandwidth is
// scarce — without being told anything about bandwidth — while Pythia
// needs its explicit bandwidth-usage input to do the same.
//
// Run: go run ./examples/bwsweep
package main

import (
	"fmt"

	"microbandit"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

func main() {
	app, err := trace.ByName("ligra-pagerank") // bandwidth-hungry gather/stream mix
	if err != nil {
		panic(err)
	}
	const insts = 1_200_000

	fmt.Println("DRAM bandwidth sweep on", app.Name)
	fmt.Printf("%-8s %12s %12s %12s\n", "MTPS", "no-prefetch", "Pythia", "Bandit")

	for _, mtps := range []float64{150, 600, 2400, 9600} {
		cfg := mem.DefaultConfig()
		cfg.MTPS = mtps

		run := func(mk func(h *mem.Hierarchy) (*cpu.Runner, *cpu.Core)) float64 {
			h := mem.NewHierarchy(cfg)
			r, c := mk(h)
			r.StepL2 = 500
			r.Run(insts)
			return c.IPC()
		}
		none := run(func(h *mem.Hierarchy) (*cpu.Runner, *cpu.Core) {
			c := cpu.New(cpu.DefaultConfig(), h, app.New(3))
			return cpu.NewRunner(c, prefetch.Null{}, nil, nil), c
		})
		pythia := run(func(h *mem.Hierarchy) (*cpu.Runner, *cpu.Core) {
			c := cpu.New(cpu.DefaultConfig(), h, app.New(3))
			return cpu.NewRunner(c, prefetch.NewPythia(3), nil, nil), c
		})
		bandit := run(func(h *mem.Hierarchy) (*cpu.Runner, *cpu.Core) {
			c := cpu.New(cpu.DefaultConfig(), h, app.New(3))
			ens := prefetch.NewTable7Ensemble()
			return cpu.NewRunner(c, ens, microbandit.NewPrefetchAgent(3), ens), c
		})
		fmt.Printf("%-8.0f %12.3f %12.3f %12.3f\n", mtps, none, pythia, bandit)
	}
	fmt.Println("\nAt low MTPS the Bandit converges to conservative arms; at high")
	fmt.Println("MTPS it opens up the deep stream/stride arms.")
}
