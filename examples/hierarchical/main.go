// Hierarchical example: the paper's §9 future-work extensions in action.
//
//  1. A MetaAgent — a high-level bandit choosing among low-level DUCB
//     agents with different (c, γ) hyperparameters — controls the
//     prefetcher ensemble on two applications with different dynamics:
//     a phase-changing mcf-style trace (wants a forgetful, low-γ agent)
//     and a stationary stream (wants a long-memory agent).
//  2. A Coordinator serializes the §4.3 exploration restarts of four
//     bandits sharing one DRAM channel.
//
// Run: go run ./examples/hierarchical
package main

import (
	"fmt"

	"microbandit"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// pairs are the hyperparameter variants the high-level bandit arbitrates.
var pairs = [][2]float64{
	{microbandit.PrefetchC, 0.99},                          // forgetful
	{microbandit.PrefetchC, microbandit.PrefetchGamma},     // paper default
	{4 * microbandit.PrefetchC, microbandit.PrefetchGamma}, // explorative
}

func main() {
	fmt.Println("Part 1: hierarchical bandit (high-level DUCB over", len(pairs), "hyperparameter levels)")
	for _, appName := range []string{"mcf06", "libquantum"} {
		app, err := trace.ByName(appName)
		if err != nil {
			panic(err)
		}
		meta, err := microbandit.NewDUCBSweepMeta(microbandit.PrefetchArms, pairs, true, 11)
		if err != nil {
			panic(err)
		}
		hier := mem.NewHierarchy(mem.DefaultConfig())
		c := cpu.New(cpu.DefaultConfig(), hier, app.New(11))
		ens := prefetch.NewTable7Ensemble()
		r := cpu.NewRunner(c, ens, meta, ens)
		r.StepL2 = 400
		r.Run(2_000_000)
		p := pairs[meta.BestLevel()]
		fmt.Printf("  %-12s IPC %.3f, preferred level %d (c=%.2f, gamma=%.4f)\n",
			appName, c.IPC(), meta.BestLevel(), p[0], p[1])
	}

	fmt.Println("\nPart 2: coordinated exploration on 4 cores sharing DRAM")
	app, err := trace.ByName("ligra-pagerank")
	if err != nil {
		panic(err)
	}
	run := func(coordinated bool) float64 {
		shared := mem.NewShared(mem.DefaultConfig(), 4)
		coord := microbandit.NewCoordinator()
		var runners []*cpu.Runner
		for i := 0; i < 4; i++ {
			hier := mem.NewCoreHierarchy(mem.DefaultConfig(), shared)
			c := cpu.New(cpu.DefaultConfig(), hier, app.New(uint64(20+i)))
			ens := prefetch.NewTable7Ensemble()
			agent := microbandit.MustNew(microbandit.Config{
				Arms:          ens.NumArms(),
				Policy:        microbandit.NewDUCB(microbandit.PrefetchC, microbandit.PrefetchGamma),
				Normalize:     true,
				RRRestartProb: 0.01, // aggressive, to make coordination visible
				Seed:          uint64(30 + i),
			})
			if coordinated {
				coord.Add(agent)
			}
			r := cpu.NewRunner(c, ens, agent, ens)
			r.StepL2 = 400
			runners = append(runners, r)
		}
		cpu.RunMultiCore(runners, 400_000)
		return cpu.SumIPC(runners)
	}
	free := run(false)
	coordinated := run(true)
	fmt.Printf("  uncoordinated restarts: sum IPC %.3f\n", free)
	fmt.Printf("  coordinated restarts:   sum IPC %.3f\n", coordinated)
	fmt.Println("\nThe coordinator keeps sibling bandits from sweeping their arms")
	fmt.Println("simultaneously, so restart noise does not poison rewards.")
}
