// Quickstart: drive a Micro-Armed Bandit agent on a simple non-stationary
// environment using only the public API.
//
// The environment has four "configurations" (arms) whose rewards mimic a
// program with one coarse phase change: arm 1 is best in the first phase,
// arm 3 in the second. The example shows the bandit-step protocol and why
// the paper picks DUCB — it re-explores after the phase change, while
// plain UCB would stay stuck.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"microbandit"
)

// phaseReward is the environment: the mean reward of each arm per phase,
// with a little deterministic ripple standing in for measurement noise.
func phaseReward(step, arm int) float64 {
	means := [2][4]float64{
		{0.30, 0.90, 0.50, 0.20}, // phase 0: arm 1 is best
		{0.30, 0.20, 0.50, 0.90}, // phase 1: arm 3 is best
	}
	phase := 0
	if step >= 600 {
		phase = 1
	}
	ripple := 0.02 * float64((step*7)%5-2)
	return means[phase][arm] + ripple
}

func run(name string, policy microbandit.Policy) {
	agent := microbandit.MustNew(microbandit.Config{
		Arms:        4,
		Policy:      policy,
		Normalize:   true, // the §4.3 reward normalization
		Seed:        42,
		RecordTrace: true,
	})
	total := 0.0
	const steps = 1200
	for step := 0; step < steps; step++ {
		arm := agent.Step() // which configuration to apply this step
		r := phaseReward(step, arm)
		agent.Reward(r) // observe the step reward (the paper uses IPC)
		total += r
	}
	// How often did the agent use the best arm in each phase?
	trace := agent.Trace()
	phase0Best, phase1Best := 0, 0
	for step, arm := range trace {
		if step < 600 && arm == 1 {
			phase0Best++
		}
		if step >= 600 && arm == 3 {
			phase1Best++
		}
	}
	fmt.Printf("%-12s avg reward %.3f | best-arm usage: phase0 %3.0f%%  phase1 %3.0f%%\n",
		name, total/steps,
		100*float64(phase0Best)/600, 100*float64(phase1Best)/600)
}

func main() {
	fmt.Println("Micro-Armed Bandit quickstart: 4 arms, phase change at step 600")
	run("DUCB", microbandit.NewDUCB(0.05, 0.99))
	run("UCB", microbandit.NewUCB(0.05))
	run("eps-Greedy", microbandit.NewEpsilonGreedy(0.05))
	run("Single", microbandit.NewSingle())
	fmt.Println("\nDUCB adapts to the phase change (high usage in both phases);")
	fmt.Println("UCB locks onto the phase-0 winner; Single never re-explores.")
}
