package prefetch

import "fmt"

// This file implements the first §9 extension: spending a little more
// storage on a larger action space in which arms also select the prefetch
// *fill target* — the usual L2 fill, or an LLC-only fill that avoids
// polluting the small L2 with speculative lines (useful for huge working
// sets where prefetched lines are single-use).

// ExtArmConfig is an ensemble arm extended with a fill-target choice.
type ExtArmConfig struct {
	ArmConfig
	// LLCOnly directs prefetches into the LLC instead of the L2.
	LLCOnly bool
}

// String renders the extended arm.
func (a ExtArmConfig) String() string {
	target := "L2"
	if a.LLCOnly {
		target = "LLC"
	}
	return fmt.Sprintf("%s fill:%s", a.ArmConfig, target)
}

// ExtendedArms returns the Table 7 arms plus LLC-only variants of the
// most aggressive ones — the arms whose pollution cost is highest, where
// a farther fill target is most plausibly the right call.
func ExtendedArms() []ExtArmConfig {
	base := Table7Arms()
	out := make([]ExtArmConfig, 0, len(base)+3)
	for _, a := range base {
		out = append(out, ExtArmConfig{ArmConfig: a})
	}
	for _, idx := range []int{0, 9, 10} { // stream-4, stream-15, stride+stream-15
		out = append(out, ExtArmConfig{ArmConfig: base[idx], LLCOnly: true})
	}
	return out
}

// ExtendedEnsemble is the ensemble over ExtendedArms. It implements
// Tunable plus the TargetAware hook the core runner consults for the fill
// level.
type ExtendedEnsemble struct {
	inner *Ensemble
	arms  []ExtArmConfig
	cur   int
}

// NewExtendedEnsemble builds the extended ensemble.
func NewExtendedEnsemble() *ExtendedEnsemble {
	arms := ExtendedArms()
	baseArms := make([]ArmConfig, len(arms))
	for i, a := range arms {
		baseArms[i] = a.ArmConfig
	}
	return &ExtendedEnsemble{inner: NewEnsemble(baseArms), arms: arms}
}

// Name implements Prefetcher.
func (e *ExtendedEnsemble) Name() string { return "Bandit-Ensemble-Ext" }

// NumArms implements Tunable.
func (e *ExtendedEnsemble) NumArms() int { return len(e.arms) }

// Apply implements Tunable.
func (e *ExtendedEnsemble) Apply(arm int) {
	e.inner.Apply(arm) // panics on out-of-range, matching Tunable's contract
	e.cur = arm
}

// CurrentArm returns the active arm index.
func (e *ExtendedEnsemble) CurrentArm() int { return e.cur }

// Arm returns arm i's configuration.
func (e *ExtendedEnsemble) Arm(i int) ExtArmConfig { return e.arms[i] }

// Operate implements Prefetcher.
func (e *ExtendedEnsemble) Operate(ev Event, buf []uint64) []uint64 {
	return e.inner.Operate(ev, buf)
}

// Reset implements Prefetcher.
func (e *ExtendedEnsemble) Reset() { e.inner.Reset() }

// LLCOnly implements TargetAware.
func (e *ExtendedEnsemble) LLCOnly() bool { return e.arms[e.cur].LLCOnly }

// TargetAware is implemented by prefetchers whose active configuration
// chooses the fill level; the core runner consults it per prefetch.
type TargetAware interface {
	// LLCOnly reports whether prefetches should fill only the LLC.
	LLCOnly() bool
}

// Compile-time interface checks.
var (
	_ Tunable     = (*ExtendedEnsemble)(nil)
	_ TargetAware = (*ExtendedEnsemble)(nil)
)
