package prefetch

import "testing"

func TestBOPLearnsSingleOffset(t *testing.T) {
	p := NewBOP()
	// Pure +2-line pattern: BOP should converge to offset 2.
	var out []uint64
	for i := uint64(0); i < 2*bopRoundLenMax; i++ {
		out = operate(p, evAt(1, 100+2*i, 0))
	}
	if p.CurrentOffset() != 2 {
		t.Fatalf("learned offset %d, want 2", p.CurrentOffset())
	}
	if len(out) != 1 {
		t.Fatalf("BOP degree = %d, want 1", len(out))
	}
}

func TestBOPTurnsOffOnRandom(t *testing.T) {
	p := NewBOP()
	rng := uint64(12345)
	for i := 0; i < 3*bopRoundLenMax; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		operate(p, evAt(1, rng%1_000_000, 0))
	}
	if p.CurrentOffset() != 0 {
		t.Errorf("BOP kept offset %d on random traffic, want off", p.CurrentOffset())
	}
}

// The §8 contrast: on a workload where two different strides are
// concurrently active (imperfect homogeneity), BOP's single offset covers
// at most one of them, while the ensemble's per-PC stride prefetcher
// covers both.
func TestBOPSingleOffsetLimitVsEnsemble(t *testing.T) {
	coverage := func(p Prefetcher) float64 {
		// issuedAt records when each line was last prefetched; a demand
		// only counts as covered if the prefetch is recent (a stale
		// prefetch would long since have been evicted).
		issuedAt := map[uint64]int{}
		covered, total := 0, 0
		var lineA, lineB uint64 = 1000, 1 << 30 / LineSize
		for i := 0; i < 6000; i++ {
			var ev Event
			if i%2 == 0 {
				lineA += 3 // PC 1: +3-line stride
				ev = evAt(1, lineA, 0)
			} else {
				// +7-line stride: lcm(3,7) = 21 exceeds BOP's offset
				// range, so no single offset can cover both streams.
				lineB += 7
				ev = evAt(2, lineB, 0)
			}
			total++
			if at, ok := issuedAt[ev.Addr/LineSize]; ok && i-at < 16 {
				covered++
			}
			for _, a := range operate(p, ev) {
				issuedAt[a/LineSize] = i
			}
		}
		return float64(covered) / float64(total)
	}
	bop := coverage(NewBOP())
	ens := NewEnsemble([]ArmConfig{{StrideDegree: 4, StreamDegree: 0}})
	ensemble := coverage(ens)
	if ensemble < 0.8 {
		t.Errorf("ensemble coverage = %.2f, want high", ensemble)
	}
	if bop > ensemble-0.2 {
		t.Errorf("BOP coverage %.2f not clearly below ensemble %.2f on dual-stride workload",
			bop, ensemble)
	}
}

func TestBOPReset(t *testing.T) {
	p := NewBOP()
	for i := uint64(0); i < 2*bopRoundLenMax; i++ {
		operate(p, evAt(1, 100+i, 0))
	}
	p.Reset()
	if p.CurrentOffset() != 0 {
		t.Error("Reset kept the learned offset")
	}
	if out := operate(p, evAt(1, 55, 0)); len(out) != 0 {
		t.Error("Reset BOP still prefetching")
	}
}
