// Package prefetch implements the L2 data prefetchers of the paper's
// evaluation: the lightweight next-line / stream / PC-stride prefetchers
// the Bandit orchestrates (Table 7), the ensemble wrapper that exposes
// them as bandit arms, and the prior-work comparison points — the IP-stride
// baseline, Bingo, MLOP, the MDP-RL prefetcher Pythia, and the multi-level
// IPCP.
//
// All prefetchers are driven by the stream of L2 demand accesses (L1
// misses), matching the paper's configuration where prefetchers train on
// L1 misses and fill into L2/LLC. A prefetcher consumes one Event per L2
// access and returns the byte addresses it wants prefetched; the core
// model issues them into the hierarchy.
package prefetch

// Event is one L2 demand access presented to a prefetcher.
type Event struct {
	// PC is the program counter of the triggering load/store.
	PC uint64
	// Addr is the accessed byte address.
	Addr uint64
	// Hit reports whether the access hit in the L2.
	Hit bool
	// Cycle is the access time.
	Cycle int64
}

// LineSize is the cache line size in bytes.
const LineSize = 64

// Line returns the event's cache-line-aligned address.
func (e Event) Line() uint64 { return e.Addr &^ uint64(LineSize-1) }

// Prefetcher consumes L2 demand accesses and proposes prefetch addresses.
// Implementations are single-threaded, like the hardware they model.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// Operate observes one L2 demand access and appends the byte
	// addresses to prefetch (possibly none) to buf, returning the
	// extended slice. The caller owns the buffer and reuses it across
	// calls, so the steady-state path allocates nothing.
	Operate(ev Event, buf []uint64) []uint64
	// Reset clears all learned state.
	Reset()
}

// Tunable is a prefetcher whose behaviour is selected from a discrete set
// of configurations ("arms") by an external agent — the interface between
// the Bandit and the prefetcher ensemble.
type Tunable interface {
	Prefetcher
	// NumArms returns the number of selectable configurations.
	NumArms() int
	// Apply switches to the given configuration. It panics on an
	// out-of-range arm: the agent and ensemble are configured together,
	// so a mismatch is a programming error.
	Apply(arm int)
}

// BandwidthAware is implemented by prefetchers that consume a DRAM
// bandwidth-utilization signal (Pythia's distinguishing input). The core
// model feeds it periodically.
type BandwidthAware interface {
	SetBandwidthUtil(frac float64)
}

// Null is the no-prefetching baseline.
type Null struct{}

// Name implements Prefetcher.
func (Null) Name() string { return "NoPrefetch" }

// Operate implements Prefetcher.
func (Null) Operate(_ Event, buf []uint64) []uint64 { return buf }

// Reset implements Prefetcher.
func (Null) Reset() {}
