package prefetch

import (
	"fmt"
	"strings"
)

// This file is the CLI-facing prefetcher registry, mirroring
// core.AlgoNames/ParseAlgo: every command resolves "-pf" through
// NewByName so bad flags fail the same way everywhere, with the valid
// names in the message.

// Names returns the prefetcher names NewByName accepts, in display
// order.
func Names() []string {
	return []string{"none", "stride", "bingo", "mlop", "pythia", "bandit"}
}

// NewByName constructs the named prefetcher configuration (names are
// case-insensitive). "bandit" returns the Table 7 ensemble as both the
// prefetcher and the tunable; the caller attaches its controller. The
// other names return tun == nil. Unknown names return an error listing
// the valid ones.
func NewByName(name string, seed uint64) (l2 Prefetcher, tun Tunable, err error) {
	switch strings.ToLower(name) {
	case "none":
		return Null{}, nil, nil
	case "stride":
		return NewIPStride(64, 4), nil, nil
	case "bingo":
		return NewBingo(64), nil, nil
	case "mlop":
		return NewMLOP(), nil, nil
	case "pythia":
		return NewPythia(seed), nil, nil
	case "bandit":
		ens := NewTable7Ensemble()
		return ens, ens, nil
	default:
		return nil, nil, fmt.Errorf("unknown prefetcher %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
}
