package prefetch

import (
	"testing"
	"testing/quick"
)

// operate drives a prefetcher for one event with a fresh buffer — the
// pre-buffer call shape, kept for test readability.
func operate(p Prefetcher, ev Event) []uint64 { return p.Operate(ev, nil) }

// evAt builds a load event for line n (line number, not byte address).
func evAt(pc uint64, lineNum uint64, cycle int64) Event {
	return Event{PC: pc, Addr: lineNum * LineSize, Cycle: cycle}
}

func lines(addrs []uint64) []uint64 {
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = a / LineSize
	}
	return out
}

func TestEventLine(t *testing.T) {
	e := Event{Addr: 0x12345}
	if e.Line() != 0x12340 {
		t.Errorf("Line = %#x", e.Line())
	}
}

func TestNull(t *testing.T) {
	var n Null
	if n.Name() != "NoPrefetch" || operate(n, evAt(1, 1, 0)) != nil {
		t.Error("Null misbehaves")
	}
	n.Reset()
}

func TestNextLine(t *testing.T) {
	p := &NextLine{Degree: 2}
	got := lines(operate(p, evAt(1, 100, 0)))
	if len(got) != 2 || got[0] != 101 || got[1] != 102 {
		t.Errorf("NextLine = %v", got)
	}
	p.Degree = 0
	if out := operate(p, evAt(1, 100, 0)); len(out) != 0 {
		t.Errorf("disabled NextLine prefetched %v", out)
	}
}

func TestStreamDetectsAscendingRun(t *testing.T) {
	p := NewStream(64, 4)
	var got []uint64
	for i := uint64(0); i < 5; i++ {
		got = operate(p, evAt(9, 1000+i, 0))
	}
	if len(got) != 4 {
		t.Fatalf("confident stream prefetched %d lines, want 4", len(got))
	}
	want := lines(got)
	for i, l := range want {
		if l != 1004+uint64(i)+1 {
			t.Errorf("prefetch %d = line %d, want %d", i, l, 1005+uint64(i))
		}
	}
}

func TestStreamDetectsDescendingRun(t *testing.T) {
	p := NewStream(64, 2)
	var got []uint64
	for i := 0; i < 5; i++ {
		got = operate(p, evAt(9, uint64(1000-i), 0))
	}
	gl := lines(got)
	if len(gl) != 2 || gl[0] != 995 || gl[1] != 994 {
		t.Errorf("descending prefetches = %v", gl)
	}
}

func TestStreamIgnoresRandomAccesses(t *testing.T) {
	p := NewStream(4, 4)
	issued := 0
	// Random jumps across many pages: trackers never gain confidence.
	addrs := []uint64{10, 90000, 555, 123456, 777, 999999, 42, 31415}
	for _, a := range addrs {
		issued += len(operate(p, evAt(1, a, 0)))
	}
	if issued != 0 {
		t.Errorf("random accesses triggered %d prefetches", issued)
	}
}

func TestStreamTrackerReplacementLRU(t *testing.T) {
	p := NewStream(2, 1)
	// Train two pages, then a third evicts the least recently used.
	operate(p, evAt(1, 64*0+1, 0))  // page A
	operate(p, evAt(1, 64*10+1, 0)) // page B
	operate(p, evAt(1, 64*0+2, 0))  // touch A again: B becomes LRU
	operate(p, evAt(1, 64*20+1, 0)) // page C evicts B
	if p.lookup(10) >= 0 {
		t.Error("LRU tracker (page B) not evicted")
	}
	if p.lookup(0) < 0 || p.lookup(20) < 0 {
		t.Error("wrong tracker evicted")
	}
}

func TestIPStrideLearnsStride(t *testing.T) {
	p := NewIPStride(64, 3)
	var got []uint64
	for i := uint64(0); i < 4; i++ {
		got = operate(p, Event{PC: 7, Addr: 1000 + i*256})
	}
	if len(got) != 3 {
		t.Fatalf("stride prefetches = %d, want 3", len(got))
	}
	base := uint64(1000 + 3*256)
	for i, a := range got {
		if a != base+uint64(i+1)*256 {
			t.Errorf("prefetch %d = %d, want %d", i, a, base+uint64(i+1)*256)
		}
	}
}

func TestIPStrideSeparatesPCs(t *testing.T) {
	p := NewIPStride(64, 1)
	// Interleave two PCs with different strides; both should train.
	var gotA, gotB []uint64
	for i := uint64(0); i < 5; i++ {
		gotA = append(gotA[:0], operate(p, Event{PC: 1, Addr: 4096 + i*128})...)
		gotB = append(gotB[:0], operate(p, Event{PC: 2, Addr: (1 << 30) + i*8})...)
	}
	if len(gotA) != 1 || gotA[0] != 4096+4*128+128 {
		t.Errorf("PC1 prefetch = %v", gotA)
	}
	if len(gotB) != 1 || gotB[0] != (1<<30)+4*8+8 {
		t.Errorf("PC2 prefetch = %v", gotB)
	}
}

func TestIPStrideStrideChangeResetsConfidence(t *testing.T) {
	p := NewIPStride(8, 1)
	for i := uint64(0); i < 4; i++ {
		operate(p, Event{PC: 3, Addr: 1000 + i*64})
	}
	// Change the stride: the immediate prefetch must stop.
	if out := operate(p, Event{PC: 3, Addr: 100000}); len(out) != 0 {
		t.Errorf("prefetched %v right after stride break", out)
	}
}

func TestTable7ArmsMatchPaper(t *testing.T) {
	arms := Table7Arms()
	if len(arms) != 11 {
		t.Fatalf("got %d arms, want 11", len(arms))
	}
	// Spot-check against Table 7.
	if arms[1] != (ArmConfig{}) {
		t.Errorf("arm 1 = %+v, want all-off", arms[1])
	}
	if !arms[2].NextLine || arms[2].StrideDegree != 0 || arms[2].StreamDegree != 0 {
		t.Errorf("arm 2 = %+v", arms[2])
	}
	if arms[10].StrideDegree != 15 || arms[10].StreamDegree != 15 {
		t.Errorf("arm 10 = %+v", arms[10])
	}
	if arms[0].StreamDegree != 4 || arms[0].StrideDegree != 0 || arms[0].NextLine {
		t.Errorf("arm 0 = %+v", arms[0])
	}
}

func TestEnsembleApplyControlsComponents(t *testing.T) {
	e := NewTable7Ensemble()
	if e.NumArms() != 11 {
		t.Fatal("wrong arm count")
	}
	e.Apply(1) // everything off
	// Train a stream hard; nothing may be prefetched.
	issued := 0
	for i := uint64(0); i < 50; i++ {
		issued += len(operate(e, evAt(5, 2000+i, 0)))
	}
	if issued != 0 {
		t.Errorf("arm 1 (all off) issued %d prefetches", issued)
	}
	e.Apply(9) // stream degree 15
	var got []uint64
	for i := uint64(50); i < 55; i++ {
		got = operate(e, evAt(5, 2000+i, 0))
	}
	if len(got) != 15 {
		t.Errorf("arm 9 issued %d, want 15", len(got))
	}
	if e.CurrentArm() != 9 {
		t.Error("CurrentArm wrong")
	}
}

func TestEnsembleDedups(t *testing.T) {
	e := NewEnsemble([]ArmConfig{{NextLine: true, StrideDegree: 4, StreamDegree: 4}})
	// A unit-stride run: next-line, stream, and stride all propose line+1.
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = operate(e, evAt(5, 3000+i, 0))
	}
	seen := map[uint64]bool{}
	for _, a := range got {
		l := a / LineSize
		if seen[l] {
			t.Fatalf("duplicate prefetch of line %d in %v", l, lines(got))
		}
		seen[l] = true
	}
}

func TestEnsemblePanics(t *testing.T) {
	assertPanics(t, func() { NewEnsemble(nil) })
	e := NewTable7Ensemble()
	assertPanics(t, func() { e.Apply(11) })
	assertPanics(t, func() { e.Apply(-1) })
}

func TestArmConfigString(t *testing.T) {
	s := (ArmConfig{NextLine: true, StrideDegree: 2, StreamDegree: 3}).String()
	if s != "NL:on stride:2 stream:3" {
		t.Errorf("String = %q", s)
	}
}

func TestBingoLearnsFootprint(t *testing.T) {
	p := NewBingo(16)
	// Region X: trigger at offset 0 from PC 9, then touch offsets 3, 7, 9.
	regionA := uint64(1) << bingoRegionShift * 100
	operate(p, Event{PC: 9, Addr: regionA})
	operate(p, Event{PC: 9, Addr: regionA + 3*LineSize})
	operate(p, Event{PC: 9, Addr: regionA + 7*LineSize})
	operate(p, Event{PC: 9, Addr: regionA + 9*LineSize})
	// Touch enough other regions to retire region A into history.
	for k := uint64(1); k <= 20; k++ {
		operate(p, Event{PC: 50 + k, Addr: regionA + k*(1<<bingoRegionShift)})
	}
	// Recurrence: same PC triggers at the same offset in a new region.
	regionB := regionA + 1000*(1<<bingoRegionShift)
	got := operate(p, Event{PC: 9, Addr: regionB})
	gl := map[uint64]bool{}
	for _, a := range got {
		gl[(a-regionB)/LineSize] = true
	}
	for _, off := range []uint64{3, 7, 9} {
		if !gl[off] {
			t.Errorf("footprint offset %d not replayed; got %v", off, gl)
		}
	}
	if len(got) != 3 {
		t.Errorf("replayed %d lines, want 3", len(got))
	}
}

func TestBingoNoHistoryNoPrefetch(t *testing.T) {
	p := NewBingo(16)
	if out := operate(p, Event{PC: 1, Addr: 0x100000}); len(out) != 0 {
		t.Errorf("cold Bingo prefetched %v", out)
	}
}

func TestMLOPSelectsDominantOffset(t *testing.T) {
	p := NewMLOP()
	// A +3-line pattern: after a round, offset 3 should be selected.
	for i := uint64(0); i < mlopRoundLen+8; i++ {
		operate(p, evAt(1, 100+3*i, 0))
	}
	sel := p.Selected()
	found := false
	for _, off := range sel {
		if off == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("selected offsets %v lack dominant +3", sel)
	}
	// And prefetches are issued with it.
	got := lines(operate(p, evAt(1, 100+3*(mlopRoundLen+9), 0)))
	if len(got) == 0 {
		t.Fatal("no prefetches after selection")
	}
}

func TestMLOPNoSelectionOnRandom(t *testing.T) {
	p := NewMLOP()
	// Spread accesses far apart: no offset clears the threshold.
	for i := uint64(0); i < mlopRoundLen+1; i++ {
		operate(p, evAt(1, i*10000, 0))
	}
	if len(p.Selected()) != 0 {
		t.Errorf("random stream selected offsets %v", p.Selected())
	}
}

func TestPythiaLearnsStream(t *testing.T) {
	p := NewPythia(1)
	// Long unit-stride run with immediate feedback: accuracy rewards
	// should teach Pythia to keep prefetching ahead.
	covered := 0
	issued := 0
	pending := map[uint64]bool{}
	for i := uint64(0); i < 20000; i++ {
		line := 5000 + i
		if pending[line] {
			covered++
		}
		out := operate(p, evAt(3, line, int64(i*10)))
		issued += len(out)
		for _, a := range out {
			pending[a/LineSize] = true
		}
	}
	if issued == 0 {
		t.Fatal("Pythia never prefetched")
	}
	if frac := float64(covered) / 20000; frac < 0.5 {
		t.Errorf("Pythia covered only %.2f of a perfect stream", frac)
	}
}

func TestPythiaBandwidthConservatism(t *testing.T) {
	issueRate := func(bw float64) float64 {
		p := NewPythia(7)
		p.SetBandwidthUtil(bw)
		issued := 0
		// Random accesses: every prefetch is wasted and penalized.
		rng := uint64(1)
		for i := 0; i < 30000; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			line := rng % 1_000_000
			issued += len(operate(p, evAt(4, line, int64(i*10))))
		}
		return float64(issued) / 30000
	}
	low := issueRate(0.0)
	high := issueRate(0.95)
	if high >= low {
		t.Errorf("bandwidth-constrained Pythia issues more (%.3f) than unconstrained (%.3f)",
			high, low)
	}
}

func TestPythiaActionCountsTrack(t *testing.T) {
	p := NewPythia(1)
	for i := uint64(0); i < 100; i++ {
		operate(p, evAt(1, i, 0))
	}
	total := int64(0)
	for _, c := range p.ActionCounts() {
		total += c
	}
	if total != 100 {
		t.Errorf("action counts sum to %d, want 100", total)
	}
}

func TestIPCPConstantStrideClass(t *testing.T) {
	p := NewIPCP(64, 3)
	var got []uint64
	for i := uint64(0); i < 5; i++ {
		got = operate(p, evAt(11, 100+4*i, 0))
	}
	gl := lines(got)
	if len(gl) != 3 || gl[0] != 116+4 || gl[1] != 116+8 || gl[2] != 116+12 {
		t.Errorf("CS prefetches = %v", gl)
	}
}

func TestIPCPGlobalStream(t *testing.T) {
	p := NewIPCP(4, 2)
	// Many different PCs all walking +1 lines: per-IP entries thrash (4
	// entries, 16 PCs) but the global stream detector catches it.
	issued := 0
	for i := uint64(0); i < 400; i++ {
		pc := 100 + i%16
		issued += len(operate(p, evAt(pc, 7000+i, 0)))
	}
	if issued == 0 {
		t.Error("global stream never prefetched")
	}
}

func TestResetClearsState(t *testing.T) {
	ps := []Prefetcher{
		NewStream(8, 4), NewIPStride(8, 4), NewTable7Ensemble(),
		NewBingo(8), NewMLOP(), NewPythia(3), NewIPCP(8, 2),
	}
	for _, p := range ps {
		for i := uint64(0); i < 200; i++ {
			operate(p, evAt(2, 100+i, 0))
		}
		p.Reset()
		// After reset, a fresh single access must not prefetch (no
		// confidence anywhere).
		if out := operate(p, evAt(3, 1_000_000, 0)); len(out) != 0 {
			t.Errorf("%s prefetched %v right after Reset", p.Name(), out)
		}
	}
}

// Property: no prefetcher ever proposes the line it was triggered with.
func TestQuickNoSelfPrefetch(t *testing.T) {
	mk := func() []Prefetcher {
		return []Prefetcher{
			&NextLine{Degree: 2}, NewStream(8, 4), NewIPStride(8, 4),
			NewBingo(8), NewMLOP(), NewPythia(3), NewIPCP(8, 2), NewTable7Ensemble(),
		}
	}
	ps := mk()
	f := func(pcRaw uint8, lineRaw uint16, seq []uint8) bool {
		for _, p := range ps {
			line := uint64(lineRaw) + 1
			for _, s := range seq {
				line += uint64(s % 5)
				out := operate(p, evAt(uint64(pcRaw)+1, line, 0))
				for _, a := range out {
					if a/LineSize == line {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func BenchmarkEnsembleOperate(b *testing.B) {
	e := NewTable7Ensemble()
	e.Apply(5)
	var buf []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.Operate(evAt(1, uint64(i), 0), buf[:0])
	}
}

func BenchmarkPythiaOperate(b *testing.B) {
	p := NewPythia(1)
	var buf []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Operate(evAt(1, uint64(i), int64(i)), buf[:0])
	}
}

// TestEnsembleOperateZeroAlloc pins the caller-supplied-buffer contract:
// once the buffer has grown to its high-water capacity, Operate must not
// allocate.
func TestEnsembleOperateZeroAlloc(t *testing.T) {
	e := NewTable7Ensemble()
	e.Apply(5)
	var buf []uint64
	i := uint64(0)
	for k := 0; k < 10_000; k++ { // warmup: tables and buffer reach steady state
		buf = e.Operate(evAt(1, i, 0), buf[:0])
		i++
	}
	if n := testing.AllocsPerRun(100, func() {
		for k := 0; k < 100; k++ {
			buf = e.Operate(evAt(1, i, 0), buf[:0])
			i++
		}
	}); n != 0 {
		t.Fatalf("Ensemble.Operate allocates %.1f times per run, want 0", n)
	}
}

func TestExtendedEnsemble(t *testing.T) {
	e := NewExtendedEnsemble()
	if e.NumArms() != 14 {
		t.Fatalf("extended arms = %d, want 14", e.NumArms())
	}
	// The first 11 arms match Table 7 with L2 fills.
	for i := 0; i < 11; i++ {
		if e.Arm(i).LLCOnly {
			t.Errorf("base arm %d marked LLC-only", i)
		}
	}
	for i := 11; i < 14; i++ {
		if !e.Arm(i).LLCOnly {
			t.Errorf("extended arm %d not LLC-only", i)
		}
	}
	e.Apply(12)
	if !e.LLCOnly() || e.CurrentArm() != 12 {
		t.Error("Apply(12) did not activate LLC-only mode")
	}
	// The underlying component configuration matches the base arm.
	var got []uint64
	for i := uint64(0); i < 5; i++ {
		got = operate(e, evAt(4, 9000+i, 0))
	}
	if len(got) != 15 { // arm 12 = stream degree 15
		t.Errorf("arm 12 issued %d prefetches, want 15", len(got))
	}
	e.Apply(1)
	if e.LLCOnly() {
		t.Error("base arm still LLC-only")
	}
	assertPanics(t, func() { e.Apply(14) })
	e.Reset()
	if out := operate(e, evAt(5, 1_000_000, 0)); len(out) != 0 {
		t.Errorf("post-Reset prefetch: %v", out)
	}
	if e.Name() == "" {
		t.Error("empty name")
	}
}

func TestExtArmConfigString(t *testing.T) {
	a := ExtArmConfig{ArmConfig: ArmConfig{StreamDegree: 4}, LLCOnly: true}
	if a.String() != "NL:off stride:0 stream:4 fill:LLC" {
		t.Errorf("String = %q", a.String())
	}
}
