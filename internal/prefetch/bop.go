package prefetch

// BOP is the Best-Offset Prefetcher (Michaud, HPCA 2016), implemented as
// the related-work contrast of §8: it learns a single best line offset for
// *all* cache lines by scoring candidate offsets over epochs, and always
// prefetches with degree 1. The paper argues this works under perfect
// temporal homogeneity but cannot adapt when a few different degrees and
// offsets are concurrently optimal — the regime where the Bandit's
// orchestrated ensemble wins. Including BOP lets the harness demonstrate
// that contrast directly.

// BOP scoring parameters (after the published design, compacted).
const (
	bopMaxOffset   = 16
	bopRRCap       = 256 // recent-requests window
	bopScoreMax    = 31  // end the round when an offset saturates
	bopRoundLenMax = 512 // or after this many accesses
	bopBadScore    = 4   // below this, prefetching turns off
)

// BOP is the best-offset prefetcher.
type BOP struct {
	recent  map[uint64]struct{}
	rrOrder fifo[uint64]

	scores  []int
	testIdx int // next candidate offset index to test
	inRound int
	current int // active prefetch offset; 0 = off
}

// NewBOP builds a best-offset prefetcher.
func NewBOP() *BOP {
	return &BOP{
		recent:  make(map[uint64]struct{}, bopRRCap),
		rrOrder: newFifo[uint64](bopRRCap),
		scores:  make([]int, 2*bopMaxOffset+1),
	}
}

// Name implements Prefetcher.
func (p *BOP) Name() string { return "BOP" }

// CurrentOffset returns the active offset (0 when prefetching is off).
func (p *BOP) CurrentOffset() int { return p.current }

// Operate implements Prefetcher.
func (p *BOP) Operate(ev Event, buf []uint64) []uint64 {
	line := ev.Addr >> 6

	// Learning: test one candidate offset per access round-robin — did
	// line-offset appear in the recent-requests window (i.e. would this
	// offset have produced a timely prefetch)?
	off := offsetAt(p.testIdx)
	if off != 0 {
		if _, ok := p.recent[line-uint64(off)]; ok {
			p.scores[p.testIdx]++
			if p.scores[p.testIdx] >= bopScoreMax {
				p.endRound()
			}
		}
	}
	p.testIdx++
	if p.testIdx == len(p.scores) {
		p.testIdx = 0
	}
	p.inRound++
	if p.inRound >= bopRoundLenMax {
		p.endRound()
	}

	// Record the access in the recent-requests window.
	if _, ok := p.recent[line]; !ok {
		if p.rrOrder.size() >= bopRRCap {
			delete(p.recent, p.rrOrder.pop())
		}
		p.rrOrder.push(line)
		p.recent[line] = struct{}{}
	}

	// Prefetching: degree 1 with the single learned offset.
	if p.current != 0 {
		target := int64(line) + int64(p.current)
		if target >= 0 {
			buf = append(buf, uint64(target)*LineSize)
		}
	}
	return buf
}

// endRound commits the best-scoring offset and starts a new round.
func (p *BOP) endRound() {
	bestIdx, bestScore := -1, 0
	for i, s := range p.scores {
		if offsetAt(i) != 0 && s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx >= 0 && bestScore >= bopBadScore {
		p.current = offsetAt(bestIdx)
	} else {
		p.current = 0 // prefetching off, as in the published design
	}
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.inRound = 0
}

// Reset implements Prefetcher.
func (p *BOP) Reset() {
	p.recent = make(map[uint64]struct{}, bopRRCap)
	p.rrOrder.clear()
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.testIdx = 0
	p.inRound = 0
	p.current = 0
}

var _ Prefetcher = (*BOP)(nil)
