package prefetch

// MLOP (Shakerinava et al., DPC-3 2019) is a multi-lookahead offset
// prefetcher: it scores candidate line offsets against a map of recently
// accessed lines and, unlike a single-best-offset design, selects several
// offsets (one per lookahead level) so it can cover patterns that need a
// mix of near and far prefetches. This implementation keeps the published
// structure — an access map, per-offset scores, round-based selection —
// with compact parameters.

// MLOP tuning constants.
const (
	mlopMaxOffset   = 16  // candidate offsets in [-16,16], excluding 0
	mlopMapCap      = 512 // recently-accessed-lines window
	mlopRoundLen    = 256 // accesses per selection round
	mlopMaxSelected = 4   // lookahead levels = prefetch degree cap
	mlopThreshold   = 35  // minimum percent of round accesses to select
)

// MLOP is the multi-lookahead offset prefetcher.
type MLOP struct {
	recent   map[uint64]struct{}
	order    fifo[uint64] // recent-lines window, eviction order
	scores   []int        // score per candidate offset
	selected []int        // offsets chosen at the end of the last round
	inRound  int
}

// NewMLOP builds an MLOP prefetcher.
func NewMLOP() *MLOP {
	return &MLOP{
		recent: make(map[uint64]struct{}, mlopMapCap),
		order:  newFifo[uint64](mlopMapCap),
		scores: make([]int, 2*mlopMaxOffset+1),
	}
}

// Name implements Prefetcher.
func (p *MLOP) Name() string { return "MLOP" }

// offsetAt maps a score index to its offset (skipping 0).
func offsetAt(idx int) int { return idx - mlopMaxOffset }

// Operate implements Prefetcher.
func (p *MLOP) Operate(ev Event, buf []uint64) []uint64 {
	line := ev.Addr >> 6

	// Score: which offsets would have predicted this access from a line
	// seen in the recent window?
	for idx := range p.scores {
		off := offsetAt(idx)
		if off == 0 {
			continue
		}
		if _, ok := p.recent[line-uint64(off)]; ok {
			p.scores[idx]++
		}
	}

	// Record the access.
	if _, ok := p.recent[line]; !ok {
		if p.order.size() >= mlopMapCap {
			delete(p.recent, p.order.pop())
		}
		p.order.push(line)
		p.recent[line] = struct{}{}
	}

	p.inRound++
	if p.inRound >= mlopRoundLen {
		p.selectOffsets()
	}

	// Prefetch with the currently selected offsets.
	for _, off := range p.selected {
		target := int64(line) + int64(off)
		if target < 0 {
			continue
		}
		buf = append(buf, uint64(target)*LineSize)
	}
	return buf
}

// selectOffsets ends a round: pick up to mlopMaxSelected offsets whose
// score clears the threshold, best-first, then clear the scores.
func (p *MLOP) selectOffsets() {
	min := p.inRound * mlopThreshold / 100
	p.selected = p.selected[:0]
	type cand struct{ off, score int }
	var cands []cand
	for idx, s := range p.scores {
		off := offsetAt(idx)
		if off != 0 && s >= min {
			cands = append(cands, cand{off, s})
		}
	}
	// Selection sort by score descending; the list is tiny.
	for len(cands) > 0 && len(p.selected) < mlopMaxSelected {
		best := 0
		for i := range cands {
			if cands[i].score > cands[best].score {
				best = i
			}
		}
		p.selected = append(p.selected, cands[best].off)
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	for idx := range p.scores {
		p.scores[idx] = 0
	}
	p.inRound = 0
}

// Selected returns the offsets chosen by the last round (for tests).
func (p *MLOP) Selected() []int { return p.selected }

// Reset implements Prefetcher.
func (p *MLOP) Reset() {
	p.recent = make(map[uint64]struct{}, mlopMapCap)
	p.order.clear()
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.selected = nil
	p.inRound = 0
}
