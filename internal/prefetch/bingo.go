package prefetch

// Bingo (Bakhshalipour et al., HPCA 2019) is a spatial footprint
// prefetcher: it records which lines of a region were touched after a
// trigger access, stores that footprint under progressively shorter
// events (PC+Address, then PC+Offset), and on a recurring trigger replays
// the recorded footprint. This implementation follows the published
// mechanism with modest table sizes; the paper's storage figure (46 KB) is
// represented in internal/hw, not derived from these structures.

// bingoRegionShift: 2 KB regions = 32 lines.
const (
	bingoRegionShift = 11
	bingoRegionLines = 1 << (bingoRegionShift - 6)
)

// bingoActive is one in-flight (accumulating) region.
type bingoActive struct {
	region    uint64
	trigPC    uint64
	trigLine  uint64 // absolute line number of the trigger
	trigOff   int
	footprint uint32
	lastUse   int64
	valid     bool
}

// Bingo is the spatial footprint prefetcher.
type Bingo struct {
	active  []bingoActive
	longHit map[uint64]uint32 // PC+Address event -> footprint
	longQ   fifo[uint64]
	shortHi map[uint64]uint32 // PC+Offset event -> footprint
	shortQ  fifo[uint64]
	clock   int64
}

// bingoHistoryCap bounds each history table (FIFO replacement).
const bingoHistoryCap = 4096

// NewBingo builds a Bingo prefetcher with the given number of active
// (accumulation) regions.
func NewBingo(activeRegions int) *Bingo {
	if activeRegions < 1 {
		activeRegions = 1
	}
	return &Bingo{
		active:  make([]bingoActive, activeRegions),
		longHit: make(map[uint64]uint32),
		longQ:   newFifo[uint64](bingoHistoryCap),
		shortHi: make(map[uint64]uint32),
		shortQ:  newFifo[uint64](bingoHistoryCap),
	}
}

// Name implements Prefetcher.
func (p *Bingo) Name() string { return "Bingo" }

func bingoLongKey(pc, line uint64) uint64 { return pc*0x9e3779b97f4a7c15 ^ line }
func bingoShortKey(pc uint64, off int) uint64 {
	return pc*0x9e3779b97f4a7c15 ^ uint64(off)<<58
}

// Operate implements Prefetcher.
func (p *Bingo) Operate(ev Event, buf []uint64) []uint64 {
	p.clock++
	line := ev.Addr >> 6
	region := ev.Addr >> bingoRegionShift
	off := int(line & (bingoRegionLines - 1))

	// Accumulate into an active region if present.
	for i := range p.active {
		a := &p.active[i]
		if a.valid && a.region == region {
			a.footprint |= 1 << off
			a.lastUse = p.clock
			return buf
		}
	}

	// New region: retire the LRU active region into history, then start
	// accumulating and predict from history.
	v := p.victim()
	if v.valid {
		p.commit(v)
	}
	*v = bingoActive{
		region: region, trigPC: ev.PC, trigLine: line, trigOff: off,
		footprint: 1 << off, lastUse: p.clock, valid: true,
	}

	fp, ok := p.longHit[bingoLongKey(ev.PC, line)]
	if !ok {
		fp, ok = p.shortHi[bingoShortKey(ev.PC, off)]
	}
	if !ok {
		return buf
	}
	base := region << bingoRegionShift
	for b := 0; b < bingoRegionLines; b++ {
		if b != off && fp&(1<<b) != 0 {
			buf = append(buf, base+uint64(b)*LineSize)
		}
	}
	return buf
}

// victim returns the active-table entry to replace (invalid or LRU).
func (p *Bingo) victim() *bingoActive {
	v := &p.active[0]
	for i := range p.active {
		a := &p.active[i]
		if !a.valid {
			return a
		}
		if a.lastUse < v.lastUse {
			v = a
		}
	}
	return v
}

// commit stores a finished region's footprint under both event keys.
func (p *Bingo) commit(a *bingoActive) {
	insert := func(m map[uint64]uint32, q *fifo[uint64], key uint64, fp uint32) {
		if _, exists := m[key]; !exists {
			if q.size() >= bingoHistoryCap {
				delete(m, q.pop())
			}
			q.push(key)
		}
		m[key] = fp
	}
	insert(p.longHit, &p.longQ, bingoLongKey(a.trigPC, a.trigLine), a.footprint)
	insert(p.shortHi, &p.shortQ, bingoShortKey(a.trigPC, a.trigOff), a.footprint)
}

// Reset implements Prefetcher.
func (p *Bingo) Reset() {
	for i := range p.active {
		p.active[i] = bingoActive{}
	}
	p.longHit = make(map[uint64]uint32)
	p.shortHi = make(map[uint64]uint32)
	p.longQ.clear()
	p.shortQ.clear()
	p.clock = 0
}
