package prefetch

// lruTable is the shared slot bookkeeping for the fixed-capacity,
// LRU-replaced tracker tables of the Stream and IPStride prefetchers:
// a key index for O(1) lookup and an intrusive recency list for O(1)
// victim selection. Payload state stays in the prefetcher's own
// parallel slices; the table only maps keys to slot numbers and orders
// the slots.
//
// Lookup is an open-addressed index (linear probing, backward-shift
// deletion — the same scheme as mem's MSHR table) sized at four times
// the slot count: on pattern-free workloads the table thrashes, paying
// a delete and an insert per access, and the low load factor keeps
// those probe chains at one or two slots.
//
// Recency is a doubly linked list over the slots, LRU→MRU. Replacement
// must match the scan it replaced exactly — first empty slot by index,
// else least recently used. The list starts in slot order and empty
// slots are never touched, so while any slot is empty the head is the
// lowest-numbered empty slot; after that, touches form a strict total
// order (each operate touches exactly one slot) and the head is the
// true LRU.
type lruTable struct {
	keys []uint64
	used []bool // slot occupancy
	next []uint16
	prev []uint16
	head uint16
	tail uint16

	idx   []int32 // slot+1; 0 marks an empty index entry
	shift uint    // 64 - log2(len(idx)), for the multiplicative hash
}

// newLRUTable builds a table with n slots (1..65535).
func newLRUTable(n int) lruTable {
	if n < 1 || n > 65535 {
		panic("prefetch: lruTable needs 1..65535 slots")
	}
	capacity := 16
	for capacity < 4*n {
		capacity *= 2
	}
	shift := uint(64)
	for c := capacity; c > 1; c /= 2 {
		shift--
	}
	t := lruTable{
		keys:  make([]uint64, n),
		used:  make([]bool, n),
		next:  make([]uint16, n),
		prev:  make([]uint16, n),
		idx:   make([]int32, capacity),
		shift: shift,
	}
	t.reset()
	return t
}

// reset empties the table and relinks the recency list in slot order.
func (t *lruTable) reset() {
	for i := range t.keys {
		t.keys[i] = 0
		t.used[i] = false
		t.next[i] = uint16(i + 1)
		t.prev[i] = uint16(i - 1) // slot 0 wraps; the head has no prev
	}
	t.head = 0
	t.tail = uint16(len(t.keys) - 1)
	for i := range t.idx {
		t.idx[i] = 0
	}
}

// home is a key's preferred index slot (Fibonacci multiplicative hash).
func (t *lruTable) home(key uint64) int {
	return int((key * 0x9e3779b97f4a7c15) >> t.shift)
}

// lookup returns the slot holding key, or -1. Only occupied slots are
// indexed, so no validity check is needed on the result.
func (t *lruTable) lookup(key uint64) int {
	i := t.home(key)
	for {
		s := t.idx[i]
		if s == 0 {
			return -1
		}
		if t.keys[s-1] == key {
			return int(s - 1)
		}
		i++
		if i == len(t.idx) {
			i = 0
		}
	}
}

// victim returns the replacement slot: the recency list's head.
func (t *lruTable) victim() int { return int(t.head) }

// touch moves slot w to the MRU end of the recency list.
func (t *lruTable) touch(w int) {
	ww := uint16(w)
	if t.tail == ww {
		return
	}
	if t.head == ww {
		t.head = t.next[w]
	} else {
		p := t.prev[w]
		t.next[p] = t.next[w]
		t.prev[t.next[w]] = p
	}
	tl := t.tail
	t.next[tl] = ww
	t.prev[w] = tl
	t.tail = ww
}

// replace rebinds slot w to key: the old key (if any) leaves the index,
// the new one enters. The caller touches the slot separately.
func (t *lruTable) replace(w int, key uint64) {
	if t.used[w] {
		t.removeIdx(t.keys[w])
	}
	t.keys[w] = key
	t.used[w] = true
	i := t.home(key)
	for t.idx[i] != 0 {
		i++
		if i == len(t.idx) {
			i = 0
		}
	}
	t.idx[i] = int32(w + 1)
}

// removeIdx deletes key's index entry, backward-shifting the probe
// chain so no tombstones accumulate (see mem's MSHR table for the
// cyclic-range argument).
func (t *lruTable) removeIdx(key uint64) {
	i := t.home(key)
	for {
		s := t.idx[i]
		if s == 0 {
			return
		}
		if t.keys[s-1] == key {
			break
		}
		i++
		if i == len(t.idx) {
			i = 0
		}
	}
	j := i // the gap
	for {
		t.idx[j] = 0
		k := j
		for {
			k++
			if k == len(t.idx) {
				k = 0
			}
			s := t.idx[k]
			if s == 0 {
				return
			}
			h := t.home(t.keys[s-1])
			if (j < k && (h <= j || h > k)) || (j > k && h <= j && h > k) {
				t.idx[j] = s
				j = k
				break
			}
		}
	}
}
