package prefetch

// IPCP (Pakalapati & Panda, ISCA 2020) classifies instruction pointers by
// their access pattern and runs a lightweight prefetcher per class:
//
//   - CS (constant stride): per-IP stride with confidence.
//   - CPLX (complex): per-IP delta-signature prediction for non-constant
//     but repeating delta sequences.
//   - GS (global stream): a global monotonic-stream detector for
//     streaming phases that individual IPs do not expose.
//
// The paper evaluates IPCP as a multi-level (L1+L2) prefetcher (Fig. 12);
// the core model instantiates one IPCP per level with the fill target
// chosen by the runner.

// ipcpEntry is the per-IP record.
type ipcpEntry struct {
	pc        uint64
	lastLine  uint64
	stride    int64
	strideCnf int // CS confidence, saturating 0..3
	signature uint32
	lastUse   int64
	valid     bool
}

// IPCP is the IP-classifier prefetcher.
type IPCP struct {
	entries []ipcpEntry
	cplx    map[uint32]int64 // delta signature -> predicted next delta
	cplxQ   fifo[uint32]

	gsUp, gsDown int    // global stream direction votes
	gsLast       uint64 // last line seen by any IP (global stream input)
	clock        int64

	// Degree is the per-class prefetch depth.
	Degree int
}

// ipcpCplxCap bounds the complex-pattern table.
const ipcpCplxCap = 2048

// NewIPCP builds an IPCP with the given IP-table size and degree.
func NewIPCP(entries, degree int) *IPCP {
	if entries < 1 {
		entries = 1
	}
	if degree < 1 {
		degree = 1
	}
	return &IPCP{
		entries: make([]ipcpEntry, entries),
		cplx:    make(map[uint32]int64),
		cplxQ:   newFifo[uint32](ipcpCplxCap),
		Degree:  degree,
	}
}

// Name implements Prefetcher.
func (p *IPCP) Name() string { return "IPCP" }

// Operate implements Prefetcher.
func (p *IPCP) Operate(ev Event, buf []uint64) []uint64 {
	start := len(buf)
	p.clock++
	line := ev.Addr >> 6

	p.voteGS(int64(line) - int64(p.gsLast))
	p.gsLast = line

	e := p.lookup(ev.PC)
	if e == nil {
		e = p.victim()
		*e = ipcpEntry{pc: ev.PC, lastLine: line, lastUse: p.clock, valid: true}
		if dir := p.gsDir(); dir != 0 {
			for d := 1; d <= p.Degree; d++ {
				t := int64(line) + int64(dir*d)
				if t >= 0 {
					buf = append(buf, uint64(t)*LineSize)
				}
			}
		}
		return buf
	}
	e.lastUse = p.clock
	delta := int64(line) - int64(e.lastLine)
	e.lastLine = line
	if delta == 0 {
		return buf
	}

	// Class CS: constant stride.
	if delta == e.stride {
		if e.strideCnf < 3 {
			e.strideCnf++
		}
	} else {
		e.stride = delta
		if e.strideCnf > 0 {
			e.strideCnf--
		}
	}
	if e.strideCnf >= 2 {
		for d := 1; d <= p.Degree; d++ {
			t := int64(line) + e.stride*int64(d)
			if t >= 0 {
				buf = append(buf, uint64(t)*LineSize)
			}
		}
		p.train(e, delta)
		return buf
	}

	// Class CPLX: signature-predicted delta chain.
	sig := e.signature
	p.train(e, delta)
	if next, ok := p.cplx[sig]; ok && next != 0 {
		cur := int64(line)
		s := sig
		for d := 1; d <= p.Degree; d++ {
			nd, ok := p.cplx[s]
			if !ok || nd == 0 {
				break
			}
			cur += nd
			if cur >= 0 {
				buf = append(buf, uint64(cur)*LineSize)
			}
			s = ipcpSig(s, nd)
		}
		if len(buf) > start {
			return buf
		}
	}

	// Class GS: global stream.
	if dir := p.gsDir(); dir != 0 {
		for d := 1; d <= p.Degree; d++ {
			t := int64(line) + int64(dir*d)
			if t >= 0 {
				buf = append(buf, uint64(t)*LineSize)
			}
		}
	}
	return buf
}

// train records delta into the per-IP signature chain and the CPLX table.
func (p *IPCP) train(e *ipcpEntry, delta int64) {
	sig := e.signature
	if _, exists := p.cplx[sig]; !exists {
		if p.cplxQ.size() >= ipcpCplxCap {
			delete(p.cplx, p.cplxQ.pop())
		}
		p.cplxQ.push(sig)
	}
	p.cplx[sig] = delta
	e.signature = ipcpSig(sig, delta)
}

// ipcpSig folds a delta into a rolling signature.
func ipcpSig(sig uint32, delta int64) uint32 {
	return sig<<4 ^ uint32(uint64(delta)&0xfff)*2654435761
}

// voteGS maintains the global stream direction votes over a sliding
// window of recent deltas.
func (p *IPCP) voteGS(delta int64) {
	decay := func(v int) int {
		if v > 0 {
			return v - 1
		}
		return v
	}
	switch {
	case delta == 1:
		p.gsUp += 4
	case delta == -1:
		p.gsDown += 4
	default:
		p.gsUp = decay(p.gsUp)
		p.gsDown = decay(p.gsDown)
	}
	const cap = 64
	if p.gsUp > cap {
		p.gsUp = cap
	}
	if p.gsDown > cap {
		p.gsDown = cap
	}
}

// gsDir returns the confident global stream direction, or 0.
func (p *IPCP) gsDir() int {
	const need = 32
	if p.gsUp >= need && p.gsUp > 2*p.gsDown {
		return 1
	}
	if p.gsDown >= need && p.gsDown > 2*p.gsUp {
		return -1
	}
	return 0
}

func (p *IPCP) lookup(pc uint64) *ipcpEntry {
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].pc == pc {
			return &p.entries[i]
		}
	}
	return nil
}

func (p *IPCP) victim() *ipcpEntry {
	v := &p.entries[0]
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			return e
		}
		if e.lastUse < v.lastUse {
			v = e
		}
	}
	return v
}

// Reset implements Prefetcher.
func (p *IPCP) Reset() {
	for i := range p.entries {
		p.entries[i] = ipcpEntry{}
	}
	p.cplx = make(map[uint32]int64)
	p.cplxQ.clear()
	p.gsUp, p.gsDown = 0, 0
	p.gsLast = 0
	p.clock = 0
}

var _ Prefetcher = (*IPCP)(nil)
