package prefetch

import (
	"microbandit/internal/xrand"
)

// Pythia (Bera et al., MICRO 2021) is the state-of-the-art MDP-RL
// prefetcher the paper compares against: it decomposes the environment
// into program-context states, keeps an action value per (state, action)
// pair — the storage the Micro-Armed Bandit eliminates — explores with
// ε-greedy, and assigns rewards based on prefetch accuracy, timeliness,
// and DRAM bandwidth usage rather than end performance.
//
// This implementation keeps Pythia's formulation: states hash a program
// feature (PC ⊕ last line delta ⊕ page offset), the action space is the
// paper's 16 offsets × 4 degrees (= 64 actions, Fig. 2) plus an explicit
// no-prefetch action, action values learn via a SARSA-style temporal
// difference with delayed accuracy rewards resolved through an evaluation
// queue, and a bandwidth-utilization input shifts rewards toward
// conservatism when the channel saturates. Table organization (vaults,
// tag hashing) is simplified to a dense table; internal/hw carries the
// published 25.5 KB storage figure.

// Pythia action space: 16 offsets × 4 degrees + no-prefetch.
var (
	pythiaOffsets = []int{-8, -6, -4, -3, -2, -1, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16}
	pythiaDegrees = []int{1, 2, 6, 12}
)

// pythiaNumActions includes the final no-prefetch action.
const pythiaNumActions = 16*4 + 1

// pythiaNumStates is the hashed state-space size.
const pythiaNumStates = 512

// Reward levels (shaped after Pythia's published reward structure).
const (
	pythiaRAccurateTimely = 12.0
	pythiaRAccurateLate   = 6.0
	pythiaRInaccurate     = -8.0
	pythiaRInaccurateHiBW = -14.0
	pythiaRNoPrefetch     = -1.0
	pythiaRNoPrefetchHiBW = 6.0
	pythiaHighBW          = 0.75 // utilization above this is "constrained"
	pythiaAlpha           = 0.15
	pythiaGammaRL         = 0.5
	pythiaEpsilon         = 0.02
)

// pythiaPending tracks an issued prefetch awaiting its outcome.
type pythiaPending struct {
	line   uint64
	state  int
	action int
	cycle  int64
}

// pythiaEQCap bounds the evaluation queue; overflowing entries resolve as
// inaccurate.
const pythiaEQCap = 192

// Pythia is the MDP-RL prefetcher.
type Pythia struct {
	q       [][]float32 // action values [state][action]
	rng     *xrand.Rand
	bwUtil  float64
	eq      []pythiaPending
	actHist [pythiaNumActions]int64 // selection frequency (Fig. 2 data)

	lastLine   uint64
	prevState  int
	prevAction int
	primed     bool
}

// NewPythia builds a Pythia agent with the given seed.
func NewPythia(seed uint64) *Pythia {
	p := &Pythia{rng: xrand.New(seed)}
	p.q = make([][]float32, pythiaNumStates)
	for i := range p.q {
		p.q[i] = make([]float32, pythiaNumActions)
	}
	p.initOptimisticNoPrefetch()
	return p
}

// initOptimisticNoPrefetch biases fresh agents toward the no-prefetch
// action so untrained states start conservative instead of spraying the
// arbitrary action 0.
func (p *Pythia) initOptimisticNoPrefetch() {
	for i := range p.q {
		p.q[i][pythiaNumActions-1] = 0.5
	}
}

// Name implements Prefetcher.
func (p *Pythia) Name() string { return "Pythia" }

// SetBandwidthUtil implements BandwidthAware.
func (p *Pythia) SetBandwidthUtil(frac float64) { p.bwUtil = frac }

// ActionCounts returns the per-action selection counts — the measurement
// behind the paper's temporal-homogeneity motivation (Fig. 2).
func (p *Pythia) ActionCounts() []int64 {
	out := make([]int64, pythiaNumActions)
	copy(out, p.actHist[:])
	return out
}

// state hashes the program feature vector (PC ⊕ last line delta, the
// feature pair Pythia's default configuration uses) into the Q-table
// index.
func (p *Pythia) state(ev Event) int {
	line := ev.Addr >> 6
	delta := line - p.lastLine
	if delta > 63 || -delta > 63 {
		delta &= 63 // saturate wild deltas into a compact feature
	}
	h := ev.PC*0x9e3779b97f4a7c15 ^ delta*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return int(h % pythiaNumStates)
}

// action decodes an action id into (offset, degree); ok=false means the
// no-prefetch action.
func pythiaDecode(a int) (offset, degree int, ok bool) {
	if a == pythiaNumActions-1 {
		return 0, 0, false
	}
	return pythiaOffsets[a%16], pythiaDegrees[a/16], true
}

// selectAction is ε-greedy over Q[s].
func (p *Pythia) selectAction(s int) int {
	if p.rng.Bool(pythiaEpsilon) {
		return p.rng.Intn(pythiaNumActions)
	}
	best := 0
	row := p.q[s]
	for a := 1; a < pythiaNumActions; a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

// update applies a SARSA-style TD update toward reward r observed for
// (s,a), bootstrapping from the successor pair (s2,a2).
func (p *Pythia) update(s, a int, r float64, s2, a2 int) {
	target := r + pythiaGammaRL*float64(p.q[s2][a2])
	p.q[s][a] += float32(pythiaAlpha * (target - float64(p.q[s][a])))
}

// Operate implements Prefetcher.
func (p *Pythia) Operate(ev Event, buf []uint64) []uint64 {
	line := ev.Addr >> 6

	// Resolve any pending prefetch covering this demand access: accurate.
	for i := 0; i < len(p.eq); i++ {
		if p.eq[i].line == line {
			e := p.eq[i]
			r := pythiaRAccurateTimely
			if ev.Cycle-e.cycle < 200 { // demanded almost immediately: late
				r = pythiaRAccurateLate
			}
			p.resolve(i, r)
			i--
		}
	}

	s := p.state(ev)
	a := p.selectAction(s)
	p.actHist[a]++

	// SARSA bootstrap for the previous decision.
	if p.primed {
		// The previous action's accuracy reward arrives later through
		// the evaluation queue; the immediate TD step uses the action's
		// base reward (no-prefetch actions resolve immediately).
		if _, _, issued := pythiaDecode(p.prevAction); !issued {
			r := pythiaRNoPrefetch
			if p.bwUtil > pythiaHighBW {
				r = pythiaRNoPrefetchHiBW
			}
			p.update(p.prevState, p.prevAction, r, s, a)
		} else {
			p.update(p.prevState, p.prevAction, 0, s, a)
		}
	}
	p.prevState, p.prevAction, p.primed = s, a, true
	p.lastLine = line

	offset, degree, issued := pythiaDecode(a)
	if !issued {
		return buf
	}
	for d := 1; d <= degree; d++ {
		target := int64(line) + int64(offset*d)
		if target < 0 {
			continue
		}
		tl := uint64(target)
		buf = append(buf, tl*LineSize)
		if len(p.eq) >= pythiaEQCap {
			p.resolve(0, p.inaccurateReward())
		}
		p.eq = append(p.eq, pythiaPending{line: tl, state: s, action: a, cycle: ev.Cycle})
	}
	return buf
}

// inaccurateReward is the penalty for a prefetch that was never demanded,
// harsher when bandwidth is scarce.
func (p *Pythia) inaccurateReward() float64 {
	if p.bwUtil > pythiaHighBW {
		return pythiaRInaccurateHiBW
	}
	return pythiaRInaccurate
}

// resolve applies the outcome reward for evaluation-queue entry i and
// removes it.
func (p *Pythia) resolve(i int, r float64) {
	e := p.eq[i]
	// Terminal-style update: the delayed outcome adjusts the pair directly.
	p.q[e.state][e.action] += float32(pythiaAlpha * (r - float64(p.q[e.state][e.action])))
	p.eq = append(p.eq[:i], p.eq[i+1:]...)
}

// Reset implements Prefetcher.
func (p *Pythia) Reset() {
	for i := range p.q {
		for j := range p.q[i] {
			p.q[i][j] = 0
		}
	}
	p.initOptimisticNoPrefetch()
	p.eq = nil
	p.lastLine = 0
	p.primed = false
	p.bwUtil = 0
	for i := range p.actHist {
		p.actHist[i] = 0
	}
}

// Compile-time interface checks.
var (
	_ Prefetcher     = (*Pythia)(nil)
	_ BandwidthAware = (*Pythia)(nil)
	_ Prefetcher     = (*Bingo)(nil)
	_ Prefetcher     = (*MLOP)(nil)
)
