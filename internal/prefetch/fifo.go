package prefetch

// fifo is a fixed-capacity ring-buffer FIFO. The history windows of the
// table-based prefetchers (BOP, MLOP, Bingo, IPCP) used to be plain
// slices advanced with q = q[1:] plus append: each wrap-around of the
// backing array reallocated it, so every few hundred evictions cost an
// allocation and a copy on the per-access path. The ring reuses one
// allocation for the prefetcher's lifetime.
type fifo[T any] struct {
	buf  []T
	head int
	n    int
}

// newFifo builds a ring with the given capacity (the callers' window
// bounds: they pop before pushing once full, so the ring never grows).
func newFifo[T any](capacity int) fifo[T] {
	return fifo[T]{buf: make([]T, capacity)}
}

// size returns the number of queued elements.
func (f *fifo[T]) size() int { return f.n }

// push appends v at the tail, growing (by doubling, unwrapped) in the
// never-expected case of overflowing the construction capacity.
func (f *fifo[T]) push(v T) {
	if f.n == len(f.buf) {
		grown := make([]T, 2*len(f.buf))
		for i := 0; i < f.n; i++ {
			grown[i] = f.at(i)
		}
		f.buf, f.head = grown, 0
	}
	i := f.head + f.n
	if i >= len(f.buf) {
		i -= len(f.buf)
	}
	f.buf[i] = v
	f.n++
}

// pop removes and returns the head element; call only when size() > 0.
func (f *fifo[T]) pop() T {
	v := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
	}
	f.n--
	return v
}

// at returns the i-th queued element (0 = head) without removing it.
func (f *fifo[T]) at(i int) T {
	j := f.head + i
	if j >= len(f.buf) {
		j -= len(f.buf)
	}
	return f.buf[j]
}

// clear empties the ring, keeping its storage.
func (f *fifo[T]) clear() {
	f.head, f.n = 0, 0
}
