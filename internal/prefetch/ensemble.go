package prefetch

import "fmt"

// ArmConfig is one ensemble configuration: which lightweight prefetchers
// are active and at what degree (one column of the paper's Table 7).
type ArmConfig struct {
	// NextLine enables the next-line prefetcher (degree 1).
	NextLine bool
	// StrideDegree is the PC-stride prefetcher degree (0 = off).
	StrideDegree int
	// StreamDegree is the stream prefetcher degree (0 = off).
	StreamDegree int
}

// String renders the arm compactly, e.g. "NL:on stride:4 stream:4".
func (a ArmConfig) String() string {
	nl := "off"
	if a.NextLine {
		nl = "on"
	}
	return fmt.Sprintf("NL:%s stride:%d stream:%d", nl, a.StrideDegree, a.StreamDegree)
}

// Table7Arms returns the 11 prefetching arms of the paper's Table 7.
func Table7Arms() []ArmConfig {
	return []ArmConfig{
		{NextLine: false, StrideDegree: 0, StreamDegree: 4},   // arm 0
		{NextLine: false, StrideDegree: 0, StreamDegree: 0},   // arm 1 (all off)
		{NextLine: true, StrideDegree: 0, StreamDegree: 0},    // arm 2
		{NextLine: false, StrideDegree: 0, StreamDegree: 2},   // arm 3
		{NextLine: false, StrideDegree: 2, StreamDegree: 2},   // arm 4
		{NextLine: false, StrideDegree: 4, StreamDegree: 4},   // arm 5
		{NextLine: false, StrideDegree: 0, StreamDegree: 6},   // arm 6
		{NextLine: false, StrideDegree: 8, StreamDegree: 6},   // arm 7
		{NextLine: true, StrideDegree: 0, StreamDegree: 8},    // arm 8
		{NextLine: false, StrideDegree: 0, StreamDegree: 15},  // arm 9
		{NextLine: false, StrideDegree: 15, StreamDegree: 15}, // arm 10
	}
}

// Ensemble bundles the next-line, stream, and PC-stride prefetchers under
// bandit control: each arm programs the component degrees (§5.2). It is
// the Tunable the Micro-Armed Bandit drives in the prefetching use case.
type Ensemble struct {
	arms   []ArmConfig
	cur    int
	nl     NextLine
	stream *Stream
	stride *IPStride
}

// NewEnsemble builds the ensemble with the given arm set and the paper's
// tracker counts (64 stream trackers, 64 stride entries). It panics on an
// empty arm set.
func NewEnsemble(arms []ArmConfig) *Ensemble {
	if len(arms) == 0 {
		panic("prefetch: ensemble needs at least one arm")
	}
	e := &Ensemble{
		arms:   arms,
		stream: NewStream(64, 0),
		stride: NewIPStride(64, 0),
	}
	e.Apply(0)
	return e
}

// NewTable7Ensemble builds the ensemble with the paper's 11 arms.
func NewTable7Ensemble() *Ensemble { return NewEnsemble(Table7Arms()) }

// Name implements Prefetcher.
func (e *Ensemble) Name() string { return "Bandit-Ensemble" }

// NumArms implements Tunable.
func (e *Ensemble) NumArms() int { return len(e.arms) }

// CurrentArm returns the active arm index.
func (e *Ensemble) CurrentArm() int { return e.cur }

// Arm returns the configuration of arm i.
func (e *Ensemble) Arm(i int) ArmConfig { return e.arms[i] }

// Apply implements Tunable: program the component degrees.
func (e *Ensemble) Apply(arm int) {
	if arm < 0 || arm >= len(e.arms) {
		panic(fmt.Sprintf("prefetch: arm %d out of range [0,%d)", arm, len(e.arms)))
	}
	e.cur = arm
	cfg := e.arms[arm]
	if cfg.NextLine {
		e.nl.Degree = 1
	} else {
		e.nl.Degree = 0
	}
	e.stream.Degree = cfg.StreamDegree
	e.stride.Degree = cfg.StrideDegree
}

// Operate implements Prefetcher: all active components observe the access
// and their proposals are merged (deduplicated) directly in the caller's
// buffer — each component appends, then its additions are compacted
// against everything this call has kept so far.
func (e *Ensemble) Operate(ev Event, buf []uint64) []uint64 {
	start := len(buf)
	buf = e.nl.Operate(ev, buf)
	mark := len(buf)
	buf = e.stream.Operate(ev, buf)
	buf = dedupAgainst(buf, start, mark)
	mark = len(buf)
	buf = e.stride.Operate(ev, buf)
	return dedupAgainst(buf, start, mark)
}

// dedupAgainst compacts buf[from:] in place, dropping entries whose line
// already appears earlier in buf[start:] — including entries kept by the
// compaction itself. The candidate lists are tiny (≤ 31 entries), so
// linear scan wins.
func dedupAgainst(buf []uint64, start, from int) []uint64 {
	w := from
next:
	for i := from; i < len(buf); i++ {
		al := buf[i] &^ uint64(LineSize-1)
		for _, d := range buf[start:w] {
			if d&^uint64(LineSize-1) == al {
				continue next
			}
		}
		buf[w] = buf[i]
		w++
	}
	return buf[:w]
}

// Reset implements Prefetcher. The applied arm is retained.
func (e *Ensemble) Reset() {
	e.stream.Reset()
	e.stride.Reset()
}

// Compile-time interface checks.
var (
	_ Tunable    = (*Ensemble)(nil)
	_ Prefetcher = (*NextLine)(nil)
	_ Prefetcher = (*Stream)(nil)
	_ Prefetcher = (*IPStride)(nil)
	_ Prefetcher = Null{}
)
