package prefetch

// This file implements the three lightweight, widely adopted prefetchers
// the Bandit orchestrates (§5.2): a next-line prefetcher, a stream
// prefetcher with direction-detecting trackers, and a PC-based stride
// prefetcher. Their degrees are controlled through "programmable
// registers" (exported setters), as in the POWER7.

// NextLine prefetches the next Degree sequential lines after every access.
type NextLine struct {
	// Degree is the number of sequential lines to prefetch; 0 disables.
	Degree int
	out    []uint64
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "NextLine" }

// Operate implements Prefetcher.
func (p *NextLine) Operate(ev Event) []uint64 {
	p.out = p.out[:0]
	line := ev.Line()
	for d := 1; d <= p.Degree; d++ {
		p.out = append(p.out, line+uint64(d)*LineSize)
	}
	return p.out
}

// Reset implements Prefetcher.
func (p *NextLine) Reset() {}

// streamTracker watches one memory region for a monotonic access run.
type streamTracker struct {
	page     uint64
	lastLine uint64
	delta    int64 // detected line advance per access (signed)
	conf     int   // saturating confidence
	lastUse  int64
	valid    bool
}

// Stream is a stream prefetcher: a table of trackers (64 in the paper's
// configuration, Table 6), each watching a 4 KB region. A tracker detects
// the run's line advance per access — +1 for dense sequential streams,
// larger for strided runs — and once two consecutive advances agree it
// prefetches Degree steps ahead of the run. Tracking the advance rate
// (rather than assuming unit lines) keeps the streamer accurate on
// strided code, where unit-line prefetching would fetch lines the program
// never touches.
type Stream struct {
	// Degree is the prefetch depth per confident access; 0 disables.
	Degree int

	trackers []streamTracker
	clock    int64
	out      []uint64
}

// streamPageShift: trackers watch 4 KB regions.
const streamPageShift = 12

// NewStream builds a stream prefetcher with the given tracker count.
func NewStream(trackers, degree int) *Stream {
	if trackers < 1 {
		trackers = 1
	}
	return &Stream{Degree: degree, trackers: make([]streamTracker, trackers)}
}

// Name implements Prefetcher.
func (p *Stream) Name() string { return "Stream" }

// Operate implements Prefetcher.
func (p *Stream) Operate(ev Event) []uint64 {
	p.out = p.out[:0]
	p.clock++
	line := ev.Line() / LineSize // line number
	page := ev.Addr >> streamPageShift

	t := p.lookup(page)
	if t == nil {
		t = p.victim()
		*t = streamTracker{page: page, lastLine: line, lastUse: p.clock, valid: true}
		return nil
	}
	t.lastUse = p.clock
	delta := int64(line) - int64(t.lastLine)
	if delta == 0 {
		return nil
	}
	if delta == t.delta {
		if t.conf < 3 {
			t.conf++
		}
	} else {
		t.delta = delta
		t.conf = 1
	}
	t.lastLine = line
	if t.conf < 2 || p.Degree == 0 {
		return nil
	}
	for d := 1; d <= p.Degree; d++ {
		target := int64(line) + t.delta*int64(d)
		if target < 0 {
			break
		}
		p.out = append(p.out, uint64(target)*LineSize)
	}
	return p.out
}

func (p *Stream) lookup(page uint64) *streamTracker {
	for i := range p.trackers {
		if p.trackers[i].valid && p.trackers[i].page == page {
			return &p.trackers[i]
		}
	}
	return nil
}

func (p *Stream) victim() *streamTracker {
	v := &p.trackers[0]
	for i := range p.trackers {
		t := &p.trackers[i]
		if !t.valid {
			return t
		}
		if t.lastUse < v.lastUse {
			v = t
		}
	}
	return v
}

// Reset implements Prefetcher.
func (p *Stream) Reset() {
	for i := range p.trackers {
		p.trackers[i] = streamTracker{}
	}
	p.clock = 0
}

// strideEntry is one PC's stride state.
type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int // saturating 0..3
	lastUse  int64
	valid    bool
}

// IPStride is the classic PC-based stride prefetcher (also the paper's
// standalone baseline prefetcher): a table of per-PC entries (64 in the
// ensemble configuration) detecting constant strides and prefetching
// Degree strides ahead once confident.
type IPStride struct {
	// Degree is the prefetch depth; 0 disables.
	Degree int

	entries []strideEntry
	clock   int64
	out     []uint64
}

// NewIPStride builds a stride prefetcher with the given table size.
func NewIPStride(entries, degree int) *IPStride {
	if entries < 1 {
		entries = 1
	}
	return &IPStride{Degree: degree, entries: make([]strideEntry, entries)}
}

// Name implements Prefetcher.
func (p *IPStride) Name() string { return "IPStride" }

// Operate implements Prefetcher.
func (p *IPStride) Operate(ev Event) []uint64 {
	p.out = p.out[:0]
	p.clock++
	e := p.lookup(ev.PC)
	if e == nil {
		e = p.victim()
		*e = strideEntry{pc: ev.PC, lastAddr: ev.Addr, lastUse: p.clock, valid: true}
		return nil
	}
	e.lastUse = p.clock
	stride := int64(ev.Addr) - int64(e.lastAddr)
	e.lastAddr = ev.Addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
		return nil
	}
	if e.conf < 2 || p.Degree == 0 {
		return nil
	}
	for d := 1; d <= p.Degree; d++ {
		target := int64(ev.Addr) + e.stride*int64(d)
		if target < 0 {
			break
		}
		p.out = append(p.out, uint64(target))
	}
	return p.out
}

func (p *IPStride) lookup(pc uint64) *strideEntry {
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].pc == pc {
			return &p.entries[i]
		}
	}
	return nil
}

func (p *IPStride) victim() *strideEntry {
	v := &p.entries[0]
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			return e
		}
		if e.lastUse < v.lastUse {
			v = e
		}
	}
	return v
}

// Reset implements Prefetcher.
func (p *IPStride) Reset() {
	for i := range p.entries {
		p.entries[i] = strideEntry{}
	}
	p.clock = 0
}
