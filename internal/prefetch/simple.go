package prefetch

// This file implements the three lightweight, widely adopted prefetchers
// the Bandit orchestrates (§5.2): a next-line prefetcher, a stream
// prefetcher with direction-detecting trackers, and a PC-based stride
// prefetcher. Their degrees are controlled through "programmable
// registers" (exported setters), as in the POWER7.

// NextLine prefetches the next Degree sequential lines after every access.
type NextLine struct {
	// Degree is the number of sequential lines to prefetch; 0 disables.
	Degree int
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "NextLine" }

// Operate implements Prefetcher.
func (p *NextLine) Operate(ev Event, buf []uint64) []uint64 {
	line := ev.Line()
	for d := 1; d <= p.Degree; d++ {
		buf = append(buf, line+uint64(d)*LineSize)
	}
	return buf
}

// Reset implements Prefetcher.
func (p *NextLine) Reset() {}

// streamTracker watches one memory region for a monotonic access run.
// The region tag and recency live in the Stream's lruTable, not here.
type streamTracker struct {
	lastLine uint64
	delta    int64 // detected line advance per access (signed)
	conf     int   // saturating confidence
}

// Stream is a stream prefetcher: a table of trackers (64 in the paper's
// configuration, Table 6), each watching a 4 KB region. A tracker detects
// the run's line advance per access — +1 for dense sequential streams,
// larger for strided runs — and once two consecutive advances agree it
// prefetches Degree steps ahead of the run. Tracking the advance rate
// (rather than assuming unit lines) keeps the streamer accurate on
// strided code, where unit-line prefetching would fetch lines the program
// never touches.
type Stream struct {
	// Degree is the prefetch depth per confident access; 0 disables.
	Degree int

	tab      lruTable // page tags, lookup index, LRU order
	trackers []streamTracker
}

// streamPageShift: trackers watch 4 KB regions.
const streamPageShift = 12

// NewStream builds a stream prefetcher with the given tracker count.
func NewStream(trackers, degree int) *Stream {
	if trackers < 1 {
		trackers = 1
	}
	return &Stream{
		Degree:   degree,
		tab:      newLRUTable(trackers),
		trackers: make([]streamTracker, trackers),
	}
}

// Name implements Prefetcher.
func (p *Stream) Name() string { return "Stream" }

// Operate implements Prefetcher.
func (p *Stream) Operate(ev Event, buf []uint64) []uint64 {
	line := ev.Line() / LineSize // line number
	page := ev.Addr >> streamPageShift

	i := p.lookup(page)
	if i < 0 {
		i = p.tab.victim()
		p.tab.replace(i, page)
		p.tab.touch(i)
		p.trackers[i] = streamTracker{lastLine: line}
		return buf
	}
	t := &p.trackers[i]
	p.tab.touch(i)
	delta := int64(line) - int64(t.lastLine)
	if delta == 0 {
		return buf
	}
	if delta == t.delta {
		if t.conf < 3 {
			t.conf++
		}
	} else {
		t.delta = delta
		t.conf = 1
	}
	t.lastLine = line
	if t.conf < 2 || p.Degree == 0 {
		return buf
	}
	for d := 1; d <= p.Degree; d++ {
		target := int64(line) + t.delta*int64(d)
		if target < 0 {
			break
		}
		buf = append(buf, uint64(target)*LineSize)
	}
	return buf
}

// lookup returns the tracker watching page, or -1.
func (p *Stream) lookup(page uint64) int { return p.tab.lookup(page) }

// Reset implements Prefetcher.
func (p *Stream) Reset() {
	p.tab.reset()
	for i := range p.trackers {
		p.trackers[i] = streamTracker{}
	}
}

// strideEntry is one PC's stride state. The PC tag and recency live in
// the IPStride's lruTable.
type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int // saturating 0..3
}

// IPStride is the classic PC-based stride prefetcher (also the paper's
// standalone baseline prefetcher): a table of per-PC entries (64 in the
// ensemble configuration) detecting constant strides and prefetching
// Degree strides ahead once confident.
type IPStride struct {
	// Degree is the prefetch depth; 0 disables.
	Degree int

	tab     lruTable // PC tags, lookup index, LRU order
	entries []strideEntry
}

// NewIPStride builds a stride prefetcher with the given table size.
func NewIPStride(entries, degree int) *IPStride {
	if entries < 1 {
		entries = 1
	}
	return &IPStride{
		Degree:  degree,
		tab:     newLRUTable(entries),
		entries: make([]strideEntry, entries),
	}
}

// Name implements Prefetcher.
func (p *IPStride) Name() string { return "IPStride" }

// Operate implements Prefetcher.
func (p *IPStride) Operate(ev Event, buf []uint64) []uint64 {
	i := p.lookup(ev.PC)
	if i < 0 {
		i = p.tab.victim()
		p.tab.replace(i, ev.PC)
		p.tab.touch(i)
		p.entries[i] = strideEntry{lastAddr: ev.Addr}
		return buf
	}
	e := &p.entries[i]
	p.tab.touch(i)
	stride := int64(ev.Addr) - int64(e.lastAddr)
	e.lastAddr = ev.Addr
	if stride == 0 {
		return buf
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
		return buf
	}
	if e.conf < 2 || p.Degree == 0 {
		return buf
	}
	for d := 1; d <= p.Degree; d++ {
		target := int64(ev.Addr) + e.stride*int64(d)
		if target < 0 {
			break
		}
		buf = append(buf, uint64(target))
	}
	return buf
}

func (p *IPStride) lookup(pc uint64) int { return p.tab.lookup(pc) }

// Reset implements Prefetcher.
func (p *IPStride) Reset() {
	p.tab.reset()
	for i := range p.entries {
		p.entries[i] = strideEntry{}
	}
}
