// Package stats provides the small statistical toolkit used by the
// evaluation harness: geometric means (the paper's headline aggregate),
// normalization helpers, summary statistics, and text/CSV rendering for
// regenerating the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// GeoMean returns the geometric mean of xs, defined for any input:
// callers feed it IPC ratios that are positive by construction in clean
// runs, but injected faults (a stuck prefetcher arm, collapsed DRAM
// bandwidth) can drive a measurement to exactly 0. A zero element makes
// the result 0 — the mathematical limit of the geometric mean — rather
// than NaN; negative, NaN, and infinite elements are skipped so one
// corrupt measurement cannot poison a whole summary cell. Empty input,
// or input with no usable elements, returns 0.
func GeoMean(xs []float64) float64 {
	logSum, n := 0.0, 0
	hasZero := false
	for _, x := range xs {
		switch {
		case x == 0:
			hasZero = true
		case x < 0 || math.IsNaN(x) || math.IsInf(x, 0):
			// skip: undefined under a geometric mean
		default:
			logSum += math.Log(x)
			n++
		}
	}
	if hasZero {
		return 0
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Median returns the median of xs (the average of the two middle elements
// for even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between closest ranks. xs is not modified. Empty input
// returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratios divides each element of num by the corresponding element of den.
// It panics if the lengths differ or a denominator is zero.
func Ratios(num, den []float64) []float64 {
	if len(num) != len(den) {
		panic(fmt.Sprintf("stats: Ratios length mismatch %d vs %d", len(num), len(den)))
	}
	out := make([]float64, len(num))
	for i := range num {
		if den[i] == 0 {
			panic(fmt.Sprintf("stats: Ratios zero denominator at index %d", i))
		}
		out[i] = num[i] / den[i]
	}
	return out
}

// Normalize scales each element of xs by 1/base. It panics if base is zero.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: Normalize by zero base")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Summary bundles the min / max / geometric-mean triple the paper reports in
// Tables 8 and 9 (as percentages of the best-static-arm IPC).
type Summary struct {
	Min   float64
	Max   float64
	GMean float64
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{Min: Min(xs), Max: Max(xs), GMean: GeoMean(xs)}
}

// AsPercent returns the summary with every field multiplied by 100, matching
// the paper's "% of best static arm" presentation.
func (s Summary) AsPercent() Summary {
	return Summary{Min: s.Min * 100, Max: s.Max * 100, GMean: s.GMean * 100}
}

// String renders the summary as "min=.. max=.. gmean=.." with one decimal.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.1f max=%.1f gmean=%.1f", s.Min, s.Max, s.GMean)
}

// SpeedupPercent converts a ratio r into the "+x%" convention the paper
// uses: 1.026 -> 2.6.
func SpeedupPercent(r float64) float64 { return (r - 1) * 100 }

// ArgMax returns the index of the maximum element of xs, breaking ties in
// favor of the lowest index. It returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			bestV = x
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of xs, breaking ties in
// favor of the lowest index. It returns -1 for an empty slice.
func ArgMin(xs []float64) int {
	best := -1
	bestV := math.Inf(1)
	for i, x := range xs {
		if x < bestV {
			bestV = x
			best = i
		}
	}
	return best
}

// MovingAverage is a fixed-window moving average, mirroring the moving
// average buffer the paper borrows from the POWER7 adaptive prefetcher for
// the Periodic heuristic. The zero value is not usable; construct with
// NewMovingAverage.
type MovingAverage struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

// NewMovingAverage returns a moving average over a window of size. It
// panics if size <= 0.
func NewMovingAverage(size int) *MovingAverage {
	if size <= 0 {
		panic("stats: moving average window must be positive")
	}
	return &MovingAverage{buf: make([]float64, size)}
}

// Push adds x to the window, evicting the oldest sample when full.
func (m *MovingAverage) Push(x float64) {
	if m.n == len(m.buf) {
		m.sum -= m.buf[m.next]
	} else {
		m.n++
	}
	m.buf[m.next] = x
	m.sum += x
	m.next = (m.next + 1) % len(m.buf)
}

// Value returns the current average, or 0 when no samples have been pushed.
func (m *MovingAverage) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Len returns the number of samples currently in the window.
func (m *MovingAverage) Len() int { return m.n }

// Reset empties the window.
func (m *MovingAverage) Reset() {
	m.n = 0
	m.next = 0
	m.sum = 0
	for i := range m.buf {
		m.buf[i] = 0
	}
}
