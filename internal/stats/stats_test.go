package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %v, want 4", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{2, 8}); !almostEq(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("GeoMean(ones) = %v, want 1", got)
	}
	// Degenerate inputs must stay defined: faulted runs (stuck arm,
	// collapsed bandwidth at intensity 1) can measure exactly 0, and a
	// corrupt element must not poison the summary.
	if got := GeoMean([]float64{2, 0, 8}); got != 0 {
		t.Errorf("GeoMean with zero = %v, want 0", got)
	}
	if got := GeoMean([]float64{1, -1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("GeoMean skipping negative = %v, want 1", got)
	}
	if got := GeoMean([]float64{4, math.NaN(), 9}); !almostEq(got, 6, 1e-12) {
		t.Errorf("GeoMean skipping NaN = %v, want 6", got)
	}
	if got := GeoMean([]float64{2, math.Inf(1)}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean skipping +Inf = %v, want 2", got)
	}
	if got := GeoMean([]float64{-1, math.NaN()}); got != 0 {
		t.Errorf("GeoMean with no usable elements = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max not infinite")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Error("Median modified input")
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if got := Percentile(even, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(even, 100); got != 4 {
		t.Errorf("P100 = %v", got)
	}
}

func TestRatiosNormalize(t *testing.T) {
	r := Ratios([]float64{2, 9}, []float64{4, 3})
	if r[0] != 0.5 || r[1] != 3 {
		t.Errorf("Ratios = %v", r)
	}
	n := Normalize([]float64{2, 4}, 2)
	if n[0] != 1 || n[1] != 2 {
		t.Errorf("Normalize = %v", n)
	}
	assertPanics(t, func() { Ratios([]float64{1}, []float64{}) })
	assertPanics(t, func() { Ratios([]float64{1}, []float64{0}) })
	assertPanics(t, func() { Normalize([]float64{1}, 0) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestSummary(t *testing.T) {
	s := Summarize([]float64{0.95, 1.0, 1.05})
	if s.Min != 0.95 || s.Max != 1.05 {
		t.Errorf("Summary = %+v", s)
	}
	p := s.AsPercent()
	if !almostEq(p.Min, 95, 1e-9) || !almostEq(p.Max, 105, 1e-9) {
		t.Errorf("AsPercent = %+v", p)
	}
	if !strings.Contains(s.String(), "gmean=") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSpeedupPercent(t *testing.T) {
	if got := SpeedupPercent(1.026); !almostEq(got, 2.6, 1e-9) {
		t.Errorf("SpeedupPercent = %v", got)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{1, 5, 5, 0}
	if ArgMax(xs) != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", ArgMax(xs))
	}
	if ArgMin(xs) != 3 {
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty ArgMax/ArgMin != -1")
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Value() != 0 || m.Len() != 0 {
		t.Error("fresh moving average not empty")
	}
	m.Push(3)
	if m.Value() != 3 {
		t.Errorf("Value = %v", m.Value())
	}
	m.Push(6)
	m.Push(9)
	if m.Value() != 6 {
		t.Errorf("Value = %v, want 6", m.Value())
	}
	m.Push(12) // evicts 3
	if m.Value() != 9 {
		t.Errorf("Value = %v, want 9", m.Value())
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
	m.Reset()
	if m.Value() != 0 || m.Len() != 0 {
		t.Error("Reset did not clear")
	}
	assertPanics(t, func() { NewMovingAverage(0) })
}

// Property: geometric mean lies between min and max for positive inputs.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)/1000 + 0.001 // strictly positive
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geometric mean is multiplicative: GeoMean(k*xs) = k*GeoMean(xs).
func TestQuickGeoMeanScaling(t *testing.T) {
	f := func(raw []uint16, kRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := float64(kRaw)/100 + 0.01
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)/1000 + 0.001
			scaled[i] = xs[i] * k
		}
		a, b := GeoMean(scaled), k*GeoMean(xs)
		return almostEq(a, b, 1e-6*math.Max(1, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: moving average always lies between min and max of the window
// contents (here approximated by min/max of everything pushed).
func TestQuickMovingAverageBounds(t *testing.T) {
	f := func(raw []int16, sizeRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		m := NewMovingAverage(size)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			m.Push(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			if m.Value() < lo-1e-9 || m.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
