package stats

import "strings"

// This file is the single CSV quoting path for the repo: every CSV
// emitter (Table.CSV, SeriesCSV, the telemetry aggregators, the error
// appendix) renders rows through WriteCSVRow, so fields containing
// commas, quotes, or newlines — fault specs, panic messages, series
// names — always arrive quoted per RFC 4180 and round-trip through
// encoding/csv.

// CSVField returns s quoted for use as one CSV cell: unchanged when s
// contains no comma, quote, CR, or LF; otherwise wrapped in quotes with
// embedded quotes doubled.
func CSVField(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteCSVRow appends cells to b as one comma-separated line (with
// trailing newline), quoting each cell via CSVField.
func WriteCSVRow(b *strings.Builder, cells ...string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(CSVField(c))
	}
	b.WriteByte('\n')
}

// CSVRow renders cells as one CSV line, including the trailing newline.
func CSVRow(cells ...string) string {
	var b strings.Builder
	WriteCSVRow(&b, cells...)
	return b.String()
}
