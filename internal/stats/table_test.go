package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Table X: demo", "policy", "min", "gmean")
	tab.AddRow("DUCB", "95.0", "99.1")
	tab.AddFloatRow("UCB", "%.1f", 88.6, 98.8)
	out := tab.Render()
	for _, want := range []string{"Table X: demo", "policy", "DUCB", "99.1", "UCB", "98.8", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Numeric columns are right-aligned: the two data rows end at the same column.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only")
	tab.AddRow("x", "y", "z") // wider than header
	out := tab.Render()
	if !strings.Contains(out, "z") {
		t.Errorf("wide row lost: %s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "name", "value")
	tab.AddRow("plain", "1")
	tab.AddRow(`has "quote", comma`, "2")
	csv := tab.CSV()
	if strings.Contains(csv, "ignored") {
		t.Error("CSV contains title")
	}
	if !strings.Contains(csv, "name,value\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, `"has ""quote"", comma",2`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("bars", []string{"a", "bb"}, []float64{1, -2}, 10)
	if !strings.Contains(out, "bars") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[2], "-") || !strings.Contains(lines[2], "##########") {
		t.Errorf("negative full-scale bar wrong: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Errorf("half-scale bar has %d glyphs, want 5: %q", strings.Count(lines[1], "#"), lines[1])
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("", []string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew a bar: %q", out)
	}
}

func TestLinePlot(t *testing.T) {
	s1 := NewSeries("up", []float64{0, 1, 2, 3})
	s2 := NewSeries("down", []float64{3, 2, 1, 0})
	out := LinePlot("plot", []Series{s1, s2}, 8, 40)
	for _, want := range []string{"plot", "up", "down", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("LinePlot missing %q", want)
		}
	}
	if out := LinePlot("empty", nil, 4, 10); !strings.Contains(out, "empty plot") {
		t.Errorf("empty LinePlot = %q", out)
	}
	// Constant series should not divide by zero.
	flat := NewSeries("flat", []float64{1, 1, 1})
	if out := LinePlot("", []Series{flat}, 4, 10); !strings.Contains(out, "flat") {
		t.Error("flat series plot failed")
	}
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Append(1, 2)
	s.Append(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Errorf("Append result: %+v", s)
	}
}

func TestSeriesCSV(t *testing.T) {
	a := NewSeries("a", []float64{1, 2})
	b := NewSeries("b", []float64{3})
	csv := SeriesCSV("t", []Series{a, b})
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "t,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,3" {
		t.Errorf("row1 = %q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Errorf("row2 = %q (short series should pad)", lines[2])
	}
}
