package stats

import (
	"fmt"
	"strings"
)

// Table is a simple text table used to render the paper's tables in the
// report tool and benchmark output. Cells are strings; use the Add*
// helpers for formatted numeric rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of raw cells. Short rows are padded with empty
// cells; long rows are kept as-is (the renderer widens the table).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row with a label followed by values formatted with
// the given fmt verb (e.g. "%.1f").
func (t *Table) AddFloatRow(label, verb string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned text. Columns are left-aligned for
// the first column and right-aligned otherwise, which reads well for
// label-then-numbers tables.
func (t *Table) Render() string {
	ncols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			} else {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		total += 2 * (ncols - 1)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the table in RFC 4180 CSV form (quotes only where
// needed), including the header row. The title is not included. All
// quoting goes through the shared WriteCSVRow helper.
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.Headers) > 0 {
		WriteCSVRow(&b, t.Headers...)
	}
	for _, r := range t.Rows {
		WriteCSVRow(&b, r...)
	}
	return b.String()
}
