package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named sequence of (x, y) points, used to reproduce the
// paper's figures as text (bar charts and sorted-curve plots).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries builds a series from ys with implicit x = 0..len-1.
func NewSeries(name string, ys []float64) Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return Series{Name: name, X: xs, Y: ys}
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// barFull is the glyph used for horizontal bar segments.
const barFull = '#'

// BarChart renders labeled horizontal bars for values, scaled so the
// largest magnitude spans width characters. Labels and values are printed
// alongside. Negative values render with a leading '-' region.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxAbs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxAbs > 0 {
			n = int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		}
		bar := strings.Repeat(string(barFull), n)
		sign := " "
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "%-*s %s%-*s %8.3f\n", labelW, label, sign, width, bar, v)
	}
	return b.String()
}

// LinePlot renders a crude scatter/line plot of one or more series on a
// rows x cols character grid, with per-series glyphs. It is meant for
// eyeballing figure shapes (e.g. the sorted mix-speedup curve of Fig. 13 or
// the exploration traces of Fig. 7) in terminal output.
func LinePlot(title string, series []Series, rows, cols int) string {
	if rows <= 0 {
		rows = 12
	}
	if cols <= 0 {
		cols = 72
	}
	glyphs := []byte{'*', 'o', '+', 'x', '@', '%', '&', '~'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(empty plot)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(cols-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(rows-1))
			r := rows - 1 - cy
			grid[r][cx] = g
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "y: [%.3g, %.3g]  x: [%.3g, %.3g]\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", cols))
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// SeriesCSV renders multiple series with a shared x column to CSV. Series
// must have equal lengths; shorter series are padded with empty cells.
// Rows go through the shared WriteCSVRow helper, so series names with
// commas or quotes stay parseable.
func SeriesCSV(xName string, series []Series) string {
	maxLen := 0
	for _, s := range series {
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	var b strings.Builder
	header := make([]string, 0, len(series)+1)
	header = append(header, xName)
	for _, s := range series {
		header = append(header, s.Name)
	}
	WriteCSVRow(&b, header...)
	row := make([]string, len(series)+1)
	for i := 0; i < maxLen; i++ {
		row[0] = ""
		if len(series) > 0 && i < len(series[0].X) {
			row[0] = fmt.Sprintf("%g", series[0].X[i])
		}
		for si, s := range series {
			row[si+1] = ""
			if i < len(s.Y) {
				row[si+1] = fmt.Sprintf("%g", s.Y[i])
			}
		}
		WriteCSVRow(&b, row...)
	}
	return b.String()
}
