package stats

import (
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
)

// TestCSVFieldQuoting covers the RFC 4180 cases the repo actually
// emits: fault specs with colons (unquoted), series names with commas,
// panic messages with quotes and newlines.
func TestCSVFieldQuoting(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"noise:0.5:7", "noise:0.5:7"},
		{"a,b", `"a,b"`},
		{`say "hi"`, `"say ""hi"""`},
		{"line1\nline2", "\"line1\nline2\""},
		{"cr\rlf", "\"cr\rlf\""},
		{"", ""},
	}
	for _, c := range cases {
		if got := CSVField(c.in); got != c.want {
			t.Errorf("CSVField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCSVRowRoundTrip feeds hostile cells through the shared helper and
// asserts encoding/csv recovers them exactly.
func TestCSVRowRoundTrip(t *testing.T) {
	cells := []string{"noise:0.5:7", "panic: bad, very bad", "multi\nline", `q"q`, "plain"}
	row := CSVRow(cells...)
	got, err := csv.NewReader(strings.NewReader(row)).Read()
	if err != nil {
		t.Fatalf("encoding/csv rejects emitted row %q: %v", row, err)
	}
	if !reflect.DeepEqual(got, cells) {
		t.Fatalf("round trip changed cells:\n in  %q\n out %q", cells, got)
	}
}

// TestSeriesCSVParseable: series names containing commas (e.g. fault
// spec lists) must not shift columns.
func TestSeriesCSVParseable(t *testing.T) {
	series := []Series{
		NewSeries("clean", []float64{1, 2}),
		NewSeries("noise:0.5,stuckarm:1", []float64{3, 4}),
	}
	out := SeriesCSV("step", series)
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("SeriesCSV output does not parse: %v\n%s", err, out)
	}
	want := [][]string{
		{"step", "clean", "noise:0.5,stuckarm:1"},
		{"0", "1", "3"},
		{"1", "2", "4"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows:\n got %q\nwant %q", rows, want)
	}
}

// TestTableCSVParseable: table cells with commas and quotes survive the
// shared quoting path.
func TestTableCSVParseable(t *testing.T) {
	tb := NewTable("title", "fault", "algo")
	tb.AddRow("noise:0.5,delay:1", `DUCB "tuned"`)
	rows, err := csv.NewReader(strings.NewReader(tb.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("Table.CSV output does not parse: %v\n%s", err, tb.CSV())
	}
	last := rows[len(rows)-1]
	if want := []string{"noise:0.5,delay:1", `DUCB "tuned"`}; !reflect.DeepEqual(last, want) {
		t.Fatalf("data row = %q, want %q", last, want)
	}
}
