package fault

import "testing"

// FuzzParseSpec asserts the CLI spec parser never panics and that every
// accepted spec round-trips exactly through String.
func FuzzParseSpec(f *testing.F) {
	f.Add("noise:0.5:1")
	f.Add("stuckarm:1")
	f.Add("delay:0.25:0xff")
	f.Add("bwcollapse:0:18446744073709551615")
	f.Add("phasestorm:1e-3:010")
	f.Add("panic::")
	f.Add(":::")
	f.Add("noise:+0.5:07")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if spec.Intensity < 0 || spec.Intensity > 1 {
			t.Fatalf("accepted out-of-range intensity: %+v from %q", spec, s)
		}
		if !knownKind(spec.Kind) {
			t.Fatalf("accepted unknown kind: %+v from %q", spec, s)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("String() %q of accepted spec does not re-parse: %v", spec.String(), err)
		}
		if again != spec {
			t.Fatalf("round-trip mismatch: %+v -> %q -> %+v", spec, spec.String(), again)
		}
	})
}
