package fault

import (
	"math"
	"strings"
	"testing"

	"microbandit/internal/core"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"noise:0.5", Spec{Noise, 0.5, 1}},
		{"stuckarm:1:42", Spec{StuckArm, 1, 42}},
		{"delay:0.25:0x10", Spec{Delay, 0.25, 16}},
		{"bwcollapse:0", Spec{BWCollapse, 0, 1}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"", "noise", "noise:", "noise:x", "noise:2", "noise:-0.1",
		"noise:NaN", "noise:0.5:x", "noise:0.5:1:2", "martian:0.5",
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): expected error", in)
		}
	}
}

func TestParseSetRoundTrip(t *testing.T) {
	in := "noise:0.5:7,stuckarm:0.25,delay:1:3"
	set, err := ParseSet(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("got %d specs, want 3", len(set))
	}
	set2, err := ParseSet(set.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", set.String(), err)
	}
	for i := range set {
		if set[i] != set2[i] {
			t.Errorf("spec %d: %+v != %+v", i, set[i], set2[i])
		}
	}
	if _, err := ParseSet("noise:0.5,noise:0.1"); err == nil {
		t.Error("duplicate kind: expected error")
	}
	if set, err := ParseSet("  "); err != nil || set != nil {
		t.Errorf("blank set: got %v, %v", set, err)
	}
}

// recorder captures the rewards a wrapped controller delivers.
type recorder struct {
	arm     int
	rewards []float64
}

func (r *recorder) Step() int         { return r.arm }
func (r *recorder) Reward(v float64)  { r.rewards = append(r.rewards, v) }
func (r *recorder) InInitialRR() bool { return false }

// ctxRecorder is a recorder that also accepts context signatures, like
// core.ContextualAgent.
type ctxRecorder struct {
	recorder
	sigs []core.Signature
}

func (r *ctxRecorder) SetContext(sig core.Signature) { r.sigs = append(r.sigs, sig) }

// TestControllerForwardsSetContext: the reward-channel fault wrapper must
// not hide the inner controller's ContextSetter — otherwise a contextual
// agent in a faulted robustness run silently never receives a context and
// degenerates to a single-table bandit.
func TestControllerForwardsSetContext(t *testing.T) {
	rec := &ctxRecorder{}
	fs := Set{{Kind: Noise, Intensity: 0.5, Seed: 3}}
	c := Controller(rec, fs, 7)
	if c == core.Controller(rec) {
		t.Fatal("noise set should have wrapped the controller")
	}
	cs, ok := c.(core.ContextSetter)
	if !ok {
		t.Fatal("fault wrapper hides core.ContextSetter from the runner")
	}
	cs.SetContext(core.Signature(42))
	cs.SetContext(core.Signature(7))
	if len(rec.sigs) != 2 || rec.sigs[0] != 42 || rec.sigs[1] != 7 {
		t.Fatalf("inner received signatures %v, want [42 7]", rec.sigs)
	}
	// A non-contextual inner tolerates the forwarded call as a no-op.
	plain := Controller(&recorder{}, fs, 7)
	plain.(core.ContextSetter).SetContext(core.Signature(1))
}

// probeRecorder is a recorder that also accepts reward probes, like
// core.Selector.
type probeRecorder struct {
	recorder
	probes []core.RewardProbe
}

func (r *probeRecorder) SetRewardProbe(p core.RewardProbe) { r.probes = append(r.probes, p) }

// constProbe is a trivial core.RewardProbe.
type constProbe float64

func (p constProbe) StepReward() float64 { return float64(p) }

// TestControllerForwardsSetRewardProbe: the reward-channel fault wrapper
// must not hide the inner controller's ProbeSetter — the mirror of the
// SetContext wrapper-hiding bug above, for the scenario subsystem's
// per-scenario reward probes. Without forwarding, a faulted scenario run
// would silently train on the default reward instead of the scenario's.
func TestControllerForwardsSetRewardProbe(t *testing.T) {
	rec := &probeRecorder{}
	fs := Set{{Kind: Noise, Intensity: 0.5, Seed: 3}}
	c := Controller(rec, fs, 7)
	if c == core.Controller(rec) {
		t.Fatal("noise set should have wrapped the controller")
	}
	ps, ok := c.(core.ProbeSetter)
	if !ok {
		t.Fatal("fault wrapper hides core.ProbeSetter from the scenario wiring")
	}
	probe := constProbe(0.25)
	ps.SetRewardProbe(probe)
	if len(rec.probes) != 1 || rec.probes[0] != core.RewardProbe(probe) {
		t.Fatalf("inner received probes %v, want the one forwarded", rec.probes)
	}
	// A probe-less inner tolerates the forwarded call as a no-op.
	plain := Controller(&recorder{}, fs, 7)
	plain.(core.ProbeSetter).SetRewardProbe(probe)
}

// armsRecorder records Apply calls through the scenario-generic Applier
// surface.
type armsRecorder struct {
	arms    int
	applied []int
}

func (a *armsRecorder) NumArms() int  { return a.arms }
func (a *armsRecorder) Apply(arm int) { a.applied = append(a.applied, arm) }

// TestArmsStuck: the generic stuck-arm wrapper drops some Apply calls
// deterministically and passes NumArms through; without a stuck-arm
// spec the inner Applier is returned unchanged.
func TestArmsStuck(t *testing.T) {
	inner := &armsRecorder{arms: 4}
	if got := Arms(inner, nil, 1); got != Applier(inner) {
		t.Fatal("empty set must return the inner Applier unchanged")
	}
	fs := Set{{Kind: StuckArm, Intensity: 0.5, Seed: 9}}
	w := Arms(inner, fs, 3)
	if w == Applier(inner) {
		t.Fatal("stuck-arm set should have wrapped the Applier")
	}
	if w.NumArms() != 4 {
		t.Fatalf("NumArms through wrapper = %d, want 4", w.NumArms())
	}
	for i := 0; i < 64; i++ {
		w.Apply(i & 3)
	}
	if len(inner.applied) == 0 || len(inner.applied) == 64 {
		t.Fatalf("stuck-arm at 0.5 delivered %d/64 Apply calls, want some dropped", len(inner.applied))
	}
	// Same spec and seeds -> same drop pattern.
	inner2 := &armsRecorder{arms: 4}
	w2 := Arms(inner2, fs, 3)
	for i := 0; i < 64; i++ {
		w2.Apply(i & 3)
	}
	if len(inner2.applied) != len(inner.applied) {
		t.Fatalf("same seeds dropped differently: %d vs %d", len(inner2.applied), len(inner.applied))
	}
}

func TestControllerCleanPassthrough(t *testing.T) {
	rec := &recorder{}
	if got := Controller(rec, nil, 1); got != core.Controller(rec) {
		t.Error("empty set must return the inner controller unchanged")
	}
	// Intensity 0 is also clean.
	fs := Set{{Kind: Noise, Intensity: 0, Seed: 1}}
	if got := Controller(rec, fs, 1); got != core.Controller(rec) {
		t.Error("zero-intensity set must return the inner controller unchanged")
	}
}

func TestControllerDelayShiftsRewards(t *testing.T) {
	rec := &recorder{}
	// delay intensity 0 -> 1 + round(0) = 1 step of delay... use 1/7 for 2.
	fs := Set{{Kind: Delay, Intensity: 1.0 / 7.0, Seed: 1}}
	c := Controller(rec, fs, 9)
	for i := 1; i <= 6; i++ {
		c.Reward(float64(i))
	}
	// delay = 1 + round(7 * 1/7) = 2: warm-up re-delivers reward 1 twice,
	// then the stream lags two steps behind.
	want := []float64{1, 1, 1, 2, 3, 4}
	if len(rec.rewards) != len(want) {
		t.Fatalf("delivered %d rewards, want %d", len(rec.rewards), len(want))
	}
	for i := range want {
		if rec.rewards[i] != want[i] {
			t.Errorf("reward %d = %v, want %v (all: %v)", i, rec.rewards[i], want[i], rec.rewards)
		}
	}
}

func TestControllerNoiseDeterministic(t *testing.T) {
	fs := Set{{Kind: Noise, Intensity: 0.5, Seed: 3}}
	run := func() []float64 {
		rec := &recorder{}
		c := Controller(rec, fs, 77)
		for i := 0; i < 32; i++ {
			c.Reward(1)
		}
		return rec.rewards
	}
	a, b := run(), run()
	perturbed := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seeds produced different noise at step %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != 1 {
			perturbed = true
		}
		if a[i] < 0.5-1e-9 || a[i] > 1.5+1e-9 {
			t.Errorf("noise at step %d outside amplitude bounds: %v", i, a[i])
		}
	}
	if !perturbed {
		t.Error("noise fault left every reward untouched")
	}
}

func TestControllerQuantize(t *testing.T) {
	rec := &recorder{}
	fs := Set{{Kind: Quantize, Intensity: 0.5, Seed: 1}}
	c := Controller(rec, fs, 1)
	c.Reward(0.61)
	c.Reward(0.24)
	if rec.rewards[0] != 0.5 || rec.rewards[1] != 0 {
		t.Errorf("quantized rewards = %v, want [0.5 0]", rec.rewards)
	}
}

func TestControllerPanic(t *testing.T) {
	rec := &recorder{}
	fs := Set{{Kind: Panic, Intensity: 1, Seed: 5}}
	c := Controller(rec, fs, 5)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic fault at intensity 1 never fired")
		}
		if !strings.Contains(v.(string), "injected panic") {
			t.Errorf("unexpected panic value %v", v)
		}
	}()
	for i := 0; i < 100; i++ {
		c.Reward(1)
	}
}

func TestTunableStuck(t *testing.T) {
	ens := prefetch.NewTable7Ensemble()
	// prob 0 via empty set: passthrough.
	if got := Tunable(ens, nil, 1); got != prefetch.Tunable(ens) {
		t.Error("empty set must return the inner tunable unchanged")
	}
	stuck := Tunable(ens, Set{{Kind: StuckArm, Intensity: 1, Seed: 2}}, 2)
	if stuck == prefetch.Tunable(ens) {
		t.Fatal("stuck-arm set must wrap the tunable")
	}
	// With probability 1 every Apply is dropped; NumArms still passes
	// through and Apply never panics even for arms the ensemble has.
	if stuck.NumArms() != ens.NumArms() {
		t.Error("NumArms must pass through")
	}
	for arm := 0; arm < stuck.NumArms(); arm++ {
		stuck.Apply(arm)
	}
}

func TestGeneratorPhaseStorm(t *testing.T) {
	app, err := trace.ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}
	fs := Set{{Kind: PhaseStorm, Intensity: 1, Seed: 4}}
	clean := app.New(11)
	stormy := Generator(app.New(11), fs, 11)
	if stormy.Name() != clean.Name() {
		t.Error("Name must pass through")
	}
	var ci, si trace.Inst
	diverged := false
	for i := 0; i < 40_000; i++ {
		clean.Next(&ci)
		stormy.Next(&si)
		if ci.Kind != si.Kind || ci.PC != si.PC {
			t.Fatalf("storm changed instruction structure at %d", i)
		}
		if ci.Addr != si.Addr {
			diverged = true
		}
	}
	if !diverged {
		t.Error("phase storm at intensity 1 never relocated the stream within 40k insts")
	}
}

func TestBandwidthCollapse(t *testing.T) {
	if Bandwidth(nil, 1) != nil {
		t.Error("empty set must yield a nil bandwidth fault")
	}
	bf := Bandwidth(Set{{Kind: BWCollapse, Intensity: 0.5, Seed: 6}}, 6)
	if bf == nil {
		t.Fatal("bwcollapse set must yield a fault")
	}
	collapsed, total := 0, 512
	for w := 0; w < total; w++ {
		cycle := int64(w) << bwWindowShift
		s := bf.PeriodScale(cycle)
		if s != 1 && s != bwScale {
			t.Fatalf("window %d: scale %v is neither 1 nor %v", w, s, bwScale)
		}
		// Purity: same cycle, same answer; and stable within a window.
		if bf.PeriodScale(cycle) != s || bf.PeriodScale(cycle+100) != s {
			t.Fatalf("window %d: PeriodScale is not a pure window function", w)
		}
		if s == bwScale {
			collapsed++
		}
	}
	frac := float64(collapsed) / float64(total)
	if math.Abs(frac-0.5) > 0.15 {
		t.Errorf("collapse fraction %v far from intensity 0.5", frac)
	}
}
