package fault

import (
	"net/http"
	"sync/atomic"
	"time"

	"microbandit/internal/xrand"
)

// This file realizes the transport fault kinds (Partition, SlowNode) as
// an http.Handler wrapper, the chaos layer the cluster tests put between
// the router and a node. Like every other injector the schedule is a
// deterministic function of (spec seed, run seed, request index): the
// same faulted windows fire at the same request ordinals regardless of
// wall-clock time, so a single-threaded chaos test replays exactly.

// partitionWindow sizes the burst windows: transport faults arrive in
// stretches of dead air, not independent per-request coin flips, because
// that is what failover detection has to survive.
const partitionWindow = 64

// slowNodeMeanPerIntensity scales SlowNode's mean added latency.
const slowNodeMeanPerIntensity = 2 * time.Millisecond

// slowNodeCap bounds a single injected delay.
const slowNodeCap = 20 * time.Millisecond

// faultyHandler applies the transport faults around an inner handler.
type faultyHandler struct {
	inner http.Handler
	reqs  atomic.Uint64

	partitionProb float64
	partitionSeed uint64

	slowMean time.Duration
	slowSeed uint64
	sleep    func(time.Duration) // swapped in tests
}

// Handler wraps inner with the set's transport faults (partition,
// slownode). When the set carries neither it returns inner unchanged —
// the clean path has zero overhead.
func Handler(inner http.Handler, fs Set, runSeed uint64) http.Handler {
	var h faultyHandler
	injected := false
	if s, ok := fs.find(Partition); ok {
		h.partitionProb = s.Intensity
		h.partitionSeed = mix(s.Seed, runSeed)
		injected = true
	}
	if s, ok := fs.find(SlowNode); ok {
		h.slowMean = time.Duration(s.Intensity * float64(slowNodeMeanPerIntensity))
		h.slowSeed = mix(s.Seed+1, runSeed)
		injected = true
	}
	if !injected {
		return inner
	}
	h.inner = inner
	h.sleep = time.Sleep
	return &h
}

// ServeHTTP implements http.Handler.
func (h *faultyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.reqs.Add(1) - 1
	if h.partitionProb > 0 {
		// The window schedule is a pure function of the window index
		// (the bwcollapse construction), so the fault pattern is fixed
		// up front, not sampled per request.
		window := n / partitionWindow
		u := mix(h.partitionSeed, window)
		if float64(u>>11)/(1<<53) < h.partitionProb {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
	}
	if h.slowMean > 0 {
		// Per-request delay drawn from a stream seeded by the request
		// ordinal: deterministic, yet not lockstep across requests.
		rng := xrand.New(mix(h.slowSeed, n))
		d := time.Duration(rng.ExpFloat64() * float64(h.slowMean))
		if d > slowNodeCap {
			d = slowNodeCap
		}
		if d > 0 {
			h.sleep(d)
		}
	}
	h.inner.ServeHTTP(w, r)
}
