package fault

import (
	"testing"

	"microbandit/internal/trace"
)

// mkStorm builds a phasestorm-wrapped catalog generator for the
// differential tests.
func mkStorm(t *testing.T, intensity float64) trace.Generator {
	t.Helper()
	app, err := trace.ByName("mcf17")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ParseSet("phasestorm:" + fmtFloat(intensity))
	if err != nil {
		t.Fatal(err)
	}
	return Generator(app.New(11), fs, 11)
}

// fmtFloat renders an intensity the spec parser accepts.
func fmtFloat(v float64) string {
	if v >= 1 {
		return "1.0"
	}
	return "0.9"
}

// TestStormChunkEquivalence pins the storm wrapper's chunked stream
// against its scalar stream: the period accounting and offset updates
// must land on exactly the same instructions. Intensity 0.9 gives a
// 49k-instruction period, so several relocations fall mid-chunk.
func TestStormChunkEquivalence(t *testing.T) {
	const n = 150_000
	want := trace.CollectN(mkStorm(t, 0.9), n)
	for _, size := range []int{1, 7, trace.ChunkLen - 1, trace.ChunkLen} {
		src := trace.SourceOf(mkStorm(t, 0.9))
		var c trace.Chunk
		got := make([]trace.Inst, 0, n)
		for len(got) < n {
			sz := size
			if sz > n-len(got) {
				sz = n - len(got)
			}
			c.Reset(sz)
			src.NextChunk(&c)
			var inst trace.Inst
			for i := 0; i < sz; i++ {
				c.Get(i, &inst)
				got = append(got, inst)
			}
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("chunk size %d diverges at %d:\nscalar  %+v\nchunked %+v",
					size, i, want[i], got[i])
			}
		}
	}
}

// TestStormHidesPhase pins the phase-hiding contract: a storm-wrapped
// generator exposes neither Phase nor PhaseAt, so contextual agents see
// phase 0 under storms — the scalar behavior the robustness sweep's
// outputs are pinned to.
func TestStormHidesPhase(t *testing.T) {
	g := mkStorm(t, 0.9)
	if _, ok := g.(interface{ Phase() int }); ok {
		t.Fatal("storm wrapper leaks Phase()")
	}
	if _, ok := g.(trace.PhaseAtter); ok {
		t.Fatal("storm wrapper leaks PhaseAt()")
	}
}
