package fault

import (
	"fmt"
	"math"

	"microbandit/internal/core"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
	"microbandit/internal/xrand"
)

// mix folds the spec seed and the per-run sub-seed into one stream seed
// (SplitMix64 finalizer), so the same spec produces independent fault
// streams across runs while staying deterministic for each.
func mix(specSeed, runSeed uint64) uint64 {
	z := specSeed*0x9e3779b97f4a7c15 + runSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Reward-channel faults: core.Controller wrapper

// faultyController perturbs the reward stream between the simulated unit
// and the real controller. Step and InInitialRR pass through untouched.
type faultyController struct {
	inner core.Controller

	noiseAmp  float64
	noiseRNG  *xrand.Rand
	quantStep float64
	delay     int
	buf       []float64

	panicAt int // bandit step at which to panic; 0 = never
	steps   int
}

// Controller wraps inner with the set's reward-channel faults (noise,
// quantize, delay, panic). When the set carries none of them it returns
// inner unchanged — the clean path has zero overhead.
func Controller(inner core.Controller, fs Set, runSeed uint64) core.Controller {
	var w faultyController
	injected := false
	if s, ok := fs.find(Noise); ok {
		w.noiseAmp = s.Intensity
		w.noiseRNG = xrand.New(mix(s.Seed, runSeed))
		injected = true
	}
	if s, ok := fs.find(Quantize); ok {
		w.quantStep = s.Intensity
		injected = true
	}
	if s, ok := fs.find(Delay); ok {
		w.delay = 1 + int(math.Round(7*s.Intensity))
		injected = true
	}
	if s, ok := fs.find(Panic); ok {
		rng := xrand.New(mix(s.Seed, runSeed))
		if rng.Bool(s.Intensity) {
			// Panic somewhere in the first few dozen steps, past the
			// initial arm applications so partial state exists.
			w.panicAt = 5 + rng.Intn(20)
			injected = true
		}
	}
	if !injected {
		return inner
	}
	w.inner = inner
	return &w
}

// Step implements core.Controller.
func (c *faultyController) Step() int { return c.inner.Step() }

// InInitialRR implements core.Controller.
func (c *faultyController) InInitialRR() bool { return c.inner.InInitialRR() }

// SetContext implements core.ContextSetter by forwarding to the inner
// controller when it is contextual. Reward-channel faults perturb the
// reward stream, not the telemetry signature, so context flows through
// untouched; for a non-contextual inner the call is a no-op.
func (c *faultyController) SetContext(sig core.Signature) {
	if cs, ok := c.inner.(core.ContextSetter); ok {
		cs.SetContext(sig)
	}
}

// SetRewardProbe implements core.ProbeSetter by forwarding the
// scenario's reward probe to the inner controller when it accepts one.
// Like SetContext, the wrapper must not hide the capability: the faults
// perturb reward values in Reward, wherever those values came from.
func (c *faultyController) SetRewardProbe(p core.RewardProbe) {
	if ps, ok := c.inner.(core.ProbeSetter); ok {
		ps.SetRewardProbe(p)
	}
}

// Reward implements core.Controller, applying noise, quantization, and
// delayed delivery before the inner controller sees the value.
func (c *faultyController) Reward(r float64) {
	c.steps++
	if c.panicAt > 0 && c.steps >= c.panicAt {
		panic(fmt.Sprintf("fault: injected panic at bandit step %d", c.steps))
	}
	if c.noiseAmp > 0 {
		r *= 1 + c.noiseAmp*(2*c.noiseRNG.Float64()-1)
		if r < 0 {
			r = 0
		}
	}
	if c.quantStep > 0 {
		r = math.Round(r/c.quantStep) * c.quantStep
	}
	if c.delay > 0 {
		// FIFO of undelivered rewards: once it holds more than delay
		// entries the controller receives the reward observed delay
		// steps ago; during warm-up it re-sees the oldest observation.
		c.buf = append(c.buf, r)
		if len(c.buf) > c.delay {
			r = c.buf[0]
			copy(c.buf, c.buf[1:])
			c.buf = c.buf[:len(c.buf)-1]
		} else {
			r = c.buf[0]
		}
	}
	c.inner.Reward(r)
}

// ---------------------------------------------------------------------
// Actuation faults: prefetch.Tunable wrapper

// stuckTunable drops Apply calls with a fixed probability, leaving the
// previously installed arm active while the agent believes it switched.
type stuckTunable struct {
	prefetch.Tunable
	rng  *xrand.Rand
	prob float64
}

// Tunable wraps inner with the set's stuck-arm fault; without one it
// returns inner unchanged.
func Tunable(inner prefetch.Tunable, fs Set, runSeed uint64) prefetch.Tunable {
	s, ok := fs.find(StuckArm)
	if !ok {
		return inner
	}
	return &stuckTunable{
		Tunable: inner,
		rng:     xrand.New(mix(s.Seed, runSeed)),
		prob:    s.Intensity,
	}
}

// Apply implements prefetch.Tunable, silently failing with the configured
// probability.
func (s *stuckTunable) Apply(arm int) {
	if s.rng.Bool(s.prob) {
		return
	}
	s.Tunable.Apply(arm)
}

// Applier is the minimal arm surface shared by prefetch.Tunable and
// scenario.Tunable — what the stuck-arm fault actually needs.
type Applier interface {
	NumArms() int
	Apply(arm int)
}

// stuckApplier is stuckTunable for arbitrary decision scenarios: same
// fault, no prefetcher surface.
type stuckApplier struct {
	inner Applier
	rng   *xrand.Rand
	prob  float64
}

// Arms wraps inner with the set's stuck-arm fault; without one it
// returns inner unchanged. It is the scenario-generic sibling of
// Tunable, for arm-controlled units that are not prefetchers.
func Arms(inner Applier, fs Set, runSeed uint64) Applier {
	s, ok := fs.find(StuckArm)
	if !ok {
		return inner
	}
	return &stuckApplier{
		inner: inner,
		rng:   xrand.New(mix(s.Seed, runSeed)),
		prob:  s.Intensity,
	}
}

// NumArms implements Applier.
func (s *stuckApplier) NumArms() int { return s.inner.NumArms() }

// Apply implements Applier, silently failing with the configured
// probability.
func (s *stuckApplier) Apply(arm int) {
	if s.rng.Bool(s.prob) {
		return
	}
	s.inner.Apply(arm)
}

// ---------------------------------------------------------------------
// Workload faults: trace.Generator wrapper

// stormGen relocates the access stream to a fresh address offset every
// period instructions — an abrupt phase change the learned prefetcher
// state is wrong for.
type stormGen struct {
	inner  trace.Generator
	src    trace.ChunkSource
	rng    *xrand.Rand
	period int64
	n      int64
	offset uint64
}

// Generator wraps inner with the set's phase-storm fault; without one it
// returns inner unchanged.
func Generator(inner trace.Generator, fs Set, runSeed uint64) trace.Generator {
	s, ok := fs.find(PhaseStorm)
	if !ok {
		return inner
	}
	period := int64(400_000 - s.Intensity*390_000)
	if period < 10_000 {
		period = 10_000
	}
	return &stormGen{
		inner:  inner,
		src:    trace.SourceOf(inner),
		rng:    xrand.New(mix(s.Seed, runSeed)),
		period: period,
	}
}

// Name implements trace.Generator.
func (g *stormGen) Name() string { return g.inner.Name() }

// Next implements trace.Generator.
func (g *stormGen) Next(i *trace.Inst) {
	g.inner.Next(i)
	g.n++
	if g.n%g.period == 0 {
		// A fresh line-aligned offset within a 1 GB window: far enough
		// to leave every cache and learned pattern cold.
		g.offset = g.rng.Uint64() & 0x3fff_ffc0
	}
	if g.offset != 0 && (i.Kind == trace.KindLoad || i.Kind == trace.KindStore) {
		i.Addr += g.offset
	}
}

// NextChunk implements trace.ChunkSource: the inner source fills the
// slab, then the storm relocation runs over it with per-instruction
// period accounting identical to Next. stormGen deliberately does not
// implement trace.PhaseAtter — a storm-wrapped trace reports phase 0,
// exactly as the scalar wrapper hides the inner generator's Phase.
func (g *stormGen) NextChunk(c *trace.Chunk) {
	g.src.NextChunk(c)
	n := c.Len()
	memIdx := 0
	for i := 0; i < n; i++ {
		g.n++
		if g.n%g.period == 0 {
			g.offset = g.rng.Uint64() & 0x3fff_ffc0
		}
		if memIdx < len(c.Mem) && int(c.Mem[memIdx]) == i {
			memIdx++
			if g.offset != 0 {
				c.Addr[i] += g.offset
			}
		}
	}
}

// ---------------------------------------------------------------------
// Memory-system faults: mem.BandwidthFault implementation

// bwCollapse stretches the DRAM streaming period during collapsed
// windows. It is a pure function of the cycle, so the fault pattern is
// identical no matter how requests interleave.
type bwCollapse struct {
	seed uint64
	prob float64
}

// bwWindowShift sizes the collapse windows (64Ki cycles).
const bwWindowShift = 16

// bwScale is the period multiplier during a collapsed window.
const bwScale = 8.0

// Bandwidth builds the set's DRAM bandwidth fault, or nil when the set
// has none (callers skip installation on nil).
func Bandwidth(fs Set, runSeed uint64) mem.BandwidthFault {
	s, ok := fs.find(BWCollapse)
	if !ok {
		return nil
	}
	return &bwCollapse{seed: mix(s.Seed, runSeed), prob: s.Intensity}
}

// PeriodScale implements mem.BandwidthFault.
func (b *bwCollapse) PeriodScale(cycle int64) float64 {
	window := uint64(cycle) >> bwWindowShift
	h := mix(b.seed, window)
	// Top 53 bits to a uniform float in [0, 1).
	if float64(h>>11)/(1<<53) < b.prob {
		return bwScale
	}
	return 1
}
