package fault

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// okServer answers 200 to everything; a comparable type so the
// pass-through identity checks below can use ==.
type okServer struct{}

func (okServer) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
}

var okHandler okServer

func hit(h http.Handler) int {
	req := httptest.NewRequest("GET", "/", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code
}

func TestHandlerCleanPassThrough(t *testing.T) {
	if h := Handler(okHandler, nil, 1); h != http.Handler(okHandler) {
		t.Fatalf("empty set must return the inner handler unchanged")
	}
	set, err := ParseSet("partition:0,slownode:0")
	if err != nil {
		t.Fatal(err)
	}
	// Intensity 0 is the clean configuration for every kind.
	if h := Handler(okHandler, set, 1); h != http.Handler(okHandler) {
		t.Fatalf("zero-intensity set must return the inner handler unchanged")
	}
}

func TestPartitionBurstsAndDeterminism(t *testing.T) {
	set, err := ParseSet("partition:0.3:7")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		h := Handler(okHandler, set, 42)
		codes := make([]int, 8*partitionWindow)
		for i := range codes {
			codes[i] = hit(h)
		}
		return codes
	}
	a, b := run(), run()
	n503 := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %d vs %d across identical runs", i, a[i], b[i])
		}
		if a[i] == http.StatusServiceUnavailable {
			n503++
		}
	}
	if n503 == 0 || n503 == len(a) {
		t.Fatalf("partition 0.3 dropped %d of %d requests", n503, len(a))
	}
	// Faults arrive in whole windows: every window is uniformly up or
	// uniformly partitioned.
	for w := 0; w < len(a)/partitionWindow; w++ {
		first := a[w*partitionWindow]
		for i := 1; i < partitionWindow; i++ {
			if a[w*partitionWindow+i] != first {
				t.Fatalf("window %d mixes %d and %d", w, first, a[w*partitionWindow+i])
			}
		}
	}
}

func TestSlowNodeDelaysDeterministically(t *testing.T) {
	set, err := ParseSet("slownode:1:3")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []time.Duration {
		h := Handler(okHandler, set, 9).(*faultyHandler)
		var delays []time.Duration
		h.sleep = func(d time.Duration) { delays = append(delays, d) }
		for i := 0; i < 200; i++ {
			if code := hit(h); code != http.StatusOK {
				t.Fatalf("slownode must not fail requests, got %d", code)
			}
		}
		return delays
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("slownode:1 injected no delays")
	}
	if len(a) != len(b) {
		t.Fatalf("delay counts differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v vs %v across identical runs", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] > slowNodeCap {
			t.Fatalf("delay %v outside [0, %v]", a[i], slowNodeCap)
		}
	}
}

func TestServedSessionRejectsTransportKinds(t *testing.T) {
	// The serve layer's reward-channel whitelist must keep rejecting the
	// transport kinds — a served session has no transport of its own to
	// fault. (The serve package owns that check; this pins the kinds'
	// spec-parse side so the names stay addressable.)
	for _, s := range []string{"partition:0.5", "slownode:0.25:9"} {
		if _, err := ParseSpec(s); err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
	}
}
