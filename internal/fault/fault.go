// Package fault is the deterministic fault-injection layer of the
// robustness experiments: it perturbs what the Bandit observes and
// controls — noisy or quantized IPC reward counters, delayed reward
// delivery, stuck-arm faults (a Tunable.Apply that silently fails),
// transient DRAM bandwidth collapse bursts, and phase-change storms in
// the workload — without modifying any clean simulation path.
//
// Every fault is described by a Spec (kind, intensity, seed) and realized
// by wrapping one of the existing substrate interfaces: core.Controller
// (reward-channel faults), prefetch.Tunable (actuation faults),
// trace.Generator (workload faults), and mem.BandwidthFault (memory-system
// faults). All randomness comes from private xrand streams derived from
// the spec seed and the run's sub-seed, so a faulted experiment is
// byte-identical at any worker count: the same seeded faults fire at the
// same simulated points regardless of goroutine scheduling.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind names one fault model.
type Kind string

// Fault kinds.
const (
	// Noise perturbs every step reward multiplicatively: the controller
	// sees r·(1 + a·u) with u uniform in [-1, 1) and amplitude
	// a = Intensity, modeling jittery IPC counters.
	Noise Kind = "noise"
	// Quantize rounds every step reward to multiples of Intensity,
	// modeling coarse fixed-point reward counters.
	Quantize Kind = "quantize"
	// Delay shifts reward delivery by 1 + round(7·Intensity) bandit
	// steps: the controller credits each arm with the reward observed
	// that many steps earlier (stale performance-counter reads).
	Delay Kind = "delay"
	// StuckArm makes each Tunable.Apply silently fail with probability
	// Intensity, leaving the old arm installed while the agent believes
	// the switch happened.
	StuckArm Kind = "stuckarm"
	// BWCollapse degrades the DRAM channel in bursts: each 64Ki-cycle
	// window collapses with probability Intensity, stretching the
	// per-line streaming period 8x (transient co-runner bandwidth theft).
	BWCollapse Kind = "bwcollapse"
	// PhaseStorm forces abrupt workload phase changes: every P
	// instructions the access stream relocates to a fresh address
	// offset, with P shrinking from ~400k (Intensity 0) to 10k
	// (Intensity 1) instructions.
	PhaseStorm Kind = "phasestorm"
	// Panic makes the run panic mid-simulation with probability
	// Intensity — not a microarchitectural fault but a harness one,
	// used to exercise the experiment engine's graceful degradation.
	Panic Kind = "panic"
	// Partition severs a serving node's transport in bursts: each
	// 64-request window is partitioned with probability Intensity, and
	// every request inside a partitioned window is answered with a bare
	// 503 (the closest an http.Handler can come to a cut cable). The
	// cluster router sees exactly what a flaky network gives it:
	// stretches of dead air that must trigger retry, then failover.
	Partition Kind = "partition"
	// SlowNode stretches a serving node's response time: each request is
	// delayed by an exponentially distributed latency with mean
	// Intensity·2ms (capped at 20ms), modeling a node losing the CPU to
	// a noisy neighbor without ever failing outright.
	SlowNode Kind = "slownode"
)

// Kinds lists every fault kind in canonical order.
func Kinds() []Kind {
	return []Kind{Noise, Quantize, Delay, StuckArm, BWCollapse, PhaseStorm, Panic, Partition, SlowNode}
}

// KindNames lists every fault kind as strings (CLI usage messages).
func KindNames() []string {
	ks := Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

func knownKind(k Kind) bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// Spec is one configured fault: what to inject, how hard, and the seed of
// its private random stream.
type Spec struct {
	Kind      Kind
	Intensity float64 // in [0, 1]
	Seed      uint64
}

// String renders the spec in the CLI form kind:intensity:seed. It
// round-trips exactly through ParseSpec.
func (s Spec) String() string {
	return string(s.Kind) + ":" + strconv.FormatFloat(s.Intensity, 'g', -1, 64) +
		":" + strconv.FormatUint(s.Seed, 10)
}

// ParseSpec parses the CLI form "kind:intensity[:seed]" (seed defaults
// to 1). Intensity must be a finite number in [0, 1].
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Spec{}, fmt.Errorf("fault: spec %q is not kind:intensity[:seed]", s)
	}
	spec := Spec{Kind: Kind(parts[0]), Seed: 1}
	if !knownKind(spec.Kind) {
		return Spec{}, fmt.Errorf("fault: unknown kind %q (valid: %s)",
			parts[0], strings.Join(KindNames(), ", "))
	}
	in, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Spec{}, fmt.Errorf("fault: bad intensity in %q: %v", s, err)
	}
	if math.IsNaN(in) || in < 0 || in > 1 {
		return Spec{}, fmt.Errorf("fault: intensity %v in %q outside [0, 1]", in, s)
	}
	spec.Intensity = in
	if len(parts) == 3 {
		seed, err := strconv.ParseUint(parts[2], 0, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad seed in %q: %v", s, err)
		}
		spec.Seed = seed
	}
	return spec, nil
}

// Set is a collection of faults injected together, at most one per kind.
type Set []Spec

// String renders the set in the CLI form spec,spec,...
func (fs Set) String() string {
	parts := make([]string, len(fs))
	for i, s := range fs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// ParseSet parses a comma-separated spec list. The empty string is the
// empty set.
func ParseSet(s string) (Set, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out Set
	for _, part := range strings.Split(s, ",") {
		spec, err := ParseSpec(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if _, ok := out.find(spec.Kind); ok {
			return nil, fmt.Errorf("fault: duplicate kind %q in %q", spec.Kind, s)
		}
		out = append(out, spec)
	}
	return out, nil
}

// find returns the spec of the given kind, if present with a non-zero
// intensity (intensity 0 is the clean configuration for every kind).
func (fs Set) find(k Kind) (Spec, bool) {
	for _, s := range fs {
		if s.Kind == k && s.Intensity > 0 {
			return s, true
		}
	}
	return Spec{}, false
}
