// Package trace defines the instruction-trace abstraction consumed by the
// trace-driven core model (internal/cpu) and provides deterministic
// synthetic workload generators standing in for the paper's trace suites
// (SPEC06/SPEC17 from DPC-3, CloudSuite from CRC-2, PARSEC and Ligra from
// the Pythia release).
//
// Real traces are unavailable offline, so each named application is a
// parameterized generator reproducing the *memory-access character* that
// drives prefetcher choice in the paper: dominant stride/stream patterns,
// pointer chasing, gather-style irregularity, working-set size, branch
// behaviour, and coarse program phases (the property behind Fig. 7's mcf
// phase change). Generators are infinite, deterministic streams given a
// seed; the simulator imposes the instruction budget.
//
// The package also provides a compact binary trace codec (Writer/Reader)
// so workloads can be captured to files and replayed, mirroring the
// trace-driven methodology of ChampSim.
package trace

import "fmt"

// Kind classifies an instruction for the timing model.
type Kind uint8

// Instruction kinds.
const (
	// KindALU is a short-latency non-memory instruction.
	KindALU Kind = iota
	// KindFP is a long-latency arithmetic instruction.
	KindFP
	// KindLoad reads memory at Inst.Addr.
	KindLoad
	// KindStore writes memory at Inst.Addr.
	KindStore
	// KindBranch is a conditional branch; Inst.Mispredict carries the
	// workload model's misprediction outcome.
	KindBranch
	numKinds = iota
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindFP:
		return "fp"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Inst is one dynamic instruction.
//
// The branch predictor is folded into the workload model: Mispredict marks
// the branches a realistic predictor would miss, so the core model charges
// a redirect penalty without simulating predictor state. This keeps the
// trace format self-contained, the way ChampSim traces carry branch
// outcomes.
type Inst struct {
	// PC is the instruction address.
	PC uint64
	// Addr is the byte address touched by loads and stores (0 otherwise).
	Addr uint64
	// Kind classifies the instruction.
	Kind Kind
	// Mispredict marks a mispredicted branch (KindBranch only).
	Mispredict bool
	// DependsOnPrev marks a load whose address depends on the previous
	// load's value (pointer chasing); the core serializes it behind that
	// load.
	DependsOnPrev bool
}

// Generator produces an infinite deterministic instruction stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next fills in the next instruction.
	Next(i *Inst)
}

// LineSize is the cache-line size in bytes, shared across the project.
const LineSize = 64

// Line returns addr's cache-line address (addr with the offset cleared).
func Line(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// CollectN drains n instructions from g into a slice. Intended for tests
// and tools; simulations stream instead.
func CollectN(g Generator, n int) []Inst {
	out := make([]Inst, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}
