package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic "MBTR" | version byte | name length (uvarint) | name bytes
//	then one record per instruction:
//	  flags byte: kind (3 bits) | mispredict (bit 3) | dependsOnPrev (bit 4)
//	  pc delta from previous pc (zigzag varint)
//	  addr delta from previous addr (zigzag varint; loads/stores only)
//
// Delta coding keeps streaming/striding traces small, the same trick the
// DPC trace formats use.

var traceMagic = [4]byte{'M', 'B', 'T', 'R'}

const traceVersion = 1

// Writer streams instructions to an io.Writer in the binary trace format.
type Writer struct {
	w        *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	count    int64
	buf      []byte
}

// NewWriter creates a trace writer and emits the header.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(name)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing name length: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, fmt.Errorf("trace: writing name: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, 0, 2*binary.MaxVarintLen64+1)}, nil
}

// Write appends one instruction to the trace.
func (w *Writer) Write(i *Inst) error {
	flags := byte(i.Kind) & 0x7
	if i.Mispredict {
		flags |= 1 << 3
	}
	if i.DependsOnPrev {
		flags |= 1 << 4
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, flags)
	w.buf = binary.AppendVarint(w.buf, int64(i.PC-w.prevPC))
	w.prevPC = i.PC
	if i.Kind == KindLoad || i.Kind == KindStore {
		w.buf = binary.AppendVarint(w.buf, int64(i.Addr-w.prevAddr))
		w.prevAddr = i.Addr
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of instructions written.
func (w *Writer) Count() int64 { return w.count }

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a binary trace.
type Reader struct {
	r        *bufio.Reader
	name     string
	prevPC   uint64
	prevAddr uint64
}

// NewReader validates the header and returns a reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	return &Reader{r: br, name: string(name)}, nil
}

// TraceName returns the name stored in the trace header.
func (r *Reader) TraceName() string { return r.name }

// Read decodes the next instruction. It returns io.EOF cleanly at the end
// of the trace.
func (r *Reader) Read(i *Inst) error {
	flags, err := r.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trace: reading flags: %w", err)
	}
	kind := Kind(flags & 0x7)
	if kind >= numKinds {
		return fmt.Errorf("trace: invalid kind %d", kind)
	}
	pcDelta, err := binary.ReadVarint(r.r)
	if err != nil {
		return fmt.Errorf("trace: reading pc delta: %w", err)
	}
	*i = Inst{
		Kind:          kind,
		Mispredict:    flags&(1<<3) != 0,
		DependsOnPrev: flags&(1<<4) != 0,
	}
	r.prevPC += uint64(pcDelta)
	i.PC = r.prevPC
	if kind == KindLoad || kind == KindStore {
		addrDelta, err := binary.ReadVarint(r.r)
		if err != nil {
			return fmt.Errorf("trace: reading addr delta: %w", err)
		}
		r.prevAddr += uint64(addrDelta)
		i.Addr = r.prevAddr
	}
	return nil
}

// ReadAll decodes the remaining instructions.
func (r *Reader) ReadAll() ([]Inst, error) {
	var out []Inst
	for {
		var i Inst
		switch err := r.Read(&i); {
		case err == nil:
			out = append(out, i)
		case errors.Is(err, io.EOF):
			return out, nil
		default:
			return out, err
		}
	}
}

// Loop replays a recorded instruction slice as an infinite Generator,
// mirroring the paper's methodology of concatenating short traces until
// the instruction budget is reached (§6.2).
type Loop struct {
	name  string
	insts []Inst
	pos   int
}

// NewLoop builds a looping generator over insts. It panics on an empty
// slice, which can never represent a program.
func NewLoop(name string, insts []Inst) *Loop {
	if len(insts) == 0 {
		panic("trace: NewLoop with empty trace")
	}
	return &Loop{name: name, insts: insts}
}

// Name implements Generator.
func (l *Loop) Name() string { return l.name }

// Next implements Generator.
func (l *Loop) Next(i *Inst) {
	*i = l.insts[l.pos]
	l.pos++
	if l.pos == len(l.insts) {
		l.pos = 0
	}
}
