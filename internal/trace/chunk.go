package trace

// Epoch-batched trace production. The per-instruction Generator.Next
// interface call is the simulator's innermost edge: one dynamic dispatch
// and one Inst copy per simulated instruction. A Chunk is a
// struct-of-arrays slab of instructions that a ChunkSource fills in one
// call, so the core model can run a tight index loop over parallel
// arrays instead. Every source is required to produce a stream
// bit-identical to its scalar Next stream (pinned by the differential
// tests and fuzz target in chunk_test.go).

// ChunkLen is the canonical epoch length in instructions. The core model
// requests chunks of this size and the memoized chunk cache stores them
// at this granularity, so cached entries line up across consumers. 1Ki
// instructions keeps a slab around 18 KiB — small enough to stay resident
// in the host L1/L2 alongside the simulated cache arrays (measurably
// faster than 4Ki on the streaming workloads) — and bounds how far
// generators run ahead of the simulated instruction count.
const ChunkLen = 1024

// Chunk flag bits (Flags array), mirroring Inst's booleans.
const (
	// FlagMispredict marks a mispredicted branch.
	FlagMispredict uint8 = 1 << 0
	// FlagDependsOnPrev marks a load serialized behind the previous load.
	FlagDependsOnPrev uint8 = 1 << 1
)

// Chunk is a struct-of-arrays instruction slab: element i of each array
// describes instruction i. Mem lists the indices of loads and stores in
// ascending order, so a consumer can iterate memory operations directly
// and treat the gaps as memory-free spans (the fast-forward invariant:
// an index absent from Mem is never a load or store).
type Chunk struct {
	// PC holds instruction addresses.
	PC []uint64
	// Addr holds load/store byte addresses (0 for non-memory kinds).
	Addr []uint64
	// Kind holds instruction kinds.
	Kind []Kind
	// Flags holds per-instruction flag bits.
	Flags []uint8
	// Mem holds the ascending indices of KindLoad/KindStore entries.
	Mem []int32
}

// Len returns the number of instructions in the chunk.
func (c *Chunk) Len() int { return len(c.PC) }

// Reset sizes the chunk to n instructions and clears the memory-op
// index, reusing existing capacity. Callers size the slab once and hand
// it to NextChunk repeatedly; no per-epoch allocation remains after the
// first call.
func (c *Chunk) Reset(n int) {
	if cap(c.PC) < n {
		c.PC = make([]uint64, n)
		c.Addr = make([]uint64, n)
		c.Kind = make([]Kind, n)
		c.Flags = make([]uint8, n)
	} else {
		c.PC = c.PC[:n]
		c.Addr = c.Addr[:n]
		c.Kind = c.Kind[:n]
		c.Flags = c.Flags[:n]
	}
	c.Mem = c.Mem[:0]
}

// Set stores one scalar instruction at index i, maintaining Mem. Indices
// must be filled in ascending order for Mem to stay sorted.
func (c *Chunk) Set(i int, in *Inst) {
	c.PC[i] = in.PC
	c.Addr[i] = in.Addr
	c.Kind[i] = in.Kind
	var fl uint8
	if in.Mispredict {
		fl |= FlagMispredict
	}
	if in.DependsOnPrev {
		fl |= FlagDependsOnPrev
	}
	c.Flags[i] = fl
	if in.Kind == KindLoad || in.Kind == KindStore {
		c.Mem = append(c.Mem, int32(i))
	}
}

// Get decodes the instruction at index i back into scalar form.
func (c *Chunk) Get(i int, out *Inst) {
	out.PC = c.PC[i]
	out.Addr = c.Addr[i]
	out.Kind = c.Kind[i]
	out.Mispredict = c.Flags[i]&FlagMispredict != 0
	out.DependsOnPrev = c.Flags[i]&FlagDependsOnPrev != 0
}

// CopyFrom makes c an exact copy of src, reusing c's capacity.
func (c *Chunk) CopyFrom(src *Chunk) {
	c.Reset(src.Len())
	copy(c.PC, src.PC)
	copy(c.Addr, src.Addr)
	copy(c.Kind, src.Kind)
	copy(c.Flags, src.Flags)
	c.Mem = append(c.Mem, src.Mem...)
}

// Bytes returns the slab's approximate memory footprint, the unit of the
// chunk cache's byte budget.
func (c *Chunk) Bytes() int64 {
	return int64(c.Len())*18 + int64(cap(c.Mem))*4
}

// ChunkSource produces the generator's instruction stream a chunk at a
// time. NextChunk fills all c.Len() slots (the caller sizes the slab via
// Reset) and rebuilds c.Mem; successive calls continue the stream.
type ChunkSource interface {
	// Name identifies the workload, matching the scalar generator.
	Name() string
	// NextChunk fills the caller-owned slab with the next c.Len()
	// instructions of the stream.
	NextChunk(c *Chunk)
}

// PhaseAtter reports the program phase as a pure function of the
// simulated instruction count. Under chunked execution a generator's
// internal state runs up to a chunk ahead of the simulation, so phase
// probes must not read mutable generator state; PhaseAt(n) answers "which
// phase governs instruction n" for any n regardless of how far
// generation has advanced.
type PhaseAtter interface {
	PhaseAt(n int64) int
}

// chunkFiller is the internal range-fill capability native sources
// implement: fill instructions [lo, hi) of c, appending to c.Mem. It
// exists so composite generators (PhaseGen) can batch sub-generator
// output into slices of one slab.
type chunkFiller interface {
	fillChunk(c *Chunk, lo, hi int)
}

// SourceOf returns g's chunked view: g itself when it implements
// ChunkSource natively, otherwise a scalar adapter that drains Next into
// the slab. The adapter is bit-identical by construction; native
// implementations are pinned by the differential tests.
func SourceOf(g Generator) ChunkSource {
	if cs, ok := g.(ChunkSource); ok {
		return cs
	}
	return &scalarSource{g: g}
}

// fillerOf returns g's range-fill view, wrapping non-native generators
// in the scalar adapter.
func fillerOf(g Generator) chunkFiller {
	if f, ok := g.(chunkFiller); ok {
		return f
	}
	return &scalarSource{g: g}
}

// scalarSource adapts any Generator to ChunkSource one Next at a time.
// The scratch instruction lives in the struct so the pointer handed
// through the interface does not force a per-call heap allocation.
type scalarSource struct {
	g       Generator
	scratch Inst
}

// Name implements ChunkSource.
func (s *scalarSource) Name() string { return s.g.Name() }

// NextChunk implements ChunkSource.
func (s *scalarSource) NextChunk(c *Chunk) { s.fillChunk(c, 0, c.Len()) }

// fillChunk implements chunkFiller.
func (s *scalarSource) fillChunk(c *Chunk, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.g.Next(&s.scratch)
		c.Set(i, &s.scratch)
	}
}

// NextChunk implements ChunkSource natively for the Shape-mix generator:
// the same state machine as Next, inlined over the slab, with no
// interface dispatch and no Inst copies for filler instructions.
func (g *gen) NextChunk(c *Chunk) { g.fillChunk(c, 0, c.Len()) }

// fillChunk implements chunkFiller. The branch structure and RNG call
// order replicate Next exactly — any divergence breaks the bit-identical
// contract (and the differential tests).
func (g *gen) fillChunk(c *Chunk, lo, hi int) {
	pcs, addrs, kinds, flags := c.PC, c.Addr, c.Kind, c.Flags
	for i := lo; i < hi; i++ {
		if g.fillerLeft > 0 {
			g.fillerLeft--
			pcs[i] = fillerPCBase + uint64(g.fillerIdx)*4
			addrs[i] = 0
			g.fillerIdx++
			if g.fillerIdx == g.shape.CodeFootprint {
				g.fillerIdx = 0
			}
			var fl uint8
			if g.rng.Bool(g.shape.BranchFrac) {
				kinds[i] = KindBranch
				if g.rng.Bool(g.shape.MispredictProb) {
					fl = FlagMispredict
				}
			} else if g.rng.Bool(g.shape.FPFrac) {
				kinds[i] = KindFP
			} else {
				kinds[i] = KindALU
			}
			flags[i] = fl
			continue
		}
		g.fillerLeft = g.shape.ALUPerMem
		g.scratch = Inst{}
		g.mem(g.rng, &g.scratch)
		pcs[i] = g.scratch.PC
		addrs[i] = g.scratch.Addr
		var fl uint8
		if g.rng.Bool(g.shape.StoreFrac) {
			kinds[i] = KindStore
		} else {
			kinds[i] = KindLoad
			if g.scratch.DependsOnPrev {
				fl = FlagDependsOnPrev
			}
		}
		flags[i] = fl
		c.Mem = append(c.Mem, int32(i))
	}
}

// NextChunk implements ChunkSource natively for PhaseGen by slicing the
// slab into per-phase sub-ranges and letting each part fill its range.
func (p *PhaseGen) NextChunk(c *Chunk) { p.fillChunk(c, 0, c.Len()) }

// fillChunk implements chunkFiller, advancing the phase state exactly as
// the scalar path does: pos counts instructions within the current
// phase, switching parts every phaseLen.
func (p *PhaseGen) fillChunk(c *Chunk, lo, hi int) {
	i := lo
	for i < hi {
		span := p.phaseLen - p.pos
		if span > hi-i {
			span = hi - i
		}
		p.fillers[p.cur].fillChunk(c, i, i+span)
		p.pos += span
		i += span
		if p.pos == p.phaseLen {
			p.pos = 0
			p.cur = (p.cur + 1) % len(p.parts)
		}
	}
}

// NextChunk implements ChunkSource natively for the replay Loop.
func (l *Loop) NextChunk(c *Chunk) { l.fillChunk(c, 0, c.Len()) }

// fillChunk implements chunkFiller, wrapping around the recorded slice
// exactly as scalar replay does.
func (l *Loop) fillChunk(c *Chunk, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.Set(i, &l.insts[l.pos])
		l.pos++
		if l.pos == len(l.insts) {
			l.pos = 0
		}
	}
}
