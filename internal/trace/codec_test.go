package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, insts []Inst) []Inst {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "test-trace")
	if err != nil {
		t.Fatal(err)
	}
	for k := range insts {
		if err := w.Write(&insts[k]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(insts)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(insts))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.TraceName() != "test-trace" {
		t.Fatalf("TraceName = %q", r.TraceName())
	}
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCodecRoundTripCatalogApps(t *testing.T) {
	for _, name := range []string{"lbm17", "mcf06", "cassandra"} {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := CollectN(app.New(5), 5000)
		out := roundTrip(t, in)
		if len(out) != len(in) {
			t.Fatalf("%s: got %d insts, want %d", name, len(out), len(in))
		}
		for k := range in {
			if in[k] != out[k] {
				t.Fatalf("%s: inst %d mismatch: %+v vs %+v", name, k, in[k], out[k])
			}
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	out := roundTrip(t, nil)
	if len(out) != 0 {
		t.Fatalf("empty trace decoded to %d insts", len(out))
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty input")
	}
	// Valid magic, wrong version.
	bad := append(append([]byte{}, traceMagic[:]...), 99)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad version")
	}
}

func TestCodecEOFSemantics(t *testing.T) {
	out := roundTrip(t, []Inst{{PC: 1, Kind: KindALU}})
	if len(out) != 1 {
		t.Fatal("lost instruction")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "x")
	i := Inst{PC: 4, Kind: KindLoad, Addr: 64}
	_ = w.Write(&i)
	_ = w.Flush()
	r, _ := NewReader(&buf)
	var got Inst
	if err := r.Read(&got); err != nil {
		t.Fatal(err)
	}
	if err := r.Read(&got); !errors.Is(err, io.EOF) {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestLoopReplaysForever(t *testing.T) {
	insts := []Inst{
		{PC: 1, Kind: KindALU},
		{PC: 2, Kind: KindLoad, Addr: 64},
		{PC: 3, Kind: KindBranch},
	}
	l := NewLoop("looped", insts)
	if l.Name() != "looped" {
		t.Errorf("Name = %q", l.Name())
	}
	for k := 0; k < 10; k++ {
		var i Inst
		l.Next(&i)
		if i != insts[k%3] {
			t.Fatalf("loop iteration %d = %+v", k, i)
		}
	}
}

func TestLoopPanicsOnEmpty(t *testing.T) {
	assertPanics(t, func() { NewLoop("x", nil) })
}

// Property: arbitrary instruction sequences survive the codec bit-exactly.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(pcs []uint32, kinds []uint8) bool {
		n := len(pcs)
		if len(kinds) < n {
			n = len(kinds)
		}
		in := make([]Inst, n)
		for k := 0; k < n; k++ {
			kind := Kind(kinds[k] % uint8(numKinds))
			in[k] = Inst{PC: uint64(pcs[k]) + 1, Kind: kind}
			if kind == KindLoad || kind == KindStore {
				in[k].Addr = uint64(pcs[k]) * 64
			}
			if kind == KindBranch {
				in[k].Mispredict = pcs[k]%2 == 0
			}
			if kind == KindLoad {
				in[k].DependsOnPrev = pcs[k]%3 == 0
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "q")
		if err != nil {
			return false
		}
		for k := range in {
			if err := w.Write(&in[k]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out, err := r.ReadAll()
		if err != nil || len(out) != len(in) {
			return false
		}
		for k := range in {
			if in[k] != out[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	app, _ := ByName("lbm17")
	insts := CollectN(app.New(1), 10000)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, "bench")
		for j := range insts {
			_ = w.Write(&insts[j])
		}
		_ = w.Flush()
	}
}
