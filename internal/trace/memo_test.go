package trace

import (
	"sync"
	"testing"
)

// memoApp returns a phase-structured catalog generator (the hardest
// case: composite state plus PhaseAt forwarding).
func memoApp(t *testing.T, seed uint64) Generator {
	t.Helper()
	app, err := ByName("mcf17")
	if err != nil {
		t.Fatal(err)
	}
	return app.New(seed)
}

// TestChunkCacheEquivalence pins the memoized stream against the plain
// one, cold (populating) and warm (replaying), through both the chunked
// and scalar read paths.
func TestChunkCacheEquivalence(t *testing.T) {
	const n = 3*ChunkLen + 100
	want := CollectN(memoApp(t, 5), n)

	cc := NewChunkCache(0)
	cold := collectChunked(SourceOf(cc.Source("mcf17:5", memoApp(t, 5))), n, ChunkLen)
	if i := diffStreams(want, cold); i >= 0 {
		t.Fatalf("cold run diverges at %d", i)
	}
	warm := collectChunked(SourceOf(cc.Source("mcf17:5", memoApp(t, 5))), n, ChunkLen)
	if i := diffStreams(want, warm); i >= 0 {
		t.Fatalf("warm run diverges at %d", i)
	}
	scalar := CollectN(cc.Source("mcf17:5", memoApp(t, 5)), n)
	if i := diffStreams(want, scalar); i >= 0 {
		t.Fatalf("scalar replay diverges at %d", i)
	}

	hits, misses := cc.Stats()
	// Cold run misses all 4 chunks (three full + the 100-instruction
	// tail). The warm run requests the same sizes and hits all 4. The
	// scalar replay reads full slabs only, so its final slab's size
	// mismatches the stored 100-instruction tail: 3 hits, 1 miss.
	if misses != 5 {
		t.Fatalf("misses = %d, want 5", misses)
	}
	if hits != 7 {
		t.Fatalf("hits = %d, want 7", hits)
	}
	if hr := cc.HitRate(); hr < 0.58 || hr > 0.59 {
		t.Fatalf("hit rate = %v, want 7/12", hr)
	}
}

// TestChunkCacheKeysIsolate pins key isolation: two keys over different
// seeds must never replay each other's chunks.
func TestChunkCacheKeysIsolate(t *testing.T) {
	const n = ChunkLen * 2
	cc := NewChunkCache(0)
	got5 := collectChunked(SourceOf(cc.Source("mcf17:5", memoApp(t, 5))), n, ChunkLen)
	got9 := collectChunked(SourceOf(cc.Source("mcf17:9", memoApp(t, 9))), n, ChunkLen)
	if i := diffStreams(CollectN(memoApp(t, 5), n), got5); i >= 0 {
		t.Fatalf("seed 5 diverges at %d", i)
	}
	if i := diffStreams(CollectN(memoApp(t, 9), n), got9); i >= 0 {
		t.Fatalf("seed 9 diverges at %d", i)
	}
}

// TestChunkCacheBudgetFallback pins the bounded-cache contract: with a
// budget too small to hold the trace, runs stay bit-identical (live
// generation with catch-up through the resident prefix) and the
// footprint respects the budget.
func TestChunkCacheBudgetFallback(t *testing.T) {
	const n = 6 * ChunkLen
	want := CollectN(memoApp(t, 5), n)
	// Budget for roughly two slabs: the rest of the stream must fall
	// back to live generation.
	cc := NewChunkCache(2 * 80 * ChunkLen / 4)
	for run := 0; run < 3; run++ {
		got := collectChunked(SourceOf(cc.Source("mcf17:5", memoApp(t, 5))), n, ChunkLen)
		if i := diffStreams(want, got); i >= 0 {
			t.Fatalf("run %d diverges at %d", run, i)
		}
	}
	if used := cc.BytesUsed(); used > 2*80*ChunkLen/4 {
		t.Fatalf("cache uses %d bytes, budget %d", used, 2*80*ChunkLen/4)
	}
	hits, _ := cc.Stats()
	if hits == 0 {
		t.Fatal("expected hits on the resident prefix")
	}
}

// TestChunkCacheConcurrent hammers one key from many goroutines; run
// under -race this pins the cache's synchronization, and every stream
// must come back bit-identical.
func TestChunkCacheConcurrent(t *testing.T) {
	const n = 4 * ChunkLen
	want := CollectN(memoApp(t, 5), n)
	cc := NewChunkCache(0)
	var wg sync.WaitGroup
	errs := make(chan int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := collectChunked(SourceOf(cc.Source("mcf17:5", memoApp(t, 5))), n, ChunkLen)
			if i := diffStreams(want, got); i >= 0 {
				errs <- i
			}
		}()
	}
	wg.Wait()
	close(errs)
	if i, bad := <-errs; bad {
		t.Fatalf("concurrent run diverged at %d", i)
	}
}

// TestChunkCacheHitZeroAlloc pins the memoized hit path: replaying a
// resident chunk into a warmed slab allocates nothing.
func TestChunkCacheHitZeroAlloc(t *testing.T) {
	cc := NewChunkCache(0)
	const resident = 30
	// Populate, then warm a slab through every resident chunk so its Mem
	// capacity reaches the entry's high-water mark.
	collectChunked(SourceOf(cc.Source("mcf17:5", memoApp(t, 5))), resident*ChunkLen, ChunkLen)
	var c Chunk
	warm := SourceOf(cc.Source("mcf17:5", memoApp(t, 5)))
	for i := 0; i < resident; i++ {
		c.Reset(ChunkLen)
		warm.NextChunk(&c)
	}

	// The measured source stays within the resident range: pure hits.
	src := SourceOf(cc.Source("mcf17:5", memoApp(t, 5)))
	allocs := testing.AllocsPerRun(resident-2, func() {
		c.Reset(ChunkLen)
		src.NextChunk(&c)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f per run, want 0", allocs)
	}
}

// TestChunkCachePhaseForwarding pins PhaseAt delegation through the
// cache wrapper, and phase-0 reporting for non-phase generators.
func TestChunkCachePhaseForwarding(t *testing.T) {
	cc := NewChunkCache(0)
	phased := cc.Source("mcf17:5", memoApp(t, 5))
	pa, ok := phased.(PhaseAtter)
	if !ok {
		t.Fatal("cached source does not forward PhaseAt")
	}
	inner := memoApp(t, 5).(PhaseAtter)
	for _, n := range []int64{0, 1, 1_499_999, 1_500_000, 3_000_000} {
		if got, want := pa.PhaseAt(n), inner.PhaseAt(n); got != want {
			t.Fatalf("PhaseAt(%d) = %d, want %d", n, got, want)
		}
	}

	app, err := ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}
	flat := cc.Source("lbm17:5", app.New(5))
	if got := flat.(PhaseAtter).PhaseAt(1_000_000); got != 0 {
		t.Fatalf("non-phase source PhaseAt = %d, want 0", got)
	}
}
