package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindALU: "alu", KindFP: "fp", KindLoad: "load",
		KindStore: "store", KindBranch: "branch", Kind(99): "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestLine(t *testing.T) {
	if Line(0x1234) != 0x1200 {
		t.Errorf("Line(0x1234) = %#x", Line(0x1234))
	}
	if Line(0x1240) != 0x1240 {
		t.Errorf("Line(0x1240) = %#x", Line(0x1240))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, app := range Catalog() {
		a := CollectN(app.New(42), 500)
		b := CollectN(app.New(42), 500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs: %+v vs %+v", app.Name, i, a[i], b[i])
			}
		}
	}
}

func TestGeneratorsProduceSaneStreams(t *testing.T) {
	for _, app := range Catalog() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			g := app.New(1)
			if g.Name() == "" {
				t.Error("empty generator name")
			}
			const n = 20000
			var mem, branches, deps int
			for k := 0; k < n; k++ {
				var i Inst
				g.Next(&i)
				switch i.Kind {
				case KindLoad, KindStore:
					mem++
					if i.Addr == 0 {
						t.Fatalf("memory op with zero address at %d", k)
					}
				case KindBranch:
					branches++
					if i.Addr != 0 {
						t.Fatalf("branch with address at %d", k)
					}
				case KindALU, KindFP:
					if i.Addr != 0 {
						t.Fatalf("non-mem op with address at %d", k)
					}
				default:
					t.Fatalf("invalid kind %d at %d", i.Kind, k)
				}
				if i.DependsOnPrev {
					deps++
					if i.Kind != KindLoad {
						t.Fatalf("DependsOnPrev on non-load at %d", k)
					}
				}
				if i.PC == 0 {
					t.Fatalf("zero PC at %d", k)
				}
			}
			memFrac := float64(mem) / n
			if memFrac < 0.05 || memFrac > 0.8 {
				t.Errorf("memory fraction = %.3f outside plausible range", memFrac)
			}
		})
	}
}

func TestCatalogStructure(t *testing.T) {
	apps := Catalog()
	if len(apps) < 40 {
		t.Fatalf("catalog has %d apps, want >= 40", len(apps))
	}
	names := map[string]bool{}
	suites := map[string]int{}
	for _, a := range apps {
		if names[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		names[a.Name] = true
		suites[a.Suite]++
	}
	for _, s := range SuiteOrder {
		if suites[s] == 0 {
			t.Errorf("suite %s has no apps", s)
		}
	}
	if got := len(BySuite("Ligra")); got != 4 {
		t.Errorf("Ligra suite has %d apps, want 4", got)
	}
	if _, err := ByName("lbm17"); err != nil {
		t.Errorf("ByName(lbm17): %v", err)
	}
	if _, err := ByName("no-such-app"); err == nil {
		t.Error("ByName accepted unknown app")
	}
	tune := TuneSet()
	for _, a := range tune {
		if a.Suite != "SPEC06" && a.Suite != "SPEC17" {
			t.Errorf("tune set contains non-SPEC app %s (%s)", a.Name, a.Suite)
		}
	}
	if len(tune) < 30 {
		t.Errorf("tune set has %d apps", len(tune))
	}
}

// The apps must differ in which access pattern dominates, otherwise the
// bandit's arm choice would be degenerate. Spot-check three signatures.
func TestPatternSignatures(t *testing.T) {
	uniqueLineFrac := func(name string) float64 {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := app.New(7)
		lines := map[uint64]bool{}
		memOps := 0
		for k := 0; k < 50000; k++ {
			var i Inst
			g.Next(&i)
			if i.Kind == KindLoad || i.Kind == KindStore {
				memOps++
				lines[Line(i.Addr)] = true
			}
		}
		return float64(len(lines)) / float64(memOps)
	}
	stream := uniqueLineFrac("libquantum") // sequential: ~1 new line per 8 accesses
	chase := uniqueLineFrac("canneal")     // random lines: nearly every access distinct
	server := uniqueLineFrac("exchange2")  // hot-set reuse: few distinct lines
	if !(server < stream && stream < chase) {
		t.Errorf("line-uniqueness ordering violated: server=%.3f stream=%.3f chase=%.3f",
			server, stream, chase)
	}
	if chase < 0.5 {
		t.Errorf("chase uniqueness = %.3f, want high", chase)
	}
}

// Sequential streams must advance line addresses monotonically per stream
// so stream prefetchers can latch on.
func TestStreamPatternMonotonicPerPC(t *testing.T) {
	g := newGen("s", 3, Shape{ALUPerMem: 0}, StreamPattern(4, 16, 128, 900))
	last := map[uint64]uint64{}
	for k := 0; k < 10000; k++ {
		var i Inst
		g.Next(&i)
		if prev, ok := last[i.PC]; ok && i.Addr < prev {
			t.Fatalf("stream for pc %#x went backwards: %#x -> %#x", i.PC, prev, i.Addr)
		}
		last[i.PC] = i.Addr
	}
	if len(last) != 4 {
		t.Errorf("expected 4 stream PCs, got %d", len(last))
	}
}

// Stride walkers must produce their configured constant stride per PC
// (within a lap).
func TestStridePatternConstantStride(t *testing.T) {
	g := newGen("st", 3, Shape{ALUPerMem: 0}, StridePattern([]int{256}, 4096, 901))
	var prev uint64
	seen := 0
	for k := 0; k < 2000; k++ {
		var i Inst
		g.Next(&i)
		if prev != 0 && i.Addr > prev {
			// Within a lap every delta is the configured stride; at a lap
			// boundary the walker jumps ahead by a gap larger than a page.
			if d := i.Addr - prev; d != 256 && d < 4096 {
				t.Fatalf("stride = %d, want 256 or a lap jump", d)
			} else if d == 256 {
				seen++
			}
		}
		prev = i.Addr
	}
	if seen == 0 {
		t.Fatal("no stride deltas observed")
	}
}

// The chase pattern must visit every working-set line (single-cycle
// permutation) and mark loads dependent.
func TestChasePatternCoversRing(t *testing.T) {
	const ws = 512
	g := newGen("c", 3, Shape{ALUPerMem: 0}, ChasePattern(ws, 902))
	seen := map[uint64]bool{}
	for k := 0; k < ws; k++ {
		var i Inst
		g.Next(&i)
		if !i.DependsOnPrev {
			t.Fatal("chase load not marked dependent")
		}
		seen[Line(i.Addr)] = true
	}
	if len(seen) != ws {
		t.Errorf("chase visited %d distinct lines in %d steps, want %d", len(seen), ws, ws)
	}
}

func TestPhaseGenSwitches(t *testing.T) {
	a := newGen("a", 1, Shape{ALUPerMem: 0}, StreamPattern(1, 64, 1024, 903))
	b := newGen("b", 1, Shape{ALUPerMem: 0}, ChasePattern(256, 904))
	p := NewPhaseGen("ph", 100, a, b)
	if p.Phase() != 0 {
		t.Fatal("initial phase != 0")
	}
	for k := 0; k < 100; k++ {
		var i Inst
		p.Next(&i)
	}
	if p.Phase() != 1 {
		t.Fatal("phase did not advance after phaseLen")
	}
	for k := 0; k < 100; k++ {
		var i Inst
		p.Next(&i)
	}
	if p.Phase() != 0 {
		t.Fatal("phase did not wrap")
	}
}

func TestPhaseGenPanics(t *testing.T) {
	assertPanics(t, func() { NewPhaseGen("x", 10) })
	assertPanics(t, func() {
		NewPhaseGen("x", 0, newGen("a", 1, Shape{}, ChasePattern(8, 905)))
	})
}

func TestMixPatternPanicsOnMismatch(t *testing.T) {
	assertPanics(t, func() { MixPattern([]float64{1}, nil, nil) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func BenchmarkGeneratorNext(b *testing.B) {
	app, _ := ByName("lbm17")
	g := app.New(1)
	var i Inst
	for k := 0; k < b.N; k++ {
		g.Next(&i)
	}
}
