package trace

import "fmt"

// App is a named synthetic application: a factory for its generator.
type App struct {
	// Name is the application name (styled after the original suite's
	// benchmark names).
	Name string
	// Suite is the application suite ("SPEC06", "SPEC17", "PARSEC",
	// "Ligra", "CloudSuite").
	Suite string
	// New builds a fresh generator for the app with the given seed.
	New func(seed uint64) Generator
}

// Suite names, in the order the paper's figures group them.
var SuiteOrder = []string{"SPEC06", "SPEC17", "PARSEC", "Ligra", "CloudSuite"}

// Shape presets. Memory intensity: heavy ~1 filler/mem, moderate ~3,
// light ~6.
func heavyShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 1, FPFrac: 0.1, BranchFrac: 0.1, MispredictProb: 0.02, StoreFrac: storeFrac}
}

func moderateShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 3, FPFrac: 0.15, BranchFrac: 0.15, MispredictProb: 0.04, StoreFrac: storeFrac}
}

func lightShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 6, FPFrac: 0.2, BranchFrac: 0.15, MispredictProb: 0.05, StoreFrac: storeFrac}
}

func branchyShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 4, FPFrac: 0.05, BranchFrac: 0.3, MispredictProb: 0.1, StoreFrac: storeFrac}
}

func fpShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 3, FPFrac: 0.5, BranchFrac: 0.08, MispredictProb: 0.02, StoreFrac: storeFrac}
}

// fpSparseShape models compute-dense FP kernels (large-stride grid codes):
// every access touches a fresh line, so a low memory intensity is what
// keeps them latency-bound rather than bandwidth-saturated — the regime
// where stride prefetching pays.
func fpSparseShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 12, FPFrac: 0.55, BranchFrac: 0.05, MispredictProb: 0.01, StoreFrac: storeFrac}
}

func serverShape(storeFrac float64) Shape {
	return Shape{ALUPerMem: 5, FPFrac: 0.02, BranchFrac: 0.25, MispredictProb: 0.08,
		StoreFrac: storeFrac, CodeFootprint: 8192}
}

// MCFPhaseLen is the phase length (instructions) of the mcf-style apps,
// chosen so multi-million-instruction runs cross at least one coarse phase
// boundary (the Fig. 7 adaptation scenario).
const MCFPhaseLen = 1_500_000

// app-building helpers; region keeps every app's data disjoint.

func streamApp(name, suite string, region, nStreams, elem, lines int, shape Shape) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return newGen(name, seed, shape, StreamPattern(nStreams, elem, lines, region))
	}}
}

func strideApp(name, suite string, region int, strides []int, shape Shape) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return newGen(name, seed, shape, StridePattern(strides, 4096, region))
	}}
}

func chaseApp(name, suite string, region, wsLines int, shape Shape) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return newGen(name, seed, shape, ChasePattern(wsLines, region))
	}}
}

func gatherApp(name, suite string, region, wsLines, perIdx int, shape Shape) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return newGen(name, seed, shape, GatherPattern(wsLines, perIdx, region))
	}}
}

func serverApp(name, suite string, region, hot, cold int, hotProb float64, shape Shape) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return newGen(name, seed, shape, ServerPattern(hot, cold, hotProb, region))
	}}
}

// mixApp combines several access patterns. The parts constructor runs once
// per New call (patterns hold mutable walker state), but it receives region
// indices that were fixed when the catalog entry was built, so every
// generator instance of an app touches identical addresses.
func mixApp(name, suite string, shape Shape, weights []float64, regions []int,
	parts func(regions []int) []memFunc) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return newGen(name, seed, shape, MixPattern(weights, parts(regions)...))
	}}
}

// phaseApp alternates two full sub-apps every MCFPhaseLen instructions.
func phaseApp(name, suite string, a, b App) App {
	return App{Name: name, Suite: suite, New: func(seed uint64) Generator {
		return NewPhaseGen(name, MCFPhaseLen, a.New(seed), b.New(seed+1))
	}}
}

// Catalog returns every synthetic application, grouped and ordered by
// suite. Region indices are fixed per app so traces are stable across
// calls.
func Catalog() []App {
	r := 0
	next := func() int { r++; return r }
	take := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = next()
		}
		return out
	}

	var apps []App
	add := func(a App) { apps = append(apps, a) }

	// --- SPEC06-style ---------------------------------------------------
	add(mixApp("gcc06", "SPEC06", branchyShape(0.25), []float64{0.5, 0.3, 0.2},
		take(3),
		func(rg []int) []memFunc {
			return []memFunc{
				StridePattern([]int{64, 128, 8}, 2048, rg[0]),
				ChasePattern(8192, rg[1]),
				StreamPattern(2, 8, 128, rg[2]),
			}
		}))
	{
		chasePart := chaseApp("mcf06.chase", "SPEC06", next(), 65536, heavyShape(0.15))
		stridePart := strideApp("mcf06.stride", "SPEC06", next(), []int{128, 256}, heavyShape(0.15))
		add(phaseApp("mcf06", "SPEC06", chasePart, stridePart))
	}
	add(streamApp("lbm06", "SPEC06", next(), 8, 16, 512, heavyShape(0.5)))
	add(streamApp("libquantum", "SPEC06", next(), 1, 8, 8192, heavyShape(0.1)))
	add(chaseApp("omnetpp06", "SPEC06", next(), 16384, moderateShape(0.3)))
	add(strideApp("cactusADM", "SPEC06", next(), []int{256, 512, 1024}, fpSparseShape(0.3)))
	add(mixApp("soplex", "SPEC06", moderateShape(0.2), []float64{0.6, 0.4},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				StridePattern([]int{8, 16, 64}, 4096, rg[0]),
				GatherPattern(32768, 2, rg[1]),
			}
		}))
	add(streamApp("milc", "SPEC06", next(), 4, 16, 1024, fpShape(0.35)))
	add(streamApp("leslie3d", "SPEC06", next(), 6, 8, 768, fpShape(0.3)))
	add(strideApp("GemsFDTD", "SPEC06", next(), []int{512, 2048}, fpSparseShape(0.3)))
	add(mixApp("bzip2", "SPEC06", moderateShape(0.3), []float64{0.5, 0.5},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				StreamPattern(2, 4, 256, rg[0]),
				ServerPattern(2048, 65536, 0.6, rg[1]),
			}
		}))
	add(mixApp("sphinx3", "SPEC06", lightShape(0.1), []float64{0.7, 0.3},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				StreamPattern(3, 8, 512, rg[0]),
				GatherPattern(16384, 1, rg[1]),
			}
		}))

	// --- SPEC17-style ---------------------------------------------------
	add(mixApp("gcc17", "SPEC17", branchyShape(0.25), []float64{0.5, 0.3, 0.2},
		take(3),
		func(rg []int) []memFunc {
			return []memFunc{
				StridePattern([]int{64, 8, 192}, 2048, rg[0]),
				ChasePattern(12288, rg[1]),
				StreamPattern(1, 8, 256, rg[2]),
			}
		}))
	{
		chasePart := chaseApp("mcf17.chase", "SPEC17", next(), 98304, heavyShape(0.2))
		streamPart := streamApp("mcf17.stream", "SPEC17", next(), 2, 8, 1024, heavyShape(0.2))
		add(phaseApp("mcf17", "SPEC17", chasePart, streamPart))
	}
	add(streamApp("lbm17", "SPEC17", next(), 8, 16, 512, heavyShape(0.5)))
	add(strideApp("cactuBSSN", "SPEC17", next(), []int{256, 768, 1536}, fpSparseShape(0.3)))
	add(chaseApp("xalancbmk", "SPEC17", next(), 24576, branchyShape(0.2)))
	add(serverApp("deepsjeng", "SPEC17", next(), 1024, 16384, 0.85, branchyShape(0.25)))
	add(serverApp("leela", "SPEC17", next(), 512, 8192, 0.9, branchyShape(0.2)))
	add(serverApp("exchange2", "SPEC17", next(), 256, 1024, 0.98, lightShape(0.3)))
	add(streamApp("wrf", "SPEC17", next(), 5, 8, 640, fpShape(0.3)))
	add(streamApp("fotonik3d", "SPEC17", next(), 6, 16, 2048, fpShape(0.25)))
	add(streamApp("roms", "SPEC17", next(), 4, 8, 1536, fpShape(0.3)))
	add(mixApp("xz", "SPEC17", moderateShape(0.35), []float64{0.4, 0.6},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				StreamPattern(2, 4, 384, rg[0]),
				ServerPattern(4096, 131072, 0.5, rg[1]),
			}
		}))
	add(serverApp("perlbench", "SPEC17", next(), 2048, 32768, 0.8, branchyShape(0.3)))
	add(strideApp("x264", "SPEC17", next(), []int{16, 64, 320}, moderateShape(0.3)))
	add(chaseApp("omnetpp17", "SPEC17", next(), 20480, moderateShape(0.3)))
	add(streamApp("bwaves", "SPEC17", next(), 8, 8, 2048, fpShape(0.2)))
	add(streamApp("pop2", "SPEC17", next(), 4, 8, 512, fpShape(0.3)))
	add(strideApp("cam4", "SPEC17", next(), []int{128, 384}, fpSparseShape(0.3)))
	add(strideApp("imagick", "SPEC17", next(), []int{4, 8, 16}, lightShape(0.2)))
	add(mixApp("nab", "SPEC17", fpShape(0.2), []float64{0.6, 0.4},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				ChasePattern(4096, rg[0]),
				StreamPattern(2, 8, 256, rg[1]),
			}
		}))
	add(mixApp("blender", "SPEC17", moderateShape(0.25), []float64{0.4, 0.3, 0.3},
		take(3),
		func(rg []int) []memFunc {
			return []memFunc{
				StreamPattern(3, 8, 256, rg[0]),
				StridePattern([]int{128, 512}, 2048, rg[1]),
				GatherPattern(24576, 1, rg[2]),
			}
		}))
	add(strideApp("parest", "SPEC17", next(), []int{8, 24, 96}, fpShape(0.25)))

	// --- PARSEC-style ---------------------------------------------------
	add(chaseApp("canneal", "PARSEC", next(), 131072, moderateShape(0.2)))
	add(streamApp("streamcluster", "PARSEC", next(), 2, 4, 8192, heavyShape(0.1)))
	add(strideApp("facesim", "PARSEC", next(), []int{64, 192, 448}, fpSparseShape(0.35)))
	add(gatherApp("fluidanimate", "PARSEC", next(), 65536, 2, fpShape(0.35)))

	// --- Ligra-style ----------------------------------------------------
	add(gatherApp("ligra-bfs", "Ligra", next(), 262144, 3, heavyShape(0.1)))
	add(mixApp("ligra-pagerank", "Ligra", heavyShape(0.3), []float64{0.4, 0.6},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				StreamPattern(2, 8, 4096, rg[0]),
				GatherPattern(196608, 2, rg[1]),
			}
		}))
	add(gatherApp("ligra-components", "Ligra", next(), 229376, 2, heavyShape(0.25)))
	add(mixApp("ligra-bc", "Ligra", heavyShape(0.2), []float64{0.3, 0.7},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				StreamPattern(1, 8, 2048, rg[0]),
				GatherPattern(131072, 3, rg[1]),
			}
		}))

	// --- CloudSuite-style -----------------------------------------------
	add(serverApp("cassandra", "CloudSuite", next(), 8192, 1<<20, 0.6, serverShape(0.3)))
	add(serverApp("classification", "CloudSuite", next(), 4096, 1<<19, 0.5, serverShape(0.2)))
	add(serverApp("cloud9", "CloudSuite", next(), 16384, 1<<20, 0.7, serverShape(0.3)))
	add(mixApp("nutch", "CloudSuite", serverShape(0.25), []float64{0.6, 0.4},
		take(2),
		func(rg []int) []memFunc {
			return []memFunc{
				ServerPattern(8192, 1<<19, 0.55, rg[0]),
				ChasePattern(49152, rg[1]),
			}
		}))

	return apps
}

// BySuite returns the catalog apps belonging to suite.
func BySuite(suite string) []App {
	var out []App
	for _, a := range Catalog() {
		if a.Suite == suite {
			out = append(out, a)
		}
	}
	return out
}

// ByName returns the named catalog app.
func ByName(name string) (App, error) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("trace: unknown app %q", name)
}

// TuneSet returns the SPEC-style apps, mirroring the paper's choice of a
// SPEC-only tune set so adaptability is tested on unseen suites (§6.3).
func TuneSet() []App {
	var out []App
	for _, a := range Catalog() {
		if a.Suite == "SPEC06" || a.Suite == "SPEC17" {
			out = append(out, a)
		}
	}
	return out
}
