package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReaderRobustness feeds arbitrary bytes to the trace reader: it must
// either reject the input with an error or decode records, but never
// panic or loop forever.
func FuzzReaderRobustness(f *testing.F) {
	// Seed corpus: a valid small trace, a truncated one, and garbage.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "seed")
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		inst := Inst{PC: uint64(i * 4), Kind: KindLoad, Addr: uint64(i * 64)}
		if err := w.Write(&inst); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("MBTR"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		var inst Inst
		for n := 0; n < 1_000_000; n++ {
			if err := r.Read(&inst); err != nil {
				if !errors.Is(err, io.EOF) && err.Error() == "" {
					t.Fatal("empty error")
				}
				return
			}
			if inst.Kind >= numKinds {
				t.Fatalf("decoded invalid kind %d", inst.Kind)
			}
		}
		t.Fatal("reader failed to terminate on bounded input")
	})
}

// FuzzCodecRoundTrip encodes fuzz-derived instruction streams and checks
// bit-exact decoding.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(64), uint8(2), uint8(16))
	f.Fuzz(func(t *testing.T, pcBase, addrBase uint64, kindSeed, count uint8) {
		n := int(count)%64 + 1
		in := make([]Inst, n)
		for i := range in {
			kind := Kind((kindSeed + uint8(i)) % uint8(numKinds))
			in[i] = Inst{PC: pcBase + uint64(i)*4, Kind: kind}
			if kind == KindLoad || kind == KindStore {
				in[i].Addr = addrBase + uint64(i)*64
			}
			if kind == KindBranch {
				in[i].Mispredict = i%3 == 0
			}
			if kind == KindLoad {
				in[i].DependsOnPrev = i%2 == 0
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if err := w.Write(&in[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(in) {
			t.Fatalf("decoded %d of %d", len(out), len(in))
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("record %d: %+v != %+v", i, in[i], out[i])
			}
		}
	})
}
