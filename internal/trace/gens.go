package trace

import (
	"microbandit/internal/xrand"
)

// Shape controls the instruction mix wrapped around a memory-access
// pattern: how many non-memory instructions separate memory operations,
// and what those filler instructions look like.
type Shape struct {
	// ALUPerMem is the number of non-memory instructions between
	// consecutive memory operations (memory intensity knob).
	ALUPerMem int
	// FPFrac is the fraction of filler instructions that are
	// long-latency FP ops.
	FPFrac float64
	// BranchFrac is the fraction of filler instructions that are
	// branches.
	BranchFrac float64
	// MispredictProb is the probability a branch is mispredicted.
	MispredictProb float64
	// StoreFrac is the fraction of memory operations that are stores.
	StoreFrac float64
	// CodeFootprint is the number of distinct filler PCs (instruction
	// working set; large values model front-end-heavy server code).
	CodeFootprint int
}

// memFunc fills the PC / Addr / DependsOnPrev fields of a memory
// instruction; the surrounding machinery decides load vs store.
type memFunc func(rng *xrand.Rand, i *Inst)

// gen wraps a memory-access pattern in a Shape-defined instruction mix.
type gen struct {
	name       string
	rng        *xrand.Rand
	shape      Shape
	mem        memFunc
	fillerLeft int
	fillerIdx  int

	// scratch is the decode target handed to mem during chunk fills;
	// keeping it in the struct stops the pointer escaping through the
	// memFunc call (one heap allocation per memory op otherwise).
	scratch Inst
}

// newGen builds a generator around the given memory pattern.
func newGen(name string, seed uint64, shape Shape, mem memFunc) *gen {
	if shape.CodeFootprint < 1 {
		shape.CodeFootprint = 64
	}
	return &gen{name: name, rng: xrand.New(seed), shape: shape, mem: mem}
}

// Name implements Generator.
func (g *gen) Name() string { return g.name }

// fillerPCBase is where synthetic code addresses start.
const fillerPCBase = 0x400000

// Next implements Generator.
func (g *gen) Next(i *Inst) {
	*i = Inst{}
	if g.fillerLeft > 0 {
		g.fillerLeft--
		i.PC = fillerPCBase + uint64(g.fillerIdx)*4
		// fillerIdx stays below CodeFootprint, so a compare-and-reset
		// wrap replaces the integer division of a modulo here — this
		// runs once per generated instruction.
		g.fillerIdx++
		if g.fillerIdx == g.shape.CodeFootprint {
			g.fillerIdx = 0
		}
		switch {
		case g.rng.Bool(g.shape.BranchFrac):
			i.Kind = KindBranch
			i.Mispredict = g.rng.Bool(g.shape.MispredictProb)
		case g.rng.Bool(g.shape.FPFrac):
			i.Kind = KindFP
		default:
			i.Kind = KindALU
		}
		return
	}
	g.fillerLeft = g.shape.ALUPerMem
	g.mem(g.rng, i)
	if g.rng.Bool(g.shape.StoreFrac) {
		i.Kind = KindStore
		i.DependsOnPrev = false
	} else {
		i.Kind = KindLoad
	}
}

// regionStride spaces the synthetic data regions far apart so patterns
// never alias.
const regionStride = 1 << 40

// dataBase returns the base address of data region idx.
func dataBase(idx int) uint64 { return 0x10_0000_0000 + uint64(idx)*regionStride }

// StreamPattern models sequential streaming over several concurrent
// regions: the pattern next-line and stream prefetchers love. Each access
// advances within a line by elemBytes, crossing into the next line every
// LineSize/elemBytes accesses; after streamLines lines, the stream jumps
// to a fresh region offset (stream re-detection work for the prefetcher).
func StreamPattern(nStreams, elemBytes, streamLines int, region int) memFunc {
	if elemBytes <= 0 {
		elemBytes = 8
	}
	type stream struct {
		pc   uint64
		pos  uint64
		base uint64
		next uint64 // next fresh chunk offset
	}
	streams := make([]stream, nStreams)
	for s := range streams {
		streams[s] = stream{
			pc:   fillerPCBase + 0x10000 + uint64(s)*4,
			base: dataBase(region) + uint64(s)*(regionStride/64),
		}
	}
	span := uint64(streamLines * LineSize)
	return func(rng *xrand.Rand, i *Inst) {
		s := &streams[rng.Intn(nStreams)]
		i.PC = s.pc
		i.Addr = s.base + s.next + s.pos
		s.pos += uint64(elemBytes)
		if s.pos >= span {
			s.pos = 0
			s.next += span + 16*LineSize // gap breaks naive next-line
		}
	}
}

// StridePattern models per-PC constant-stride access (the classic
// IP-stride target). Each of nPCs walks its own region with its own
// stride in bytes; strides larger than a line defeat next-line prefetching
// but are trivial for a stride prefetcher that has learned the PC.
func StridePattern(strides []int, lapLines int, region int) memFunc {
	type walker struct {
		pc     uint64
		pos    uint64
		stride uint64
		base   uint64
	}
	walkers := make([]walker, len(strides))
	for w := range walkers {
		walkers[w] = walker{
			pc:     fillerPCBase + 0x20000 + uint64(w)*4,
			stride: uint64(strides[w]),
			base:   dataBase(region) + uint64(w)*(regionStride/64),
		}
	}
	span := uint64(lapLines * LineSize)
	return func(rng *xrand.Rand, i *Inst) {
		w := &walkers[rng.Intn(len(walkers))]
		i.PC = w.pc
		i.Addr = w.base + w.pos
		w.pos += w.stride
		if w.pos >= span {
			w.pos = 0
			w.base += span + 64*LineSize
		}
	}
}

// ChasePattern models pointer chasing over a random ring permutation of
// wsLines cache lines: every access is a dependent load to an effectively
// random line. Spatial prefetchers gain almost nothing; aggressive
// prefetching only burns bandwidth.
func ChasePattern(wsLines int, region int) memFunc {
	perm := ringPermutation(wsLines, uint64(region)*977+13)
	cur := int32(0)
	base := dataBase(region)
	pc := uint64(fillerPCBase + 0x30000)
	return func(rng *xrand.Rand, i *Inst) {
		cur = perm[cur]
		i.PC = pc
		i.Addr = base + uint64(cur)*LineSize
		i.DependsOnPrev = true
	}
}

// ringPermutation returns a permutation of [0,n) forming a single cycle
// (Sattolo's algorithm), so a pointer chase visits every line. The
// successor array is int32: the chase's random walk over it has no
// locality, so halving its footprint halves the host cache pressure of
// generating the trace (line indices are nowhere near 2^31).
func ringPermutation(n int, seed uint64) []int32 {
	rng := xrand.New(seed)
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		items[i], items[j] = items[j], items[i]
	}
	// items is now a cyclic order; build successor mapping.
	next := make([]int32, n)
	for i := 0; i < n-1; i++ {
		next[items[i]] = items[i+1]
	}
	next[items[n-1]] = items[0]
	return next
}

// GatherPattern models index-driven gathers (Ligra-style graph kernels):
// a sequential index stream interleaved with random accesses over a large
// vertex array. The index stream is prefetchable; the gathers are not.
func GatherPattern(wsLines int, gathersPerIndex int, region int) memFunc {
	idxPos := uint64(0)
	idxBase := dataBase(region)
	dataBase := dataBase(region) + regionStride/2
	pending := 0
	pcIdx := uint64(fillerPCBase + 0x40000)
	pcGather := uint64(fillerPCBase + 0x40004)
	return func(rng *xrand.Rand, i *Inst) {
		if pending == 0 {
			i.PC = pcIdx
			i.Addr = idxBase + idxPos
			idxPos += 8
			pending = gathersPerIndex
			return
		}
		pending--
		i.PC = pcGather
		i.Addr = dataBase + uint64(rng.Intn(wsLines))*LineSize
	}
}

// ServerPattern models scale-out server behaviour (CloudSuite): a hot set
// of lines with high reuse plus a vast cold footprint, accessed with
// little spatial structure, under a large code footprint (set via Shape).
func ServerPattern(hotLines, coldLines int, hotProb float64, region int) memFunc {
	hotBase := dataBase(region)
	coldBase := dataBase(region) + regionStride/2
	pcHot := uint64(fillerPCBase + 0x50000)
	pcCold := uint64(fillerPCBase + 0x50004)
	return func(rng *xrand.Rand, i *Inst) {
		if rng.Bool(hotProb) {
			i.PC = pcHot
			i.Addr = hotBase + uint64(rng.Intn(hotLines))*LineSize
		} else {
			i.PC = pcCold
			i.Addr = coldBase + uint64(rng.Intn(coldLines))*LineSize
		}
	}
}

// MixPattern selects among component patterns with the given weights on
// each memory operation, modelling applications with several concurrent
// access idioms.
func MixPattern(weights []float64, parts ...memFunc) memFunc {
	if len(weights) != len(parts) {
		panic("trace: MixPattern weights/parts mismatch")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return func(rng *xrand.Rand, i *Inst) {
		x := rng.Float64() * total
		for k, w := range weights {
			if x < w || k == len(parts)-1 {
				parts[k](rng, i)
				return
			}
			x -= w
		}
	}
}

// PhaseGen alternates between whole sub-generators every phaseLen
// instructions, modelling coarse program phases (the mcf behaviour in
// Fig. 7). Sub-generator state persists across phases.
type PhaseGen struct {
	name     string
	parts    []Generator
	fillers  []chunkFiller
	phaseLen int
	pos      int
	cur      int
}

// NewPhaseGen builds a phase-switching generator. phaseLen must be
// positive and at least one part is required.
func NewPhaseGen(name string, phaseLen int, parts ...Generator) *PhaseGen {
	if len(parts) == 0 {
		panic("trace: PhaseGen needs at least one part")
	}
	if phaseLen < 1 {
		panic("trace: PhaseGen needs a positive phase length")
	}
	fillers := make([]chunkFiller, len(parts))
	for i, p := range parts {
		fillers[i] = fillerOf(p)
	}
	return &PhaseGen{name: name, parts: parts, fillers: fillers, phaseLen: phaseLen}
}

// Name implements Generator.
func (p *PhaseGen) Name() string { return p.name }

// Next implements Generator.
func (p *PhaseGen) Next(i *Inst) {
	p.parts[p.cur].Next(i)
	p.pos++
	if p.pos == p.phaseLen {
		p.pos = 0
		p.cur = (p.cur + 1) % len(p.parts)
	}
}

// Phase returns the index of the currently active sub-generator.
func (p *PhaseGen) Phase() int { return p.cur }

// PhaseAt implements PhaseAtter: the phase governing instruction n, as a
// pure function of the stream position. Under chunked execution the
// mutable phase state (Phase) runs up to a chunk ahead of the
// simulation, so phase probes use this instead.
func (p *PhaseGen) PhaseAt(n int64) int {
	return int((n / int64(p.phaseLen)) % int64(len(p.parts)))
}
