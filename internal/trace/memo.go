package trace

import (
	"sync"
	"sync/atomic"
)

// Memoized chunk cache. Experiment sweeps run many agent configurations
// over the same (generator, seed) trace and regenerate it every time;
// trace generation is ~a quarter of simulator CPU. A ChunkCache stores
// generator output at chunk granularity so every run over the same key
// after the first replays slabs with a memcpy instead of regenerating.
//
// Entries are append-only chunk sequences, so the cache is valid only
// for deterministic generators whose stream is a pure function of the
// key — true of every catalog app (name+seed+shape) and of .mbt replay.
// Concurrent runs over the same key race benignly: both generate the
// same bytes, whichever stores first wins, and readers never see a
// partially written chunk (slabs are published under the entry lock,
// complete). The cache is bounded by a global byte budget; once
// exceeded, sources fall back to live generation (correctness never
// depends on residency).

// CacheStatser exposes memoization effectiveness counters. The
// cache-backed source implements it per run; consumers (the core model,
// telemetry) probe it optionally.
type CacheStatser interface {
	// CacheStats returns the source's chunk-level hit and miss counts.
	CacheStats() (hits, misses int64)
}

// DefaultChunkCacheBytes is the default cache budget. A 2M-instruction
// run is ~2000 chunk slabs ≈ 40 MiB; 256 MiB holds several full-preset
// traces while staying far from experiment-scale memory pressure.
const DefaultChunkCacheBytes = 256 << 20

// ChunkCache memoizes generator output across runs, keyed by a
// caller-chosen identity string (generator name + seed by convention —
// everything the stream is a function of). Safe for concurrent use.
type ChunkCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	budget  int64
	used    int64

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry is one key's append-only chunk sequence.
type cacheEntry struct {
	mu     sync.Mutex
	chunks []*Chunk
}

// NewChunkCache builds a cache bounded by budgetBytes (≤0 selects
// DefaultChunkCacheBytes).
func NewChunkCache(budgetBytes int64) *ChunkCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultChunkCacheBytes
	}
	return &ChunkCache{entries: map[string]*cacheEntry{}, budget: budgetBytes}
}

// Stats returns the cache's cumulative chunk-level hit and miss counts
// across all sources.
func (cc *ChunkCache) Stats() (hits, misses int64) {
	return cc.hits.Load(), cc.misses.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any traffic.
func (cc *ChunkCache) HitRate() float64 {
	h, m := cc.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// BytesUsed returns the resident slab footprint.
func (cc *ChunkCache) BytesUsed() int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.used
}

// entry returns (creating if needed) the key's entry.
func (cc *ChunkCache) entry(key string) *cacheEntry {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	e := cc.entries[key]
	if e == nil {
		e = &cacheEntry{}
		cc.entries[key] = e
	}
	return e
}

// reserve claims n bytes of budget, reporting whether they fit.
func (cc *ChunkCache) reserve(n int64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.used+n > cc.budget {
		return false
	}
	cc.used += n
	return true
}

// release returns n reserved bytes.
func (cc *ChunkCache) release(n int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.used -= n
}

// Source wraps g in a memoizing ChunkSource for the given key. The
// returned generator serves chunks from the cache when they are
// resident and falls back to g (catching it up through discarded
// chunks first) when they are not. It remains a scalar Generator and
// forwards PhaseAt, so it is a drop-in replacement at every core
// construction site; like any Generator it is single-run state and must
// not be shared across goroutines (the cache itself is shared freely).
//
// The key must capture everything g's stream depends on — by convention
// "name:seed" — or runs with different traces would replay each other's.
func (cc *ChunkCache) Source(key string, g Generator) Generator {
	return &cachedSource{cc: cc, e: cc.entry(key), gen: g, src: SourceOf(g)}
}

// cachedSource is one run's view of a cache entry.
type cachedSource struct {
	cc  *ChunkCache
	e   *cacheEntry
	gen Generator
	src ChunkSource

	idx   int // next chunk index to serve
	srcAt int // chunks the live source has produced

	hits, misses int64

	// scratch is the catch-up slab: chunks the live source must
	// regenerate to reach a miss position after a run of hits.
	scratch *Chunk

	// replay adapts the chunked stream back to scalar Next calls.
	replay    Chunk
	replayPos int
}

// Name implements Generator and ChunkSource.
func (s *cachedSource) Name() string { return s.gen.Name() }

// CacheStats implements CacheStatser with this run's counters.
func (s *cachedSource) CacheStats() (hits, misses int64) { return s.hits, s.misses }

// PhaseAt implements PhaseAtter by delegation, so phase-structured
// traces keep their context signatures through the cache (and
// non-phase traces keep reporting phase 0).
func (s *cachedSource) PhaseAt(n int64) int {
	if pa, ok := s.gen.(PhaseAtter); ok {
		return pa.PhaseAt(n)
	}
	return 0
}

// NextChunk implements ChunkSource.
func (s *cachedSource) NextChunk(c *Chunk) {
	e := s.e
	e.mu.Lock()
	if s.idx < len(e.chunks) && e.chunks[s.idx].Len() == c.Len() {
		stored := e.chunks[s.idx]
		e.mu.Unlock()
		c.CopyFrom(stored)
		s.idx++
		s.hits++
		s.cc.hits.Add(1)
		return
	}
	e.mu.Unlock()
	s.misses++
	s.cc.misses.Add(1)

	// Catch the live source up through any chunks this run served from
	// the cache (or, after a size change, regenerate from the start).
	if s.srcAt > s.idx {
		panic("trace: chunk cache served mixed chunk sizes")
	}
	for s.srcAt < s.idx {
		if s.scratch == nil {
			s.scratch = &Chunk{}
		}
		s.scratch.Reset(c.Len())
		s.src.NextChunk(s.scratch)
		s.srcAt++
	}
	s.src.NextChunk(c)
	s.srcAt++
	s.idx++
	s.store(c)
}

// store publishes a freshly generated chunk if it extends the entry
// contiguously and the budget allows; otherwise the chunk is simply not
// cached (a concurrent run may already have stored identical bytes).
func (s *cachedSource) store(c *Chunk) {
	e := s.e
	e.mu.Lock()
	if len(e.chunks) != s.idx-1 {
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	// Reserve outside the entry lock; a failed reservation means the
	// cache is full and the run continues uncached.
	stored := &Chunk{}
	stored.CopyFrom(c)
	n := stored.Bytes()
	if !s.cc.reserve(n) {
		return
	}
	e.mu.Lock()
	if len(e.chunks) == s.idx-1 {
		e.chunks = append(e.chunks, stored)
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	s.cc.release(n)
}

// Next implements Generator by replaying the chunked stream one
// instruction at a time, for scalar consumers (tools, tests). Chunked
// and scalar reads must not be mixed on one source.
func (s *cachedSource) Next(i *Inst) {
	if s.replayPos == s.replay.Len() {
		s.replay.Reset(ChunkLen)
		s.NextChunk(&s.replay)
		s.replayPos = 0
	}
	s.replay.Get(s.replayPos, i)
	s.replayPos++
}
