package trace

import (
	"fmt"
	"testing"
)

// collectChunked drains n instructions from src through chunks of the
// given size, decoding back to scalar form.
func collectChunked(src ChunkSource, n, chunkSize int) []Inst {
	out := make([]Inst, 0, n)
	var c Chunk
	for len(out) < n {
		size := chunkSize
		if size > n-len(out) {
			size = n - len(out)
		}
		c.Reset(size)
		src.NextChunk(&c)
		var inst Inst
		for i := 0; i < size; i++ {
			c.Get(i, &inst)
			out = append(out, inst)
		}
	}
	return out
}

// diffStreams reports the first divergence between two instruction
// streams, or -1 when equal.
func diffStreams(a, b []Inst) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// checkChunkEquivalence asserts the chunked stream of mk() matches the
// scalar stream of an identically-constructed generator, for several
// chunk sizes including the degenerate and off-by-one ones.
func checkChunkEquivalence(t *testing.T, name string, n int, mk func() Generator) {
	t.Helper()
	want := CollectN(mk(), n)
	for _, size := range []int{1, 7, ChunkLen - 1, ChunkLen, n - 1, n} {
		if size <= 0 || size > n {
			continue
		}
		got := collectChunked(SourceOf(mk()), n, size)
		if i := diffStreams(want, got); i >= 0 {
			t.Fatalf("%s: chunk size %d diverges at instruction %d:\nscalar  %+v\nchunked %+v",
				name, size, i, want[i], got[i])
		}
	}
}

// TestChunkEquivalenceCatalog runs the differential harness over every
// registered catalog app: the chunked stream must be bit-identical to
// the scalar one at every chunk size.
func TestChunkEquivalenceCatalog(t *testing.T) {
	const n = 3*ChunkLen + 257
	for _, app := range Catalog() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			checkChunkEquivalence(t, app.Name, n, func() Generator { return app.New(9) })
		})
	}
}

// TestChunkEquivalencePhaseFlip pins mid-chunk phase boundaries: a
// PhaseGen whose phase length is far from any chunk-size multiple must
// switch parts at exactly the same instruction through both paths.
func TestChunkEquivalencePhaseFlip(t *testing.T) {
	mk := func() Generator {
		a := newGen("a", 3, Shape{ALUPerMem: 3, BranchFrac: 0.2, MispredictProb: 0.1, StoreFrac: 0.3},
			StreamPattern(2, 8, 16, 0))
		b := newGen("b", 4, Shape{ALUPerMem: 1, FPFrac: 0.5},
			ChasePattern(512, 1))
		return NewPhaseGen("flip", 151, a, b)
	}
	checkChunkEquivalence(t, "phase-flip", 4*ChunkLen, mk)

	// A phase length of 1 is the hardest boundary case: every
	// instruction comes from a different part.
	mk1 := func() Generator {
		a := newGen("a", 3, Shape{ALUPerMem: 2}, StreamPattern(1, 8, 16, 0))
		b := newGen("b", 4, Shape{ALUPerMem: 2}, StridePattern([]int{128}, 32, 1))
		return NewPhaseGen("flip1", 1, a, b)
	}
	checkChunkEquivalence(t, "phase-flip-1", 2048, mk1)
}

// TestChunkEquivalenceReplay covers the .mbt replay path: a Loop over a
// recorded slice must chunk identically to its scalar replay, including
// across the wrap-around.
func TestChunkEquivalenceReplay(t *testing.T) {
	app, err := ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}
	recorded := CollectN(app.New(5), 1000)
	checkChunkEquivalence(t, "replay", 3500, func() Generator {
		return NewLoop("replay", recorded)
	})
}

// TestChunkPhaseAt pins PhaseAt against the mutable Phase state: probing
// Phase after n scalar Next calls must equal PhaseAt(n).
func TestChunkPhaseAt(t *testing.T) {
	a := newGen("a", 3, Shape{ALUPerMem: 2}, StreamPattern(1, 8, 16, 0))
	b := newGen("b", 4, Shape{ALUPerMem: 2}, StridePattern([]int{64}, 32, 1))
	c := newGen("c", 5, Shape{ALUPerMem: 2}, ChasePattern(64, 2))
	p := NewPhaseGen("tri", 37, a, b, c)
	var inst Inst
	for n := int64(0); n < 500; n++ {
		if got, want := p.PhaseAt(n), p.Phase(); got != want {
			t.Fatalf("PhaseAt(%d) = %d, Phase() after %d calls = %d", n, got, n, want)
		}
		p.Next(&inst)
	}
}

// TestChunkSlabZeroAlloc pins the slab-reuse contract: once a chunk has
// been sized, refilling it allocates nothing.
func TestChunkSlabZeroAlloc(t *testing.T) {
	app, err := ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}
	src := SourceOf(app.New(1))
	var c Chunk
	c.Reset(ChunkLen)
	src.NextChunk(&c) // warm: Mem reaches its steady-state capacity
	allocs := testing.AllocsPerRun(20, func() {
		c.Reset(ChunkLen)
		src.NextChunk(&c)
	})
	if allocs != 0 {
		t.Fatalf("chunk refill allocates %.1f per run, want 0", allocs)
	}
}

// FuzzChunkEquivalence drives the differential harness with fuzzed app
// choice, seed, stream length, and chunk size, so odd alignments between
// chunk boundaries, phase boundaries, and filler runs get explored
// beyond the fixed seed cases.
func FuzzChunkEquivalence(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint16(2000), uint16(1))
	f.Add(uint8(3), uint64(7), uint16(5000), uint16(7))
	f.Add(uint8(10), uint64(42), uint16(9000), uint16(ChunkLen-1))
	f.Add(uint8(200), uint64(9), uint16(3000), uint16(513))
	f.Fuzz(func(t *testing.T, appIdx uint8, seed uint64, n uint16, chunkSize uint16) {
		apps := Catalog()
		app := apps[int(appIdx)%len(apps)]
		insts := int(n)%10000 + 1
		size := int(chunkSize)%ChunkLen + 1
		want := CollectN(app.New(seed), insts)
		got := collectChunked(SourceOf(app.New(seed)), insts, size)
		if i := diffStreams(want, got); i >= 0 {
			t.Fatalf("%s seed %d: chunk size %d diverges at %d: scalar %+v chunked %+v",
				app.Name, seed, size, i, want[i], got[i])
		}
	})
}

// TestChunkSetGetRoundTrip pins the slab codec: Set then Get must be the
// identity for every kind/flag combination.
func TestChunkSetGetRoundTrip(t *testing.T) {
	insts := []Inst{
		{PC: 1, Kind: KindALU},
		{PC: 2, Kind: KindFP},
		{PC: 3, Kind: KindBranch, Mispredict: true},
		{PC: 4, Addr: 0x1000, Kind: KindLoad, DependsOnPrev: true},
		{PC: 5, Addr: 0x2000, Kind: KindStore},
	}
	var c Chunk
	c.Reset(len(insts))
	for i := range insts {
		c.Set(i, &insts[i])
	}
	var got Inst
	for i := range insts {
		c.Get(i, &got)
		if got != insts[i] {
			t.Fatalf("index %d: got %+v want %+v", i, got, insts[i])
		}
	}
	if fmt.Sprint(c.Mem) != "[3 4]" {
		t.Fatalf("Mem = %v, want [3 4]", c.Mem)
	}
}
