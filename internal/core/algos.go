package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the CLI-facing algorithm registry: one place that maps the
// flag names the tools accept ("-algo ducb", "-algo static:3") to
// configured controllers, so every command validates against the same
// list and prints the same valid names on a bad flag.

// AlgoNames returns the algorithm names ParseAlgo accepts, in display
// order. "static:N" stands for any fixed arm index.
func AlgoNames() []string {
	return []string{"ducb", "ucb", "eps", "single", "periodic", "static:N"}
}

// ParseAlgo builds a controller for the named bandit algorithm over the
// given arm count, using the paper's prefetching hyperparameters
// (Table 6: c = PrefetchC, gamma = PrefetchGamma). "static:N" returns
// FixedArm(N). recordTrace enables per-step arm recording on the agent
// algorithms (FixedArm has no trace). Unknown names and out-of-range
// static arms return an error listing the valid names.
func ParseAlgo(name string, arms int, seed uint64, recordTrace bool) (Controller, error) {
	var policy Policy
	switch {
	case name == "ducb":
		policy = NewDUCB(PrefetchC, PrefetchGamma)
	case name == "ucb":
		policy = NewUCB(PrefetchC)
	case name == "eps":
		policy = NewEpsilonGreedy(0.05)
	case name == "single":
		policy = NewSingle()
	case name == "periodic":
		policy = NewPeriodic(8, 4)
	case strings.HasPrefix(name, "static:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil || n < 0 || n >= arms {
			return nil, fmt.Errorf("bad static arm in %q (have %d arms)", name, arms)
		}
		return FixedArm(n), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (valid: %s)",
			name, strings.Join(AlgoNames(), ", "))
	}
	return MustNew(Config{
		Arms: arms, Policy: policy, Normalize: true,
		Seed: seed, RecordTrace: recordTrace,
	}), nil
}
