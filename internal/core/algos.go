package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the CLI-facing algorithm registry: one place that maps the
// flag names the tools accept ("-algo ducb", "-algo static:3") to
// configured controllers, so every command validates against the same
// list and prints the same valid names on a bad flag.

// AlgoNames returns the algorithm names ParseAlgo accepts, in display
// order. "static:N" stands for any fixed arm index.
func AlgoNames() []string {
	return []string{"ducb", "ucb", "eps", "thompson", "single", "periodic",
		"ctx-ducb", "linucb", "ctx-thompson", "static:N"}
}

// contextualBases maps a contextual algorithm name to the per-context
// base algorithm it runs over each signature's Tables. "linucb" maps to
// "ucb" because disjoint LinUCB over one-hot context features reduces
// exactly to per-context UCB (see contextual.go).
var contextualBases = map[string]string{
	"ctx-ducb":     "ducb",
	"linucb":       "ucb",
	"ctx-thompson": "thompson",
}

// ContextualBase returns the per-context base algorithm for a contextual
// algorithm name, and whether name denotes one.
func ContextualBase(name string) (string, bool) {
	base, ok := contextualBases[name]
	return base, ok
}

// AlgoConfig maps an agent algorithm name to the Config ParseAlgo wraps
// it in, using the paper's prefetching hyperparameters (Table 6:
// c = PrefetchC, gamma = PrefetchGamma). It exists so callers that place
// agents themselves — the serve layer allocates into per-shard slabs —
// share one registry with ParseAlgo. Names that denote a non-agent
// controller ("static:N") and unknown names return an error.
func AlgoConfig(name string, arms int, seed uint64, recordTrace bool) (Config, error) {
	var policy Policy
	switch name {
	case "ducb":
		policy = NewDUCB(PrefetchC, PrefetchGamma)
	case "ucb":
		policy = NewUCB(PrefetchC)
	case "eps":
		policy = NewEpsilonGreedy(0.05)
	case "thompson":
		// Discounted like DUCB, with the exploration constant standing in
		// for the posterior noise scale, so the two are comparable under
		// the same non-stationarity.
		policy = NewDiscountedThompson(PrefetchC, PrefetchGamma)
	case "single":
		policy = NewSingle()
	case "periodic":
		policy = NewPeriodic(8, 4)
	default:
		if _, ok := ContextualBase(name); ok {
			return Config{}, fmt.Errorf("algorithm %q is contextual; build it with NewContextualAgent or ParseAlgo", name)
		}
		return Config{}, fmt.Errorf("unknown algorithm %q (valid: %s)",
			name, strings.Join(AlgoNames(), ", "))
	}
	return Config{
		Arms: arms, Policy: policy, Normalize: true,
		Seed: seed, RecordTrace: recordTrace,
	}, nil
}

// AlgoPolicySnapshot returns the snapshot form of the policy AlgoConfig
// builds for name. Callers that store many same-algorithm agents in
// column form (the serve layer's slab checkpoints) persist only the
// algorithm name and rebuild the policy snapshot through this one
// registry, so a name always means the same hyperparameters on both
// sides of a save/load cycle.
func AlgoPolicySnapshot(name string) (PolicySnapshot, error) {
	cfg, err := AlgoConfig(name, 1, 1, false)
	if err != nil {
		return PolicySnapshot{}, err
	}
	return snapshotPolicy(cfg.Policy)
}

// ParseAlgo builds a controller for the named bandit algorithm over the
// given arm count, using the paper's prefetching hyperparameters
// (Table 6: c = PrefetchC, gamma = PrefetchGamma). "static:N" returns
// FixedArm(N). recordTrace enables per-step arm recording on the agent
// algorithms (FixedArm has no trace). Unknown names and out-of-range
// static arms return an error listing the valid names.
func ParseAlgo(name string, arms int, seed uint64, recordTrace bool) (Controller, error) {
	if strings.HasPrefix(name, "static:") {
		n, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil || n < 0 || n >= arms {
			return nil, fmt.Errorf("bad static arm in %q (have %d arms)", name, arms)
		}
		return FixedArm(n), nil
	}
	if base, ok := ContextualBase(name); ok {
		return NewContextualAgent(ContextualConfig{
			Arms: arms, Algo: base, Seed: seed, RecordTrace: recordTrace,
		})
	}
	cfg, err := AlgoConfig(name, arms, seed, recordTrace)
	if err != nil {
		return nil, err
	}
	a, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return a, nil
}
