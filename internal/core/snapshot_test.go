package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"microbandit/internal/xrand"
)

// snapshotPolicies returns one fresh instance of every snapshotable
// policy, keyed by a display name.
func snapshotPolicies() map[string]func() Policy {
	return map[string]func() Policy{
		"eps":        func() Policy { return NewEpsilonGreedy(0.1) },
		"ucb":        func() Policy { return NewUCB(0.04) },
		"ducb":       func() Policy { return NewDUCB(PrefetchC, PrefetchGamma) },
		"static":     func() Policy { return NewStatic(2) },
		"single":     func() Policy { return NewSingle() },
		"periodic":   func() Policy { return NewPeriodic(5, 3) },
		"thompson":   func() Policy { return NewThompson(0.3) },
		"d-thompson": func() Policy { return NewDiscountedThompson(0.3, 0.98) },
	}
}

// stepReward is the deterministic reward stream used by the snapshot
// tests: a fixed per-arm mean plus a step-dependent wobble.
func stepReward(arm, step int) float64 {
	return 0.5 + 0.1*float64(arm%3) + 0.01*float64(step%7)
}

// drive runs n Step/Reward pairs and returns the chosen arms.
func drive(c Controller, startStep, n int) []int {
	arms := make([]int, n)
	for i := 0; i < n; i++ {
		a := c.Step()
		arms[i] = a
		c.Reward(stepReward(a, startStep+i))
	}
	return arms
}

func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	for name, mk := range snapshotPolicies() {
		t.Run(name, func(t *testing.T) {
			a := MustNew(Config{
				Arms: 5, Policy: mk(), Normalize: true,
				RRRestartProb: 0.05, Seed: 42, RecordTrace: true,
			})
			drive(a, 0, 40)
			// Snapshot mid-step too: the open step must survive.
			a.Step()

			s1, err := a.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			b1, err := json.Marshal(s1)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			restored, err := RestoreAgentJSON(b1)
			if err != nil {
				t.Fatalf("RestoreAgentJSON: %v", err)
			}
			s2, err := restored.Snapshot()
			if err != nil {
				t.Fatalf("re-Snapshot: %v", err)
			}
			b2, err := json.Marshal(s2)
			if err != nil {
				t.Fatalf("re-Marshal: %v", err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("snapshot not byte-identical after restore:\n  %s\nvs\n  %s", b1, b2)
			}
		})
	}
}

// TestSnapshotRestoreContinuation is the Snapshot→Restore→Step^n ≡ Step^n
// property: after a restore the agent must follow the exact arm sequence
// and land in the exact learned state the original would have reached.
func TestSnapshotRestoreContinuation(t *testing.T) {
	for name, mk := range snapshotPolicies() {
		for _, prefix := range []int{0, 3, 17, 64} {
			t.Run(fmt.Sprintf("%s/prefix%d", name, prefix), func(t *testing.T) {
				cfg := Config{
					Arms: 4, Policy: mk(), Normalize: true,
					RRRestartProb: 0.02, Seed: 7, RecordTrace: true,
					HardwarePrecision: prefix%2 == 0,
				}
				orig := MustNew(cfg)
				drive(orig, 0, prefix)

				snap, err := orig.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
				data, err := json.Marshal(snap)
				if err != nil {
					t.Fatalf("Marshal: %v", err)
				}
				restored, err := RestoreAgentJSON(data)
				if err != nil {
					t.Fatalf("Restore: %v", err)
				}

				const n = 120
				wantArms := drive(orig, prefix, n)
				gotArms := drive(restored, prefix, n)
				for i := range wantArms {
					if gotArms[i] != wantArms[i] {
						t.Fatalf("step %d after restore: arm %d, want %d", i, gotArms[i], wantArms[i])
					}
				}
				if got, want := restored.Rewards(), orig.Rewards(); !equalF64(got, want) {
					t.Fatalf("rTable diverged: %v vs %v", got, want)
				}
				if got, want := restored.Counts(), orig.Counts(); !equalF64(got, want) {
					t.Fatalf("nTable diverged: %v vs %v", got, want)
				}
				if restored.Restarts() != orig.Restarts() {
					t.Fatalf("restart count diverged: %d vs %d", restored.Restarts(), orig.Restarts())
				}
				if restored.RAvg() != orig.RAvg() {
					t.Fatalf("rAvg diverged: %v vs %v", restored.RAvg(), orig.RAvg())
				}
			})
		}
	}
}

func TestMetaSnapshotRoundTripAndContinuation(t *testing.T) {
	build := func() *MetaAgent {
		return mustSweepMeta(t)
	}
	orig := build()
	drive(orig, 0, 50)

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	b1, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	restored, err := RestoreMetaAgentJSON(b1)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Byte identity.
	s2, err := restored.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	b2, err := json.Marshal(s2)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("meta snapshot not byte-identical:\n  %s\nvs\n  %s", b1, b2)
	}

	// Continuation.
	want := drive(orig, 50, 100)
	got := drive(restored, 50, 100)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("meta step %d after restore: arm %d, want %d", i, got[i], want[i])
		}
	}
	if restored.CurrentLevel() != orig.CurrentLevel() {
		t.Fatalf("current level diverged: %d vs %d", restored.CurrentLevel(), orig.CurrentLevel())
	}
}

func mustSweepMeta(t *testing.T) *MetaAgent {
	t.Helper()
	m, err := NewDUCBSweepMeta(4, [][2]float64{{0.04, 0.999}, {0.01, 0.975}, {0.1, 0.99}}, true, 11)
	if err != nil {
		t.Fatalf("NewDUCBSweepMeta: %v", err)
	}
	return m
}

func TestRestoreTypedErrors(t *testing.T) {
	a := MustNew(Config{Arms: 3, Policy: NewDUCB(0.04, 0.999), Seed: 1})
	drive(a, 0, 10)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	good, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	t.Run("version mismatch", func(t *testing.T) {
		s := *snap
		s.V = SnapshotVersion + 1
		if _, err := RestoreAgent(&s); err == nil {
			t.Fatal("want error for future version")
		} else {
			var ve *VersionError
			if !errors.As(err, &ve) {
				t.Fatalf("want *VersionError, got %T: %v", err, err)
			}
		}
	})

	t.Run("malformed json", func(t *testing.T) {
		if _, err := RestoreAgentJSON([]byte("{not json")); err == nil {
			t.Fatal("want error for malformed JSON")
		} else {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("want *SnapshotError, got %T: %v", err, err)
			}
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(good); cut += 7 {
			if _, err := RestoreAgentJSON(good[:cut]); err == nil {
				t.Fatalf("want error for truncation at %d bytes", cut)
			}
		}
	})

	t.Run("inconsistent tables", func(t *testing.T) {
		s := *snap
		s.R = s.R[:1]
		var se *SnapshotError
		if _, err := RestoreAgent(&s); !errors.As(err, &se) {
			t.Fatalf("want *SnapshotError, got %v", err)
		}
	})

	t.Run("unknown policy", func(t *testing.T) {
		s := *snap
		s.Policy = PolicySnapshot{Kind: "gradient-bandit"}
		var se *SnapshotError
		if _, err := RestoreAgent(&s); !errors.As(err, &se) {
			t.Fatalf("want *SnapshotError, got %v", err)
		}
	})

	t.Run("out of range forced arm", func(t *testing.T) {
		s := *snap
		s.Forced = []int{99}
		var se *SnapshotError
		if _, err := RestoreAgent(&s); !errors.As(err, &se) {
			t.Fatalf("want *SnapshotError, got %v", err)
		}
	})

	t.Run("nil snapshot", func(t *testing.T) {
		if _, err := RestoreAgent(nil); err == nil {
			t.Fatal("want error for nil snapshot")
		}
		if _, err := RestoreMetaAgent(nil); err == nil {
			t.Fatal("want error for nil meta snapshot")
		}
	})
}

// TestSnapshotUnsnapshotablePolicy ensures a custom user policy produces
// a typed error, not a panic.
func TestSnapshotUnsnapshotablePolicy(t *testing.T) {
	a := MustNew(Config{Arms: 2, Policy: customPolicy{}, Seed: 1})
	var se *SnapshotError
	if _, err := a.Snapshot(); !errors.As(err, &se) {
		t.Fatalf("want *SnapshotError for custom policy, got %v", err)
	}
}

type customPolicy struct{}

func (customPolicy) Name() string                       { return "custom" }
func (customPolicy) NextArm(*Tables, *xrand.Rand) int   { return 0 }
func (customPolicy) UpdateSelections(t *Tables, a int)  { t.N[a]++; t.NTotal++ }
func (customPolicy) UpdateReward(*Tables, int, float64) {}
func (customPolicy) Reset()                             {}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzAgentSnapshotCodec hammers the snapshot decoder with arbitrary
// bytes: it must never panic, and any input it accepts must re-encode to
// a snapshot it accepts again (decode is a retraction onto valid state).
func FuzzAgentSnapshotCodec(f *testing.F) {
	for name, mk := range snapshotPolicies() {
		a := MustNew(Config{
			Arms: 3, Policy: mk(), Normalize: true,
			RRRestartProb: 0.01, Seed: 5, RecordTrace: name == "ducb",
		})
		drive(a, 0, 25)
		if s, err := a.Snapshot(); err == nil {
			if b, err := json.Marshal(s); err == nil {
				f.Add(b)
			}
		}
	}
	f.Add([]byte(`{"v":1}`))
	f.Add([]byte(`{"v":1,"arms":1,"policy":{"kind":"ucb"},"rtable":[0],"ntable":[0],"rng":[1,2,3,4]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	// Cross-version corpus: the same agent payload travels embedded in
	// v1 per-session checkpoint records and reassembled from v2 slab
	// columns, so the codec sees both generations' idioms — minimal
	// fields, every optional field, a nearby future version, and damaged
	// variants of a live snapshot (truncation, a flipped byte).
	f.Add([]byte(`{"v":1,"arms":2,"policy":{"kind":"eps","epsilon":0.1},"seed":7,"rtable":[0.5,0.25],"ntable":[3,1],"ntotal":4,"steps":4,"current_arm":1,"rng":[9,8,7,6]}`))
	f.Add([]byte(`{"v":1,"arms":3,"policy":{"kind":"ducb","c":0.5,"gamma":0.99},"normalize":true,"rr_restart_prob":0.01,"seed":5,"record_trace":true,"rtable":[0.1,0.2,0.3],"ntable":[1,2,3],"ntotal":6,"steps":6,"current_arm":2,"in_step":true,"forced":[0,1],"ravg":0.2,"normalized":true,"restarts":1,"trace":[0,1,2],"rng":[1,2,3,4]}`))
	f.Add([]byte(`{"v":2,"arms":3,"policy":{"kind":"ducb","c":0.5,"gamma":0.99},"seed":5,"rtable":[0,0,0],"ntable":[0,0,0],"ntotal":0,"steps":0,"current_arm":0,"rng":[1,2,3,4]}`))
	if s, err := MustNew(Config{Arms: 4, Policy: NewDUCB(0.5, 0.99), Seed: 3}).Snapshot(); err == nil {
		if b, err := json.Marshal(s); err == nil {
			f.Add(b[:len(b)/2]) // truncated mid-token
			flipped := append([]byte(nil), b...)
			flipped[len(flipped)/3] ^= 0x20
			f.Add(flipped) // one damaged byte
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := RestoreAgentJSON(data)
		if err != nil {
			return
		}
		// Accepted input must be usable and re-snapshotable. A snapshot
		// taken mid-step restores with the step still open: close it.
		if a.StepOpen() {
			a.Reward(1)
		}
		arm := a.Step()
		if arm < 0 || arm >= a.Arms() {
			t.Fatalf("restored agent chose arm %d of %d", arm, a.Arms())
		}
		a.Reward(1)
		s, err := a.Snapshot()
		if err != nil {
			t.Fatalf("re-snapshot of accepted input: %v", err)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-marshal of accepted input: %v", err)
		}
		if _, err := RestoreAgentJSON(b); err != nil {
			t.Fatalf("re-restore of accepted input: %v", err)
		}
	})
}
