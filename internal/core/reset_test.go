package core

import (
	"fmt"
	"testing"
)

// TestResetEquivalentToFresh is the Reset contract: after Reset, an agent
// must behave step-for-step identically to a freshly constructed agent
// with the same config and seed — same arm choices, same learned tables,
// same normalization constant, same restart count, same recorded trace.
// The pre-reset history varies so Reset is exercised from the initial
// round-robin phase, the main loop, and mid-step.
func TestResetEquivalentToFresh(t *testing.T) {
	for name, mk := range snapshotPolicies() {
		for _, history := range []int{0, 2, 30} {
			t.Run(fmt.Sprintf("%s/history%d", name, history), func(t *testing.T) {
				cfg := Config{
					Arms: 4, Policy: mk(), Normalize: true,
					RRRestartProb: 0.05, Seed: 123, RecordTrace: true,
				}
				reset := MustNew(cfg)
				drive(reset, 0, history)
				if history > 0 {
					// Reset mid-step too: a pending Step must not leak.
					reset.Step()
				}
				reset.Reset()

				freshCfg := cfg
				freshCfg.Policy = mk()
				fresh := MustNew(freshCfg)

				compareStepForStep(t, reset, fresh, 150)
			})
		}
	}
}

// TestMetaResetEquivalentToFresh is the same contract for the
// hierarchical agent: every level, the switch state, and the high-level
// selector must rewind.
func TestMetaResetEquivalentToFresh(t *testing.T) {
	pairs := [][2]float64{{0.04, 0.999}, {0.01, 0.975}}
	build := func() *MetaAgent {
		m, err := NewDUCBSweepMeta(3, pairs, true, 99)
		if err != nil {
			t.Fatalf("NewDUCBSweepMeta: %v", err)
		}
		return m
	}
	reset := build()
	drive(reset, 0, 40)
	reset.Step()
	reset.Reset()
	fresh := build()

	for i := 0; i < 150; i++ {
		ra, fa := reset.Step(), fresh.Step()
		if ra != fa {
			t.Fatalf("step %d: reset meta chose arm %d, fresh chose %d", i, ra, fa)
		}
		if reset.CurrentLevel() != fresh.CurrentLevel() {
			t.Fatalf("step %d: reset meta level %d, fresh level %d", i, reset.CurrentLevel(), fresh.CurrentLevel())
		}
		r := stepReward(ra, i)
		reset.Reward(r)
		fresh.Reward(r)
	}
}

// compareStepForStep drives both agents through n identical steps and
// fails on the first observable divergence.
func compareStepForStep(t *testing.T, a, b *Agent, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		aa, ba := a.Step(), b.Step()
		if aa != ba {
			t.Fatalf("step %d: arms diverge (%d vs %d)", i, aa, ba)
		}
		r := stepReward(aa, i)
		a.Reward(r)
		b.Reward(r)
		if a.RAvg() != b.RAvg() {
			t.Fatalf("step %d: rAvg diverges (%v vs %v)", i, a.RAvg(), b.RAvg())
		}
		if a.Restarts() != b.Restarts() {
			t.Fatalf("step %d: restart counts diverge (%d vs %d)", i, a.Restarts(), b.Restarts())
		}
	}
	if got, want := a.Rewards(), b.Rewards(); !equalF64(got, want) {
		t.Fatalf("rTable diverges: %v vs %v", got, want)
	}
	if got, want := a.Counts(), b.Counts(); !equalF64(got, want) {
		t.Fatalf("nTable diverges: %v vs %v", got, want)
	}
	at, bt := a.Trace(), b.Trace()
	if len(at) != len(bt) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("trace entry %d diverges: %d vs %d", i, at[i], bt[i])
		}
	}
}
