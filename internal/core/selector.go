package core

import (
	"fmt"

	"microbandit/internal/obs"
)

// Selector is the meta-bandit agent selector: a high-level Bandit whose
// arms are whole agent configurations (ε-Greedy, UCB, DUCB, contextual
// DUCB, ...), picked per workload. It generalizes MetaAgent — which
// sweeps hyperparameters of one algorithm family — to heterogeneous
// Controllers, the "bandit framework for optimal selection of RL
// agents" idea from the related work: no single algorithm wins on every
// application, so let a bandit learn which agent to trust.
//
// The learning story mirrors MetaAgent: every low-level controller
// opens a step and observes every step reward (off-policy, credited as
// if its own choice had run), but only the controller chosen by the
// high-level bandit steers the hardware. Selector implements
// Controller, ContextSetter, and ProbeSetter, forwarding context
// signatures and reward probes to the low-level controllers that accept
// them — so contextual agents and scenario probes compose with
// selection unchanged.
type Selector struct {
	high   *Agent
	low    []Controller
	labels []string
	arms   int

	current int  // low-level controller selected for the open step
	inStep  bool // Step called, Reward pending

	rec     obs.Recorder // meta-switch telemetry; nil = disabled
	started bool         // a level has been selected at least once
}

// NewSelector builds an agent selector. highCfg configures the
// high-level bandit (its Arms field is overwritten with len(lows));
// lows are the candidate controllers, labels their display names, and
// arms the hardware arm count every low-level controller decides over.
func NewSelector(highCfg Config, lows []Controller, labels []string, arms int) (*Selector, error) {
	if len(lows) < 2 {
		return nil, fmt.Errorf("core: selector needs at least 2 candidate agents, got %d", len(lows))
	}
	if len(labels) != len(lows) {
		return nil, fmt.Errorf("core: selector has %d labels for %d agents", len(labels), len(lows))
	}
	if arms < 2 {
		return nil, fmt.Errorf("core: selector needs at least 2 hardware arms, got %d", arms)
	}
	highCfg.Arms = len(lows)
	high, err := New(highCfg)
	if err != nil {
		return nil, fmt.Errorf("core: selector high level: %w", err)
	}
	return &Selector{high: high, low: lows, labels: labels, arms: arms}, nil
}

// Arms returns the hardware-visible arm count.
func (s *Selector) Arms() int { return s.arms }

// Levels returns the number of candidate agents.
func (s *Selector) Levels() int { return len(s.low) }

// Labels returns the candidate agents' display names.
func (s *Selector) Labels() []string { return s.labels }

// CurrentLevel returns the candidate index steering the open (or most
// recent) step.
func (s *Selector) CurrentLevel() int { return s.current }

// BestLevel returns the candidate the high-level bandit currently rates
// best.
func (s *Selector) BestLevel() int { return s.high.BestArm() }

// Step implements Controller: the high-level bandit picks a candidate;
// that candidate picks the hardware arm. Every other candidate also
// opens a step so it can learn from the shared reward.
func (s *Selector) Step() int {
	if s.inStep {
		panic("core: Selector Step called twice without Reward")
	}
	s.inStep = true
	prev := s.current
	s.current = s.high.Step()
	if s.rec != nil && (!s.started || s.current != prev) {
		s.rec.Record(obs.Event{Kind: obs.KindMetaSwitch, Step: int64(s.high.StepsTaken()), Arm: s.current})
	}
	s.started = true
	arm := 0
	for i, l := range s.low {
		a := l.Step()
		if i == s.current {
			arm = a
		}
	}
	return arm
}

// Reward implements Controller: the shared step reward trains the
// high-level bandit and every candidate (see MetaAgent.Reward for the
// off-policy caveat).
func (s *Selector) Reward(rStep float64) {
	if !s.inStep {
		panic("core: Selector Reward called without a pending Step")
	}
	s.inStep = false
	s.high.Reward(rStep)
	for _, l := range s.low {
		l.Reward(rStep)
	}
}

// InInitialRR implements Controller: true while the selector or any
// candidate still explores round-robin.
func (s *Selector) InInitialRR() bool {
	if s.high.InInitialRR() {
		return true
	}
	for _, l := range s.low {
		if l.InInitialRR() {
			return true
		}
	}
	return false
}

// SetContext implements ContextSetter by forwarding the signature to
// every candidate that is contextual. The high-level bandit stays
// context-free: which agent suits a workload is exactly the long-horizon
// judgement that should not reset per phase.
func (s *Selector) SetContext(sig Signature) {
	for _, l := range s.low {
		if cs, ok := l.(ContextSetter); ok {
			cs.SetContext(sig)
		}
	}
}

// SetRewardProbe implements ProbeSetter by forwarding the scenario's
// probe to every candidate that accepts one.
func (s *Selector) SetRewardProbe(p RewardProbe) {
	for _, l := range s.low {
		if ps, ok := l.(ProbeSetter); ok {
			ps.SetRewardProbe(p)
		}
	}
}

// SetRecorder attaches a telemetry recorder: the high-level selector
// emits its arm/reward/snapshot events (its arms are candidate indices)
// and the Selector emits KindMetaSwitch whenever the driving candidate
// changes. Candidates stay silent to keep the stream single-voiced.
func (s *Selector) SetRecorder(rec obs.Recorder, every int) {
	s.rec = rec
	s.high.SetRecorder(rec, every)
}

// Reset restores the selector and every candidate that supports
// resetting to their initial state.
func (s *Selector) Reset() {
	s.high.Reset()
	for _, l := range s.low {
		if r, ok := l.(interface{ Reset() }); ok {
			r.Reset()
		}
	}
	s.current = 0
	s.inStep = false
	s.started = false
}

var (
	_ Controller    = (*Selector)(nil)
	_ ContextSetter = (*Selector)(nil)
	_ ProbeSetter   = (*Selector)(nil)
)
