package core

import (
	"encoding/json"
	"fmt"
)

// Contextual-agent checkpointing. The same two contracts as the Agent
// codec in snapshot.go — behavioral identity (a restored agent continues
// the exact decision stream, per context) and byte identity (snapshot →
// restore → snapshot round-trips to the same JSON) — extended with one
// more: LRU-order identity, so eviction decisions after a restore match
// the uninterrupted run's.

// ContextSnapshot is one live context: its signature and its agent's
// full state.
type ContextSnapshot struct {
	Sig   uint32         `json:"sig"`
	Agent *AgentSnapshot `json:"agent"`
}

// ContextualAgentSnapshot is the full serialized state of a
// ContextualAgent. Contexts are listed in LRU order, most recently used
// first, and restored in that order.
type ContextualAgentSnapshot struct {
	V int `json:"v"`

	// Config.
	Arms        int    `json:"arms"`
	Algo        string `json:"algo"`
	Seed        uint64 `json:"seed"`
	MaxContexts int    `json:"max_contexts,omitempty"`
	RecordTrace bool   `json:"record_trace,omitempty"`

	// Loop state. OpenSig is meaningful only when InStep is set: the
	// signature of the context whose step is awaiting its reward.
	Pending   uint32 `json:"pending,omitempty"`
	InStep    bool   `json:"in_step,omitempty"`
	OpenSig   uint32 `json:"open_sig,omitempty"`
	Steps     int    `json:"steps"`
	Evictions int    `json:"evictions,omitempty"`

	Contexts []ContextSnapshot `json:"contexts"`
}

// Snapshot captures the contextual agent's complete state.
func (c *ContextualAgent) Snapshot() (*ContextualAgentSnapshot, error) {
	s := &ContextualAgentSnapshot{
		V:           SnapshotVersion,
		Arms:        c.cfg.Arms,
		Algo:        c.cfg.Algo,
		Seed:        c.cfg.Seed,
		MaxContexts: c.cfg.MaxContexts,
		RecordTrace: c.cfg.RecordTrace,
		Pending:     uint32(c.pending),
		InStep:      c.open != nil,
		Steps:       c.steps,
		Evictions:   c.evictions,
	}
	if c.open != nil {
		s.OpenSig = uint32(c.open.sig)
	}
	for e := c.head; e != nil; e = e.next {
		as, err := e.agent.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("context %v: %w", e.sig, err)
		}
		s.Contexts = append(s.Contexts, ContextSnapshot{Sig: uint32(e.sig), Agent: as})
	}
	return s, nil
}

// validate checks the snapshot's internal consistency. Per-context agent
// snapshots are validated by RestoreAgent during restore.
func (s *ContextualAgentSnapshot) validate() error {
	if s.V != SnapshotVersion {
		return &VersionError{Got: s.V, Want: SnapshotVersion}
	}
	cfg := ContextualConfig{
		Arms: s.Arms, Algo: s.Algo, Seed: s.Seed,
		MaxContexts: s.MaxContexts, RecordTrace: s.RecordTrace,
	}
	if err := cfg.Validate(); err != nil {
		return snapErrf("contextual agent: %v", err)
	}
	if len(s.Contexts) > cfg.maxContexts() {
		return snapErrf("contextual agent has %d contexts, bound is %d",
			len(s.Contexts), cfg.maxContexts())
	}
	if s.Steps < 0 || s.Evictions < 0 {
		return snapErrf("negative step or eviction count")
	}
	seen := make(map[uint32]bool, len(s.Contexts))
	openFound := false
	for i, cs := range s.Contexts {
		if cs.Agent == nil {
			return snapErrf("context %d has no agent", i)
		}
		if seen[cs.Sig] {
			return snapErrf("duplicate context signature %v", Signature(cs.Sig))
		}
		seen[cs.Sig] = true
		if cs.Agent.Arms != s.Arms {
			return snapErrf("context %v has %d arms, want %d", Signature(cs.Sig), cs.Agent.Arms, s.Arms)
		}
		if cs.Sig == s.OpenSig {
			openFound = true
			if s.InStep != cs.Agent.InStep {
				return snapErrf("context %v open-step state disagrees with the contextual agent",
					Signature(cs.Sig))
			}
		} else if cs.Agent.InStep {
			return snapErrf("context %v has an open step but is not the open context", Signature(cs.Sig))
		}
	}
	if s.InStep && !openFound {
		return snapErrf("open context %v is not among the live contexts", Signature(s.OpenSig))
	}
	return nil
}

// RestoreContextualAgent rebuilds a ContextualAgent from a snapshot with
// the same continuation guarantees as RestoreAgent, per context.
func RestoreContextualAgent(s *ContextualAgentSnapshot) (*ContextualAgent, error) {
	if s == nil {
		return nil, snapErrf("nil snapshot")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	c := &ContextualAgent{
		cfg: ContextualConfig{
			Arms: s.Arms, Algo: s.Algo, Seed: s.Seed,
			MaxContexts: s.MaxContexts, RecordTrace: s.RecordTrace,
		},
		contexts:  make(map[Signature]*ctxEntry, len(s.Contexts)),
		pending:   Signature(s.Pending),
		steps:     s.Steps,
		evictions: s.Evictions,
	}
	// Contexts arrive most-recently-used first; appending at the tail
	// reproduces the exact LRU order, so future evictions match.
	for _, cs := range s.Contexts {
		a, err := RestoreAgent(cs.Agent)
		if err != nil {
			return nil, fmt.Errorf("context %v: %w", Signature(cs.Sig), err)
		}
		e := &ctxEntry{sig: Signature(cs.Sig), agent: a, prev: c.tail}
		if c.tail != nil {
			c.tail.next = e
		} else {
			c.head = e
		}
		c.tail = e
		c.contexts[e.sig] = e
		if s.InStep && cs.Sig == s.OpenSig {
			c.open = e
		}
	}
	return c, nil
}

// RestoreContextualAgentJSON decodes a JSON-encoded snapshot and restores
// the agent, with RestoreAgentJSON's error contract.
func RestoreContextualAgentJSON(data []byte) (*ContextualAgent, error) {
	var s ContextualAgentSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, snapErrf("decode: %v", err)
	}
	return RestoreContextualAgent(&s)
}
