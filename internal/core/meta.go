package core

import (
	"fmt"

	"microbandit/internal/obs"
)

// MetaAgent is the hierarchical extension sketched in the paper's future
// work (§9): during tuning the authors observed that different DUCB
// hyperparameters (γ, c) suit different applications, so several low-level
// Bandits with different hyperparameters run concurrently and a high-level
// Bandit selects which one drives the hardware.
//
// The implementation keeps the storage story honest: every low-level agent
// observes every step reward (their tables are cheap — 8 bytes per arm),
// but only the agent chosen by the high-level bandit controls the arm for
// a step. The high-level bandit treats "which low-level agent" as its own
// arm space and is rewarded with the same step reward, re-normalized by
// its own round-robin average.
//
// MetaAgent implements Controller, so it drops into every runner where a
// plain Agent fits.
type MetaAgent struct {
	high *Agent
	low  []*Agent

	current int  // low-level agent selected for the open step
	inStep  bool // Step called, Reward pending

	rec     obs.Recorder // meta-switch telemetry; nil = disabled
	started bool         // a level has been selected at least once
}

// NewMetaAgent builds a hierarchical agent. highCfg configures the
// high-level selector (its Arms field is overwritten with len(lows));
// lows are the concurrently learning low-level agents, which must all
// have the same arm count.
func NewMetaAgent(highCfg Config, lows []*Agent) (*MetaAgent, error) {
	if len(lows) < 2 {
		return nil, fmt.Errorf("core: meta agent needs at least 2 low-level agents, got %d", len(lows))
	}
	arms := lows[0].Arms()
	for i, l := range lows {
		if l.Arms() != arms {
			return nil, fmt.Errorf("core: low-level agent %d has %d arms, want %d", i, l.Arms(), arms)
		}
	}
	highCfg.Arms = len(lows)
	high, err := New(highCfg)
	if err != nil {
		return nil, fmt.Errorf("core: meta agent high level: %w", err)
	}
	return &MetaAgent{high: high, low: lows}, nil
}

// MustNewMetaAgent is NewMetaAgent that panics on error.
func MustNewMetaAgent(highCfg Config, lows []*Agent) *MetaAgent {
	m, err := NewMetaAgent(highCfg, lows)
	if err != nil {
		panic(err)
	}
	return m
}

// Arms returns the low-level arm count (the hardware-visible action
// space).
func (m *MetaAgent) Arms() int { return m.low[0].Arms() }

// Levels returns the number of low-level agents.
func (m *MetaAgent) Levels() int { return len(m.low) }

// CurrentLevel returns the low-level agent index steering the open (or
// most recent) step.
func (m *MetaAgent) CurrentLevel() int { return m.current }

// StepOpen reports whether a Step call is awaiting its Reward.
func (m *MetaAgent) StepOpen() bool { return m.inStep }

// Step implements Controller: the high-level bandit picks a low-level
// agent; that agent picks the hardware arm. Every other low-level agent
// also opens a step so it can learn from the shared reward.
func (m *MetaAgent) Step() int {
	if m.inStep {
		panic("core: MetaAgent Step called twice without Reward")
	}
	m.inStep = true
	prev := m.current
	m.current = m.high.Step()
	if m.rec != nil && (!m.started || m.current != prev) {
		m.rec.Record(obs.Event{Kind: obs.KindMetaSwitch, Step: int64(m.high.StepsTaken()), Arm: m.current})
	}
	m.started = true
	arm := 0
	for i, l := range m.low {
		a := l.Step()
		if i == m.current {
			arm = a
		}
	}
	return arm
}

// Reward implements Controller: the shared step reward trains the
// high-level bandit and every low-level bandit.
//
// Off-policy caveat: a non-selected low-level agent is credited as if its
// own arm choice had produced the reward. With high temporal homogeneity
// the agents mostly agree on the arm, so the approximation is tight — and
// it is what a storage-free shadow implementation can do in hardware.
func (m *MetaAgent) Reward(rStep float64) {
	if !m.inStep {
		panic("core: MetaAgent Reward called without a pending Step")
	}
	m.inStep = false
	m.high.Reward(rStep)
	for _, l := range m.low {
		l.Reward(rStep)
	}
}

// InInitialRR implements Controller: true while any level still explores
// round-robin, so runners keep using the longer initial bandit step.
func (m *MetaAgent) InInitialRR() bool {
	if m.high.InInitialRR() {
		return true
	}
	for _, l := range m.low {
		if l.InInitialRR() {
			return true
		}
	}
	return false
}

// BestLevel returns the low-level agent index the high-level bandit
// currently rates best.
func (m *MetaAgent) BestLevel() int { return m.high.BestArm() }

// SetRecorder attaches a telemetry recorder: the high-level selector
// emits its arm/reward/snapshot events (its arms are the low-level
// agent indices) and the MetaAgent itself emits a KindMetaSwitch event
// whenever the driving level changes. Low-level agents stay silent to
// keep the stream single-voiced.
func (m *MetaAgent) SetRecorder(rec obs.Recorder, every int) {
	m.rec = rec
	m.high.SetRecorder(rec, every)
}

// Reset restores all levels to their initial state.
func (m *MetaAgent) Reset() {
	m.high.Reset()
	for _, l := range m.low {
		l.Reset()
	}
	m.current = 0
	m.inStep = false
	m.started = false
}

// NewDUCBSweepMeta builds the §9 configuration directly: one low-level
// DUCB agent per (c, γ) pair over the given arm count, under a DUCB
// high-level selector with the same exploration constant as the first
// pair.
func NewDUCBSweepMeta(arms int, pairs [][2]float64, normalize bool, seed uint64) (*MetaAgent, error) {
	if len(pairs) < 2 {
		return nil, fmt.Errorf("core: hyperparameter sweep needs at least 2 (c, gamma) pairs")
	}
	lows := make([]*Agent, 0, len(pairs))
	for i, p := range pairs {
		a, err := New(Config{
			Arms:      arms,
			Policy:    NewDUCB(p[0], p[1]),
			Normalize: normalize,
			Seed:      seed + uint64(i)*0x9e37,
		})
		if err != nil {
			return nil, err
		}
		lows = append(lows, a)
	}
	return NewMetaAgent(Config{
		Policy:    NewDUCB(pairs[0][0], 0.999),
		Normalize: normalize,
		Seed:      seed ^ 0x4d657461,
	}, lows)
}

var _ Controller = (*MetaAgent)(nil)
