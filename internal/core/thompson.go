package core

import (
	"math"

	"microbandit/internal/xrand"
)

// Thompson is Thompson sampling (Thompson 1933, the paper's reference
// [73]) — the third classic bandit family alongside ε-Greedy and the
// confidence-bound algorithms. The paper evaluates only the latter two;
// Thompson is provided as a library extension so downstream users can
// compare the Bayesian approach on their own decision problems.
//
// Each arm keeps a Gaussian posterior over its mean reward, updated from
// the same running statistics the hardware tables already hold: the arm's
// reward average (rTable) and its selection count (nTable). NextArm draws
// one sample per arm from N(r_i, σ²/n_i) and plays the argmax, so
// exploration falls out of posterior uncertainty instead of an explicit
// bonus term. Like DUCB, it composes with the Agent's discounted-count
// variant by pairing it with a discounting updSels.
type Thompson struct {
	// Sigma is the assumed reward noise scale (the posterior std dev of
	// an arm observed once). Plays the role DUCB's c does.
	Sigma float64
	// Gamma, when in (0,1), discounts selection counts like DUCB so the
	// posterior re-widens for stale arms (non-stationary environments).
	// Gamma >= 1 or <= 0 disables discounting.
	Gamma float64
}

// NewThompson returns a stationary Thompson-sampling policy.
func NewThompson(sigma float64) *Thompson { return &Thompson{Sigma: sigma} }

// NewDiscountedThompson returns a Thompson policy with DUCB-style count
// discounting for non-stationary environments.
func NewDiscountedThompson(sigma, gamma float64) *Thompson {
	return &Thompson{Sigma: sigma, Gamma: gamma}
}

// Name implements Policy.
func (p *Thompson) Name() string {
	if p.discounting() {
		return "D-Thompson"
	}
	return "Thompson"
}

func (p *Thompson) discounting() bool { return p.Gamma > 0 && p.Gamma < 1 }

// thompsonNextArm samples each arm's posterior and plays the argmax. It
// is a free function (like argmaxPotential) so the Agent's devirtualized
// fast path shares the exact arithmetic and RNG consumption order with
// the interface route.
func thompsonNextArm(t *Tables, sigma float64, rng *xrand.Rand) int {
	best, bestV := 0, math.Inf(-1)
	for i := range t.R {
		n := math.Max(t.N[i], minCount)
		v := t.R[i] + sigma/math.Sqrt(n)*rng.NormFloat64()
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// NextArm implements Policy: sample each arm's posterior, play the argmax.
func (p *Thompson) NextArm(t *Tables, rng *xrand.Rand) int {
	return thompsonNextArm(t, p.Sigma, rng)
}

// UpdateSelections implements Policy (DUCB-style discount when enabled).
func (p *Thompson) UpdateSelections(t *Tables, arm int) {
	if p.discounting() {
		discountSelect(t, p.Gamma, arm)
		return
	}
	countSelect(t, arm)
}

// UpdateReward implements Policy: the shared running-average fold.
func (p *Thompson) UpdateReward(t *Tables, arm int, rStep float64) {
	foldReward(t, arm, rStep)
}

// Reset implements Policy (Thompson is stateless beyond the Tables).
func (p *Thompson) Reset() {}

var _ Policy = (*Thompson)(nil)
