package core

import (
	"math"
	"testing"
	"testing/quick"

	"microbandit/internal/xrand"
)

func seededTables(r []float64) *Tables {
	t := newTables(len(r))
	copy(t.R, r)
	for i := range t.N {
		t.N[i] = 1
	}
	t.NTotal = float64(len(r))
	return t
}

func TestTablesBestArm(t *testing.T) {
	tb := seededTables([]float64{0.2, 0.9, 0.9, 0.1})
	if got := tb.BestArm(); got != 1 {
		t.Errorf("BestArm = %d, want 1 (first of ties)", got)
	}
	empty := newTables(0)
	if empty.BestArm() != 0 {
		t.Error("empty BestArm != 0")
	}
}

func TestEpsilonGreedyExploitsAtEpsZero(t *testing.T) {
	p := NewEpsilonGreedy(0)
	tb := seededTables([]float64{0.1, 0.8, 0.3})
	rng := xrand.New(1)
	for i := 0; i < 100; i++ {
		if arm := p.NextArm(tb, rng); arm != 1 {
			t.Fatalf("eps=0 selected arm %d", arm)
		}
	}
}

func TestEpsilonGreedyExploresAtRate(t *testing.T) {
	p := NewEpsilonGreedy(0.5)
	tb := seededTables([]float64{0.1, 0.8, 0.3})
	rng := xrand.New(1)
	nonBest := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if p.NextArm(tb, rng) != 1 {
			nonBest++
		}
	}
	// With eps=0.5 and 3 arms, P(non-best) = 0.5 * 2/3 = 1/3.
	frac := float64(nonBest) / draws
	if math.Abs(frac-1.0/3.0) > 0.02 {
		t.Errorf("non-best fraction = %.3f, want ~0.333", frac)
	}
}

func TestUCBPrefersUnderexploredArm(t *testing.T) {
	p := NewUCB(0.5)
	tb := newTables(3)
	// Arm 0: good but heavily sampled; arm 2: slightly worse, barely sampled.
	tb.R = []float64{0.6, 0.1, 0.55}
	tb.N = []float64{100, 100, 1}
	tb.NTotal = 201
	if arm := p.NextArm(tb, nil); arm != 2 {
		t.Errorf("UCB selected arm %d, want under-explored arm 2", arm)
	}
	// But an unacceptably bad arm is not explored.
	tb.R[2] = -5
	if arm := p.NextArm(tb, nil); arm == 2 {
		t.Error("UCB explored an unacceptably bad arm")
	}
}

func TestUCBExplorationDecays(t *testing.T) {
	p := NewUCB(1)
	early := seededTables([]float64{0, 0})
	early.N = []float64{2, 2}
	early.NTotal = 4
	late := seededTables([]float64{0, 0})
	late.N = []float64{1000, 1000}
	late.NTotal = 2000
	pe := p.Potentials(early)
	pl := p.Potentials(late)
	if pl[0] >= pe[0] {
		t.Errorf("exploration factor did not decay: early=%v late=%v", pe[0], pl[0])
	}
}

func TestUCBRunningAverage(t *testing.T) {
	p := NewUCB(0.1)
	tb := newTables(1)
	rewards := []float64{1, 2, 3, 4}
	for _, r := range rewards {
		p.UpdateSelections(tb, 0)
		p.UpdateReward(tb, 0, r)
	}
	if !close(tb.R[0], 2.5) {
		t.Errorf("running average = %v, want 2.5", tb.R[0])
	}
	if tb.N[0] != 4 || tb.NTotal != 4 {
		t.Errorf("counts = %v / %v", tb.N[0], tb.NTotal)
	}
}

func TestDUCBDiscountsCounts(t *testing.T) {
	p := NewDUCB(0.1, 0.9)
	tb := seededTables([]float64{0.5, 0.5})
	p.UpdateSelections(tb, 0)
	// n = [1*0.9+1, 1*0.9] = [1.9, 0.9]; total = 2.8
	if !close(tb.N[0], 1.9) || !close(tb.N[1], 0.9) {
		t.Errorf("discounted counts = %v", tb.N)
	}
	if !close(tb.NTotal, 2.8) {
		t.Errorf("NTotal = %v, want 2.8", tb.NTotal)
	}
}

func TestDUCBCountsSaturate(t *testing.T) {
	// Repeatedly selecting the same arm converges n to 1/(1-gamma).
	p := NewDUCB(0.1, 0.9)
	tb := newTables(2)
	for i := 0; i < 1000; i++ {
		p.UpdateSelections(tb, 0)
		p.UpdateReward(tb, 0, 1)
	}
	limit := 1.0 / (1 - 0.9)
	if math.Abs(tb.N[0]-limit) > 1e-6 {
		t.Errorf("saturated count = %v, want %v", tb.N[0], limit)
	}
	// The never-selected arm's count decays toward zero.
	if tb.N[1] > 1e-9 {
		t.Errorf("idle arm count = %v, want ~0", tb.N[1])
	}
}

func TestDUCBRegainsExplorationBonus(t *testing.T) {
	p := NewDUCB(0.5, 0.9)
	tb := seededTables([]float64{0.5, 0.4})
	// Select arm 0 many times: arm 1's count decays, so its bonus grows.
	before := p.Potentials(tb)[1]
	for i := 0; i < 50; i++ {
		p.UpdateSelections(tb, 0)
		p.UpdateReward(tb, 0, 0.5)
	}
	after := p.Potentials(tb)[1]
	if after <= before {
		t.Errorf("idle arm potential did not grow: before=%v after=%v", before, after)
	}
}

func TestStaticAlwaysSelects(t *testing.T) {
	p := NewStatic(2)
	tb := seededTables([]float64{9, 9, 0})
	rng := xrand.New(1)
	for i := 0; i < 10; i++ {
		if p.NextArm(tb, rng) != 2 {
			t.Fatal("Static deviated")
		}
	}
}

func TestSingleLocksBestRRArm(t *testing.T) {
	a := MustNew(Config{Arms: 4, Policy: NewSingle(), Seed: 1, RecordTrace: true})
	rrRewards := []float64{0.3, 0.9, 0.5, 0.1}
	for _, r := range rrRewards {
		a.Step()
		a.Reward(r)
	}
	for s := 0; s < 100; s++ {
		arm := a.Step()
		if arm != 1 {
			t.Fatalf("Single deviated to arm %d at step %d", arm, s)
		}
		// Even terrible rewards don't change the choice.
		a.Reward(0.0001)
	}
}

func TestPeriodicAlternatesSweepAndExploit(t *testing.T) {
	const arms, exploit = 3, 5
	a := MustNew(Config{Arms: arms, Policy: NewPeriodic(exploit, 4), Seed: 1, RecordTrace: true})
	means := []float64{0.2, 0.9, 0.4}
	for s := 0; s < arms+3*(arms+exploit); s++ {
		arm := a.Step()
		a.Reward(means[arm])
	}
	trace := a.Trace()
	// After initial RR (3 steps), pattern: sweep 0,1,2 then exploit 1 x5, repeat.
	main := trace[arms:]
	for cycle := 0; cycle+arms+exploit <= len(main); cycle += arms + exploit {
		for i := 0; i < arms; i++ {
			if main[cycle+i] != i {
				t.Fatalf("cycle at %d: sweep step %d selected %d", cycle, i, main[cycle+i])
			}
		}
		for i := arms; i < arms+exploit; i++ {
			if main[cycle+i] != 1 {
				t.Fatalf("cycle at %d: exploit step selected %d, want 1", cycle, main[cycle+i])
			}
		}
	}
}

func TestPeriodicMovingAverageTracksChanges(t *testing.T) {
	// After the environment flips, Periodic's next sweep refreshes the
	// moving averages and exploitation moves to the new best arm.
	const arms, exploit, window = 2, 4, 2
	a := MustNew(Config{Arms: arms, Policy: NewPeriodic(exploit, window), Seed: 1, RecordTrace: true})
	// Step count aligned so the trace ends exactly on an exploit phase:
	// 2 initial RR steps + 16 cycles of (2 sweep + 4 exploit) = 98.
	flip := 40
	for s := 0; s < 98; s++ {
		arm := a.Step()
		var means []float64
		if s < flip {
			means = []float64{0.9, 0.1}
		} else {
			means = []float64{0.1, 0.9}
		}
		a.Reward(means[arm])
	}
	trace := a.Trace()
	tail := trace[len(trace)-exploit:]
	for _, arm := range tail {
		if arm != 1 {
			t.Fatalf("Periodic failed to adapt: tail=%v", tail)
		}
	}
}

func TestPeriodicClampsArgs(t *testing.T) {
	p := NewPeriodic(0, -3)
	if p.ExploitSteps != 1 || p.Window != 1 {
		t.Errorf("clamped params = %d/%d", p.ExploitSteps, p.Window)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"eps-Greedy": NewEpsilonGreedy(0.1),
		"UCB":        NewUCB(0.1),
		"DUCB":       NewDUCB(0.1, 0.9),
		"Static":     NewStatic(0),
		"Single":     NewSingle(),
		"Periodic":   NewPeriodic(4, 4),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

// Property: DUCB's NTotal always equals the sum of per-arm counts.
func TestQuickDUCBTotalInvariant(t *testing.T) {
	f := func(armsRaw uint8, selections []uint8) bool {
		arms := int(armsRaw%8) + 2
		p := NewDUCB(0.1, 0.95)
		tb := newTables(arms)
		for _, s := range selections {
			arm := int(s) % arms
			p.UpdateSelections(tb, arm)
			p.UpdateReward(tb, arm, 1)
			sum := 0.0
			for _, n := range tb.N {
				sum += n
			}
			if math.Abs(sum-tb.NTotal) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: running averages stay within the convex hull of rewards seen.
func TestQuickRunningAverageBounds(t *testing.T) {
	f := func(rewards []uint16) bool {
		if len(rewards) == 0 {
			return true
		}
		p := NewUCB(0.1)
		tb := newTables(1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, raw := range rewards {
			r := float64(raw) / 1000
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
			p.UpdateSelections(tb, 0)
			p.UpdateReward(tb, 0, r)
			if tb.R[0] < lo-1e-9 || tb.R[0] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the UCB potential of every arm weakly exceeds its average
// reward (the exploration bonus is non-negative).
func TestQuickUCBPotentialBonusNonNegative(t *testing.T) {
	f := func(rRaw []uint16, nRaw []uint8) bool {
		arms := len(rRaw)
		if arms == 0 || len(nRaw) < arms {
			return true
		}
		tb := newTables(arms)
		for i := range tb.R {
			tb.R[i] = float64(rRaw[i]) / 1000
			tb.N[i] = float64(nRaw[i]%50) + 1
			tb.NTotal += tb.N[i]
		}
		for i, pot := range NewUCB(0.3).Potentials(tb) {
			if pot < tb.R[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDUCBStep(b *testing.B) {
	a := MustNew(Config{Arms: 11, Policy: NewDUCB(0.04, 0.999), Normalize: true, Seed: 1})
	for i := 0; i < b.N; i++ {
		a.Step()
		a.Reward(1.0)
	}
}

func BenchmarkUCBStep(b *testing.B) {
	a := MustNew(Config{Arms: 11, Policy: NewUCB(0.04), Normalize: true, Seed: 1})
	for i := 0; i < b.N; i++ {
		a.Step()
		a.Reward(1.0)
	}
}
