package core

import (
	"errors"
	"fmt"

	"microbandit/internal/xrand"
)

// This file is the struct-of-arrays storage layer for agents. A Slab
// holds N agents' entire learned state — the rTable and nTable of every
// slot — in two contiguous slot-major float64 arrays, with the Agent
// records themselves packed in a contiguous slice. One agent's row is
// tables[slot], whose R and N slices alias the backing arrays.
//
// The scalar Agent API is unchanged: New builds a one-slot slab, so a
// standalone agent is just the degenerate case and every decision an
// agent makes is bit-identical whether it lives alone or in a
// thousand-slot slab. What the slab adds is the batch plane: StepBatch
// and RewardBatch sweep many slots in one call over contiguous memory,
// instead of N virtual calls chasing N scattered heap objects — the
// vectorized independent-runs layout of the bandit-simulation literature
// applied to the serving path.
//
// A Slab's backing arrays are fixed at construction and never
// reallocated, so a caller may operate on disjoint slots from different
// goroutines (each under its own lock) without synchronizing on the slab
// itself; only Alloc and Free mutate shared slab state and need external
// serialization.

// ErrSlabFull reports an Alloc on a slab with no free slots.
var ErrSlabFull = errors.New("core: slab is full")

// Slab is a fixed-capacity struct-of-arrays arena of agents that share
// one arm count. Construct with NewSlab.
type Slab struct {
	arms int
	r    []float64 // slot-major rTable backing: slot s owns [s*arms, (s+1)*arms)
	n    []float64 // slot-major nTable backing, same layout
	// tables[s] views the slot's rows; NTotal lives inline in the
	// element, so the whole learned state of slot s is reachable without
	// leaving the slab's allocations.
	tables []Tables
	agents []Agent
	used   []bool
	free   []int32 // stack of free slots
}

// NewSlab returns an empty slab with room for capacity agents of the
// given arm count.
func NewSlab(arms, capacity int) (*Slab, error) {
	if arms < 1 {
		return nil, fmt.Errorf("core: slab needs at least 1 arm, got %d", arms)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("core: slab needs capacity >= 1, got %d", capacity)
	}
	s := &Slab{
		arms:   arms,
		r:      make([]float64, arms*capacity),
		n:      make([]float64, arms*capacity),
		tables: make([]Tables, capacity),
		agents: make([]Agent, capacity),
		used:   make([]bool, capacity),
		free:   make([]int32, capacity),
	}
	for i := 0; i < capacity; i++ {
		lo, hi := i*arms, (i+1)*arms
		// Full slice expressions pin cap so an append through a view
		// could never bleed into the neighbouring slot's row.
		s.tables[i] = Tables{R: s.r[lo:hi:hi], N: s.n[lo:hi:hi]}
		s.free[i] = int32(capacity - 1 - i) // pop order 0, 1, 2, ...
	}
	return s, nil
}

// MustNewSlab is NewSlab that panics on error, for tests and examples.
func MustNewSlab(arms, capacity int) *Slab {
	s, err := NewSlab(arms, capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Arms returns the arm count every slot shares.
func (s *Slab) Arms() int { return s.arms }

// Cap returns the slot capacity.
func (s *Slab) Cap() int { return len(s.agents) }

// Live returns the number of allocated slots.
func (s *Slab) Live() int { return len(s.agents) - len(s.free) }

// Alloc constructs an agent in a free slot, exactly as New would, and
// returns it with its slot index. The config's arm count must match the
// slab's. A full slab returns ErrSlabFull.
func (s *Slab) Alloc(cfg Config) (*Agent, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, -1, err
	}
	if cfg.Arms != s.arms {
		return nil, -1, fmt.Errorf("core: config has %d arms, slab holds %d-arm agents", cfg.Arms, s.arms)
	}
	if len(s.free) == 0 {
		return nil, -1, ErrSlabFull
	}
	slot := int(s.free[len(s.free)-1])
	s.free = s.free[:len(s.free)-1]
	s.used[slot] = true
	t := &s.tables[slot]
	clear(t.R)
	clear(t.N)
	t.NTotal = 0
	a := &s.agents[slot]
	*a = Agent{cfg: cfg, tables: t, rng: *xrand.New(cfg.Seed)}
	a.queueRoundRobin()
	return a, slot, nil
}

// Free releases an allocated slot. The agent record is zeroed so freed
// state can never leak into the slot's next tenant. Freeing a slot that
// is not allocated is a programming error and panics.
func (s *Slab) Free(slot int) {
	if slot < 0 || slot >= len(s.agents) || !s.used[slot] {
		panic(fmt.Sprintf("core: Free of unallocated slab slot %d", slot))
	}
	s.used[slot] = false
	s.agents[slot] = Agent{}
	// free was sized to capacity at construction, so this append never
	// reallocates.
	s.free = append(s.free, int32(slot))
}

// Agent returns the agent in an allocated slot, or nil for a free or
// out-of-range slot.
func (s *Slab) Agent(slot int) *Agent {
	if slot < 0 || slot >= len(s.agents) || !s.used[slot] {
		return nil
	}
	return &s.agents[slot]
}

// StepBatch opens one decision on every listed slot, writing the arm
// chosen for slots[i] into arms[i]. It is the batch form of Agent.Step —
// one sweep over the contiguous agent records — and inherits Step's
// contract: every listed slot must be allocated with no step open, and
// each slot may appear at most once per call. arms must be at least as
// long as slots.
func (s *Slab) StepBatch(slots []int32, arms []int32) {
	agents := s.agents
	for i, slot := range slots {
		arms[i] = int32(agents[slot].Step())
	}
}

// RewardBatch closes the open decision on every listed slot with the
// matching reward. It is the batch form of Agent.Reward and inherits its
// contract: every listed slot must have a step open, and each slot may
// appear at most once per call. rewards must be at least as long as
// slots.
func (s *Slab) RewardBatch(slots []int32, rewards []float64) {
	agents := s.agents
	for i, slot := range slots {
		agents[slot].Reward(rewards[i])
	}
}
