// Package core implements the Micro-Armed Bandit agent of Gerogiannis &
// Torrellas (MICRO 2023): a lightweight, reusable reinforcement-learning
// agent for microarchitecture decision-making based on Multi-Armed Bandit
// (MAB) algorithms.
//
// The package provides:
//
//   - The three MAB algorithms of the paper's Table 3 — ε-Greedy, Upper
//     Confidence Bound (UCB), and Discounted UCB (DUCB) — expressed as
//     implementations of the Policy interface (nextArm / updSels / updRew).
//   - The general MAB template of Algorithm 1 (initial round-robin phase
//     followed by the main loop), implemented by Agent.
//   - The paper's two microarchitecture-specific modifications (§4.3):
//     reward normalization by the round-robin average reward, and
//     probabilistic round-robin restarts to escape multi-core interference.
//   - The non-MAB exploration heuristics used as baselines (§6.4, §7.1):
//     Single, Periodic (with a POWER7-style moving-average buffer), and
//     Static (one fixed arm, used to construct the best-static oracle).
//
// The agent is deliberately tiny: per arm it stores one running reward
// (rTable) and one selection count (nTable), 8 bytes per arm in hardware.
// Everything is deterministic given Config.Seed.
//
// Usage follows the bandit-step protocol of the paper: call Step to obtain
// the arm to apply for the next bandit step, apply it to the controlled
// unit (prefetcher ensemble, SMT fetch unit, ...), run the step, then call
// Reward with the observed step reward (typically IPC). Step and Reward
// must strictly alternate.
package core

import (
	"fmt"
	"math"

	"microbandit/internal/obs"
	"microbandit/internal/xrand"
)

// Tables is the agent's entire learned state: the paper's rTable and
// nTable plus the total selection count. N is a float64 because DUCB
// discounts selection counts by γ < 1; for ε-Greedy and UCB the entries
// stay integral.
type Tables struct {
	R      []float64 // average observed reward per arm (rTable)
	N      []float64 // (possibly discounted) selection count per arm (nTable)
	NTotal float64   // total selections across all arms
}

// newTables allocates zeroed tables for the given number of arms.
func newTables(arms int) *Tables {
	return &Tables{R: make([]float64, arms), N: make([]float64, arms)}
}

// Arms returns the number of arms.
func (t *Tables) Arms() int { return len(t.R) }

// BestArm returns the arm with the highest average reward, ties broken by
// the lowest index. It returns 0 for empty tables.
func (t *Tables) BestArm() int {
	best, bestR := 0, math.Inf(-1)
	for i, r := range t.R {
		if r > bestR {
			best, bestR = i, r
		}
	}
	return best
}

// minCount is the floor applied to discounted selection counts so the UCB
// exploration factor stays finite. A real hardware implementation would
// saturate its fixed-point counter the same way.
const minCount = 1e-6

// Policy is one MAB algorithm: the three functions of the paper's Table 3.
// A Policy operates on the agent's Tables; it owns no per-arm state of its
// own (heuristic policies may keep small mode state, e.g. Periodic's
// moving-average buffers).
type Policy interface {
	// Name identifies the algorithm in reports ("DUCB", "UCB", ...).
	Name() string
	// NextArm selects the arm for the next bandit step.
	NextArm(t *Tables, rng *xrand.Rand) int
	// UpdateSelections updates selection counts after arm was chosen
	// (the paper's updSels).
	UpdateSelections(t *Tables, arm int)
	// UpdateReward folds the step reward into the chosen arm's average
	// (the paper's updRew).
	UpdateReward(t *Tables, arm int, rStep float64)
	// Reset clears any internal mode state (not the Tables).
	Reset()
}

// Potentialer is implemented by policies whose arm choice maximizes an
// explicit per-arm potential (UCB and DUCB). It is used by tests and by
// the Fig. 7 exploration-trace instrumentation.
type Potentialer interface {
	Potentials(t *Tables) []float64
}

// Config configures an Agent.
type Config struct {
	// Arms is the number of actions available (M in Algorithm 1).
	Arms int
	// Policy is the MAB algorithm or exploration heuristic to run.
	Policy Policy
	// Normalize enables the paper's first modification (§4.3): after the
	// initial round-robin phase, all rewards are divided by the average
	// round-robin reward so low-IPC and high-IPC workloads explore
	// comparably under a common exploration constant c.
	Normalize bool
	// RRRestartProb enables the paper's second modification (§4.3): with
	// this probability per main-loop step, the agent re-runs the initial
	// round-robin phase (without resetting learned state) so multi-core
	// interference during initial exploration can be corrected. The
	// paper uses 0.001 for 4-core prefetching.
	RRRestartProb float64
	// Seed seeds the agent's private RNG.
	Seed uint64
	// RecordTrace keeps the per-step arm choices for exploration plots
	// (Fig. 7). Off by default to keep the agent allocation-free.
	RecordTrace bool
	// HardwarePrecision quantizes the rTable to float32 and the
	// exploration arithmetic accordingly, emulating the 8-byte-per-arm
	// hardware storage format (§5.4).
	HardwarePrecision bool
	// Obs receives telemetry events (arm choices, rewards, state
	// snapshots, §4.3 restarts). nil — the default — disables emission
	// entirely; the hot path then costs one nil check per call.
	Obs obs.Recorder
	// ObsEvery is the rTable/nTable snapshot cadence in completed
	// bandit steps (0 disables snapshots; the other events are
	// unaffected). Only meaningful with a non-nil Obs.
	ObsEvery int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Arms < 1 {
		return fmt.Errorf("core: config needs at least 1 arm, got %d", c.Arms)
	}
	if c.Policy == nil {
		return fmt.Errorf("core: config needs a policy")
	}
	if c.RRRestartProb < 0 || c.RRRestartProb > 1 {
		return fmt.Errorf("core: rr restart probability %v outside [0,1]", c.RRRestartProb)
	}
	return nil
}

// Agent is the Micro-Armed Bandit: Algorithm 1 of the paper wrapped around
// a Policy, with the two microarchitecture modifications of §4.3.
//
// The zero value is not usable; construct with New.
type Agent struct {
	cfg    Config
	tables *Tables    // view into the owning slab's slot (never nil after New)
	rng    xrand.Rand // by value, so a slab's agents pack contiguously

	steps      int   // completed bandit steps
	currentArm int   // arm chosen by the last Step call
	inStep     bool  // Step called, Reward pending
	forced     []int // pending forced arms (initial RR phase or RR restart)

	rAvg       float64 // round-robin average reward used for normalization
	normalized bool    // rAvg has been computed

	trace []int // arm per step, if RecordTrace

	restarts int // completed RR-restart triggers

	// restartPermission, when set (by a Coordinator), gates §4.3
	// restarts: a restart that comes up while permission is denied is
	// skipped for that step.
	restartPermission func() bool
}

// New constructs an Agent. It returns an error for invalid configs.
//
// A standalone agent is the one-slot case of a Slab: its tables live in
// a private slab, so scalar and slab-resident agents run exactly the
// same code and make bit-identical decisions.
func New(cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSlab(cfg.Arms, 1)
	if err != nil {
		return nil, err
	}
	a, _, err := s.Alloc(cfg)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Agent {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// queueRoundRobin schedules one forced selection of every arm, in order.
func (a *Agent) queueRoundRobin() {
	for i := 0; i < a.cfg.Arms; i++ {
		a.forced = append(a.forced, i)
	}
}

// Arms returns the number of arms.
func (a *Agent) Arms() int { return a.cfg.Arms }

// StepsTaken returns the number of completed bandit steps.
func (a *Agent) StepsTaken() int { return a.steps }

// InInitialRR reports whether the agent is still in the initial
// round-robin phase of Algorithm 1 (useful for the SMT use case, which
// uses a longer bandit step during this phase, §5.3).
func (a *Agent) InInitialRR() bool { return a.steps < a.cfg.Arms }

// Restarts returns how many §4.3 round-robin restarts have triggered.
func (a *Agent) Restarts() int { return a.restarts }

// StepOpen reports whether a Step call is awaiting its Reward. A restored
// snapshot taken between Step and Reward resumes with the step open.
func (a *Agent) StepOpen() bool { return a.inStep }

// RestartActive reports whether the agent is mid-way through a §4.3
// restart sweep (forced arms pending after the initial round-robin
// phase). Coordinators use it to serialize exploration across agents.
func (a *Agent) RestartActive() bool {
	return a.steps >= a.cfg.Arms && len(a.forced) > 0
}

// Step selects and returns the arm to apply for the next bandit step. It
// panics if called twice without an intervening Reward — that protocol
// violation is a programming error, not a runtime condition.
func (a *Agent) Step() int {
	if a.inStep {
		panic("core: Step called twice without Reward")
	}
	a.inStep = true

	initialRR := a.steps < a.cfg.Arms

	// §4.3 modification 2: probabilistic round-robin restart during the
	// main loop, preserving learned state. A Coordinator (if installed)
	// serializes restarts across sibling agents so concurrent sweeps do
	// not poison each other's rewards.
	if !initialRR && len(a.forced) == 0 && a.rng.Bool(a.cfg.RRRestartProb) {
		if a.restartPermission == nil || a.restartPermission() {
			a.queueRoundRobin()
			a.restarts++
			if a.cfg.Obs != nil {
				a.cfg.Obs.Record(obs.Event{Kind: obs.KindRestart, Step: int64(a.steps)})
			}
		}
	}

	var arm int
	forced := len(a.forced) > 0
	switch {
	case forced:
		arm = a.forced[0]
		a.forced = a.forced[1:]
		if !initialRR {
			// Restart sweeps update counts through the policy, so
			// DUCB keeps discounting during the sweep.
			a.policyUpdateSelections(arm)
		}
	default:
		arm = a.policyNextArm()
		a.policyUpdateSelections(arm)
	}
	a.currentArm = arm
	if a.cfg.RecordTrace {
		a.trace = append(a.trace, arm)
	}
	if a.cfg.Obs != nil {
		a.cfg.Obs.Record(obs.Event{Kind: obs.KindArm, Step: int64(a.steps), Arm: arm, Forced: forced})
	}
	return arm
}

// Reward observes the reward of the bandit step opened by the last Step
// call. It panics if no step is open.
func (a *Agent) Reward(rStep float64) {
	if !a.inStep {
		panic("core: Reward called without a pending Step")
	}
	a.inStep = false

	initialRR := a.steps < a.cfg.Arms
	arm := a.currentArm
	raw := rStep

	if a.cfg.Normalize && a.normalized {
		rStep = a.normalizeReward(rStep)
	}

	if initialRR {
		// Algorithm 1 lines 4-10: first visit seeds the arm directly.
		a.tables.N[arm] = 1
		a.tables.NTotal++
		a.tables.R[arm] = rStep
	} else {
		a.policyUpdateReward(arm, rStep)
	}
	if a.cfg.Obs != nil {
		a.cfg.Obs.Record(obs.Event{Kind: obs.KindReward, Step: int64(a.steps), Arm: arm, Value: rStep, Raw: raw})
	}
	a.steps++

	// §4.3 modification 1: once the initial round-robin phase finishes,
	// compute the average initial reward and rescale both the seeded
	// rTable entries and every future step reward by it.
	if a.cfg.Normalize && !a.normalized && a.steps == a.cfg.Arms {
		a.computeNormalization()
	}

	if a.cfg.HardwarePrecision {
		a.quantize()
	}

	if a.cfg.Obs != nil && a.cfg.ObsEvery > 0 && a.steps%a.cfg.ObsEvery == 0 {
		a.cfg.Obs.Record(obs.Event{
			Kind:   obs.KindSnapshot,
			Step:   int64(a.steps),
			RTable: append([]float64(nil), a.tables.R...),
			NTable: append([]float64(nil), a.tables.N...),
			NTotal: a.tables.NTotal,
			RAvg:   a.rAvg,
		})
	}
}

// policyNextArm dispatches Policy.NextArm with a concrete-type fast
// path for the built-in policies, so slab sweeps inline the selection
// arithmetic instead of paying an interface call per slot. Each case
// calls the same free function the policy's own method delegates to —
// devirtualizing cannot change a single bit of the decision stream.
// User-defined policies take the default interface branch.
func (a *Agent) policyNextArm() int {
	t := a.tables
	switch p := a.cfg.Policy.(type) {
	case *DUCB:
		return argmaxPotential(t, p.C)
	case *UCB:
		return argmaxPotential(t, p.C)
	case *EpsilonGreedy:
		return epsNextArm(t, p.Epsilon, &a.rng)
	case *Thompson:
		return thompsonNextArm(t, p.Sigma, &a.rng)
	case *Static:
		return p.Arm
	default:
		return a.cfg.Policy.NextArm(t, &a.rng)
	}
}

// policyUpdateSelections is the devirtualized Policy.UpdateSelections.
func (a *Agent) policyUpdateSelections(arm int) {
	t := a.tables
	switch p := a.cfg.Policy.(type) {
	case *DUCB:
		discountSelect(t, p.Gamma, arm)
	case *UCB, *EpsilonGreedy, *Static:
		countSelect(t, arm)
	case *Thompson:
		if p.discounting() {
			discountSelect(t, p.Gamma, arm)
		} else {
			countSelect(t, arm)
		}
	default:
		a.cfg.Policy.UpdateSelections(t, arm)
	}
}

// policyUpdateReward is the devirtualized Policy.UpdateReward.
func (a *Agent) policyUpdateReward(arm int, rStep float64) {
	switch a.cfg.Policy.(type) {
	case *DUCB, *UCB, *EpsilonGreedy, *Static, *Thompson:
		foldReward(a.tables, arm, rStep)
	default:
		a.cfg.Policy.UpdateReward(a.tables, arm, rStep)
	}
}

// normalizeReward rescales rStep by the stored round-robin average. A
// degenerate average — zero, negative, or non-finite, as produced by an
// all-miss warmup or a stuck-arm fault during the round-robin phase —
// falls back to the unnormalized reward instead of dividing by it:
// computeNormalization pins rAvg to 1 in those cases, and the explicit
// guard here keeps the fallback even if rAvg is corrupted later (e.g.
// by a fault injector poking exported state).
func (a *Agent) normalizeReward(rStep float64) float64 {
	if !(a.rAvg > 0) || math.IsInf(a.rAvg, 0) {
		return rStep
	}
	return rStep / a.rAvg
}

// computeNormalization derives rAvg from the seeded rTable and rescales it.
// Degenerate (non-positive) averages disable normalization: dividing by
// zero or a negative reward would invert the arm ordering.
func (a *Agent) computeNormalization() {
	sum := 0.0
	for _, r := range a.tables.R {
		sum += r
	}
	avg := sum / float64(a.cfg.Arms)
	if avg <= 0 || math.IsNaN(avg) || math.IsInf(avg, 0) {
		a.rAvg = 1
		a.normalized = true
		return
	}
	a.rAvg = avg
	for i := range a.tables.R {
		a.tables.R[i] /= avg
	}
	a.normalized = true
}

// quantize emulates the hardware storage format: float32 rewards.
func (a *Agent) quantize() {
	for i := range a.tables.R {
		a.tables.R[i] = float64(float32(a.tables.R[i]))
	}
}

// BestArm returns the arm with the highest learned average reward.
func (a *Agent) BestArm() int { return a.tables.BestArm() }

// CurrentArm returns the arm chosen by the most recent Step call.
func (a *Agent) CurrentArm() int { return a.currentArm }

// Rewards returns a copy of the rTable.
func (a *Agent) Rewards() []float64 {
	return append([]float64(nil), a.tables.R...)
}

// Counts returns a copy of the nTable.
func (a *Agent) Counts() []float64 {
	return append([]float64(nil), a.tables.N...)
}

// RAvg returns the normalization constant (0 until the initial round-robin
// phase has completed or if normalization is disabled).
func (a *Agent) RAvg() float64 { return a.rAvg }

// Trace returns the recorded per-step arm choices (nil unless
// Config.RecordTrace is set).
func (a *Agent) Trace() []int { return a.trace }

// SetRecorder attaches (or, with nil, detaches) a telemetry recorder
// after construction, with the given snapshot cadence. It exists so
// registry-built agents (ParseAlgo, NewByName-style factories) can be
// instrumented without widening every constructor signature.
func (a *Agent) SetRecorder(rec obs.Recorder, every int) {
	a.cfg.Obs = rec
	a.cfg.ObsEvery = every
}

// Potentials returns the current per-arm potentials if the policy exposes
// them, else nil.
func (a *Agent) Potentials() []float64 {
	if p, ok := a.cfg.Policy.(Potentialer); ok {
		return p.Potentials(a.tables)
	}
	return nil
}

// Reset returns the agent to its initial state (zeroed tables, re-seeded
// RNG, initial round-robin phase pending). The tables are cleared in
// place — a slab-resident agent keeps its slot.
func (a *Agent) Reset() {
	clear(a.tables.R)
	clear(a.tables.N)
	a.tables.NTotal = 0
	a.rng = *xrand.New(a.cfg.Seed)
	a.steps = 0
	a.currentArm = 0
	a.inStep = false
	a.forced = a.forced[:0]
	a.rAvg = 0
	a.normalized = false
	a.trace = nil
	a.restarts = 0
	a.cfg.Policy.Reset()
	a.queueRoundRobin()
}

// Paper hyperparameters (Table 6). These are the tuned values used by the
// evaluation; callers may of course choose their own.
const (
	// PrefetchGamma is the DUCB forgetting factor for the data
	// prefetching use case.
	PrefetchGamma = 0.999
	// PrefetchC is the DUCB exploration constant for prefetching.
	PrefetchC = 0.04
	// PrefetchArms is the number of prefetching arms (Table 7).
	PrefetchArms = 11
	// SMTGamma is the DUCB forgetting factor for SMT fetch PG selection.
	SMTGamma = 0.975
	// SMTC is the DUCB exploration constant for SMT fetch PG selection.
	SMTC = 0.01
	// SMTArms is the number of pruned fetch PG policy arms (Table 1).
	SMTArms = 6
	// RRRestartProb4Core is the round-robin restart probability used in
	// the 4-core prefetching experiments.
	RRRestartProb4Core = 0.001
)
