package core

import (
	"testing"

	"microbandit/internal/xrand"
)

func TestThompsonNames(t *testing.T) {
	if NewThompson(0.1).Name() != "Thompson" {
		t.Error("stationary name wrong")
	}
	if NewDiscountedThompson(0.1, 0.99).Name() != "D-Thompson" {
		t.Error("discounted name wrong")
	}
	if NewDiscountedThompson(0.1, 1.5).Name() != "Thompson" {
		t.Error("gamma >= 1 must disable discounting")
	}
}

func TestThompsonConverges(t *testing.T) {
	a := MustNew(Config{
		Arms: 5, Policy: NewThompson(0.1), Normalize: true, Seed: 3, RecordTrace: true,
	})
	env := xrand.New(55)
	means := []float64{0.2, 0.9, 0.4, 0.1, 0.5}
	const steps = 2000
	for s := 0; s < steps; s++ {
		arm := a.Step()
		a.Reward(means[arm] + 0.02*env.NormFloat64())
	}
	best := 0
	for _, arm := range a.Trace()[steps/2:] {
		if arm == 1 {
			best++
		}
	}
	if frac := float64(best) / float64(steps/2); frac < 0.85 {
		t.Errorf("best-arm fraction = %.2f, want >= 0.85", frac)
	}
}

func TestDiscountedThompsonAdaptsToPhaseChange(t *testing.T) {
	run := func(p Policy) float64 {
		a := MustNew(Config{Arms: 3, Policy: p, Normalize: true, Seed: 11, RecordTrace: true})
		env := xrand.New(77)
		const half = 3000
		for s := 0; s < 2*half; s++ {
			arm := a.Step()
			means := []float64{0.8, 0.3, 0.2}
			if s >= half {
				means = []float64{0.2, 0.3, 0.8}
			}
			a.Reward(means[arm] + 0.02*env.NormFloat64())
		}
		trace := a.Trace()
		tail := trace[len(trace)*3/4:]
		hit := 0
		for _, arm := range tail {
			if arm == 2 {
				hit++
			}
		}
		return float64(hit) / float64(len(tail))
	}
	discounted := run(NewDiscountedThompson(0.05, 0.995))
	stationary := run(NewThompson(0.05))
	if discounted < 0.8 {
		t.Errorf("discounted Thompson post-change fraction = %.2f", discounted)
	}
	if discounted <= stationary {
		t.Errorf("discounting (%.2f) should beat stationary (%.2f) after a phase change",
			discounted, stationary)
	}
}

func TestThompsonDiscountInvariant(t *testing.T) {
	p := NewDiscountedThompson(0.1, 0.9)
	tb := newTables(3)
	for i := 0; i < 200; i++ {
		p.UpdateSelections(tb, i%3)
		p.UpdateReward(tb, i%3, 1)
		sum := 0.0
		for _, n := range tb.N {
			sum += n
		}
		if d := sum - tb.NTotal; d > 1e-9 || d < -1e-9 {
			t.Fatalf("NTotal out of sync: %v vs %v", tb.NTotal, sum)
		}
	}
}

func TestThompsonExploresUncertainArms(t *testing.T) {
	// An arm with few observations must be sampled sometimes even when
	// its mean is a bit lower.
	p := NewThompson(0.5)
	tb := seededTables([]float64{0.6, 0.55, 0.5})
	tb.N = []float64{500, 500, 1} // arm 2 barely observed
	tb.NTotal = 1001
	rng := xrand.New(7)
	picked := 0
	for i := 0; i < 2000; i++ {
		if p.NextArm(tb, rng) == 2 {
			picked++
		}
	}
	if picked < 100 {
		t.Errorf("uncertain arm sampled only %d/2000 times", picked)
	}
}
