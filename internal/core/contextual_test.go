package core

import (
	"encoding/json"
	"testing"
)

func TestSignaturePacking(t *testing.T) {
	s := MakeSignature(37, 4, 3)
	if s.Phase() != 37 || s.MPKIBand() != 4 || s.BWBand() != 3 {
		t.Fatalf("packed fields round-trip: %v -> p%d m%d b%d", s, s.Phase(), s.MPKIBand(), s.BWBand())
	}
	// Out-of-range inputs are masked, never bleed into other fields.
	s = MakeSignature(0x1ffff, 0x102, 0x203)
	if s.Phase() != 0xffff || s.MPKIBand() != 0x02 || s.BWBand() != 0x03 {
		t.Fatalf("masking: %v -> p%d m%d b%d", s, s.Phase(), s.MPKIBand(), s.BWBand())
	}
	if got := s.String(); got == "" {
		t.Fatal("empty signature string")
	}
}

func TestBanding(t *testing.T) {
	mpki := []struct {
		in   float64
		band int
	}{
		{0, 0}, {0.49, 0}, {0.5, 1}, {1.9, 1}, {2, 2}, {7.9, 2},
		{8, 3}, {31, 3}, {32, 4}, {127, 4}, {128, 5}, {1e9, 5},
		{-1, 0},
	}
	for _, c := range mpki {
		if got := BandMPKI(c.in); got != c.band {
			t.Errorf("BandMPKI(%v) = %d, want %d", c.in, got, c.band)
		}
	}
	bw := []struct {
		in   float64
		band int
	}{{0, 0}, {0.25, 0}, {0.26, 1}, {0.5, 1}, {0.51, 2}, {0.75, 2}, {0.76, 3}, {1, 3}, {2, 3}, {-1, 0}}
	for _, c := range bw {
		if got := BandBW(c.in); got != c.band {
			t.Errorf("BandBW(%v) = %d, want %d", c.in, got, c.band)
		}
	}
}

// contextualReward is a deterministic arm- and context-dependent reward:
// each context has a different best arm, so a context-blind agent cannot
// satisfy both.
func contextualReward(sig Signature, arm, step int) float64 {
	best := int(sig) % 4
	if arm == best {
		return 1.0
	}
	return 0.2 + 0.01*float64((arm+step)%7)
}

// TestContextualAgentMatchesStandalonePerContext interleaves two contexts
// and checks each context's decision stream is bit-identical to a
// standalone Agent with that context's derived seed, fed only its own
// steps — contexts are fully independent.
func TestContextualAgentMatchesStandalonePerContext(t *testing.T) {
	const arms, seed = 4, 99
	ca, err := NewContextualAgent(ContextualConfig{Arms: arms, Algo: "ducb", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sigs := []Signature{MakeSignature(1, 2, 0), MakeSignature(2, 5, 3)}
	ref := make(map[Signature]*Agent)
	refSteps := make(map[Signature]int)
	for _, sig := range sigs {
		cfg, err := AlgoConfig("ducb", arms, contextSeed(seed, sig), false)
		if err != nil {
			t.Fatal(err)
		}
		ref[sig] = MustNew(cfg)
	}
	for i := 0; i < 400; i++ {
		sig := sigs[i%len(sigs)]
		ca.SetContext(sig)
		got := ca.Step()
		want := ref[sig].Step()
		if got != want {
			t.Fatalf("step %d (context %v): arm %d, standalone chose %d", i, sig, got, want)
		}
		r := contextualReward(sig, got, refSteps[sig])
		ca.Reward(r)
		ref[sig].Reward(r)
		refSteps[sig]++
	}
	if ca.Contexts() != 2 || ca.StepsTaken() != 400 {
		t.Fatalf("contexts=%d steps=%d after the run", ca.Contexts(), ca.StepsTaken())
	}
}

func TestContextualRewardLandsInOpeningContext(t *testing.T) {
	ca, err := NewContextualAgent(ContextualConfig{Arms: 2, Algo: "ucb", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := MakeSignature(1, 0, 0), MakeSignature(2, 0, 0)
	ca.SetContext(a)
	ca.Step()
	// A context switch arriving mid-step must not redirect the open reward.
	ca.SetContext(b)
	ca.Reward(5)
	if got := ca.ContextAgent(a).Rewards()[0]; got != 5 {
		t.Fatalf("context %v rTable[0] = %v, want the open step's reward", a, got)
	}
	if ca.ContextAgent(b) != nil {
		t.Fatalf("context %v materialized before its first Step", b)
	}
	// The next step then runs in the switched-to context.
	ca.Step()
	ca.Reward(1)
	if ca.ContextAgent(b) == nil || ca.ContextAgent(b).StepsTaken() != 1 {
		t.Fatal("pending context did not take the next step")
	}
}

func TestContextualProtocolPanics(t *testing.T) {
	ca, err := NewContextualAgent(ContextualConfig{Arms: 2, Algo: "eps", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Reward without Step", func() { ca.Reward(1) })
	ca.Step()
	mustPanic("double Step", func() { ca.Step() })
}

func TestContextualLRUEviction(t *testing.T) {
	ca, err := NewContextualAgent(ContextualConfig{Arms: 2, Algo: "ducb", Seed: 7, MaxContexts: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, s3 := MakeSignature(1, 0, 0), MakeSignature(2, 0, 0), MakeSignature(3, 0, 0)
	step := func(sig Signature, n int) {
		for i := 0; i < n; i++ {
			ca.SetContext(sig)
			ca.Step()
			ca.Reward(1)
		}
	}
	step(s1, 5)
	step(s2, 5)
	step(s1, 1) // s1 is now more recent than s2
	step(s3, 1) // over the bound: s2 (LRU) must go
	if ca.Contexts() != 2 || ca.Evictions() != 1 {
		t.Fatalf("contexts=%d evictions=%d, want 2/1", ca.Contexts(), ca.Evictions())
	}
	if ca.ContextAgent(s2) != nil {
		t.Fatal("LRU context survived eviction")
	}
	if ca.ContextAgent(s1) == nil || ca.ContextAgent(s3) == nil {
		t.Fatal("recently used contexts were evicted")
	}
	// A re-visited evicted context starts fresh (paid exploration again),
	// with the same derived seed as its first life.
	step(s2, 1)
	if got := ca.ContextAgent(s2).StepsTaken(); got != 1 {
		t.Fatalf("revived context has %d steps, want a fresh agent", got)
	}
	if ca.Evictions() != 2 {
		t.Fatalf("reviving s2 should evict again, evictions=%d", ca.Evictions())
	}
}

func TestContextualDefaultContextIsZeroSignature(t *testing.T) {
	// Without SetContext the agent runs a single context keyed by the
	// zero signature — context-free callers get plain bandit behavior.
	ca, err := NewContextualAgent(ContextualConfig{Arms: 3, Algo: "ducb", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AlgoConfig("ducb", 3, contextSeed(11, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	ref := MustNew(cfg)
	for i := 0; i < 100; i++ {
		got, want := ca.Step(), ref.Step()
		if got != want {
			t.Fatalf("step %d: arm %d, want %d", i, got, want)
		}
		r := 0.1 * float64((got*i)%11)
		ca.Reward(r)
		ref.Reward(r)
	}
	if ca.Contexts() != 1 {
		t.Fatalf("context-free run grew %d contexts", ca.Contexts())
	}
}

func TestContextualSnapshotRoundTrip(t *testing.T) {
	for _, algo := range []string{"ctx-ducb", "linucb", "ctx-thompson"} {
		t.Run(algo, func(t *testing.T) {
			base, _ := ContextualBase(algo)
			ca, err := NewContextualAgent(ContextualConfig{Arms: 4, Algo: base, Seed: 42, MaxContexts: 3})
			if err != nil {
				t.Fatal(err)
			}
			sigs := []Signature{MakeSignature(1, 1, 0), MakeSignature(2, 3, 1), MakeSignature(3, 5, 2)}
			for i := 0; i < 123; i++ {
				sig := sigs[i%len(sigs)]
				ca.SetContext(sig)
				arm := ca.Step()
				ca.Reward(contextualReward(sig, arm, i))
			}
			// Leave a step open so the open-context path is exercised too.
			ca.SetContext(sigs[1])
			openArm := ca.Step()

			snap, err := ca.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreContextualAgentJSON(raw)
			if err != nil {
				t.Fatal(err)
			}
			if !restored.StepOpen() {
				t.Fatal("open step lost across restore")
			}
			snap2, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			raw2, err := json.Marshal(snap2)
			if err != nil {
				t.Fatal(err)
			}
			if string(raw) != string(raw2) {
				t.Fatalf("snapshot not byte-stable across restore:\n%s\n%s", raw, raw2)
			}

			// Behavioral identity: both finish the open step and continue.
			ca.Reward(0.5)
			restored.Reward(0.5)
			_ = openArm
			for i := 0; i < 200; i++ {
				sig := sigs[(i*7)%len(sigs)]
				ca.SetContext(sig)
				restored.SetContext(sig)
				got, want := restored.Step(), ca.Step()
				if got != want {
					t.Fatalf("step %d after restore: arm %d, original %d", i, got, want)
				}
				r := contextualReward(sig, want, i)
				ca.Reward(r)
				restored.Reward(r)
			}
		})
	}
}

func TestContextualSnapshotValidation(t *testing.T) {
	ca, err := NewContextualAgent(ContextualConfig{Arms: 3, Algo: "ducb", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ca.SetContext(MakeSignature(i%2, 0, 0))
		ca.Step()
		ca.Reward(1)
	}
	base, err := ca.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*ContextualAgentSnapshot)) error {
		raw, _ := json.Marshal(base)
		var s ContextualAgentSnapshot
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Fatal(err)
		}
		f(&s)
		_, err := RestoreContextualAgent(&s)
		return err
	}
	cases := []struct {
		name string
		f    func(*ContextualAgentSnapshot)
	}{
		{"context arm count disagrees", func(s *ContextualAgentSnapshot) { s.Contexts[0].Agent.Arms = 7 }},
		{"duplicate signature", func(s *ContextualAgentSnapshot) { s.Contexts[1].Sig = s.Contexts[0].Sig }},
		{"unknown base algorithm", func(s *ContextualAgentSnapshot) { s.Algo = "nope" }},
		{"contextual name as base", func(s *ContextualAgentSnapshot) { s.Algo = "ctx-ducb" }},
		{"open context missing", func(s *ContextualAgentSnapshot) { s.InStep = true; s.OpenSig = 0xdead }},
		{"open-step disagreement", func(s *ContextualAgentSnapshot) {
			s.InStep = true
			s.OpenSig = s.Contexts[0].Sig // context 0's agent has no open step
		}},
		{"stray per-context open step", func(s *ContextualAgentSnapshot) { s.Contexts[1].Agent.InStep = true }},
		{"over the context bound", func(s *ContextualAgentSnapshot) { s.MaxContexts = 1 }},
		{"bad version", func(s *ContextualAgentSnapshot) { s.V = 99 }},
	}
	for _, c := range cases {
		if err := mutate(c.f); err == nil {
			t.Errorf("%s: restore accepted a corrupt snapshot", c.name)
		}
	}
	if _, err := RestoreContextualAgent(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := RestoreContextualAgentJSON([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestContextualRegistry(t *testing.T) {
	for _, name := range []string{"ctx-ducb", "linucb", "ctx-thompson"} {
		ctrl, err := ParseAlgo(name, 4, 9, false)
		if err != nil {
			t.Fatalf("ParseAlgo(%s): %v", name, err)
		}
		if _, ok := ctrl.(*ContextualAgent); !ok {
			t.Fatalf("ParseAlgo(%s) = %T, want *ContextualAgent", name, ctrl)
		}
		if _, ok := ctrl.(ContextSetter); !ok {
			t.Fatalf("ParseAlgo(%s) does not accept contexts", name)
		}
		if _, err := AlgoConfig(name, 4, 9, false); err == nil {
			t.Fatalf("AlgoConfig(%s) accepted a contextual name", name)
		}
	}
	ctrl, err := ParseAlgo("thompson", 4, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctrl.(*Agent); !ok {
		t.Fatalf("ParseAlgo(thompson) = %T, want *Agent", ctrl)
	}
	if _, err := NewContextualAgent(ContextualConfig{Arms: 4, Algo: "single", Seed: 1}); err != nil {
		t.Fatalf("heuristic base policies should be allowed: %v", err)
	}
	if _, err := NewContextualAgent(ContextualConfig{Arms: 0, Algo: "ducb"}); err == nil {
		t.Fatal("zero arms accepted")
	}
	if _, err := NewContextualAgent(ContextualConfig{Arms: 2, Algo: "ducb", MaxContexts: -1}); err == nil {
		t.Fatal("negative context bound accepted")
	}
}
