package core

// This file implements the multi-agent exploration coordination the paper
// leaves as future work (§7.2.3 / §8, citing SOSA): when several Bandits
// run concurrently — one per core — simultaneous round-robin restarts make
// every agent's reward noisy at once, so cores can mis-attribute
// interference to the arms they are testing. A Coordinator serializes the
// §4.3 restarts: an agent may only begin a restart sweep when no other
// registered agent is mid-sweep.

// Coordinator arbitrates exploration across a set of agents. It is not
// safe for concurrent use; the multi-core simulation is single-threaded,
// like the hardware bus that would carry this signal.
type Coordinator struct {
	agents []*Agent
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator { return &Coordinator{} }

// Add registers an agent and installs the coordination hook into it. It
// must be called before the agent takes steps.
func (c *Coordinator) Add(a *Agent) {
	c.agents = append(c.agents, a)
	a.restartPermission = c.permissionFor(a)
}

// permissionFor builds the restart gate for one agent: allowed only when
// no sibling is currently sweeping.
func (c *Coordinator) permissionFor(self *Agent) func() bool {
	return func() bool {
		for _, a := range c.agents {
			if a != self && a.RestartActive() {
				return false
			}
		}
		return true
	}
}

// Busy reports whether any registered agent is mid-sweep.
func (c *Coordinator) Busy() bool {
	for _, a := range c.agents {
		if a.RestartActive() {
			return true
		}
	}
	return false
}
