package core

import (
	"testing"

	"microbandit/internal/xrand"
)

func twoLows(t *testing.T, arms int) []*Agent {
	t.Helper()
	mk := func(gamma float64, seed uint64) *Agent {
		return MustNew(Config{
			Arms: arms, Policy: NewDUCB(0.05, gamma), Normalize: true, Seed: seed,
		})
	}
	return []*Agent{mk(0.9, 1), mk(0.999, 2)}
}

func TestMetaAgentValidation(t *testing.T) {
	if _, err := NewMetaAgent(Config{Policy: NewUCB(0.1)}, nil); err == nil {
		t.Error("accepted zero low-level agents")
	}
	lows := []*Agent{
		MustNew(Config{Arms: 3, Policy: NewUCB(0.1), Seed: 1}),
		MustNew(Config{Arms: 4, Policy: NewUCB(0.1), Seed: 2}),
	}
	if _, err := NewMetaAgent(Config{Policy: NewUCB(0.1)}, lows); err == nil {
		t.Error("accepted mismatched arm counts")
	}
	if _, err := NewMetaAgent(Config{}, twoLows(t, 3)); err == nil {
		t.Error("accepted nil high-level policy")
	}
}

func TestMetaAgentProtocol(t *testing.T) {
	m := MustNewMetaAgent(Config{Policy: NewDUCB(0.05, 0.99), Normalize: true, Seed: 3},
		twoLows(t, 4))
	if m.Arms() != 4 || m.Levels() != 2 {
		t.Fatalf("Arms/Levels = %d/%d", m.Arms(), m.Levels())
	}
	if !m.InInitialRR() {
		t.Error("fresh meta agent not in RR")
	}
	arm := m.Step()
	if arm < 0 || arm >= 4 {
		t.Fatalf("arm %d out of range", arm)
	}
	assertPanics(t, func() { m.Step() })
	m.Reward(1)
	assertPanics(t, func() { m.Reward(1) })
}

func TestMetaAgentConvergesAndSelectsBetterLevel(t *testing.T) {
	// Environment with a phase change every 300 steps: the low-gamma
	// (fast-forgetting) low-level agent should be rated better by the
	// high-level bandit than an effectively-static one.
	fast := MustNew(Config{Arms: 3, Policy: NewDUCB(0.05, 0.95), Normalize: true, Seed: 1})
	slow := MustNew(Config{Arms: 3, Policy: NewDUCB(0.05, 0.9999999), Normalize: true, Seed: 2})
	m := MustNewMetaAgent(Config{Policy: NewDUCB(0.05, 0.99), Normalize: true, Seed: 3},
		[]*Agent{fast, slow})
	env := xrand.New(5)
	best := 0
	total := 0.0
	for step := 0; step < 6000; step++ {
		if step%300 == 0 {
			best = (best + 1) % 3
		}
		arm := m.Step()
		r := 0.2
		if arm == best {
			r = 0.9
		}
		m.Reward(r + 0.02*env.NormFloat64())
		total += r
	}
	if m.BestLevel() != 0 {
		t.Errorf("high-level bandit prefers level %d, want 0 (fast-forgetting)", m.BestLevel())
	}
	if avg := total / 6000; avg < 0.45 {
		t.Errorf("meta agent avg reward %.3f too low", avg)
	}
}

func TestMetaAgentReset(t *testing.T) {
	m := MustNewMetaAgent(Config{Policy: NewUCB(0.1), Seed: 1}, twoLows(t, 3))
	for i := 0; i < 50; i++ {
		m.Step()
		m.Reward(0.5)
	}
	m.Reset()
	if !m.InInitialRR() {
		t.Error("Reset did not restore RR phase")
	}
	if m.CurrentLevel() != 0 {
		t.Error("Reset did not clear current level")
	}
	m.Step()
	m.Reward(1)
}

func TestNewDUCBSweepMeta(t *testing.T) {
	if _, err := NewDUCBSweepMeta(4, [][2]float64{{0.05, 0.99}}, true, 1); err == nil {
		t.Error("accepted single pair")
	}
	m, err := NewDUCBSweepMeta(4, [][2]float64{{0.05, 0.9}, {0.05, 0.999}, {0.1, 0.99}}, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels() != 3 || m.Arms() != 4 {
		t.Errorf("Levels/Arms = %d/%d", m.Levels(), m.Arms())
	}
	// It must work as a Controller end to end.
	var c Controller = m
	for i := 0; i < 200; i++ {
		arm := c.Step()
		c.Reward(float64(arm))
	}
}

func TestMetaAgentDeterministic(t *testing.T) {
	run := func() []int {
		m, err := NewDUCBSweepMeta(3, [][2]float64{{0.05, 0.9}, {0.05, 0.999}}, true, 7)
		if err != nil {
			t.Fatal(err)
		}
		env := xrand.New(9)
		var picks []int
		for i := 0; i < 300; i++ {
			arm := m.Step()
			picks = append(picks, arm)
			m.Reward(env.Float64() * float64(arm+1))
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
