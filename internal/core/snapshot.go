package core

import (
	"encoding/json"
	"fmt"
)

// This file is the agent checkpoint codec: a versioned, JSON-stable
// snapshot of everything an Agent (or MetaAgent) needs to continue a
// decision loop after a process restart — learned tables, RNG state,
// pending forced arms, normalization constant, and policy mode state.
//
// The contract, enforced by tests, is twofold:
//
//   - Behavioral identity: Restore(Snapshot(a)) followed by n Step/Reward
//     pairs produces exactly the arm sequence a itself would have
//     produced.
//   - Byte identity: json.Marshal(Restore(s).Snapshot()) equals
//     json.Marshal(s) for every snapshot s produced by Snapshot, so
//     checkpoint files are stable across save/load cycles.
//
// Decoding is defensive: malformed JSON, truncated input, unknown
// versions, and internally inconsistent snapshots produce typed errors,
// never panics — snapshots cross process and trust boundaries (the serve
// subsystem accepts them from disk).

// SnapshotVersion is the current snapshot schema version. Restore accepts
// exactly this version; anything else is a *VersionError so an operator
// sees "old checkpoint" instead of silently corrupted state.
const SnapshotVersion = 1

// VersionError reports a snapshot whose schema version this build does
// not understand.
type VersionError struct {
	Got, Want int
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("core: snapshot version %d (this build reads version %d)", e.Got, e.Want)
}

// SnapshotError reports a structurally invalid snapshot (inconsistent
// table sizes, out-of-range arms, unknown policy kinds, ...).
type SnapshotError struct {
	Reason string
}

// Error implements error.
func (e *SnapshotError) Error() string { return "core: invalid snapshot: " + e.Reason }

func snapErrf(format string, args ...any) error {
	return &SnapshotError{Reason: fmt.Sprintf(format, args...)}
}

// Policy snapshot kinds, one per snapshotable Policy implementation.
const (
	policyEps      = "eps"
	policyUCB      = "ucb"
	policyDUCB     = "ducb"
	policyStatic   = "static"
	policySingle   = "single"
	policyPeriodic = "periodic"
	policyThompson = "thompson"
)

// movingAvgState is the serialized form of a Periodic moving-average
// buffer. Fields carry no omitempty so the encoded bytes are a pure
// function of the state.
type movingAvgState struct {
	Buf  []float64 `json:"buf"`
	Next int       `json:"next"`
	N    int       `json:"n"`
	Sum  float64   `json:"sum"`
}

// PolicySnapshot captures one Policy: its kind, hyperparameters, and any
// internal mode state (Single's locked arm, Periodic's sweep position and
// moving-average buffers). Hyperparameter fields not used by a kind stay
// zero and are omitted.
type PolicySnapshot struct {
	Kind string `json:"kind"`

	// Hyperparameters (which apply depends on Kind).
	Epsilon float64 `json:"epsilon,omitempty"` // eps
	C       float64 `json:"c,omitempty"`       // ucb, ducb
	Gamma   float64 `json:"gamma,omitempty"`   // ducb, thompson
	Sigma   float64 `json:"sigma,omitempty"`   // thompson
	Arm     int     `json:"arm,omitempty"`     // static

	// Periodic configuration.
	ExploitSteps int `json:"exploit_steps,omitempty"`
	Window       int `json:"window,omitempty"`

	// Mode state. Chosen is Single's locked arm (-1 while unchosen);
	// the Sweep* fields and Avg buffers are Periodic's position.
	Chosen      int              `json:"chosen,omitempty"`
	SweepIdx    int              `json:"sweep_idx,omitempty"`
	ExploitLeft int              `json:"exploit_left,omitempty"`
	ExploitArm  int              `json:"exploit_arm,omitempty"`
	SweepPrimed bool             `json:"sweep_primed,omitempty"`
	Avg         []movingAvgState `json:"avg,omitempty"`
}

// snapshotPolicy captures p, or returns a *SnapshotError for policy
// implementations the codec does not know (user-defined policies must be
// reconstructed by the caller).
func snapshotPolicy(p Policy) (PolicySnapshot, error) {
	switch p := p.(type) {
	case *EpsilonGreedy:
		return PolicySnapshot{Kind: policyEps, Epsilon: p.Epsilon}, nil
	case *UCB:
		return PolicySnapshot{Kind: policyUCB, C: p.C}, nil
	case *DUCB:
		return PolicySnapshot{Kind: policyDUCB, C: p.C, Gamma: p.Gamma}, nil
	case *Static:
		return PolicySnapshot{Kind: policyStatic, Arm: p.Arm}, nil
	case *Thompson:
		return PolicySnapshot{Kind: policyThompson, Sigma: p.Sigma, Gamma: p.Gamma}, nil
	case *Single:
		return PolicySnapshot{Kind: policySingle, Chosen: p.chosen}, nil
	case *Periodic:
		s := PolicySnapshot{
			Kind:         policyPeriodic,
			ExploitSteps: p.ExploitSteps,
			Window:       p.Window,
			SweepIdx:     p.sweepIdx,
			ExploitLeft:  p.exploitLeft,
			ExploitArm:   p.exploitArm,
			SweepPrimed:  p.sweepPrimed,
		}
		for i := range p.avg {
			m := &p.avg[i]
			s.Avg = append(s.Avg, movingAvgState{
				Buf:  append([]float64(nil), m.buf...),
				Next: m.next, N: m.n, Sum: m.sum,
			})
		}
		return s, nil
	default:
		return PolicySnapshot{}, snapErrf("policy %T is not snapshotable", p)
	}
}

// restorePolicy rebuilds the Policy captured in s, validating mode state
// against the agent's arm count.
func restorePolicy(s PolicySnapshot, arms int) (Policy, error) {
	switch s.Kind {
	case policyEps:
		return NewEpsilonGreedy(s.Epsilon), nil
	case policyUCB:
		return NewUCB(s.C), nil
	case policyDUCB:
		return NewDUCB(s.C, s.Gamma), nil
	case policyStatic:
		if s.Arm < 0 || s.Arm >= arms {
			return nil, snapErrf("static arm %d outside [0,%d)", s.Arm, arms)
		}
		return NewStatic(s.Arm), nil
	case policyThompson:
		return &Thompson{Sigma: s.Sigma, Gamma: s.Gamma}, nil
	case policySingle:
		if s.Chosen < -1 || s.Chosen >= arms {
			return nil, snapErrf("single chosen arm %d outside [-1,%d)", s.Chosen, arms)
		}
		p := NewSingle()
		p.chosen = s.Chosen
		return p, nil
	case policyPeriodic:
		p := NewPeriodic(s.ExploitSteps, s.Window)
		if s.SweepIdx < -1 || s.SweepIdx > arms {
			return nil, snapErrf("periodic sweep index %d outside [-1,%d]", s.SweepIdx, arms)
		}
		if s.ExploitArm < 0 || s.ExploitArm >= arms {
			return nil, snapErrf("periodic exploit arm %d outside [0,%d)", s.ExploitArm, arms)
		}
		if len(s.Avg) != 0 && len(s.Avg) != arms {
			return nil, snapErrf("periodic has %d moving averages, want 0 or %d", len(s.Avg), arms)
		}
		p.sweepIdx = s.SweepIdx
		p.exploitLeft = s.ExploitLeft
		p.exploitArm = s.ExploitArm
		p.sweepPrimed = s.SweepPrimed
		for _, m := range s.Avg {
			if len(m.Buf) != p.Window {
				return nil, snapErrf("periodic moving-average buffer has %d slots, want %d", len(m.Buf), p.Window)
			}
			if m.Next < 0 || m.Next >= len(m.Buf) || m.N < 0 || m.N > len(m.Buf) {
				return nil, snapErrf("periodic moving-average cursor out of range")
			}
			p.avg = append(p.avg, movingAvg{
				buf:  append([]float64(nil), m.Buf...),
				next: m.Next, n: m.N, sum: m.Sum,
			})
		}
		return p, nil
	default:
		return nil, snapErrf("unknown policy kind %q", s.Kind)
	}
}

// AgentSnapshot is the full serialized state of an Agent. Table and trace
// slices are deep copies; mutating the snapshot never aliases live agent
// state. The runtime wiring that cannot meaningfully cross a process
// boundary — the telemetry Recorder and a Coordinator's restart-permission
// hook — is deliberately absent: re-attach both after Restore.
type AgentSnapshot struct {
	V int `json:"v"`

	// Config.
	Arms              int            `json:"arms"`
	Policy            PolicySnapshot `json:"policy"`
	Normalize         bool           `json:"normalize,omitempty"`
	RRRestartProb     float64        `json:"rr_restart_prob,omitempty"`
	Seed              uint64         `json:"seed"`
	RecordTrace       bool           `json:"record_trace,omitempty"`
	HardwarePrecision bool           `json:"hardware_precision,omitempty"`

	// Learned state.
	R      []float64 `json:"rtable"`
	N      []float64 `json:"ntable"`
	NTotal float64   `json:"ntotal"`

	// Loop state.
	Steps      int       `json:"steps"`
	CurrentArm int       `json:"current_arm"`
	InStep     bool      `json:"in_step,omitempty"`
	Forced     []int     `json:"forced,omitempty"`
	RAvg       float64   `json:"ravg,omitempty"`
	Normalized bool      `json:"normalized,omitempty"`
	Restarts   int       `json:"restarts,omitempty"`
	Trace      []int     `json:"trace,omitempty"`
	RNG        [4]uint64 `json:"rng"`
}

// Snapshot captures the agent's complete state. It fails only when the
// configured policy is not one of this package's implementations.
func (a *Agent) Snapshot() (*AgentSnapshot, error) {
	ps, err := snapshotPolicy(a.cfg.Policy)
	if err != nil {
		return nil, err
	}
	return &AgentSnapshot{
		V:                 SnapshotVersion,
		Arms:              a.cfg.Arms,
		Policy:            ps,
		Normalize:         a.cfg.Normalize,
		RRRestartProb:     a.cfg.RRRestartProb,
		Seed:              a.cfg.Seed,
		RecordTrace:       a.cfg.RecordTrace,
		HardwarePrecision: a.cfg.HardwarePrecision,
		R:                 append([]float64(nil), a.tables.R...),
		N:                 append([]float64(nil), a.tables.N...),
		NTotal:            a.tables.NTotal,
		Steps:             a.steps,
		CurrentArm:        a.currentArm,
		InStep:            a.inStep,
		Forced:            append([]int(nil), a.forced...),
		RAvg:              a.rAvg,
		Normalized:        a.normalized,
		Restarts:          a.restarts,
		Trace:             append([]int(nil), a.trace...),
		RNG:               a.rng.State(),
	}, nil
}

// validate checks the snapshot's internal consistency so Restore can
// install its fields without further bounds checks.
func (s *AgentSnapshot) validate() error {
	if s.V != SnapshotVersion {
		return &VersionError{Got: s.V, Want: SnapshotVersion}
	}
	if s.Arms < 1 {
		return snapErrf("agent needs at least 1 arm, got %d", s.Arms)
	}
	if len(s.R) != s.Arms || len(s.N) != s.Arms {
		return snapErrf("table sizes (%d rewards, %d counts) do not match %d arms",
			len(s.R), len(s.N), s.Arms)
	}
	if s.Steps < 0 || s.Restarts < 0 {
		return snapErrf("negative step or restart count")
	}
	if s.CurrentArm < 0 || s.CurrentArm >= s.Arms {
		return snapErrf("current arm %d outside [0,%d)", s.CurrentArm, s.Arms)
	}
	for _, f := range s.Forced {
		if f < 0 || f >= s.Arms {
			return snapErrf("forced arm %d outside [0,%d)", f, s.Arms)
		}
	}
	for _, t := range s.Trace {
		if t < 0 || t >= s.Arms {
			return snapErrf("traced arm %d outside [0,%d)", t, s.Arms)
		}
	}
	if s.RRRestartProb < 0 || s.RRRestartProb > 1 {
		return snapErrf("rr restart probability %v outside [0,1]", s.RRRestartProb)
	}
	return nil
}

// RestoreAgent rebuilds an Agent from a snapshot. The restored agent
// continues exactly where the snapshot was taken: the same future arm
// choices, the same RNG stream, the same pending protocol state (a
// snapshot taken between Step and Reward restores with the step still
// open). Telemetry recorders and coordinator hooks are not part of the
// snapshot; re-attach them afterwards.
func RestoreAgent(s *AgentSnapshot) (*Agent, error) {
	if s == nil {
		return nil, snapErrf("nil snapshot")
	}
	sl, err := NewSlab(max(s.Arms, 1), 1)
	if err != nil {
		return nil, err
	}
	a, _, err := RestoreAgentIn(sl, s)
	return a, err
}

// RestoreAgentIn rebuilds an agent from a snapshot inside an existing
// slab, returning it with its slot, so a server restoring thousands of
// sessions lands them on contiguous slabs instead of scattered heap
// objects. The continuation guarantees are RestoreAgent's.
func RestoreAgentIn(sl *Slab, s *AgentSnapshot) (*Agent, int, error) {
	if s == nil {
		return nil, -1, snapErrf("nil snapshot")
	}
	if err := s.validate(); err != nil {
		return nil, -1, err
	}
	policy, err := restorePolicy(s.Policy, s.Arms)
	if err != nil {
		return nil, -1, err
	}
	a, slot, err := sl.Alloc(Config{
		Arms:              s.Arms,
		Policy:            policy,
		Normalize:         s.Normalize,
		RRRestartProb:     s.RRRestartProb,
		Seed:              s.Seed,
		RecordTrace:       s.RecordTrace,
		HardwarePrecision: s.HardwarePrecision,
	})
	if err != nil {
		return nil, -1, err
	}
	a.loadState(s)
	return a, slot, nil
}

// loadState installs a validated snapshot's dynamic state over a freshly
// constructed agent with the matching config.
func (a *Agent) loadState(s *AgentSnapshot) {
	copy(a.tables.R, s.R)
	copy(a.tables.N, s.N)
	a.tables.NTotal = s.NTotal
	a.rng.SetState(s.RNG)
	a.steps = s.Steps
	a.currentArm = s.CurrentArm
	a.inStep = s.InStep
	a.forced = append(a.forced[:0], s.Forced...)
	a.rAvg = s.RAvg
	a.normalized = s.Normalized
	a.trace = append([]int(nil), s.Trace...)
	a.restarts = s.Restarts
}

// RestoreAgentJSON decodes a JSON-encoded AgentSnapshot and restores the
// agent. Malformed or truncated input returns a *SnapshotError wrapping
// the decode failure; it never panics.
func RestoreAgentJSON(data []byte) (*Agent, error) {
	var s AgentSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, snapErrf("decode: %v", err)
	}
	return RestoreAgent(&s)
}

// MetaAgentSnapshot is the full serialized state of a MetaAgent: the
// high-level selector, every low-level agent, and the switch state.
type MetaAgentSnapshot struct {
	V       int              `json:"v"`
	High    *AgentSnapshot   `json:"high"`
	Lows    []*AgentSnapshot `json:"lows"`
	Current int              `json:"current"`
	InStep  bool             `json:"in_step,omitempty"`
	Started bool             `json:"started,omitempty"`
}

// Snapshot captures the meta agent's complete state.
func (m *MetaAgent) Snapshot() (*MetaAgentSnapshot, error) {
	high, err := m.high.Snapshot()
	if err != nil {
		return nil, err
	}
	lows := make([]*AgentSnapshot, len(m.low))
	for i, l := range m.low {
		if lows[i], err = l.Snapshot(); err != nil {
			return nil, err
		}
	}
	return &MetaAgentSnapshot{
		V:       SnapshotVersion,
		High:    high,
		Lows:    lows,
		Current: m.current,
		InStep:  m.inStep,
		Started: m.started,
	}, nil
}

// RestoreMetaAgent rebuilds a MetaAgent from a snapshot, with the same
// continuation guarantees as RestoreAgent.
func RestoreMetaAgent(s *MetaAgentSnapshot) (*MetaAgent, error) {
	if s == nil {
		return nil, snapErrf("nil snapshot")
	}
	if s.V != SnapshotVersion {
		return nil, &VersionError{Got: s.V, Want: SnapshotVersion}
	}
	if s.High == nil {
		return nil, snapErrf("meta agent snapshot has no high-level agent")
	}
	if len(s.Lows) < 2 {
		return nil, snapErrf("meta agent snapshot has %d low-level agents, need at least 2", len(s.Lows))
	}
	if s.Current < 0 || s.Current >= len(s.Lows) {
		return nil, snapErrf("meta agent current level %d outside [0,%d)", s.Current, len(s.Lows))
	}
	high, err := RestoreAgent(s.High)
	if err != nil {
		return nil, fmt.Errorf("high level: %w", err)
	}
	if high.Arms() != len(s.Lows) {
		return nil, snapErrf("high level has %d arms, want %d low-level agents", high.Arms(), len(s.Lows))
	}
	lows := make([]*Agent, len(s.Lows))
	arms := -1
	for i, ls := range s.Lows {
		if lows[i], err = RestoreAgent(ls); err != nil {
			return nil, fmt.Errorf("low level %d: %w", i, err)
		}
		if arms == -1 {
			arms = lows[i].Arms()
		} else if lows[i].Arms() != arms {
			return nil, snapErrf("low-level agent %d has %d arms, want %d", i, lows[i].Arms(), arms)
		}
	}
	return &MetaAgent{
		high:    high,
		low:     lows,
		current: s.Current,
		inStep:  s.InStep,
		started: s.Started,
	}, nil
}

// RestoreMetaAgentJSON decodes a JSON-encoded MetaAgentSnapshot and
// restores the meta agent, with RestoreAgentJSON's error contract.
func RestoreMetaAgentJSON(data []byte) (*MetaAgent, error) {
	var s MetaAgentSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, snapErrf("decode: %v", err)
	}
	return RestoreMetaAgent(&s)
}
