package core

import (
	"math"

	"microbandit/internal/xrand"
)

// Single is the one-shot exploration heuristic of §7.1: after the initial
// round-robin phase it locks onto the arm that performed best during that
// phase and never explores again. It has the lowest minimum performance of
// all methods in the paper because a single unlucky sample can pin a bad
// arm forever.
type Single struct {
	chosen int
}

// NewSingle returns a Single heuristic.
func NewSingle() *Single { return &Single{chosen: -1} }

// Name implements Policy.
func (p *Single) Name() string { return "Single" }

// NextArm implements Policy: the first main-loop call snapshots the best
// round-robin arm; every later call returns it unchanged.
func (p *Single) NextArm(t *Tables, _ *xrand.Rand) int {
	if p.chosen < 0 {
		p.chosen = t.BestArm()
	}
	return p.chosen
}

// UpdateSelections implements Policy.
func (p *Single) UpdateSelections(t *Tables, arm int) {
	t.N[arm]++
	t.NTotal++
}

// UpdateReward implements Policy. The running average is maintained for
// observability only — Single never revisits its choice.
func (p *Single) UpdateReward(t *Tables, arm int, rStep float64) {
	n := math.Max(t.N[arm], 1)
	t.R[arm] += (rStep - t.R[arm]) / n
}

// Reset implements Policy.
func (p *Single) Reset() { p.chosen = -1 }

// Periodic is the periodic exploration heuristic of §7.1, inspired by the
// POWER7 adaptive prefetcher: it alternates between round-robin sweeps of
// all arms and exploitation of the arm with the best moving-average reward.
// The moving-average buffer smooths noisy step rewards, as in the POWER7
// design. Its exploration is non-decaying, which is why the paper finds it
// inferior to the confidence-bound algorithms.
type Periodic struct {
	// ExploitSteps is the length of each exploitation phase, in bandit
	// steps, between consecutive round-robin sweeps.
	ExploitSteps int
	// Window is the per-arm moving-average buffer length.
	Window int

	sweepIdx    int // next arm in the current sweep; == -1 when exploiting
	exploitLeft int
	exploitArm  int
	avg         []movingAvg
	sweepPrimed bool
}

// NewPeriodic returns a Periodic heuristic that exploits for exploitSteps
// steps between sweeps and smooths rewards over a window of maWindow
// samples per arm. Non-positive arguments are clamped to 1.
func NewPeriodic(exploitSteps, maWindow int) *Periodic {
	if exploitSteps < 1 {
		exploitSteps = 1
	}
	if maWindow < 1 {
		maWindow = 1
	}
	return &Periodic{ExploitSteps: exploitSteps, Window: maWindow, sweepIdx: 0}
}

// Name implements Policy.
func (p *Periodic) Name() string { return "Periodic" }

// ensure sizes the moving-average buffers to the table's arm count.
func (p *Periodic) ensure(arms int) {
	if len(p.avg) == arms {
		return
	}
	p.avg = make([]movingAvg, arms)
	for i := range p.avg {
		p.avg[i].init(p.Window)
	}
}

// NextArm implements Policy: sweep all arms round-robin, then exploit the
// best moving average for ExploitSteps steps, repeat.
func (p *Periodic) NextArm(t *Tables, _ *xrand.Rand) int {
	p.ensure(t.Arms())
	if !p.sweepPrimed {
		// Seed the moving averages with the round-robin rTable values
		// the Agent collected before the main loop began.
		for i := range p.avg {
			p.avg[i].push(t.R[i])
		}
		p.sweepPrimed = true
	}
	if p.sweepIdx >= 0 {
		arm := p.sweepIdx
		p.sweepIdx++
		if p.sweepIdx == t.Arms() {
			p.sweepIdx = -1
			p.exploitLeft = p.ExploitSteps
			p.exploitArm = p.bestAvg()
		}
		return arm
	}
	if p.exploitLeft > 0 {
		p.exploitLeft--
		if p.exploitLeft == 0 {
			p.sweepIdx = 0 // next call starts a new sweep
		}
		return p.exploitArm
	}
	// Defensive: restart a sweep.
	p.sweepIdx = 1
	return 0
}

// bestAvg returns the arm with the highest moving-average reward.
func (p *Periodic) bestAvg() int {
	best, bestV := 0, math.Inf(-1)
	for i := range p.avg {
		if v := p.avg[i].value(); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// UpdateSelections implements Policy.
func (p *Periodic) UpdateSelections(t *Tables, arm int) {
	t.N[arm]++
	t.NTotal++
}

// UpdateReward implements Policy: feed the moving-average buffer and the
// observable running average.
func (p *Periodic) UpdateReward(t *Tables, arm int, rStep float64) {
	p.ensure(t.Arms())
	p.avg[arm].push(rStep)
	n := math.Max(t.N[arm], 1)
	t.R[arm] += (rStep - t.R[arm]) / n
}

// Reset implements Policy.
func (p *Periodic) Reset() {
	p.sweepIdx = 0
	p.exploitLeft = 0
	p.exploitArm = 0
	p.avg = nil
	p.sweepPrimed = false
}

// movingAvg is a tiny fixed-window moving average. core keeps its own copy
// rather than importing the stats package so the agent remains a leaf
// dependency a downstream user can vendor in isolation.
type movingAvg struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

func (m *movingAvg) init(window int) { m.buf = make([]float64, window) }

func (m *movingAvg) push(x float64) {
	if m.n == len(m.buf) {
		m.sum -= m.buf[m.next]
	} else {
		m.n++
	}
	m.buf[m.next] = x
	m.sum += x
	m.next = (m.next + 1) % len(m.buf)
}

func (m *movingAvg) value() float64 {
	if m.n == 0 {
		return math.Inf(-1)
	}
	return m.sum / float64(m.n)
}

// Compile-time interface checks.
var (
	_ Policy = (*Single)(nil)
	_ Policy = (*Periodic)(nil)
)
