package core

import (
	"math"

	"microbandit/internal/xrand"
)

// The free functions below are the single implementation of every
// built-in policy's arithmetic. Each Policy method delegates to one of
// them, and Agent's devirtualized fast path (core.go) calls the same
// functions directly, so the two dispatch routes are bit-identical by
// construction rather than by testing alone.

// countSelect is the shared updSels of the non-discounting policies:
// n_arm++ and n_total++.
func countSelect(t *Tables, arm int) {
	t.N[arm]++
	t.NTotal++
}

// discountSelect is DUCB's updSels (Table 3c): discount every n_i by γ,
// then increment the selected arm. NTotal is maintained as the sum of
// the discounted counts.
func discountSelect(t *Tables, gamma float64, arm int) {
	total := 0.0
	for i := range t.N {
		t.N[i] *= gamma
		total += t.N[i]
	}
	t.N[arm]++
	t.NTotal = total + 1
}

// foldReward is the shared updRew: fold r_step into the running average,
// r_arm += (r_step - r_arm) / n_arm.
func foldReward(t *Tables, arm int, rStep float64) {
	n := math.Max(t.N[arm], 1)
	t.R[arm] += (rStep - t.R[arm]) / n
}

// epsNextArm is ε-Greedy's nextArm: argmax r_i with probability 1-ε,
// else a uniformly random arm.
func epsNextArm(t *Tables, epsilon float64, rng *xrand.Rand) int {
	if rng.Bool(epsilon) {
		return rng.Intn(t.Arms())
	}
	return t.BestArm()
}

// EpsilonGreedy is the simplest MAB algorithm (Table 3a): with probability
// 1-ε it exploits the arm with the highest average reward, with
// probability ε it explores a uniformly random arm. Exploration is
// randomized and non-decaying — the two shortcomings UCB addresses.
type EpsilonGreedy struct {
	// Epsilon is the exploration probability in [0,1].
	Epsilon float64
}

// NewEpsilonGreedy returns an ε-Greedy policy.
func NewEpsilonGreedy(epsilon float64) *EpsilonGreedy {
	return &EpsilonGreedy{Epsilon: epsilon}
}

// Name implements Policy.
func (p *EpsilonGreedy) Name() string { return "eps-Greedy" }

// NextArm implements Policy: argmax r_i with probability 1-ε, else random.
func (p *EpsilonGreedy) NextArm(t *Tables, rng *xrand.Rand) int {
	return epsNextArm(t, p.Epsilon, rng)
}

// UpdateSelections implements Policy: n_arm++ and n_total++.
func (p *EpsilonGreedy) UpdateSelections(t *Tables, arm int) {
	countSelect(t, arm)
}

// UpdateReward implements Policy: fold r_step into the running average,
// r_arm += (r_step - r_arm) / n_arm.
func (p *EpsilonGreedy) UpdateReward(t *Tables, arm int, rStep float64) {
	foldReward(t, arm, rStep)
}

// Reset implements Policy (ε-Greedy is stateless).
func (p *EpsilonGreedy) Reset() {}

// UCB is the Upper Confidence Bound algorithm (Table 3b). The next arm is
// the one with the highest potential r_i + c*sqrt(ln(n_total)/n_i): arms
// that have been tried rarely receive a large exploration bonus, and the
// bonus decays as evidence accumulates, fixing ε-Greedy's randomized,
// non-decaying exploration.
type UCB struct {
	// C is the exploration constant.
	C float64
}

// NewUCB returns a UCB policy with exploration constant c.
func NewUCB(c float64) *UCB { return &UCB{C: c} }

// Name implements Policy.
func (p *UCB) Name() string { return "UCB" }

// Potentials returns r_i + c*sqrt(ln(n_total)/n_i) for every arm.
func (p *UCB) Potentials(t *Tables) []float64 {
	return ucbPotentials(t, p.C)
}

func ucbPotentials(t *Tables, c float64) []float64 {
	out := make([]float64, t.Arms())
	lnTotal := math.Log(math.Max(t.NTotal, 1))
	for i := range out {
		n := math.Max(t.N[i], minCount)
		out[i] = t.R[i] + c*math.Sqrt(lnTotal/n)
	}
	return out
}

func argmaxPotential(t *Tables, c float64) int {
	best, bestP := 0, math.Inf(-1)
	lnTotal := math.Log(math.Max(t.NTotal, 1))
	for i := range t.R {
		n := math.Max(t.N[i], minCount)
		p := t.R[i] + c*math.Sqrt(lnTotal/n)
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// NextArm implements Policy: the arm with the highest potential.
func (p *UCB) NextArm(t *Tables, _ *xrand.Rand) int {
	return argmaxPotential(t, p.C)
}

// UpdateSelections implements Policy (same as ε-Greedy).
func (p *UCB) UpdateSelections(t *Tables, arm int) {
	countSelect(t, arm)
}

// UpdateReward implements Policy (same as ε-Greedy).
func (p *UCB) UpdateReward(t *Tables, arm int, rStep float64) {
	foldReward(t, arm, rStep)
}

// Reset implements Policy (UCB is stateless).
func (p *UCB) Reset() {}

// DUCB is the Discounted Upper Confidence Bound algorithm (Table 3c),
// the paper's choice for the Bandit agent. It shares nextArm and updRew
// with UCB but discounts all selection counts by γ < 1 in updSels, so the
// agent forgets stale evidence: rarely selected arms regain exploration
// bonus over time and the agent adapts to non-stationary workloads
// (program phase changes).
type DUCB struct {
	// C is the exploration constant.
	C float64
	// Gamma is the forgetting factor in (0,1).
	Gamma float64
}

// NewDUCB returns a DUCB policy with exploration constant c and forgetting
// factor gamma.
func NewDUCB(c, gamma float64) *DUCB { return &DUCB{C: c, Gamma: gamma} }

// Name implements Policy.
func (p *DUCB) Name() string { return "DUCB" }

// Potentials returns the per-arm UCB potentials under discounted counts.
func (p *DUCB) Potentials(t *Tables) []float64 {
	return ucbPotentials(t, p.C)
}

// NextArm implements Policy: same selection rule as UCB.
func (p *DUCB) NextArm(t *Tables, _ *xrand.Rand) int {
	return argmaxPotential(t, p.C)
}

// UpdateSelections implements Policy: discount every n_i by γ, then
// increment the selected arm. NTotal is maintained as the sum of the
// discounted counts.
func (p *DUCB) UpdateSelections(t *Tables, arm int) {
	discountSelect(t, p.Gamma, arm)
}

// UpdateReward implements Policy: same running-average fold as UCB, but
// over the discounted count, which asymptotically behaves as an
// exponentially weighted average with window ~1/(1-γ).
func (p *DUCB) UpdateReward(t *Tables, arm int, rStep float64) {
	foldReward(t, arm, rStep)
}

// Reset implements Policy (DUCB is stateless).
func (p *DUCB) Reset() {}

// Static always selects one fixed arm. It is the building block of the
// best-static-arm oracle (§6.4): the harness runs one full experiment per
// arm with a Static policy and keeps the best result.
type Static struct {
	// Arm is the fixed arm to select.
	Arm int
}

// NewStatic returns a policy that always selects arm.
func NewStatic(arm int) *Static { return &Static{Arm: arm} }

// Name implements Policy.
func (p *Static) Name() string { return "Static" }

// NextArm implements Policy.
func (p *Static) NextArm(_ *Tables, _ *xrand.Rand) int { return p.Arm }

// UpdateSelections implements Policy.
func (p *Static) UpdateSelections(t *Tables, arm int) {
	countSelect(t, arm)
}

// UpdateReward implements Policy: running average, kept for reporting.
func (p *Static) UpdateReward(t *Tables, arm int, rStep float64) {
	foldReward(t, arm, rStep)
}

// Reset implements Policy (Static is stateless).
func (p *Static) Reset() {}

// Compile-time interface checks.
var (
	_ Policy      = (*EpsilonGreedy)(nil)
	_ Policy      = (*UCB)(nil)
	_ Policy      = (*DUCB)(nil)
	_ Policy      = (*Static)(nil)
	_ Potentialer = (*UCB)(nil)
	_ Potentialer = (*DUCB)(nil)
)
