package core

import (
	"fmt"
)

// This file is the contextual tier: per-context arm statistics keyed by a
// compact state signature, following the contextual-bandit formulation
// (van Emden & Kaptein's `contextual` survey) specialized to the paper's
// hardware constraints. Rather than a full feature-vector LinUCB — whose
// per-arm d×d matrix inverse is far outside the paper's 8-bytes-per-arm
// budget — the context space is bucketed into a small discrete Signature
// (phase id, MPKI band, DRAM-bandwidth-utilization band), and each
// signature gets its own ordinary Tables driven by an ordinary Policy.
//
// With one-hot (disjoint-arm) context features this IS LinUCB: the A
// matrix stays diagonal, x'A⁻¹x collapses to 1/n for the active context,
// and the UCB bonus α·sqrt(x'A⁻¹x) becomes the familiar α/√n over the
// per-context count — so the "linucb" registry name maps to per-context
// UCB, exactly, not approximately. "ctx-thompson" likewise runs Thompson
// sampling over per-context posteriors.
//
// The context map is bounded: at most MaxContexts signatures hold live
// tables, evicted LRU, so the "lightweight" claim survives adversarial
// signature churn. A hardware realization would be a small set-associative
// table indexed by signature bits.

// Signature is a compact context key: phase id in the high 16 bits, MPKI
// band in bits 8-15, bandwidth-utilization band in bits 0-7. The zero
// Signature is a valid context (and the one used when no context has been
// set), so context-free callers degrade to a single-context agent that
// makes exactly the base algorithm's decisions.
type Signature uint32

// MakeSignature packs the three bucketed fields. Out-of-range values are
// masked to their field width.
func MakeSignature(phase, mpkiBand, bwBand int) Signature {
	return Signature(uint32(phase&0xffff)<<16 | uint32(mpkiBand&0xff)<<8 | uint32(bwBand&0xff))
}

// Phase returns the phase-id field.
func (s Signature) Phase() int { return int(s >> 16) }

// MPKIBand returns the MPKI-band field.
func (s Signature) MPKIBand() int { return int(s>>8) & 0xff }

// BWBand returns the bandwidth-utilization-band field.
func (s Signature) BWBand() int { return int(s) & 0xff }

// String renders the signature as "p<phase>/m<band>/b<band>" for logs.
func (s Signature) String() string {
	return fmt.Sprintf("p%d/m%d/b%d", s.Phase(), s.MPKIBand(), s.BWBand())
}

// mpkiBandCuts are the L2-MPKI band boundaries. Geometric spacing: one
// band per ~4x MPKI, matching how prefetcher efficacy regimes separate
// (streaming vs pointer-chasing vs cache-resident).
var mpkiBandCuts = [...]float64{0.5, 2, 8, 32, 128}

// BandMPKI buckets an L2 misses-per-kilo-instruction value into a small
// band index (0..len(cuts)). Negative and NaN inputs land in band 0.
func BandMPKI(mpki float64) int {
	for i, cut := range mpkiBandCuts {
		if !(mpki >= cut) {
			return i
		}
	}
	return len(mpkiBandCuts)
}

// BandBW buckets a DRAM bandwidth utilization in [0,1] into quarters
// (0..3). Out-of-range inputs saturate.
func BandBW(util float64) int {
	switch {
	case !(util > 0.25):
		return 0
	case util <= 0.5:
		return 1
	case util <= 0.75:
		return 2
	default:
		return 3
	}
}

// SignatureOf builds the signature for raw telemetry interval values:
// workload phase id, L2 MPKI, and DRAM bandwidth utilization.
func SignatureOf(phase int, mpki, bwUtil float64) Signature {
	return MakeSignature(phase, BandMPKI(mpki), BandBW(bwUtil))
}

// ContextSetter is implemented by controllers that key their decisions by
// a state signature. Drivers (the simulator's Runner, the serve layer)
// feed the signature for the upcoming bandit step through it; controllers
// without context — the plain Agent, FixedArm — are simply never asked.
type ContextSetter interface {
	SetContext(sig Signature)
}

// DefaultMaxContexts bounds the live-context count when
// ContextualConfig.MaxContexts is zero. 16 contexts × 8 bytes/arm keeps
// the whole structure within a few hardware-table-sized SRAMs.
const DefaultMaxContexts = 16

// MaxMaxContexts is the hard upper bound on ContextualConfig.MaxContexts.
const MaxMaxContexts = 4096

// ContextualConfig configures a ContextualAgent.
type ContextualConfig struct {
	// Arms is the number of actions, shared by every context.
	Arms int
	// Algo names the per-context base algorithm ("ducb", "ucb", "eps",
	// "thompson") resolved through AlgoConfig, so a name means the same
	// hyperparameters here as everywhere else.
	Algo string
	// Seed seeds the agent family; each context derives its own private
	// sub-seed from it, so decision streams are deterministic and
	// independent of context arrival order.
	Seed uint64
	// MaxContexts bounds the live-context count (LRU eviction beyond
	// it). 0 means DefaultMaxContexts.
	MaxContexts int
	// RecordTrace enables per-step arm recording on every context agent.
	RecordTrace bool
}

// maxContexts resolves the effective bound.
func (c ContextualConfig) maxContexts() int {
	if c.MaxContexts == 0 {
		return DefaultMaxContexts
	}
	return c.MaxContexts
}

// Validate checks the configuration.
func (c ContextualConfig) Validate() error {
	if c.Arms < 1 {
		return fmt.Errorf("core: contextual config needs at least 1 arm, got %d", c.Arms)
	}
	if c.MaxContexts < 0 || c.MaxContexts > MaxMaxContexts {
		return fmt.Errorf("core: max contexts %d outside [0,%d]", c.MaxContexts, MaxMaxContexts)
	}
	if _, err := AlgoConfig(c.Algo, c.Arms, c.Seed, c.RecordTrace); err != nil {
		return fmt.Errorf("core: contextual base algorithm: %w", err)
	}
	return nil
}

// contextSeed derives a context's private RNG seed from the family seed
// and its signature, via a SplitMix64-style finalizer. Deterministic and
// well-spread, so two contexts never share an RNG stream and a context's
// stream does not depend on when it was first seen.
func contextSeed(base uint64, sig Signature) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(sig)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ctxEntry is one live context: its signature, its agent, and its
// position in the intrusive LRU list (head = most recently used).
type ctxEntry struct {
	sig        Signature
	agent      *Agent
	prev, next *ctxEntry
}

// ContextualAgent keys independent bandit Tables by Signature. It
// implements Controller — Step/Reward/InInitialRR — plus ContextSetter,
// so it drops into every harness and serve path a plain Agent fits.
//
// Each context is a full Agent (own tables, own RNG, own initial
// round-robin phase): a freshly seen context pays its own exploration
// rather than inheriting another regime's poisoned estimates, which is
// precisely the advantage under phase storms. The zero value is not
// usable; construct with NewContextualAgent.
type ContextualAgent struct {
	cfg      ContextualConfig
	contexts map[Signature]*ctxEntry
	head     *ctxEntry // most recently used
	tail     *ctxEntry // least recently used

	pending   Signature // context for the next Step (set by SetContext)
	open      *ctxEntry // context owning the open step, nil otherwise
	steps     int       // completed bandit steps across all contexts
	evictions int       // contexts dropped by the LRU bound
}

// NewContextualAgent constructs a ContextualAgent. No context agents are
// allocated until their signatures are first seen.
func NewContextualAgent(cfg ContextualConfig) (*ContextualAgent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ContextualAgent{
		cfg:      cfg,
		contexts: make(map[Signature]*ctxEntry),
	}, nil
}

// SetContext selects the context for the next Step call. It may be called
// any number of times between steps; the last value wins. Calling it
// mid-step (between Step and Reward) affects only the next step — the
// open step's reward always lands in the context that chose its arm.
func (c *ContextualAgent) SetContext(sig Signature) { c.pending = sig }

// Context returns the signature the next Step will use.
func (c *ContextualAgent) Context() Signature { return c.pending }

// Contexts returns the number of live contexts.
func (c *ContextualAgent) Contexts() int { return len(c.contexts) }

// Evictions returns how many contexts the LRU bound has dropped.
func (c *ContextualAgent) Evictions() int { return c.evictions }

// StepsTaken returns the number of completed bandit steps across all
// contexts.
func (c *ContextualAgent) StepsTaken() int { return c.steps }

// Arms returns the number of arms.
func (c *ContextualAgent) Arms() int { return c.cfg.Arms }

// StepOpen reports whether a Step call is awaiting its Reward.
func (c *ContextualAgent) StepOpen() bool { return c.open != nil }

// unlink removes e from the LRU list.
func (c *ContextualAgent) unlink(e *ctxEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *ContextualAgent) pushFront(e *ctxEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// touch returns the entry for sig, creating it (and evicting the LRU
// tail past the bound) on first sight. The config was validated at
// construction, so the AlgoConfig rebuild cannot fail.
func (c *ContextualAgent) touch(sig Signature) *ctxEntry {
	if e, ok := c.contexts[sig]; ok {
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return e
	}
	cfg, err := AlgoConfig(c.cfg.Algo, c.cfg.Arms, contextSeed(c.cfg.Seed, sig), c.cfg.RecordTrace)
	if err != nil {
		panic("core: contextual base algorithm vanished after Validate: " + err.Error())
	}
	a, err := New(cfg)
	if err != nil {
		panic("core: contextual agent construction failed after Validate: " + err.Error())
	}
	e := &ctxEntry{sig: sig, agent: a}
	c.contexts[sig] = e
	c.pushFront(e)
	if len(c.contexts) > c.cfg.maxContexts() {
		// The tail is never the entry just touched (it sits at the head),
		// and no step can be open here — Step panics before touch if one is.
		victim := c.tail
		c.unlink(victim)
		delete(c.contexts, victim.sig)
		c.evictions++
	}
	return e
}

// Step implements Controller: it selects the arm for the next bandit step
// within the pending context. Like Agent.Step, it panics if called twice
// without an intervening Reward.
func (c *ContextualAgent) Step() int {
	if c.open != nil {
		panic("core: Step called twice without Reward")
	}
	e := c.touch(c.pending)
	arm := e.agent.Step()
	c.open = e
	return arm
}

// Reward implements Controller: the reward lands in the context whose
// Step opened it, regardless of SetContext calls since.
func (c *ContextualAgent) Reward(rStep float64) {
	if c.open == nil {
		panic("core: Reward called without a pending Step")
	}
	c.open.agent.Reward(rStep)
	c.open = nil
	c.steps++
}

// InInitialRR implements Controller: it reports the exploration phase of
// the context the next step will run in (the open one while a step is
// pending). A context not yet seen is, by definition, about to start its
// initial round-robin.
func (c *ContextualAgent) InInitialRR() bool {
	if c.open != nil {
		return c.open.agent.InInitialRR()
	}
	if e, ok := c.contexts[c.pending]; ok {
		return e.agent.InInitialRR()
	}
	return true
}

// BestArm returns the best learned arm of the most recently used context
// (0 before any context exists) — the contextual analogue of
// Agent.BestArm for read-model reporting.
func (c *ContextualAgent) BestArm() int {
	if c.head == nil {
		return 0
	}
	return c.head.agent.BestArm()
}

// ContextAgent returns the live agent for sig without touching LRU order,
// or nil if the context is not live. For tests and report tooling.
func (c *ContextualAgent) ContextAgent(sig Signature) *Agent {
	if e, ok := c.contexts[sig]; ok {
		return e.agent
	}
	return nil
}

// Signatures returns the live signatures in LRU order, most recently
// used first. For tests and report tooling.
func (c *ContextualAgent) Signatures() []Signature {
	var out []Signature
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.sig)
	}
	return out
}

var (
	_ Controller    = (*ContextualAgent)(nil)
	_ ContextSetter = (*ContextualAgent)(nil)
)
