package core

import (
	"math"
	"testing"

	"microbandit/internal/xrand"
)

func ducbConfig(seed uint64, arms int) Config {
	return Config{
		Arms:      arms,
		Policy:    NewDUCB(PrefetchC, PrefetchGamma),
		Normalize: true,
		Seed:      seed,
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Arms: 3, Policy: NewUCB(0.1)}, true},
		{"no arms", Config{Arms: 0, Policy: NewUCB(0.1)}, false},
		{"nil policy", Config{Arms: 3}, false},
		{"bad restart prob", Config{Arms: 3, Policy: NewUCB(0.1), RRRestartProb: 1.5}, false},
		{"negative restart prob", Config{Arms: 3, Policy: NewUCB(0.1), RRRestartProb: -0.1}, false},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: New err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid config did not panic")
		}
	}()
	MustNew(Config{})
}

// The initial round-robin phase must try every arm exactly once, in order,
// and seed the tables per Algorithm 1 lines 3-10.
func TestInitialRoundRobinPhase(t *testing.T) {
	const arms = 5
	a := MustNew(Config{Arms: arms, Policy: NewDUCB(0.04, 0.999), Seed: 1})
	for i := 0; i < arms; i++ {
		if !a.InInitialRR() {
			t.Fatalf("step %d: InInitialRR = false during RR phase", i)
		}
		arm := a.Step()
		if arm != i {
			t.Fatalf("RR step %d selected arm %d", i, arm)
		}
		a.Reward(float64(i + 1)) // distinct rewards 1..5
	}
	if a.InInitialRR() {
		t.Fatal("InInitialRR still true after RR phase")
	}
	n := a.Counts()
	r := a.Rewards()
	for i := 0; i < arms; i++ {
		if n[i] != 1 {
			t.Errorf("n[%d] = %v, want 1", i, n[i])
		}
	}
	// Without normalization, r_i equals the seeded reward.
	a2 := MustNew(Config{Arms: 3, Policy: NewUCB(0.1), Seed: 1})
	for i := 0; i < 3; i++ {
		a2.Step()
		a2.Reward(float64(10 * (i + 1)))
	}
	r2 := a2.Rewards()
	if r2[0] != 10 || r2[1] != 20 || r2[2] != 30 {
		t.Errorf("seeded rewards = %v", r2)
	}
	_ = r
}

func TestStepRewardProtocol(t *testing.T) {
	a := MustNew(Config{Arms: 2, Policy: NewUCB(0.1), Seed: 1})
	a.Step()
	assertPanics(t, func() { a.Step() })
	a.Reward(1)
	assertPanics(t, func() { a.Reward(1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// After the RR phase, normalization divides the rTable by the average
// initial reward, so the mean rTable entry becomes 1.
func TestNormalizationRescalesTables(t *testing.T) {
	a := MustNew(ducbConfig(1, 4))
	rewards := []float64{0.1, 0.2, 0.3, 0.4}
	for _, r := range rewards {
		a.Step()
		a.Reward(r)
	}
	if got, want := a.RAvg(), 0.25; !close(got, want) {
		t.Fatalf("rAvg = %v, want %v", got, want)
	}
	r := a.Rewards()
	sum := 0.0
	for _, v := range r {
		sum += v
	}
	if mean := sum / 4; !close(mean, 1) {
		t.Errorf("normalized rTable mean = %v, want 1", mean)
	}
	if !close(r[3], 1.6) {
		t.Errorf("r[3] = %v, want 1.6", r[3])
	}
}

func TestNormalizationDegenerateAverage(t *testing.T) {
	a := MustNew(ducbConfig(1, 3))
	for i := 0; i < 3; i++ {
		a.Step()
		a.Reward(0) // all-zero rewards: average is 0
	}
	if a.RAvg() != 1 {
		t.Errorf("degenerate rAvg = %v, want fallback 1", a.RAvg())
	}
	// The agent must keep operating.
	a.Step()
	a.Reward(0.5)
}

// TestNormalizationAllZeroRRPhase is the §4.3 division-guard regression
// test: a fault (stuck arm, collapsed bandwidth) can zero every reward
// of the initial round-robin phase, making the round-robin average 0.
// The agent must fall back to unnormalized rewards — every learned
// value stays finite and the post-RR rewards pass through unscaled.
func TestNormalizationAllZeroRRPhase(t *testing.T) {
	a := MustNew(ducbConfig(7, 4))
	for i := 0; i < 4; i++ {
		a.Step()
		a.Reward(0)
	}
	// Recovery: rewards return; with rAvg pinned to 1 they must reach
	// the tables unnormalized.
	post := []float64{0.5, 1.25, 2.0, 0.75}
	for _, r := range post {
		arm := a.Step()
		a.Reward(r)
		for _, v := range append(a.Rewards(), a.Counts()...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite table value %v after rewarding arm %d with %v", v, arm, r)
			}
		}
	}
	if got := a.RAvg(); got != 1 {
		t.Errorf("rAvg = %v, want fallback 1 after all-zero RR phase", got)
	}

	// Belt and braces: even if rAvg is corrupted after normalization
	// completes, normalizeReward must refuse to divide by it.
	for _, bad := range []float64{0, -2, math.NaN(), math.Inf(1)} {
		a.rAvg = bad
		if got := a.normalizeReward(3); got != 3 {
			t.Errorf("normalizeReward(3) with rAvg=%v = %v, want passthrough 3", bad, got)
		}
	}
}

// The paper's motivation for normalization: with it, scaling all rewards
// by any positive constant leaves the entire selection sequence unchanged.
func TestNormalizationScaleInvariance(t *testing.T) {
	run := func(scale float64) []int {
		a := MustNew(Config{
			Arms:        4,
			Policy:      NewDUCB(0.04, 0.99),
			Normalize:   true,
			Seed:        7,
			RecordTrace: true,
		})
		env := xrand.New(99)
		means := []float64{0.3, 0.5, 0.2, 0.4}
		for s := 0; s < 400; s++ {
			arm := a.Step()
			r := means[arm] + 0.05*env.NormFloat64()
			if r < 0.01 {
				r = 0.01
			}
			a.Reward(r * scale)
		}
		return a.Trace()
	}
	base := run(1)
	for _, scale := range []float64{0.05, 20} {
		got := run(scale)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("scale %v: trace diverged at step %d (%d vs %d)",
					scale, i, got[i], base[i])
			}
		}
	}
}

// Without normalization, low-reward environments explore more under the
// same exploration constant — the unwanted effect §4.3 describes.
func TestWithoutNormalizationScaleChangesExploration(t *testing.T) {
	distinctArms := func(scale float64, normalize bool) int {
		a := MustNew(Config{
			Arms:        4,
			Policy:      NewUCB(0.05),
			Normalize:   normalize,
			Seed:        7,
			RecordTrace: true,
		})
		means := []float64{0.3, 0.5, 0.2, 0.4}
		for s := 0; s < 300; s++ {
			arm := a.Step()
			a.Reward(means[arm] * scale)
		}
		// Count exploration steps after RR: how often a non-best arm was picked.
		nonBest := 0
		for _, arm := range a.Trace()[4:] {
			if arm != 1 {
				nonBest++
			}
		}
		return nonBest
	}
	lowIPC := distinctArms(0.01, false)
	highIPC := distinctArms(10, false)
	if lowIPC <= highIPC {
		t.Errorf("without normalization: low-scale explored %d vs high-scale %d; expected more exploration at low scale",
			lowIPC, highIPC)
	}
	lowN := distinctArms(0.01, true)
	highN := distinctArms(10, true)
	if lowN != highN {
		t.Errorf("with normalization: exploration differs (%d vs %d)", lowN, highN)
	}
}

// Stationary convergence: every bandit algorithm should mostly select the
// best arm on a stationary environment after warm-up.
func TestStationaryConvergence(t *testing.T) {
	policies := map[string]func() Policy{
		"eps-greedy": func() Policy { return NewEpsilonGreedy(0.05) },
		"ucb":        func() Policy { return NewUCB(0.05) },
		"ducb":       func() Policy { return NewDUCB(0.05, 0.999) },
	}
	means := []float64{0.2, 0.9, 0.4, 0.1, 0.5}
	for name, mk := range policies {
		a := MustNew(Config{Arms: 5, Policy: mk(), Normalize: true, Seed: 3, RecordTrace: true})
		env := xrand.New(55)
		const steps = 2000
		for s := 0; s < steps; s++ {
			arm := a.Step()
			a.Reward(means[arm] + 0.02*env.NormFloat64())
		}
		best := 0
		for _, arm := range a.Trace()[steps/2:] {
			if arm == 1 {
				best++
			}
		}
		frac := float64(best) / float64(steps/2)
		if frac < 0.85 {
			t.Errorf("%s: best-arm fraction in second half = %.2f, want >= 0.85", name, frac)
		}
	}
}

// Non-stationary adaptation (the Fig. 7 mcf scenario): after a phase
// change swaps which arm is optimal, DUCB should re-lock onto the new best
// arm while plain UCB stays stuck much longer.
func TestDUCBAdaptsToPhaseChangeFasterThanUCB(t *testing.T) {
	run := func(p Policy) float64 {
		a := MustNew(Config{Arms: 3, Policy: p, Normalize: true, Seed: 11, RecordTrace: true})
		env := xrand.New(77)
		const half = 3000
		for s := 0; s < 2*half; s++ {
			arm := a.Step()
			var means []float64
			if s < half {
				means = []float64{0.8, 0.3, 0.2}
			} else {
				means = []float64{0.2, 0.3, 0.8} // phase change: arm 2 now best
			}
			a.Reward(means[arm] + 0.02*env.NormFloat64())
		}
		// Fraction of the final quarter spent on the new best arm.
		trace := a.Trace()
		tail := trace[len(trace)*3/4:]
		hit := 0
		for _, arm := range tail {
			if arm == 2 {
				hit++
			}
		}
		return float64(hit) / float64(len(tail))
	}
	ducb := run(NewDUCB(0.05, 0.995))
	ucb := run(NewUCB(0.05))
	if ducb < 0.8 {
		t.Errorf("DUCB post-phase-change best-arm fraction = %.2f, want >= 0.8", ducb)
	}
	if ducb <= ucb {
		t.Errorf("DUCB (%.2f) should adapt better than UCB (%.2f)", ducb, ucb)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		a := MustNew(Config{Arms: 4, Policy: NewEpsilonGreedy(0.3), Seed: 9, RecordTrace: true})
		env := xrand.New(1)
		for s := 0; s < 500; s++ {
			arm := a.Step()
			a.Reward(env.Float64() * float64(arm+1))
		}
		return a.Trace()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverged at %d", i)
		}
	}
}

func TestReset(t *testing.T) {
	a := MustNew(ducbConfig(5, 3))
	for s := 0; s < 50; s++ {
		a.Step()
		a.Reward(0.5)
	}
	a.Reset()
	if a.StepsTaken() != 0 || !a.InInitialRR() {
		t.Error("Reset did not restore initial state")
	}
	if arm := a.Step(); arm != 0 {
		t.Errorf("first arm after Reset = %d, want 0 (RR)", arm)
	}
	a.Reward(1)
	for i, n := range a.Counts() {
		want := 0.0
		if i == 0 {
			want = 1
		}
		if n != want {
			t.Errorf("count[%d] = %v after reset+1 step", i, n)
		}
	}
}

func TestRRRestartTriggersAndPreservesState(t *testing.T) {
	a := MustNew(Config{
		Arms:          3,
		Policy:        NewDUCB(0.04, 0.999),
		RRRestartProb: 0.2, // high so the test is fast
		Seed:          2,
		RecordTrace:   true,
	})
	env := xrand.New(4)
	for s := 0; s < 500; s++ {
		a.Step()
		a.Reward(0.5 + 0.1*env.NormFloat64())
	}
	if a.Restarts() == 0 {
		t.Fatal("no RR restarts triggered with prob 0.2 over 500 steps")
	}
	// A restart forces the full 0,1,2 sequence somewhere in the main loop.
	trace := a.Trace()
	found := false
	for i := 3; i+2 < len(trace); i++ {
		if trace[i] == 0 && trace[i+1] == 1 && trace[i+2] == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no forced round-robin sweep found in main-loop trace")
	}
	// Counts must reflect all 500 steps (state preserved, not reset).
	total := 0.0
	for _, n := range a.Counts() {
		total += n
	}
	if total < 3 { // DUCB discounts, but state must not be zeroed
		t.Errorf("counts look reset: %v", a.Counts())
	}
}

func TestNoRestartWhenProbZero(t *testing.T) {
	a := MustNew(Config{Arms: 3, Policy: NewUCB(0.1), Seed: 2})
	for s := 0; s < 1000; s++ {
		a.Step()
		a.Reward(1)
	}
	if a.Restarts() != 0 {
		t.Errorf("restarts = %d with prob 0", a.Restarts())
	}
}

func TestHardwarePrecisionQuantizes(t *testing.T) {
	a := MustNew(Config{Arms: 2, Policy: NewUCB(0.1), Seed: 1, HardwarePrecision: true})
	a.Step()
	a.Reward(1.0 / 3.0)
	r := a.Rewards()
	if r[0] != float64(float32(1.0/3.0)) {
		t.Errorf("reward not quantized to float32: %v", r[0])
	}
}

func TestPotentialsExposedForUCBFamily(t *testing.T) {
	a := MustNew(Config{Arms: 3, Policy: NewDUCB(0.1, 0.99), Seed: 1})
	for i := 0; i < 3; i++ {
		a.Step()
		a.Reward(float64(i))
	}
	p := a.Potentials()
	if len(p) != 3 {
		t.Fatalf("potentials = %v", p)
	}
	// ε-Greedy has no potentials.
	b := MustNew(Config{Arms: 3, Policy: NewEpsilonGreedy(0.1), Seed: 1})
	if b.Potentials() != nil {
		t.Error("eps-greedy exposed potentials")
	}
}

func TestFixedArmController(t *testing.T) {
	var c Controller = FixedArm(4)
	if c.Step() != 4 || c.InInitialRR() {
		t.Error("FixedArm misbehaves")
	}
	c.Reward(123) // must not panic
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestCoordinatorSerializesRestarts: with a coordinator installed, two
// agents with aggressive restart probabilities never sweep simultaneously.
func TestCoordinatorSerializesRestarts(t *testing.T) {
	mk := func(seed uint64) *Agent {
		return MustNew(Config{
			Arms:          4,
			Policy:        NewDUCB(0.05, 0.99),
			RRRestartProb: 0.3,
			Seed:          seed,
		})
	}
	a, b := mk(1), mk(2)
	coord := NewCoordinator()
	coord.Add(a)
	coord.Add(b)
	env := xrand.New(9)
	for s := 0; s < 2000; s++ {
		a.Step()
		b.Step()
		if a.RestartActive() && b.RestartActive() {
			t.Fatalf("step %d: both agents mid-sweep", s)
		}
		a.Reward(env.Float64())
		b.Reward(env.Float64())
	}
	if a.Restarts() == 0 || b.Restarts() == 0 {
		t.Errorf("restarts = %d/%d; coordination must delay, not starve",
			a.Restarts(), b.Restarts())
	}
	if !coord.Busy() && (a.RestartActive() || b.RestartActive()) {
		t.Error("Busy() inconsistent with RestartActive")
	}
}

// Without coordination the same configuration does produce overlapping
// sweeps, so the test above is meaningful.
func TestUncoordinatedRestartsOverlap(t *testing.T) {
	mk := func(seed uint64) *Agent {
		return MustNew(Config{
			Arms:          4,
			Policy:        NewDUCB(0.05, 0.99),
			RRRestartProb: 0.3,
			Seed:          seed,
		})
	}
	a, b := mk(1), mk(2)
	env := xrand.New(9)
	overlap := false
	for s := 0; s < 2000; s++ {
		a.Step()
		b.Step()
		if a.RestartActive() && b.RestartActive() {
			overlap = true
		}
		a.Reward(env.Float64())
		b.Reward(env.Float64())
	}
	if !overlap {
		t.Skip("no natural overlap at these probabilities; serialization test is vacuous")
	}
}
