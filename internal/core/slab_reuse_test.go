package core

import (
	"encoding/json"
	"testing"
)

// Satellite audit: Alloc after Free must leave no trace of the slot's
// previous tenant. A session allocated into a recycled slot must produce
// a decision stream bit-identical to a fresh heap Agent with the same
// spec — and identical serialized state, so checkpoints cannot tell the
// two apart either.

// dirtySlot drives an agent hard enough to touch every piece of per-slot
// state: tables, RNG stream, forced queue (via RR restarts), trace,
// normalization constant, and an open step.
func dirtySlot(a *Agent) {
	for i := 0; i < 300; i++ {
		arm := a.Step()
		a.Reward(0.3 + 0.6*float64((arm*i)%5)/5)
	}
	a.Step() // leave a step open so inStep/currentArm are non-zero too
}

func TestSlabRecycledSlotMatchesFreshAgent(t *testing.T) {
	algos := []string{"ducb", "ucb", "eps", "thompson"}
	for _, algo := range algos {
		t.Run(algo, func(t *testing.T) {
			const arms = 5
			sl, err := NewSlab(arms, 2)
			if err != nil {
				t.Fatal(err)
			}
			// Previous tenant: a different seed, restarts enabled, trace
			// recording on — maximally different per-slot state.
			dirtyCfg, err := AlgoConfig(algo, arms, 0xdeadbeef, true)
			if err != nil {
				t.Fatal(err)
			}
			dirtyCfg.RRRestartProb = 0.05
			prev, slot, err := sl.Alloc(dirtyCfg)
			if err != nil {
				t.Fatal(err)
			}
			dirtySlot(prev)
			sl.Free(slot)

			// New tenant in the recycled slot vs a fresh heap agent.
			cfg, err := AlgoConfig(algo, arms, 31337, false)
			if err != nil {
				t.Fatal(err)
			}
			recycled, slot2, err := sl.Alloc(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if slot2 != slot {
				t.Fatalf("free list did not recycle slot %d (got %d)", slot, slot2)
			}
			cfg2, _ := AlgoConfig(algo, arms, 31337, false)
			fresh := MustNew(cfg2)

			for i := 0; i < 500; i++ {
				got, want := recycled.Step(), fresh.Step()
				if got != want {
					t.Fatalf("step %d: recycled slot chose arm %d, fresh agent %d", i, got, want)
				}
				r := 0.2 + 0.7*float64((want+i)%9)/9
				recycled.Reward(r)
				fresh.Reward(r)
			}

			// Bit-identical serialized state, not just identical decisions.
			rs, err := recycled.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			fs, err := fresh.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			rb, _ := json.Marshal(rs)
			fb, _ := json.Marshal(fs)
			if string(rb) != string(fb) {
				t.Fatalf("recycled-slot snapshot differs from fresh agent:\n%s\n%s", rb, fb)
			}
		})
	}
}

// TestSlabRecycledSlotContextualAgent extends the audit through the
// contextual tier: contextual agents allocate their per-context agents as
// one-slot slabs (New), so the same zero-on-alloc invariant backs them.
func TestSlabRecycledSlotContextualAgent(t *testing.T) {
	sl, err := NewSlab(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := AlgoConfig("ducb", 4, 777, true)
	prev, slot, err := sl.Alloc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirtySlot(prev)
	sl.Free(slot)
	// The recycled slot now hosts one context of a contextual pair; the
	// reference contextual agent runs entirely on fresh heap slabs.
	recycledCfg, _ := AlgoConfig("ducb", 4, contextSeed(55, MakeSignature(1, 2, 3)), false)
	inSlot, _, err := sl.Alloc(recycledCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewContextualAgent(ContextualConfig{Arms: 4, Algo: "ducb", Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	ref.SetContext(MakeSignature(1, 2, 3))
	for i := 0; i < 200; i++ {
		got, want := inSlot.Step(), ref.Step()
		if got != want {
			t.Fatalf("step %d: slot-resident context arm %d, contextual agent %d", i, got, want)
		}
		r := float64((want*3 + i) % 8)
		inSlot.Reward(r)
		ref.Reward(r)
	}
}
