package core

import (
	"errors"
	"reflect"
	"testing"
)

// slabPolicies is the algorithm matrix the equivalence tests sweep: every
// built-in policy the devirtualized fast path special-cases, plus the
// §4.3 restart variant, whose RNG consumption is the easiest thing to
// break.
func slabPolicies() map[string]Config {
	mk := func(p Policy, rrProb float64) Config {
		return Config{Arms: 6, Policy: p, Normalize: true, RRRestartProb: rrProb, Seed: 99}
	}
	return map[string]Config{
		"eps":        mk(NewEpsilonGreedy(0.1), 0),
		"ucb":        mk(NewUCB(PrefetchC), 0),
		"ducb":       mk(NewDUCB(PrefetchC, PrefetchGamma), 0),
		"ducb+rr":    mk(NewDUCB(PrefetchC, PrefetchGamma), 0.05),
		"thompson":   mk(NewThompson(0.3), 0),
		"d-thompson": mk(NewDiscountedThompson(0.3, 0.98), 0),
		"static":     mk(NewStatic(3), 0),
	}
}

func TestSlabAllocFree(t *testing.T) {
	sl := MustNewSlab(4, 3)
	if sl.Arms() != 4 || sl.Cap() != 3 || sl.Live() != 0 {
		t.Fatalf("fresh slab: arms=%d cap=%d live=%d", sl.Arms(), sl.Cap(), sl.Live())
	}
	cfg := Config{Arms: 4, Policy: NewDUCB(PrefetchC, PrefetchGamma), Seed: 1}
	slots := map[int]bool{}
	for i := 0; i < 3; i++ {
		a, slot, err := sl.Alloc(cfg)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if a != sl.Agent(slot) {
			t.Fatalf("Alloc %d: agent pointer does not match Agent(%d)", i, slot)
		}
		if slots[slot] {
			t.Fatalf("Alloc %d: slot %d handed out twice", i, slot)
		}
		slots[slot] = true
	}
	if sl.Live() != 3 {
		t.Fatalf("live = %d, want 3", sl.Live())
	}
	if _, _, err := sl.Alloc(cfg); !errors.Is(err, ErrSlabFull) {
		t.Fatalf("Alloc on full slab: err = %v, want ErrSlabFull", err)
	}

	// Dirty a slot, free it, and check its next tenant starts clean.
	a1 := sl.Agent(1)
	drive(a1, 0, 20)
	sl.Free(1)
	if sl.Agent(1) != nil {
		t.Fatalf("Agent(1) non-nil after Free")
	}
	a, slot, err := sl.Alloc(cfg)
	if err != nil || slot != 1 {
		t.Fatalf("Alloc after Free: slot=%d err=%v, want slot 1", slot, err)
	}
	if a.StepsTaken() != 0 || !a.InInitialRR() {
		t.Fatalf("reused slot not reset: steps=%d", a.StepsTaken())
	}
	for i, r := range a.Rewards() {
		if r != 0 {
			t.Fatalf("reused slot rTable[%d] = %v, want 0", i, r)
		}
	}
}

func TestSlabAllocRejectsMismatchedArms(t *testing.T) {
	sl := MustNewSlab(4, 1)
	_, _, err := sl.Alloc(Config{Arms: 5, Policy: NewUCB(1), Seed: 1})
	if err == nil {
		t.Fatal("Alloc with mismatched arm count succeeded")
	}
}

func TestSlabFreePanicsOnUnallocatedSlot(t *testing.T) {
	sl := MustNewSlab(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of an unallocated slot did not panic")
		}
	}()
	sl.Free(0)
}

// TestSlabScalarEquivalence pins the tentpole contract: an agent living
// in a crowded slab makes bit-identical decisions to a standalone one,
// for every algorithm. The slab agent is deliberately surrounded by
// neighbours running different seeds so cross-slot state bleed would be
// caught.
func TestSlabScalarEquivalence(t *testing.T) {
	for name, cfg := range slabPolicies() {
		t.Run(name, func(t *testing.T) {
			solo := MustNew(cfg)

			sl := MustNewSlab(cfg.Arms, 5)
			neighbour := cfg
			neighbour.Seed = 7
			if _, _, err := sl.Alloc(neighbour); err != nil {
				t.Fatal(err)
			}
			packed, _, err := sl.Alloc(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := sl.Alloc(neighbour); err != nil {
				t.Fatal(err)
			}

			// Interleave: the neighbours advance too, on a different stream.
			for i := 0; i < 300; i++ {
				if got, want := packed.Step(), solo.Step(); got != want {
					t.Fatalf("step %d: slab arm %d, scalar arm %d", i, got, want)
				}
				r := stepReward(solo.CurrentArm(), i)
				packed.Reward(r)
				solo.Reward(r)
			}
			if !reflect.DeepEqual(packed.Rewards(), solo.Rewards()) ||
				!reflect.DeepEqual(packed.Counts(), solo.Counts()) {
				t.Fatal("slab and scalar tables diverged")
			}
			if packed.Restarts() != solo.Restarts() {
				t.Fatalf("restarts: slab %d, scalar %d", packed.Restarts(), solo.Restarts())
			}
		})
	}
}

// opaquePolicy hides a built-in policy's concrete type from the Agent's
// devirtualized type switch, forcing the generic interface path the
// pre-slab implementation always took.
type opaquePolicy struct{ Policy }

// TestDevirtualizedDispatchEquivalence pins the fast path against the
// interface path: the same policy driven both ways must produce
// bit-identical decision streams and tables. Together with
// TestSlabScalarEquivalence this is the "no worse than pre-refactor"
// guarantee — the interface path is the pre-refactor code.
func TestDevirtualizedDispatchEquivalence(t *testing.T) {
	for name, cfg := range slabPolicies() {
		t.Run(name, func(t *testing.T) {
			fast := MustNew(cfg)
			opaque := cfg
			opaque.Policy = &opaquePolicy{cfg.Policy}
			slow := MustNew(opaque)

			for i := 0; i < 300; i++ {
				got, want := fast.Step(), slow.Step()
				if got != want {
					t.Fatalf("step %d: fast arm %d, interface arm %d", i, got, want)
				}
				r := stepReward(got, i)
				fast.Reward(r)
				slow.Reward(r)
			}
			if !reflect.DeepEqual(fast.Rewards(), slow.Rewards()) ||
				!reflect.DeepEqual(fast.Counts(), slow.Counts()) {
				t.Fatal("fast-path and interface-path tables diverged")
			}
			if fast.Restarts() != slow.Restarts() {
				t.Fatalf("restarts: fast %d, interface %d", fast.Restarts(), slow.Restarts())
			}
		})
	}
}

// TestBatchKernelsMatchScalarLoop drives one slab through the batch
// kernels and a twin population of standalone agents through scalar
// Step/Reward, with identical rewards.
func TestBatchKernelsMatchScalarLoop(t *testing.T) {
	const arms, pop, steps = 6, 16, 200
	sl := MustNewSlab(arms, pop)
	twins := make([]*Agent, pop)
	slots := make([]int32, pop)
	batchArms := make([]int32, pop)
	rewards := make([]float64, pop)
	for i := range twins {
		cfg := Config{Arms: arms, Policy: NewDUCB(PrefetchC, PrefetchGamma), Normalize: true, Seed: uint64(i + 1)}
		if i%3 == 1 {
			cfg.Policy = NewEpsilonGreedy(0.1)
		}
		if i%3 == 2 {
			cfg.Policy = NewThompson(0.25)
		}
		_, slot, err := sl.Alloc(cfg)
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = int32(slot)
		cfgTwin := cfg
		cfgTwin.Policy = clonePolicy(t, cfg.Policy)
		twins[i] = MustNew(cfgTwin)
	}
	for step := 0; step < steps; step++ {
		sl.StepBatch(slots, batchArms)
		for i, tw := range twins {
			want := tw.Step()
			if int(batchArms[i]) != want {
				t.Fatalf("step %d slot %d: batch arm %d, scalar arm %d", step, i, batchArms[i], want)
			}
			rewards[i] = stepReward(want, step+i)
			tw.Reward(rewards[i])
		}
		sl.RewardBatch(slots, rewards)
	}
	for i, tw := range twins {
		a := sl.Agent(int(slots[i]))
		if !reflect.DeepEqual(a.Rewards(), tw.Rewards()) || !reflect.DeepEqual(a.Counts(), tw.Counts()) {
			t.Fatalf("slot %d: batch-driven tables diverged from scalar twin", i)
		}
	}
}

// clonePolicy builds an independent policy with the same hyperparameters,
// so twin agents share no mutable state.
func clonePolicy(t *testing.T, p Policy) Policy {
	t.Helper()
	switch p := p.(type) {
	case *DUCB:
		return NewDUCB(p.C, p.Gamma)
	case *EpsilonGreedy:
		return NewEpsilonGreedy(p.Epsilon)
	case *Thompson:
		return &Thompson{Sigma: p.Sigma, Gamma: p.Gamma}
	default:
		t.Fatalf("clonePolicy: unhandled %T", p)
		return nil
	}
}

// TestRestoreAgentInContinuesStream checks the slab restore path against
// the standalone one: both restored agents must continue the original
// agent's exact decision stream.
func TestRestoreAgentInContinuesStream(t *testing.T) {
	for name, cfg := range slabPolicies() {
		t.Run(name, func(t *testing.T) {
			orig := MustNew(cfg)
			drive(orig, 0, 50)
			snap, err := orig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			standalone, err := RestoreAgent(snap)
			if err != nil {
				t.Fatal(err)
			}
			sl := MustNewSlab(cfg.Arms, 4)
			if _, _, err := sl.Alloc(Config{Arms: cfg.Arms, Policy: NewUCB(1), Seed: 3}); err != nil {
				t.Fatal(err)
			}
			slabbed, _, err := RestoreAgentIn(sl, snap)
			if err != nil {
				t.Fatal(err)
			}

			a1 := drive(orig, 50, 80)
			a2 := drive(standalone, 50, 80)
			a3 := drive(slabbed, 50, 80)
			if !reflect.DeepEqual(a1, a2) {
				t.Fatal("standalone restore diverged from original")
			}
			if !reflect.DeepEqual(a1, a3) {
				t.Fatal("slab restore diverged from original")
			}
		})
	}
}

func TestSlabResetKeepsSlot(t *testing.T) {
	sl := MustNewSlab(4, 2)
	cfg := Config{Arms: 4, Policy: NewDUCB(PrefetchC, PrefetchGamma), Seed: 5}
	a, slot, err := sl.Alloc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := drive(a, 0, 30)
	a.Reset()
	if got := drive(a, 0, 30); !reflect.DeepEqual(got, first) {
		t.Fatal("Reset did not reproduce the original stream")
	}
	if sl.Agent(slot) != a {
		t.Fatal("Reset moved the agent out of its slot")
	}
}

// TestBatchKernelsAllocFree pins the steady-state allocation count of
// the batch kernels at zero (PR 5 discipline, extended to the batch
// plane). The population is past its initial round-robin phase, so the
// sweep exercises the real policy arithmetic.
func TestBatchKernelsAllocFree(t *testing.T) {
	const arms, pop = 8, 64
	sl := MustNewSlab(arms, pop)
	slots := make([]int32, pop)
	out := make([]int32, pop)
	rewards := make([]float64, pop)
	for i := 0; i < pop; i++ {
		a, slot, err := sl.Alloc(Config{Arms: arms, Policy: NewDUCB(PrefetchC, PrefetchGamma), Normalize: true, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = int32(slot)
		drive(a, 0, arms+4) // through the initial RR phase
	}
	for i := range rewards {
		rewards[i] = 0.5
	}
	allocs := testing.AllocsPerRun(50, func() {
		sl.StepBatch(slots, out)
		sl.RewardBatch(slots, rewards)
	})
	if allocs != 0 {
		t.Fatalf("StepBatch+RewardBatch allocate %v per sweep, want 0", allocs)
	}
}
