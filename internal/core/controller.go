package core

// Controller is the minimal protocol a simulated microarchitecture unit
// needs from its decision-maker: select an arm for the next bandit step,
// then report the step's reward. *Agent implements it; FixedArm provides
// the degenerate controller used for best-static-arm oracle runs, which —
// per §6.4 — keep one arm stable for the full experiment with no initial
// round-robin phase.
type Controller interface {
	// Step returns the arm to apply for the next bandit step.
	Step() int
	// Reward reports the reward observed at the end of the step.
	Reward(rStep float64)
	// InInitialRR reports whether the controller is still in its initial
	// round-robin exploration phase (the SMT use case lengthens bandit
	// steps during that phase).
	InInitialRR() bool
}

// RewardProbe is a per-step reward source: StepReward returns the reward
// for the bandit step that just ended, measured against whatever baseline
// the probe keeps internally (typically a diff of substrate counters
// since its previous call). The runner's built-in reward is step IPC; a
// decision scenario installs a probe when its objective is better
// expressed another way (row-hit rate, cache hit rate, ...).
type RewardProbe interface {
	StepReward() float64
}

// ProbeSetter is the optional Controller capability of receiving the
// scenario's reward probe — controllers that aggregate other controllers
// (Selector, fault wrappers) implement it by forwarding, so the probe
// reaches every learner however deeply the controller is wrapped.
type ProbeSetter interface {
	SetRewardProbe(p RewardProbe)
}

// FixedArm is a Controller that always selects one arm and ignores
// rewards. Used for best-static oracle sweeps and for wiring a
// conventional (non-learning) configuration through the same harness code
// paths as the Bandit.
type FixedArm int

// Step implements Controller.
func (f FixedArm) Step() int { return int(f) }

// Reward implements Controller.
func (FixedArm) Reward(float64) {}

// InInitialRR implements Controller; a fixed arm has no exploration phase.
func (FixedArm) InInitialRR() bool { return false }

// Compile-time interface checks.
var (
	_ Controller = (*Agent)(nil)
	_ Controller = FixedArm(0)
)
