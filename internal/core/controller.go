package core

// Controller is the minimal protocol a simulated microarchitecture unit
// needs from its decision-maker: select an arm for the next bandit step,
// then report the step's reward. *Agent implements it; FixedArm provides
// the degenerate controller used for best-static-arm oracle runs, which —
// per §6.4 — keep one arm stable for the full experiment with no initial
// round-robin phase.
type Controller interface {
	// Step returns the arm to apply for the next bandit step.
	Step() int
	// Reward reports the reward observed at the end of the step.
	Reward(rStep float64)
	// InInitialRR reports whether the controller is still in its initial
	// round-robin exploration phase (the SMT use case lengthens bandit
	// steps during that phase).
	InInitialRR() bool
}

// FixedArm is a Controller that always selects one arm and ignores
// rewards. Used for best-static oracle sweeps and for wiring a
// conventional (non-learning) configuration through the same harness code
// paths as the Bandit.
type FixedArm int

// Step implements Controller.
func (f FixedArm) Step() int { return int(f) }

// Reward implements Controller.
func (FixedArm) Reward(float64) {}

// InInitialRR implements Controller; a fixed arm has no exploration phase.
func (FixedArm) InInitialRR() bool { return false }

// Compile-time interface checks.
var (
	_ Controller = (*Agent)(nil)
	_ Controller = FixedArm(0)
)
