package cpu

import (
	"math"
	"testing"

	"microbandit/internal/core"
	"microbandit/internal/fault"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// epochStack is one fully wired simulation whose results the
// differential tests compare across execution paths.
type epochStack struct {
	r *Runner
	c *Core
}

// newEpochStack builds a bandit-controlled prefetching run over the
// given generator, optionally with a contextual controller (which
// exercises the phase-probe path).
func newEpochStack(gen trace.Generator, seed uint64, contextual bool) epochStack {
	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := New(DefaultConfig(), hier, gen)
	ens := prefetch.NewTable7Ensemble()
	var ctrl core.Controller
	if contextual {
		var err error
		ctrl, err = core.NewContextualAgent(core.ContextualConfig{
			Arms: ens.NumArms(), Algo: "ducb", Seed: seed})
		if err != nil {
			panic(err)
		}
	} else {
		ctrl = core.MustNew(core.Config{
			Arms:      ens.NumArms(),
			Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: true,
			Seed:      seed,
		})
	}
	r := NewRunner(c, ens, ctrl, ens)
	r.StepL2 = 200
	r.RecordArms()
	return epochStack{r: r, c: c}
}

// checkEpochEquivalence runs the same configuration through the chunked
// and scalar paths and asserts every observable — IPC bits, cycles,
// hierarchy counters, prefetch classification, and the arm-selection
// trace — matches exactly.
func checkEpochEquivalence(t *testing.T, name string, mk func() trace.Generator, contextual bool, insts int64) {
	t.Helper()
	chunked := newEpochStack(mk(), 7, contextual)
	scalar := newEpochStack(mk(), 7, contextual)
	scalar.c.scalar = true

	// Split the run unevenly so chunk-boundary state (partial slabs) is
	// exercised across RunInsts calls.
	chunked.r.Run(insts/3 + 1)
	chunked.r.Run(insts - insts/3 - 1)
	scalar.r.Run(insts/3 + 1)
	scalar.r.Run(insts - insts/3 - 1)

	if a, b := chunked.c.Insts(), scalar.c.Insts(); a != b {
		t.Fatalf("%s: insts %d != %d", name, a, b)
	}
	if a, b := chunked.c.Cycles(), scalar.c.Cycles(); a != b {
		t.Fatalf("%s: cycles %d != %d", name, a, b)
	}
	if a, b := math.Float64bits(chunked.c.IPC()), math.Float64bits(scalar.c.IPC()); a != b {
		t.Fatalf("%s: IPC bits %x != %x (%v vs %v)", name, a, b, chunked.c.IPC(), scalar.c.IPC())
	}
	if a, b := chunked.c.Hier().Stats(), scalar.c.Hier().Stats(); a != b {
		t.Fatalf("%s: stats %+v != %+v", name, a, b)
	}
	if a, b := chunked.c.Hier().Classify(), scalar.c.Hier().Classify(); a != b {
		t.Fatalf("%s: classification %+v != %+v", name, a, b)
	}
	if a, b := chunked.r.ArmTrace, scalar.r.ArmTrace; len(a) != len(b) {
		t.Fatalf("%s: arm trace length %d != %d", name, len(a), len(b))
	}
	for i := range chunked.r.ArmTrace {
		if chunked.r.ArmTrace[i] != scalar.r.ArmTrace[i] {
			t.Fatalf("%s: arm trace[%d] %+v != %+v", name, i,
				chunked.r.ArmTrace[i], scalar.r.ArmTrace[i])
		}
	}
	if chunked.c.FFInsts() == 0 {
		t.Fatalf("%s: chunked run reports zero fast-forwarded instructions", name)
	}
}

// TestEpochEquivalence pins the epoch-batched path against the scalar
// reference over representative catalog patterns, including the
// phase-structured mcf17 with a contextual controller (phase probes) and
// a storm-wrapped trace (fault hooks).
func TestEpochEquivalence(t *testing.T) {
	mkApp := func(name string) func() trace.Generator {
		app, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return func() trace.Generator { return app.New(3) }
	}
	cases := []struct {
		name       string
		mk         func() trace.Generator
		contextual bool
	}{
		{"stream", mkApp("lbm17"), false},
		{"chase", mkApp("omnetpp17"), false},
		{"server", mkApp("cassandra"), false},
		{"phase-ctx", mkApp("mcf17"), true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			checkEpochEquivalence(t, tc.name, tc.mk, tc.contextual, 400_000)
		})
	}
	t.Run("storm-ctx", func(t *testing.T) {
		t.Parallel()
		fs, err := fault.ParseSet("phasestorm:0.9")
		if err != nil {
			t.Fatal(err)
		}
		mk := func() trace.Generator {
			app, err := trace.ByName("mcf17")
			if err != nil {
				t.Fatal(err)
			}
			return fault.Generator(app.New(3), fs, 3)
		}
		checkEpochEquivalence(t, "storm-ctx", mk, true, 400_000)
	})
}

// TestEpochPartialRuns pins slab-state persistence: many tiny RunInsts
// calls (the multi-core interleaving pattern) must land on the same
// state as one large call.
func TestEpochPartialRuns(t *testing.T) {
	app, err := trace.ByName("ligra-bfs")
	if err != nil {
		t.Fatal(err)
	}
	one := newEpochStack(app.New(5), 5, false)
	many := newEpochStack(app.New(5), 5, false)
	one.r.Run(200_000)
	var done int64
	for i := int64(1); done < 200_000; i++ {
		n := i % 97
		if done+n > 200_000 {
			n = 200_000 - done
		}
		many.r.Run(n)
		done += n
	}
	if a, b := one.c.IPC(), many.c.IPC(); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("IPC %v != %v across split runs", a, b)
	}
	if a, b := one.c.Hier().Stats(), many.c.Hier().Stats(); a != b {
		t.Fatalf("stats %+v != %+v across split runs", a, b)
	}
}

// TestEpochRunZeroAlloc pins the epoch loop's steady state: after
// warmup, simulating through the chunked path allocates nothing.
func TestEpochRunZeroAlloc(t *testing.T) {
	app, err := trace.ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}
	s := newEpochStack(app.New(1), 1, false)
	s.r.Run(300_000) // warm: slab, Mem, prefetcher tables at high-water mark
	allocs := testing.AllocsPerRun(5, func() { s.r.Run(20_000) })
	if allocs != 0 {
		t.Fatalf("epoch loop allocates %.1f per run, want 0", allocs)
	}
}
