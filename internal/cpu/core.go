// Package cpu implements the trace-driven out-of-order core model used for
// the prefetching experiments — the project's ChampSim substitute.
//
// The model is a window (interval) model: instructions dispatch in order at
// up to FetchWidth per cycle into a ROB-sized window, execute with
// kind-specific latencies (memory operations through the internal/mem
// hierarchy, which models MSHRs and DRAM bandwidth), and retire in order at
// up to CommitWidth per cycle. Memory-level parallelism emerges naturally:
// independent loads issue as they dispatch and overlap until the ROB
// fills — exactly the mechanism that makes prefetching matter. Branch
// mispredictions redirect the front end after the branch resolves.
//
// The model deliberately omits register renaming and scheduler details: the
// Bandit only observes IPC responses to prefetch quality and bandwidth
// pressure, and those causal paths are fully present.
package cpu

import (
	"microbandit/internal/mem"
	"microbandit/internal/trace"
)

// Config holds the core parameters (Table 4 defaults).
type Config struct {
	// FetchWidth is the dispatch width per cycle.
	FetchWidth int
	// CommitWidth is the in-order retire width per cycle.
	CommitWidth int
	// ROBSize is the reorder-buffer (window) size.
	ROBSize int
	// MispredictPenalty is the front-end refill delay after a
	// mispredicted branch resolves.
	MispredictPenalty int64
	// ALULatency and FPLatency are execution latencies.
	ALULatency, FPLatency int64
}

// DefaultConfig mirrors the paper's Table 4 (Skylake-like): fetch 6,
// commit 4, 256-entry ROB.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        6,
		CommitWidth:       4,
		ROBSize:           256,
		MispredictPenalty: 12,
		ALULatency:        1,
		FPLatency:         4,
	}
}

// L2AccessFunc observes L2 demand accesses (the prefetcher training and
// bandit-step event stream).
type L2AccessFunc func(pc, addr uint64, hit bool, cycle int64)

// Core is one simulated core consuming one instruction trace.
type Core struct {
	cfg  Config
	hier *mem.Hierarchy
	gen  trace.Generator

	cycle int64 // current dispatch cycle
	slot  int   // dispatch slots consumed this cycle
	insts int64

	rob      []int64 // retire cycles, ring buffer
	robHead  int
	robCount int

	lastRetire  int64 // retire cycle of the newest instruction
	retireCount int   // commits already assigned to lastRetire

	lastLoadDone int64 // completion of the most recent load (chase deps)

	// inst is the scratch decode target handed to gen.Next. Passing a
	// stack variable's address through the Generator interface makes it
	// escape — one heap allocation per simulated instruction — so the
	// scratch lives here instead. Every Generator fully overwrites it.
	inst trace.Inst

	// OnL2Access, when set, is invoked for every L2 demand access.
	OnL2Access L2AccessFunc
}

// New builds a core over the given hierarchy and trace generator.
func New(cfg Config, hier *mem.Hierarchy, gen trace.Generator) *Core {
	if cfg.FetchWidth < 1 || cfg.CommitWidth < 1 || cfg.ROBSize < 1 {
		panic("cpu: widths and ROB size must be positive")
	}
	return &Core{cfg: cfg, hier: hier, gen: gen, rob: make([]int64, cfg.ROBSize)}
}

// Hier returns the core's memory hierarchy.
func (c *Core) Hier() *mem.Hierarchy { return c.hier }

// Gen returns the core's trace generator, so drivers can reach optional
// generator capabilities (e.g. PhaseGen's Phase id for context signatures).
func (c *Core) Gen() trace.Generator { return c.gen }

// Insts returns the number of simulated instructions.
func (c *Core) Insts() int64 { return c.insts }

// Cycles returns the elapsed cycles including the retirement of the
// youngest instruction.
func (c *Core) Cycles() int64 {
	if c.lastRetire > c.cycle {
		return c.lastRetire
	}
	return c.cycle
}

// IPC returns the cumulative instructions per cycle.
func (c *Core) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.insts) / float64(cy)
}

// RunInsts simulates n further instructions.
func (c *Core) RunInsts(n int64) {
	for i := int64(0); i < n; i++ {
		c.stepInst()
	}
}

// stepInst dispatches, executes, and schedules retirement for one
// instruction.
func (c *Core) stepInst() {
	c.gen.Next(&c.inst)
	inst := &c.inst

	// Dispatch bandwidth.
	if c.slot >= c.cfg.FetchWidth {
		c.cycle++
		c.slot = 0
	}
	// Window: a full ROB stalls dispatch until the head retires.
	if c.robCount == len(c.rob) {
		if head := c.rob[c.robHead]; head > c.cycle {
			c.cycle = head
			c.slot = 0
		}
		c.robHead++
		if c.robHead == len(c.rob) {
			c.robHead = 0
		}
		c.robCount--
	}

	dispatch := c.cycle
	var complete int64
	redirect := false

	switch inst.Kind {
	case trace.KindALU:
		complete = dispatch + c.cfg.ALULatency
	case trace.KindFP:
		complete = dispatch + c.cfg.FPLatency
	case trace.KindBranch:
		complete = dispatch + c.cfg.ALULatency
		redirect = inst.Mispredict
	case trace.KindLoad:
		issue := dispatch
		if inst.DependsOnPrev && c.lastLoadDone > issue {
			issue = c.lastLoadDone // pointer chase serializes
		}
		res := c.hier.Access(inst.Addr, false, issue)
		complete = res.Done
		c.lastLoadDone = complete
		if res.L2Access && c.OnL2Access != nil {
			c.OnL2Access(inst.PC, inst.Addr, res.L2Hit, issue)
		}
	case trace.KindStore:
		res := c.hier.Access(inst.Addr, true, dispatch)
		// Stores retire through the store buffer: the write completes in
		// the background and does not hold up commit.
		complete = dispatch + c.cfg.ALULatency
		if res.L2Access && c.OnL2Access != nil {
			c.OnL2Access(inst.PC, inst.Addr, res.L2Hit, dispatch)
		}
	default:
		complete = dispatch + c.cfg.ALULatency
	}

	// In-order retirement at CommitWidth per cycle.
	retire := complete
	if retire < c.lastRetire {
		retire = c.lastRetire
	}
	if retire == c.lastRetire {
		if c.retireCount >= c.cfg.CommitWidth {
			retire++
			c.retireCount = 1
		} else {
			c.retireCount++
		}
	} else {
		c.retireCount = 1
	}
	c.lastRetire = retire

	// robHead+robCount < 2*len(rob) always, so a conditional subtract
	// replaces the per-instruction integer division of a modulo.
	tail := c.robHead + c.robCount
	if tail >= len(c.rob) {
		tail -= len(c.rob)
	}
	c.rob[tail] = retire
	c.robCount++
	c.slot++
	c.insts++

	if redirect {
		// Fetch resumes after the branch resolves plus the refill delay.
		next := complete + c.cfg.MispredictPenalty
		if next > c.cycle {
			c.cycle = next
			c.slot = 0
		}
	}
}
