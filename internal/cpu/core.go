// Package cpu implements the trace-driven out-of-order core model used for
// the prefetching experiments — the project's ChampSim substitute.
//
// The model is a window (interval) model: instructions dispatch in order at
// up to FetchWidth per cycle into a ROB-sized window, execute with
// kind-specific latencies (memory operations through the internal/mem
// hierarchy, which models MSHRs and DRAM bandwidth), and retire in order at
// up to CommitWidth per cycle. Memory-level parallelism emerges naturally:
// independent loads issue as they dispatch and overlap until the ROB
// fills — exactly the mechanism that makes prefetching matter. Branch
// mispredictions redirect the front end after the branch resolves.
//
// The model deliberately omits register renaming and scheduler details: the
// Bandit only observes IPC responses to prefetch quality and bandwidth
// pressure, and those causal paths are fully present.
package cpu

import (
	"microbandit/internal/mem"
	"microbandit/internal/trace"
)

// Config holds the core parameters (Table 4 defaults).
type Config struct {
	// FetchWidth is the dispatch width per cycle.
	FetchWidth int
	// CommitWidth is the in-order retire width per cycle.
	CommitWidth int
	// ROBSize is the reorder-buffer (window) size.
	ROBSize int
	// MispredictPenalty is the front-end refill delay after a
	// mispredicted branch resolves.
	MispredictPenalty int64
	// ALULatency and FPLatency are execution latencies.
	ALULatency, FPLatency int64
}

// DefaultConfig mirrors the paper's Table 4 (Skylake-like): fetch 6,
// commit 4, 256-entry ROB.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        6,
		CommitWidth:       4,
		ROBSize:           256,
		MispredictPenalty: 12,
		ALULatency:        1,
		FPLatency:         4,
	}
}

// L2AccessFunc observes L2 demand accesses (the prefetcher training and
// bandit-step event stream).
type L2AccessFunc func(pc, addr uint64, hit bool, cycle int64)

// Core is one simulated core consuming one instruction trace.
//
// Execution is epoch-batched: the trace is pulled a Chunk at a time
// (trace.ChunkLen instructions) into a core-owned struct-of-arrays slab,
// and the window model runs a tight index loop over the slab — no
// interface dispatch or Inst copy per instruction. Spans without memory
// operations take a leaner pass still (see leanSpan): every observable
// event (L2 demand accesses, and through them bandit steps, telemetry
// windows, and fault activations) fires from loads and stores only, so
// memory-free spans are advanced without touching the hierarchy or the
// event hooks at all. Both loops replicate stepInst's arithmetic
// exactly; the differential tests pin chunked against scalar execution
// bit-for-bit.
type Core struct {
	cfg  Config
	hier *mem.Hierarchy
	gen  trace.Generator
	src  trace.ChunkSource

	cycle int64 // current dispatch cycle
	slot  int   // dispatch slots consumed this cycle
	insts int64

	rob      []int64 // retire cycles, ring buffer
	robHead  int
	robCount int

	lastRetire  int64 // retire cycle of the newest instruction
	retireCount int   // commits already assigned to lastRetire

	lastLoadDone int64 // completion of the most recent load (chase deps)

	chunk    trace.Chunk // current epoch's instruction slab
	chunkPos int         // instructions of chunk already simulated
	memIdx   int         // next chunk.Mem entry at or after chunkPos
	ffInsts  int64       // instructions advanced by the memory-free lean pass

	// phaseN is the stream position phase probes evaluate at: the number
	// of instructions the model has begun executing. The scalar path read
	// the generator's mutable phase state mid-instruction, which equals
	// insts+1 there; chunked generation runs ahead, so Phase recomputes
	// from this count instead.
	phaseN int64

	// inst is the scratch decode target handed to gen.Next. Passing a
	// stack variable's address through the Generator interface makes it
	// escape — one heap allocation per simulated instruction — so the
	// scratch lives here instead. Every Generator fully overwrites it.
	inst trace.Inst

	// OnL2Access, when set, is invoked for every L2 demand access.
	OnL2Access L2AccessFunc

	// scalar forces the pre-chunking reference path; set only by the
	// differential tests.
	scalar bool
}

// New builds a core over the given hierarchy and trace generator.
func New(cfg Config, hier *mem.Hierarchy, gen trace.Generator) *Core {
	if cfg.FetchWidth < 1 || cfg.CommitWidth < 1 || cfg.ROBSize < 1 {
		panic("cpu: widths and ROB size must be positive")
	}
	return &Core{cfg: cfg, hier: hier, gen: gen, src: trace.SourceOf(gen),
		rob: make([]int64, cfg.ROBSize)}
}

// Hier returns the core's memory hierarchy.
func (c *Core) Hier() *mem.Hierarchy { return c.hier }

// Gen returns the core's trace generator, so drivers can reach optional
// generator capabilities. Phase probes must go through Core.Phase, not
// the generator's own state: chunked generation runs ahead of the
// simulated position.
func (c *Core) Gen() trace.Generator { return c.gen }

// Phase reports the program phase governing the instruction the model is
// executing (the context-signature input). For phase-structured traces
// it is a pure function of the stream position, so it stays correct —
// and identical to the scalar path's mid-instruction generator probe —
// while chunked generation runs ahead.
func (c *Core) Phase() int {
	if pa, ok := c.gen.(trace.PhaseAtter); ok {
		return pa.PhaseAt(c.phaseN)
	}
	if pg, ok := c.gen.(interface{ Phase() int }); ok {
		return pg.Phase()
	}
	return 0
}

// FFInsts returns the number of instructions advanced by the memory-free
// lean pass (the fast-forward coverage numerator).
func (c *Core) FFInsts() int64 { return c.ffInsts }

// ChunkCacheStats reports the trace source's memoized-chunk hit/miss
// counts when the source is cache-backed, else zeros.
func (c *Core) ChunkCacheStats() (hits, misses int64) {
	if cs, ok := c.gen.(trace.CacheStatser); ok {
		return cs.CacheStats()
	}
	return 0, 0
}

// Insts returns the number of simulated instructions.
func (c *Core) Insts() int64 { return c.insts }

// Cycles returns the elapsed cycles including the retirement of the
// youngest instruction.
func (c *Core) Cycles() int64 {
	if c.lastRetire > c.cycle {
		return c.lastRetire
	}
	return c.cycle
}

// IPC returns the cumulative instructions per cycle.
func (c *Core) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.insts) / float64(cy)
}

// RunInsts simulates n further instructions through the epoch-batched
// path: refill the slab when drained, then run the window model over the
// buffered span. Partial consumption is fine — the slab position
// persists across calls, so interleaved callers (RunCtx chunking,
// multi-core timestamp-ordered stepping) see the same stream.
func (c *Core) RunInsts(n int64) {
	if c.scalar {
		c.runInstsScalar(n)
		return
	}
	for n > 0 {
		if c.chunkPos == c.chunk.Len() {
			c.chunk.Reset(trace.ChunkLen)
			c.src.NextChunk(&c.chunk)
			c.chunkPos, c.memIdx = 0, 0
		}
		k := int(n)
		if rem := c.chunk.Len() - c.chunkPos; k > rem {
			k = rem
		}
		c.runSpan(c.chunkPos, c.chunkPos+k)
		n -= int64(k)
	}
}

// runSpan simulates slab instructions [lo, hi), alternating memory-free
// lean spans with full memory steps. chunk.Mem partitions the span: an
// index absent from it is never a load or store, so everything between
// consecutive memory operations is safe to fast-forward.
func (c *Core) runSpan(lo, hi int) {
	mem := c.chunk.Mem
	i := lo
	for i < hi {
		next := hi
		if c.memIdx < len(mem) {
			if m := int(mem[c.memIdx]); m < hi {
				next = m
			}
		}
		if next > i {
			c.leanSpan(i, next)
			i = next
		}
		if i < hi {
			c.stepMemAt(i)
			c.memIdx++
			i++
		}
	}
	c.chunkPos = hi
}

// leanSpan fast-forwards the window model over slab instructions
// [lo, hi), none of which is a load or store. The arithmetic replicates
// stepInst case by case; what is skipped is everything that cannot
// happen here — hierarchy accesses, load serialization, and the
// OnL2Access hook (so no bandit step, telemetry window, arm activation,
// or fault event can fire inside the span; mispredict redirects are pure
// window arithmetic and are handled in full).
func (c *Core) leanSpan(lo, hi int) {
	kinds := c.chunk.Kind
	flags := c.chunk.Flags
	// Hoist the window state into locals: nothing inside the loop can
	// observe the fields, so the compiler is free of aliasing reloads and
	// the state lives in registers across the span.
	rob := c.rob
	robLen := len(rob)
	cycle, slot := c.cycle, c.slot
	robHead, robCount := c.robHead, c.robCount
	lastRetire, retireCount := c.lastRetire, c.retireCount
	fetchWidth := c.cfg.FetchWidth
	aluLat, fpLat := c.cfg.ALULatency, c.cfg.FPLatency
	commitWidth := c.cfg.CommitWidth
	mispredict := c.cfg.MispredictPenalty
	for i := lo; i < hi; i++ {
		// Dispatch bandwidth.
		if slot >= fetchWidth {
			cycle++
			slot = 0
		}
		// Window: a full ROB stalls dispatch until the head retires.
		if robCount == robLen {
			if head := rob[robHead]; head > cycle {
				cycle = head
				slot = 0
			}
			robHead++
			if robHead == robLen {
				robHead = 0
			}
			robCount--
		}

		complete := cycle + aluLat
		redirect := false
		switch kinds[i] {
		case trace.KindFP:
			complete = cycle + fpLat
		case trace.KindBranch:
			redirect = flags[i]&trace.FlagMispredict != 0
		}

		// In-order retirement at CommitWidth per cycle.
		retire := complete
		if retire < lastRetire {
			retire = lastRetire
		}
		if retire == lastRetire {
			if retireCount >= commitWidth {
				retire++
				retireCount = 1
			} else {
				retireCount++
			}
		} else {
			retireCount = 1
		}
		lastRetire = retire

		tail := robHead + robCount
		if tail >= robLen {
			tail -= robLen
		}
		rob[tail] = retire
		robCount++
		slot++

		if redirect {
			next := complete + mispredict
			if next > cycle {
				cycle = next
				slot = 0
			}
		}
	}
	c.cycle, c.slot = cycle, slot
	c.robHead, c.robCount = robHead, robCount
	c.lastRetire, c.retireCount = lastRetire, retireCount
	c.insts += int64(hi - lo)
	c.ffInsts += int64(hi - lo)
}

// stepMemAt dispatches, executes, and schedules retirement for the load
// or store at slab index i — stepInst's memory cases over the slab.
func (c *Core) stepMemAt(i int) {
	c.phaseN = c.insts + 1

	if c.slot >= c.cfg.FetchWidth {
		c.cycle++
		c.slot = 0
	}
	if c.robCount == len(c.rob) {
		if head := c.rob[c.robHead]; head > c.cycle {
			c.cycle = head
			c.slot = 0
		}
		c.robHead++
		if c.robHead == len(c.rob) {
			c.robHead = 0
		}
		c.robCount--
	}

	dispatch := c.cycle
	var complete int64
	addr := c.chunk.Addr[i]
	if c.chunk.Kind[i] == trace.KindLoad {
		issue := dispatch
		if c.chunk.Flags[i]&trace.FlagDependsOnPrev != 0 && c.lastLoadDone > issue {
			issue = c.lastLoadDone // pointer chase serializes
		}
		res := c.hier.Access(addr, false, issue)
		complete = res.Done
		c.lastLoadDone = complete
		if res.L2Access && c.OnL2Access != nil {
			c.OnL2Access(c.chunk.PC[i], addr, res.L2Hit, issue)
		}
	} else {
		res := c.hier.Access(addr, true, dispatch)
		// Stores retire through the store buffer: the write completes in
		// the background and does not hold up commit.
		complete = dispatch + c.cfg.ALULatency
		if res.L2Access && c.OnL2Access != nil {
			c.OnL2Access(c.chunk.PC[i], addr, res.L2Hit, dispatch)
		}
	}

	retire := complete
	if retire < c.lastRetire {
		retire = c.lastRetire
	}
	if retire == c.lastRetire {
		if c.retireCount >= c.cfg.CommitWidth {
			retire++
			c.retireCount = 1
		} else {
			c.retireCount++
		}
	} else {
		c.retireCount = 1
	}
	c.lastRetire = retire

	tail := c.robHead + c.robCount
	if tail >= len(c.rob) {
		tail -= len(c.rob)
	}
	c.rob[tail] = retire
	c.robCount++
	c.slot++
	c.insts++
}

// runInstsScalar is the pre-chunking reference implementation: one
// Generator.Next call per instruction. The differential tests pin the
// epoch-batched path against it; production callers use RunInsts.
func (c *Core) runInstsScalar(n int64) {
	for i := int64(0); i < n; i++ {
		c.stepInst()
	}
}

// stepInst dispatches, executes, and schedules retirement for one
// instruction.
func (c *Core) stepInst() {
	c.gen.Next(&c.inst)
	inst := &c.inst
	c.phaseN = c.insts + 1

	// Dispatch bandwidth.
	if c.slot >= c.cfg.FetchWidth {
		c.cycle++
		c.slot = 0
	}
	// Window: a full ROB stalls dispatch until the head retires.
	if c.robCount == len(c.rob) {
		if head := c.rob[c.robHead]; head > c.cycle {
			c.cycle = head
			c.slot = 0
		}
		c.robHead++
		if c.robHead == len(c.rob) {
			c.robHead = 0
		}
		c.robCount--
	}

	dispatch := c.cycle
	var complete int64
	redirect := false

	switch inst.Kind {
	case trace.KindALU:
		complete = dispatch + c.cfg.ALULatency
	case trace.KindFP:
		complete = dispatch + c.cfg.FPLatency
	case trace.KindBranch:
		complete = dispatch + c.cfg.ALULatency
		redirect = inst.Mispredict
	case trace.KindLoad:
		issue := dispatch
		if inst.DependsOnPrev && c.lastLoadDone > issue {
			issue = c.lastLoadDone // pointer chase serializes
		}
		res := c.hier.Access(inst.Addr, false, issue)
		complete = res.Done
		c.lastLoadDone = complete
		if res.L2Access && c.OnL2Access != nil {
			c.OnL2Access(inst.PC, inst.Addr, res.L2Hit, issue)
		}
	case trace.KindStore:
		res := c.hier.Access(inst.Addr, true, dispatch)
		// Stores retire through the store buffer: the write completes in
		// the background and does not hold up commit.
		complete = dispatch + c.cfg.ALULatency
		if res.L2Access && c.OnL2Access != nil {
			c.OnL2Access(inst.PC, inst.Addr, res.L2Hit, dispatch)
		}
	default:
		complete = dispatch + c.cfg.ALULatency
	}

	// In-order retirement at CommitWidth per cycle.
	retire := complete
	if retire < c.lastRetire {
		retire = c.lastRetire
	}
	if retire == c.lastRetire {
		if c.retireCount >= c.cfg.CommitWidth {
			retire++
			c.retireCount = 1
		} else {
			c.retireCount++
		}
	} else {
		c.retireCount = 1
	}
	c.lastRetire = retire

	// robHead+robCount < 2*len(rob) always, so a conditional subtract
	// replaces the per-instruction integer division of a modulo.
	tail := c.robHead + c.robCount
	if tail >= len(c.rob) {
		tail -= len(c.rob)
	}
	c.rob[tail] = retire
	c.robCount++
	c.slot++
	c.insts++

	if redirect {
		// Fetch resumes after the branch resolves plus the refill delay.
		next := complete + c.cfg.MispredictPenalty
		if next > c.cycle {
			c.cycle = next
			c.slot = 0
		}
	}
}
