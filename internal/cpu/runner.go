package cpu

import (
	"context"

	"microbandit/internal/core"
	"microbandit/internal/hw"
	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/prefetch"
)

// StepL2Accesses is the paper's bandit step length for prefetching: 1,000
// L2 demand accesses (Table 6).
const StepL2Accesses = 1000

// Runner wires a Core, its memory hierarchy, the L2 (and optionally L1)
// prefetchers, and — when the L2 prefetcher is bandit-controlled — the
// controller that selects arms every bandit step.
//
// The runner reproduces the paper's control loop (§5.2, §6.1): the bandit
// step is a fixed number of L2 demand accesses; the step reward is the
// core's IPC over the step; after each step the controller picks the next
// arm, which takes effect only after the conservative 500-cycle selection
// latency, during which the prefetcher keeps operating with the old arm.
type Runner struct {
	Core *Core
	Hier *mem.Hierarchy

	// L2Pf is the L2 prefetcher (fills L2/LLC). May be prefetch.Null{}.
	L2Pf prefetch.Prefetcher
	// L1Pf, when non-nil, is an additional L1 prefetcher (fills L1/L2) —
	// the multi-level configurations of Fig. 12.
	L1Pf prefetch.Prefetcher

	// Ctrl selects arms on Tunable when both are non-nil.
	Ctrl core.Controller
	// Tunable is the arm-controlled unit the bandit steers. Historically
	// always the L2 prefetcher itself; the scenario subsystem plugs in
	// other decision problems (DRAM scheduling, cache insertion, degree
	// throttling) through the same Actuator surface.
	Tunable Actuator

	// Probe, when non-nil, replaces the built-in step-IPC reward with a
	// scenario-specific one (core.RewardProbe). The probe is called
	// exactly once per completed bandit step, after the step's simulation
	// and before the next arm selection, so counter-diffing probes see
	// one step per call.
	Probe core.RewardProbe

	// StepL2 is the bandit step length in L2 demand accesses.
	StepL2 int
	// SelectLatency is the arm-selection latency in cycles.
	SelectLatency int64

	stepAccesses   int
	stepStartInsts int64
	stepStartCycle int64

	pendingArm      int
	pendingActivate int64
	havePending     bool

	// bandwidth-utilization sampling for BandwidthAware prefetchers.
	bwLastBusy  float64
	bwLastCycle int64

	// sigLast is the counter snapshot the next context signature diffs
	// against. Only maintained when Ctrl implements core.ContextSetter.
	sigLast obsBaseline

	// ArmTrace, when enabled via RecordArms, logs (cycle, arm) pairs;
	// consecutive selections of the same arm collapse into one sample.
	ArmTrace    []ArmSample
	recordArms  bool
	rewardCount int64

	// Obs, when non-nil, receives KindInterval substrate measurements
	// (interval IPC, MPKI, prefetch accuracy/coverage, DRAM bandwidth
	// utilization) every ObsEvery bandit steps. For non-learning runs
	// (Ctrl == nil) the interval is ObsEvery windows of StepL2 demand
	// accesses, so conventional prefetchers report on the same scale.
	Obs      obs.Recorder
	ObsEvery int

	// ObsSimCounters additionally emits simulator-effectiveness fields on
	// each interval: the chunk-cache hit rate (when the trace source is
	// cache-backed) and the fast-forward coverage. Off by default so
	// recorded telemetry streams stay byte-identical with builds that
	// predate the fields; the bench matrix turns it on.
	ObsSimCounters bool

	obsSteps int64 // completed telemetry windows
	obsLast  obsBaseline

	// pfBuf is the reusable prefetch-proposal buffer handed to
	// Prefetcher.Operate; reuse keeps the per-L2-access path allocation
	// free.
	pfBuf []uint64
}

// obsBaseline is the cumulative-counter snapshot an interval diffs
// against.
type obsBaseline struct {
	insts, cycles int64
	stats         mem.Stats
	class         mem.Classification
	busy          float64

	// Simulator-effectiveness counters (only consumed when
	// ObsSimCounters is set).
	ff                     int64
	cacheHits, cacheMisses int64
}

// ArmSample is one entry of the exploration trace (Fig. 7).
type ArmSample struct {
	Cycle int64
	Arm   int
}

// Actuator is the minimal arm surface the runner drives: the
// scenario-agnostic half of prefetch.Tunable (and of scenario.Tunable,
// which both satisfy it structurally). Apply must tolerate being called
// repeatedly with the current arm and must not allocate in steady state.
type Actuator interface {
	// NumArms returns the number of selectable arms.
	NumArms() int
	// Apply switches the unit to the given arm; panics if out of range.
	Apply(arm int)
}

// NewRunner builds a runner. ctrl and tun may both be nil for
// conventional (non-learning) prefetchers.
func NewRunner(c *Core, l2pf prefetch.Prefetcher, ctrl core.Controller, tun Actuator) *Runner {
	r := &Runner{
		Core:          c,
		Hier:          c.Hier(),
		L2Pf:          l2pf,
		Ctrl:          ctrl,
		Tunable:       tun,
		StepL2:        StepL2Accesses,
		SelectLatency: hw.SelectLatencyConservative,
		pendingArm:    -1,
	}
	c.OnL2Access = r.onL2Access
	return r
}

// RecordArms enables the exploration trace.
func (r *Runner) RecordArms() { r.recordArms = true }

// Steps returns the number of completed bandit steps.
func (r *Runner) Steps() int64 { return r.rewardCount }

// Run simulates n instructions, driving the bandit protocol.
func (r *Runner) Run(n int64) {
	r.primeFirstArm()
	r.Core.RunInsts(n)
}

// runCtxChunk is how many instructions RunCtx simulates between
// cancellation checks: small enough that an interrupt lands within tens
// of milliseconds, large enough that the check is free.
const runCtxChunk = 100_000

// RunCtx is Run with cooperative cancellation: the simulation proceeds
// in chunks and stops at the first chunk boundary after ctx is done,
// returning ctx's error. All statistics (IPC, hierarchy counters, arm
// trace, telemetry) remain valid for the instructions that did run, so
// callers can report partial results after an interrupt.
func (r *Runner) RunCtx(ctx context.Context, n int64) error {
	r.primeFirstArm()
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := int64(runCtxChunk)
		if chunk > n {
			chunk = n
		}
		r.Core.RunInsts(chunk)
		n -= chunk
	}
	return ctx.Err()
}

// primeFirstArm applies the episode's first arm immediately (no
// selection latency) on the first call of a bandit-controlled run.
func (r *Runner) primeFirstArm() {
	if r.Ctrl != nil && r.Tunable != nil && r.rewardCount == 0 && !r.havePending && r.stepAccesses == 0 {
		r.setContext()
		arm := r.Ctrl.Step()
		r.Tunable.Apply(arm)
		r.logArm(0, arm)
	}
}

// setContext feeds the upcoming bandit step's state signature to a
// contextual controller: the generator's phase id (when the trace is
// phase-structured) plus the MPKI and DRAM-bandwidth-utilization bands of
// the interval since the previous signature point. Plain controllers are
// never asked — the hook costs one type assertion per bandit step.
func (r *Runner) setContext() {
	cs, ok := r.Ctrl.(core.ContextSetter)
	if !ok {
		return
	}
	phase := r.Core.Phase()
	cur := obsBaseline{
		insts:  r.Core.Insts(),
		cycles: r.Core.Cycles(),
		busy:   r.Hier.DRAM().BusyCycles(),
	}
	cur.stats.LLCMisses = r.Hier.Stats().LLCMisses
	last := r.sigLast
	r.sigLast = cur

	mpki, bwUtil := 0.0, 0.0
	if dInsts := float64(cur.insts - last.insts); dInsts > 0 {
		mpki = float64(cur.stats.LLCMisses-last.stats.LLCMisses) / (dInsts / 1000)
	}
	if dCycles := float64(cur.cycles - last.cycles); dCycles > 0 {
		bwUtil = (cur.busy - last.busy) / dCycles
		if bwUtil > 1 {
			bwUtil = 1
		}
	}
	cs.SetContext(core.SignatureOf(phase, mpki, bwUtil))
}

func (r *Runner) logArm(cycle int64, arm int) {
	if !r.recordArms {
		return
	}
	if n := len(r.ArmTrace); n > 0 && r.ArmTrace[n-1].Arm == arm {
		return
	}
	r.ArmTrace = append(r.ArmTrace, ArmSample{Cycle: cycle, Arm: arm})
}

// onL2Access is the per-L2-demand-access hook: trains prefetchers, issues
// their proposals, and advances the bandit step machinery.
func (r *Runner) onL2Access(pc, addr uint64, hit bool, cycle int64) {
	// Activate a pending arm once its selection latency has elapsed.
	if r.havePending && cycle >= r.pendingActivate {
		r.Tunable.Apply(r.pendingArm)
		r.logArm(cycle, r.pendingArm)
		r.havePending = false
	}

	ev := prefetch.Event{PC: pc, Addr: addr, Hit: hit, Cycle: cycle}
	if r.L2Pf != nil {
		target := mem.PrefToL2
		if ta, ok := r.L2Pf.(prefetch.TargetAware); ok && ta.LLCOnly() {
			target = mem.PrefToLLC // §9 target-cache-level extension
		}
		r.pfBuf = r.L2Pf.Operate(ev, r.pfBuf[:0])
		for _, a := range r.pfBuf {
			r.Hier.Prefetch(a, cycle, target)
		}
	}
	if r.L1Pf != nil {
		r.pfBuf = r.L1Pf.Operate(ev, r.pfBuf[:0])
		for _, a := range r.pfBuf {
			r.Hier.Prefetch(a, cycle, mem.PrefToL1)
		}
	}

	// Feed DRAM bandwidth utilization to bandwidth-aware prefetchers
	// (Pythia) over a sliding window.
	if ba, ok := r.L2Pf.(prefetch.BandwidthAware); ok && cycle > r.bwLastCycle+1024 {
		busy := r.Hier.DRAM().BusyCycles()
		window := float64(cycle - r.bwLastCycle)
		util := (busy - r.bwLastBusy) / window
		if util > 1 {
			util = 1
		}
		ba.SetBandwidthUtil(util)
		r.bwLastBusy, r.bwLastCycle = busy, cycle
	}

	if r.Ctrl == nil || r.Tunable == nil {
		// Non-learning run: telemetry windows still advance on the same
		// StepL2-access scale so conventional prefetchers are comparable.
		if r.Obs != nil {
			r.stepAccesses++
			if r.stepAccesses >= r.StepL2 {
				r.stepAccesses = 0
				r.obsWindow(cycle)
			}
		}
		return
	}
	r.stepAccesses++
	if r.stepAccesses < r.StepL2 {
		return
	}
	// Bandit step complete: reward is the step's IPC, or the scenario
	// probe's measurement when one is installed.
	insts := r.Core.Insts() - r.stepStartInsts
	cycles := r.Core.Cycles() - r.stepStartCycle
	reward := 0.0
	if r.Probe != nil {
		reward = r.Probe.StepReward()
	} else if cycles > 0 {
		reward = float64(insts) / float64(cycles)
	}
	r.Ctrl.Reward(reward)
	r.rewardCount++
	r.obsWindow(cycle)
	r.setContext()
	arm := r.Ctrl.Step()
	r.pendingArm = arm
	r.pendingActivate = cycle + r.SelectLatency
	r.havePending = true

	r.stepAccesses = 0
	r.stepStartInsts = r.Core.Insts()
	r.stepStartCycle = r.Core.Cycles()
}

// obsWindow closes one telemetry window and, every ObsEvery windows,
// emits a KindInterval event with substrate measurements computed as
// deltas against the previous emission. All rates guard their
// denominators: an empty interval reports 0, never NaN/Inf.
func (r *Runner) obsWindow(cycle int64) {
	if r.Obs == nil || r.ObsEvery <= 0 {
		return
	}
	r.obsSteps++
	if r.obsSteps%int64(r.ObsEvery) != 0 {
		return
	}
	cur := obsBaseline{
		insts:  r.Core.Insts(),
		cycles: r.Core.Cycles(),
		stats:  r.Hier.Stats(),
		class:  r.Hier.Classify(),
		busy:   r.Hier.DRAM().BusyCycles(),
	}
	if r.ObsSimCounters {
		cur.ff = r.Core.FFInsts()
		cur.cacheHits, cur.cacheMisses = r.Core.ChunkCacheStats()
	}
	last := r.obsLast
	r.obsLast = cur

	ratio := func(num, den float64) float64 {
		if den <= 0 {
			return 0
		}
		return num / den
	}
	dInsts := float64(cur.insts - last.insts)
	dCycles := float64(cur.cycles - last.cycles)
	dMisses := float64(cur.stats.LLCMisses - last.stats.LLCMisses)
	dTimely := float64(cur.class.Timely - last.class.Timely)
	dLate := float64(cur.class.Late - last.class.Late)
	dWrong := float64(cur.class.Wrong - last.class.Wrong)
	bwUtil := ratio(cur.busy-last.busy, dCycles)
	if bwUtil > 1 {
		bwUtil = 1
	}
	fields := obs.NewFields().
		Set(obs.FieldIPC, ratio(dInsts, dCycles)).
		Set(obs.FieldMPKI, ratio(dMisses, dInsts/1000)).
		Set(obs.FieldPrefAccuracy, ratio(dTimely+dLate, dTimely+dLate+dWrong)).
		Set(obs.FieldPrefCoverage, ratio(dTimely, dTimely+dMisses)).
		Set(obs.FieldDRAMBWUtil, bwUtil)
	if r.ObsSimCounters {
		dHits := float64(cur.cacheHits - last.cacheHits)
		dMiss := float64(cur.cacheMisses - last.cacheMisses)
		fields.
			Set(obs.FieldChunkHitRate, ratio(dHits, dHits+dMiss)).
			Set(obs.FieldFFCoverage, ratio(float64(cur.ff-last.ff), dInsts))
	}
	r.Obs.Record(obs.Event{Kind: obs.KindInterval, Step: r.obsSteps, Cycle: cycle, Fields: fields})
}
