package cpu

import (
	"microbandit/internal/core"
	"microbandit/internal/hw"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
)

// StepL2Accesses is the paper's bandit step length for prefetching: 1,000
// L2 demand accesses (Table 6).
const StepL2Accesses = 1000

// Runner wires a Core, its memory hierarchy, the L2 (and optionally L1)
// prefetchers, and — when the L2 prefetcher is bandit-controlled — the
// controller that selects arms every bandit step.
//
// The runner reproduces the paper's control loop (§5.2, §6.1): the bandit
// step is a fixed number of L2 demand accesses; the step reward is the
// core's IPC over the step; after each step the controller picks the next
// arm, which takes effect only after the conservative 500-cycle selection
// latency, during which the prefetcher keeps operating with the old arm.
type Runner struct {
	Core *Core
	Hier *mem.Hierarchy

	// L2Pf is the L2 prefetcher (fills L2/LLC). May be prefetch.Null{}.
	L2Pf prefetch.Prefetcher
	// L1Pf, when non-nil, is an additional L1 prefetcher (fills L1/L2) —
	// the multi-level configurations of Fig. 12.
	L1Pf prefetch.Prefetcher

	// Ctrl selects arms on Tunable when both are non-nil.
	Ctrl core.Controller
	// Tunable is the arm-controlled prefetcher (normally L2Pf itself).
	Tunable prefetch.Tunable

	// StepL2 is the bandit step length in L2 demand accesses.
	StepL2 int
	// SelectLatency is the arm-selection latency in cycles.
	SelectLatency int64

	stepAccesses   int
	stepStartInsts int64
	stepStartCycle int64

	pendingArm      int
	pendingActivate int64
	havePending     bool

	// bandwidth-utilization sampling for BandwidthAware prefetchers.
	bwLastBusy  float64
	bwLastCycle int64

	// ArmTrace, when enabled via RecordArms, logs (cycle, arm) pairs;
	// consecutive selections of the same arm collapse into one sample.
	ArmTrace    []ArmSample
	recordArms  bool
	rewardCount int64
}

// ArmSample is one entry of the exploration trace (Fig. 7).
type ArmSample struct {
	Cycle int64
	Arm   int
}

// NewRunner builds a runner. ctrl and tun may both be nil for
// conventional (non-learning) prefetchers.
func NewRunner(c *Core, l2pf prefetch.Prefetcher, ctrl core.Controller, tun prefetch.Tunable) *Runner {
	r := &Runner{
		Core:          c,
		Hier:          c.Hier(),
		L2Pf:          l2pf,
		Ctrl:          ctrl,
		Tunable:       tun,
		StepL2:        StepL2Accesses,
		SelectLatency: hw.SelectLatencyConservative,
		pendingArm:    -1,
	}
	c.OnL2Access = r.onL2Access
	return r
}

// RecordArms enables the exploration trace.
func (r *Runner) RecordArms() { r.recordArms = true }

// Steps returns the number of completed bandit steps.
func (r *Runner) Steps() int64 { return r.rewardCount }

// Run simulates n instructions, driving the bandit protocol.
func (r *Runner) Run(n int64) {
	if r.Ctrl != nil && r.Tunable != nil && r.rewardCount == 0 && !r.havePending && r.stepAccesses == 0 {
		// First arm applies immediately at the start of the episode.
		arm := r.Ctrl.Step()
		r.Tunable.Apply(arm)
		r.logArm(0, arm)
	}
	r.Core.RunInsts(n)
}

func (r *Runner) logArm(cycle int64, arm int) {
	if !r.recordArms {
		return
	}
	if n := len(r.ArmTrace); n > 0 && r.ArmTrace[n-1].Arm == arm {
		return
	}
	r.ArmTrace = append(r.ArmTrace, ArmSample{Cycle: cycle, Arm: arm})
}

// onL2Access is the per-L2-demand-access hook: trains prefetchers, issues
// their proposals, and advances the bandit step machinery.
func (r *Runner) onL2Access(pc, addr uint64, hit bool, cycle int64) {
	// Activate a pending arm once its selection latency has elapsed.
	if r.havePending && cycle >= r.pendingActivate {
		r.Tunable.Apply(r.pendingArm)
		r.logArm(cycle, r.pendingArm)
		r.havePending = false
	}

	ev := prefetch.Event{PC: pc, Addr: addr, Hit: hit, Cycle: cycle}
	if r.L2Pf != nil {
		target := mem.PrefToL2
		if ta, ok := r.L2Pf.(prefetch.TargetAware); ok && ta.LLCOnly() {
			target = mem.PrefToLLC // §9 target-cache-level extension
		}
		for _, a := range r.L2Pf.Operate(ev) {
			r.Hier.Prefetch(a, cycle, target)
		}
	}
	if r.L1Pf != nil {
		for _, a := range r.L1Pf.Operate(ev) {
			r.Hier.Prefetch(a, cycle, mem.PrefToL1)
		}
	}

	// Feed DRAM bandwidth utilization to bandwidth-aware prefetchers
	// (Pythia) over a sliding window.
	if ba, ok := r.L2Pf.(prefetch.BandwidthAware); ok && cycle > r.bwLastCycle+1024 {
		busy := r.Hier.DRAM().BusyCycles()
		window := float64(cycle - r.bwLastCycle)
		util := (busy - r.bwLastBusy) / window
		if util > 1 {
			util = 1
		}
		ba.SetBandwidthUtil(util)
		r.bwLastBusy, r.bwLastCycle = busy, cycle
	}

	if r.Ctrl == nil || r.Tunable == nil {
		return
	}
	r.stepAccesses++
	if r.stepAccesses < r.StepL2 {
		return
	}
	// Bandit step complete: reward is the step's IPC.
	insts := r.Core.Insts() - r.stepStartInsts
	cycles := r.Core.Cycles() - r.stepStartCycle
	ipc := 0.0
	if cycles > 0 {
		ipc = float64(insts) / float64(cycles)
	}
	r.Ctrl.Reward(ipc)
	r.rewardCount++
	arm := r.Ctrl.Step()
	r.pendingArm = arm
	r.pendingActivate = cycle + r.SelectLatency
	r.havePending = true

	r.stepAccesses = 0
	r.stepStartInsts = r.Core.Insts()
	r.stepStartCycle = r.Core.Cycles()
}
