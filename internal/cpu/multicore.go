package cpu

// RunMultiCore co-simulates several runners that share an LLC and a DRAM
// channel until every core has executed instsPerCore instructions (§6.2's
// four-core methodology). Cores advance in timestamp order — always the
// core with the smallest local cycle steps next — so contention on the
// shared resources is observed in (approximately) global time order.
func RunMultiCore(runners []*Runner, instsPerCore int64) {
	if len(runners) == 0 {
		return
	}
	// Prime the bandit controllers before interleaving.
	for _, r := range runners {
		r.Run(0)
	}
	for {
		var next *Runner
		for _, r := range runners {
			if r.Core.Insts() >= instsPerCore {
				continue
			}
			if next == nil || r.Core.cycle < next.Core.cycle {
				next = r
			}
		}
		if next == nil {
			return
		}
		// Step a small batch to amortize the selection scan.
		budget := instsPerCore - next.Core.Insts()
		if budget > 64 {
			budget = 64
		}
		next.Core.RunInsts(budget)
	}
}

// SumIPC returns the sum of the runners' IPCs — the multi-core performance
// metric the paper reports (§6.4).
func SumIPC(runners []*Runner) float64 {
	total := 0.0
	for _, r := range runners {
		total += r.Core.IPC()
	}
	return total
}
