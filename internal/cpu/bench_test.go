package cpu

import (
	"testing"

	"microbandit/internal/core"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// benchRunner builds the configuration the experiments spend most of
// their time in (and the one internal/simbench measures): the
// bandit-controlled Table 7 ensemble over the default hierarchy.
func benchRunner(b testing.TB, appName string) *Runner {
	app, err := trace.ByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := New(DefaultConfig(), hier, app.New(1))
	ens := prefetch.NewTable7Ensemble()
	ctrl := core.MustNew(core.Config{
		Arms:      ens.NumArms(),
		Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
		Normalize: true,
		Seed:      1,
	})
	return NewRunner(c, ens, ctrl, ens)
}

// BenchmarkRunnerRun measures end-to-end simulated instructions per
// second of the bandit loop (b.N instructions per iteration batch).
func BenchmarkRunnerRun(b *testing.B) {
	for _, app := range []string{"lbm17", "omnetpp17"} {
		b.Run(app, func(b *testing.B) {
			r := benchRunner(b, app)
			r.Run(200_000) // warmup: tables and queues reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			r.Run(int64(b.N))
		})
	}
}

// TestRunnerStepZeroAlloc pins the headline property of the hot path:
// once warm, simulating instructions through the full stack — trace
// generation, core model, hierarchy, prefetcher ensemble, bandit
// controller — performs zero heap allocations (telemetry off, arm
// trace off).
func TestRunnerStepZeroAlloc(t *testing.T) {
	for _, app := range []string{"lbm17", "omnetpp17"} {
		r := benchRunner(t, app)
		r.Run(300_000) // warmup: reach every capacity high-water mark
		if n := testing.AllocsPerRun(5, func() {
			r.Run(20_000)
		}); n != 0 {
			t.Errorf("%s: Runner.Run allocates %.1f times per 20k insts, want 0", app, n)
		}
	}
}
