package cpu

import (
	"testing"

	"microbandit/internal/core"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// aluGen emits only ALU instructions.
type aluGen struct{ pc uint64 }

func (g *aluGen) Name() string { return "alu" }
func (g *aluGen) Next(i *trace.Inst) {
	g.pc += 4
	*i = trace.Inst{PC: g.pc, Kind: trace.KindALU}
}

// branchyGen emits mispredicted branches every k instructions.
type branchyGen struct {
	pc, n uint64
	every uint64
}

func (g *branchyGen) Name() string { return "branchy" }
func (g *branchyGen) Next(i *trace.Inst) {
	g.pc += 4
	g.n++
	if g.n%g.every == 0 {
		*i = trace.Inst{PC: g.pc, Kind: trace.KindBranch, Mispredict: true}
		return
	}
	*i = trace.Inst{PC: g.pc, Kind: trace.KindALU}
}

// streamGen scans memory sequentially in 16-byte elements (four accesses
// per cache line, like a real array scan) with one load per aluPer+1
// instructions.
type streamGen struct {
	pc, pos uint64
	n       uint64
	aluPer  uint64
}

func (g *streamGen) Name() string { return "stream" }
func (g *streamGen) Next(i *trace.Inst) {
	g.pc += 4
	g.n++
	if g.n%(g.aluPer+1) == 0 {
		g.pos += 16
		*i = trace.Inst{PC: 0x1000, Addr: 0x10_0000_0000 + g.pos, Kind: trace.KindLoad}
		return
	}
	*i = trace.Inst{PC: g.pc, Kind: trace.KindALU}
}

func newCore(gen trace.Generator) *Core {
	return New(DefaultConfig(), mem.NewHierarchy(mem.DefaultConfig()), gen)
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}, mem.NewHierarchy(mem.DefaultConfig()), &aluGen{})
}

func TestIPCBoundedByCommitWidth(t *testing.T) {
	c := newCore(&aluGen{})
	c.RunInsts(100_000)
	ipc := c.IPC()
	if ipc > float64(DefaultConfig().CommitWidth)+0.01 {
		t.Errorf("IPC %.2f exceeds commit width", ipc)
	}
	// Pure ALU code should saturate commit width (within a few percent).
	if ipc < 3.8 {
		t.Errorf("ALU-only IPC = %.2f, want ~4", ipc)
	}
}

func TestMispredictionsHurt(t *testing.T) {
	clean := newCore(&aluGen{})
	clean.RunInsts(50_000)
	dirty := newCore(&branchyGen{every: 20})
	dirty.RunInsts(50_000)
	if dirty.IPC() >= clean.IPC()*0.8 {
		t.Errorf("mispredicts: IPC %.2f vs clean %.2f — penalty too weak", dirty.IPC(), clean.IPC())
	}
}

func TestMemoryBoundIsSlower(t *testing.T) {
	cpuBound := newCore(&aluGen{})
	cpuBound.RunInsts(50_000)
	memBound := newCore(&streamGen{aluPer: 1})
	memBound.RunInsts(50_000)
	if memBound.IPC() >= cpuBound.IPC()*0.7 {
		t.Errorf("memory-bound IPC %.2f not clearly below CPU-bound %.2f",
			memBound.IPC(), cpuBound.IPC())
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	mkChase := func(dep bool) trace.Generator {
		app, err := trace.ByName("canneal")
		if err != nil {
			t.Fatal(err)
		}
		g := app.New(1)
		if !dep {
			return stripDeps{g}
		}
		return g
	}
	depCore := newCore(mkChase(true))
	depCore.RunInsts(50_000)
	indCore := newCore(mkChase(false))
	indCore.RunInsts(50_000)
	if depCore.IPC() >= indCore.IPC() {
		t.Errorf("dependent chase IPC %.3f >= independent %.3f", depCore.IPC(), indCore.IPC())
	}
}

// stripDeps removes DependsOnPrev to model independent random loads.
type stripDeps struct{ trace.Generator }

func (s stripDeps) Next(i *trace.Inst) {
	s.Generator.Next(i)
	i.DependsOnPrev = false
}

func TestPrefetchingHelpsStreams(t *testing.T) {
	// A stream light enough not to saturate the DRAM channel: prefetches
	// run ahead of demand and land timely; the gain comes from bypassing
	// the limited demand MLP (MSHRs).
	base := newCore(&streamGen{aluPer: 15})
	baseR := NewRunner(base, prefetch.Null{}, nil, nil)
	baseR.Run(400_000)

	pf := newCore(&streamGen{aluPer: 15})
	ens := prefetch.NewTable7Ensemble()
	ens.Apply(9) // stream degree 15
	pfR := NewRunner(pf, ens, nil, nil)
	pfR.Run(400_000)

	if pf.IPC() < base.IPC()*1.03 {
		t.Errorf("stream prefetching: IPC %.3f vs %.3f — expected a gain",
			pf.IPC(), base.IPC())
	}
	cl := pf.Hier().Classify()
	if cl.Timely == 0 {
		t.Error("no timely prefetches recorded")
	}

	// A dense (bandwidth-saturating) stream still gains — late prefetches
	// hide most of the latency — and by a larger factor, since demand MLP
	// is the bottleneck without prefetching.
	baseD := newCore(&streamGen{aluPer: 3})
	NewRunner(baseD, prefetch.Null{}, nil, nil).Run(200_000)
	pfD := newCore(&streamGen{aluPer: 3})
	ensD := prefetch.NewTable7Ensemble()
	ensD.Apply(9)
	NewRunner(pfD, ensD, nil, nil).Run(200_000)
	if pfD.IPC() < baseD.IPC()*1.2 {
		t.Errorf("dense stream prefetching: IPC %.3f vs %.3f — expected >20%% gain",
			pfD.IPC(), baseD.IPC())
	}
}

func TestBanditRunnerProtocol(t *testing.T) {
	c := newCore(&streamGen{aluPer: 1})
	ens := prefetch.NewTable7Ensemble()
	agent := core.MustNew(core.Config{
		Arms:      ens.NumArms(),
		Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
		Normalize: true,
		Seed:      1,
	})
	r := NewRunner(c, ens, agent, ens)
	r.StepL2 = 200 // shorter steps for the test
	r.RecordArms()
	r.Run(400_000)

	if r.Steps() < 20 {
		t.Fatalf("only %d bandit steps completed", r.Steps())
	}
	if int(r.Steps()) != agent.StepsTaken() {
		t.Errorf("runner steps %d != agent steps %d", r.Steps(), agent.StepsTaken())
	}
	if len(r.ArmTrace) == 0 {
		t.Fatal("no arm trace recorded")
	}
	// The initial round-robin phase must have tried every arm.
	seen := map[int]bool{}
	for _, s := range r.ArmTrace[:min(len(r.ArmTrace), ens.NumArms()+1)] {
		seen[s.Arm] = true
	}
	if len(seen) < ens.NumArms() {
		t.Errorf("RR phase tried only %d arms: %v", len(seen), r.ArmTrace[:ens.NumArms()])
	}
	// Arm activations happen at least SelectLatency after step boundaries
	// (except the initial application at cycle 0).
	for _, s := range r.ArmTrace[1:] {
		if s.Cycle == 0 {
			t.Error("non-initial arm applied at cycle 0")
		}
	}
}

func TestBanditBeatsNoPrefetchOnStream(t *testing.T) {
	run := func(withBandit bool) float64 {
		c := newCore(&streamGen{aluPer: 2})
		if !withBandit {
			r := NewRunner(c, prefetch.Null{}, nil, nil)
			r.Run(600_000)
			return c.IPC()
		}
		ens := prefetch.NewTable7Ensemble()
		agent := core.MustNew(core.Config{
			Arms:      ens.NumArms(),
			Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: true,
			Seed:      3,
		})
		r := NewRunner(c, ens, agent, ens)
		r.StepL2 = 250
		r.Run(600_000)
		return c.IPC()
	}
	bandit, none := run(true), run(false)
	if bandit < none*1.15 {
		t.Errorf("bandit IPC %.3f vs no-prefetch %.3f — expected clear win", bandit, none)
	}
}

func TestRunnerDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		app, err := trace.ByName("lbm17")
		if err != nil {
			t.Fatal(err)
		}
		c := newCore(app.New(7))
		ens := prefetch.NewTable7Ensemble()
		agent := core.MustNew(core.Config{
			Arms: ens.NumArms(), Policy: core.NewDUCB(0.04, 0.999),
			Normalize: true, Seed: 9,
		})
		r := NewRunner(c, ens, agent, ens)
		r.StepL2 = 200
		r.Run(150_000)
		return c.IPC(), c.Cycles()
	}
	ipc1, cy1 := run()
	ipc2, cy2 := run()
	if ipc1 != ipc2 || cy1 != cy2 {
		t.Errorf("non-deterministic: %.6f/%d vs %.6f/%d", ipc1, cy1, ipc2, cy2)
	}
}

func TestMultiCoreContention(t *testing.T) {
	mkRunner := func(shared *mem.Shared, seed uint64) *Runner {
		app, err := trace.ByName("ligra-bfs") // DRAM-heavy
		if err != nil {
			t.Fatal(err)
		}
		h := mem.NewCoreHierarchy(mem.DefaultConfig(), shared)
		c := New(DefaultConfig(), h, app.New(seed))
		return NewRunner(c, prefetch.Null{}, nil, nil)
	}
	// Single core alone.
	solo := mkRunner(mem.NewShared(mem.DefaultConfig(), 1), 1)
	RunMultiCore([]*Runner{solo}, 60_000)
	soloIPC := solo.Core.IPC()

	// Four cores sharing one channel.
	shared := mem.NewShared(mem.DefaultConfig(), 4)
	var rs []*Runner
	for i := uint64(0); i < 4; i++ {
		rs = append(rs, mkRunner(shared, 1+i))
	}
	RunMultiCore(rs, 60_000)
	perCore := SumIPC(rs) / 4

	if perCore >= soloIPC {
		t.Errorf("no contention: per-core %.3f vs solo %.3f", perCore, soloIPC)
	}
	for _, r := range rs {
		if r.Core.Insts() != 60_000 {
			t.Errorf("core ran %d insts, want 60000", r.Core.Insts())
		}
	}
}

func TestSumIPCEmpty(t *testing.T) {
	if SumIPC(nil) != 0 {
		t.Error("SumIPC(nil) != 0")
	}
	RunMultiCore(nil, 10) // must not panic
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkCoreALU(b *testing.B) {
	c := newCore(&aluGen{})
	b.ResetTimer()
	c.RunInsts(int64(b.N))
}

func BenchmarkCoreStreamWithEnsemble(b *testing.B) {
	c := newCore(&streamGen{aluPer: 2})
	ens := prefetch.NewTable7Ensemble()
	ens.Apply(5)
	NewRunner(c, ens, nil, nil)
	b.ResetTimer()
	c.RunInsts(int64(b.N))
}

// TestRunnerHonorsTargetAware: with an LLC-only arm active, runner
// prefetches must land in the LLC without polluting the L2.
func TestRunnerHonorsTargetAware(t *testing.T) {
	c := newCore(&streamGen{aluPer: 15})
	ext := prefetch.NewExtendedEnsemble()
	ext.Apply(12) // stream degree 15, LLC-only
	r := NewRunner(c, ext, nil, nil)
	r.Run(300_000)
	llc := c.Hier().LLC().Stats()
	l2 := c.Hier().L2().Stats()
	if llc.PrefFills == 0 {
		t.Fatal("no LLC prefetch fills under an LLC-only arm")
	}
	if l2.PrefFills != 0 {
		t.Errorf("L2 received %d prefetch fills under an LLC-only arm", l2.PrefFills)
	}
	if got := c.Hier().Classify().Timely; got == 0 {
		t.Error("LLC-only prefetching produced no timely prefetches")
	}
}
