package cpu

import (
	"testing"

	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// runWithObs simulates one app through a telemetry-attached runner and
// returns the recorded interval events.
func runWithObs(t *testing.T, gen trace.Generator, simCounters bool) []obs.Event {
	t.Helper()
	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := New(DefaultConfig(), hier, gen)
	col := obs.NewCollector(1)
	r := NewRunner(c, prefetch.Null{}, nil, nil)
	r.StepL2 = 200
	r.Obs = col.Slot(0, gen.Name())
	r.ObsEvery = 1
	r.ObsSimCounters = simCounters
	r.Run(200_000)
	var intervals []obs.Event
	for _, e := range col.Events() {
		if e.Kind == obs.KindInterval {
			intervals = append(intervals, e)
		}
	}
	if len(intervals) == 0 {
		t.Fatal("run emitted no interval events")
	}
	return intervals
}

// TestObsSimCounterFields pins the opt-in simulator-effectiveness
// telemetry: with ObsSimCounters set, every interval carries
// chunk_hit_rate and ff_coverage; a cache-backed warm source reports a
// full hit rate; and with the flag clear the fields are absent, so
// recorded streams stay byte-identical with pre-flag builds.
func TestObsSimCounterFields(t *testing.T) {
	app, err := trace.ByName("lbm17")
	if err != nil {
		t.Fatal(err)
	}

	cc := trace.NewChunkCache(0)
	cold := runWithObs(t, cc.Source("lbm17:1", app.New(1)), true)
	warm := runWithObs(t, cc.Source("lbm17:1", app.New(1)), true)
	for name, intervals := range map[string][]obs.Event{"cold": cold, "warm": warm} {
		sawFF := false
		for _, e := range intervals {
			hr, ok := e.Fields.Get(obs.FieldChunkHitRate)
			if !ok {
				t.Fatalf("%s: interval missing chunk_hit_rate", name)
			}
			cov, ok := e.Fields.Get(obs.FieldFFCoverage)
			if !ok {
				t.Fatalf("%s: interval missing ff_coverage", name)
			}
			if hr < 0 || hr > 1 || cov < 0 || cov > 1 {
				t.Fatalf("%s: rates out of range: hit %v, ff %v", name, hr, cov)
			}
			if cov > 0 {
				sawFF = true
			}
		}
		if !sawFF {
			t.Errorf("%s: no interval reported fast-forward coverage > 0", name)
		}
	}
	// The warm run replays every chunk from the cache, so any interval
	// with cache traffic must report a full hit rate.
	sawHit := false
	for _, e := range warm {
		if hr, _ := e.Fields.Get(obs.FieldChunkHitRate); hr > 0 {
			sawHit = true
			if hr != 1 {
				t.Fatalf("warm run hit rate = %v, want 1", hr)
			}
		}
	}
	if !sawHit {
		t.Error("warm run reported no chunk-cache hits")
	}

	for _, e := range runWithObs(t, app.New(1), false) {
		if _, ok := e.Fields.Get(obs.FieldChunkHitRate); ok {
			t.Fatal("chunk_hit_rate emitted with ObsSimCounters off")
		}
		if _, ok := e.Fields.Get(obs.FieldFFCoverage); ok {
			t.Fatal("ff_coverage emitted with ObsSimCounters off")
		}
	}
}
