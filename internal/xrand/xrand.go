// Package xrand provides a small, fast, deterministic random number
// generator used throughout the simulator and the bandit agent.
//
// Determinism across Go releases matters for this project: every experiment
// in EXPERIMENTS.md must regenerate the exact same rows given the same
// seeds. Rather than depend on the (frozen but large) math/rand generator,
// we use SplitMix64 for seeding and xoshiro256** for the stream, both of
// which are tiny, well-studied, and trivially portable. The generator is
// also a reasonable stand-in for the cheap LFSR-style entropy a hardware
// agent would use for its epsilon-greedy coin flips.
//
// Rand is deliberately not safe for concurrent use, and the parallel
// experiment engine (internal/par, internal/harness) leans on that: every
// worker-pool job constructs its own Rand from a stable per-run sub-seed,
// so results are byte-identical at any worker count. Do not "fix" this by
// adding locks or sharing a Rand across goroutines — a shared stream would
// make output depend on scheduling order.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; give each goroutine its own Rand.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as recommended
// by the xoshiro authors. Two generators with the same seed produce
// identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm = splitMix64(&sm)
		r.s[i] = sm
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// splitMix64 advances the SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// compiles to the single widening-multiply instruction on 64-bit
// targets, and its result is the exact product, so swapping it in for
// the old long-multiplication arithmetic cannot change any stream.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
// Multiplying by the exactly representable 2^-53 gives bit-identical
// results to dividing by 2^53 (both scale the exponent only), and
// avoids a hardware divide on a very hot path.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p. p outside [0,1] saturates.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success. For
// p >= 1 it returns 0; p <= 0 panics (the distribution is undefined).
func (r *Rand) Geometric(p float64) int {
	if p <= 0 {
		panic("xrand: Geometric called with p <= 0")
	}
	if p >= 1 {
		return 0
	}
	u := r.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

// Fork derives an independent generator from this one. The child stream is
// decorrelated from the parent by reseeding through SplitMix64.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

// State returns the generator's full internal state, for checkpointing.
// A generator restored from it with SetState continues the exact stream.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a value obtained
// from State. An all-zero state (never produced by State on a generator
// built with New) is replaced by a fixed non-zero seed word, because
// xoshiro's zero state is an absorbing fixed point.
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}
