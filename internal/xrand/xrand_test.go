package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(5)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.05 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometric(t *testing.T) {
	r := New(19)
	if got := r.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	const p, draws = 0.2, 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestForkDecorrelated(t *testing.T) {
	parent := New(23)
	child := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("fork produced %d identical outputs in 100 draws", same)
	}
}

// Property: Intn is always within range for arbitrary seeds and bounds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical Float64 streams.
func TestQuickDeterministicStreams(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(11)
	}
	_ = sink
}
