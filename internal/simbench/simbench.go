// Package simbench measures raw single-run simulator throughput: host
// instructions-per-second for one bandit-controlled prefetching run over
// a set of catalog apps chosen for their dominant access pattern. It is
// the measurement behind `mab-report -simbench` and the recorded
// BENCH_sim.json artifact.
//
// Unlike the experiment benchmarks (which time whole Fig/Table
// pipelines), simbench isolates the per-instruction substrate cost —
// trace generation, the core window model, the cache hierarchy, the
// prefetcher ensemble, and the bandit step machinery — so hot-path
// regressions show up directly instead of being averaged into
// experiment wall-clock.
//
// Each result also records the run's simulated IPC. Throughput numbers
// are hardware-dependent, but the IPC is deterministic: a
// mechanical-speed change must reproduce it bit-for-bit, so a drifting
// IPC in a re-recorded BENCH_sim.json flags a behavioral change, not a
// faster simulator.
package simbench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// DefaultInsts is the default per-workload instruction budget: long
// enough that steady-state cost dominates setup and the bandit completes
// hundreds of steps, short enough that the whole suite runs in tens of
// seconds.
const DefaultInsts = 2_000_000

// Workload names one throughput measurement: a trace-catalog app chosen
// as the cleanest representative of an access pattern.
type Workload struct {
	// Name is the pattern name reported in BENCH_sim.json.
	Name string
	// App is the backing trace catalog application.
	App string
}

// Workloads returns the measured patterns, in report order. "stream" and
// "chase" bracket the two extremes — prefetch-friendly dense streaming
// and serialized pointer chasing — and the rest cover the catalog's
// remaining pattern families.
func Workloads() []Workload {
	return []Workload{
		{Name: "stream", App: "lbm17"},
		{Name: "chase", App: "omnetpp17"},
		{Name: "stride", App: "cactuBSSN"},
		{Name: "gather", App: "ligra-bfs"},
		{Name: "server", App: "cassandra"},
		{Name: "phase", App: "mcf17"},
	}
}

// Result is one workload's measurement.
type Result struct {
	Name        string  `json:"name"`
	App         string  `json:"app"`
	Insts       int64   `json:"insts"`
	Seconds     float64 `json:"seconds"`
	InstsPerSec float64 `json:"insts_per_sec"`
	// IPC is the run's simulated instructions per cycle — the
	// determinism anchor (see the package comment).
	IPC float64 `json:"ipc"`

	// BaselineInstsPerSec and Speedup are filled by Merge when a
	// baseline report is supplied.
	BaselineInstsPerSec float64 `json:"baseline_insts_per_sec,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	CPUs         int      `json:"cpus"`
	InstsPerRun  int64    `json:"insts_per_run"`
	Seed         uint64   `json:"seed"`
	Workloads    []Result `json:"workloads"`
	GMeanSpeedup float64  `json:"gmean_speedup,omitempty"`
}

// newRunner builds the measured configuration: the paper's
// bandit-controlled Table 7 ensemble (DUCB, Table 6 hyperparameters)
// over the default Table 4 hierarchy — the configuration every
// prefetching experiment runs most of its jobs under.
func newRunner(app trace.App, seed uint64) *cpu.Runner {
	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), hier, app.New(seed))
	ens := prefetch.NewTable7Ensemble()
	ctrl := core.MustNew(core.Config{
		Arms:      ens.NumArms(),
		Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
		Normalize: true,
		Seed:      seed,
	})
	return cpu.NewRunner(c, ens, ctrl, ens)
}

// Run measures every workload for insts instructions each and returns
// the report. A short untimed warmup run precedes each measurement so
// one-time setup (table growth to the steady-state high-water mark)
// stays out of the timed region.
func Run(insts int64, seed uint64) Report {
	if insts <= 0 {
		insts = DefaultInsts
	}
	rep := Report{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		InstsPerRun: insts,
		Seed:        seed,
	}
	warmup := insts / 10
	if warmup > 200_000 {
		warmup = 200_000
	}
	for _, w := range Workloads() {
		app, err := trace.ByName(w.App)
		if err != nil {
			panic(fmt.Sprintf("simbench: workload %q: %v", w.Name, err))
		}
		r := newRunner(app, seed)
		r.Run(warmup)
		startInsts := r.Core.Insts()
		t0 := time.Now()
		r.Run(insts)
		secs := time.Since(t0).Seconds()
		ran := r.Core.Insts() - startInsts
		res := Result{
			Name:    w.Name,
			App:     w.App,
			Insts:   ran,
			Seconds: secs,
			IPC:     r.Core.IPC(),
		}
		if secs > 0 {
			res.InstsPerSec = float64(ran) / secs
		}
		rep.Workloads = append(rep.Workloads, res)
	}
	return rep
}

// Merge fills each result's baseline throughput and speedup from a
// previously recorded report (matched by workload name) and computes the
// geometric-mean speedup over the workloads present in both.
func Merge(cur Report, baseline Report) Report {
	base := make(map[string]Result, len(baseline.Workloads))
	for _, r := range baseline.Workloads {
		base[r.Name] = r
	}
	logSum, n := 0.0, 0
	for i := range cur.Workloads {
		r := &cur.Workloads[i]
		b, ok := base[r.Name]
		if !ok || b.InstsPerSec <= 0 || r.InstsPerSec <= 0 {
			continue
		}
		r.BaselineInstsPerSec = b.InstsPerSec
		r.Speedup = r.InstsPerSec / b.InstsPerSec
		logSum += math.Log(r.Speedup)
		n++
	}
	if n > 0 {
		cur.GMeanSpeedup = math.Exp(logSum / float64(n))
	}
	return cur
}

// ReadReport loads a previously recorded BENCH_sim.json.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("simbench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// WriteReport persists a report as indented JSON.
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
