// Package simbench measures raw single-run simulator throughput: host
// instructions-per-second for one bandit-controlled prefetching run over
// a set of catalog apps chosen for their dominant access pattern. It is
// the measurement behind `mab-report -simbench` and the recorded
// BENCH_sim.json artifact.
//
// Unlike the experiment benchmarks (which time whole Fig/Table
// pipelines), simbench isolates the per-instruction substrate cost —
// trace generation, the core window model, the cache hierarchy, the
// prefetcher ensemble, and the bandit step machinery — so hot-path
// regressions show up directly instead of being averaged into
// experiment wall-clock.
//
// Each result also records the run's simulated IPC. Throughput numbers
// are hardware-dependent, but the IPC is deterministic: a
// mechanical-speed change must reproduce it bit-for-bit, so a drifting
// IPC in a re-recorded BENCH_sim.json flags a behavioral change, not a
// faster simulator.
package simbench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/trace"
)

// DefaultInsts is the default per-workload instruction budget: long
// enough that steady-state cost dominates setup and the bandit completes
// hundreds of steps, short enough that the whole suite runs in tens of
// seconds.
const DefaultInsts = 2_000_000

// Workload names one throughput measurement: a trace-catalog app chosen
// as the cleanest representative of an access pattern.
type Workload struct {
	// Name is the pattern name reported in BENCH_sim.json.
	Name string
	// App is the backing trace catalog application.
	App string
}

// Workloads returns the measured patterns, in report order. "stream" and
// "chase" bracket the two extremes — prefetch-friendly dense streaming
// and serialized pointer chasing — and the rest cover the catalog's
// remaining pattern families.
func Workloads() []Workload {
	return []Workload{
		{Name: "stream", App: "lbm17"},
		{Name: "chase", App: "omnetpp17"},
		{Name: "stride", App: "cactuBSSN"},
		{Name: "gather", App: "ligra-bfs"},
		{Name: "server", App: "cassandra"},
		{Name: "phase", App: "mcf17"},
	}
}

// Result is one workload's measurement.
type Result struct {
	Name        string  `json:"name"`
	App         string  `json:"app"`
	Insts       int64   `json:"insts"`
	Seconds     float64 `json:"seconds"`
	InstsPerSec float64 `json:"insts_per_sec"`
	// InstsPerSecMemo is the same measurement over a warm chunk cache —
	// the throughput a sweep's second and later runs over the same trace
	// see. Run asserts its IPC matches the cold column bit for bit.
	InstsPerSecMemo float64 `json:"insts_per_sec_memo,omitempty"`
	// IPC is the run's simulated instructions per cycle — the
	// determinism anchor (see the package comment).
	IPC float64 `json:"ipc"`
	// ChunkHitRate is the warm run's chunk-cache hit rate (1.0 when the
	// whole trace is resident).
	ChunkHitRate float64 `json:"chunk_hit_rate,omitempty"`
	// FFCoverage is the fraction of measured instructions advanced by the
	// steady-state fast-forward pass (memory-free span arithmetic).
	FFCoverage float64 `json:"ff_coverage,omitempty"`

	// BaselineInstsPerSec and the speedup columns are filled by Merge
	// when a baseline report is supplied.
	BaselineInstsPerSec float64 `json:"baseline_insts_per_sec,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
	SpeedupMemo         float64 `json:"speedup_memo,omitempty"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	GOOS             string   `json:"goos"`
	GOARCH           string   `json:"goarch"`
	CPUs             int      `json:"cpus"`
	InstsPerRun      int64    `json:"insts_per_run"`
	Seed             uint64   `json:"seed"`
	Workloads        []Result `json:"workloads"`
	GMeanSpeedup     float64  `json:"gmean_speedup,omitempty"`
	GMeanSpeedupMemo float64  `json:"gmean_speedup_memo,omitempty"`
}

// newRunner builds the measured configuration: the paper's
// bandit-controlled Table 7 ensemble (DUCB, Table 6 hyperparameters)
// over the default Table 4 hierarchy — the configuration every
// prefetching experiment runs most of its jobs under.
func newRunner(gen trace.Generator, seed uint64) *cpu.Runner {
	hier := mem.NewHierarchy(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), hier, gen)
	ens := prefetch.NewTable7Ensemble()
	ctrl := core.MustNew(core.Config{
		Arms:      ens.NumArms(),
		Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
		Normalize: true,
		Seed:      seed,
	})
	return cpu.NewRunner(c, ens, ctrl, ens)
}

// Run measures every workload for insts instructions each and returns
// the report. A short untimed warmup run precedes each measurement so
// one-time setup (table growth to the steady-state high-water mark)
// stays out of the timed region.
func Run(insts int64, seed uint64) Report {
	if insts <= 0 {
		insts = DefaultInsts
	}
	rep := Report{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		InstsPerRun: insts,
		Seed:        seed,
	}
	warmup := insts / 10
	if warmup > 200_000 {
		warmup = 200_000
	}
	for _, w := range Workloads() {
		app, err := trace.ByName(w.App)
		if err != nil {
			panic(fmt.Sprintf("simbench: workload %q: %v", w.Name, err))
		}
		// Cold column: live trace generation (a sweep's first run over a
		// trace).
		r := newRunner(app.New(seed), seed)
		r.Run(warmup)
		startInsts := r.Core.Insts()
		startFF := r.Core.FFInsts()
		t0 := time.Now()
		r.Run(insts)
		secs := time.Since(t0).Seconds()
		ran := r.Core.Insts() - startInsts
		res := Result{
			Name:    w.Name,
			App:     w.App,
			Insts:   ran,
			Seconds: secs,
			IPC:     r.Core.IPC(),
		}
		if ran > 0 {
			res.FFCoverage = float64(r.Core.FFInsts()-startFF) / float64(ran)
		}
		if secs > 0 {
			res.InstsPerSec = float64(ran) / secs
		}

		// Warm column: the same run over a pre-populated chunk cache (a
		// sweep's second and later runs, which replay slabs instead of
		// regenerating). The cache is populated untimed, then the
		// simulation is re-run from scratch against it.
		key := fmt.Sprintf("%s:%d", w.App, seed)
		cc := trace.NewChunkCache(0)
		populate(cc.Source(key, app.New(seed)), warmup+insts+trace.ChunkLen)
		rm := newRunner(cc.Source(key, app.New(seed)), seed)
		rm.Run(warmup)
		startInsts = rm.Core.Insts()
		t0 = time.Now()
		rm.Run(insts)
		memoSecs := time.Since(t0).Seconds()
		memoRan := rm.Core.Insts() - startInsts
		if memoSecs > 0 {
			res.InstsPerSecMemo = float64(memoRan) / memoSecs
		}
		if hits, misses := rm.Core.ChunkCacheStats(); hits+misses > 0 {
			res.ChunkHitRate = float64(hits) / float64(hits+misses)
		}
		if math.Float64bits(rm.Core.IPC()) != math.Float64bits(res.IPC) {
			panic(fmt.Sprintf("simbench: %s memoized IPC %v != live IPC %v — determinism violation",
				w.Name, rm.Core.IPC(), res.IPC))
		}
		rep.Workloads = append(rep.Workloads, res)
	}
	return rep
}

// populate pulls n instructions through a cache-backed source so the
// measured run replays resident chunks.
func populate(gen trace.Generator, n int64) {
	src := trace.SourceOf(gen)
	var c trace.Chunk
	for done := int64(0); done < n; done += trace.ChunkLen {
		c.Reset(trace.ChunkLen)
		src.NextChunk(&c)
	}
}

// Merge fills each result's baseline throughput and speedup from a
// previously recorded report (matched by workload name) and computes the
// geometric-mean speedup over the workloads present in both.
func Merge(cur Report, baseline Report) Report {
	base := make(map[string]Result, len(baseline.Workloads))
	for _, r := range baseline.Workloads {
		base[r.Name] = r
	}
	logSum, n := 0.0, 0
	logSumMemo, nMemo := 0.0, 0
	for i := range cur.Workloads {
		r := &cur.Workloads[i]
		b, ok := base[r.Name]
		if !ok || b.InstsPerSec <= 0 || r.InstsPerSec <= 0 {
			continue
		}
		r.BaselineInstsPerSec = b.InstsPerSec
		r.Speedup = r.InstsPerSec / b.InstsPerSec
		logSum += math.Log(r.Speedup)
		n++
		if r.InstsPerSecMemo > 0 {
			r.SpeedupMemo = r.InstsPerSecMemo / b.InstsPerSec
			logSumMemo += math.Log(r.SpeedupMemo)
			nMemo++
		}
	}
	if n > 0 {
		cur.GMeanSpeedup = math.Exp(logSum / float64(n))
	}
	if nMemo > 0 {
		cur.GMeanSpeedupMemo = math.Exp(logSumMemo / float64(nMemo))
	}
	return cur
}

// ReadReport loads a previously recorded BENCH_sim.json.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("simbench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// WriteReport persists a report as indented JSON.
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
