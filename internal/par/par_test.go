package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesInputOrder(t *testing.T) {
	jobs := make([]int, 1000)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 64, 5000} {
		out := Run(workers, jobs, func(j int) int { return j * j })
		if len(out) != len(jobs) {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if out := Run(8, nil, func(j int) int { return j }); out != nil {
		t.Errorf("empty job list: got %v", out)
	}
	out := Run(8, []int{41}, func(j int) int { return j + 1 })
	if len(out) != 1 || out[0] != 42 {
		t.Errorf("single job: got %v", out)
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	Run(16, jobs, func(j int) struct{} {
		counts[j].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestDo(t *testing.T) {
	out := make([]int, 100)
	tasks := make([]func(), len(out))
	for i := range tasks {
		i := i
		tasks[i] = func() { out[i] = i + 1 }
	}
	Do(4, tasks)
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// ---------------------------------------------------------------------
// RunErr / RunCtx

func TestRunErrResultsAndErrors(t *testing.T) {
	jobs := []int{1, 2, 3, 4, 5}
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		results, errs := RunErr(workers, jobs, func(j int) (int, error) {
			if j%2 == 0 {
				return 0, boom
			}
			return j * 10, nil
		})
		for i, j := range jobs {
			if j%2 == 0 {
				var je *JobError
				if !errors.As(errs[i], &je) {
					t.Fatalf("workers=%d: errs[%d] = %v, want *JobError", workers, i, errs[i])
				}
				if je.Index != i || !errors.Is(je, boom) {
					t.Errorf("workers=%d: job error %v lacks index/cause", workers, je)
				}
			} else {
				if errs[i] != nil || results[i] != j*10 {
					t.Errorf("workers=%d: job %d: result %d err %v", workers, i, results[i], errs[i])
				}
			}
		}
	}
}

// TestRunErrPanicAttribution is the engine-hardening contract: a
// panicking job must be reported with its job index and original panic
// value, on both the serial (workers=1) and pooled (workers=8) paths,
// without crashing the process or losing sibling results.
func TestRunErrPanicAttribution(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 8} {
		results, errs := RunErr(workers, jobs, func(j int) (int, error) {
			if j == 3 || j == 6 {
				panic(fmt.Sprintf("deliberate failure in job value %d", j))
			}
			return j + 100, nil
		})
		for i := range jobs {
			if i == 3 || i == 6 {
				var je *JobError
				if !errors.As(errs[i], &je) {
					t.Fatalf("workers=%d: errs[%d] = %v, want *JobError", workers, i, errs[i])
				}
				if je.Index != i {
					t.Errorf("workers=%d: attributed to job %d, want %d", workers, je.Index, i)
				}
				var pe *PanicError
				if !errors.As(je, &pe) {
					t.Fatalf("workers=%d: cause %v is not a *PanicError", workers, je.Err)
				}
				want := fmt.Sprintf("deliberate failure in job value %d", i)
				if pe.Value != want {
					t.Errorf("workers=%d: panic value %v, want %q", workers, pe.Value, want)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: panic stack not captured", workers)
				}
				if !strings.Contains(errs[i].Error(), fmt.Sprintf("job %d", i)) {
					t.Errorf("workers=%d: error text %q lacks job index", workers, errs[i].Error())
				}
			} else if errs[i] != nil || results[i] != i+100 {
				t.Errorf("workers=%d: sibling job %d lost: result %d err %v", workers, i, results[i], errs[i])
			}
		}
	}
}

func TestRunCtxRetryBounded(t *testing.T) {
	var calls [4]atomic.Int32
	jobs := []int{0, 1, 2, 3}
	results, errs := RunCtx(context.Background(), CtxOpts{Workers: 2, Retries: 2}, jobs,
		func(_ context.Context, j int) (int, error) {
			n := calls[j].Add(1)
			switch {
			case j == 1 && n < 3:
				return 0, errors.New("transient")
			case j == 2:
				return 0, errors.New("permanent")
			}
			return j, nil
		})
	if errs[0] != nil || errs[1] != nil || errs[3] != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if results[1] != 1 {
		t.Errorf("transient job result %d, want 1", results[1])
	}
	if got := calls[1].Load(); got != 3 {
		t.Errorf("transient job tried %d times, want 3", got)
	}
	var je *JobError
	if !errors.As(errs[2], &je) || je.Attempts != 3 {
		t.Fatalf("permanent job error %v, want *JobError after 3 attempts", errs[2])
	}
	if got := calls[2].Load(); got != 3 {
		t.Errorf("permanent job tried %d times, want 3 (1 + 2 retries)", got)
	}
}

func TestRunCtxTimeout(t *testing.T) {
	jobs := []int{0, 1}
	start := time.Now()
	results, errs := RunCtx(context.Background(), CtxOpts{Workers: 2, Timeout: 20 * time.Millisecond}, jobs,
		func(ctx context.Context, j int) (int, error) {
			if j == 1 {
				<-ctx.Done() // hang until the per-job deadline
				return 0, ctx.Err()
			}
			return 7, nil
		})
	if errs[0] != nil || results[0] != 7 {
		t.Fatalf("fast job failed: %v", errs[0])
	}
	if !errors.Is(errs[1], context.DeadlineExceeded) {
		t.Fatalf("slow job error %v, want deadline exceeded", errs[1])
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout did not bound the batch: %v", elapsed)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any job starts
	jobs := make([]int, 16)
	var ran atomic.Int32
	_, errs := RunCtx(ctx, CtxOpts{Workers: 4, Retries: 5}, jobs,
		func(context.Context, int) (int, error) {
			ran.Add(1)
			return 0, errors.New("should be retried if reached")
		})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("job %d error %v, want context.Canceled", i, err)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d jobs ran after cancellation", ran.Load())
	}
}

// TestRunCtxAbandonedPanicIsContained: a timed-out attempt that later
// panics must not crash the process.
func TestRunCtxAbandonedPanicIsContained(t *testing.T) {
	release := make(chan struct{})
	_, errs := RunCtx(context.Background(), CtxOpts{Workers: 1, Timeout: 10 * time.Millisecond}, []int{0},
		func(_ context.Context, _ int) (int, error) {
			<-release
			panic("late panic in abandoned attempt")
		})
	if !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", errs[0])
	}
	close(release)
	time.Sleep(20 * time.Millisecond) // give the abandoned goroutine time to panic+recover
}
