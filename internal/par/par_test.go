package par

import (
	"sync/atomic"
	"testing"
)

func TestRunPreservesInputOrder(t *testing.T) {
	jobs := make([]int, 1000)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 64, 5000} {
		out := Run(workers, jobs, func(j int) int { return j * j })
		if len(out) != len(jobs) {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if out := Run(8, nil, func(j int) int { return j }); out != nil {
		t.Errorf("empty job list: got %v", out)
	}
	out := Run(8, []int{41}, func(j int) int { return j + 1 })
	if len(out) != 1 || out[0] != 42 {
		t.Errorf("single job: got %v", out)
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	Run(16, jobs, func(j int) struct{} {
		counts[j].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestDo(t *testing.T) {
	out := make([]int, 100)
	tasks := make([]func(), len(out))
	for i := range tasks {
		i := i
		tasks[i] = func() { out[i] = i + 1 }
	}
	Do(4, tasks)
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
