// Package par is the experiment harness's parallel engine: a bounded
// worker pool that fans independent simulation runs out across goroutines
// and assembles their results in deterministic input order.
//
// Every simulation run in this repo owns its state (xrand.Rand,
// cpu.Runner, mem.Hier are all constructed per run and never shared), so
// runs are embarrassingly parallel; the only requirement for byte-identical
// output at any worker count is that result assembly ignores completion
// order. Run guarantees that: results[i] always corresponds to jobs[i].
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWorkers returns the default pool size: one worker per usable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run applies fn to every job on a pool of at most workers goroutines and
// returns the results in input order (results[i] = fn(jobs[i])).
//
// workers <= 0 selects DefaultWorkers; workers == 1 (or a single job)
// runs inline with no goroutines, so a serial run has no scheduling
// overhead and is byte-identical to a parallel one by construction. fn
// must not share mutable state across jobs.
func Run[J, R any](workers int, jobs []J, fn func(J) R) []R {
	if len(jobs) == 0 {
		return nil
	}
	out := make([]R, len(jobs))
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			out[i] = fn(jobs[i])
		}
		return out
	}
	// Work-stealing via an atomic cursor: jobs vary wildly in cost (a
	// static-arm run vs a 4-core mix), so dynamic assignment beats
	// striding.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i] = fn(jobs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Do runs the tasks on a pool of at most workers goroutines. Each task
// must write only to state it owns (typically a pre-allocated result
// slot).
func Do(workers int, tasks []func()) {
	Run(workers, tasks, func(t func()) struct{} {
		t()
		return struct{}{}
	})
}

// ---------------------------------------------------------------------
// Hardened variants: per-job errors, panic recovery, timeout, retry.
//
// Run is the fast path for jobs that cannot fail; a panicking job there
// crashes the process from whichever goroutine hit it, with no job
// attribution. The experiment harness and the CLIs use RunErr/RunCtx
// instead: a failing or panicking job becomes a *JobError carrying the
// job index and the original error or panic value, the other jobs keep
// running, and the caller renders partial results plus an error appendix
// rather than a bare goroutine trace.

// PanicError is a recovered job panic: the original panic value plus the
// goroutine stack captured at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// JobError attributes a failure to one job of a RunErr/RunCtx batch.
type JobError struct {
	// Index is the failing job's position in the input slice.
	Index int
	// Attempts is how many times the job was tried (> 1 under RunCtx
	// retry).
	Attempts int
	// Err is the job's final error; a recovered panic is a *PanicError.
	Err error
}

// Error implements error.
func (e *JobError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("job %d (after %d attempts): %v", e.Index, e.Attempts, e.Err)
	}
	return fmt.Sprintf("job %d: %v", e.Index, e.Err)
}

// Unwrap implements the errors.Unwrap protocol.
func (e *JobError) Unwrap() error { return e.Err }

// safeCall invokes fn, converting a panic into a *PanicError.
func safeCall[J, R any](fn func(J) (R, error), j J) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(j)
}

// RunErr is Run for fallible jobs: it applies fn to every job on a pool
// of at most workers goroutines and returns results and errors in input
// order (errs[i] is nil iff jobs[i] succeeded; otherwise it is a
// *JobError and results[i] is the zero value). A panicking fn is
// recovered on both the serial and pooled paths and reported as a
// *JobError wrapping a *PanicError — no job can crash the process or
// take down its siblings. The ordering and determinism contract of Run
// is unchanged.
func RunErr[J, R any](workers int, jobs []J, fn func(J) (R, error)) (results []R, errs []error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	results = make([]R, len(jobs))
	errs = make([]error, len(jobs))
	Do(workers, makeThunks(jobs, func(i int, j J) {
		r, err := safeCall(fn, j)
		if err != nil {
			errs[i] = &JobError{Index: i, Attempts: 1, Err: err}
			return
		}
		results[i] = r
	}))
	return results, errs
}

// makeThunks adapts an indexed body to Do's task list.
func makeThunks[J any](jobs []J, body func(i int, j J)) []func() {
	tasks := make([]func(), len(jobs))
	for i := range jobs {
		i, j := i, jobs[i]
		tasks[i] = func() { body(i, j) }
	}
	return tasks
}

// CtxOpts configures RunCtx.
type CtxOpts struct {
	// Workers bounds the pool as in Run (<= 0 selects DefaultWorkers).
	Workers int
	// Timeout, when positive, bounds each job attempt. A timed-out
	// attempt counts as a failure; its goroutine is abandoned (fn should
	// honor ctx where it can) and its result discarded.
	Timeout time.Duration
	// Retries is how many additional attempts a failing job gets.
	// Timeouts are retried; cancellation of the parent context is not.
	Retries int
}

// RunCtx is RunErr with cancellation, per-job timeouts, and bounded
// retry for transiently failing jobs. Results and errors come back in
// input order. Once ctx is cancelled, running attempts are given ctx via
// their callback, and jobs that have not started fail fast with ctx's
// error.
func RunCtx[J, R any](ctx context.Context, opt CtxOpts, jobs []J, fn func(context.Context, J) (R, error)) (results []R, errs []error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	results = make([]R, len(jobs))
	errs = make([]error, len(jobs))
	Do(opt.Workers, makeThunks(jobs, func(i int, j J) {
		var err error
		attempt := 0
		for {
			if cerr := ctx.Err(); cerr != nil {
				// Preserve the last real failure when one happened.
				if err == nil {
					err = cerr
				}
				errs[i] = &JobError{Index: i, Attempts: attempt, Err: err}
				return
			}
			attempt++
			var r R
			r, err = attemptCtx(ctx, opt.Timeout, j, fn)
			if err == nil {
				results[i] = r
				return
			}
			if attempt > opt.Retries {
				errs[i] = &JobError{Index: i, Attempts: attempt, Err: err}
				return
			}
		}
	}))
	return results, errs
}

// attemptCtx runs one attempt of fn under the per-job timeout. Without a
// timeout the call is direct (panic-safe); with one, the attempt runs on
// its own goroutine so the worker can move on when the deadline passes —
// the abandoned attempt's panic safety keeps it from crashing the
// process when it eventually finishes.
func attemptCtx[J, R any](ctx context.Context, timeout time.Duration, j J, fn func(context.Context, J) (R, error)) (R, error) {
	call := func(jctx context.Context) (R, error) {
		return safeCall(func(j J) (R, error) { return fn(jctx, j) }, j)
	}
	if timeout <= 0 {
		return call(ctx)
	}
	jctx, cancel := context.WithTimeout(ctx, timeout)
	type outcome struct {
		r   R
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer cancel()
		r, err := call(jctx)
		ch <- outcome{r, err}
	}()
	select {
	case out := <-ch:
		return out.r, out.err
	case <-jctx.Done():
		var zero R
		return zero, jctx.Err()
	}
}
