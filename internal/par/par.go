// Package par is the experiment harness's parallel engine: a bounded
// worker pool that fans independent simulation runs out across goroutines
// and assembles their results in deterministic input order.
//
// Every simulation run in this repo owns its state (xrand.Rand,
// cpu.Runner, mem.Hier are all constructed per run and never shared), so
// runs are embarrassingly parallel; the only requirement for byte-identical
// output at any worker count is that result assembly ignores completion
// order. Run guarantees that: results[i] always corresponds to jobs[i].
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default pool size: one worker per usable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run applies fn to every job on a pool of at most workers goroutines and
// returns the results in input order (results[i] = fn(jobs[i])).
//
// workers <= 0 selects DefaultWorkers; workers == 1 (or a single job)
// runs inline with no goroutines, so a serial run has no scheduling
// overhead and is byte-identical to a parallel one by construction. fn
// must not share mutable state across jobs.
func Run[J, R any](workers int, jobs []J, fn func(J) R) []R {
	if len(jobs) == 0 {
		return nil
	}
	out := make([]R, len(jobs))
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			out[i] = fn(jobs[i])
		}
		return out
	}
	// Work-stealing via an atomic cursor: jobs vary wildly in cost (a
	// static-arm run vs a 4-core mix), so dynamic assignment beats
	// striding.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i] = fn(jobs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Do runs the tasks on a pool of at most workers goroutines. Each task
// must write only to state it owns (typically a pre-allocated result
// slot).
func Do(workers int, tasks []func()) {
	Run(workers, tasks, func(t func()) struct{} {
		t()
		return struct{}{}
	})
}
