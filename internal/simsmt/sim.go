package simsmt

import (
	"container/heap"
	"fmt"

	"microbandit/internal/smtwork"
)

// Config holds the pipeline parameters (Table 5 defaults, Skylake-like).
type Config struct {
	IQSize, ROBSize  int
	LQSize, SQSize   int
	IRFSize, FRFSize int
	FetchWidth       int   // uops fetched per cycle from the chosen thread
	DecodeWidth      int   // uops renamed per cycle (shared)
	CommitWidth      int   // uops committed per cycle (shared)
	FetchQCap        int   // per-thread fetch/decode queue depth
	FrontLatency     int64 // fetch-to-rename pipeline depth
	MispredictRefill int64 // extra front-end refill after a branch resolves
	DepWindow        int   // how far back dependences can reach
}

// DefaultConfig mirrors the paper's Table 5: 97-entry IQ, 224-entry ROB,
// 72/56 LQ/SQ, 180/164 IRF/FRF, 16B (≈4-uop) fetch, 5-wide decode, 8-wide
// commit.
func DefaultConfig() Config {
	return Config{
		IQSize: 97, ROBSize: 224,
		LQSize: 72, SQSize: 56,
		IRFSize: 180, FRFSize: 164,
		FetchWidth: 4, DecodeWidth: 5, CommitWidth: 8,
		FetchQCap: 16, FrontLatency: 5, MispredictRefill: 10,
		DepWindow: 256,
	}
}

// RenameStats is the Fig. 15 accounting: for every cycle, the rename stage
// is either stalled on a full shared structure, idle (nothing delivered by
// fetch/decode, e.g. due to fetch gating), or running.
type RenameStats struct {
	StallROB, StallIQ, StallLQ, StallSQ, StallRF int64
	Idle                                         int64
	Running                                      int64
}

// Stalled returns the total stalled cycles.
func (r RenameStats) Stalled() int64 {
	return r.StallROB + r.StallIQ + r.StallLQ + r.StallSQ + r.StallRF
}

// Total returns the accounted cycles.
func (r RenameStats) Total() int64 { return r.Stalled() + r.Idle + r.Running }

// fetchedUop is a uop in the fetch/decode queue.
type fetchedUop struct {
	uop         smtwork.Uop
	renameReady int64
}

// robEntry is an in-flight uop awaiting in-order commit.
type robEntry struct {
	complete int64
	drainAt  int64 // stores: when the SQ entry frees (0 otherwise)
	kind     smtwork.UopKind
	intReg   bool
	fpReg    bool
}

// thread is one hardware context.
type thread struct {
	gen *smtwork.Gen

	fetchQ      []fetchedUop // FIFO (head at index qHead)
	qHead       int
	awaitBranch bool  // a fetched mispredict blocks further fetch
	blockedTill int64 // front-end redirect in progress

	rob      []robEntry // ring
	robHead  int
	robCount int

	iq, lq, sq int // occupancies
	intRegs    int
	fpRegs     int
	branches   int // branches in ROB (BrC metric)

	completions []int64 // recent uop completion cycles (dep window ring)
	seq         int64   // uops renamed so far

	committed int64
}

func (t *thread) fetchQLen() int { return len(t.fetchQ) - t.qHead }

// release events (IQ frees at issue; SQ frees at drain).
type release struct {
	cycle  int64
	thread int
	what   uint8 // 0 = IQ, 1 = SQ
}

type releaseHeap []release

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(i, j int) bool  { return h[i].cycle < h[j].cycle }
func (h releaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SMT is the 2-way SMT pipeline.
type SMT struct {
	cfg     Config
	threads [2]*thread
	policy  Policy
	share   [2]float64 // per-thread structure share (Hill Climbing output)

	cycle    int64
	releases releaseHeap
	rename   RenameStats
	rrNext   int // round-robin fetch pointer
	commitRR int // alternating commit precedence

	disabled [2]bool // threads excluded from fetch (solo-IPC baselines)

	occAccum [2]int64 // per-thread occupancy integral (ROB+IQ+LQ+SQ per cycle)
}

// New builds the pipeline over two thread workload generators.
func New(cfg Config, genA, genB *smtwork.Gen) *SMT {
	if cfg.FetchWidth < 1 || cfg.DecodeWidth < 1 || cfg.CommitWidth < 1 {
		panic("simsmt: widths must be positive")
	}
	s := &SMT{cfg: cfg, policy: ChoiPolicy}
	s.share = [2]float64{0.5, 0.5}
	for i, g := range []*smtwork.Gen{genA, genB} {
		s.threads[i] = &thread{
			gen:         g,
			rob:         make([]robEntry, cfg.ROBSize),
			completions: make([]int64, cfg.DepWindow),
		}
	}
	return s
}

// SetPolicy switches the fetch PG policy.
func (s *SMT) SetPolicy(p Policy) { s.policy = p }

// Policy returns the active fetch PG policy.
func (s *SMT) Policy() Policy { return s.policy }

// SetShare sets thread 0's share of every gated structure (thread 1 gets
// the complement); the Hill Climbing controller drives this.
func (s *SMT) SetShare(share float64) {
	if share < 0.1 {
		share = 0.1
	}
	if share > 0.9 {
		share = 0.9
	}
	s.share = [2]float64{share, 1 - share}
}

// Share returns thread 0's structure share.
func (s *SMT) Share() float64 { return s.share[0] }

// Cycle returns the simulated cycle count.
func (s *SMT) Cycle() int64 { return s.cycle }

// Committed returns thread t's committed uop count.
func (s *SMT) Committed(t int) int64 { return s.threads[t].committed }

// SumIPC returns the sum of the two threads' IPCs — the paper's SMT
// performance metric (§6.4).
func (s *SMT) SumIPC() float64 {
	if s.cycle == 0 {
		return 0
	}
	return float64(s.threads[0].committed+s.threads[1].committed) / float64(s.cycle)
}

// RenameStats returns the Fig. 15 rename-stage accounting.
func (s *SMT) RenameStats() RenameStats { return s.rename }

// RunCycles advances the pipeline n cycles.
func (s *SMT) RunCycles(n int64) {
	for i := int64(0); i < n; i++ {
		s.stepCycle()
	}
}

// RunUntilCommitted advances until both threads have committed at least n
// uops (the paper's run-until-each-thread-completes methodology), with a
// cycle cap to guard against pathological configurations.
func (s *SMT) RunUntilCommitted(n int64, maxCycles int64) {
	for (s.threads[0].committed < n || s.threads[1].committed < n) && s.cycle < maxCycles {
		s.stepCycle()
	}
}

// OccupancyIntegral returns the cumulative per-cycle sum of thread t's
// shared-structure occupancy (ROB+IQ+LQ+SQ) — the denominator of ARPA's
// resource-usage efficiency.
func (s *SMT) OccupancyIntegral(t int) int64 { return s.occAccum[t] }

// stepCycle advances one cycle: releases, commit, rename, fetch.
func (s *SMT) stepCycle() {
	s.cycle++
	for i, t := range s.threads {
		s.occAccum[i] += int64(t.robCount + t.iq + t.lq + t.sq)
	}
	// Apply scheduled structure releases.
	for len(s.releases) > 0 && s.releases[0].cycle <= s.cycle {
		r := heap.Pop(&s.releases).(release)
		t := s.threads[r.thread]
		if r.what == 0 {
			t.iq--
		} else {
			t.sq--
		}
	}
	s.commit()
	s.renameStage()
	s.fetch()
}

// commit retires completed uops in order, alternating thread precedence.
func (s *SMT) commit() {
	budget := s.cfg.CommitWidth
	first := s.commitRR
	s.commitRR ^= 1
	for _, ti := range []int{first, first ^ 1} {
		t := s.threads[ti]
		for budget > 0 && t.robCount > 0 {
			e := &t.rob[t.robHead]
			if e.complete > s.cycle {
				break
			}
			switch e.kind {
			case smtwork.UopLoad:
				t.lq--
			case smtwork.UopStore:
				drain := e.drainAt
				if drain <= s.cycle {
					t.sq--
				} else {
					heap.Push(&s.releases, release{cycle: drain, thread: ti, what: 1})
				}
			case smtwork.UopBranch:
				t.branches--
			}
			if e.intReg {
				t.intRegs--
			}
			if e.fpReg {
				t.fpRegs--
			}
			t.robHead++
			if t.robHead == len(t.rob) {
				t.robHead = 0
			}
			t.robCount--
			t.committed++
			budget--
		}
	}
}

// stall causes for rename accounting.
type stallCause uint8

const (
	stallNone stallCause = iota
	stallROB
	stallIQ
	stallLQ
	stallSQ
	stallRF
)

// renameStage moves uops from the fetch queues into the backend, charging
// structure occupancy, and classifies the cycle for Fig. 15.
func (s *SMT) renameStage() {
	budget := s.cfg.DecodeWidth
	renamed := 0
	cause := stallNone
	sawReady := false

	first := int(s.cycle) & 1
	for _, ti := range []int{first, first ^ 1} {
		t := s.threads[ti]
		for budget > 0 {
			if t.fetchQLen() == 0 {
				break
			}
			f := &t.fetchQ[t.qHead]
			if f.renameReady > s.cycle {
				break
			}
			sawReady = true
			if c := s.resourceBlock(t, &f.uop); c != stallNone {
				if cause == stallNone {
					cause = c
				}
				break // in-order rename: head blocks the thread
			}
			s.renameUop(ti, t, &f.uop)
			t.qHead++
			if t.qHead > 64 && t.qHead*2 >= len(t.fetchQ) {
				t.fetchQ = append(t.fetchQ[:0], t.fetchQ[t.qHead:]...)
				t.qHead = 0
			}
			budget--
			renamed++
		}
	}

	switch {
	case renamed > 0:
		s.rename.Running++
	case cause != stallNone:
		switch cause {
		case stallROB:
			s.rename.StallROB++
		case stallIQ:
			s.rename.StallIQ++
		case stallLQ:
			s.rename.StallLQ++
		case stallSQ:
			s.rename.StallSQ++
		case stallRF:
			s.rename.StallRF++
		}
	case sawReady:
		s.rename.Running++ // renamed zero only because budget was zero
	default:
		s.rename.Idle++
	}
}

// resourceBlock reports which shared structure, if any, blocks renaming u.
// Structures are checked in the order the paper's Fig. 15 lists them.
func (s *SMT) resourceBlock(t *thread, u *smtwork.Uop) stallCause {
	other := s.otherOccupancy(t)
	if t.robCount+other.rob >= s.cfg.ROBSize {
		return stallROB
	}
	if t.iq+other.iq >= s.cfg.IQSize {
		return stallIQ
	}
	if u.Kind == smtwork.UopLoad && t.lq+other.lq >= s.cfg.LQSize {
		return stallLQ
	}
	if u.Kind == smtwork.UopStore && t.sq+other.sq >= s.cfg.SQSize {
		return stallSQ
	}
	if u.UsesIntReg() && t.intRegs+other.intRegs >= s.cfg.IRFSize {
		return stallRF
	}
	if u.UsesFPReg() && t.fpRegs+other.fpRegs >= s.cfg.FRFSize {
		return stallRF
	}
	return stallNone
}

// occupancy snapshot of the sibling thread.
type occupancy struct {
	rob, iq, lq, sq, intRegs, fpRegs int
}

func (s *SMT) otherOccupancy(t *thread) occupancy {
	var o *thread
	if s.threads[0] == t {
		o = s.threads[1]
	} else {
		o = s.threads[0]
	}
	return occupancy{rob: o.robCount, iq: o.iq, lq: o.lq, sq: o.sq,
		intRegs: o.intRegs, fpRegs: o.fpRegs}
}

// renameUop allocates structures, schedules execution, and handles branch
// redirects.
func (s *SMT) renameUop(ti int, t *thread, u *smtwork.Uop) {
	// Dependence: producer completion by program-order distance.
	start := s.cycle + 1
	if u.DepDist > 0 && int64(u.DepDist) <= t.seq {
		pc := t.completions[(t.seq-int64(u.DepDist))%int64(len(t.completions))]
		if pc > start {
			start = pc
		}
	}
	complete := start + u.Lat

	// IQ entry held from rename until the uop starts executing.
	t.iq++
	heap.Push(&s.releases, release{cycle: start, thread: ti, what: 0})

	e := robEntry{complete: complete, kind: u.Kind}
	switch u.Kind {
	case smtwork.UopLoad:
		t.lq++
	case smtwork.UopStore:
		t.sq++
		e.drainAt = complete + u.DrainLat
	case smtwork.UopBranch:
		t.branches++
		if u.Mispredict {
			// Redirect: fetch resumes after the branch resolves.
			t.blockedTill = complete + s.cfg.MispredictRefill
			t.awaitBranch = false
		}
	}
	if u.UsesIntReg() {
		t.intRegs++
		e.intReg = true
	}
	if u.UsesFPReg() {
		t.fpRegs++
		e.fpReg = true
	}

	t.rob[(t.robHead+t.robCount)%len(t.rob)] = e
	t.robCount++
	t.completions[t.seq%int64(len(t.completions))] = complete
	t.seq++
}

// fetch picks one thread per the PG policy and fetches FetchWidth uops.
func (s *SMT) fetch() {
	ti := s.chooseFetchThread()
	if ti < 0 {
		return
	}
	t := s.threads[ti]
	for k := 0; k < s.cfg.FetchWidth; k++ {
		if t.fetchQLen() >= s.cfg.FetchQCap {
			break
		}
		var u smtwork.Uop
		t.gen.Next(&u)
		t.fetchQ = append(t.fetchQ, fetchedUop{uop: u, renameReady: s.cycle + s.cfg.FrontLatency})
		if u.Kind == smtwork.UopBranch && u.Mispredict {
			// Stop fetching this thread until the branch is renamed and
			// resolved (wrong-path suppression).
			t.awaitBranch = true
			break
		}
	}
}

// gated reports whether thread ti exceeds its occupancy share in any
// monitored structure.
func (s *SMT) gated(ti int) bool {
	t := s.threads[ti]
	share := s.share[ti]
	if s.policy.Gate[GateIQ] && float64(t.iq) > share*float64(s.cfg.IQSize) {
		return true
	}
	// LQ and SQ gate separately: a thread hogging one of them (lbm's
	// store-queue appetite, §3.3) must trip the gate even when the other
	// queue is idle.
	if s.policy.Gate[GateLSQ] && (float64(t.lq) > share*float64(s.cfg.LQSize) ||
		float64(t.sq) > share*float64(s.cfg.SQSize)) {
		return true
	}
	if s.policy.Gate[GateROB] && float64(t.robCount) > share*float64(s.cfg.ROBSize) {
		return true
	}
	if s.policy.Gate[GateIRF] && float64(t.intRegs) > share*float64(s.cfg.IRFSize) {
		return true
	}
	return false
}

// DisableThread excludes a thread from fetching entirely, turning the
// pipeline into a single-threaded machine for solo-IPC baselines.
func (s *SMT) DisableThread(ti int) { s.disabled[ti] = true }

// fetchable reports whether thread ti can accept fetch this cycle.
func (s *SMT) fetchable(ti int) bool {
	if s.disabled[ti] {
		return false
	}
	t := s.threads[ti]
	if t.awaitBranch || t.blockedTill > s.cycle {
		return false
	}
	if t.fetchQLen() >= s.cfg.FetchQCap {
		return false
	}
	return !s.gated(ti)
}

// chooseFetchThread applies the fetch PG policy: gate, then prioritize.
func (s *SMT) chooseFetchThread() int {
	a, b := s.fetchable(0), s.fetchable(1)
	switch {
	case !a && !b:
		return -1
	case a && !b:
		return 0
	case b && !a:
		return 1
	}
	// Both eligible: apply the priority metric (lower is better).
	switch s.policy.Priority {
	case PriorityIC:
		return argminThread(s.threads[0].iq, s.threads[1].iq, &s.rrNext)
	case PriorityBrC:
		return argminThread(s.threads[0].branches, s.threads[1].branches, &s.rrNext)
	case PriorityLSQC:
		return argminThread(s.threads[0].lq+s.threads[0].sq,
			s.threads[1].lq+s.threads[1].sq, &s.rrNext)
	default: // Round Robin
		s.rrNext ^= 1
		return s.rrNext
	}
}

// argminThread picks the thread with the smaller metric, alternating on
// ties to stay fair.
func argminThread(m0, m1 int, rr *int) int {
	switch {
	case m0 < m1:
		return 0
	case m1 < m0:
		return 1
	default:
		*rr ^= 1
		return *rr
	}
}

// Occupancies returns a debug snapshot "t0: iq=.. rob=.. ..." (tests).
func (s *SMT) Occupancies() string {
	out := ""
	for i, t := range s.threads {
		out += fmt.Sprintf("t%d: iq=%d rob=%d lq=%d sq=%d irf=%d frf=%d br=%d; ",
			i, t.iq, t.robCount, t.lq, t.sq, t.intRegs, t.fpRegs, t.branches)
	}
	return out
}
