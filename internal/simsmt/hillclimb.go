package simsmt

// HillClimb is Choi & Yeung's learning-based resource-distribution
// controller (§3.2): it searches for the per-thread occupancy threshold
// (here the thread-0 share of every gated structure) by trial epochs —
// measure the base share, then share+δ, then share−δ, each for one epoch,
// and move to whichever performed best.
//
// The paper defines δ in IQ entries (δ = 2, Table 6); with a 97-entry IQ
// that is a share step of 2/97.
type HillClimb struct {
	// Delta is the share perturbation per trial.
	Delta float64

	base   float64
	phase  int // 0: base, 1: +δ, 2: −δ
	perf   [3]float64
	epochs int64
}

// NewHillClimb builds a controller starting from an even split, with the
// paper's δ of 2 IQ entries.
func NewHillClimb() *HillClimb {
	return &HillClimb{Delta: 2.0 / 97.0, base: 0.5}
}

// Share returns the share to apply for the current trial epoch.
func (h *HillClimb) Share() float64 {
	switch h.phase {
	case 1:
		return clampShare(h.base + h.Delta)
	case 2:
		return clampShare(h.base - h.Delta)
	default:
		return clampShare(h.base)
	}
}

// EpochEnd records the epoch's performance (sum IPC) and advances the
// trial schedule. After the three trials it commits the best share as the
// new base.
func (h *HillClimb) EpochEnd(perf float64) {
	h.perf[h.phase] = perf
	h.epochs++
	h.phase++
	if h.phase < 3 {
		return
	}
	best := 0
	for i := 1; i < 3; i++ {
		if h.perf[i] > h.perf[best] {
			best = i
		}
	}
	switch best {
	case 1:
		h.base = clampShare(h.base + h.Delta)
	case 2:
		h.base = clampShare(h.base - h.Delta)
	}
	h.phase = 0
}

// Epochs returns the number of completed epochs.
func (h *HillClimb) Epochs() int64 { return h.epochs }

// Base returns the committed (non-trial) share.
func (h *HillClimb) Base() float64 { return h.base }

// Snapshot captures the controller state for per-arm save/restore (§5.3:
// "every time the arm changes, the Hill Climbing threshold of the old arm
// is saved, and the one for the new arm is restored").
type Snapshot struct {
	Base  float64
	Phase int
	Perf  [3]float64
}

// Save captures the controller state.
func (h *HillClimb) Save() Snapshot {
	return Snapshot{Base: h.base, Phase: h.phase, Perf: h.perf}
}

// Restore reinstates a previously saved state.
func (h *HillClimb) Restore(s Snapshot) {
	h.base = s.Base
	h.phase = s.Phase
	h.perf = s.Perf
}

// Reset returns the controller to the even split.
func (h *HillClimb) Reset() {
	h.base = 0.5
	h.phase = 0
	h.perf = [3]float64{}
}

func clampShare(s float64) float64 {
	if s < 0.1 {
		return 0.1
	}
	if s > 0.9 {
		return 0.9
	}
	return s
}
