package simsmt

import (
	"testing"

	"microbandit/internal/smtwork"
)

// checkInvariants validates every structural invariant of the pipeline
// after each simulated chunk: occupancies non-negative, shared structures
// within capacity, and commit counts monotone.
func checkInvariants(t *testing.T, sim *SMT) {
	t.Helper()
	cfg := sim.cfg
	var rob, iq, lq, sq, irf, frf int
	for ti, th := range sim.threads {
		for name, v := range map[string]int{
			"rob": th.robCount, "iq": th.iq, "lq": th.lq, "sq": th.sq,
			"irf": th.intRegs, "frf": th.fpRegs, "branches": th.branches,
		} {
			if v < 0 {
				t.Fatalf("cycle %d: thread %d %s occupancy negative (%d)",
					sim.Cycle(), ti, name, v)
			}
		}
		if th.fetchQLen() < 0 || th.fetchQLen() > cfg.FetchQCap {
			t.Fatalf("cycle %d: thread %d fetch queue %d outside [0,%d]",
				sim.Cycle(), ti, th.fetchQLen(), cfg.FetchQCap)
		}
		rob += th.robCount
		iq += th.iq
		lq += th.lq
		sq += th.sq
		irf += th.intRegs
		frf += th.fpRegs
	}
	if rob > cfg.ROBSize {
		t.Fatalf("cycle %d: ROB over capacity (%d > %d)", sim.Cycle(), rob, cfg.ROBSize)
	}
	if lq > cfg.LQSize {
		t.Fatalf("cycle %d: LQ over capacity (%d > %d)", sim.Cycle(), lq, cfg.LQSize)
	}
	if sq > cfg.SQSize {
		t.Fatalf("cycle %d: SQ over capacity (%d > %d)", sim.Cycle(), sq, cfg.SQSize)
	}
	if irf > cfg.IRFSize || frf > cfg.FRFSize {
		t.Fatalf("cycle %d: register files over capacity (%d/%d)", sim.Cycle(), irf, frf)
	}
	// IQ entries are released by heap events that may lag the current
	// cycle by design; occupancy must still never exceed capacity.
	if iq > cfg.IQSize {
		t.Fatalf("cycle %d: IQ over capacity (%d > %d)", sim.Cycle(), iq, cfg.IQSize)
	}
}

// TestPipelineInvariantsUnderStress runs demanding mixes under every
// Table 1 policy with frequent invariant checks.
func TestPipelineInvariantsUnderStress(t *testing.T) {
	mixes := [][2]string{{"mcf", "lbm"}, {"lbm", "fotonik3d"}, {"exchange2", "mcf"}}
	for _, pair := range mixes {
		for _, policy := range Table1Arms() {
			a := mustProfileInv(t, pair[0])
			b := mustProfileInv(t, pair[1])
			sim := NewSim(a, b, 99)
			sim.SetPolicy(policy)
			sim.SetShare(0.3)
			for chunk := 0; chunk < 40; chunk++ {
				sim.RunCycles(500)
				checkInvariants(t, sim)
			}
			if sim.Committed(0)+sim.Committed(1) == 0 {
				t.Errorf("%s/%s-%s: nothing committed", policy, pair[0], pair[1])
			}
		}
	}
}

// TestPipelineCommitMonotone ensures commit counts never decrease and the
// pipeline never deadlocks under extreme share settings.
func TestPipelineCommitMonotone(t *testing.T) {
	a := mustProfileInv(t, "mcf")
	b := mustProfileInv(t, "lbm")
	for _, share := range []float64{0.1, 0.5, 0.9} {
		sim := NewSim(a, b, 7)
		sim.SetPolicy(mustPolicy("LSQC_1111"))
		sim.SetShare(share)
		var prev0, prev1 int64
		stuck := 0
		for chunk := 0; chunk < 50; chunk++ {
			sim.RunCycles(1000)
			c0, c1 := sim.Committed(0), sim.Committed(1)
			if c0 < prev0 || c1 < prev1 {
				t.Fatalf("commit counts decreased")
			}
			if c0 == prev0 && c1 == prev1 {
				stuck++
			} else {
				stuck = 0
			}
			if stuck >= 5 {
				t.Fatalf("share %.1f: pipeline made no progress for %d chunks (%s)",
					share, stuck, sim.Occupancies())
			}
			prev0, prev1 = c0, c1
		}
	}
}

// TestGatedThreadStillDrains: a hard-gated thread must keep committing
// its in-flight work (gating blocks fetch, not the backend).
func TestGatedThreadStillDrains(t *testing.T) {
	a := mustProfileInv(t, "lbm")
	b := mustProfileInv(t, "gcc")
	sim := NewSim(a, b, 3)
	sim.SetPolicy(mustPolicy("IC_1111"))
	sim.SetShare(0.1) // thread 0 squeezed to 10%
	sim.RunCycles(200_000)
	if sim.Committed(0) == 0 {
		t.Error("hard-gated thread starved completely")
	}
	// The favored thread should get clearly more throughput.
	if sim.Committed(1) < 2*sim.Committed(0) {
		t.Errorf("gating had little effect: %d vs %d", sim.Committed(0), sim.Committed(1))
	}
}

func mustProfileInv(t *testing.T, name string) smtwork.Profile {
	t.Helper()
	p, err := smtwork.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
