package simsmt

import (
	"testing"

	"microbandit/internal/smtwork"
)

func mustProfile(t *testing.T, name string) smtwork.Profile {
	t.Helper()
	p, err := smtwork.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPolicyString(t *testing.T) {
	cases := map[string]Policy{
		"IC_0000":   ICountPolicy,
		"IC_1011":   ChoiPolicy,
		"LSQC_1111": {Priority: PriorityLSQC, Gate: [4]bool{true, true, true, true}},
		"RR_0100":   {Priority: PriorityRR, Gate: [4]bool{false, true, false, false}},
	}
	for want, p := range cases {
		if p.String() != want {
			t.Errorf("String = %q, want %q", p.String(), want)
		}
		parsed, err := ParsePolicy(want)
		if err != nil || parsed != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", want, parsed, err)
		}
	}
}

func TestParsePolicyRejects(t *testing.T) {
	for _, s := range []string{"", "IC", "XX_0000", "IC_00", "IC_000x", "IC_00000"} {
		if _, err := ParsePolicy(s); err == nil {
			t.Errorf("ParsePolicy accepted %q", s)
		}
	}
}

func TestAllPolicies(t *testing.T) {
	all := AllPolicies()
	if len(all) != 64 {
		t.Fatalf("got %d policies, want 64", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.String()] {
			t.Errorf("duplicate policy %s", p)
		}
		seen[p.String()] = true
	}
	if !seen["IC_1011"] || !seen["RR_1111"] || !seen["BrC_0101"] {
		t.Error("expected policies missing from the design space")
	}
}

func TestTable1Arms(t *testing.T) {
	arms := Table1Arms()
	want := []string{"IC_0000", "BrC_1000", "IC_1110", "IC_1111", "LSQC_1111", "RR_1111"}
	if len(arms) != len(want) {
		t.Fatalf("got %d arms", len(arms))
	}
	for i, w := range want {
		if arms[i].String() != w {
			t.Errorf("arm %d = %s, want %s", i, arms[i], w)
		}
	}
}

func TestPipelineCommitsBothThreads(t *testing.T) {
	sim := NewSim(mustProfile(t, "gcc"), mustProfile(t, "leela"), 1)
	sim.RunCycles(50_000)
	for ti := 0; ti < 2; ti++ {
		if sim.Committed(ti) == 0 {
			t.Fatalf("thread %d committed nothing: %s", ti, sim.Occupancies())
		}
	}
	if ipc := sim.SumIPC(); ipc <= 0.2 || ipc > float64(DefaultConfig().CommitWidth) {
		t.Errorf("sum IPC = %.3f out of plausible range", ipc)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		sim := NewSim(mustProfile(t, "mcf"), mustProfile(t, "lbm"), 9)
		sim.RunCycles(40_000)
		return sim.Committed(0), sim.Committed(1), sim.Cycle()
	}
	a0, a1, ac := run()
	b0, b1, bc := run()
	if a0 != b0 || a1 != b1 || ac != bc {
		t.Errorf("non-deterministic: %d/%d/%d vs %d/%d/%d", a0, a1, ac, b0, b1, bc)
	}
}

func TestRenameAccountingAddsUp(t *testing.T) {
	sim := NewSim(mustProfile(t, "mcf"), mustProfile(t, "lbm"), 3)
	const cycles = 30_000
	sim.RunCycles(cycles)
	rs := sim.RenameStats()
	if rs.Total() != cycles {
		t.Errorf("rename accounting covers %d of %d cycles: %+v", rs.Total(), cycles, rs)
	}
	if rs.Running == 0 {
		t.Error("rename never ran")
	}
}

func TestCacheResidentThreadsSaturate(t *testing.T) {
	sim := NewSim(mustProfile(t, "exchange2"), mustProfile(t, "leela"), 2)
	sim.RunCycles(60_000)
	// Two cache-resident integer threads should keep the pipeline busy.
	if ipc := sim.SumIPC(); ipc < 1.5 {
		t.Errorf("cache-resident mix sum IPC = %.3f, want > 1.5", ipc)
	}
}

func TestMemBoundMixIsSlower(t *testing.T) {
	fast := NewSim(mustProfile(t, "exchange2"), mustProfile(t, "leela"), 2)
	fast.RunCycles(60_000)
	slow := NewSim(mustProfile(t, "mcf"), mustProfile(t, "fotonik3d"), 2)
	slow.RunCycles(60_000)
	if slow.SumIPC() >= fast.SumIPC()*0.8 {
		t.Errorf("memory-bound mix IPC %.3f not clearly below cache-resident %.3f",
			slow.SumIPC(), fast.SumIPC())
	}
}

// The §3.3 motivating scenario: paired with lbm (which hogs the SQ with
// slow-draining stores), an LSQ-aware policy must eliminate the SQ-full
// rename stalls the LSQ-unaware Choi policy suffers, without losing
// throughput. (Whether the net effect is a large win depends on the mix;
// the harness's Fig. 5 sweep reports the distribution.)
func TestLSQAwarenessHelpsAgainstLbm(t *testing.T) {
	run := func(policy Policy) (float64, RenameStats) {
		sim := NewSim(mustProfile(t, "gcc"), mustProfile(t, "lbm"), 5)
		r := NewFixedRunner(sim, policy, true)
		r.RunCycles(2_000_000)
		return sim.SumIPC(), sim.RenameStats()
	}
	choi, choiRS := run(ChoiPolicy)
	lsqAware, lsqRS := run(mustPolicy("LSQC_1111"))
	if choiRS.StallSQ == 0 {
		t.Fatal("Choi shows no SQ-full stalls; lbm's SQ pressure is missing")
	}
	if lsqRS.StallSQ*4 > choiRS.StallSQ {
		t.Errorf("LSQ-aware gating left %d SQ stalls vs Choi's %d — gate not binding",
			lsqRS.StallSQ, choiRS.StallSQ)
	}
	if lsqAware < choi*0.97 {
		t.Errorf("LSQC_1111 (%.4f) clearly worse than Choi (%.4f)", lsqAware, choi)
	}
}

func TestGatingLimitsOccupancy(t *testing.T) {
	// With aggressive gating and a small share for thread 0, its ROB
	// occupancy should stay near its cap.
	sim := NewSim(mustProfile(t, "mcf"), mustProfile(t, "gcc"), 7)
	sim.SetPolicy(mustPolicy("IC_0010")) // gate on ROB only
	sim.SetShare(0.2)
	sim.RunCycles(50_000)
	t0 := sim.threads[0]
	cap := 0.2*float64(sim.cfg.ROBSize) + float64(sim.cfg.FetchQCap) + 8
	if float64(t0.robCount) > cap {
		t.Errorf("thread 0 ROB occupancy %d exceeds gated cap %.0f", t0.robCount, cap)
	}
}

func TestHillClimbSearch(t *testing.T) {
	hc := NewHillClimb()
	if hc.Share() != 0.5 {
		t.Fatalf("initial share = %v", hc.Share())
	}
	// Feed a performance landscape that prefers larger thread-0 share.
	for i := 0; i < 60; i++ {
		hc.EpochEnd(hc.Share()) // perf equals the share itself
	}
	if hc.Base() <= 0.55 {
		t.Errorf("hill climbing did not move uphill: base = %v", hc.Base())
	}
	if hc.Epochs() != 60 {
		t.Errorf("epochs = %d", hc.Epochs())
	}
	// And downhill when the landscape flips.
	for i := 0; i < 120; i++ {
		hc.EpochEnd(1 - hc.Share())
	}
	if hc.Base() >= 0.45 {
		t.Errorf("hill climbing did not adapt downhill: base = %v", hc.Base())
	}
}

func TestHillClimbSaveRestore(t *testing.T) {
	hc := NewHillClimb()
	for i := 0; i < 10; i++ {
		hc.EpochEnd(hc.Share())
	}
	snap := hc.Save()
	base := hc.Base()
	hc.Reset()
	if hc.Base() != 0.5 {
		t.Error("Reset did not restore even split")
	}
	hc.Restore(snap)
	if hc.Base() != base {
		t.Errorf("Restore lost state: %v vs %v", hc.Base(), base)
	}
}

func TestClampShare(t *testing.T) {
	if clampShare(0.05) != 0.1 || clampShare(0.95) != 0.9 || clampShare(0.4) != 0.4 {
		t.Error("clampShare wrong")
	}
}

func TestBanditRunnerSelectsArms(t *testing.T) {
	sim := NewSim(mustProfile(t, "gcc"), mustProfile(t, "lbm"), 11)
	agent := NewBanditAgent(1)
	r := NewRunner(sim, agent, Table1Arms(), true)
	r.EpochLen = 2048 // small epochs to exercise many bandit steps quickly
	r.RREpochs = 4
	r.MainEpochs = 2
	r.RecordArms()
	r.RunCycles(400_000)

	if agent.StepsTaken() < 10 {
		t.Fatalf("only %d bandit steps", agent.StepsTaken())
	}
	// The RR phase tries all six arms.
	seen := map[int]bool{}
	for _, s := range r.ArmTrace {
		seen[s.Arm] = true
	}
	if len(seen) != len(Table1Arms()) {
		t.Errorf("explored %d arms, want %d", len(seen), len(Table1Arms()))
	}
}

func TestBanditRunnerSavesHCPerArm(t *testing.T) {
	sim := NewSim(mustProfile(t, "mcf"), mustProfile(t, "lbm"), 13)
	agent := NewBanditAgent(2)
	r := NewRunner(sim, agent, Table1Arms(), true)
	r.EpochLen = 2048
	r.RREpochs = 2
	r.MainEpochs = 1
	r.RunCycles(300_000)
	if len(r.saved) < 3 {
		t.Errorf("per-arm HC snapshots = %d, want several", len(r.saved))
	}
}

func TestRunUntilCommitted(t *testing.T) {
	sim := NewSim(mustProfile(t, "gcc"), mustProfile(t, "leela"), 3)
	r := NewFixedRunner(sim, ChoiPolicy, true)
	r.RunUntilCommitted(20_000, 10_000_000)
	if sim.Committed(0) < 20_000 || sim.Committed(1) < 20_000 {
		t.Errorf("commits = %d/%d, want >= 20000 each",
			sim.Committed(0), sim.Committed(1))
	}
}

func TestNewPanicsOnBadWidths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}, nil, nil)
}

func BenchmarkPipelineCycle(b *testing.B) {
	p1, _ := smtwork.ByName("gcc")
	p2, _ := smtwork.ByName("lbm")
	sim := NewSim(p1, p2, 1)
	b.ResetTimer()
	sim.RunCycles(int64(b.N))
}

// FuzzParsePolicy: ParsePolicy must never panic and must round-trip with
// String for every accepted input.
func FuzzParsePolicy(f *testing.F) {
	for _, p := range AllPolicies() {
		f.Add(p.String())
	}
	f.Add("")
	f.Add("IC_")
	f.Add("LSQC_11111")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if p.String() != s {
			t.Fatalf("round trip: %q -> %v -> %q", s, p, p.String())
		}
	})
}
