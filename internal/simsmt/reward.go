package simsmt

import (
	"fmt"

	"microbandit/internal/smtwork"
)

// RewardMode selects the Bandit's SMT reward metric. The paper evaluates
// the sum of thread IPCs but notes (§6.4) that the Bandit "can easily
// optimize other metrics, such as the average weighted IPC or harmonic
// mean of weighted IPC, by simply changing the Bandit reward" — this file
// implements exactly that.
type RewardMode uint8

// Reward metrics.
const (
	// RewardSumIPC is the paper's default: IPC_0 + IPC_1.
	RewardSumIPC RewardMode = iota
	// RewardWeightedIPC is the average weighted speedup: mean of
	// IPC_i / SoloIPC_i (Snavely & Tullsen).
	RewardWeightedIPC
	// RewardHarmonicWeighted is the harmonic mean of the weighted IPCs
	// (Luo et al.), which additionally rewards fairness.
	RewardHarmonicWeighted
)

// String implements fmt.Stringer.
func (m RewardMode) String() string {
	switch m {
	case RewardSumIPC:
		return "sum-ipc"
	case RewardWeightedIPC:
		return "weighted-ipc"
	case RewardHarmonicWeighted:
		return "harmonic-weighted"
	default:
		return fmt.Sprintf("reward(%d)", uint8(m))
	}
}

// Reward computes the metric from per-thread step IPCs and the threads'
// solo IPCs (required for the weighted modes; pass zeros for sum-IPC).
func (m RewardMode) Reward(ipc, solo [2]float64) float64 {
	switch m {
	case RewardWeightedIPC:
		return (safeRatio(ipc[0], solo[0]) + safeRatio(ipc[1], solo[1])) / 2
	case RewardHarmonicWeighted:
		w0 := safeRatio(ipc[0], solo[0])
		w1 := safeRatio(ipc[1], solo[1])
		if w0 <= 0 || w1 <= 0 {
			return 0
		}
		return 2 / (1/w0 + 1/w1)
	default:
		return ipc[0] + ipc[1]
	}
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// SoloIPC measures a profile's single-threaded IPC on the SMT pipeline
// (the sibling context disabled) — the baseline the weighted metrics
// normalize by.
func SoloIPC(p smtwork.Profile, seed uint64, cycles int64) float64 {
	sim := NewSim(p, p, seed)
	sim.DisableThread(1)
	sim.SetPolicy(ICountPolicy)
	sim.RunCycles(cycles)
	if sim.Cycle() == 0 {
		return 0
	}
	return float64(sim.Committed(0)) / float64(sim.Cycle())
}

// WeightedMetrics summarizes one SMT run against solo baselines.
type WeightedMetrics struct {
	SumIPC    float64
	Weighted  float64 // average weighted speedup
	Harmonic  float64 // harmonic mean of weighted speedups
	Fairness  float64 // min(w0,w1)/max(w0,w1); 1 = perfectly fair
	PerThread [2]float64
}

// Evaluate computes the weighted metrics for a finished simulation.
func Evaluate(sim *SMT, solo [2]float64) WeightedMetrics {
	cy := sim.Cycle()
	if cy == 0 {
		return WeightedMetrics{}
	}
	ipc := [2]float64{
		float64(sim.Committed(0)) / float64(cy),
		float64(sim.Committed(1)) / float64(cy),
	}
	w0 := safeRatio(ipc[0], solo[0])
	w1 := safeRatio(ipc[1], solo[1])
	m := WeightedMetrics{
		SumIPC:    ipc[0] + ipc[1],
		Weighted:  (w0 + w1) / 2,
		PerThread: ipc,
	}
	if w0 > 0 && w1 > 0 {
		m.Harmonic = 2 / (1/w0 + 1/w1)
		if w0 < w1 {
			m.Fairness = w0 / w1
		} else {
			m.Fairness = w1 / w0
		}
	}
	return m
}
