package simsmt

import (
	"context"

	"microbandit/internal/core"
	"microbandit/internal/obs"
	"microbandit/internal/smtwork"
)

// Paper parameters for the SMT use case (Table 6).
const (
	// EpochCycles is one Hill Climbing epoch (64k cycles).
	EpochCycles = 64 * 1024
	// StepEpochs is the bandit step during the main loop (2 epochs).
	StepEpochs = 2
	// StepRREpochs is the longer bandit step during the initial
	// round-robin phase (32 epochs), giving Hill Climbing time to
	// converge per arm (§5.3).
	StepRREpochs = 32
)

// Runner drives the SMT pipeline with Hill Climbing plus an arm
// controller that selects the fetch PG policy every bandit step (§5.3).
//
// When Ctrl is nil the runner is a plain fixed-policy + Hill Climbing
// platform (the Choi and ICount baselines).
type Runner struct {
	Sim  *SMT
	HC   *HillClimb
	Ctrl core.Controller
	Arms []Policy

	// EpochLen is the Hill Climbing epoch in cycles.
	EpochLen int64
	// MainEpochs and RREpochs are the bandit step lengths.
	MainEpochs, RREpochs int

	// Reward selects the bandit reward metric (§6.4); default sum-IPC.
	Reward RewardMode
	// Solo holds the threads' single-threaded IPCs, required by the
	// weighted reward modes.
	Solo [2]float64

	hcEnabled  bool
	curArm     int
	epochInArm int

	stepStartCommits [2]int64
	stepStartCycle   int64

	saved map[int]Snapshot // per-arm Hill Climbing state

	// ArmTrace, when enabled, logs (cycle, arm) for Fig. 7.
	ArmTrace   []ArmSample
	recordArms bool

	// Obs, when non-nil, receives a KindInterval event with the step's
	// per-thread and summed IPC every ObsEvery completed bandit steps.
	Obs      obs.Recorder
	ObsEvery int
	obsSteps int64
}

// ArmSample is one exploration-trace entry.
type ArmSample struct {
	Cycle int64
	Arm   int
}

// NewRunner builds a bandit-driven runner over the Table 1 arm set.
// hillClimb enables the threshold controller (the paper always runs it
// under the Bandit; IC_0000 effectively ignores the threshold since it
// gates nothing).
func NewRunner(sim *SMT, ctrl core.Controller, arms []Policy, hillClimb bool) *Runner {
	r := &Runner{
		Sim:        sim,
		HC:         NewHillClimb(),
		Ctrl:       ctrl,
		Arms:       arms,
		EpochLen:   EpochCycles,
		MainEpochs: StepEpochs,
		RREpochs:   StepRREpochs,
		hcEnabled:  hillClimb,
		saved:      map[int]Snapshot{},
	}
	return r
}

// NewFixedRunner builds a fixed-policy runner (Choi, ICount, or a static
// arm) with Hill Climbing.
func NewFixedRunner(sim *SMT, policy Policy, hillClimb bool) *Runner {
	sim.SetPolicy(policy)
	return &Runner{
		Sim:       sim,
		HC:        NewHillClimb(),
		EpochLen:  EpochCycles,
		hcEnabled: hillClimb,
	}
}

// RecordArms enables the exploration trace.
func (r *Runner) RecordArms() { r.recordArms = true }

// RunCycles simulates n cycles, driving epochs, Hill Climbing, and the
// bandit protocol.
func (r *Runner) RunCycles(n int64) {
	end := r.Sim.Cycle() + n
	r.primeArm()
	for r.Sim.Cycle() < end {
		r.runEpoch()
	}
}

// RunCyclesCtx is RunCycles with cooperative cancellation, checked at
// every epoch boundary (an epoch is tens of microseconds of host time).
// Statistics remain valid for the cycles that did run, so callers can
// report partial results after an interrupt.
func (r *Runner) RunCyclesCtx(ctx context.Context, n int64) error {
	end := r.Sim.Cycle() + n
	r.primeArm()
	for r.Sim.Cycle() < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.runEpoch()
	}
	return ctx.Err()
}

// RunUntilCommitted simulates until both threads commit n uops (bounded
// by maxCycles).
func (r *Runner) RunUntilCommitted(n, maxCycles int64) {
	r.primeArm()
	for (r.Sim.Committed(0) < n || r.Sim.Committed(1) < n) && r.Sim.Cycle() < maxCycles {
		r.runEpoch()
	}
}

// primeArm applies the first bandit arm before simulation starts.
func (r *Runner) primeArm() {
	if r.Ctrl == nil || r.Sim.Cycle() > 0 {
		if r.hcEnabled {
			r.Sim.SetShare(r.HC.Share())
		}
		return
	}
	r.curArm = r.Ctrl.Step()
	r.applyArm(r.curArm)
	r.stepStartCommits = [2]int64{}
	r.stepStartCycle = 0
}

// applyArm installs a policy arm and restores its Hill Climbing state.
func (r *Runner) applyArm(arm int) {
	r.Sim.SetPolicy(r.Arms[arm])
	if snap, ok := r.saved[arm]; ok {
		r.HC.Restore(snap)
	} else {
		r.HC.Reset()
	}
	if r.hcEnabled {
		r.Sim.SetShare(r.HC.Share())
	}
	r.epochInArm = 0
	if r.recordArms {
		if n := len(r.ArmTrace); n == 0 || r.ArmTrace[n-1].Arm != arm {
			r.ArmTrace = append(r.ArmTrace, ArmSample{Cycle: r.Sim.Cycle(), Arm: arm})
		}
	}
}

// runEpoch simulates one Hill Climbing epoch and advances the
// controllers.
func (r *Runner) runEpoch() {
	startCommit := r.Sim.Committed(0) + r.Sim.Committed(1)
	startCycle := r.Sim.Cycle()
	r.Sim.RunCycles(r.EpochLen)
	epochIPC := float64(r.Sim.Committed(0)+r.Sim.Committed(1)-startCommit) /
		float64(r.Sim.Cycle()-startCycle)

	if r.hcEnabled {
		r.HC.EpochEnd(epochIPC)
		r.Sim.SetShare(r.HC.Share())
	}

	if r.Ctrl == nil {
		return
	}
	r.epochInArm++
	stepLen := r.MainEpochs
	if r.Ctrl.InInitialRR() {
		stepLen = r.RREpochs
	}
	if r.epochInArm < stepLen {
		return
	}
	// Bandit step complete: reward per the configured metric (§6.4).
	cycles := r.Sim.Cycle() - r.stepStartCycle
	var ipc [2]float64
	if cycles > 0 {
		ipc[0] = float64(r.Sim.Committed(0)-r.stepStartCommits[0]) / float64(cycles)
		ipc[1] = float64(r.Sim.Committed(1)-r.stepStartCommits[1]) / float64(cycles)
	}
	r.Ctrl.Reward(r.Reward.Reward(ipc, r.Solo))
	if r.Obs != nil && r.ObsEvery > 0 {
		r.obsSteps++
		if r.obsSteps%int64(r.ObsEvery) == 0 {
			r.Obs.Record(obs.Event{Kind: obs.KindInterval, Step: r.obsSteps, Cycle: r.Sim.Cycle(),
				Arm: r.curArm,
				Fields: obs.NewFields().
					Set(obs.FieldIPC0, ipc[0]).
					Set(obs.FieldIPC1, ipc[1]).
					Set(obs.FieldSumIPC, ipc[0]+ipc[1])})
		}
	}
	r.saved[r.curArm] = r.HC.Save()
	next := r.Ctrl.Step()
	r.curArm = next
	r.applyArm(next)
	r.stepStartCommits = [2]int64{r.Sim.Committed(0), r.Sim.Committed(1)}
	r.stepStartCycle = r.Sim.Cycle()
}

// NewBanditAgent builds the paper's SMT Bandit: DUCB with the Table 6
// hyperparameters over the Table 1 arms.
func NewBanditAgent(seed uint64) *core.Agent {
	return core.MustNew(core.Config{
		Arms:      len(Table1Arms()),
		Policy:    core.NewDUCB(core.SMTC, core.SMTGamma),
		Normalize: true,
		Seed:      seed,
	})
}

// NewSim builds a default-config pipeline over two profile workloads.
func NewSim(a, b smtwork.Profile, seed uint64) *SMT {
	return New(DefaultConfig(), smtwork.NewGen(a, seed), smtwork.NewGen(b, seed+0x9e37))
}
