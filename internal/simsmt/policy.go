// Package simsmt implements the cycle-driven 2-way SMT pipeline model for
// the instruction-fetch use case — the substitute for Gem5 v20 with the
// SecSMT SMT patches (§6.1, Table 5).
//
// The pipeline has dynamically shared structures (IQ, ROB, LQ, SQ, IRF,
// FRF), a fetch stage steered by the fetch Priority & Gating (PG) policy
// design space of §3.3, Choi & Yeung's Hill-Climbing occupancy-threshold
// controller, rename-stage stall/idle accounting (Fig. 15), and a bandit
// runner that selects the PG policy on top of Hill Climbing (§5.3).
package simsmt

import (
	"fmt"
	"strings"
)

// Priority is a thread fetch priority policy (§3.2).
type Priority uint8

// Fetch priority policies.
const (
	// PriorityIC is ICount: prefer the thread with fewer IQ entries.
	PriorityIC Priority = iota
	// PriorityBrC is Branch Count: fewer branches in the ROB.
	PriorityBrC
	// PriorityLSQC is LSQ Count: fewer LQ+SQ entries.
	PriorityLSQC
	// PriorityRR is Round Robin: alternate without metrics.
	PriorityRR
)

// String implements fmt.Stringer using the paper's mnemonics.
func (p Priority) String() string {
	switch p {
	case PriorityIC:
		return "IC"
	case PriorityBrC:
		return "BrC"
	case PriorityLSQC:
		return "LSQC"
	case PriorityRR:
		return "RR"
	default:
		return fmt.Sprintf("prio(%d)", uint8(p))
	}
}

// Gating-mask structure indices (the b3 b2 b1 b0 bits of §3.3).
const (
	GateIQ = iota
	GateLSQ
	GateROB
	GateIRF
	numGates
)

// Policy is one fetch Priority & Gating policy X_b3b2b1b0: the fetch
// priority plus which structures' occupancies trigger fetch gating.
type Policy struct {
	// Priority is the fetch priority policy.
	Priority Priority
	// Gate[i] enables occupancy gating on structure i (GateIQ..GateIRF).
	Gate [numGates]bool
}

// String renders the paper's mnemonic, e.g. "IC_1011".
func (p Policy) String() string {
	var b strings.Builder
	b.WriteString(p.Priority.String())
	b.WriteByte('_')
	for i := 0; i < numGates; i++ {
		if p.Gate[i] {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ParsePolicy parses a mnemonic like "LSQC_1111".
func ParsePolicy(s string) (Policy, error) {
	parts := strings.SplitN(s, "_", 2)
	if len(parts) != 2 || len(parts[1]) != numGates {
		return Policy{}, fmt.Errorf("simsmt: bad policy %q", s)
	}
	var p Policy
	switch parts[0] {
	case "IC":
		p.Priority = PriorityIC
	case "BrC":
		p.Priority = PriorityBrC
	case "LSQC":
		p.Priority = PriorityLSQC
	case "RR":
		p.Priority = PriorityRR
	default:
		return Policy{}, fmt.Errorf("simsmt: bad priority in %q", s)
	}
	for i, c := range parts[1] {
		switch c {
		case '1':
			p.Gate[i] = true
		case '0':
		default:
			return Policy{}, fmt.Errorf("simsmt: bad gating bits in %q", s)
		}
	}
	return p, nil
}

// mustPolicy parses a known-good mnemonic.
func mustPolicy(s string) Policy {
	p, err := ParsePolicy(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Named policies from the paper.
var (
	// ChoiPolicy is IC_1011: ICount priority, gating on IQ, ROB, and IRF
	// (Choi & Yeung's configuration).
	ChoiPolicy = mustPolicy("IC_1011")
	// ICountPolicy is IC_0000: plain ICount with no gating (Tullsen).
	ICountPolicy = mustPolicy("IC_0000")
)

// AllPolicies returns the full 64-policy design space (4 priorities × 2^4
// gating masks), ordered priority-major.
func AllPolicies() []Policy {
	var out []Policy
	for prio := PriorityIC; prio <= PriorityRR; prio++ {
		for mask := 0; mask < 1<<numGates; mask++ {
			p := Policy{Priority: prio}
			for b := 0; b < numGates; b++ {
				// Mnemonic bit order is b3..b0 = IQ,LSQ,ROB,IRF.
				p.Gate[b] = mask&(1<<(numGates-1-b)) != 0
			}
			out = append(out, p)
		}
	}
	return out
}

// Table1Arms returns the six pruned fetch PG policies the Bandit selects
// among (Table 1; §6.3).
func Table1Arms() []Policy {
	return []Policy{
		mustPolicy("IC_0000"),
		mustPolicy("BrC_1000"),
		mustPolicy("IC_1110"),
		mustPolicy("IC_1111"),
		mustPolicy("LSQC_1111"),
		mustPolicy("RR_1111"),
	}
}
