package simsmt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRewardModeString(t *testing.T) {
	want := map[RewardMode]string{
		RewardSumIPC: "sum-ipc", RewardWeightedIPC: "weighted-ipc",
		RewardHarmonicWeighted: "harmonic-weighted", RewardMode(9): "reward(9)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestRewardMetrics(t *testing.T) {
	ipc := [2]float64{1.0, 0.5}
	solo := [2]float64{2.0, 1.0}
	if got := RewardSumIPC.Reward(ipc, solo); got != 1.5 {
		t.Errorf("sum = %v", got)
	}
	// weighted: (0.5 + 0.5)/2 = 0.5
	if got := RewardWeightedIPC.Reward(ipc, solo); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("weighted = %v", got)
	}
	// harmonic of equal weights equals the weights
	if got := RewardHarmonicWeighted.Reward(ipc, solo); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("harmonic = %v", got)
	}
	// Unequal weights: harmonic < arithmetic.
	ipc2 := [2]float64{1.8, 0.1}
	h := RewardHarmonicWeighted.Reward(ipc2, solo)
	w := RewardWeightedIPC.Reward(ipc2, solo)
	if h >= w {
		t.Errorf("harmonic %v not below arithmetic %v for unfair split", h, w)
	}
	// Zero solo baselines degrade gracefully.
	if got := RewardWeightedIPC.Reward(ipc, [2]float64{}); got != 0 {
		t.Errorf("weighted with zero solo = %v", got)
	}
	if got := RewardHarmonicWeighted.Reward(ipc, [2]float64{}); got != 0 {
		t.Errorf("harmonic with zero solo = %v", got)
	}
}

func TestDisableThread(t *testing.T) {
	p1 := mustProfile(t, "gcc")
	p2 := mustProfile(t, "leela")
	sim := NewSim(p1, p2, 3)
	sim.DisableThread(1)
	sim.RunCycles(30_000)
	if sim.Committed(1) != 0 {
		t.Errorf("disabled thread committed %d uops", sim.Committed(1))
	}
	if sim.Committed(0) == 0 {
		t.Error("enabled thread committed nothing")
	}
}

func TestSoloIPCExceedsSMTShare(t *testing.T) {
	p := mustProfile(t, "gcc")
	solo := SoloIPC(p, 3, 60_000)
	if solo <= 0 {
		t.Fatal("solo IPC non-positive")
	}
	// Under SMT with a sibling, the thread gets less than its solo IPC.
	sim := NewSim(p, mustProfile(t, "lbm"), 3)
	sim.RunCycles(60_000)
	smtIPC := float64(sim.Committed(0)) / float64(sim.Cycle())
	if smtIPC >= solo {
		t.Errorf("SMT IPC %.3f not below solo %.3f", smtIPC, solo)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	a, b := mustProfile(t, "gcc"), mustProfile(t, "lbm")
	solo := [2]float64{SoloIPC(a, 1, 40_000), SoloIPC(b, 2, 40_000)}
	sim := NewSim(a, b, 5)
	sim.RunCycles(40_000)
	m := Evaluate(sim, solo)
	if m.SumIPC <= 0 || m.Weighted <= 0 || m.Harmonic <= 0 {
		t.Fatalf("metrics non-positive: %+v", m)
	}
	if m.Fairness <= 0 || m.Fairness > 1 {
		t.Errorf("fairness = %v outside (0,1]", m.Fairness)
	}
	if m.Harmonic > m.Weighted+1e-12 {
		t.Errorf("harmonic %v exceeds arithmetic %v", m.Harmonic, m.Weighted)
	}
	if got := m.PerThread[0] + m.PerThread[1]; math.Abs(got-m.SumIPC) > 1e-12 {
		t.Errorf("per-thread IPCs inconsistent with sum")
	}
	// Degenerate zero-cycle sim.
	if z := Evaluate(NewSim(a, b, 1), solo); z.SumIPC != 0 {
		t.Error("zero-cycle Evaluate non-zero")
	}
}

func TestRunnerWithWeightedReward(t *testing.T) {
	a, b := mustProfile(t, "mcf"), mustProfile(t, "lbm")
	solo := [2]float64{SoloIPC(a, 1, 30_000), SoloIPC(b, 2, 30_000)}
	sim := NewSim(a, b, 7)
	agent := NewBanditAgent(3)
	r := NewRunner(sim, agent, Table1Arms(), true)
	r.EpochLen = 2048
	r.RREpochs = 2
	r.MainEpochs = 1
	r.Reward = RewardHarmonicWeighted
	r.Solo = solo
	r.RunCycles(300_000)
	if agent.StepsTaken() < 10 {
		t.Fatalf("only %d steps", agent.StepsTaken())
	}
	// Rewards are harmonic weighted speedups: the agent's learned values
	// must lie in a plausible normalized band (normalization makes the
	// mean ~1).
	for _, rv := range agent.Rewards() {
		if rv < 0 || rv > 5 {
			t.Errorf("implausible learned reward %v", rv)
		}
	}
}

// Property: harmonic mean never exceeds arithmetic mean of the weights.
func TestQuickHarmonicLEWeighted(t *testing.T) {
	f := func(i0, i1, s0, s1 uint16) bool {
		ipc := [2]float64{float64(i0)/1000 + 0.001, float64(i1)/1000 + 0.001}
		solo := [2]float64{float64(s0)/1000 + 0.001, float64(s1)/1000 + 0.001}
		h := RewardHarmonicWeighted.Reward(ipc, solo)
		w := RewardWeightedIPC.Reward(ipc, solo)
		return h <= w+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestARPAPartitionsTowardEfficientThread(t *testing.T) {
	a := NewARPA()
	if a.Share() != 0.5 {
		t.Fatal("ARPA must start at an even split")
	}
	// exchange2 (cache-resident, efficient) vs mcf (ROB-clogging): ARPA
	// should shift share toward the efficient thread.
	p0 := mustProfile(t, "exchange2")
	p1 := mustProfile(t, "mcf")
	sim := NewSim(p0, p1, 3)
	sim.SetPolicy(mustPolicy("IC_1111"))
	r := &ARPARunner{Sim: sim, ARPA: a, EpochLen: 8192}
	r.RunCycles(400_000)
	if a.Share() <= 0.55 {
		t.Errorf("share = %.3f; expected shift toward the efficient thread", a.Share())
	}
	// Reset restores the even split.
	a.Reset()
	if a.Share() != 0.5 {
		t.Error("Reset did not restore 0.5")
	}
}

func TestARPAStableOnSymmetricMix(t *testing.T) {
	p := mustProfile(t, "gcc")
	sim := NewSim(p, p, 5)
	sim.SetPolicy(mustPolicy("IC_1111"))
	r := NewARPARunner(sim, mustPolicy("IC_1111"))
	r.EpochLen = 8192
	r.RunCycles(400_000)
	if s := r.ARPA.Share(); s < 0.4 || s > 0.6 {
		t.Errorf("symmetric mix drifted to share %.3f", s)
	}
}

func TestOccupancyIntegralMonotone(t *testing.T) {
	sim := NewSim(mustProfile(t, "mcf"), mustProfile(t, "lbm"), 1)
	sim.RunCycles(10_000)
	a0 := sim.OccupancyIntegral(0)
	sim.RunCycles(10_000)
	if sim.OccupancyIntegral(0) < a0 {
		t.Error("occupancy integral decreased")
	}
	if sim.OccupancyIntegral(0) == 0 && sim.OccupancyIntegral(1) == 0 {
		t.Error("no occupancy ever recorded")
	}
}
