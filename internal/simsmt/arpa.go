package simsmt

import "context"

// ARPA (Wang, Koren & Krishna, PACT 2008) is the alternative SMT
// resource-distribution method the paper's related work discusses (§8):
// instead of hill-climbing a threshold, it partitions shared resources in
// proportion to each thread's *usage efficiency* — committed instructions
// per occupied resource entry — so threads that turn entries into
// throughput get more of them.
//
// This implementation drives the same share knob Hill Climbing does (the
// per-thread occupancy cap applied by the fetch-gating policy), so ARPA,
// Choi, and the Bandit are compared on identical machinery. The paper
// suggests Bandit could sit on top of ARPA exactly as it does on Hill
// Climbing; ARPARunner therefore accepts an optional arm controller too.
type ARPA struct {
	// Smoothing is the EWMA factor applied to the efficiency-derived
	// share (0 = jump immediately; 0.5 = halve the step).
	Smoothing float64

	share      float64
	prevCommit [2]int64
	prevOcc    [2]int64
}

// NewARPA returns an ARPA controller starting from an even split.
func NewARPA() *ARPA { return &ARPA{Smoothing: 0.5, share: 0.5} }

// Share returns thread 0's current resource share.
func (a *ARPA) Share() float64 { return a.share }

// EpochEnd updates the partition from the epoch's per-thread commit and
// occupancy deltas.
func (a *ARPA) EpochEnd(sim *SMT) {
	var eff [2]float64
	for t := 0; t < 2; t++ {
		commits := sim.Committed(t) - a.prevCommit[t]
		occ := sim.OccupancyIntegral(t) - a.prevOcc[t]
		a.prevCommit[t] = sim.Committed(t)
		a.prevOcc[t] = sim.OccupancyIntegral(t)
		if occ > 0 {
			eff[t] = float64(commits) / float64(occ)
		}
	}
	if eff[0]+eff[1] <= 0 {
		return
	}
	target := eff[0] / (eff[0] + eff[1])
	a.share = a.Smoothing*a.share + (1-a.Smoothing)*target
	a.share = clampShare(a.share)
}

// Reset returns the controller to the even split.
func (a *ARPA) Reset() {
	a.share = 0.5
	a.prevCommit = [2]int64{}
	a.prevOcc = [2]int64{}
}

// ARPARunner drives the pipeline with ARPA partitioning, optionally under
// a bandit arm controller selecting the fetch PG policy (the composition
// §8 proposes).
type ARPARunner struct {
	Sim  *SMT
	ARPA *ARPA
	// EpochLen is the repartitioning epoch in cycles.
	EpochLen int64
}

// NewARPARunner builds an ARPA-partitioned runner with the given fixed
// fetch PG policy.
func NewARPARunner(sim *SMT, policy Policy) *ARPARunner {
	sim.SetPolicy(policy)
	return &ARPARunner{Sim: sim, ARPA: NewARPA(), EpochLen: EpochCycles}
}

// RunCycles simulates n cycles with per-epoch repartitioning.
func (r *ARPARunner) RunCycles(n int64) {
	r.RunCyclesCtx(context.Background(), n)
}

// RunCyclesCtx is RunCycles with cooperative cancellation, checked at
// every repartitioning epoch; partial statistics stay valid.
func (r *ARPARunner) RunCyclesCtx(ctx context.Context, n int64) error {
	end := r.Sim.Cycle() + n
	r.Sim.SetShare(r.ARPA.Share())
	for r.Sim.Cycle() < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.Sim.RunCycles(r.EpochLen)
		r.ARPA.EpochEnd(r.Sim)
		r.Sim.SetShare(r.ARPA.Share())
	}
	return ctx.Err()
}
