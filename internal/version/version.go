// Package version derives a human-readable build identity from the
// binary's embedded build info, so every CLI answers -version (and the
// serve API's /healthz) without a linker-flag build pipeline.
package version

import (
	"runtime/debug"
	"strings"
)

// String returns the build identity: the main module version when the
// binary was built from a tagged module, otherwise the VCS revision
// (short hash, "+dirty" when the tree was modified), otherwise "devel".
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	return fromBuildInfo(bi)
}

// fromBuildInfo is String on an explicit build info (split out for
// tests, which cannot fabricate the process's own info).
func fromBuildInfo(bi *debug.BuildInfo) string {
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	var b strings.Builder
	b.WriteString("devel-")
	b.WriteString(rev)
	if dirty {
		b.WriteString("+dirty")
	}
	return b.String()
}
