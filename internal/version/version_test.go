package version

import (
	"runtime/debug"
	"testing"
)

func TestStringNonEmpty(t *testing.T) {
	if String() == "" {
		t.Fatal("empty version string")
	}
}

func TestFromBuildInfo(t *testing.T) {
	cases := []struct {
		name string
		bi   debug.BuildInfo
		want string
	}{
		{
			name: "tagged module",
			bi:   debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}},
			want: "v1.2.3",
		},
		{
			name: "no info at all",
			bi:   debug.BuildInfo{Main: debug.Module{Version: "(devel)"}},
			want: "devel",
		},
		{
			name: "vcs revision",
			bi: debug.BuildInfo{
				Main: debug.Module{Version: "(devel)"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "0123456789abcdef0123"},
					{Key: "vcs.modified", Value: "false"},
				},
			},
			want: "devel-0123456789ab",
		},
		{
			name: "dirty tree",
			bi: debug.BuildInfo{
				Main: debug.Module{Version: "(devel)"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "deadbeef"},
					{Key: "vcs.modified", Value: "true"},
				},
			},
			want: "devel-deadbeef+dirty",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := fromBuildInfo(&c.bi); got != c.want {
				t.Fatalf("got %q, want %q", got, c.want)
			}
		})
	}
}
