package hw

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAgentStorageScalesLinearly(t *testing.T) {
	if got := Agent(11).StorageBytes; got != 88 {
		t.Errorf("11-arm storage = %dB, want 88", got)
	}
	if got := Agent(6).StorageBytes; got != 48 {
		t.Errorf("6-arm storage = %dB, want 48", got)
	}
}

func TestPaperHeadlineClaims(t *testing.T) {
	// "the dramatically lower storage requirement of only 100 bytes"
	// for the maximum number of arms in the evaluation (11).
	if got := Agent(11).StorageBytes; got >= 100 {
		t.Errorf("11-arm Bandit storage = %dB, paper claims <100B", got)
	}
	// Conservative selection latency for 11 arms is "less than 500 cycles".
	if got := Agent(11).SelectCycles; got >= 500 {
		t.Errorf("11-arm select latency = %d cycles, paper claims <500", got)
	}
	// Relative overheads on a 40-core Icelake are "less than 0.003%".
	areaFrac, powerFrac := DieOverhead()
	if areaFrac >= 0.00003 {
		t.Errorf("area overhead = %v, want < 0.003%%", areaFrac)
	}
	if powerFrac >= 0.00003 {
		t.Errorf("power overhead = %v, want < 0.003%%", powerFrac)
	}
}

func TestAgentClampsArms(t *testing.T) {
	if got := Agent(0).Arms; got != 1 {
		t.Errorf("Agent(0).Arms = %d, want 1", got)
	}
	if got := Agent(-5).Arms; got != 1 {
		t.Errorf("Agent(-5).Arms = %d, want 1", got)
	}
}

func TestAgentString(t *testing.T) {
	s := Agent(11).String()
	for _, want := range []string{"arms=11", "storage=88B", "select="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestStorageTableOrdering(t *testing.T) {
	rows := StorageTable(11)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "Bandit" || rows[0].Bytes != 88 {
		t.Errorf("row0 = %+v", rows[0])
	}
	// Bandit must be dramatically smaller than every prior prefetcher.
	for _, r := range rows[2:] {
		if rows[0].Bytes*10 > r.Bytes {
			t.Errorf("Bandit (%dB) not <10%% of %s (%dB)", rows[0].Bytes, r.Name, r.Bytes)
		}
	}
	// Even including the orchestrated ensemble, storage stays below MLOP.
	if rows[1].Bytes >= MLOPStorageBytes {
		t.Errorf("Bandit+ensemble = %dB, want < MLOP %dB", rows[1].Bytes, MLOPStorageBytes)
	}
}

// Property: selection latency and storage grow monotonically with arms.
func TestQuickMonotoneCosts(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a%64)+1, int(b%64)+1
		if x > y {
			x, y = y, x
		}
		cx, cy := Agent(x), Agent(y)
		return cx.StorageBytes <= cy.StorageBytes && cx.SelectCycles <= cy.SelectCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
