// Package hw provides the analytical storage / area / power / latency model
// for the Micro-Armed Bandit hardware agent (paper §5.4 and §6.5) and for
// the prefetchers it is compared against.
//
// The paper derives its numbers from CACTI (tables), a published 15 nm FPU
// datapoint, and the Stillmaker & Baas scaling equations down to 10 nm.
// Those tools are not reproducible offline, so this package encodes the
// paper's published end results as model constants and reproduces the
// arithmetic around them: storage scaling with the number of arms, the
// conservative 500-cycle arm-selection latency, and the relative area /
// power overhead on a server-class 40-core die.
package hw

import "fmt"

// Storage sizes in bytes of the paper's table of comparisons (§7.2.1).
const (
	// BytesPerArm is the per-arm storage of the Bandit agent: a
	// single-precision float for the running reward plus an unsigned
	// integer for the (discounted) selection count.
	BytesPerArm = 8

	// PythiaStorageBytes is Pythia's state-action value storage (25.5 KB
	// total framework storage; 24 KB is the Q-value store alone).
	PythiaStorageBytes = 25 * 1024
	// MLOPStorageBytes is MLOP's storage overhead.
	MLOPStorageBytes = 8 * 1024
	// BingoStorageBytes is Bingo's storage overhead.
	BingoStorageBytes = 46 * 1024
	// EnsembleStorageBytes bounds the storage of the next-line, stream,
	// and stride prefetchers the Bandit orchestrates (<2 KB per paper).
	EnsembleStorageBytes = 2 * 1024
)

// Latency constants (cycles), per the paper's conservative estimates.
const (
	// DivSqrtLatency is the conservatively assumed latency of one
	// division or square root in a single non-pipelined arithmetic unit.
	DivSqrtLatency = 20
	// SelectLatencyConservative is the conservative end-of-step latency
	// assumed in all simulations: potentials of all arms computed on the
	// critical path.
	SelectLatencyConservative = 500
	// SelectLatencyAdvanced is the latency of the advanced design that
	// precomputes all untested arms' potentials in the background.
	SelectLatencyAdvanced = 50
)

// Physical-model constants at 10 nm, as published in §6.5.
const (
	// AgentAreaMM2 is the area of one Bandit agent (tables + FPU).
	AgentAreaMM2 = 0.00044
	// AgentPowerMW is the power of one Bandit agent.
	AgentPowerMW = 0.11
	// IcelakeDieAreaMM2 is the total die area of the 40-core Intel
	// Icelake reference (wikichip).
	IcelakeDieAreaMM2 = 628.0
	// IcelakeTDPW is the reference die's thermal design power in watts.
	IcelakeTDPW = 270.0
	// IcelakeCores is the number of cores (one Bandit per core).
	IcelakeCores = 40
)

// AgentCost summarizes the hardware cost of a Bandit instance.
type AgentCost struct {
	Arms         int
	StorageBytes int     // nTable + rTable
	AreaMM2      float64 // per agent, at 10 nm
	PowerMW      float64 // per agent, at 10 nm
	SelectCycles int     // conservative arm-selection latency
}

// Agent returns the cost model for a Bandit with the given number of arms.
// Area and power are dominated by the arithmetic unit and control logic, so
// they are held at the paper's published per-agent constants; storage
// scales linearly with arms.
func Agent(arms int) AgentCost {
	if arms < 1 {
		arms = 1
	}
	return AgentCost{
		Arms:         arms,
		StorageBytes: arms * BytesPerArm,
		AreaMM2:      AgentAreaMM2,
		PowerMW:      AgentPowerMW,
		SelectCycles: selectLatency(arms),
	}
}

// selectLatency models the naive (conservative) arm-selection critical
// path: ln(nTotal) computed once, then per arm a division, a square root, a
// multiply and an add on a single non-pipelined unit, plus table reads and
// the final comparison tree. This reproduces the paper's "less than 500
// cycles for 11 arms" estimate.
func selectLatency(arms int) int {
	const (
		lnCost      = DivSqrtLatency       // one log approximation up front
		perArmCost  = 2*DivSqrtLatency + 2 // div + sqrt + mul + add (fused)
		compareCost = 1
	)
	return lnCost + arms*perArmCost + arms*compareCost
}

// String renders the agent cost on one line.
func (c AgentCost) String() string {
	return fmt.Sprintf("arms=%d storage=%dB area=%.5fmm2 power=%.2fmW select=%dcyc",
		c.Arms, c.StorageBytes, c.AreaMM2, c.PowerMW, c.SelectCycles)
}

// DieOverhead reports the relative area and power overhead (fractions in
// [0,1]) of equipping every core of the reference 40-core die with one
// Bandit agent each.
func DieOverhead() (areaFrac, powerFrac float64) {
	areaFrac = float64(IcelakeCores) * AgentAreaMM2 / IcelakeDieAreaMM2
	powerFrac = float64(IcelakeCores) * AgentPowerMW / 1000.0 / IcelakeTDPW
	return areaFrac, powerFrac
}

// StorageComparison is one row of the storage-overhead comparison the paper
// makes when positioning Bandit against prior prefetchers.
type StorageComparison struct {
	Name  string
	Bytes int
}

// StorageTable returns the storage comparison rows for a Bandit with the
// given number of arms, in the order the paper discusses them.
func StorageTable(arms int) []StorageComparison {
	return []StorageComparison{
		{Name: "Bandit", Bytes: Agent(arms).StorageBytes},
		{Name: "Bandit+ensemble", Bytes: Agent(arms).StorageBytes + EnsembleStorageBytes},
		{Name: "Pythia", Bytes: PythiaStorageBytes},
		{Name: "MLOP", Bytes: MLOPStorageBytes},
		{Name: "Bingo", Bytes: BingoStorageBytes},
	}
}
