package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"microbandit/internal/serve"
)

// RouterNode names one ring member and how to reach it.
type RouterNode struct {
	Name     string
	Endpoint Endpoint
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Nodes is the ring membership, in a fixed order: node i streams its
	// checkpoints to node (i+1) mod N, which is also its promotion
	// target. Placement depends only on the names, so any router built
	// over the same membership routes identically.
	Nodes []RouterNode
	// VNodes is the ring's virtual point count per node (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// ProbeEvery is the readiness probe cadence (<= 0 selects 250ms).
	ProbeEvery time.Duration
	// FailAfter is how many consecutive failure signals (probe or
	// request) a node survives before the router promotes its replica
	// (<= 0 selects 3). Partition chaos arrives in bursts, so the
	// threshold trades detection latency against spurious promotion.
	FailAfter int
	// MaxTries bounds forward attempts per request, failover included
	// (<= 0 selects 3).
	MaxTries int
	// RetryBase/RetryMax shape the jittered backoff between forward
	// attempts (<= 0 selects 2ms/50ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryAfter is the hint attached to the router's own 503s
	// (<= 0 selects 1s).
	RetryAfter time.Duration
	// IDPrefix prefixes router-minted session ids (default "c").
	IDPrefix string
}

// routerNode is one logical node's live routing state.
type routerNode struct {
	name    string
	primary Endpoint
	replica int // ring successor index: replication target, promotion target

	mu           sync.Mutex
	cur          Endpoint
	failedOver   bool
	down         bool // primary dead and promotion failed; retried on the next signal
	fails        int
	firstFail    time.Time
	failovers    int
	lastRecovery time.Duration
}

// Router is the cluster's thin HTTP entry point. It owns no session
// state: every operation forwards to the id's ring owner, and the
// per-session sequence protocol makes cross-node retries exactly-once —
// a step replayed after a failover either answers the same open
// decision or is rejected with a typed 409 the client resolves by
// resyncing, never by double-charging an arm.
type Router struct {
	ring  *Ring
	nodes []*routerNode

	probeEvery time.Duration
	failAfter  int
	maxTries   int
	retryBase  time.Duration
	retryMax   time.Duration
	retryAfter string
	idPrefix   string

	ids atomic.Uint64
	jit atomic.Uint64
	mux *http.ServeMux
}

// NewRouter builds a router over cfg. It panics on an empty node list —
// a router with nothing behind it is a configuration bug, not a runtime
// state.
func NewRouter(cfg RouterConfig) *Router {
	if len(cfg.Nodes) == 0 {
		panic("cluster: router needs at least one node")
	}
	names := make([]string, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		names[i] = n.Name
	}
	rt := &Router{
		ring:       NewRing(names, cfg.VNodes),
		probeEvery: cfg.ProbeEvery,
		failAfter:  cfg.FailAfter,
		maxTries:   cfg.MaxTries,
		retryBase:  cfg.RetryBase,
		retryMax:   cfg.RetryMax,
		idPrefix:   cfg.IDPrefix,
	}
	if rt.probeEvery <= 0 {
		rt.probeEvery = 250 * time.Millisecond
	}
	if rt.failAfter <= 0 {
		rt.failAfter = 3
	}
	if rt.maxTries <= 0 {
		rt.maxTries = 3
	}
	if rt.retryBase <= 0 {
		rt.retryBase = 2 * time.Millisecond
	}
	if rt.retryMax <= 0 {
		rt.retryMax = 50 * time.Millisecond
	}
	ra := cfg.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	rt.retryAfter = strconv.Itoa(int((ra + time.Second - 1) / time.Second))
	if rt.idPrefix == "" {
		rt.idPrefix = "c"
	}
	for i, n := range cfg.Nodes {
		rt.nodes = append(rt.nodes, &routerNode{
			name:    n.Name,
			primary: n.Endpoint,
			cur:     n.Endpoint,
			replica: (i + 1) % len(cfg.Nodes),
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)
	mux.HandleFunc("PUT /v1/sessions/{id}", rt.handleForward)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.handleForward)
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleForward)
	mux.HandleFunc("POST /v1/sessions/{id}/step", rt.handleForward)
	mux.HandleFunc("POST /v1/sessions/{id}/reward", rt.handleForward)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux = mux
	return rt
}

// ServeHTTP implements http.Handler with the same panic fence the nodes
// carry.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			writeClusterError(w, http.StatusInternalServerError, serve.CodeInternal,
				fmt.Sprintf("router panic: %v", v))
		}
	}()
	rt.mux.ServeHTTP(w, r)
}

// Run drives the readiness prober until ctx ends. Probe outcomes feed
// the same failure counter request forwarding feeds, so a node that
// dies while idle is still promoted within a few probe intervals.
func (rt *Router) Run(ctx context.Context) {
	t := time.NewTicker(rt.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for i := range rt.nodes {
			rt.probe(ctx, i)
		}
	}
}

// probe checks one node's readiness endpoint.
func (rt *Router) probe(ctx context.Context, idx int) {
	ep, ok := rt.currentEndpoint(idx)
	if !ok {
		rt.noteFailure(ctx, idx)
		return
	}
	cctx, cancel := context.WithTimeout(ctx, rt.probeEvery)
	status, hdr, _, err := ep.do(cctx, http.MethodGet, "/readyz", nil)
	cancel()
	if err != nil || nodeFailureSignal(status, hdr) {
		rt.noteFailure(ctx, idx)
		return
	}
	// 200, or a 503 that carries Retry-After: the node is alive (a
	// draining node fails readiness on purpose; it is not dead).
	rt.noteSuccess(idx)
}

// nodeFailureSignal distinguishes a dead-node response from a deliberate
// one. A draining or restoring node answers 503 with a Retry-After
// header; a severed transport or a partition fault answers a bare 503
// (or no response at all). Only the bare form counts toward failover.
func nodeFailureSignal(status int, hdr http.Header) bool {
	return status == http.StatusServiceUnavailable && hdr.Get("Retry-After") == ""
}

// currentEndpoint resolves a logical node to its live endpoint.
func (rt *Router) currentEndpoint(idx int) (Endpoint, bool) {
	ln := rt.nodes[idx]
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.down {
		return Endpoint{}, false
	}
	return ln.cur, true
}

// noteSuccess clears a node's consecutive-failure count.
func (rt *Router) noteSuccess(idx int) {
	ln := rt.nodes[idx]
	ln.mu.Lock()
	ln.fails = 0
	ln.mu.Unlock()
}

// noteFailure records one failure signal against a node and, at the
// threshold, runs the failover: promote the ring successor (it merges
// the node's last committed checkpoint into its own live store) and
// repoint the logical node at it. The node lock is held throughout, so
// concurrent requests to a dying node collapse into one promotion —
// they block here, then retry against the promoted endpoint.
func (rt *Router) noteFailure(ctx context.Context, idx int) {
	ln := rt.nodes[idx]
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.fails == 0 {
		ln.firstFail = time.Now()
	}
	ln.fails++
	if ln.fails < rt.failAfter {
		return
	}
	if ln.failedOver {
		// The promoted endpoint is failing too. Its own logical slot
		// (ln.replica) handles that node's health; this slot has no
		// second replica holding its checkpoint stream, so it can only
		// go dark. Single-failure tolerance, by design.
		ln.down = true
		return
	}
	rep := rt.nodes[ln.replica]
	body, _ := json.Marshal(promoteRequest{Source: ln.name})
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	status, _, data, err := rep.primary.do(cctx, http.MethodPost, "/v1/replica/promote", body)
	cancel()
	if err != nil || status != http.StatusOK {
		// Promotion unavailable (replica dead or restore failed): mark
		// the slot down; the next failure signal retries the promote.
		ln.down = true
		ln.fails = 0
		_ = data
		return
	}
	ln.cur = rep.primary
	ln.failedOver = true
	ln.down = false
	ln.failovers++
	ln.lastRecovery = time.Since(ln.firstFail)
	ln.fails = 0
}

// forward sends one operation to a logical node, retrying across
// failure signals with jittered backoff. The final failure mode is a
// typed unavailable error the handlers translate to 503 + Retry-After.
func (rt *Router) forward(ctx context.Context, idx int, method, path string, body []byte) (int, http.Header, []byte, error) {
	for try := 0; ; try++ {
		if ep, ok := rt.currentEndpoint(idx); ok {
			status, hdr, resp, err := ep.do(ctx, method, path, body)
			if err == nil && !nodeFailureSignal(status, hdr) {
				rt.noteSuccess(idx)
				return status, hdr, resp, nil
			}
			rt.noteFailure(ctx, idx)
		} else {
			rt.noteFailure(ctx, idx)
		}
		if try >= rt.maxTries-1 {
			return 0, nil, nil, fmt.Errorf("node %s unavailable after %d attempts", rt.nodes[idx].name, rt.maxTries)
		}
		select {
		case <-ctx.Done():
			return 0, nil, nil, ctx.Err()
		case <-time.After(jitteredBackoff(rt.retryBase, rt.retryMax, try, splitmix(rt.jit.Add(1)))):
		}
	}
}

// maxRouteBody bounds forwarded request bodies, matching the nodes' own
// bound.
const maxRouteBody = 1 << 20

// readBody drains a request body, answering the error itself.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, serve.CodeBadRequest, "body: "+err.Error())
		return nil, false
	}
	return data, true
}

// relay copies a node's response to the client, preserving the typed
// error envelope and any Retry-After hint.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// unavailable answers the router's own 503: the owner is unreachable and
// its replica is not (yet) promoted. Clients treat it like a draining
// 503 — back off, retry — and the retry is safe by the sequence
// protocol.
func (rt *Router) unavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", rt.retryAfter)
	writeClusterError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, err.Error())
}

// handleForward routes a per-session operation to the id's owner.
func (rt *Router) handleForward(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	status, hdr, resp, err := rt.forward(r.Context(), rt.ring.Owner(id), r.Method, r.URL.Path, body)
	if err != nil {
		rt.unavailable(w, err)
		return
	}
	relay(w, status, hdr, resp)
}

// handleCreate mints a session id, places it on the ring, and creates
// it on its owner via the idempotent PUT — the id exists before any
// node is asked anything, so placement never depends on which node
// answered.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	id := fmt.Sprintf("%s-%08x", rt.idPrefix, rt.ids.Add(1))
	status, hdr, resp, err := rt.forward(r.Context(), rt.ring.Owner(id), http.MethodPut, "/v1/sessions/"+id, body)
	if err != nil {
		rt.unavailable(w, err)
		return
	}
	relay(w, status, hdr, resp)
}

// handleList merges every node's session list. Endpoints are deduped —
// after a failover two logical nodes share one process, which must not
// double-report the promoted sessions.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	seen := make(map[string]bool)
	var ids []string
	for idx := range rt.nodes {
		ep, ok := rt.currentEndpoint(idx)
		if !ok || seen[ep.Name] {
			continue
		}
		seen[ep.Name] = true
		status, _, resp, err := ep.do(r.Context(), http.MethodGet, "/v1/sessions", nil)
		if err != nil || status != http.StatusOK {
			continue // best-effort listing over the reachable membership
		}
		var page struct {
			Sessions []string `json:"sessions"`
		}
		if json.Unmarshal(resp, &page) == nil {
			ids = append(ids, page.Sessions...)
		}
	}
	sort.Strings(ids)
	if ids == nil {
		ids = []string{}
	}
	writeClusterJSON(w, http.StatusOK, struct {
		Sessions []string `json:"sessions"`
	}{Sessions: ids})
}

// handleBatch splits a mixed-owner batch into per-owner sub-batches,
// forwards them concurrently, and reassembles the results in the
// original op order. Per-op semantics are untouched: each node runs its
// sub-batch through the same kernels a direct request would, and an
// unreachable owner yields per-op unavailable errors rather than
// failing the ops that landed on healthy nodes.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	ops, err := serve.ParseBatchOps(body)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, serve.CodeBadRequest, "batch: "+err.Error())
		return
	}
	if len(ops) == 0 {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"results\":[]}\n")
		return
	}
	owners := make([]int, len(ops))
	groups := make(map[int][]int) // owner → original op indices
	for i, op := range ops {
		owners[i] = rt.ring.Owner(op.ID)
		groups[owners[i]] = append(groups[owners[i]], i)
	}

	merged := make([]json.RawMessage, len(ops))
	if len(groups) == 1 {
		// Single-owner fast path: the body forwards untouched.
		rt.forwardSubBatch(r.Context(), owners[0], body, groups[owners[0]], ops, merged)
	} else {
		var wg sync.WaitGroup
		for owner, idxs := range groups {
			sub := []byte(`{"ops":[`)
			for j, i := range idxs {
				if j > 0 {
					sub = append(sub, ',')
				}
				sub = serve.AppendBatchOp(sub, ops[i])
			}
			sub = append(sub, ']', '}')
			wg.Add(1)
			go func(owner int, sub []byte, idxs []int) {
				defer wg.Done()
				rt.forwardSubBatch(r.Context(), owner, sub, idxs, ops, merged)
			}(owner, sub, idxs)
		}
		wg.Wait()
	}

	out := []byte(`{"results":[`)
	for i, m := range merged {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, m...)
	}
	out = append(out, ']', '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// forwardSubBatch runs one owner's sub-batch and scatters its results
// into merged at the ops' original indices. Every failure mode degrades
// to per-op error results, so the batch response always lines up
// one-to-one with the request.
func (rt *Router) forwardSubBatch(ctx context.Context, owner int, sub []byte, idxs []int, ops []serve.BatchOp, merged []json.RawMessage) {
	errElement := func(code, msg string) json.RawMessage {
		el, _ := json.Marshal(struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}{Error: struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}{Code: code, Message: msg}})
		return el
	}
	fill := func(code, msg string) {
		el := errElement(code, msg)
		for _, i := range idxs {
			merged[i] = el
		}
	}
	status, _, resp, err := rt.forward(ctx, owner, http.MethodPost, "/v1/batch", sub)
	if err != nil {
		fill(serve.CodeUnavailable, err.Error())
		return
	}
	if status != http.StatusOK {
		code, msg := serve.CodeUnavailable, fmt.Sprintf("node answered %d", status)
		var eb struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(resp, &eb) == nil && eb.Error.Code != "" {
			code, msg = eb.Error.Code, eb.Error.Message
		}
		fill(code, msg)
		return
	}
	var page struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(resp, &page); err != nil || len(page.Results) != len(idxs) {
		fill(serve.CodeInternal, fmt.Sprintf("node returned %d results for %d ops", len(page.Results), len(idxs)))
		return
	}
	for j, i := range idxs {
		// A length-matched reply can still carry broken elements (null,
		// non-object, empty) — splicing one verbatim would hand the client
		// a result it misreads as seq 0 / arm 0, or corrupt the merged
		// JSON outright. Each element must be a JSON object to merge;
		// anything else degrades to a typed per-op error in place, leaving
		// the neighboring ops' alignment intact.
		el := bytes.TrimSpace(page.Results[j])
		if len(el) == 0 || el[0] != '{' || !json.Valid(el) {
			merged[i] = errElement(serve.CodeInternal,
				fmt.Sprintf("node returned a malformed result for op %d", j))
			continue
		}
		merged[i] = page.Results[j]
	}
}

// ---------------------------------------------------------------------
// Introspection

// NodeStatus is one logical node's routing state, as reported by
// GET /v1/cluster and Stats().
type NodeStatus struct {
	Name       string  `json:"name"`
	Endpoint   string  `json:"endpoint"`
	FailedOver bool    `json:"failed_over"`
	Down       bool    `json:"down"`
	Failovers  int     `json:"failovers"`
	RecoveryMS float64 `json:"recovery_ms,omitempty"` // detection → promoted, last failover
}

// ClusterStatus is the router's full introspection report.
type ClusterStatus struct {
	Nodes []NodeStatus `json:"nodes"`
}

// Stats snapshots the routing state.
func (rt *Router) Stats() ClusterStatus {
	var cs ClusterStatus
	for _, ln := range rt.nodes {
		ln.mu.Lock()
		ns := NodeStatus{
			Name:       ln.name,
			Endpoint:   ln.cur.Name,
			FailedOver: ln.failedOver,
			Down:       ln.down,
			Failovers:  ln.failovers,
		}
		if ln.lastRecovery > 0 {
			ns.RecoveryMS = float64(ln.lastRecovery) / float64(time.Millisecond)
		}
		ln.mu.Unlock()
		cs.Nodes = append(cs.Nodes, ns)
	}
	return cs
}

func (rt *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeClusterJSON(w, http.StatusOK, rt.Stats())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeClusterJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
	}{Status: "ok", Nodes: len(rt.nodes)})
}

// handleReadyz: the router is ready while every logical node routes
// somewhere. A slot that is down (primary dead, promotion failed) fails
// readiness, with the router's Retry-After hint.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	for idx := range rt.nodes {
		if _, ok := rt.currentEndpoint(idx); !ok {
			w.Header().Set("Retry-After", rt.retryAfter)
			writeClusterError(w, http.StatusServiceUnavailable, serve.CodeUnavailable,
				"node "+rt.nodes[idx].name+" is unroutable")
			return
		}
	}
	writeClusterJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}
