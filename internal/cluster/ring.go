// Package cluster grows mab-serve from one process to an N-node ring.
//
// Placement: a consistent-hash ring (ring.go) maps every session id onto
// one logical node, deterministically — any router instance, and any
// test, computes the same owner from the id alone. The router
// (router.go) is a thin stdlib-HTTP layer that forwards scalar session
// operations to the owner and splits /v1/batch bodies into per-owner
// sub-batches, reusing the per-session sequence protocol unchanged, so
// a retry that crosses nodes stays exactly-once.
//
// Durability: every node streams checkpoint record deltas (the v2
// slab/column-group records from internal/serve) to its ring successor
// over HTTP (repl.go, replica.go) with acknowledged offsets, bounded
// receiver buffering, and single-flight backpressure. When the router's
// probes and request failures agree a node is dead, it promotes the
// successor — the replica merges the dead node's last committed
// checkpoint into its own live store — and repoints the logical node.
// In-flight sessions continue their exact decision streams: the
// checkpoint rewinds a session at most to its last committed state, and
// replaying the tail regenerates byte-identical decisions because agents
// are deterministic given spec and seed (chaos_test.go holds the system
// to exactly that).
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the per-node virtual point count. 64 points per node
// keeps the ownership split of a 3-node ring within a few percent of
// even without making ring construction noticeable.
const DefaultVNodes = 64

// ringPoint is one virtual node: a hash position owned by a node index.
type ringPoint struct {
	h    uint64
	node int32
}

// Ring is a consistent-hash ring over logical node indices. Placement is
// a pure function of the node name list and the session id: every router
// instance built from the same topology agrees on every owner, with no
// coordination.
type Ring struct {
	points []ringPoint
	n      int
}

// NewRing builds a ring over the named nodes with the given number of
// virtual points per node (<= 0 selects DefaultVNodes).
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{n: len(names), points: make([]ringPoint, 0, len(names)*vnodes)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			h := splitmix(fnv64str(name + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{h: h, node: int32(i)})
		}
	}
	// Ties (two names hashing a point to the same position) break by node
	// index so the ring is deterministic for any input.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the number of nodes on the ring.
func (r *Ring) Nodes() int { return r.n }

// Owner returns the logical node index owning id: the first ring point
// at or clockwise of the id's hash. Raw FNV-1a clusters badly for the
// short, near-sequential keys session ids are, so both the ring points
// and the lookups run the hash through a SplitMix64 finalizer — cheap,
// deterministic, and it spreads the last byte's entropy across all 64
// bits.
func (r *Ring) Owner(id string) int { return r.owner(splitmix(fnv64str(id))) }

// OwnerBytes is Owner for ids held as request-body slices, so the batch
// splitter routes ids without allocating strings.
func (r *Ring) OwnerBytes(id []byte) int { return r.owner(splitmix(fnv64bytes(id))) }

func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].node)
}

// fnv64str hashes s with FNV-1a (64-bit).
func fnv64str(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// fnv64bytes is fnv64str over a byte slice, kept separate (rather than
// converting) so batch routing does not allocate.
func fnv64bytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}
