package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"microbandit/internal/serve"
)

// ringFixture is a full in-process 3-node ring: nodes chained
// replica-wise in router order, each one's client path armed with a kill
// switch, and a router over the top.
type ringFixture struct {
	names  []string
	nodes  []*Node
	kills  []*KillSwitch
	router *Router
}

func newRingFixture(failAfter int) *ringFixture {
	names := []string{"alpha", "beta", "gamma"}
	lazies := make([]*lazyReplicaHandler, len(names))
	for i := range lazies {
		lazies[i] = &lazyReplicaHandler{}
	}
	f := &ringFixture{names: names}
	for i, name := range names {
		next := (i + 1) % len(names)
		f.nodes = append(f.nodes, NewNode(NodeConfig{
			Name:    name,
			Replica: Endpoint{Name: names[next], Client: handlerDoer{h: lazies[next]}},
		}))
	}
	for i := range lazies {
		lazies[i].h = f.nodes[i]
	}
	rns := make([]RouterNode, len(names))
	for i, name := range names {
		f.kills = append(f.kills, NewKillSwitch(handlerDoer{h: f.nodes[i]}))
		rns[i] = RouterNode{Name: name, Endpoint: Endpoint{Name: name, Client: f.kills[i]}}
	}
	f.router = NewRouter(RouterConfig{
		Nodes:     rns,
		FailAfter: failAfter,
		MaxTries:  4,
		RetryBase: 200 * time.Microsecond,
		RetryMax:  time.Millisecond,
	})
	return f
}

// createViaRouter mints one session through the router and returns its id.
func createViaRouter(t *testing.T, rt *Router, spec string) string {
	t.Helper()
	code, _, body := doReq(rt, "POST", "/v1/sessions", spec)
	if code != http.StatusCreated {
		t.Fatalf("router create: %d %s", code, body)
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	return cr.ID
}

func TestRouterCreatePlacesOnOwner(t *testing.T) {
	f := newRingFixture(0)
	id := createViaRouter(t, f.router, `{"algo":"ducb","arms":4,"seed":5}`)
	if !strings.HasPrefix(id, "c-") {
		t.Fatalf("router-minted id %q", id)
	}
	owner := f.router.ring.Owner(id)
	if _, ok := f.nodes[owner].Server().Store().Get(id); !ok {
		t.Fatalf("session %s not on its ring owner %s", id, f.names[owner])
	}
	for i, n := range f.nodes {
		if i == owner {
			continue
		}
		if _, ok := n.Server().Store().Get(id); ok {
			t.Fatalf("session %s leaked onto non-owner %s", id, f.names[i])
		}
	}
	// The scalar protocol round-trips through the router.
	stepSession(t, f.router, id, 10)
	code, _, body := doReq(f.router, "GET", "/v1/sessions/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("router GET: %d %s", code, body)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Seq != 10 || info.Open {
		t.Fatalf("session state through router: %+v", info)
	}
}

func TestRouterBatchSplitsAndMergesInOrder(t *testing.T) {
	f := newRingFixture(0)
	var ids []string
	for i := 0; i < 8; i++ {
		ids = append(ids, createViaRouter(t, f.router, fmt.Sprintf(`{"algo":"ducb","arms":4,"seed":%d}`, 100+i)))
	}
	owners := make(map[int]bool)
	for _, id := range ids {
		owners[f.router.ring.Owner(id)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("8 sessions landed on %d owner(s); the split path is untested", len(owners))
	}

	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":"%s","step":true}`, id)
	}
	// A final op for a session nobody owns: its error must come back in
	// position without failing the ops that landed on healthy nodes.
	sb.WriteString(`,{"id":"no-such-session","step":true}]}`)
	code, _, body := doReq(f.router, "POST", "/v1/batch", sb.String())
	if code != http.StatusOK {
		t.Fatalf("router batch: %d %s", code, body)
	}
	var page struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != len(ids)+1 {
		t.Fatalf("batch returned %d results for %d ops", len(page.Results), len(ids)+1)
	}
	for i := range ids {
		var st struct {
			Seq *uint64 `json:"seq"`
			Arm *int    `json:"arm"`
		}
		if err := json.Unmarshal(page.Results[i], &st); err != nil || st.Seq == nil || st.Arm == nil || *st.Seq != 0 {
			t.Fatalf("result %d = %s, want the first decision ({\"seq\":0,...})", i, page.Results[i])
		}
	}
	if !strings.Contains(string(page.Results[len(ids)]), serve.CodeNotFound) {
		t.Fatalf("missing-session op answered %s, want not_found in place", page.Results[len(ids)])
	}
}

func TestRouterFailoverContinuesDecisionStream(t *testing.T) {
	f := newRingFixture(1)
	id := createViaRouter(t, f.router, `{"algo":"ducb","arms":4,"seed":9}`)
	owner := f.router.ring.Owner(id)

	// A control run of the same spec establishes the expected stream.
	control := serve.New(serve.Config{})
	if err := createSessionAtNode(control, id, `{"algo":"ducb","arms":4,"seed":9}`); err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < 30; i++ {
		want = append(want, stepOnce(t, control, id))
	}

	var got []int
	for i := 0; i < 12; i++ {
		got = append(got, stepOnce(t, f.router, id))
	}
	if err := f.nodes[owner].Replicator().Sync(context.Background()); err != nil {
		t.Fatalf("pre-kill sync: %v", err)
	}
	f.kills[owner].Kill()
	for i := 12; i < 30; i++ {
		got = append(got, stepOnce(t, f.router, id))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d diverged across the failover: arm %d, control %d\n got=%v\nwant=%v",
				i+1, got[i], want[i], got, want)
		}
	}

	st := f.router.Stats()
	ns := st.Nodes[owner]
	if !ns.FailedOver || ns.Failovers != 1 || ns.Down {
		t.Fatalf("owner slot after failover: %+v", ns)
	}
	if ns.Endpoint != f.names[(owner+1)%3] {
		t.Fatalf("owner routes to %s, want its ring successor %s", ns.Endpoint, f.names[(owner+1)%3])
	}
	if ns.RecoveryMS <= 0 {
		t.Fatalf("failover recorded no recovery time: %+v", ns)
	}
	// The router stays ready (every slot still routes somewhere), and the
	// merged session list reports the promoted session exactly once.
	if code, _, body := doReq(f.router, "GET", "/readyz", ""); code != http.StatusOK {
		t.Fatalf("readyz after failover: %d %s", code, body)
	}
	_, _, body := doReq(f.router, "GET", "/v1/sessions", "")
	var page struct {
		Sessions []string `json:"sessions"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, s := range page.Sessions {
		if s == id {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("session %s listed %d times after failover: %v", id, seen, page.Sessions)
	}
}

func TestRouterDoubleFailureGoesDownWithRetryAfter(t *testing.T) {
	f := newRingFixture(1)
	id := createViaRouter(t, f.router, `{"algo":"ducb","arms":4,"seed":21}`)
	owner := f.router.ring.Owner(id)
	// Both the owner and its replica die: promotion has nowhere to go.
	f.kills[owner].Kill()
	f.kills[(owner+1)%3].Kill()
	code, hdr, body := doReq(f.router, "POST", "/v1/sessions/"+id+"/step", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("double failure answered %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("router 503 without a Retry-After hint")
	}
	if !strings.Contains(string(body), serve.CodeUnavailable) {
		t.Fatalf("router 503 body %s, want typed %s", body, serve.CodeUnavailable)
	}
	if code, _, _ := doReq(f.router, "GET", "/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dark slot: %d, want 503", code)
	}
	if code, _, _ := doReq(f.router, "GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz is liveness, not readiness: %d", code)
	}
}

func TestRouterDrainingRelaysWithoutFailover(t *testing.T) {
	f := newRingFixture(1)
	id := createViaRouter(t, f.router, `{"algo":"ducb","arms":4,"seed":33}`)
	owner := f.router.ring.Owner(id)
	f.nodes[owner].Server().SetState(serve.StateDraining)
	code, hdr, body := doReq(f.router, "POST", "/v1/sessions/"+id+"/step", "")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining relay: %d (Retry-After %q) %s", code, hdr.Get("Retry-After"), body)
	}
	if !strings.Contains(string(body), serve.CodeDraining) {
		t.Fatalf("draining body %s", body)
	}
	if st := f.router.Stats().Nodes[owner]; st.FailedOver || st.Down {
		t.Fatalf("a draining node was failed over: %+v", st)
	}
	f.nodes[owner].Server().SetState(serve.StateReady)
	if arm := stepOnce(t, f.router, id); arm < 0 {
		t.Fatal("node did not resume after the drain")
	}
}

// stepOnce advances a session one full decision and returns the arm.
func stepOnce(t *testing.T, h http.Handler, id string) int {
	t.Helper()
	code, _, body := doReq(h, "POST", "/v1/sessions/"+id+"/step", "")
	if code != http.StatusOK {
		t.Fatalf("step %s: %d %s", id, code, body)
	}
	var st struct {
		Seq uint64 `json:"seq"`
		Arm int    `json:"arm"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	code, _, body = doReq(h, "POST", "/v1/sessions/"+id+"/reward",
		fmt.Sprintf(`{"seq":%d,"reward":%g}`, st.Seq, chaosReward(st.Arm, st.Seq)))
	if code != http.StatusOK {
		t.Fatalf("reward %s: %d %s", id, code, body)
	}
	return st.Arm
}

// createSessionAtNode PUT-creates a session with a fixed id.
func createSessionAtNode(h http.Handler, id, spec string) error {
	code, _, body := doReq(h, "PUT", "/v1/sessions/"+id, spec)
	if code != http.StatusCreated && code != http.StatusOK {
		return fmt.Errorf("create %s: %d %s", id, code, body)
	}
	return nil
}
