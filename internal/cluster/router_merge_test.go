package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"microbandit/internal/serve"
)

// tamperDoer wraps a Doer and rewrites /v1/batch response bodies through
// mutate, modeling a node (or proxy) that answers 200 with a structurally
// broken results array.
type tamperDoer struct {
	inner  Doer
	mutate func(results []json.RawMessage) []json.RawMessage
}

func (d *tamperDoer) Do(req *http.Request) (*http.Response, error) {
	res, err := d.inner.Do(req)
	if err != nil || req.URL.Path != "/v1/batch" || res.StatusCode != http.StatusOK {
		return res, err
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return nil, err
	}
	var page struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, err
	}
	// The body is assembled by hand: encoding/json would refuse to emit
	// the invalid elements this test exists to inject.
	var sb strings.Builder
	sb.WriteString(`{"results":[`)
	for i, el := range d.mutate(page.Results) {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.Write(el)
	}
	sb.WriteString(`]}`)
	res.Body = io.NopCloser(strings.NewReader(sb.String()))
	return res, nil
}

// tamperedRouterFixture builds a single-node ring whose router-to-node
// client path rewrites batch replies through mutate.
func tamperedRouterFixture(t *testing.T, mutate func([]json.RawMessage) []json.RawMessage) (*Router, []string) {
	t.Helper()
	node := NewNode(NodeConfig{Name: "solo"})
	td := &tamperDoer{inner: handlerDoer{h: node}, mutate: mutate}
	rt := NewRouter(RouterConfig{
		Nodes: []RouterNode{{Name: "solo", Endpoint: Endpoint{Name: "solo", Client: td}}},
	})
	var ids []string
	for _, id := range []string{"merge-a", "merge-b", "merge-c"} {
		if err := createSessionAtNode(rt, id, `{"algo":"ducb","arms":3,"seed":7}`); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return rt, ids
}

// batchViaRouter posts one step op per id and returns the merged results.
func batchViaRouter(t *testing.T, rt *Router, ids []string) []json.RawMessage {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"id":"` + id + `","step":true}`)
	}
	sb.WriteString(`]}`)
	code, _, body := doReq(rt, "POST", "/v1/batch", sb.String())
	if code != http.StatusOK {
		t.Fatalf("router batch: %d %s", code, body)
	}
	var page struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("merged reply does not parse: %v (%s)", err, body)
	}
	if len(page.Results) != len(ids) {
		t.Fatalf("merged %d results for %d ops", len(page.Results), len(ids))
	}
	return page.Results
}

// wantStepResult asserts a merged element is a real step result.
func wantStepResult(t *testing.T, el json.RawMessage, pos int) {
	t.Helper()
	var st struct {
		Seq *uint64 `json:"seq"`
		Arm *int    `json:"arm"`
	}
	if err := json.Unmarshal(el, &st); err != nil || st.Seq == nil || st.Arm == nil {
		t.Fatalf("result %d = %s, want a step result", pos, el)
	}
}

// TestRouterBatchMergeNullElement: a node reply with the RIGHT length but
// a null element must not merge the null verbatim — the client would
// decode it as seq 0 / arm 0 and silently double-step. The router answers
// a typed per-op error in place, and the neighboring ops keep their
// positions.
func TestRouterBatchMergeNullElement(t *testing.T) {
	rt, ids := tamperedRouterFixture(t, func(results []json.RawMessage) []json.RawMessage {
		results[1] = json.RawMessage(`null`)
		return results
	})
	results := batchViaRouter(t, rt, ids)
	wantStepResult(t, results[0], 0)
	wantStepResult(t, results[2], 2)
	var eb struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(results[1], &eb); err != nil || eb.Error == nil {
		t.Fatalf("tampered slot merged %s, want a typed error element", results[1])
	}
	if eb.Error.Code != serve.CodeInternal {
		t.Fatalf("tampered slot error code %q, want %q", eb.Error.Code, serve.CodeInternal)
	}
}

// TestRouterBatchMergeHostileElements: other decodable-but-wrong
// elements — non-object scalars, arrays, booleans — likewise degrade to
// typed errors in place without corrupting the merged reply.
func TestRouterBatchMergeHostileElements(t *testing.T) {
	hostile := []string{`0`, `"ok"`, `[1,2]`, `true`}
	for _, h := range hostile {
		h := h
		t.Run("elem="+h, func(t *testing.T) {
			rt, ids := tamperedRouterFixture(t, func(results []json.RawMessage) []json.RawMessage {
				results[2] = json.RawMessage(h)
				return results
			})
			results := batchViaRouter(t, rt, ids)
			wantStepResult(t, results[0], 0)
			wantStepResult(t, results[1], 1)
			if !strings.Contains(string(results[2]), serve.CodeInternal) {
				t.Fatalf("tampered slot merged %q, want a %s error", results[2], serve.CodeInternal)
			}
		})
	}
}

// TestRouterBatchMergeUndecodableReply: an element breakage that makes
// the whole reply unparseable (truncated JSON, empty elements) loses all
// alignment, so every op of the sub-batch degrades to a typed error.
func TestRouterBatchMergeUndecodableReply(t *testing.T) {
	for _, h := range []string{`{"seq":`, ``, `  `} {
		h := h
		t.Run("elem="+h, func(t *testing.T) {
			rt, ids := tamperedRouterFixture(t, func(results []json.RawMessage) []json.RawMessage {
				results[2] = json.RawMessage(h)
				return results
			})
			for i, el := range batchViaRouter(t, rt, ids) {
				if !strings.Contains(string(el), serve.CodeInternal) {
					t.Fatalf("result %d = %s, want a %s error for every op", i, el, serve.CodeInternal)
				}
			}
		})
	}
}

// TestRouterBatchMergeShortReply: a reply with FEWER results than ops
// fails the whole sub-batch with typed per-op errors — alignment is
// unknowable, so no element merges.
func TestRouterBatchMergeShortReply(t *testing.T) {
	rt, ids := tamperedRouterFixture(t, func(results []json.RawMessage) []json.RawMessage {
		return results[:len(results)-1]
	})
	results := batchViaRouter(t, rt, ids)
	for i, el := range results {
		if !strings.Contains(string(el), serve.CodeInternal) {
			t.Fatalf("result %d = %s, want a %s error for every op", i, el, serve.CodeInternal)
		}
	}
}
