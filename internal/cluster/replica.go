package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"microbandit/internal/serve"
)

// receiver is the replica side of the checkpoint stream: it accumulates
// record bodies by content hash, assembles committed generations, and —
// on promotion — merges the latest committed checkpoint of a dead
// source into the node's own live store.
type receiver struct {
	store *serve.Store

	mu    sync.Mutex
	feeds map[string]*replicaFeed
}

// replicaFeed is the state of one source node's stream.
//
// Buffering is bounded: bodies live in a hash-addressed cache, and every
// commit prunes the cache down to exactly the records the committed
// manifest references. A source can therefore never grow the replica's
// memory past one committed checkpoint plus the in-flight delta — a
// runaway sender re-shipping garbage displaces its own cache, nobody
// else's.
type replicaFeed struct {
	// pending generation, set by begin and consumed by commit.
	pendingGen    uint64
	pendingNextID uint64
	pendingKeys   []replKey
	acked         int

	// cache maps record body hash → body for pending and committed keys.
	cache map[string][]byte

	// last committed generation, assembled into checkpoint bytes.
	gen     uint64
	nextID  uint64
	keys    []replKey
	data    []byte
	records int

	promoted bool
}

func newReceiver(store *serve.Store) *receiver {
	return &receiver{store: store, feeds: make(map[string]*replicaFeed)}
}

// feed returns the feed for source, creating it on first touch. The
// caller must hold rc.mu.
func (rc *receiver) lockedFeed(source string) *replicaFeed {
	f := rc.feeds[source]
	if f == nil {
		f = &replicaFeed{cache: make(map[string][]byte)}
		rc.feeds[source] = f
	}
	return f
}

// maxReplicaBody bounds one replication request; a single record is one
// slab column group or one session, far below this.
const maxReplicaBody = 64 << 20

// decodeReplica decodes a bounded replication request body.
func decodeReplica(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err := dec.Decode(v); err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", "body: "+err.Error())
		return false
	}
	return true
}

// handleBegin opens a generation: the sender declares the full manifest,
// the replica answers with the keys whose bodies it does not hold.
func (rc *receiver) handleBegin(w http.ResponseWriter, r *http.Request) {
	var req replBeginRequest
	if !decodeReplica(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeClusterError(w, http.StatusBadRequest, "bad_request", "begin without a source")
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f := rc.lockedFeed(req.Source)
	if req.Gen <= f.gen {
		writeClusterError(w, http.StatusConflict, "stale_generation",
			fmt.Sprintf("generation %d already committed (at %d)", req.Gen, f.gen))
		return
	}
	// A new begin replaces any unfinished pending generation — the sender
	// runs one round at a time, so an orphaned pending gen means its
	// round died; coalescing to the newest manifest is exactly right.
	f.pendingGen, f.pendingNextID, f.pendingKeys, f.acked = req.Gen, req.NextID, req.Keys, -1
	var need []string
	for _, k := range req.Keys {
		if _, ok := f.cache[k.Hash]; !ok {
			need = append(need, k.Key)
		}
	}
	if need == nil {
		need = []string{}
	}
	writeClusterJSON(w, http.StatusOK, replBeginResponse{Need: need})
}

// handlePut stores one record body, acknowledging its offset. The body
// must hash to the declared value — transport corruption dies here, at
// the boundary, not inside a later restore.
func (rc *receiver) handlePut(w http.ResponseWriter, r *http.Request) {
	var req replPutRequest
	if !decodeReplica(w, r, &req) {
		return
	}
	if recordHash(req.Body) != req.Hash {
		writeClusterError(w, http.StatusBadRequest, "hash_mismatch",
			fmt.Sprintf("record %s: body does not hash to %s", req.Key, req.Hash))
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f := rc.lockedFeed(req.Source)
	if req.Gen != f.pendingGen {
		writeClusterError(w, http.StatusConflict, "stale_generation",
			fmt.Sprintf("put for generation %d but %d is pending", req.Gen, f.pendingGen))
		return
	}
	f.cache[req.Hash] = req.Body
	if req.Seq > f.acked {
		f.acked = req.Seq
	}
	writeClusterJSON(w, http.StatusOK, replPutResponse{Acked: req.Seq})
}

// handleCommit seals a generation: every manifest key must have its body
// cached; the records assemble into the exact checkpoint byte stream the
// source's own Checkpoint() would have produced, which becomes the
// feed's promotable state. The cache then prunes to the committed
// manifest (the bounded-buffering invariant).
func (rc *receiver) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req replCommitRequest
	if !decodeReplica(w, r, &req) {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f := rc.lockedFeed(req.Source)
	if req.Gen != f.pendingGen {
		writeClusterError(w, http.StatusConflict, "stale_generation",
			fmt.Sprintf("commit for generation %d but %d is pending", req.Gen, f.pendingGen))
		return
	}
	recs := make([]serve.CheckpointRecord, 0, len(f.pendingKeys))
	for _, k := range f.pendingKeys {
		body, ok := f.cache[k.Hash]
		if !ok {
			writeClusterError(w, http.StatusConflict, "missing_record",
				fmt.Sprintf("commit of generation %d: record %s was never put", req.Gen, k.Key))
			return
		}
		recs = append(recs, serve.CheckpointRecord{Key: k.Key, Body: body})
	}
	data, err := serve.AssembleCheckpoint(f.pendingNextID, recs)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_checkpoint", err.Error())
		return
	}
	f.gen, f.nextID, f.keys, f.data, f.records = f.pendingGen, f.pendingNextID, f.pendingKeys, data, len(recs)
	f.pendingGen, f.pendingNextID, f.pendingKeys, f.acked = 0, 0, nil, -1
	next := make(map[string][]byte, len(f.keys))
	for _, k := range f.keys {
		next[k.Hash] = f.cache[k.Hash]
	}
	f.cache = next
	writeClusterJSON(w, http.StatusOK, replCommitResponse{Gen: f.gen, Records: f.records, Bytes: len(data)})
}

// handlePromote merges a dead source's last committed checkpoint into
// this node's live store. Idempotent: the router may retry a promote
// that raced a timeout, and the second call reports promoted=true with
// zero newly restored sessions. Promotion with no committed generation
// succeeds empty — the session-recreate path in the clients then heals
// the stream from scratch, deterministically.
func (rc *receiver) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req promoteRequest
	if !decodeReplica(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeClusterError(w, http.StatusBadRequest, "bad_request", "promote without a source")
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	f := rc.lockedFeed(req.Source)
	resp := promoteResponse{Source: req.Source, Gen: f.gen, Promoted: true}
	if f.promoted || f.data == nil {
		f.promoted = true
		writeClusterJSON(w, http.StatusOK, resp)
		return
	}
	before := rc.store.Len()
	if err := rc.store.RestoreSessions(f.data); err != nil {
		writeClusterError(w, http.StatusInternalServerError, "restore_failed",
			fmt.Sprintf("promote %s generation %d: %v", req.Source, f.gen, err))
		return
	}
	f.promoted = true
	resp.Sessions = rc.store.Len() - before
	writeClusterJSON(w, http.StatusOK, resp)
}

// handleStatus reports every feed this replica holds.
func (rc *receiver) handleStatus(w http.ResponseWriter, _ *http.Request) {
	rc.mu.Lock()
	out := make([]ReplStatus, 0, len(rc.feeds))
	for source, f := range rc.feeds {
		out = append(out, ReplStatus{
			Source: source, Gen: f.gen, Records: f.records,
			Bytes: len(f.data), Promoted: f.promoted,
		})
	}
	rc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	writeClusterJSON(w, http.StatusOK, struct {
		Feeds []ReplStatus `json:"feeds"`
	}{Feeds: out})
}

// writeClusterJSON / writeClusterError mirror the serve package's wire
// envelope so cluster endpoints and node endpoints read the same.
func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		fmt.Fprint(w, `{"error":{"code":"internal","message":"encode failure"}}`)
		return
	}
	w.Write(append(data, '\n'))
}

func writeClusterError(w http.ResponseWriter, status int, code, msg string) {
	writeClusterJSON(w, status, struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}{Error: struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{Code: code, Message: msg}})
}
