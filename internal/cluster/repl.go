package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"microbandit/internal/serve"
)

// Checkpoint replication: each node decomposes its store into checkpoint
// records (serve.CheckpointRecords — slab column groups plus per-session
// fallbacks), hashes every record body, and ships only the records its
// replica has not acknowledged. One replication round is a generation:
//
//	POST /v1/replica/begin  {source, gen, next_id, keys:[{key,hash}]} → {need:[key]}
//	POST /v1/replica/put    {source, gen, seq, key, hash, body}       → {acked:seq}
//	POST /v1/replica/commit {source, gen}                             → {gen, records, bytes}
//
// The receiver caches bodies by content hash, so a slab group that saw
// no traffic between rounds costs one manifest line, not a re-upload.
// Offsets are acknowledged per record (put returns the sequence number
// it durably cached); the sender verifies each ack before shipping the
// next record, which is also the backpressure: a slow replica stalls the
// sender inside Sync, and since Sync holds the replicator lock, at most
// one generation is ever in flight — later rounds coalesce to whatever
// the store holds when they finally run.

// replKey names one record and the hash of its body.
type replKey struct {
	Key  string `json:"key"`
	Hash string `json:"hash"`
}

type replBeginRequest struct {
	Source string    `json:"source"`
	Gen    uint64    `json:"gen"`
	NextID uint64    `json:"next_id"`
	Keys   []replKey `json:"keys"`
}

type replBeginResponse struct {
	Need []string `json:"need"`
}

type replPutRequest struct {
	Source string          `json:"source"`
	Gen    uint64          `json:"gen"`
	Seq    int             `json:"seq"`
	Key    string          `json:"key"`
	Hash   string          `json:"hash"`
	Body   json.RawMessage `json:"body"`
}

type replPutResponse struct {
	Acked int `json:"acked"`
}

type replCommitRequest struct {
	Source string `json:"source"`
	Gen    uint64 `json:"gen"`
}

type replCommitResponse struct {
	Gen     uint64 `json:"gen"`
	Records int    `json:"records"`
	Bytes   int    `json:"bytes"`
}

type promoteRequest struct {
	Source string `json:"source"`
}

type promoteResponse struct {
	Source   string `json:"source"`
	Gen      uint64 `json:"gen"`
	Sessions int    `json:"sessions"`
	Promoted bool   `json:"promoted"`
}

// ReplStatus describes one replication feed, from either side.
type ReplStatus struct {
	Source   string `json:"source"`
	Gen      uint64 `json:"gen"`     // last committed generation
	Records  int    `json:"records"` // records in that generation
	Shipped  int    `json:"shipped"` // records actually transferred last round
	Bytes    int    `json:"bytes"`   // body bytes transferred last round
	Promoted bool   `json:"promoted,omitempty"`
	Err      string `json:"error,omitempty"`
}

// recordHash is the content hash record bodies are acknowledged under.
func recordHash(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Replicator streams one store's checkpoint record deltas to a replica
// endpoint. Safe for concurrent use; rounds serialize on an internal
// lock (deliberately — see the backpressure note above).
type Replicator struct {
	store  *serve.Store
	source string
	target Endpoint
	every  time.Duration

	mu     sync.Mutex
	gen    uint64
	status ReplStatus
}

// DefaultReplicateEvery is the replication cadence when none is given.
const DefaultReplicateEvery = 250 * time.Millisecond

// NewReplicator builds a replicator shipping store's checkpoints to
// target under the given source name (every <= 0 selects
// DefaultReplicateEvery).
func NewReplicator(store *serve.Store, source string, target Endpoint, every time.Duration) *Replicator {
	if every <= 0 {
		every = DefaultReplicateEvery
	}
	return &Replicator{
		store:  store,
		source: source,
		target: target,
		every:  every,
		status: ReplStatus{Source: source},
	}
}

// Status returns a snapshot of the replicator's progress.
func (r *Replicator) Status() ReplStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Sync runs one full replication round: capture, diff, ship, commit.
// On success the replica holds a committed checkpoint generation it can
// be promoted from.
func (r *Replicator) Sync(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.syncLocked(ctx)
	if err != nil {
		r.status.Err = err.Error()
	} else {
		r.status.Err = ""
	}
	return err
}

func (r *Replicator) syncLocked(ctx context.Context) error {
	nextID, recs, err := r.store.CheckpointRecords()
	if err != nil {
		return fmt.Errorf("cluster: capture checkpoint: %w", err)
	}
	gen := r.gen + 1
	keys := make([]replKey, len(recs))
	for i, rec := range recs {
		keys[i] = replKey{Key: rec.Key, Hash: recordHash(rec.Body)}
	}

	var need replBeginResponse
	err = r.call(ctx, "/v1/replica/begin",
		replBeginRequest{Source: r.source, Gen: gen, NextID: nextID, Keys: keys}, &need)
	if err != nil {
		return fmt.Errorf("cluster: replicate begin gen %d: %w", gen, err)
	}
	needSet := make(map[string]bool, len(need.Need))
	for _, k := range need.Need {
		needSet[k] = true
	}

	shipped, bytes := 0, 0
	seq := 0
	for i, rec := range recs {
		if !needSet[rec.Key] {
			continue
		}
		var ack replPutResponse
		err = r.call(ctx, "/v1/replica/put", replPutRequest{
			Source: r.source, Gen: gen, Seq: seq,
			Key: rec.Key, Hash: keys[i].Hash, Body: rec.Body,
		}, &ack)
		if err != nil {
			return fmt.Errorf("cluster: replicate put %s (gen %d, seq %d): %w", rec.Key, gen, seq, err)
		}
		if ack.Acked != seq {
			return fmt.Errorf("cluster: replicate put %s: replica acked offset %d, want %d", rec.Key, ack.Acked, seq)
		}
		shipped++
		bytes += len(rec.Body)
		seq++
	}

	var done replCommitResponse
	err = r.call(ctx, "/v1/replica/commit", replCommitRequest{Source: r.source, Gen: gen}, &done)
	if err != nil {
		return fmt.Errorf("cluster: replicate commit gen %d: %w", gen, err)
	}
	r.gen = gen
	r.status.Gen = gen
	r.status.Records = len(recs)
	r.status.Shipped = shipped
	r.status.Bytes = bytes
	return nil
}

// call performs one JSON POST against the replica and decodes the reply.
func (r *Replicator) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	status, _, data, err := r.target.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("replica %s answered %d: %s", r.target.Name, status, truncate(data, 200))
	}
	return json.Unmarshal(data, resp)
}

// Run replicates on a ticker until ctx ends. Failed rounds retry with
// jittered exponential backoff (a partitioned replica must not be
// hammered at full cadence); a successful round resets the backoff.
func (r *Replicator) Run(ctx context.Context) {
	attempt := 0
	seed := fnv64str(r.source)
	for n := uint64(0); ; n++ {
		delay := r.every
		if attempt > 0 {
			delay = jitteredBackoff(r.every, 8*r.every, attempt-1, splitmix(seed+n))
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		if err := r.Sync(ctx); err != nil {
			if attempt < 6 {
				attempt++
			}
			continue
		}
		attempt = 0
	}
}

// truncate bounds an error payload echoed into an error string.
func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
