package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"microbandit/internal/serve"
	"microbandit/internal/serve/loadgen"
)

// BenchConfig configures RunBench, the in-process cluster benchmark
// behind `mab-report -clusterbench`.
type BenchConfig struct {
	// Nodes is the ring size (<= 0 selects 3).
	Nodes int
	// Workers is the closed-loop worker count per measured phase
	// (<= 0 selects 8).
	Workers int
	// Batch is sessions per worker driven through one /v1/batch request
	// per round (<= 0 selects 16).
	Batch int
	// Duration bounds each measured phase (<= 0 selects 2s).
	Duration time.Duration
	// Seed diversifies the session specs.
	Seed uint64
}

func (c *BenchConfig) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FailoverBench is the chaos phase's measurement: a routed load run that
// loses one node mid-window and finishes anyway.
type FailoverBench struct {
	// Victim is the killed node's name.
	Victim string `json:"victim"`
	// RecoveryMS is detection → promoted, from the router's own clock.
	RecoveryMS float64 `json:"recovery_ms"`
	Failovers  int     `json:"failovers"`
	// Run is the full load measurement across the kill. Its Errors count
	// must be zero for the failover to count as clean; Retries and
	// Resyncs record what the recovery cost the clients.
	Run *loadgen.Result `json:"run"`
}

// BenchReport is the BENCH_cluster.json schema: the same load offered
// three ways — straight at the nodes (the ring's aggregate capacity),
// through the router (the forwarding tax), and through the router while
// one node dies (the failover tax).
type BenchReport struct {
	Nodes     int     `json:"nodes"`
	Workers   int     `json:"workers"`
	Batch     int     `json:"batch"`
	DurationS float64 `json:"duration_s"`
	// Direct drives every node in parallel with no router in the path;
	// its PerTarget entries are the per-node latency histograms.
	Direct *loadgen.Result `json:"direct"`
	// Routed offers the same load through the router's single surface.
	Routed *loadgen.Result `json:"routed"`
	// RouterOverhead is Direct over Routed decisions/sec (1.0 = free).
	RouterOverhead float64 `json:"router_overhead"`
	// Failover is the chaos phase.
	Failover FailoverBench `json:"failover"`
}

// benchRing is an in-process ring + router, the benchmark's twin of the
// chaos test fixture: real cluster code on every hop, no sockets.
type benchRing struct {
	names  []string
	nodes  []*Node
	kills  []*KillSwitch
	router *Router
}

func newBenchRing(n, failAfter int) *benchRing {
	b := &benchRing{}
	lazies := make([]*lazyReplicaHandler, n)
	for i := range lazies {
		lazies[i] = &lazyReplicaHandler{}
	}
	for i := 0; i < n; i++ {
		b.names = append(b.names, fmt.Sprintf("node-%d", i))
	}
	for i, name := range b.names {
		next := (i + 1) % n
		b.nodes = append(b.nodes, NewNode(NodeConfig{
			Name:    name,
			Replica: Endpoint{Name: b.names[next], Client: handlerDoer{h: lazies[next]}},
		}))
	}
	for i := range lazies {
		lazies[i].h = b.nodes[i]
	}
	rns := make([]RouterNode, n)
	for i, name := range b.names {
		b.kills = append(b.kills, NewKillSwitch(handlerDoer{h: b.nodes[i]}))
		rns[i] = RouterNode{Name: name, Endpoint: Endpoint{Name: name, Client: b.kills[i]}}
	}
	b.router = NewRouter(RouterConfig{
		Nodes:     rns,
		FailAfter: failAfter,
		MaxTries:  4,
		RetryBase: 100 * time.Microsecond,
		RetryMax:  5 * time.Millisecond,
	})
	return b
}

// lazyReplicaHandler breaks the replica-chain construction cycle (node i
// ships to node i+1, which does not exist yet when node i is built).
type lazyReplicaHandler struct{ h http.Handler }

func (l *lazyReplicaHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.h.ServeHTTP(w, r)
}

// RunBench measures the cluster three ways and returns the report. Every
// phase gets a fresh ring, so learned bandit state never leaks between
// measurements.
func RunBench(ctx context.Context, cfg BenchConfig) (*BenchReport, error) {
	cfg.normalize()
	rep := &BenchReport{
		Nodes:     cfg.Nodes,
		Workers:   cfg.Workers,
		Batch:     cfg.Batch,
		DurationS: cfg.Duration.Seconds(),
	}
	spec := serve.Spec{Algo: "ducb", Arms: 8, Seed: cfg.Seed}

	// Phase 1: direct. Workers spread round-robin across the nodes with
	// no router in the path; per-node histograms land in PerTarget.
	{
		ring := newBenchRing(cfg.Nodes, 2)
		targets := make([]loadgen.Target, cfg.Nodes)
		for i, n := range ring.nodes {
			targets[i] = loadgen.Target{Name: ring.names[i], Handler: n}
		}
		res, err := loadgen.Run(ctx, loadgen.Options{
			Targets:  targets,
			Workers:  cfg.Workers,
			Duration: cfg.Duration,
			Batch:    cfg.Batch,
			Spec:     spec,
		})
		if err != nil {
			return nil, fmt.Errorf("direct phase: %w", err)
		}
		rep.Direct = res
	}

	// Phase 2: routed. The identical load through the router's single
	// surface; sessions are router-minted, so the ring spreads them.
	{
		ring := newBenchRing(cfg.Nodes, 2)
		res, err := loadgen.Run(ctx, loadgen.Options{
			Targets:  []loadgen.Target{{Name: "router", Handler: ring.router}},
			Workers:  cfg.Workers,
			Duration: cfg.Duration,
			Batch:    cfg.Batch,
			Spec:     spec,
		})
		if err != nil {
			return nil, fmt.Errorf("routed phase: %w", err)
		}
		rep.Routed = res
		if res.DecisionsPerSec > 0 {
			rep.RouterOverhead = rep.Direct.DecisionsPerSec / res.DecisionsPerSec
		}
	}

	// Phase 3: failover. Routed load again, but halfway through the
	// measured window one node's transport is severed — after its
	// replicator shipped a checkpoint, as the steady replication cadence
	// would have. The router promotes, the workers resync, the run
	// finishes, and a non-zero Errors count disqualifies the result.
	{
		ring := newBenchRing(cfg.Nodes, 2)
		victim := 0
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.Duration / 20)
			defer t.Stop()
			killAt := time.Now().Add(cfg.Duration/2 + cfg.Duration/10) // past the warmup
			for {
				select {
				case <-runCtx.Done():
					return
				case now := <-t.C:
					// Kill before this tick's sync: the promoted checkpoint
					// is then a full replication period stale, so the
					// failover heals real rewound state, not a freshly
					// shipped copy.
					if !ring.kills[victim].Killed() && now.After(killAt) {
						ring.kills[victim].Kill()
					}
					for i, n := range ring.nodes {
						if ring.kills[i].Killed() {
							continue
						}
						_ = n.Replicator().Sync(runCtx)
					}
				}
			}
		}()
		res, err := loadgen.Run(ctx, loadgen.Options{
			Targets:  []loadgen.Target{{Name: "router", Handler: ring.router}},
			Workers:  cfg.Workers,
			Duration: cfg.Duration,
			Batch:    cfg.Batch,
			Spec:     spec,
		})
		cancel()
		wg.Wait()
		if err != nil {
			return nil, fmt.Errorf("failover phase: %w", err)
		}
		if !ring.kills[victim].Killed() {
			return nil, fmt.Errorf("failover phase: the run ended before the kill landed (duration %v too short)", cfg.Duration)
		}
		st := ring.router.Stats().Nodes[victim]
		if !st.FailedOver {
			return nil, fmt.Errorf("failover phase: node %s was killed but never failed over: %+v", st.Name, st)
		}
		if res.Errors != 0 {
			return nil, fmt.Errorf("failover phase: %d client errors across the kill (want 0)", res.Errors)
		}
		rep.Failover = FailoverBench{
			Victim:     st.Name,
			RecoveryMS: st.RecoveryMS,
			Failovers:  st.Failovers,
			Run:        res,
		}
	}
	return rep, nil
}
