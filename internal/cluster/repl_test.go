package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"microbandit/internal/serve"
)

// doReq drives one request through an in-process handler.
func doReq(h http.Handler, method, path, body string) (int, http.Header, []byte) {
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code, rw.Result().Header, rw.Body.Bytes()
}

// driveSession creates a session on a node and runs n decisions on it.
func driveSession(t *testing.T, h http.Handler, id string, seed uint64, n int) {
	t.Helper()
	code, _, body := doReq(h, "PUT", "/v1/sessions/"+id,
		fmt.Sprintf(`{"algo":"ducb","arms":4,"seed":%d}`, seed))
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("create %s: %d %s", id, code, body)
	}
	stepSession(t, h, id, n)
}

// stepSession advances an existing session by n decisions.
func stepSession(t *testing.T, h http.Handler, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		code, _, body := doReq(h, "POST", "/v1/sessions/"+id+"/step", "")
		if code != http.StatusOK {
			t.Fatalf("step %s: %d %s", id, code, body)
		}
		var st struct {
			Seq uint64 `json:"seq"`
			Arm int    `json:"arm"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("step %s: %v", id, err)
		}
		code, _, body = doReq(h, "POST", "/v1/sessions/"+id+"/reward",
			fmt.Sprintf(`{"seq":%d,"reward":%g}`, st.Seq, chaosReward(st.Arm, st.Seq)))
		if code != http.StatusOK {
			t.Fatalf("reward %s: %d %s", id, code, body)
		}
	}
}

// twoNodeChain builds A → B: A ships its checkpoints to B's replica
// endpoints.
func twoNodeChain() (*Node, *Node) {
	b := NewNode(NodeConfig{Name: "b"})
	a := NewNode(NodeConfig{Name: "a", Replica: HandlerEndpoint("b", b)})
	return a, b
}

func TestReplicatorSyncAndDelta(t *testing.T) {
	a, b := twoNodeChain()
	driveSession(t, a, "s-one", 7, 20)
	driveSession(t, a, "s-two", 8, 20)

	ctx := context.Background()
	if err := a.Replicator().Sync(ctx); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	st := a.Replicator().Status()
	if st.Gen != 1 || st.Records == 0 || st.Shipped != st.Records {
		t.Fatalf("first sync should ship every record: %+v", st)
	}

	// No traffic between rounds: the manifest matches the replica's cache
	// and nothing re-ships.
	if err := a.Replicator().Sync(ctx); err != nil {
		t.Fatalf("idle sync: %v", err)
	}
	st = a.Replicator().Status()
	if st.Gen != 2 || st.Shipped != 0 {
		t.Fatalf("idle sync re-shipped %d records: %+v", st.Shipped, st)
	}

	// Traffic dirties the sessions' column group; the delta ships only
	// what changed.
	stepSession(t, a, "s-one", 5)
	if err := a.Replicator().Sync(ctx); err != nil {
		t.Fatalf("delta sync: %v", err)
	}
	st = a.Replicator().Status()
	if st.Shipped == 0 || st.Shipped > st.Records {
		t.Fatalf("delta sync shipped %d of %d records", st.Shipped, st.Records)
	}

	// The replica's own view agrees.
	code, _, body := doReq(b, "GET", "/v1/replica/status", "")
	if code != http.StatusOK {
		t.Fatalf("replica status: %d %s", code, body)
	}
	var rs struct {
		Feeds []ReplStatus `json:"feeds"`
	}
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if len(rs.Feeds) != 1 || rs.Feeds[0].Source != "a" || rs.Feeds[0].Gen != 3 {
		t.Fatalf("replica feeds: %+v", rs.Feeds)
	}
}

func TestReplicaRejectsHashMismatch(t *testing.T) {
	_, b := twoNodeChain()
	code, _, body := doReq(b, "POST", "/v1/replica/begin",
		`{"source":"a","gen":1,"next_id":1,"keys":[{"key":"s/x","hash":"deadbeef"}]}`)
	if code != http.StatusOK {
		t.Fatalf("begin: %d %s", code, body)
	}
	code, _, body = doReq(b, "POST", "/v1/replica/put",
		`{"source":"a","gen":1,"seq":0,"key":"s/x","hash":"deadbeef","body":{"k":1}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "hash_mismatch") {
		t.Fatalf("corrupt put answered %d %s, want 400 hash_mismatch", code, body)
	}
}

func TestReplicaRejectsStaleGeneration(t *testing.T) {
	a, b := twoNodeChain()
	driveSession(t, a, "s-gen", 3, 5)
	if err := a.Replicator().Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Generation 1 is committed; re-beginning it must bounce.
	code, _, body := doReq(b, "POST", "/v1/replica/begin",
		`{"source":"a","gen":1,"next_id":1,"keys":[]}`)
	if code != http.StatusConflict || !strings.Contains(string(body), "stale_generation") {
		t.Fatalf("stale begin answered %d %s", code, body)
	}
}

func TestReplicaCommitRequiresEveryRecord(t *testing.T) {
	_, b := twoNodeChain()
	bodyJSON := `{"v":1}`
	code, _, resp := doReq(b, "POST", "/v1/replica/begin", fmt.Sprintf(
		`{"source":"a","gen":1,"next_id":1,"keys":[{"key":"s/x","hash":"%s"}]}`,
		recordHash([]byte(bodyJSON))))
	if code != http.StatusOK {
		t.Fatalf("begin: %d %s", code, resp)
	}
	code, _, resp = doReq(b, "POST", "/v1/replica/commit", `{"source":"a","gen":1}`)
	if code != http.StatusConflict || !strings.Contains(string(resp), "missing_record") {
		t.Fatalf("commit with a hole answered %d %s", code, resp)
	}
}

func TestPromoteMergesSessionsAndIsIdempotent(t *testing.T) {
	a, b := twoNodeChain()
	driveSession(t, a, "s-p1", 11, 15)
	driveSession(t, a, "s-p2", 12, 15)
	if err := a.Replicator().Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// B has its own local session that promotion must not disturb.
	driveSession(t, b, "s-local", 13, 5)

	code, _, body := doReq(b, "POST", "/v1/replica/promote", `{"source":"a"}`)
	if code != http.StatusOK {
		t.Fatalf("promote: %d %s", code, body)
	}
	var pr promoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Sessions != 2 {
		t.Fatalf("promote merged %d sessions (promoted=%v), want 2", pr.Sessions, pr.Promoted)
	}
	if got := b.Server().Store().Len(); got != 3 {
		t.Fatalf("store holds %d sessions after promote, want 3", got)
	}
	// A promoted session answers the protocol at its checkpointed state.
	code, _, body = doReq(b, "GET", "/v1/sessions/s-p1", "")
	if code != http.StatusOK {
		t.Fatalf("promoted session unreachable: %d %s", code, body)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Seq != 15 || info.Open {
		t.Fatalf("promoted session state: %+v, want seq 15 closed", info)
	}

	// Retrying the promote (a router racing its own timeout) is a no-op.
	code, _, body = doReq(b, "POST", "/v1/replica/promote", `{"source":"a"}`)
	if code != http.StatusOK {
		t.Fatalf("re-promote: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Sessions != 0 {
		t.Fatalf("re-promote restored %d sessions, want 0", pr.Sessions)
	}
	if got := b.Server().Store().Len(); got != 3 {
		t.Fatalf("store holds %d sessions after re-promote, want 3", got)
	}
}

func TestPromoteWithNothingCommittedSucceedsEmpty(t *testing.T) {
	_, b := twoNodeChain()
	code, _, body := doReq(b, "POST", "/v1/replica/promote", `{"source":"a"}`)
	if code != http.StatusOK {
		t.Fatalf("empty promote: %d %s", code, body)
	}
	var pr promoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Sessions != 0 {
		t.Fatalf("empty promote: %+v", pr)
	}
}
