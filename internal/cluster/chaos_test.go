package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"microbandit/internal/serve"
)

// chaosReward mirrors the load generator's deterministic reward: a pure
// function of (arm, seq), which is what lets a replayed decision stream
// re-earn exactly the rewards the original did.
func chaosReward(arm int, seq uint64) float64 {
	return 0.3 + 0.4*float64(arm%4)/4 + 0.1*math.Sin(float64(seq)*0.05)
}

// chaosSession is one tracked session: the full arm-per-seq record the
// run has observed (the "byte-identical stream" being defended), the
// open decision awaiting its reward, and any recovery the last round
// called for.
type chaosSession struct {
	id   string
	spec string
	arms []int // arms[seq-1] — every decision ever observed at that seq

	// ctxAt, when non-nil, makes this a contextual session: each round's
	// step op carries the returned [phase, mpki, bw_util] vector. The
	// schedule must be constant from the last pre-kill checkpoint onward —
	// a decision replayed after failover re-runs with the ctx of its
	// replay round, so a schedule still changing in the replay window
	// would (correctly) diverge from the recorded stream.
	ctxAt func(round int) [3]float64

	pendHas  bool
	pendSeq  uint64
	pendArm  int
	needInfo bool
	needNew  bool
}

// chaosClient drives a set of sessions through /v1/batch exactly the way
// the load generator does — rewards for the previous round first, then a
// step per session — while asserting, at every single decision, that the
// server never contradicts the recorded stream.
type chaosClient struct {
	t        *testing.T
	h        http.Handler
	sessions []*chaosSession

	roundNo  int
	resyncs  int
	retries  int
	failures []string
}

func (c *chaosClient) fail(format string, args ...any) {
	c.failures = append(c.failures, fmt.Sprintf(format, args...))
}

// observe folds one decision the server reported (a step result, or an
// open decision read back during a resync) into the session's record.
// Decision seqs are zero-based: arms[k] is the arm decision k chose. A
// seq below the recorded length is a replay and must match the record
// exactly; the only legal extension is the very next seq.
func (c *chaosClient) observe(s *chaosSession, seq uint64, arm int) {
	n := uint64(len(s.arms))
	switch {
	case seq > n:
		c.fail("session %s: server skipped to seq %d with only %d recorded", s.id, seq, n)
		return
	case seq < n:
		if s.arms[seq] != arm {
			c.fail("session %s: replayed decision %d chose arm %d, original chose %d",
				s.id, seq, arm, s.arms[seq])
			return
		}
	default:
		s.arms = append(s.arms, arm)
	}
	s.pendHas, s.pendSeq, s.pendArm = true, seq, arm
}

// round advances every session by one decision: one batch request
// carrying last round's rewards and this round's steps.
func (c *chaosClient) round() {
	c.roundNo++
	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	nRewards := 0
	var rewardOf []*chaosSession
	for _, s := range c.sessions {
		if !s.pendHas {
			continue
		}
		if nRewards > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":"%s","seq":%d,"reward":%g}`,
			s.id, s.pendSeq, chaosReward(s.pendArm, s.pendSeq))
		nRewards++
		rewardOf = append(rewardOf, s)
	}
	for i, s := range c.sessions {
		if nRewards > 0 || i > 0 {
			sb.WriteByte(',')
		}
		if s.ctxAt != nil {
			v := s.ctxAt(c.roundNo)
			fmt.Fprintf(&sb, `{"id":"%s","step":true,"ctx":[%g,%g,%g]}`, s.id, v[0], v[1], v[2])
		} else {
			fmt.Fprintf(&sb, `{"id":"%s","step":true}`, s.id)
		}
	}
	sb.WriteString(`]}`)

	var results []json.RawMessage
	for attempt := 0; ; attempt++ {
		code, _, body := doReq(c.h, "POST", "/v1/batch", sb.String())
		if code == http.StatusOK {
			var page struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(body, &page); err != nil {
				c.fail("batch response undecodable: %v", err)
				return
			}
			results = page.Results
			break
		}
		if code == http.StatusServiceUnavailable && attempt < 50 {
			// The sequence protocol makes re-sending the same body safe.
			c.retries++
			time.Sleep(time.Millisecond)
			continue
		}
		c.fail("batch answered %d: %s", code, body)
		return
	}
	if len(results) != nRewards+len(c.sessions) {
		c.fail("batch returned %d results for %d ops", len(results), nRewards+len(c.sessions))
		return
	}

	for ri, raw := range results {
		isReward := ri < nRewards
		var s *chaosSession
		if isReward {
			s = rewardOf[ri]
		} else {
			s = c.sessions[ri-nRewards]
		}
		if ec := resultErrCode(raw); ec != "" {
			c.classify(s, isReward, ec)
			continue
		}
		if isReward {
			s.pendHas = false
			continue
		}
		var st struct {
			Seq uint64 `json:"seq"`
			Arm int    `json:"arm"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			c.fail("session %s: step result %s: %v", s.id, raw, err)
			continue
		}
		c.observe(s, st.Seq, st.Arm)
	}
	c.resolve()
}

// classify sorts a per-op error into its recovery, mirroring what any
// correct cluster client must do. Anything outside this set is a
// protocol violation and fails the test.
func (c *chaosClient) classify(s *chaosSession, isReward bool, code string) {
	switch code {
	case serve.CodeStepOpen:
		s.needInfo = true
	case serve.CodeNoOpenStep, serve.CodeSeqMismatch:
		// A failover rewound the session past this reward; the open
		// decision (if any) is re-read by the step path.
		s.pendHas = false
		c.resyncs++
	case serve.CodeNotFound:
		s.needNew = true
	case serve.CodeUnavailable, serve.CodeDraining:
		c.retries++
	default:
		c.fail("session %s: op (reward=%v) answered unexpected code %q", s.id, isReward, code)
	}
}

// resolve runs the out-of-band recoveries a round called for, through
// the same router the ops travel.
func (c *chaosClient) resolve() {
	for _, s := range c.sessions {
		if s.needInfo {
			s.needInfo = false
			code, _, body := doReq(c.h, "GET", "/v1/sessions/"+s.id, "")
			switch code {
			case http.StatusOK:
				var info serve.SessionInfo
				if err := json.Unmarshal(body, &info); err != nil {
					c.fail("session %s: info undecodable: %v", s.id, err)
					continue
				}
				if info.Open {
					// The open decision the failover resurrected must agree
					// with the recorded stream.
					c.observe(s, info.Seq, info.Arm)
				} else {
					s.pendHas = false
				}
				c.resyncs++
			case http.StatusNotFound:
				s.needNew = true
			default:
				c.fail("session %s: resync info answered %d: %s", s.id, code, body)
			}
		}
		if s.needNew {
			s.needNew = false
			s.pendHas = false
			if err := createSessionAtNode(c.h, s.id, s.spec); err != nil {
				c.fail("session %s: recreate: %v", s.id, err)
				continue
			}
			c.resyncs++
		}
	}
}

// resultErrCode extracts the typed code from an error result element,
// empty for success results.
func resultErrCode(raw json.RawMessage) string {
	var eb struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &eb) != nil || eb.Error == nil {
		return ""
	}
	return eb.Error.Code
}

// TestChaosKillNodeMidLoadPreservesDecisionStreams is the failover
// acceptance test: a 3-node ring under batch load loses one node to a
// kill switch (kill -9 as the network sees it) mid-run. The router must
// promote the node's replica, and every in-flight session must continue
// its exact decision stream — asserted decision-by-decision inside the
// run, and again at the end against an uninterrupted control run of the
// identical schedule.
func TestChaosKillNodeMidLoadPreservesDecisionStreams(t *testing.T) {
	const (
		baseSessions = 8
		rounds       = 40
		killAfter    = 16 // between rounds 16 and 17
	)
	syncRounds := map[int]bool{5: true, 10: true, 15: true}

	run := func(kill bool) (*chaosClient, *ringFixture, int) {
		f := newRingFixture(2)
		c := &chaosClient{t: t, h: f.router}
		for i := 0; i < baseSessions; i++ {
			spec := fmt.Sprintf(`{"algo":"ducb","arms":4,"seed":%d}`, 1000+i)
			id := createViaRouter(t, f.router, spec)
			c.sessions = append(c.sessions, &chaosSession{id: id, spec: spec})
		}
		victim := f.router.ring.Owner(c.sessions[0].id)
		// Contextual sessions ride the same failover: their per-signature
		// tables ship in ctx-kind checkpoint records, and the restored
		// agent must continue the exact decision stream. Both are pinned
		// to the victim (deterministic id search, so the control run
		// builds the identical schedule). One runs a single non-zero
		// context; the other switches contexts early — before the first
		// sync round, so no replayed decision straddles the switch — and
		// carries a multi-context agent through the kill.
		pinToVictim := func(prefix string) string {
			for k := 0; ; k++ {
				id := fmt.Sprintf("%s-%d", prefix, k)
				if f.router.ring.Owner(id) == victim {
					return id
				}
			}
		}
		ctxSpec := `{"algo":"ctx-ducb","arms":4,"seed":3000,"max_contexts":8}`
		ctxID := pinToVictim("ctx-single")
		if err := createSessionAtNode(f.router, ctxID, ctxSpec); err != nil {
			t.Fatal(err)
		}
		c.sessions = append(c.sessions, &chaosSession{
			id: ctxID, spec: ctxSpec,
			ctxAt: func(int) [3]float64 { return [3]float64{1, 5, 0.6} },
		})
		ctxSpec2 := `{"algo":"ctx-thompson","arms":4,"seed":3001}`
		ctxID2 := pinToVictim("ctx-multi")
		if err := createSessionAtNode(f.router, ctxID2, ctxSpec2); err != nil {
			t.Fatal(err)
		}
		c.sessions = append(c.sessions, &chaosSession{
			id: ctxID2, spec: ctxSpec2,
			ctxAt: func(round int) [3]float64 {
				if round <= 3 {
					return [3]float64{2, 60, 0.9}
				}
				return [3]float64{7, 1, 0.3}
			},
		})
		syncAll := func() {
			for i, n := range f.nodes {
				if f.kills[i].Killed() {
					continue // dead processes do not replicate
				}
				if err := n.Replicator().Sync(context.Background()); err != nil {
					t.Fatalf("sync %s: %v", f.names[i], err)
				}
			}
		}
		for r := 1; r <= rounds; r++ {
			c.round()
			if syncRounds[r] {
				syncAll()
			}
			if r == 15 {
				// A session born after the last checkpoint the victim will
				// ever ship: failover cannot restore it, so the 404 →
				// recreate → deterministic-replay path must carry it.
				for {
					spec := fmt.Sprintf(`{"algo":"ducb","arms":4,"seed":%d}`, 2000+len(c.sessions))
					id := createViaRouter(t, f.router, spec)
					c.sessions = append(c.sessions, &chaosSession{id: id, spec: spec})
					if f.router.ring.Owner(id) == victim {
						break
					}
				}
			}
			if kill && r == killAfter {
				f.kills[victim].Kill()
			}
		}
		return c, f, victim
	}

	chaos, cf, victim := run(true)
	control, _, _ := run(false)

	for _, c := range []*chaosClient{control, chaos} {
		if len(c.failures) > 0 {
			t.Fatalf("protocol violations:\n  %s", strings.Join(c.failures, "\n  "))
		}
	}
	st := cf.router.Stats().Nodes[victim]
	if !st.FailedOver || st.Failovers < 1 {
		t.Fatalf("the kill never triggered a failover: %+v", st)
	}
	if st.RecoveryMS <= 0 {
		t.Fatalf("failover recorded no recovery time: %+v", st)
	}
	if chaos.resyncs == 0 {
		t.Fatal("no session was ever rewound — the kill landed after the interesting window")
	}
	if len(chaos.sessions) != len(control.sessions) {
		t.Fatalf("runs tracked %d vs %d sessions", len(chaos.sessions), len(control.sessions))
	}
	for i, cs := range chaos.sessions {
		ctrl := control.sessions[i]
		if cs.id != ctrl.id {
			t.Fatalf("session %d: ids diverged (%s vs %s) — the runs were not identical schedules", i, cs.id, ctrl.id)
		}
		n := len(cs.arms)
		if len(ctrl.arms) < n {
			n = len(ctrl.arms)
		}
		// The chaos run may trail the control by the few decisions its
		// rewind replayed, but every session must keep making progress
		// after the kill — a stall means failover lost it.
		if len(cs.arms) < len(ctrl.arms)-5 {
			t.Fatalf("session %s stalled at %d decisions (control made %d; kill was at round %d)",
				cs.id, len(cs.arms), len(ctrl.arms), killAfter)
		}
		// ...and every decision both runs made must be identical.
		for k := 0; k < n; k++ {
			if cs.arms[k] != ctrl.arms[k] {
				t.Fatalf("session %s: decision %d diverged across the kill: arm %d, control %d",
					cs.id, k+1, cs.arms[k], ctrl.arms[k])
			}
		}
	}

	// The contextual sessions rode the failover on the victim node; the
	// multi-context agent must still hold both signatures' tables after
	// its ctx-kind checkpoint record was restored on the replica.
	var ctxMulti *chaosSession
	for _, s := range chaos.sessions {
		if s.ctxAt != nil {
			ctxMulti = s // the multi-context session is the last contextual one
		}
	}
	code, _, body := doReq(cf.router, "GET", "/v1/sessions/"+ctxMulti.id, "")
	if code != http.StatusOK {
		t.Fatalf("contextual session %s after failover: %d %s", ctxMulti.id, code, body)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Contexts < 2 {
		t.Fatalf("multi-context session %s reports %d contexts after failover, want >= 2", ctxMulti.id, info.Contexts)
	}
}
