package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Doer abstracts the one http.Client method the cluster layer uses, so
// the same router and replicator code runs over real TCP (an
// *http.Client), over in-process handlers (HandlerEndpoint — how the
// chaos test boots a 3-node ring inside one race-detected process), and
// through a KillSwitch that severs a node mid-request.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Endpoint is one reachable HTTP surface: a node, or a node's replica.
type Endpoint struct {
	// Name labels the endpoint in errors and status reports.
	Name string
	// Base is the URL prefix ("http://127.0.0.1:8081"). Empty selects a
	// placeholder host — in-process Doers route on the path alone.
	Base string
	// Client performs the requests. A nil Client marks the zero Endpoint.
	Client Doer
}

// maxRespBytes bounds a response read; checkpoint commit responses are
// small, and the router re-bounds forwarded bodies itself.
const maxRespBytes = 64 << 20

// do performs one JSON request against the endpoint and reads the whole
// response. A transport error (connection refused, severed kill switch)
// comes back as err; HTTP-level failures come back as the status code.
func (e Endpoint) do(ctx context.Context, method, path string, body []byte) (status int, hdr http.Header, resp []byte, err error) {
	base := e.Base
	if base == "" {
		base = "http://" + placeholderHost
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := e.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, maxRespBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	return res.StatusCode, res.Header, data, nil
}

// placeholderHost satisfies net/url for base-less endpoints.
const placeholderHost = "node.invalid"

// HandlerEndpoint wires an in-process http.Handler as an Endpoint. The
// cluster tests and the in-process benchmark build whole rings this way:
// same router code, no sockets, race detector across every hop.
func HandlerEndpoint(name string, h http.Handler) Endpoint {
	return Endpoint{Name: name, Client: handlerDoer{h: h}}
}

// handlerDoer serves each request directly through an http.Handler,
// buffering the response in memory.
type handlerDoer struct {
	h http.Handler
}

// Do implements Doer.
func (d handlerDoer) Do(req *http.Request) (*http.Response, error) {
	rw := &memResponse{hdr: make(http.Header), code: http.StatusOK}
	d.h.ServeHTTP(rw, req)
	return &http.Response{
		StatusCode: rw.code,
		Header:     rw.hdr,
		Body:       io.NopCloser(bytes.NewReader(rw.buf.Bytes())),
		Request:    req,
	}, nil
}

// memResponse is a minimal in-memory http.ResponseWriter.
type memResponse struct {
	hdr   http.Header
	buf   bytes.Buffer
	code  int
	wrote bool
}

func (m *memResponse) Header() http.Header { return m.hdr }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.code, m.wrote = code, true
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	if !m.wrote {
		m.WriteHeader(http.StatusOK)
	}
	return m.buf.Write(p)
}

// KillSwitch interposes on a Doer and can sever it instantly — kill -9
// as seen from the network: every request after Kill fails with a
// connection error, with no drain, no final response, no flush. The
// chaos test arms one of these in front of a node and pulls it mid-load.
type KillSwitch struct {
	inner Doer
	dead  atomic.Bool
}

// NewKillSwitch wraps inner.
func NewKillSwitch(inner Doer) *KillSwitch { return &KillSwitch{inner: inner} }

// Kill severs the transport. It cannot be undone — processes do not
// un-die; a revived node is a new process behind a new Doer.
func (k *KillSwitch) Kill() { k.dead.Store(true) }

// Killed reports whether the switch has been pulled.
func (k *KillSwitch) Killed() bool { return k.dead.Load() }

// Do implements Doer.
func (k *KillSwitch) Do(req *http.Request) (*http.Response, error) {
	if k.dead.Load() {
		return nil, fmt.Errorf("cluster: dial %s: connection refused (node killed)", req.URL.Host)
	}
	return k.inner.Do(req)
}

// splitmix advances the SplitMix64 hash; the router derives retry jitter
// from it (an atomic counter in, a well-mixed word out) without sharing
// a locked RNG across request goroutines.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitteredBackoff returns the retry delay for the given attempt:
// base·2^attempt stretched by a jitter factor in [0.5, 1.5), capped.
// Jitter keeps a fleet of retrying clients from re-converging on the
// same instant — the thundering herd a 503 storm would otherwise seed.
func jitteredBackoff(base, max time.Duration, attempt int, u uint64) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	frac := 0.5 + float64(u>>11)/(1<<53) // [0.5, 1.5)
	d = time.Duration(float64(d) * frac)
	if d > max {
		d = max
	}
	return d
}
