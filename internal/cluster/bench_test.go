package cluster

import (
	"context"
	"testing"
	"time"
)

// TestRunBenchSmoke runs the full three-phase cluster benchmark on a
// short clock: all phases report throughput, the routed phase carries
// real numbers, and the failover phase survives its kill with zero
// client errors (RunBench enforces that itself and errors otherwise).
func TestRunBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke needs a few hundred ms of wall clock")
	}
	rep, err := RunBench(context.Background(), BenchConfig{
		Nodes:    3,
		Workers:  4,
		Batch:    4,
		Duration: 500 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if rep.Direct == nil || rep.Direct.DecisionsPerSec <= 0 {
		t.Fatalf("direct phase measured nothing: %+v", rep.Direct)
	}
	if len(rep.Direct.PerTarget) != 3 {
		t.Fatalf("direct phase has %d per-node entries, want 3", len(rep.Direct.PerTarget))
	}
	if rep.Routed == nil || rep.Routed.DecisionsPerSec <= 0 {
		t.Fatalf("routed phase measured nothing: %+v", rep.Routed)
	}
	if rep.Routed.Errors != 0 || rep.Direct.Errors != 0 {
		t.Fatalf("healthy phases reported errors: direct %d, routed %d", rep.Direct.Errors, rep.Routed.Errors)
	}
	if rep.RouterOverhead <= 0 {
		t.Fatalf("router overhead unreported: %v", rep.RouterOverhead)
	}
	f := rep.Failover
	if f.Victim == "" || f.Failovers < 1 || f.RecoveryMS <= 0 {
		t.Fatalf("failover phase incomplete: %+v", f)
	}
	if f.Run == nil || f.Run.Errors != 0 {
		t.Fatalf("failover run: %+v", f.Run)
	}
}
