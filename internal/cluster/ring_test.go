package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1 := NewRing(names, 0)
	r2 := NewRing(names, 0)
	if r1.Nodes() != 3 {
		t.Fatalf("Nodes() = %d", r1.Nodes())
	}
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("c-%08x", i)
		o1, o2 := r1.Owner(id), r2.Owner(id)
		if o1 != o2 {
			t.Fatalf("id %s: owners differ across identical rings (%d vs %d)", id, o1, o2)
		}
		if o1 < 0 || o1 >= 3 {
			t.Fatalf("id %s: owner %d out of range", id, o1)
		}
		if ob := r1.OwnerBytes([]byte(id)); ob != o1 {
			t.Fatalf("id %s: OwnerBytes %d != Owner %d", id, ob, o1)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	counts := make([]int, 3)
	const n = 30_000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sess-%d", i))]++
	}
	for node, c := range counts {
		// With 64 vnodes per node the split should be within a loose
		// factor of fair share; a broken hash collapses to one node.
		if c < n/6 || c > n/2 {
			t.Fatalf("node %d owns %d of %d ids — placement badly skewed: %v", node, c, n, counts)
		}
	}
}

func TestRingVNodesChangePlacementNotCoverage(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Owner(fmt.Sprintf("x%d", i))] = true
	}
	if len(seen) != 2 {
		t.Fatalf("with 2 nodes only %d received placements", len(seen))
	}
}
