package cluster

import (
	"context"
	"net/http"
	"time"

	"microbandit/internal/serve"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// Server configures the underlying bandit server.
	Server serve.Config
	// Name is this node's logical name; it labels the checkpoint stream
	// the node ships to its replica.
	Name string
	// Replica, when its Client is non-nil, is the endpoint this node
	// streams checkpoint deltas to (its ring successor's /v1/replica/*).
	Replica Endpoint
	// ReplicateEvery is the replication cadence (<= 0 selects
	// DefaultReplicateEvery).
	ReplicateEvery time.Duration
}

// Node is one member of the serving ring: a serve.Server plus the
// replica receiver endpoints (it holds its ring predecessor's
// checkpoints) and, when configured, a replicator shipping its own
// store to its successor.
type Node struct {
	server *serve.Server
	recv   *receiver
	repl   *Replicator
	mux    *http.ServeMux
}

// NewNode builds a node over cfg.
func NewNode(cfg NodeConfig) *Node {
	srv := serve.New(cfg.Server)
	n := &Node{
		server: srv,
		recv:   newReceiver(srv.Store()),
		mux:    http.NewServeMux(),
	}
	n.mux.HandleFunc("POST /v1/replica/begin", n.recv.handleBegin)
	n.mux.HandleFunc("POST /v1/replica/put", n.recv.handlePut)
	n.mux.HandleFunc("POST /v1/replica/commit", n.recv.handleCommit)
	n.mux.HandleFunc("POST /v1/replica/promote", n.recv.handlePromote)
	n.mux.HandleFunc("GET /v1/replica/status", n.recv.handleStatus)
	n.mux.Handle("/", srv)
	if cfg.Replica.Client != nil {
		n.repl = NewReplicator(srv.Store(), cfg.Name, cfg.Replica, cfg.ReplicateEvery)
	}
	return n
}

// ServeHTTP implements http.Handler: replication endpoints first, the
// bandit API (with its own panic recovery) for everything else.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// Server returns the underlying bandit server.
func (n *Node) Server() *serve.Server { return n.server }

// Replicator returns the node's checkpoint replicator, nil when the
// node was built without a replica target.
func (n *Node) Replicator() *Replicator { return n.repl }

// Run drives the node's background work (the replication loop) until
// ctx ends. A node without a replica target returns immediately.
func (n *Node) Run(ctx context.Context) {
	if n.repl != nil {
		n.repl.Run(ctx)
	}
}
