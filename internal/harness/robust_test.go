package harness

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"microbandit/internal/fault"
	"microbandit/internal/obs"
	"microbandit/internal/par"
)

// smokeRobust trims the determinism preset further: the robustness sweep
// multiplies apps by algorithms by sweep points, so the test uses one app
// per suite and a two-point sweep.
func smokeRobust() Options {
	o := smokeDeterminism()
	o.MaxApps = 1
	o.Insts = 100_000
	o.StepL2 = 100
	return o
}

// testSweep is the trimmed fault sweep the tests run.
func testSweep() []fault.Spec {
	return []fault.Spec{
		{Kind: fault.Noise, Intensity: 0.5, Seed: 1},
		{Kind: fault.StuckArm, Intensity: 0.5, Seed: 1},
	}
}

// TestRobustDeterministicAcrossWorkers is the tentpole determinism
// contract: the fault-injected sweep renders byte-identical text and CSV
// at Workers=1 and Workers=8.
func TestRobustDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := smokeRobust()
	serial.Workers = 1
	parallel := smokeRobust()
	parallel.Workers = 8

	rs := RobustWith(serial, testSweep())
	rp := RobustWith(parallel, testSweep())
	if rs.Render() != rp.Render() {
		t.Errorf("rendered output differs between Workers=1 and Workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
			rs.Render(), rp.Render())
	}
	if rs.CSV() != rp.CSV() {
		t.Errorf("CSV differs between Workers=1 and Workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
			rs.CSV(), rp.CSV())
	}
}

// TestRobustTelemetryDeterministicAcrossWorkers extends the determinism
// contract to the telemetry stream: with a Collector installed, the
// assembled JSONL bytes and both derived CSVs must be byte-identical at
// Workers=1 and Workers=8 (run under -race in CI; the Collector's slot
// table is the only shared structure).
func TestRobustTelemetryDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) (jsonl []byte, timeline, regret string) {
		o := smokeRobust()
		o.Workers = workers
		o.Obs = obs.NewCollector(50)
		RobustWith(o, testSweep())
		events := o.Obs.Events()
		if len(events) == 0 {
			t.Fatal("collector captured no events")
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, events); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes(), obs.TimelineCSV(events), obs.RegretCSV(events, 50)
	}
	j1, t1, r1 := run(1)
	j8, t8, r8 := run(8)
	if !bytes.Equal(j1, j8) {
		t.Errorf("JSONL stream differs between Workers=1 and Workers=8")
	}
	if t1 != t8 {
		t.Errorf("timeline.csv differs between Workers=1 and Workers=8")
	}
	if r1 != r8 {
		t.Errorf("regret.csv differs between Workers=1 and Workers=8")
	}
}

// TestRobustFaultsDegradeButSurvive checks the sweep produces full
// surviving-run counts and sane percentages for non-crashing faults.
func TestRobustFaultsDegradeButSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := RobustWith(smokeRobust(), testSweep())
	if len(r.Pct) != 2 || r.Apps == 0 {
		t.Fatalf("unexpected shape: %d rows, %d apps", len(r.Pct), r.Apps)
	}
	for ai, ipc := range r.CleanIPC {
		if !(ipc > 0) {
			t.Errorf("clean gmean IPC for %s is %v", r.Algos[ai], ipc)
		}
	}
	for si := range r.Pct {
		for ai := range r.Algos {
			if got := r.Survived[si][ai]; got != r.Apps {
				t.Errorf("%v/%s: %d of %d runs survived", r.Sweep[si], r.Algos[ai], got, r.Apps)
			}
			pct := r.Pct[si][ai]
			if math.IsNaN(pct) || pct <= 0 || pct > 400 {
				t.Errorf("%v/%s: implausible pct %v", r.Sweep[si], r.Algos[ai], pct)
			}
		}
	}
}

// TestRobustIntensityOneDefined is the GeoMean-guard regression test:
// at intensity 1.0 a stuck arm or collapsed DRAM bandwidth can drive a
// faulted run's IPC — and so its percent-of-clean ratio — to 0, and the
// robustness result must still report defined values everywhere: no
// NaN, no ±Inf, in either the struct or the rendered table/CSV.
func TestRobustIntensityOneDefined(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sweep := []fault.Spec{
		{Kind: fault.StuckArm, Intensity: 1, Seed: 1},
		{Kind: fault.BWCollapse, Intensity: 1, Seed: 1},
	}
	r := RobustWith(smokeRobust(), sweep)
	for si := range r.Pct {
		for ai := range r.Algos {
			pct := r.Pct[si][ai]
			if r.Survived[si][ai] == 0 {
				continue // empty cell is rendered as "-", which is fine
			}
			if math.IsNaN(pct) || math.IsInf(pct, 0) || pct < 0 {
				t.Errorf("%v/%s: undefined pct %v with %d survivors",
					r.Sweep[si], r.Algos[ai], pct, r.Survived[si][ai])
			}
		}
	}
	for _, out := range []string{r.Render(), r.CSV()} {
		for _, bad := range []string{"NaN", "Inf"} {
			if strings.Contains(out, bad) {
				t.Errorf("rendered output contains %s:\n%s", bad, out)
			}
		}
	}
}

// TestRobustPanicPartial is the graceful-degradation contract end to end:
// an injected-panic sweep point must yield a partial table plus collected
// job failures — never a crash.
func TestRobustPanicPartial(t *testing.T) {
	o := smokeRobust()
	o.Workers = 4
	o.Errs = NewErrorLog()
	sweep := []fault.Spec{{Kind: fault.Panic, Intensity: 1, Seed: 1}}
	r := RobustWith(o, sweep)

	// Every faulted run panicked: the panic row has no survivors and the
	// clean baseline is intact.
	for ai := range r.Algos {
		if r.Survived[0][ai] != 0 {
			t.Errorf("%s: %d panicking runs reported as survived", r.Algos[ai], r.Survived[0][ai])
		}
		if !(r.CleanIPC[ai] > 0) {
			t.Errorf("%s: clean baseline lost: %v", r.Algos[ai], r.CleanIPC[ai])
		}
	}
	text := r.Render()
	if !strings.Contains(text, "-") {
		t.Errorf("partial table lacks empty-cell markers:\n%s", text)
	}

	wantFails := len(r.Algos) * r.Apps
	if got := o.Errs.Len(); got != wantFails {
		t.Fatalf("collected %d failures, want %d", got, wantFails)
	}
	fails := o.Errs.Drain()
	for i, f := range fails {
		if f.Job < 0 {
			t.Errorf("failure %d has no job attribution: %v", i, f.Err)
		}
		var pe *par.PanicError
		if !errors.As(f.Err, &pe) {
			t.Errorf("failure %d is not a recovered panic: %v", i, f.Err)
		}
		if i > 0 && fails[i-1].Job > f.Job {
			t.Errorf("failures not sorted by job: %d after %d", f.Job, fails[i-1].Job)
		}
	}
	if o.Errs.Len() != 0 {
		t.Errorf("Drain did not clear the log")
	}
	appendix := RenderFailures(fails)
	if !strings.Contains(appendix, "results above are partial") {
		t.Errorf("appendix missing partial-results banner:\n%s", appendix)
	}
	if !strings.Contains(appendix, "injected panic") {
		t.Errorf("appendix missing original panic value:\n%s", appendix)
	}
}

// TestRunJobsPanicsWithoutLog: with no ErrorLog installed the engine
// re-panics with job attribution from the coordinating goroutine.
func TestRunJobsPanicsWithoutLog(t *testing.T) {
	o := Smoke()
	o.Workers = 2
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("runJobs swallowed the failure")
		}
		err, ok := v.(error)
		if !ok {
			t.Fatalf("recovered %T, want error", v)
		}
		var je *par.JobError
		if !errors.As(err, &je) || je.Index != 2 {
			t.Fatalf("recovered %v, want *JobError for job 2", err)
		}
	}()
	runJobs(o, []int{0, 1, 2, 3}, func(j int) int {
		if j == 2 {
			panic("kaboom")
		}
		return j
	})
}
