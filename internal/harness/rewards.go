package harness

import (
	"fmt"

	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
)

// RewardMetricsResult compares the Bandit under the three SMT reward
// metrics of §6.4 (sum IPC, average weighted IPC, harmonic mean of
// weighted IPC): what each optimizes for and what it costs elsewhere.
type RewardMetricsResult struct {
	Modes []string
	// Per mode: gmean over mixes of throughput (sum IPC), weighted
	// speedup, harmonic weighted speedup, and mean fairness.
	SumIPC, Weighted, Harmonic, Fairness []float64
}

// RewardMetrics runs the Bandit with each reward mode over the tune
// mixes.
func RewardMetrics(o Options) RewardMetricsResult {
	mixes := o.mixes(smtwork.TuneMixes())
	modes := []simsmt.RewardMode{
		simsmt.RewardSumIPC, simsmt.RewardWeightedIPC, simsmt.RewardHarmonicWeighted,
	}
	res := RewardMetricsResult{}
	soloCycles := o.SMTCycles / 4
	if soloCycles < 50_000 {
		soloCycles = 50_000
	}
	// Solo baselines are per profile, shared across modes.
	solo := map[string]float64{}
	soloOf := func(p smtwork.Profile) float64 {
		if v, ok := solo[p.Name]; ok {
			return v
		}
		v := simsmt.SoloIPC(p, o.subSeed("solo", p.Name), soloCycles)
		solo[p.Name] = v
		return v
	}

	for _, mode := range modes {
		var sum, wgt, har, fair []float64
		for _, mix := range mixes {
			seed := o.subSeed("reward", mix.Name(), mode.String())
			sim := simsmt.NewSim(mix.A, mix.B, seed)
			r := simsmt.NewRunner(sim, simsmt.NewBanditAgent(seed), simsmt.Table1Arms(), true)
			r.EpochLen = o.EpochLen
			r.RREpochs = o.RREpochs
			r.MainEpochs = o.MainEpochs
			r.Reward = mode
			r.Solo = [2]float64{soloOf(mix.A), soloOf(mix.B)}
			r.RunCycles(o.SMTCycles)
			m := simsmt.Evaluate(sim, r.Solo)
			if m.SumIPC <= 0 || m.Weighted <= 0 || m.Harmonic <= 0 {
				continue
			}
			sum = append(sum, m.SumIPC)
			wgt = append(wgt, m.Weighted)
			har = append(har, m.Harmonic)
			fair = append(fair, m.Fairness)
		}
		res.Modes = append(res.Modes, mode.String())
		res.SumIPC = append(res.SumIPC, stats.GeoMean(sum))
		res.Weighted = append(res.Weighted, stats.GeoMean(wgt))
		res.Harmonic = append(res.Harmonic, stats.GeoMean(har))
		res.Fairness = append(res.Fairness, stats.Mean(fair))
	}
	return res
}

// Render formats the reward-metric comparison.
func (r RewardMetricsResult) Render() string {
	t := stats.NewTable("Reward metrics (§6.4): Bandit optimizing different SMT objectives",
		"reward", "sum IPC", "weighted", "harmonic", "fairness")
	for i, m := range r.Modes {
		t.AddRow(m,
			fmt.Sprintf("%.3f", r.SumIPC[i]),
			fmt.Sprintf("%.3f", r.Weighted[i]),
			fmt.Sprintf("%.3f", r.Harmonic[i]),
			fmt.Sprintf("%.3f", r.Fairness[i]))
	}
	return t.Render()
}
