package harness

import (
	"fmt"

	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
)

// RewardMetricsResult compares the Bandit under the three SMT reward
// metrics of §6.4 (sum IPC, average weighted IPC, harmonic mean of
// weighted IPC): what each optimizes for and what it costs elsewhere.
type RewardMetricsResult struct {
	Modes []string
	// Per mode: gmean over mixes of throughput (sum IPC), weighted
	// speedup, harmonic weighted speedup, and mean fairness.
	SumIPC, Weighted, Harmonic, Fairness []float64
}

// RewardMetrics runs the Bandit with each reward mode over the tune
// mixes.
func RewardMetrics(o Options) RewardMetricsResult {
	mixes := o.mixes(smtwork.TuneMixes())
	modes := []simsmt.RewardMode{
		simsmt.RewardSumIPC, simsmt.RewardWeightedIPC, simsmt.RewardHarmonicWeighted,
	}
	res := RewardMetricsResult{}
	soloCycles := o.SMTCycles / 4
	if soloCycles < 50_000 {
		soloCycles = 50_000
	}
	// Phase 1: solo baselines, one per unique profile (first-seen order),
	// shared read-only across modes.
	var profiles []smtwork.Profile
	seen := map[string]bool{}
	for _, mix := range mixes {
		for _, p := range []smtwork.Profile{mix.A, mix.B} {
			if !seen[p.Name] {
				seen[p.Name] = true
				profiles = append(profiles, p)
			}
		}
	}
	soloIPCs := runJobs(o, profiles, func(p smtwork.Profile) float64 {
		return simsmt.SoloIPC(p, o.subSeed("solo", p.Name), soloCycles)
	})
	solo := make(map[string]float64, len(profiles))
	for pi, p := range profiles {
		solo[p.Name] = soloIPCs[pi]
	}

	// Phase 2: one job per (mode, mix).
	type job struct{ modeIdx, mixIdx int }
	jobs := make([]job, 0, len(modes)*len(mixes))
	for di := range modes {
		for mi := range mixes {
			jobs = append(jobs, job{di, mi})
		}
	}
	metrics := runJobs(o, jobs, func(j job) simsmt.WeightedMetrics {
		mode := modes[j.modeIdx]
		mix := mixes[j.mixIdx]
		seed := o.subSeed("reward", mix.Name(), mode.String())
		sim := simsmt.NewSim(mix.A, mix.B, seed)
		r := simsmt.NewRunner(sim, simsmt.NewBanditAgent(seed), simsmt.Table1Arms(), true)
		r.EpochLen = o.EpochLen
		r.RREpochs = o.RREpochs
		r.MainEpochs = o.MainEpochs
		r.Reward = mode
		r.Solo = [2]float64{solo[mix.A.Name], solo[mix.B.Name]}
		o.simCycles(r)
		return simsmt.Evaluate(sim, r.Solo)
	})

	for di, mode := range modes {
		sum := make([]float64, 0, len(mixes))
		wgt := make([]float64, 0, len(mixes))
		har := make([]float64, 0, len(mixes))
		fair := make([]float64, 0, len(mixes))
		for _, m := range metrics[di*len(mixes) : (di+1)*len(mixes)] {
			if m.SumIPC <= 0 || m.Weighted <= 0 || m.Harmonic <= 0 {
				continue
			}
			sum = append(sum, m.SumIPC)
			wgt = append(wgt, m.Weighted)
			har = append(har, m.Harmonic)
			fair = append(fair, m.Fairness)
		}
		res.Modes = append(res.Modes, mode.String())
		res.SumIPC = append(res.SumIPC, stats.GeoMean(sum))
		res.Weighted = append(res.Weighted, stats.GeoMean(wgt))
		res.Harmonic = append(res.Harmonic, stats.GeoMean(har))
		res.Fairness = append(res.Fairness, stats.Mean(fair))
	}
	return res
}

// Render formats the reward-metric comparison.
func (r RewardMetricsResult) Render() string {
	t := stats.NewTable("Reward metrics (§6.4): Bandit optimizing different SMT objectives",
		"reward", "sum IPC", "weighted", "harmonic", "fairness")
	for i, m := range r.Modes {
		t.AddRow(m,
			fmt.Sprintf("%.3f", r.SumIPC[i]),
			fmt.Sprintf("%.3f", r.Weighted[i]),
			fmt.Sprintf("%.3f", r.Harmonic[i]),
			fmt.Sprintf("%.3f", r.Fairness[i]))
	}
	return t.Render()
}
