package harness

import (
	"encoding/csv"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestRenderFailuresNewlineSafe: a panic value with embedded newlines
// (and commas) must stay inside its own appendix entry — one failure
// per line, always.
func TestRenderFailuresNewlineSafe(t *testing.T) {
	fails := []JobFailure{
		{Job: 0, Err: errors.New("plain failure")},
		{Job: 1, Err: fmt.Errorf("panic: bad state\ngoroutine 7 [running]:\nmain.go:12")},
		{Job: 2, Err: errors.New("spec noise:0.5:7, intensity out of range")},
	}
	out := RenderFailures(fails)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// Banner + one line per failure; the multi-line error is quoted into
	// a single line rather than spilling.
	if len(lines) != 1+len(fails) {
		t.Fatalf("appendix has %d lines, want %d:\n%s", len(lines), 1+len(fails), out)
	}
	if !strings.Contains(out, `"panic: bad state\ngoroutine 7 [running]:\nmain.go:12"`) {
		t.Errorf("multi-line error not quoted:\n%s", out)
	}
}

// TestFailuresCSVParseable: the CSV form routes panic text through the
// shared quoting helper and round-trips through encoding/csv.
func TestFailuresCSVParseable(t *testing.T) {
	fails := []JobFailure{
		{Job: 3, Err: errors.New("boom, with commas\nand a newline")},
	}
	out := FailuresCSV(fails)
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("FailuresCSV output does not parse: %v\n%s", err, out)
	}
	want := [][]string{
		{"job", "error"},
		{"3", "boom, with commas\nand a newline"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows:\n got %q\nwant %q", rows, want)
	}
}
