package harness

import (
	"testing"

	"microbandit/internal/trace"
)

// TestChunkCacheInvariant pins the shared-cache contract: enabling the
// chunk cache changes no output byte, a repeat run over the warm cache
// replays chunks instead of regenerating them, and the effectiveness
// counters report the activity. The cached runs use Workers=8 so the
// cache is exercised concurrently (meaningful under -race).
func TestChunkCacheInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const id = "fig8"
	plain := smokeDeterminism()
	textPlain, csvPlain, ok := RunWithCSV(id, plain)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}

	cached := smokeDeterminism()
	cached.Workers = 8
	cached.ChunkCache = trace.NewChunkCache(0)
	cached.SimCounters = &SimCounters{}
	textCold, csvCold, _ := RunWithCSV(id, cached)
	if textCold != textPlain || csvCold != csvPlain {
		t.Fatalf("%s: cold cached run differs from uncached run\n--- plain ---\n%s\n--- cached ---\n%s",
			id, textPlain, textCold)
	}
	if cached.SimCounters.Insts.Load() == 0 {
		t.Fatal("SimCounters recorded no instructions")
	}
	if cov := cached.SimCounters.FFCoverage(); cov <= 0 || cov >= 1 {
		t.Fatalf("fast-forward coverage = %v, want in (0, 1)", cov)
	}

	textWarm, csvWarm, _ := RunWithCSV(id, cached)
	if textWarm != textPlain || csvWarm != csvPlain {
		t.Fatalf("%s: warm cached run differs from uncached run\n--- plain ---\n%s\n--- warm ---\n%s",
			id, textPlain, textWarm)
	}
	hits, _ := cached.ChunkCache.Stats()
	if hits == 0 {
		t.Fatal("warm repeat run produced no chunk-cache hits")
	}
	if hr := cached.SimCounters.HitRate(); hr <= 0 {
		t.Fatalf("SimCounters hit rate = %v, want > 0", hr)
	}
}
