package harness

import (
	"fmt"
	"sort"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// ---------------------------------------------------------------------
// Fig. 2 — temporal homogeneity of Pythia's action space

// Fig2Row is one application's action-frequency measurement.
type Fig2Row struct {
	App      string
	Top1Frac float64
	Top2Frac float64 // cumulative top-2 fraction
}

// Fig2Result reproduces Fig. 2: the frequency of the top-2 most selected
// Pythia actions per SPEC application.
type Fig2Result struct {
	Rows    []Fig2Row
	AvgTop1 float64
	AvgTop2 float64
}

// Fig2 profiles Pythia's action selections on the SPEC-style apps.
func Fig2(o Options) Fig2Result {
	apps := o.apps(trace.TuneSet())
	type out struct {
		row Fig2Row
		ok  bool
	}
	rows := runJobs(o, apps, func(app trace.App) out {
		seed := o.subSeed("fig2", app.Name)
		hier := mem.NewHierarchy(mem.DefaultConfig())
		c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
		py := prefetch.NewPythia(seed)
		r := cpu.NewRunner(c, py, nil, nil)
		o.simInsts(r)
		o.noteSim(c)

		counts := py.ActionCounts()
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		var total int64
		for _, v := range counts {
			total += v
		}
		if total == 0 {
			return out{}
		}
		top1 := float64(counts[0]) / float64(total)
		top2 := float64(counts[0]+counts[1]) / float64(total)
		return out{row: Fig2Row{App: app.Name, Top1Frac: top1, Top2Frac: top2}, ok: true}
	})

	res := Fig2Result{Rows: make([]Fig2Row, 0, len(apps))}
	for _, r := range rows {
		if r.ok {
			res.Rows = append(res.Rows, r.row)
		}
	}
	var s1, s2 float64
	for _, r := range res.Rows {
		s1 += r.Top1Frac
		s2 += r.Top2Frac
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.AvgTop1, res.AvgTop2 = s1/n, s2/n
	}
	return res
}

// Render formats the figure as a text table.
func (r Fig2Result) Render() string {
	t := stats.NewTable("Fig. 2: frequency of Pythia's top-2 actions", "app", "top1 %", "top1+2 %")
	for _, row := range r.Rows {
		t.AddFloatRow(row.App, "%.1f", row.Top1Frac*100, row.Top2Frac*100)
	}
	t.AddFloatRow("average", "%.1f", r.AvgTop1*100, r.AvgTop2*100)
	return t.Render()
}

// ---------------------------------------------------------------------
// Shared static-arm oracle sweep

// bestStaticPrefetchAll runs every Table 7 arm statically for every app —
// one flat parallel sweep — and returns each app's best IPC and arm (the
// §6.4 oracle). Ties resolve toward the lower arm index, matching a
// serial ascending scan.
func (o Options) bestStaticPrefetchAll(apps []trace.App, memCfg mem.Config) (bestIPC []float64, bestArm []int) {
	arms := prefetch.NewTable7Ensemble().NumArms()
	type job struct{ appIdx, arm int }
	jobs := make([]job, 0, len(apps)*arms)
	for ai := range apps {
		for arm := 0; arm < arms; arm++ {
			jobs = append(jobs, job{ai, arm})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		return o.runPrefetchCtrl(apps[j.appIdx], fmt.Sprintf("static-%d", j.arm),
			core.FixedArm(j.arm), memCfg).IPC
	})
	bestIPC = make([]float64, len(apps))
	bestArm = make([]int, len(apps))
	for ai := range apps {
		bestIPC[ai], bestArm[ai] = -1, -1
		for arm := 0; arm < arms; arm++ {
			if ipc := ipcs[ai*arms+arm]; ipc > bestIPC[ai] {
				bestIPC[ai], bestArm[ai] = ipc, arm
			}
		}
	}
	return bestIPC, bestArm
}

// ---------------------------------------------------------------------
// Table 8 — bandit algorithms vs the best static arm (prefetch tune set)

// Table8Result holds, per algorithm, the min/max/gmean IPC as a
// percentage of the best-static-arm IPC.
type Table8Result struct {
	Algos map[string]stats.Summary
	Order []string
}

// Table8 reproduces the tune-set comparison: Pythia, Single, Periodic,
// ε-Greedy, UCB, DUCB against the best static arm.
func Table8(o Options) Table8Result {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()
	arms := prefetch.NewTable7Ensemble().NumArms()
	best, _ := o.bestStaticPrefetchAll(apps, memCfg)

	cols := append([]string{"Pythia"}, banditAlgoOrder...)
	type job struct{ appIdx, col int }
	jobs := make([]job, 0, len(apps)*len(cols))
	for ai := range apps {
		for ci := range cols {
			jobs = append(jobs, job{ai, ci})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		app := apps[j.appIdx]
		name := cols[j.col]
		if name == "Pythia" {
			return o.runPrefetch(app, PfPythia, memCfg).IPC
		}
		mk := banditAlgorithms(o.subSeed("t8", app.Name), arms, false)[name]
		return o.runPrefetchCtrl(app, name, mk(), memCfg).IPC
	})

	algoRatios := make(map[string][]float64, len(cols))
	for ai := range apps {
		if best[ai] <= 0 {
			continue
		}
		for ci, name := range cols {
			algoRatios[name] = append(algoRatios[name], ipcs[ai*len(cols)+ci]/best[ai])
		}
	}

	out := Table8Result{
		Algos: map[string]stats.Summary{},
		Order: []string{"Pythia", "Single", "Periodic", "eps-Greedy", "UCB", "DUCB"},
	}
	for name, ratios := range algoRatios {
		out.Algos[name] = stats.Summarize(ratios).AsPercent()
	}
	return out
}

// Render formats the table in the paper's layout.
func (r Table8Result) Render() string {
	t := stats.NewTable("Table 8: IPC as % of best static arm (prefetch tune set)",
		append([]string{""}, r.Order...)...)
	addRow := func(label string, pick func(stats.Summary) float64) {
		cells := []string{label}
		for _, name := range r.Order {
			cells = append(cells, fmt.Sprintf("%.1f", pick(r.Algos[name])))
		}
		t.AddRow(cells...)
	}
	addRow("min", func(s stats.Summary) float64 { return s.Min })
	addRow("max", func(s stats.Summary) float64 { return s.Max })
	addRow("gmean", func(s stats.Summary) float64 { return s.GMean })
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 8 / Fig. 11 — single-core comparison across suites

// Fig8Result holds per-suite and overall geometric-mean IPC, normalized
// to no-prefetching, per prefetcher.
type Fig8Result struct {
	Title  string
	Kinds  []string
	Suites []string
	// Norm[kind][suite] is the gmean normalized IPC; Norm[kind]["all"]
	// is the overall gmean.
	Norm map[string]map[string]float64
}

var fig8Kinds = []PfKind{PfStride, PfBingo, PfMLOP, PfPythia, PfBandit}

// Fig8 reproduces the single-core suite comparison with the Table 4
// hierarchy.
func Fig8(o Options) Fig8Result {
	return singleCoreComparison(o, "Fig. 8: single-core IPC normalized to no-prefetching", mem.DefaultConfig())
}

// Fig11 repeats Fig. 8 with the alternative (1 MB L2 / 1.5 MB LLC)
// hierarchy and no retuning.
func Fig11(o Options) Fig8Result {
	r := singleCoreComparison(o, "Fig. 11: single-core IPC, alternative cache hierarchy", mem.AltCacheConfig())
	return r
}

func singleCoreComparison(o Options, title string, memCfg mem.Config) Fig8Result {
	res := Fig8Result{
		Title:  title,
		Kinds:  make([]string, 0, len(fig8Kinds)),
		Suites: trace.SuiteOrder,
		Norm:   map[string]map[string]float64{},
	}
	apps := o.apps(trace.Catalog())

	// One job per (prefetcher, app); the no-prefetch baseline leads the
	// job list so base[i] = ipcs[i].
	kinds := append([]PfKind{PfNone}, fig8Kinds...)
	type job struct{ kindIdx, appIdx int }
	jobs := make([]job, 0, len(kinds)*len(apps))
	for ki := range kinds {
		for ai := range apps {
			jobs = append(jobs, job{ki, ai})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		return o.runPrefetch(apps[j.appIdx], kinds[j.kindIdx], memCfg).IPC
	})

	base := ipcs[:len(apps)]
	for ki, kind := range fig8Kinds {
		row := ipcs[(ki+1)*len(apps) : (ki+2)*len(apps)]
		perSuite := map[string][]float64{}
		all := make([]float64, 0, len(apps))
		for ai, app := range apps {
			n := row[ai] / base[ai]
			perSuite[app.Suite] = append(perSuite[app.Suite], n)
			all = append(all, n)
		}
		res.Kinds = append(res.Kinds, string(kind))
		m := map[string]float64{"all": stats.GeoMean(all)}
		for s, v := range perSuite {
			m[s] = stats.GeoMean(v)
		}
		res.Norm[string(kind)] = m
	}
	return res
}

// Render formats the per-suite table.
func (r Fig8Result) Render() string {
	headers := append([]string{"prefetcher"}, r.Suites...)
	headers = append(headers, "ALL")
	t := stats.NewTable(r.Title, headers...)
	for _, kind := range r.Kinds {
		cells := []string{kind}
		for _, s := range r.Suites {
			cells = append(cells, fmt.Sprintf("%.3f", r.Norm[kind][s]))
		}
		cells = append(cells, fmt.Sprintf("%.3f", r.Norm[kind]["all"]))
		t.AddRow(cells...)
	}
	return t.Render()
}

// Speedup returns kind a's gmean IPC relative to kind b's, in percent
// (the paper's "+x%" comparisons).
func (r Fig8Result) Speedup(a, b string) float64 {
	return stats.SpeedupPercent(r.Norm[a]["all"] / r.Norm[b]["all"])
}

// ---------------------------------------------------------------------
// Fig. 9 — prefetch classification

// Fig9Row is one prefetcher's aggregate classification, normalized to the
// no-prefetching LLC miss count.
type Fig9Row struct {
	Kind      string
	LLCMisses float64 // remaining demand LLC misses (normalized)
	Timely    float64
	Late      float64
	Wrong     float64
	CoverFrac float64 // fraction of baseline misses covered timely
}

// Fig9Result reproduces the classification figure.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 classifies prefetches for each prefetcher across the app set.
func Fig9(o Options) Fig9Result {
	apps := o.apps(trace.Catalog())
	memCfg := mem.DefaultConfig()

	kinds := append([]PfKind{PfNone}, fig8Kinds...)
	type job struct{ kindIdx, appIdx int }
	jobs := make([]job, 0, len(kinds)*len(apps))
	for ki := range kinds {
		for ai := range apps {
			jobs = append(jobs, job{ki, ai})
		}
	}
	runs := runJobs(o, jobs, func(j job) PrefetchRun {
		return o.runPrefetch(apps[j.appIdx], kinds[j.kindIdx], memCfg)
	})

	var baseMisses int64
	for _, r := range runs[:len(apps)] {
		baseMisses += r.Stats.LLCMisses
	}
	if baseMisses == 0 {
		baseMisses = 1
	}
	res := Fig9Result{Rows: make([]Fig9Row, 0, len(fig8Kinds))}
	for ki, kind := range fig8Kinds {
		var misses int64
		var cl mem.Classification
		for _, r := range runs[(ki+1)*len(apps) : (ki+2)*len(apps)] {
			misses += r.Stats.LLCMisses
			cl.Timely += r.Class.Timely
			cl.Late += r.Class.Late
			cl.Wrong += r.Class.Wrong
		}
		res.Rows = append(res.Rows, Fig9Row{
			Kind:      string(kind),
			LLCMisses: float64(misses) / float64(baseMisses),
			Timely:    float64(cl.Timely) / float64(baseMisses),
			Late:      float64(cl.Late) / float64(baseMisses),
			Wrong:     float64(cl.Wrong) / float64(baseMisses),
			CoverFrac: float64(cl.Timely) / float64(baseMisses),
		})
	}
	return res
}

// Render formats the classification table.
func (r Fig9Result) Render() string {
	t := stats.NewTable("Fig. 9: LLC misses and prefetches (normalized to no-prefetch LLC misses)",
		"prefetcher", "LLC misses", "timely", "late", "wrong")
	for _, row := range r.Rows {
		t.AddFloatRow(row.Kind, "%.3f", row.LLCMisses, row.Timely, row.Late, row.Wrong)
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 10 — DRAM bandwidth sweep

// Fig10Result compares Pythia and Bandit across channel rates.
type Fig10Result struct {
	MTPS   []float64
	Pythia []float64 // gmean IPC normalized to no-prefetch at same MTPS
	Bandit []float64
}

// Fig10 sweeps the DRAM transfer rate (150/600/2400/9600 MTPS).
func Fig10(o Options) Fig10Result {
	res := Fig10Result{MTPS: []float64{150, 600, 2400, 9600}}
	apps := o.apps(trace.Catalog())

	kinds := []PfKind{PfNone, PfPythia, PfBandit}
	type job struct{ mtpsIdx, appIdx, kindIdx int }
	jobs := make([]job, 0, len(res.MTPS)*len(apps)*len(kinds))
	for mi := range res.MTPS {
		for ai := range apps {
			for ki := range kinds {
				jobs = append(jobs, job{mi, ai, ki})
			}
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		memCfg := mem.DefaultConfig()
		memCfg.MTPS = res.MTPS[j.mtpsIdx]
		return o.runPrefetch(apps[j.appIdx], kinds[j.kindIdx], memCfg).IPC
	})

	res.Pythia = make([]float64, 0, len(res.MTPS))
	res.Bandit = make([]float64, 0, len(res.MTPS))
	i := 0
	for range res.MTPS {
		py := make([]float64, 0, len(apps))
		bd := make([]float64, 0, len(apps))
		for range apps {
			base, p, b := ipcs[i], ipcs[i+1], ipcs[i+2]
			i += 3
			if base <= 0 {
				continue
			}
			py = append(py, p/base)
			bd = append(bd, b/base)
		}
		res.Pythia = append(res.Pythia, stats.GeoMean(py))
		res.Bandit = append(res.Bandit, stats.GeoMean(bd))
	}
	return res
}

// Render formats the sweep.
func (r Fig10Result) Render() string {
	t := stats.NewTable("Fig. 10: gmean IPC (normalized to no-prefetch) vs DRAM bandwidth",
		"MTPS", "Pythia", "Bandit", "Bandit vs Pythia %")
	for i := range r.MTPS {
		t.AddFloatRow(fmt.Sprintf("%.0f", r.MTPS[i]), "%.3f",
			r.Pythia[i], r.Bandit[i], stats.SpeedupPercent(r.Bandit[i]/r.Pythia[i]))
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 12 — multi-level prefetching

// Fig12Result compares L1+L2 prefetcher combinations.
type Fig12Result struct {
	Kinds []string
	Norm  []float64 // gmean IPC normalized to no prefetching at all
}

// Fig12 evaluates Stride_Stride, IPCP, Stride_Pythia, and Stride_Bandit.
func Fig12(o Options) Fig12Result {
	apps := o.apps(trace.Catalog())
	memCfg := mem.DefaultConfig()

	type combo struct {
		name string
		l1   func(seed uint64) prefetch.Prefetcher
		l2   PfKind
	}
	l1Stride := func(uint64) prefetch.Prefetcher { return prefetch.NewIPStride(48, 2) }
	combos := []combo{
		{"Stride_Stride", l1Stride, PfStride},
		{"IPCP", func(uint64) prefetch.Prefetcher { return prefetch.NewIPCP(64, 3) }, PfKind("ipcpL2")},
		{"Stride_Pythia", l1Stride, PfPythia},
		{"Stride_Bandit", l1Stride, PfBandit},
	}

	// comboIdx -1 is the no-prefetch baseline.
	type job struct{ comboIdx, appIdx int }
	jobs := make([]job, 0, (len(combos)+1)*len(apps))
	for ci := -1; ci < len(combos); ci++ {
		for ai := range apps {
			jobs = append(jobs, job{ci, ai})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		app := apps[j.appIdx]
		if j.comboIdx < 0 {
			return o.runPrefetch(app, PfNone, memCfg).IPC
		}
		cb := combos[j.comboIdx]
		seed := o.subSeed("fig12", app.Name, cb.name)
		hier := mem.NewHierarchy(memCfg)
		c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))

		var l2 prefetch.Prefetcher
		var ctrl core.Controller
		var tun prefetch.Tunable
		if cb.l2 == "ipcpL2" {
			l2 = prefetch.NewIPCP(64, 4)
		} else {
			l2, ctrl, tun = pfSetup(cb.l2, seed)
		}
		r := cpu.NewRunner(c, l2, ctrl, tun)
		r.L1Pf = cb.l1(seed)
		r.StepL2 = o.StepL2
		o.simInsts(r)
		o.noteSim(c)
		return c.IPC()
	})

	base := ipcs[:len(apps)]
	res := Fig12Result{
		Kinds: make([]string, 0, len(combos)),
		Norm:  make([]float64, 0, len(combos)),
	}
	for ci, cb := range combos {
		row := ipcs[(ci+1)*len(apps) : (ci+2)*len(apps)]
		norm := make([]float64, 0, len(apps))
		for ai := range apps {
			norm = append(norm, row[ai]/base[ai])
		}
		res.Kinds = append(res.Kinds, cb.name)
		res.Norm = append(res.Norm, stats.GeoMean(norm))
	}
	return res
}

// Render formats the multi-level comparison.
func (r Fig12Result) Render() string {
	t := stats.NewTable("Fig. 12: multi-level prefetching, gmean IPC normalized to no-prefetching",
		"combo", "gmean")
	for i, k := range r.Kinds {
		t.AddFloatRow(k, "%.3f", r.Norm[i])
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 14 — four-core homogeneous mixes

// Fig14Result compares prefetchers on 4-core mixes: homogeneous (the
// same app on every core) and heterogeneous (four different apps per
// mix), per §6.2.
type Fig14Result struct {
	Kinds      []string
	Norm       []float64 // homogeneous: gmean sum-IPC normalized to no-prefetch
	HeteroNorm []float64 // heterogeneous mixes, same normalization
}

// fig14Workload is one 4-core workload: the app run on each core.
type fig14Workload struct {
	name string
	apps [4]trace.App
}

// Fig14 runs the homogeneous and heterogeneous 4-core comparisons.
func Fig14(o Options) Fig14Result {
	apps := o.apps(trace.Catalog())
	memCfg := mem.DefaultConfig()
	instsPerCore := o.Insts / 4
	if instsPerCore < 50_000 {
		instsPerCore = 50_000
	}

	// run4 is one job: the four cores of a workload share an LLC/DRAM
	// pool and must advance in lockstep, so they stay on one goroutine;
	// parallelism comes from independent (workload, prefetcher) pairs.
	run4 := func(w fig14Workload, kind PfKind) float64 {
		shared := mem.NewShared(memCfg, 4)
		runners := make([]*cpu.Runner, 0, 4)
		for coreID := 0; coreID < 4; coreID++ {
			app := w.apps[coreID]
			seed := o.subSeed("fig14", w.name, app.Name, string(kind), fmt.Sprint(coreID))
			hier := mem.NewCoreHierarchy(memCfg, shared)
			c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
			var (
				l2   prefetch.Prefetcher
				ctrl core.Controller
				tun  prefetch.Tunable
			)
			if kind == PfBandit {
				ens := prefetch.NewTable7Ensemble()
				// Multi-core bandits use the §4.3 round-robin restart.
				ctrl = core.MustNew(core.Config{
					Arms:          ens.NumArms(),
					Policy:        core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
					Normalize:     true,
					RRRestartProb: core.RRRestartProb4Core,
					Seed:          seed,
				})
				l2, tun = ens, ens
			} else {
				l2, ctrl, tun = pfSetup(kind, seed)
			}
			r := cpu.NewRunner(c, l2, ctrl, tun)
			r.StepL2 = o.StepL2
			runners = append(runners, r)
		}
		cpu.RunMultiCore(runners, instsPerCore)
		return cpu.SumIPC(runners)
	}

	// Homogeneous: every core runs the same app.
	var homo []fig14Workload
	for _, app := range apps {
		homo = append(homo, fig14Workload{name: app.Name, apps: [4]trace.App{app, app, app, app}})
	}
	// Heterogeneous: rotate through the app list, four per mix.
	var hetero []fig14Workload
	for i := 0; i+3 < len(apps); i += 4 {
		w := fig14Workload{apps: [4]trace.App{apps[i], apps[i+1], apps[i+2], apps[i+3]}}
		w.name = fmt.Sprintf("mix%d", i/4)
		hetero = append(hetero, w)
	}

	eval := func(loads []fig14Workload) []float64 {
		kinds := append([]PfKind{PfNone}, fig8Kinds...)
		type job struct{ kindIdx, wIdx int }
		jobs := make([]job, 0, len(kinds)*len(loads))
		for ki := range kinds {
			for wi := range loads {
				jobs = append(jobs, job{ki, wi})
			}
		}
		sums := runJobs(o, jobs, func(j job) float64 {
			return run4(loads[j.wIdx], kinds[j.kindIdx])
		})
		base := sums[:len(loads)]
		out := make([]float64, 0, len(fig8Kinds))
		for ki := range fig8Kinds {
			row := sums[(ki+1)*len(loads) : (ki+2)*len(loads)]
			norm := make([]float64, 0, len(loads))
			for wi := range loads {
				if base[wi] <= 0 {
					continue
				}
				norm = append(norm, row[wi]/base[wi])
			}
			out = append(out, stats.GeoMean(norm))
		}
		return out
	}

	res := Fig14Result{}
	for _, kind := range fig8Kinds {
		res.Kinds = append(res.Kinds, string(kind))
	}
	res.Norm = eval(homo)
	if len(hetero) > 0 {
		res.HeteroNorm = eval(hetero)
	}
	return res
}

// Render formats the 4-core comparison.
func (r Fig14Result) Render() string {
	headers := []string{"prefetcher", "homogeneous"}
	if len(r.HeteroNorm) > 0 {
		headers = append(headers, "heterogeneous")
	}
	t := stats.NewTable("Fig. 14: four-core mixes, gmean sum-IPC normalized to no-prefetching",
		headers...)
	for i, k := range r.Kinds {
		cells := []string{k, fmt.Sprintf("%.3f", r.Norm[i])}
		if len(r.HeteroNorm) > 0 {
			cells = append(cells, fmt.Sprintf("%.3f", r.HeteroNorm[i]))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 7 (prefetch panels) — exploration traces

// ArmPoint is one (cycle, arm) sample of an exploration trace.
type ArmPoint struct {
	Cycle int64
	Arm   int
}

// Fig7Panel is one exploration trace: arm index over time plus the run's
// IPC.
type Fig7Panel struct {
	Algo string
	App  string
	IPC  float64
	Arms []ArmPoint
}

// Fig7Prefetch produces the prefetch-side exploration panels (cactus and
// mcf under BestStatic, Single, UCB, and DUCB).
func Fig7Prefetch(o Options) []Fig7Panel {
	memCfg := mem.DefaultConfig()
	var apps []trace.App
	for _, appName := range []string{"cactusADM", "mcf06"} {
		if app, err := trace.ByName(appName); err == nil {
			apps = append(apps, app)
		}
	}
	// Phase 1: the static oracle that defines the BestStatic panel.
	_, bestArm := o.bestStaticPrefetchAll(apps, memCfg)

	// Phase 2: the exploration-trace runs, one job per (app, algorithm).
	algos := []string{"BestStatic", "Single", "UCB", "DUCB"}
	type job struct{ appIdx, algoIdx int }
	jobs := make([]job, 0, len(apps)*len(algos))
	for ai := range apps {
		for gi := range algos {
			jobs = append(jobs, job{ai, gi})
		}
	}
	return runJobs(o, jobs, func(j job) Fig7Panel {
		app := apps[j.appIdx]
		name := algos[j.algoIdx]
		var ctrl core.Controller
		switch name {
		case "BestStatic":
			ctrl = core.FixedArm(bestArm[j.appIdx])
		case "Single":
			ctrl = core.MustNew(core.Config{Arms: core.PrefetchArms,
				Policy: core.NewSingle(), Normalize: true, Seed: o.subSeed("f7", app.Name)})
		case "UCB":
			ctrl = core.MustNew(core.Config{Arms: core.PrefetchArms,
				Policy: core.NewUCB(core.PrefetchC), Normalize: true, Seed: o.subSeed("f7", app.Name)})
		default: // DUCB
			ctrl = core.MustNew(core.Config{Arms: core.PrefetchArms,
				Policy: core.NewDUCB(core.PrefetchC, core.PrefetchGamma), Normalize: true,
				Seed: o.subSeed("f7", app.Name)})
		}
		seed := o.subSeed("fig7", app.Name, name)
		hier := mem.NewHierarchy(memCfg)
		c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
		ens := prefetch.NewTable7Ensemble()
		r := cpu.NewRunner(c, ens, ctrl, ens)
		r.StepL2 = o.StepL2
		r.RecordArms()
		o.simInsts(r)
		o.noteSim(c)
		panel := Fig7Panel{Algo: name, App: app.Name, IPC: c.IPC()}
		panel.Arms = make([]ArmPoint, 0, len(r.ArmTrace))
		for _, s := range r.ArmTrace {
			panel.Arms = append(panel.Arms, ArmPoint{Cycle: s.Cycle, Arm: s.Arm})
		}
		return panel
	})
}

// RenderFig7 plots the exploration panels as text.
func RenderFig7(panels []Fig7Panel) string {
	var b strings.Builder
	b.WriteString("Fig. 7: exploration traces (arm index over time)\n")
	for _, p := range panels {
		series := stats.Series{Name: fmt.Sprintf("%s/%s", p.Algo, p.App)}
		for _, s := range p.Arms {
			series.Append(float64(s.Cycle), float64(s.Arm))
		}
		fmt.Fprintf(&b, "%s (IPC %.3f, %d selections)\n", series.Name, p.IPC, len(p.Arms))
		b.WriteString(stats.LinePlot("", []stats.Series{series}, 8, 64))
	}
	return b.String()
}
