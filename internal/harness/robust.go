package harness

import (
	"fmt"
	"math"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/fault"
	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/prefetch"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// This file is the robustness experiment: the paper's resilience story
// (§4.3's DUCB discounting and probabilistic round-robin restarts exist
// precisely to survive nonstationarity, interference, and noisy rewards)
// reproduced by sweeping seeded faults over the bandit algorithms. Each
// sweep point runs every tune-set app under every algorithm with the
// fault injected, and reports gmean IPC as a percentage of the same
// algorithm's clean-run IPC — the graceful-degradation curve.

// RobustAlgos lists the algorithms compared, in column order. DUCB+RR is
// DUCB with the §4.3 probabilistic round-robin restart enabled; CTX-DUCB
// keys independent DUCB tables by the runner's telemetry signature
// (phase id, MPKI band, DRAM-bandwidth band), so a phase storm lands in
// a fresh table instead of poisoning the learned one.
var RobustAlgos = []string{"eps-Greedy", "UCB", "DUCB", "DUCB+RR", "CTX-DUCB"}

// robustRRProb is the per-step round-robin restart probability of the
// DUCB+RR column. The paper uses 0.001 per step over 1B-instruction
// runs; the scaled presets complete far fewer bandit steps, so the
// probability scales up to keep the expected restart count comparable.
const robustRRProb = 0.02

// robustIntensities is the default intensity grid per fault kind.
var robustIntensities = []float64{0.25, 0.5, 1}

// robustKinds is the default fault-kind sweep (Panic is excluded: it is
// an engine-hardening fault, injectable explicitly via -faults).
var robustKinds = []fault.Kind{fault.Noise, fault.Delay, fault.StuckArm, fault.BWCollapse, fault.PhaseStorm}

// DefaultFaultSweep returns the default sweep points: every robustness
// fault kind at every default intensity, seed 1.
func DefaultFaultSweep() []fault.Spec {
	out := make([]fault.Spec, 0, len(robustKinds)*len(robustIntensities))
	for _, k := range robustKinds {
		for _, in := range robustIntensities {
			out = append(out, fault.Spec{Kind: k, Intensity: in, Seed: 1})
		}
	}
	return out
}

// RobustResult is the robustness sweep outcome.
type RobustResult struct {
	Sweep []fault.Spec
	Algos []string
	// CleanIPC[ai] is algorithm ai's gmean clean-run IPC.
	CleanIPC []float64
	// Pct[si][ai] is gmean faulted/clean IPC (percent) for sweep point
	// si under algorithm ai; NaN when no run survived.
	Pct [][]float64
	// Survived[si][ai] counts runs that produced a usable IPC.
	Survived [][]int
	// Apps is the number of applications per cell.
	Apps int
}

// Robust runs the robustness experiment with the default fault sweep.
func Robust(o Options) RobustResult { return RobustWith(o, DefaultFaultSweep()) }

// RobustWith runs the robustness experiment over explicit sweep points
// (the CLI's -faults override). Every (sweep point, algorithm, app)
// triple is one engine job; failed jobs (e.g. injected panics) are
// excluded from the surviving-run statistics, so the result is partial
// rather than absent.
func RobustWith(o Options, sweep []fault.Spec) RobustResult {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()

	// Job list: sweepIdx -1 is the clean baseline.
	type job struct{ sweepIdx, algoIdx, appIdx int }
	jobs := make([]job, 0, (len(sweep)+1)*len(RobustAlgos)*len(apps))
	for si := -1; si < len(sweep); si++ {
		for ai := range RobustAlgos {
			for pi := range apps {
				jobs = append(jobs, job{si, ai, pi})
			}
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		var fs fault.Set
		if j.sweepIdx >= 0 {
			fs = fault.Set{sweep[j.sweepIdx]}
		}
		var rec obs.Recorder
		if o.Obs != nil {
			idx := (j.sweepIdx+1)*len(RobustAlgos)*len(apps) + j.algoIdx*len(apps) + j.appIdx
			label := fmt.Sprintf("robust/%s/%s/%s", apps[j.appIdx].Name, RobustAlgos[j.algoIdx], fs.String())
			rec = o.Obs.Slot(idx, label)
		}
		return o.runPrefetchFaulted(apps[j.appIdx], RobustAlgos[j.algoIdx], fs, memCfg, rec)
	})

	nA, nP := len(RobustAlgos), len(apps)
	at := func(si, ai, pi int) float64 { return ipcs[(si+1)*nA*nP+ai*nP+pi] }

	res := RobustResult{
		Sweep:    sweep,
		Algos:    RobustAlgos,
		CleanIPC: make([]float64, nA),
		Pct:      make([][]float64, len(sweep)),
		Survived: make([][]int, len(sweep)),
		Apps:     nP,
	}
	for ai := range RobustAlgos {
		clean := make([]float64, 0, nP)
		for pi := range apps {
			if v := at(-1, ai, pi); v > 0 {
				clean = append(clean, v)
			}
		}
		res.CleanIPC[ai] = stats.GeoMean(clean)
	}
	for si := range sweep {
		res.Pct[si] = make([]float64, nA)
		res.Survived[si] = make([]int, nA)
		for ai := range RobustAlgos {
			ratios := make([]float64, 0, nP)
			for pi := range apps {
				cleanIPC := at(-1, ai, pi)
				faultIPC := at(si, ai, pi)
				// The negated comparisons also exclude NaN (which passes
				// `<= 0`): a corrupted measurement is a failed run.
				if !(cleanIPC > 0) || !(faultIPC > 0) || math.IsInf(faultIPC, 0) {
					continue // failed or degenerate run: excluded, reported via Survived
				}
				ratios = append(ratios, faultIPC/cleanIPC)
			}
			res.Survived[si][ai] = len(ratios)
			if len(ratios) == 0 {
				res.Pct[si][ai] = math.NaN()
				continue
			}
			res.Pct[si][ai] = 100 * stats.GeoMean(ratios)
		}
	}
	return res
}

// runPrefetchFaulted simulates one app with the Table 7 ensemble under
// the named algorithm, with the fault set injected around the clean
// substrates. An empty set is exactly the clean runPrefetchCtrl path.
// rec, when non-nil, receives the run's telemetry: fault activations,
// the agent's arm/reward/snapshot stream, interval measurements, and a
// closing KindRunEnd with the headline IPC.
func (o Options) runPrefetchFaulted(app trace.App, algo string, fs fault.Set, memCfg mem.Config, rec obs.Recorder) float64 {
	seed := o.subSeed("robust", app.Name, algo, fs.String())
	hier := mem.NewHierarchy(memCfg)
	if bf := fault.Bandwidth(fs, seed); bf != nil {
		hier.DRAM().SetBandwidthFault(bf)
	}
	gen := fault.Generator(o.gen(app.New(seed), seed), fs, seed)
	c := cpu.New(cpu.DefaultConfig(), hier, gen)
	ens := prefetch.NewTable7Ensemble()
	inner := robustController(algo, seed, ens.NumArms())
	every := 0
	if rec != nil {
		every = o.Obs.Every
		// Attach before the fault wrapper: the wrapper hides the agent's
		// SetRecorder, and the telemetry should report what the agent
		// decided, not what the fault corrupted it into.
		obs.Attach(inner, rec, every)
		for _, spec := range fs {
			rec.Record(obs.Event{Kind: obs.KindFault, Label: spec.String()})
		}
	}
	ctrl := fault.Controller(inner, fs, seed)
	tun := fault.Tunable(ens, fs, seed)
	r := cpu.NewRunner(c, ens, ctrl, tun)
	r.StepL2 = o.StepL2
	if rec != nil {
		r.Obs = rec
		r.ObsEvery = every
	}
	o.simInsts(r)
	o.noteSim(c)
	ipc := c.IPC()
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindRunEnd, Step: r.Steps(),
			Fields: obs.NewFields().Set(obs.FieldIPC, ipc)})
	}
	return ipc
}

// robustController builds one comparison column's controller.
func robustController(algo string, seed uint64, arms int) core.Controller {
	cfg := core.Config{Arms: arms, Normalize: true, Seed: seed}
	switch algo {
	case "CTX-DUCB":
		c, err := core.NewContextualAgent(core.ContextualConfig{Arms: arms, Algo: "ducb", Seed: seed})
		if err != nil {
			panic(fmt.Sprintf("harness: contextual controller: %v", err))
		}
		return c
	case "eps-Greedy":
		cfg.Policy = core.NewEpsilonGreedy(0.05)
	case "UCB":
		cfg.Policy = core.NewUCB(core.PrefetchC)
	case "DUCB":
		cfg.Policy = core.NewDUCB(core.PrefetchC, core.PrefetchGamma)
	case "DUCB+RR":
		cfg.Policy = core.NewDUCB(core.PrefetchC, core.PrefetchGamma)
		cfg.RRRestartProb = robustRRProb
	default:
		panic(fmt.Sprintf("harness: unknown robustness algorithm %q", algo))
	}
	return core.MustNew(cfg)
}

// Render formats the robustness table.
func (r RobustResult) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Robustness: gmean IPC under injected faults, %% of each algorithm's clean run (%d apps)", r.Apps),
		append([]string{"fault"}, r.Algos...)...)
	cells := []string{"clean IPC"}
	for ai := range r.Algos {
		cells = append(cells, fmt.Sprintf("%.3f", r.CleanIPC[ai]))
	}
	t.AddRow(cells...)
	for si, spec := range r.Sweep {
		cells := []string{spec.String()}
		for ai := range r.Algos {
			cells = append(cells, renderPct(r.Pct[si][ai], r.Survived[si][ai], r.Apps))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// renderPct formats one cell, flagging partial and empty cells.
func renderPct(pct float64, survived, apps int) string {
	if survived == 0 {
		return "-"
	}
	s := fmt.Sprintf("%.1f", pct)
	if survived < apps {
		s += fmt.Sprintf(" (%d/%d)", survived, apps)
	}
	return s
}

// CSV returns the robustness rows.
func (r RobustResult) CSV() string {
	t := stats.NewTable("", "fault", "intensity", "seed", "algorithm", "pct_of_clean", "survived", "apps")
	for si, spec := range r.Sweep {
		for ai, algo := range r.Algos {
			pct := "-"
			if r.Survived[si][ai] > 0 {
				pct = fmt.Sprintf("%.2f", r.Pct[si][ai])
			}
			t.AddRow(string(spec.Kind), fmt.Sprintf("%g", spec.Intensity),
				fmt.Sprintf("%d", spec.Seed), algo, pct,
				fmt.Sprintf("%d", r.Survived[si][ai]), fmt.Sprintf("%d", r.Apps))
		}
	}
	return t.CSV()
}
