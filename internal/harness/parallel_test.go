package harness

import (
	"testing"
)

// The parallel engine's contract: any worker count produces the exact
// bytes a serial run produces. These tests run the two experiments the
// CI race job exercises most (one prefetch-side, one SMT-side) at
// Workers=1 and Workers=8 on the Smoke preset and require identical
// rendered output and identical CSV rows.

func smokeDeterminism() Options {
	o := Smoke()
	// Trim within Smoke so the 2×(serial+parallel) runs stay test-sized.
	o.Insts = 150_000
	o.StepL2 = 150
	o.SMTCycles = 150_000
	o.MaxMixes = 2
	return o
}

func assertWorkersInvariant(t *testing.T, id string) {
	t.Helper()
	serial := smokeDeterminism()
	serial.Workers = 1
	parallel := smokeDeterminism()
	parallel.Workers = 8

	textS, csvS, ok := RunWithCSV(id, serial)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	textP, csvP, _ := RunWithCSV(id, parallel)
	if textS != textP {
		t.Errorf("%s: rendered output differs between Workers=1 and Workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
			id, textS, textP)
	}
	if csvS != csvP {
		t.Errorf("%s: CSV rows differ between Workers=1 and Workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
			id, csvS, csvP)
	}
}

func TestTable8DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertWorkersInvariant(t, "table8")
}

func TestFig8DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assertWorkersInvariant(t, "fig8")
}
