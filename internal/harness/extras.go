package harness

import (
	"fmt"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// ExtrasResult holds the beyond-the-evaluation comparisons: the §8 BOP
// contrast (single best offset vs the orchestrated ensemble under
// imperfect temporal homogeneity) and the §9 hierarchical-bandit
// extension (a high-level bandit selecting among DUCB hyperparameter
// variants).
type ExtrasResult struct {
	// BOPNorm and BanditNorm are gmean IPCs normalized to no-prefetch.
	BOPNorm, BanditNorm float64
	// FlatNorm and MetaNorm compare the single paper-default DUCB agent
	// against the hierarchical sweep agent, gmean IPC normalized to
	// no-prefetch on the same apps.
	FlatNorm, MetaNorm float64
	// MetaLevels reports, per app, which hyperparameter level the
	// high-level bandit ended up preferring.
	MetaLevels map[string]int

	// SMT resource-distribution comparison (§8): ARPA vs Choi vs Bandit,
	// gmean sum-IPC over the tune mixes.
	ARPAIPC, ChoiIPC, BanditSMTIPC float64
}

// metaPairs are the (c, γ) variants the §9 hierarchical agent sweeps.
var metaPairs = [][2]float64{
	{core.PrefetchC, 0.99},
	{core.PrefetchC, core.PrefetchGamma},
	{4 * core.PrefetchC, core.PrefetchGamma},
}

// Extras runs the BOP and MetaAgent comparisons on the catalog apps.
func Extras(o Options) ExtrasResult {
	apps := o.apps(trace.Catalog())
	memCfg := mem.DefaultConfig()
	res := ExtrasResult{MetaLevels: map[string]int{}}

	// One job per app: the dependent runs (base gates everything, the
	// meta level reads back from the controller) stay together on one
	// goroutine; parallelism comes from independent apps.
	type appOut struct {
		ok              bool // base IPC was positive
		bop, flat, meta float64
		level           int
		metaOK          bool
	}
	outs := runJobs(o, apps, func(app trace.App) appOut {
		base := o.runPrefetch(app, PfNone, memCfg).IPC
		if base <= 0 {
			return appOut{}
		}
		out := appOut{ok: true}

		// BOP: single learned offset, degree 1.
		seed := o.subSeed("extras", app.Name)
		hier := mem.NewHierarchy(memCfg)
		c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
		r := cpu.NewRunner(c, prefetch.NewBOP(), nil, nil)
		r.StepL2 = o.StepL2
		o.simInsts(r)
		o.noteSim(c)
		out.bop = c.IPC() / base

		// Paper-default (flat) Bandit.
		out.flat = o.runPrefetch(app, PfBandit, memCfg).IPC / base

		// Hierarchical bandit over hyperparameter variants.
		mctrl, err := core.NewDUCBSweepMeta(core.PrefetchArms, metaPairs, true, seed)
		if err != nil {
			return out
		}
		out.meta = o.runPrefetchCtrl(app, "meta", mctrl, memCfg).IPC / base
		out.level = mctrl.BestLevel()
		out.metaOK = true
		return out
	})

	bop := make([]float64, 0, len(apps))
	bandit := make([]float64, 0, len(apps))
	flat := make([]float64, 0, len(apps))
	meta := make([]float64, 0, len(apps))
	for ai, app := range apps {
		out := outs[ai]
		if !out.ok {
			continue
		}
		bop = append(bop, out.bop)
		bandit = append(bandit, out.flat)
		flat = append(flat, out.flat)
		if out.metaOK {
			meta = append(meta, out.meta)
			res.MetaLevels[app.Name] = out.level
		}
	}
	res.BOPNorm = stats.GeoMean(bop)
	res.BanditNorm = stats.GeoMean(bandit)
	res.FlatNorm = stats.GeoMean(flat)
	res.MetaNorm = stats.GeoMean(meta)

	// §8 SMT comparison: ARPA's efficiency-proportional partitioning vs
	// Choi's hill-climbed threshold vs the Bandit on top of Hill Climbing.
	mixes := o.mixes(smtwork.TuneMixes())
	smtRuns := runJobs(o, mixes, func(mix smtwork.Mix) [3]float64 {
		seed := o.subSeed("extras-arpa", mix.Name())
		simA := simsmt.NewSim(mix.A, mix.B, seed)
		ra := simsmt.NewARPARunner(simA, simsmt.ChoiPolicy)
		ra.EpochLen = o.EpochLen
		o.simCycles(ra)
		return [3]float64{
			simA.SumIPC(),
			o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).SumIPC,
			o.runSMTCtrl(mix, "bandit", simsmt.NewBanditAgent(seed)).SumIPC,
		}
	})
	arpa := make([]float64, 0, len(mixes))
	choi := make([]float64, 0, len(mixes))
	banditSMT := make([]float64, 0, len(mixes))
	for _, run := range smtRuns {
		arpa = append(arpa, run[0])
		choi = append(choi, run[1])
		banditSMT = append(banditSMT, run[2])
	}
	res.ARPAIPC = stats.GeoMean(arpa)
	res.ChoiIPC = stats.GeoMean(choi)
	res.BanditSMTIPC = stats.GeoMean(banditSMT)
	return res
}

// Render formats the extras comparison.
func (r ExtrasResult) Render() string {
	var b strings.Builder
	t := stats.NewTable("Extensions: BOP contrast (§8) and hierarchical bandit (§9), gmean IPC vs no-prefetch",
		"config", "gmean")
	t.AddFloatRow("BOP (single best offset)", "%.3f", r.BOPNorm)
	t.AddFloatRow("Bandit (Table 7 ensemble)", "%.3f", r.BanditNorm)
	t.AddFloatRow("Bandit, flat DUCB", "%.3f", r.FlatNorm)
	t.AddFloatRow("Bandit, hierarchical (3 hyperparameter levels)", "%.3f", r.MetaNorm)
	b.WriteString(t.Render())
	t2 := stats.NewTable("SMT resource distribution (§8): gmean sum-IPC over tune mixes",
		"method", "gmean sum-IPC")
	t2.AddFloatRow("ARPA (efficiency partition)", "%.3f", r.ARPAIPC)
	t2.AddFloatRow("Choi (hill-climbed threshold)", "%.3f", r.ChoiIPC)
	t2.AddFloatRow("Bandit over Hill Climbing", "%.3f", r.BanditSMTIPC)
	b.WriteString(t2.Render())
	if len(r.MetaLevels) > 0 {
		b.WriteString("preferred hyperparameter level per app:\n")
		for _, name := range sortedKeys(r.MetaLevels) {
			p := metaPairs[r.MetaLevels[name]]
			fmt.Fprintf(&b, "  %-14s level %d (c=%.2f, gamma=%.4f)\n",
				name, r.MetaLevels[name], p[0], p[1])
		}
	}
	return b.String()
}
