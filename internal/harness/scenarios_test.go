package harness

import (
	"bytes"
	"strings"
	"testing"

	"microbandit/internal/obs"
	"microbandit/internal/scenario"
)

// smokeScenarios trims the determinism preset for the scenario matrix
// (5 scenarios x apps x (columns+1) runs).
func smokeScenarios() Options {
	o := smokeDeterminism()
	o.MaxApps = 1
	o.Insts = 100_000
	o.StepL2 = 100
	return o
}

// TestScenariosWithUnknownName pins the error contract the CLIs exit 2
// on: unknown scenario names are rejected up front, naming the valid
// set, and nothing is simulated.
func TestScenariosWithUnknownName(t *testing.T) {
	_, err := ScenariosWith(smokeScenarios(), []string{"dramsched", "bogus"})
	if err == nil {
		t.Fatal("ScenariosWith accepted an unknown scenario name")
	}
	if msg := err.Error(); !strings.Contains(msg, `"bogus"`) || !strings.Contains(msg, "dramsched") {
		t.Errorf("error %q should name the bad input and list valid scenarios", msg)
	}
}

// TestScenariosDeterministicAcrossWorkers extends the engine's
// determinism contract to the scenario experiment: every scenario's
// rendered table and CSV are byte-identical at Workers=1 and Workers=8.
func TestScenariosDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) ScenariosResult {
		o := smokeScenarios()
		o.Workers = workers
		r, err := ScenariosWith(o, scenario.Names())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rs, rp := run(1), run(8)
	if rs.Render() != rp.Render() {
		t.Errorf("rendered output differs between Workers=1 and Workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
			rs.Render(), rp.Render())
	}
	if rs.CSV() != rp.CSV() {
		t.Errorf("CSV differs between Workers=1 and Workers=8\n--- serial ---\n%s\n--- parallel ---\n%s",
			rs.CSV(), rp.CSV())
	}
}

// TestScenariosTelemetryDeterministicAcrossWorkers pins the telemetry
// stream: with a Collector installed the assembled JSONL bytes are
// byte-identical at any worker count, and the stream tags every run
// with its scenario.
func TestScenariosTelemetryDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) []byte {
		o := smokeScenarios()
		o.Workers = workers
		o.Obs = obs.NewCollector(50)
		if _, err := ScenariosWith(o, []string{"dramsched", "pfdegree"}); err != nil {
			t.Fatal(err)
		}
		events := o.Obs.Events()
		if len(events) == 0 {
			t.Fatal("collector captured no events")
		}
		scens := map[string]bool{}
		for _, ev := range events {
			if ev.Kind == obs.KindScenario {
				scens[ev.Label] = true
			}
		}
		if !scens["dramsched"] || !scens["pfdegree"] {
			t.Fatalf("stream tagged scenarios %v, want dramsched and pfdegree", scens)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, events); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Errorf("JSONL stream differs between Workers=1 and Workers=8")
	}
}

// TestScenariosCSVCoversAll pins the acceptance shape of scenarios.csv:
// every registered scenario appears, every block carries a bandit and a
// robustness column, and each block reports the bandit-vs-best-static
// summary row.
func TestScenariosCSVCoversAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := smokeScenarios()
	o.Workers = 4
	r := Scenarios(o)
	if len(r.Blocks) != len(scenario.Names()) {
		t.Fatalf("result has %d blocks, want %d", len(r.Blocks), len(scenario.Names()))
	}
	csv := r.CSV()
	for _, name := range scenario.Names() {
		if !strings.Contains(csv, name+",") {
			t.Errorf("CSV missing scenario %q", name)
		}
	}
	for _, b := range r.Blocks {
		if b.Columns[0] != "bandit" {
			t.Errorf("%s: first column %q, want bandit", b.Name, b.Columns[0])
		}
		if last := b.Columns[len(b.Columns)-1]; last != scnRobustColumn {
			t.Errorf("%s: last column %q, want the robustness column", b.Name, last)
		}
		if b.BestStatic == "" {
			t.Errorf("%s: no best-static summary", b.Name)
		}
		for ai, row := range b.IPC {
			for ci, v := range row {
				if !(v > 0) {
					t.Errorf("%s: app %s column %s produced no IPC", b.Name, b.Apps[ai], b.Columns[ci])
				}
			}
		}
	}
	if !strings.Contains(csv, "bandit_vs_best_static") {
		t.Error("CSV missing the bandit_vs_best_static summary rows")
	}
}
