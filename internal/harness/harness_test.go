package harness

import (
	"strings"
	"testing"

	"microbandit/internal/smtwork"
	"microbandit/internal/trace"
)

// tiny returns an even smaller preset than Smoke for the slowest sweeps.
func tiny() Options {
	o := Smoke()
	o.Insts = 150_000
	o.StepL2 = 150
	o.MaxApps = 1
	o.SMTCycles = 150_000
	o.EpochLen = 2048
	o.RREpochs = 2
	o.MaxMixes = 2
	return o
}

func TestOptionsAppsCap(t *testing.T) {
	o := Options{MaxApps: 2}
	apps := o.apps(trace.Catalog())
	perSuite := map[string]int{}
	for _, a := range apps {
		perSuite[a.Suite]++
	}
	for s, n := range perSuite {
		if n > 2 {
			t.Errorf("suite %s has %d apps, cap 2", s, n)
		}
	}
	if len(o.apps(trace.Catalog())) == len(trace.Catalog()) {
		t.Error("cap had no effect")
	}
	uncapped := Options{}
	if len(uncapped.apps(trace.Catalog())) != len(trace.Catalog()) {
		t.Error("MaxApps=0 must mean all")
	}
}

func TestOptionsMixesCap(t *testing.T) {
	o := Options{MaxMixes: 5}
	mixes := o.mixes(smtwork.Mixes())
	if len(mixes) != 5 {
		t.Fatalf("got %d mixes", len(mixes))
	}
	seen := map[string]bool{}
	for _, m := range mixes {
		if seen[m.Name()] {
			t.Error("duplicate mix in capped selection")
		}
		seen[m.Name()] = true
	}
}

func TestSubSeedStable(t *testing.T) {
	o := Options{Seed: 9}
	if o.subSeed("a", "b") != o.subSeed("a", "b") {
		t.Error("subSeed not stable")
	}
	if o.subSeed("a", "b") == o.subSeed("a", "c") {
		t.Error("subSeed collision across names")
	}
	o2 := Options{Seed: 10}
	if o.subSeed("a") == o2.subSeed("a") {
		t.Error("subSeed ignores Seed")
	}
}

func TestSubSeedPartBoundaries(t *testing.T) {
	// Parts must be hashed with a separator: concatenations that split
	// differently are different seeds.
	o := Options{Seed: 9}
	if o.subSeed("ab", "c") == o.subSeed("a", "bc") {
		t.Error(`subSeed("ab","c") collides with subSeed("a","bc")`)
	}
	if o.subSeed("abc") == o.subSeed("ab", "c") {
		t.Error(`subSeed("abc") collides with subSeed("ab","c")`)
	}
	if o.subSeed("a", "") == o.subSeed("a") {
		t.Error("trailing empty part must change the seed")
	}
}

func TestFig2TemporalHomogeneity(t *testing.T) {
	o := tiny()
	o.MaxApps = 2
	res := Fig2(o)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r.Top1Frac <= 0 || r.Top1Frac > 1 || r.Top2Frac < r.Top1Frac || r.Top2Frac > 1 {
			t.Errorf("%s: implausible fractions %+v", r.App, r)
		}
	}
	// The property the paper exploits: a small fraction of the action
	// space dominates selections.
	if res.AvgTop2 < 0.2 {
		t.Errorf("avg top-2 fraction = %.2f; expected clear temporal homogeneity", res.AvgTop2)
	}
	if !strings.Contains(res.Render(), "Fig. 2") {
		t.Error("render missing title")
	}
}

func TestTable8Shape(t *testing.T) {
	o := tiny()
	res := Table8(o)
	for _, name := range res.Order {
		s, ok := res.Algos[name]
		if !ok {
			t.Fatalf("missing algorithm %s", name)
		}
		if s.GMean < 40 || s.GMean > 120 {
			t.Errorf("%s gmean = %.1f%% of best static, implausible", name, s.GMean)
		}
		if s.Min > s.GMean+1e-9 || s.GMean > s.Max+1e-9 {
			t.Errorf("%s summary ordering broken: %+v", name, s)
		}
	}
	if !strings.Contains(res.Render(), "DUCB") {
		t.Error("render missing DUCB column")
	}
}

func TestFig8SingleCore(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	res := Fig8(o)
	if len(res.Kinds) != 5 {
		t.Fatalf("kinds = %v", res.Kinds)
	}
	for _, kind := range res.Kinds {
		all := res.Norm[kind]["all"]
		if all < 0.5 || all > 5 {
			t.Errorf("%s overall norm IPC = %.3f implausible", kind, all)
		}
	}
	// Prefetching should on average help (normalized > 1) for the Bandit.
	if res.Norm["Bandit"]["all"] < 1.0 {
		t.Errorf("Bandit normalized IPC = %.3f < 1", res.Norm["Bandit"]["all"])
	}
	out := res.Render()
	if !strings.Contains(out, "ALL") || !strings.Contains(out, "Bandit") {
		t.Error("render incomplete")
	}
	_ = res.Speedup("Bandit", "Stride")
}

func TestFig9Classification(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	res := Fig9(o)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.LLCMisses < 0 || r.Timely < 0 || r.Late < 0 || r.Wrong < 0 {
			t.Errorf("%s: negative classification %+v", r.Kind, r)
		}
	}
	if !strings.Contains(res.Render(), "timely") {
		t.Error("render incomplete")
	}
}

func TestFig10BandwidthSweep(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	res := Fig10(o)
	if len(res.MTPS) != 4 || len(res.Pythia) != 4 || len(res.Bandit) != 4 {
		t.Fatalf("sweep shape wrong: %+v", res)
	}
	for i := range res.MTPS {
		if res.Pythia[i] <= 0 || res.Bandit[i] <= 0 {
			t.Errorf("non-positive gmean at %v MTPS", res.MTPS[i])
		}
	}
	if !strings.Contains(res.Render(), "150") {
		t.Error("render incomplete")
	}
}

func TestFig12MultiLevel(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	res := Fig12(o)
	want := []string{"Stride_Stride", "IPCP", "Stride_Pythia", "Stride_Bandit"}
	if len(res.Kinds) != len(want) {
		t.Fatalf("kinds = %v", res.Kinds)
	}
	for i, k := range want {
		if res.Kinds[i] != k {
			t.Errorf("kind %d = %s, want %s", i, res.Kinds[i], k)
		}
		if res.Norm[i] <= 0 {
			t.Errorf("%s norm = %v", k, res.Norm[i])
		}
	}
}

func TestFig14FourCore(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	o.Insts = 200_000
	res := Fig14(o)
	if len(res.Kinds) != 5 {
		t.Fatalf("kinds = %v", res.Kinds)
	}
	for i, k := range res.Kinds {
		if res.Norm[i] <= 0.3 || res.Norm[i] > 5 {
			t.Errorf("%s 4-core norm = %.3f implausible", k, res.Norm[i])
		}
	}
}

func TestFig7Panels(t *testing.T) {
	o := tiny()
	panels := Fig7Prefetch(o)
	if len(panels) != 8 { // 2 apps x 4 algorithms
		t.Fatalf("prefetch panels = %d, want 8", len(panels))
	}
	byAlgo := map[string]Fig7Panel{}
	for _, p := range panels {
		if p.App == "mcf06" {
			byAlgo[p.Algo] = p
		}
	}
	if len(byAlgo["DUCB"].Arms) <= len(byAlgo["BestStatic"].Arms) {
		t.Error("DUCB should record more arm switches than BestStatic")
	}
	out := RenderFig7(panels)
	if !strings.Contains(out, "DUCB/mcf06") {
		t.Error("render incomplete")
	}
}

func TestFig5DesignSpace(t *testing.T) {
	o := tiny()
	o.MaxMixes = 1
	o.SMTCycles = 100_000
	res := Fig5(o)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r.BestDelta < 0 {
		t.Errorf("best policy (%s) worse than Choi by %.1f%%: the space includes Choi itself",
			r.BestPolicy, r.BestDelta*100)
	}
	if r.WorstDelta > 0 {
		t.Errorf("worst policy better than Choi: %+v", r)
	}
	if r.BestPolicy == "" {
		t.Error("no best policy recorded")
	}
	if !strings.Contains(res.Render(), "Fig. 5") {
		t.Error("render incomplete")
	}
}

func TestTable9Shape(t *testing.T) {
	o := tiny()
	res := Table9(o)
	for _, name := range res.Order {
		s, ok := res.Algos[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if s.GMean < 40 || s.GMean > 120 {
			t.Errorf("%s gmean = %.1f implausible", name, s.GMean)
		}
	}
	if !strings.Contains(res.Render(), "Choi") {
		t.Error("render incomplete")
	}
}

func TestFig13Shape(t *testing.T) {
	o := tiny()
	o.MaxMixes = 3
	res := Fig13(o)
	if len(res.Ratios) != 3 {
		t.Fatalf("ratios = %d", len(res.Ratios))
	}
	for i := 1; i < len(res.Ratios); i++ {
		if res.Ratios[i] < res.Ratios[i-1] {
			t.Error("ratios not sorted")
		}
	}
	if res.GMeanVsChoi <= 0 || res.GMeanVsIC <= 0 {
		t.Error("non-positive gmeans")
	}
	if !strings.Contains(res.Render(), "gmean vs Choi") {
		t.Error("render incomplete")
	}
}

func TestFig15Breakdown(t *testing.T) {
	o := tiny()
	o.MaxMixes = 2
	res := Fig15(o)
	for _, kind := range []string{"Choi", "Bandit"} {
		f := res.Fractions[kind]
		total := f["stalled"] + f["idle"] + f["running"]
		if total < 0.999 || total > 1.001 {
			t.Errorf("%s states sum to %.3f", kind, total)
		}
		sub := f["ROB full"] + f["IQ full"] + f["LQ full"] + f["SQ full"] + f["RF full"]
		if sub > f["stalled"]+1e-9 {
			t.Errorf("%s per-structure stalls exceed total", kind)
		}
	}
	if !strings.Contains(res.Render(), "running") {
		t.Error("render incomplete")
	}
}

func TestAreaPower(t *testing.T) {
	res := AreaPower()
	if res.Prefetch.StorageBytes >= 100 {
		t.Error("prefetch agent storage >= 100B")
	}
	if res.SMT.Arms != 6 {
		t.Error("SMT agent arms wrong")
	}
	out := res.Render()
	for _, want := range []string{"Pythia", "Bandit", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	o.MaxMixes = 1
	if r := AblationNormalization(o); len(r.Rows) != 2 || r.Rows[0].Value <= 0 {
		t.Errorf("normalization ablation: %+v", r)
	}
	if r := AblationGamma(o); len(r.Rows) != 5 {
		t.Errorf("gamma ablation: %+v", r)
	}
	if r := AblationArms(o); len(r.Rows) != 3 {
		t.Errorf("arms ablation: %+v", r)
	}
	if r := AblationStepRR(o); len(r.Rows) != 4 {
		t.Errorf("step-RR ablation: %+v", r)
	}
}

func TestAblationRRRestartRuns(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	o.Insts = 200_000
	r := AblationRRRestart(o)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Value <= 0 {
			t.Errorf("%s: non-positive sum-IPC", row.Config)
		}
	}
}

func TestExtrasRuns(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	res := Extras(o)
	if res.BOPNorm <= 0 || res.BanditNorm <= 0 || res.MetaNorm <= 0 {
		t.Errorf("non-positive gmeans: %+v", res)
	}
	if len(res.MetaLevels) == 0 {
		t.Error("no meta levels recorded")
	}
	if res.ARPAIPC <= 0 || res.ChoiIPC <= 0 || res.BanditSMTIPC <= 0 {
		t.Errorf("SMT extras non-positive: %+v", res)
	}
	if !strings.Contains(res.Render(), "hierarchical") {
		t.Error("render incomplete")
	}
}

func TestRewardMetricsRuns(t *testing.T) {
	o := tiny()
	o.MaxMixes = 2
	res := RewardMetrics(o)
	if len(res.Modes) != 3 {
		t.Fatalf("modes = %v", res.Modes)
	}
	for i, m := range res.Modes {
		if res.SumIPC[i] <= 0 || res.Weighted[i] <= 0 || res.Harmonic[i] <= 0 {
			t.Errorf("%s: non-positive metrics", m)
		}
		if res.Fairness[i] <= 0 || res.Fairness[i] > 1 {
			t.Errorf("%s: fairness %v outside (0,1]", m, res.Fairness[i])
		}
	}
	if !strings.Contains(res.Render(), "harmonic") {
		t.Error("render incomplete")
	}
}

func TestTuningSweep(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	res := Tuning(o)
	if len(res.Rows) != 18 { // 3 c x 2 gamma x 3 step scales
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Best.GMeanIPC <= 0 {
		t.Error("no best combination")
	}
	found := false
	for _, r := range res.Rows {
		if r.GMeanIPC == res.Best.GMeanIPC {
			found = true
		}
		if r.GMeanIPC <= 0 {
			t.Errorf("%s: non-positive gmean", r.Label())
		}
	}
	if !found {
		t.Error("best not among rows")
	}
	if !strings.Contains(res.Render(), "best:") {
		t.Error("render incomplete")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 19 {
		t.Fatalf("got %d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Desc == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, ok := Find("fig8"); !ok {
		t.Error("Find(fig8) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find accepted unknown id")
	}
}

func TestRunSingleExperimentViaRegistry(t *testing.T) {
	e, ok := Find("areapower")
	if !ok {
		t.Fatal("areapower not registered")
	}
	if out := e.Run(tiny()); !strings.Contains(out, "storage") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestRunWithCSV(t *testing.T) {
	o := tiny()
	o.MaxApps = 1
	text, csv, ok := RunWithCSV("fig10", o)
	if !ok || text == "" {
		t.Fatal("fig10 must have a CSV form")
	}
	if !strings.Contains(csv, "mtps,pythia,bandit") {
		t.Errorf("fig10 CSV header wrong: %q", csv[:min(len(csv), 60)])
	}
	if _, _, ok := RunWithCSV("ablations", o); ok {
		t.Error("ablations should not claim a CSV form")
	}
	if _, _, ok := RunWithCSV("nope", o); ok {
		t.Error("unknown id accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
