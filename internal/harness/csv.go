package harness

import (
	"fmt"

	"microbandit/internal/stats"
)

// This file provides machine-readable CSV alongside the rendered text for
// the tabular experiments, so results can be re-plotted outside the repo
// (mab-report -csvdir writes one .csv per experiment).

// CSV returns the Fig. 2 rows.
func (r Fig2Result) CSV() string {
	t := stats.NewTable("", "app", "top1_frac", "top2_frac")
	for _, row := range r.Rows {
		t.AddFloatRow(row.App, "%.4f", row.Top1Frac, row.Top2Frac)
	}
	t.AddFloatRow("average", "%.4f", r.AvgTop1, r.AvgTop2)
	return t.CSV()
}

// CSV returns the Fig. 5 rows.
func (r Fig5Result) CSV() string {
	t := stats.NewTable("", "mix", "best_policy", "best_delta", "worst_delta")
	for _, row := range r.Rows {
		t.AddRow(row.Mix, row.BestPolicy,
			fmt.Sprintf("%.4f", row.BestDelta), fmt.Sprintf("%.4f", row.WorstDelta))
	}
	return t.CSV()
}

// summaryCSV renders an algorithm-summary table (Tables 8 and 9).
func summaryCSV(order []string, algos map[string]stats.Summary) string {
	t := stats.NewTable("", "algorithm", "min_pct", "max_pct", "gmean_pct")
	for _, name := range order {
		s := algos[name]
		t.AddFloatRow(name, "%.2f", s.Min, s.Max, s.GMean)
	}
	return t.CSV()
}

// CSV returns the Table 8 summary.
func (r Table8Result) CSV() string { return summaryCSV(r.Order, r.Algos) }

// CSV returns the Table 9 summary.
func (r Table9Result) CSV() string { return summaryCSV(r.Order, r.Algos) }

// CSV returns the Fig. 8 / Fig. 11 per-suite matrix.
func (r Fig8Result) CSV() string {
	headers := append([]string{"prefetcher"}, r.Suites...)
	headers = append(headers, "all")
	t := stats.NewTable("", headers...)
	for _, kind := range r.Kinds {
		cells := []string{kind}
		for _, s := range r.Suites {
			cells = append(cells, fmt.Sprintf("%.4f", r.Norm[kind][s]))
		}
		cells = append(cells, fmt.Sprintf("%.4f", r.Norm[kind]["all"]))
		t.AddRow(cells...)
	}
	return t.CSV()
}

// CSV returns the Fig. 9 classification rows.
func (r Fig9Result) CSV() string {
	t := stats.NewTable("", "prefetcher", "llc_misses", "timely", "late", "wrong")
	for _, row := range r.Rows {
		t.AddFloatRow(row.Kind, "%.4f", row.LLCMisses, row.Timely, row.Late, row.Wrong)
	}
	return t.CSV()
}

// CSV returns the Fig. 10 sweep series.
func (r Fig10Result) CSV() string {
	py := stats.Series{Name: "pythia", X: r.MTPS, Y: r.Pythia}
	bd := stats.Series{Name: "bandit", X: r.MTPS, Y: r.Bandit}
	return stats.SeriesCSV("mtps", []stats.Series{py, bd})
}

// CSV returns the Fig. 12 combo rows.
func (r Fig12Result) CSV() string {
	t := stats.NewTable("", "combo", "gmean_norm_ipc")
	for i, k := range r.Kinds {
		t.AddFloatRow(k, "%.4f", r.Norm[i])
	}
	return t.CSV()
}

// CSV returns the Fig. 13 sorted ratio curve.
func (r Fig13Result) CSV() string {
	t := stats.NewTable("", "mix", "bandit_over_choi")
	for i, m := range r.Mixes {
		t.AddFloatRow(m, "%.4f", r.Ratios[i])
	}
	return t.CSV()
}

// CSV returns the Fig. 14 rows.
func (r Fig14Result) CSV() string {
	t := stats.NewTable("", "prefetcher", "homogeneous", "heterogeneous")
	for i, k := range r.Kinds {
		cells := []string{k, fmt.Sprintf("%.4f", r.Norm[i])}
		if len(r.HeteroNorm) > i {
			cells = append(cells, fmt.Sprintf("%.4f", r.HeteroNorm[i]))
		}
		t.AddRow(cells...)
	}
	return t.CSV()
}

// CSV returns the Fig. 15 state fractions.
func (r Fig15Result) CSV() string {
	headers := append([]string{"policy"}, Fig15StateOrder...)
	t := stats.NewTable("", headers...)
	for _, kind := range []string{"Choi", "Bandit"} {
		cells := []string{kind}
		for _, s := range Fig15StateOrder {
			cells = append(cells, fmt.Sprintf("%.4f", r.Fractions[kind][s]))
		}
		t.AddRow(cells...)
	}
	return t.CSV()
}

// RunWithCSV runs a tabular experiment once and returns both its rendered
// text and its CSV. ok is false for experiments without a CSV form (the
// exploration traces, ablation bundles, and the analytic area/power
// model).
func RunWithCSV(id string, o Options) (text, csv string, ok bool) {
	switch id {
	case "fig2":
		r := Fig2(o)
		return r.Render(), r.CSV(), true
	case "fig5":
		r := Fig5(o)
		return r.Render(), r.CSV(), true
	case "table8":
		r := Table8(o)
		return r.Render(), r.CSV(), true
	case "table9":
		r := Table9(o)
		return r.Render(), r.CSV(), true
	case "fig8":
		r := Fig8(o)
		return r.Render(), r.CSV(), true
	case "fig9":
		r := Fig9(o)
		return r.Render(), r.CSV(), true
	case "fig10":
		r := Fig10(o)
		return r.Render(), r.CSV(), true
	case "fig11":
		r := Fig11(o)
		return r.Render(), r.CSV(), true
	case "fig12":
		r := Fig12(o)
		return r.Render(), r.CSV(), true
	case "fig13":
		r := Fig13(o)
		return r.Render(), r.CSV(), true
	case "fig14":
		r := Fig14(o)
		return r.Render(), r.CSV(), true
	case "fig15":
		r := Fig15(o)
		return r.Render(), r.CSV(), true
	case "robust":
		r := Robust(o)
		return r.Render(), r.CSV(), true
	default:
		return "", "", false
	}
}
