package harness

import (
	"fmt"
	"math"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/fault"
	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/prefetch"
	"microbandit/internal/scenario"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// This file is the scenarios experiment: the paper's reusability claim
// — one tiny agent, many microarchitecture decision problems — measured
// directly. Every registered scenario runs its curated workloads under
// (a) the bandit, (b) each static arm, and (c) the bandit again with a
// reward-noise fault layered on top (the robustness column), all
// through the deterministic fan-out engine. The bandit's job, per
// scenario, is to match or beat the per-app best static arm it cannot
// know in advance.

// scnRobustFault is the extra fault of the robustness column: the
// bandit re-run with half-amplitude reward noise, reported like every
// other column so degradation is visible next to the clean bandit.
const scnRobustFault = "noise:0.5"

// scnRobustColumn names the robustness column.
const scnRobustColumn = "bandit+" + scnRobustFault

// ScenarioBlock is one scenario's slice of the result.
type ScenarioBlock struct {
	Name    string
	Desc    string
	Faults  string   // scenario-inherent fault set ("" = none)
	Apps    []string // workload names, row order
	Columns []string // column names, column order; 0 = bandit, last = robustness
	// IPC[ai][ci] is the run's end-to-end IPC; NaN when the run failed.
	IPC [][]float64
	// Gmean[ci] is the column's gmean IPC over the apps that produced
	// a usable measurement.
	Gmean []float64
	// BanditVsBest is gmean(bandit) / gmean(best static column); >1
	// means the learner beat every static arm. NaN when undefined.
	BanditVsBest float64
	// BestStatic names the static column with the highest gmean.
	BestStatic string
}

// ScenariosResult is the scenarios experiment outcome.
type ScenariosResult struct {
	Blocks []ScenarioBlock
}

// Scenarios runs every registered scenario.
func Scenarios(o Options) ScenariosResult {
	res, err := ScenariosWith(o, scenario.Names())
	if err != nil {
		panic(err) // registry names are always valid
	}
	return res
}

// ScenariosWith runs the named scenarios (the CLI's -scenario filter).
// Unknown names return the registry's error listing the valid ones.
func ScenariosWith(o Options, names []string) (ScenariosResult, error) {
	scns := make([]scenario.Scenario, len(names))
	for i, n := range names {
		sc, err := scenario.NewByName(n)
		if err != nil {
			return ScenariosResult{}, err
		}
		scns[i] = sc
	}

	// Per-scenario dimensions, flattened into one deterministic job list.
	type dims struct {
		sc   scenario.Scenario
		apps []trace.App
		cols []scenario.Column
		off  int // first obs slot / result index of this block
	}
	blocks := make([]dims, len(scns))
	total := 0
	for i, sc := range scns {
		d := dims{sc: sc, apps: o.scenarioApps(sc), cols: sc.Columns(), off: total}
		blocks[i] = d
		total += len(d.apps) * (len(d.cols) + 1) // +1: robustness column
	}

	type job struct{ si, ai, ci int } // ci == len(cols) is the robustness column
	jobs := make([]job, 0, total)
	for si, d := range blocks {
		for ai := range d.apps {
			for ci := 0; ci <= len(d.cols); ci++ {
				jobs = append(jobs, job{si, ai, ci})
			}
		}
	}

	ipcs := runJobs(o, jobs, func(j job) float64 {
		d := blocks[j.si]
		col, colName, extra := scenario.Column{}, "", ""
		if j.ci < len(d.cols) {
			col, colName = d.cols[j.ci], d.cols[j.ci].Name
		} else {
			col, colName, extra = d.cols[0], scnRobustColumn, scnRobustFault
		}
		var rec obs.Recorder
		if o.Obs != nil {
			idx := d.off + j.ai*(len(d.cols)+1) + j.ci
			label := fmt.Sprintf("scenario/%s/%s/%s", d.sc.Name(), d.apps[j.ai].Name, colName)
			rec = o.Obs.Slot(idx, label)
		}
		return o.runScenarioCell(d.sc, d.apps[j.ai], col, colName, extra, rec)
	})

	res := ScenariosResult{Blocks: make([]ScenarioBlock, len(blocks))}
	for si, d := range blocks {
		nC := len(d.cols) + 1
		b := ScenarioBlock{
			Name:   d.sc.Name(),
			Desc:   d.sc.Desc(),
			Faults: d.sc.Faults(),
			IPC:    make([][]float64, len(d.apps)),
			Gmean:  make([]float64, nC),
		}
		for _, a := range d.apps {
			b.Apps = append(b.Apps, a.Name)
		}
		for _, c := range d.cols {
			b.Columns = append(b.Columns, c.Name)
		}
		b.Columns = append(b.Columns, scnRobustColumn)
		for ai := range d.apps {
			b.IPC[ai] = make([]float64, nC)
			for ci := 0; ci < nC; ci++ {
				v := ipcs[d.off+ai*nC+ci]
				if !(v > 0) || math.IsInf(v, 0) {
					v = math.NaN() // failed or degenerate run
				}
				b.IPC[ai][ci] = v
			}
		}
		for ci := 0; ci < nC; ci++ {
			vals := make([]float64, 0, len(d.apps))
			for ai := range d.apps {
				if v := b.IPC[ai][ci]; v > 0 {
					vals = append(vals, v)
				}
			}
			b.Gmean[ci] = stats.GeoMean(vals)
			if len(vals) == 0 {
				b.Gmean[ci] = math.NaN()
			}
		}
		// Best static column: highest gmean among columns 1..len(cols)-1
		// (exclude the bandit and the robustness column).
		best, bestIdx := math.Inf(-1), -1
		for ci := 1; ci < len(d.cols); ci++ {
			if g := b.Gmean[ci]; g > best {
				best, bestIdx = g, ci
			}
		}
		b.BanditVsBest = math.NaN()
		if bestIdx >= 0 && best > 0 && b.Gmean[0] > 0 {
			b.BestStatic = b.Columns[bestIdx]
			b.BanditVsBest = b.Gmean[0] / best
		}
		res.Blocks[si] = b
	}
	return res, nil
}

// scenarioApps resolves a scenario's curated workload names against the
// catalog, capped by MaxApps. A bad name is a programming error in the
// scenario definition, not user input: panic.
func (o Options) scenarioApps(sc scenario.Scenario) []trace.App {
	names := sc.Apps()
	if o.MaxApps > 0 && len(names) > o.MaxApps {
		names = names[:o.MaxApps]
	}
	apps := make([]trace.App, len(names))
	for i, n := range names {
		a, err := trace.ByName(n)
		if err != nil {
			panic(fmt.Sprintf("harness: scenario %s: %v", sc.Name(), err))
		}
		apps[i] = a
	}
	return apps
}

// runScenarioCell simulates one (scenario, app, column) cell: wires the
// scenario into a fresh core, builds the column's controller, injects
// the scenario's inherent faults plus the cell's extra fault (the
// robustness column), and returns the end-to-end IPC. The wiring order
// matters and mirrors runPrefetchFaulted: telemetry attaches to the
// inner controller before the fault wrapper (report what the agent
// decided), while the reward probe is installed through the wrapper
// (which must forward it — the seam the fault tests pin).
func (o Options) runScenarioCell(sc scenario.Scenario, app trace.App, col scenario.Column, colName, extraFault string, rec obs.Recorder) float64 {
	spec := sc.Faults()
	if extraFault != "" {
		if spec != "" {
			spec += ","
		}
		spec += extraFault
	}
	fs, err := fault.ParseSet(spec)
	if err != nil {
		panic(fmt.Sprintf("harness: scenario %s fault set %q: %v", sc.Name(), spec, err))
	}

	seed := o.subSeed("scn", sc.Name(), app.Name, colName)
	hier := mem.NewHierarchy(mem.DefaultConfig())
	if bf := fault.Bandwidth(fs, seed); bf != nil {
		hier.DRAM().SetBandwidthFault(bf)
	}
	gen := fault.Generator(o.gen(app.New(seed), seed), fs, seed)
	c := cpu.New(cpu.DefaultConfig(), hier, gen)
	inst := sc.Wire(c, hier, seed)

	inner := col.New(seed)
	every := 0
	if rec != nil {
		every = o.Obs.Every
		obs.Attach(inner, rec, every)
		rec.Record(obs.Event{Kind: obs.KindScenario, Label: sc.Name()})
		for _, s := range fs {
			rec.Record(obs.Event{Kind: obs.KindFault, Label: s.String()})
		}
	}
	ctrl := fault.Controller(inner, fs, seed)
	if inst.Probe != nil {
		if ps, ok := ctrl.(core.ProbeSetter); ok {
			ps.SetRewardProbe(inst.Probe)
		}
	}
	tun := fault.Arms(inst.Tunable, fs, seed)

	pf := inst.Pf
	if pf == nil {
		pf = prefetch.Null{}
	}
	r := cpu.NewRunner(c, pf, ctrl, tun)
	r.StepL2 = o.StepL2
	r.Probe = inst.Probe
	if rec != nil {
		r.Obs = rec
		r.ObsEvery = every
	}
	o.simInsts(r)
	o.noteSim(c)
	ipc := c.IPC()
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindRunEnd, Step: r.Steps(),
			Fields: obs.NewFields().Set(obs.FieldIPC, ipc)})
	}
	return ipc
}

// Render formats one table per scenario plus its summary line.
func (r ScenariosResult) Render() string {
	var sb strings.Builder
	for bi, b := range r.Blocks {
		if bi > 0 {
			sb.WriteString("\n")
		}
		title := fmt.Sprintf("Scenario %s: %s", b.Name, b.Desc)
		if b.Faults != "" {
			title += fmt.Sprintf(" [faults: %s]", b.Faults)
		}
		t := stats.NewTable(title, append([]string{"app"}, b.Columns...)...)
		for ai, app := range b.Apps {
			cells := []string{app}
			for _, v := range b.IPC[ai] {
				cells = append(cells, renderIPC(v))
			}
			t.AddRow(cells...)
		}
		cells := []string{"gmean"}
		for _, g := range b.Gmean {
			cells = append(cells, renderIPC(g))
		}
		t.AddRow(cells...)
		sb.WriteString(t.Render())
		if b.BestStatic != "" && !math.IsNaN(b.BanditVsBest) {
			sb.WriteString(fmt.Sprintf("bandit vs best static: %.3fx (best static: %s)\n",
				b.BanditVsBest, b.BestStatic))
		}
	}
	return sb.String()
}

// renderIPC formats one IPC cell, flagging failed runs.
func renderIPC(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// CSV returns the scenario rows: one line per (scenario, app, column)
// cell, gmean rows with app "gmean", and one summary row per scenario
// (column "bandit_vs_best_static", value the ratio).
func (r ScenariosResult) CSV() string {
	t := stats.NewTable("", "scenario", "app", "column", "ipc")
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.4f", v)
	}
	for _, b := range r.Blocks {
		for ai, app := range b.Apps {
			for ci, col := range b.Columns {
				t.AddRow(b.Name, app, col, cell(b.IPC[ai][ci]))
			}
		}
		for ci, col := range b.Columns {
			t.AddRow(b.Name, "gmean", col, cell(b.Gmean[ci]))
		}
		if b.BestStatic != "" {
			t.AddRow(b.Name, "gmean", "bandit_vs_best_static", cell(b.BanditVsBest))
		}
	}
	return t.CSV()
}
