package harness

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"microbandit/internal/par"
)

// ErrorLog collects per-job failures from the experiment engine so
// runners can render partial results and the CLIs can print an error
// appendix instead of dying with a goroutine trace. It is safe for
// concurrent use; Drain returns failures sorted by job index so the
// appendix is deterministic regardless of completion order.
type ErrorLog struct {
	mu    sync.Mutex
	fails []JobFailure
}

// JobFailure is one failed experiment job.
type JobFailure struct {
	// Job is the failing job's index in its experiment's job list.
	Job int
	// Err is the failure; recovered panics are par.PanicErrors wrapped
	// in par.JobErrors.
	Err error
}

// NewErrorLog returns an empty log.
func NewErrorLog() *ErrorLog { return &ErrorLog{} }

// add records one failure (err is a *par.JobError from the engine).
func (l *ErrorLog) add(err error) {
	job := -1
	var je *par.JobError
	if errors.As(err, &je) {
		job = je.Index
	}
	l.mu.Lock()
	l.fails = append(l.fails, JobFailure{Job: job, Err: err})
	l.mu.Unlock()
}

// Len returns the number of recorded failures.
func (l *ErrorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.fails)
}

// Drain returns the recorded failures sorted by job index and clears the
// log (the report CLI drains once per experiment).
func (l *ErrorLog) Drain() []JobFailure {
	l.mu.Lock()
	out := l.fails
	l.fails = nil
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// RenderFailures formats an error appendix for a drained failure list.
// It returns "" for an empty list.
func RenderFailures(fails []JobFailure) string {
	if len(fails) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "error appendix: %d job(s) failed; results above are partial\n", len(fails))
	for _, f := range fails {
		fmt.Fprintf(&b, "  %v\n", f.Err)
	}
	return b.String()
}
