package harness

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"microbandit/internal/par"
	"microbandit/internal/stats"
)

// ErrorLog collects per-job failures from the experiment engine so
// runners can render partial results and the CLIs can print an error
// appendix instead of dying with a goroutine trace. It is safe for
// concurrent use; Drain returns failures sorted by job index so the
// appendix is deterministic regardless of completion order.
type ErrorLog struct {
	mu    sync.Mutex
	fails []JobFailure
}

// JobFailure is one failed experiment job.
type JobFailure struct {
	// Job is the failing job's index in its experiment's job list.
	Job int
	// Err is the failure; recovered panics are par.PanicErrors wrapped
	// in par.JobErrors.
	Err error
}

// NewErrorLog returns an empty log.
func NewErrorLog() *ErrorLog { return &ErrorLog{} }

// add records one failure (err is a *par.JobError from the engine).
func (l *ErrorLog) add(err error) {
	job := -1
	var je *par.JobError
	if errors.As(err, &je) {
		job = je.Index
	}
	l.mu.Lock()
	l.fails = append(l.fails, JobFailure{Job: job, Err: err})
	l.mu.Unlock()
}

// Len returns the number of recorded failures.
func (l *ErrorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.fails)
}

// Drain returns the recorded failures sorted by job index and clears the
// log (the report CLI drains once per experiment).
func (l *ErrorLog) Drain() []JobFailure {
	l.mu.Lock()
	out := l.fails
	l.fails = nil
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// RenderFailures formats an error appendix for a drained failure list.
// It returns "" for an empty list. The appendix is one failure per line:
// an error whose text embeds newlines (panic values are arbitrary
// strings) is rendered in its quoted Go form so it cannot masquerade as
// additional appendix entries.
func RenderFailures(fails []JobFailure) string {
	if len(fails) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "error appendix: %d job(s) failed; results above are partial\n", len(fails))
	for _, f := range fails {
		msg := f.Err.Error()
		if strings.ContainsAny(msg, "\n\r") {
			msg = fmt.Sprintf("%q", msg)
		}
		fmt.Fprintf(&b, "  %s\n", msg)
	}
	return b.String()
}

// FailuresCSV renders the drained failure list as CSV (job,error), with
// every cell routed through the shared quoting helper so commas and
// newlines in panic messages stay inside their cell.
func FailuresCSV(fails []JobFailure) string {
	var b strings.Builder
	stats.WriteCSVRow(&b, "job", "error")
	for _, f := range fails {
		stats.WriteCSVRow(&b, fmt.Sprintf("%d", f.Job), f.Err.Error())
	}
	return b.String()
}
