package harness

import (
	"fmt"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// The ablations quantify the design choices DESIGN.md calls out: the two
// §4.3 modifications, the longer round-robin bandit step for SMT (§5.3),
// the DUCB forgetting factor, and the arm-set size.

// AblationRow is one configuration's aggregate result.
type AblationRow struct {
	Config string
	Value  float64
}

// AblationResult is a generic named result list.
type AblationResult struct {
	Title  string
	Metric string
	Rows   []AblationRow
}

// Render formats the ablation as a table.
func (r AblationResult) Render() string {
	t := stats.NewTable(r.Title, "config", r.Metric)
	for _, row := range r.Rows {
		t.AddFloatRow(row.Config, "%.4f", row.Value)
	}
	return t.Render()
}

// AblationNormalization compares DUCB with and without the §4.3 reward
// normalization across apps whose absolute IPCs differ widely.
func AblationNormalization(o Options) AblationResult {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()
	run := func(normalize bool) float64 {
		var ratios []float64
		for _, app := range apps {
			best, _ := o.bestStaticPrefetch(app, memCfg)
			if best <= 0 {
				continue
			}
			ctrl := core.MustNew(core.Config{
				Arms:      core.PrefetchArms,
				Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
				Normalize: normalize,
				Seed:      o.subSeed("abl-norm", app.Name),
			})
			res := o.runPrefetchCtrl(app, fmt.Sprintf("norm-%v", normalize), ctrl, memCfg)
			ratios = append(ratios, res.IPC/best)
		}
		return stats.GeoMean(ratios)
	}
	return AblationResult{
		Title:  "Ablation: reward normalization by r_avg (§4.3 mod 1)",
		Metric: "gmean IPC / best static",
		Rows: []AblationRow{
			{Config: "DUCB + normalization", Value: run(true)},
			{Config: "DUCB, raw rewards", Value: run(false)},
		},
	}
}

// AblationRRRestart compares 4-core Bandit with and without the §4.3
// round-robin restart on DRAM-heavy apps, where inter-core interference
// during exploration matters most.
func AblationRRRestart(o Options) AblationResult {
	apps := o.apps(trace.BySuite("Ligra"))
	memCfg := mem.DefaultConfig()
	instsPerCore := o.Insts / 4
	if instsPerCore < 50_000 {
		instsPerCore = 50_000
	}
	run := func(prob float64, coordinated bool) float64 {
		var sums []float64
		for _, app := range apps {
			shared := mem.NewShared(memCfg, 4)
			coord := core.NewCoordinator()
			var runners []*cpu.Runner
			for coreID := 0; coreID < 4; coreID++ {
				seed := o.subSeed("abl-rr", app.Name, fmt.Sprint(coreID),
					fmt.Sprint(prob), fmt.Sprint(coordinated))
				hier := mem.NewCoreHierarchy(memCfg, shared)
				c := cpu.New(cpu.DefaultConfig(), hier, app.New(seed))
				ens := prefetch.NewTable7Ensemble()
				ctrl := core.MustNew(core.Config{
					Arms:          ens.NumArms(),
					Policy:        core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
					Normalize:     true,
					RRRestartProb: prob,
					Seed:          seed,
				})
				if coordinated {
					// §8 future work: serialize sibling exploration.
					coord.Add(ctrl)
				}
				r := cpu.NewRunner(c, ens, ctrl, ens)
				r.StepL2 = o.StepL2
				runners = append(runners, r)
			}
			cpu.RunMultiCore(runners, instsPerCore)
			sums = append(sums, cpu.SumIPC(runners))
		}
		return stats.GeoMean(sums)
	}
	return AblationResult{
		Title:  "Ablation: round-robin restart under 4-core interference (§4.3 mod 2 + §8 coordination)",
		Metric: "gmean sum-IPC",
		Rows: []AblationRow{
			{Config: "rr_restart_prob = 0", Value: run(0, false)},
			{Config: "rr_restart_prob = 0.001", Value: run(core.RRRestartProb4Core, false)},
			{Config: "rr_restart_prob = 0.01", Value: run(0.01, false)},
			{Config: "rr_restart_prob = 0.01, coordinated", Value: run(0.01, true)},
		},
	}
}

// AblationStepRR sweeps the SMT initial round-robin bandit step length
// (§5.3: the longer step gives Hill Climbing time to converge per arm).
func AblationStepRR(o Options) AblationResult {
	mixes := o.mixes(smtwork.TuneMixes())
	run := func(rrEpochs int) float64 {
		var ipcs []float64
		for _, mix := range mixes {
			seed := o.subSeed("abl-step", mix.Name(), fmt.Sprint(rrEpochs))
			sim := simsmt.NewSim(mix.A, mix.B, seed)
			r := simsmt.NewRunner(sim, simsmt.NewBanditAgent(seed), simsmt.Table1Arms(), true)
			r.EpochLen = o.EpochLen
			r.RREpochs = rrEpochs
			r.MainEpochs = o.MainEpochs
			r.RunCycles(o.SMTCycles)
			ipcs = append(ipcs, sim.SumIPC())
		}
		return stats.GeoMean(ipcs)
	}
	var rows []AblationRow
	for _, rr := range []int{1, 2, o.RREpochs, 4 * o.RREpochs} {
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("bandit step-RR = %d epochs", rr),
			Value:  run(rr),
		})
	}
	return AblationResult{
		Title:  "Ablation: initial round-robin bandit step length, SMT (§5.3)",
		Metric: "gmean sum-IPC",
		Rows:   rows,
	}
}

// AblationGamma sweeps the DUCB forgetting factor on the phase-changing
// mcf trace (the Fig. 7 adaptation scenario). γ = 1 is plain UCB.
func AblationGamma(o Options) AblationResult {
	app, err := trace.ByName("mcf06")
	if err != nil {
		return AblationResult{Title: "Ablation: gamma (mcf unavailable)"}
	}
	memCfg := mem.DefaultConfig()
	run := func(gamma float64) float64 {
		var p core.Policy
		if gamma >= 1 {
			p = core.NewUCB(core.PrefetchC)
		} else {
			p = core.NewDUCB(core.PrefetchC, gamma)
		}
		ctrl := core.MustNew(core.Config{
			Arms: core.PrefetchArms, Policy: p, Normalize: true,
			Seed: o.subSeed("abl-gamma", fmt.Sprint(gamma)),
		})
		return o.runPrefetchCtrl(app, fmt.Sprintf("g%.4f", gamma), ctrl, memCfg).IPC
	}
	var rows []AblationRow
	for _, g := range []float64{0.9, 0.99, 0.999, 0.9999, 1.0} {
		label := fmt.Sprintf("gamma = %.4f", g)
		if g >= 1 {
			label = "gamma = 1 (UCB)"
		}
		rows = append(rows, AblationRow{Config: label, Value: run(g)})
	}
	return AblationResult{
		Title:  "Ablation: DUCB forgetting factor on the phase-changing mcf trace",
		Metric: "IPC",
		Rows:   rows,
	}
}

// AblationArms compares the full Table 7 arm set against pruned subsets.
func AblationArms(o Options) AblationResult {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()
	full := prefetch.Table7Arms()
	sets := []struct {
		name string
		arms []prefetch.ArmConfig
	}{
		{"11 arms (Table 7)", full},
		{"3 arms (off / stream-4 / max)", []prefetch.ArmConfig{full[1], full[0], full[10]}},
		{"2 arms (off / stream-4)", []prefetch.ArmConfig{full[1], full[0]}},
	}
	var rows []AblationRow
	for _, set := range sets {
		var ipcs []float64
		for _, app := range apps {
			seed := o.subSeed("abl-arms", app.Name, set.name)
			hier := mem.NewHierarchy(memCfg)
			c := cpu.New(cpu.DefaultConfig(), hier, app.New(seed))
			ens := prefetch.NewEnsemble(set.arms)
			ctrl := core.MustNew(core.Config{
				Arms:      ens.NumArms(),
				Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
				Normalize: true,
				Seed:      seed,
			})
			r := cpu.NewRunner(c, ens, ctrl, ens)
			r.StepL2 = o.StepL2
			r.Run(o.Insts)
			ipcs = append(ipcs, c.IPC())
		}
		rows = append(rows, AblationRow{Config: set.name, Value: stats.GeoMean(ipcs)})
	}
	return AblationResult{
		Title:  "Ablation: arm-set size (Table 7 vs pruned subsets)",
		Metric: "gmean IPC",
		Rows:   rows,
	}
}

// AblationTargetLevel compares the Table 7 arm set against the §9
// extended set whose extra arms fill the LLC only, on big-working-set
// apps where L2 pollution costs the most.
func AblationTargetLevel(o Options) AblationResult {
	apps := append(o.apps(trace.BySuite("Ligra")), o.apps(trace.BySuite("CloudSuite"))...)
	memCfg := mem.DefaultConfig()
	run := func(extended bool) float64 {
		var ipcs []float64
		for _, app := range apps {
			seed := o.subSeed("abl-target", app.Name, fmt.Sprint(extended))
			hier := mem.NewHierarchy(memCfg)
			c := cpu.New(cpu.DefaultConfig(), hier, app.New(seed))
			var tun prefetch.Tunable
			if extended {
				tun = prefetch.NewExtendedEnsemble()
			} else {
				tun = prefetch.NewTable7Ensemble()
			}
			ctrl := core.MustNew(core.Config{
				Arms:      tun.NumArms(),
				Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
				Normalize: true,
				Seed:      seed,
			})
			r := cpu.NewRunner(c, tun, ctrl, tun)
			r.StepL2 = o.StepL2
			r.Run(o.Insts)
			ipcs = append(ipcs, c.IPC())
		}
		return stats.GeoMean(ipcs)
	}
	return AblationResult{
		Title:  "Ablation: §9 target-cache-level arms (LLC-only fills) on big-footprint apps",
		Metric: "gmean IPC",
		Rows: []AblationRow{
			{Config: "11 arms, L2 fills", Value: run(false)},
			{Config: "14 arms incl. LLC-only fills", Value: run(true)},
		},
	}
}

// RenderAblations runs and renders every ablation.
func RenderAblations(o Options) string {
	var b strings.Builder
	for _, r := range []AblationResult{
		AblationNormalization(o),
		AblationRRRestart(o),
		AblationStepRR(o),
		AblationGamma(o),
		AblationArms(o),
		AblationTargetLevel(o),
	} {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String()
}
