package harness

import (
	"fmt"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// The ablations quantify the design choices DESIGN.md calls out: the two
// §4.3 modifications, the longer round-robin bandit step for SMT (§5.3),
// the DUCB forgetting factor, and the arm-set size.

// AblationRow is one configuration's aggregate result.
type AblationRow struct {
	Config string
	Value  float64
}

// AblationResult is a generic named result list.
type AblationResult struct {
	Title  string
	Metric string
	Rows   []AblationRow
}

// Render formats the ablation as a table.
func (r AblationResult) Render() string {
	t := stats.NewTable(r.Title, "config", r.Metric)
	for _, row := range r.Rows {
		t.AddFloatRow(row.Config, "%.4f", row.Value)
	}
	return t.Render()
}

// AblationNormalization compares DUCB with and without the §4.3 reward
// normalization across apps whose absolute IPCs differ widely.
func AblationNormalization(o Options) AblationResult {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()
	// The static oracle ignores Normalize, so one sweep serves both rows.
	best, _ := o.bestStaticPrefetchAll(apps, memCfg)

	variants := []bool{true, false}
	type job struct{ varIdx, appIdx int }
	jobs := make([]job, 0, len(variants)*len(apps))
	for vi := range variants {
		for ai := range apps {
			jobs = append(jobs, job{vi, ai})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		app := apps[j.appIdx]
		normalize := variants[j.varIdx]
		ctrl := core.MustNew(core.Config{
			Arms:      core.PrefetchArms,
			Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: normalize,
			Seed:      o.subSeed("abl-norm", app.Name),
		})
		return o.runPrefetchCtrl(app, fmt.Sprintf("norm-%v", normalize), ctrl, memCfg).IPC
	})

	gmean := func(vi int) float64 {
		ratios := make([]float64, 0, len(apps))
		for ai := range apps {
			if best[ai] <= 0 {
				continue
			}
			ratios = append(ratios, ipcs[vi*len(apps)+ai]/best[ai])
		}
		return stats.GeoMean(ratios)
	}
	return AblationResult{
		Title:  "Ablation: reward normalization by r_avg (§4.3 mod 1)",
		Metric: "gmean IPC / best static",
		Rows: []AblationRow{
			{Config: "DUCB + normalization", Value: gmean(0)},
			{Config: "DUCB, raw rewards", Value: gmean(1)},
		},
	}
}

// AblationRRRestart compares 4-core Bandit with and without the §4.3
// round-robin restart on DRAM-heavy apps, where inter-core interference
// during exploration matters most.
func AblationRRRestart(o Options) AblationResult {
	apps := o.apps(trace.BySuite("Ligra"))
	memCfg := mem.DefaultConfig()
	instsPerCore := o.Insts / 4
	if instsPerCore < 50_000 {
		instsPerCore = 50_000
	}
	// One job is one full 4-core simulation: its cores share an LLC/DRAM
	// pool (and possibly a Coordinator), so they stay on one goroutine.
	run4 := func(app trace.App, prob float64, coordinated bool) float64 {
		shared := mem.NewShared(memCfg, 4)
		coord := core.NewCoordinator()
		runners := make([]*cpu.Runner, 0, 4)
		for coreID := 0; coreID < 4; coreID++ {
			seed := o.subSeed("abl-rr", app.Name, fmt.Sprint(coreID),
				fmt.Sprint(prob), fmt.Sprint(coordinated))
			hier := mem.NewCoreHierarchy(memCfg, shared)
			c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
			ens := prefetch.NewTable7Ensemble()
			ctrl := core.MustNew(core.Config{
				Arms:          ens.NumArms(),
				Policy:        core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
				Normalize:     true,
				RRRestartProb: prob,
				Seed:          seed,
			})
			if coordinated {
				// §8 future work: serialize sibling exploration.
				coord.Add(ctrl)
			}
			r := cpu.NewRunner(c, ens, ctrl, ens)
			r.StepL2 = o.StepL2
			runners = append(runners, r)
		}
		cpu.RunMultiCore(runners, instsPerCore)
		return cpu.SumIPC(runners)
	}

	configs := []struct {
		label       string
		prob        float64
		coordinated bool
	}{
		{"rr_restart_prob = 0", 0, false},
		{"rr_restart_prob = 0.001", core.RRRestartProb4Core, false},
		{"rr_restart_prob = 0.01", 0.01, false},
		{"rr_restart_prob = 0.01, coordinated", 0.01, true},
	}
	type job struct{ cfgIdx, appIdx int }
	jobs := make([]job, 0, len(configs)*len(apps))
	for ci := range configs {
		for ai := range apps {
			jobs = append(jobs, job{ci, ai})
		}
	}
	sums := runJobs(o, jobs, func(j job) float64 {
		cfg := configs[j.cfgIdx]
		return run4(apps[j.appIdx], cfg.prob, cfg.coordinated)
	})

	rows := make([]AblationRow, 0, len(configs))
	for ci, cfg := range configs {
		rows = append(rows, AblationRow{
			Config: cfg.label,
			Value:  stats.GeoMean(sums[ci*len(apps) : (ci+1)*len(apps)]),
		})
	}
	return AblationResult{
		Title:  "Ablation: round-robin restart under 4-core interference (§4.3 mod 2 + §8 coordination)",
		Metric: "gmean sum-IPC",
		Rows:   rows,
	}
}

// AblationStepRR sweeps the SMT initial round-robin bandit step length
// (§5.3: the longer step gives Hill Climbing time to converge per arm).
func AblationStepRR(o Options) AblationResult {
	mixes := o.mixes(smtwork.TuneMixes())
	rrs := []int{1, 2, o.RREpochs, 4 * o.RREpochs}

	type job struct{ rrIdx, mixIdx int }
	jobs := make([]job, 0, len(rrs)*len(mixes))
	for ri := range rrs {
		for mi := range mixes {
			jobs = append(jobs, job{ri, mi})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		mix := mixes[j.mixIdx]
		rrEpochs := rrs[j.rrIdx]
		seed := o.subSeed("abl-step", mix.Name(), fmt.Sprint(rrEpochs))
		sim := simsmt.NewSim(mix.A, mix.B, seed)
		r := simsmt.NewRunner(sim, simsmt.NewBanditAgent(seed), simsmt.Table1Arms(), true)
		r.EpochLen = o.EpochLen
		r.RREpochs = rrEpochs
		r.MainEpochs = o.MainEpochs
		o.simCycles(r)
		return sim.SumIPC()
	})

	rows := make([]AblationRow, 0, len(rrs))
	for ri, rr := range rrs {
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("bandit step-RR = %d epochs", rr),
			Value:  stats.GeoMean(ipcs[ri*len(mixes) : (ri+1)*len(mixes)]),
		})
	}
	return AblationResult{
		Title:  "Ablation: initial round-robin bandit step length, SMT (§5.3)",
		Metric: "gmean sum-IPC",
		Rows:   rows,
	}
}

// AblationGamma sweeps the DUCB forgetting factor on the phase-changing
// mcf trace (the Fig. 7 adaptation scenario). γ = 1 is plain UCB.
func AblationGamma(o Options) AblationResult {
	app, err := trace.ByName("mcf06")
	if err != nil {
		return AblationResult{Title: "Ablation: gamma (mcf unavailable)"}
	}
	memCfg := mem.DefaultConfig()
	gammas := []float64{0.9, 0.99, 0.999, 0.9999, 1.0}
	ipcs := runJobs(o, gammas, func(gamma float64) float64 {
		var p core.Policy
		if gamma >= 1 {
			p = core.NewUCB(core.PrefetchC)
		} else {
			p = core.NewDUCB(core.PrefetchC, gamma)
		}
		ctrl := core.MustNew(core.Config{
			Arms: core.PrefetchArms, Policy: p, Normalize: true,
			Seed: o.subSeed("abl-gamma", fmt.Sprint(gamma)),
		})
		return o.runPrefetchCtrl(app, fmt.Sprintf("g%.4f", gamma), ctrl, memCfg).IPC
	})

	rows := make([]AblationRow, 0, len(gammas))
	for gi, g := range gammas {
		label := fmt.Sprintf("gamma = %.4f", g)
		if g >= 1 {
			label = "gamma = 1 (UCB)"
		}
		rows = append(rows, AblationRow{Config: label, Value: ipcs[gi]})
	}
	return AblationResult{
		Title:  "Ablation: DUCB forgetting factor on the phase-changing mcf trace",
		Metric: "IPC",
		Rows:   rows,
	}
}

// AblationArms compares the full Table 7 arm set against pruned subsets.
func AblationArms(o Options) AblationResult {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()
	full := prefetch.Table7Arms()
	sets := []struct {
		name string
		arms []prefetch.ArmConfig
	}{
		{"11 arms (Table 7)", full},
		{"3 arms (off / stream-4 / max)", []prefetch.ArmConfig{full[1], full[0], full[10]}},
		{"2 arms (off / stream-4)", []prefetch.ArmConfig{full[1], full[0]}},
	}

	type job struct{ setIdx, appIdx int }
	jobs := make([]job, 0, len(sets)*len(apps))
	for si := range sets {
		for ai := range apps {
			jobs = append(jobs, job{si, ai})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		app := apps[j.appIdx]
		set := sets[j.setIdx]
		seed := o.subSeed("abl-arms", app.Name, set.name)
		hier := mem.NewHierarchy(memCfg)
		c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
		ens := prefetch.NewEnsemble(set.arms)
		ctrl := core.MustNew(core.Config{
			Arms:      ens.NumArms(),
			Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: true,
			Seed:      seed,
		})
		r := cpu.NewRunner(c, ens, ctrl, ens)
		r.StepL2 = o.StepL2
		o.simInsts(r)
		o.noteSim(c)
		return c.IPC()
	})

	rows := make([]AblationRow, 0, len(sets))
	for si, set := range sets {
		rows = append(rows, AblationRow{
			Config: set.name,
			Value:  stats.GeoMean(ipcs[si*len(apps) : (si+1)*len(apps)]),
		})
	}
	return AblationResult{
		Title:  "Ablation: arm-set size (Table 7 vs pruned subsets)",
		Metric: "gmean IPC",
		Rows:   rows,
	}
}

// AblationTargetLevel compares the Table 7 arm set against the §9
// extended set whose extra arms fill the LLC only, on big-working-set
// apps where L2 pollution costs the most.
func AblationTargetLevel(o Options) AblationResult {
	apps := append(o.apps(trace.BySuite("Ligra")), o.apps(trace.BySuite("CloudSuite"))...)
	memCfg := mem.DefaultConfig()

	variants := []bool{false, true}
	type job struct{ varIdx, appIdx int }
	jobs := make([]job, 0, len(variants)*len(apps))
	for vi := range variants {
		for ai := range apps {
			jobs = append(jobs, job{vi, ai})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		app := apps[j.appIdx]
		extended := variants[j.varIdx]
		seed := o.subSeed("abl-target", app.Name, fmt.Sprint(extended))
		hier := mem.NewHierarchy(memCfg)
		c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
		var tun prefetch.Tunable
		if extended {
			tun = prefetch.NewExtendedEnsemble()
		} else {
			tun = prefetch.NewTable7Ensemble()
		}
		ctrl := core.MustNew(core.Config{
			Arms:      tun.NumArms(),
			Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
			Normalize: true,
			Seed:      seed,
		})
		r := cpu.NewRunner(c, tun, ctrl, tun)
		r.StepL2 = o.StepL2
		o.simInsts(r)
		o.noteSim(c)
		return c.IPC()
	})

	gmean := func(vi int) float64 {
		return stats.GeoMean(ipcs[vi*len(apps) : (vi+1)*len(apps)])
	}
	return AblationResult{
		Title:  "Ablation: §9 target-cache-level arms (LLC-only fills) on big-footprint apps",
		Metric: "gmean IPC",
		Rows: []AblationRow{
			{Config: "11 arms, L2 fills", Value: gmean(0)},
			{Config: "14 arms incl. LLC-only fills", Value: gmean(1)},
		},
	}
}

// RenderAblations runs and renders every ablation. The ablations run one
// after another — each fans its own runs out through the worker pool, so
// nesting another pool here would only oversubscribe it.
func RenderAblations(o Options) string {
	var b strings.Builder
	for _, r := range []AblationResult{
		AblationNormalization(o),
		AblationRRRestart(o),
		AblationStepRR(o),
		AblationGamma(o),
		AblationArms(o),
		AblationTargetLevel(o),
	} {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String()
}
