// Package harness wires the substrates into the paper's experiments: one
// runner per table and figure of the motivation and evaluation sections
// (see DESIGN.md's per-experiment index), plus the ablations DESIGN.md
// calls out. Each experiment returns structured results and renders the
// same rows/series the paper reports.
//
// Simulation budgets are scaled presets rather than the paper's 1 B
// instructions: Smoke (tests/benches), Quick (default CLI), and Full
// (longer CLI runs). All time constants scale together — bandit steps,
// Hill Climbing epochs, and phase lengths keep their ratios — so the
// learning dynamics are preserved at every preset (EXPERIMENTS.md
// documents the mapping).
package harness

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/obs"
	"microbandit/internal/par"
	"microbandit/internal/prefetch"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/trace"
)

// Options sizes an experiment run.
type Options struct {
	// Insts is the per-run instruction budget for prefetching
	// experiments.
	Insts int64
	// StepL2 is the prefetching bandit step in L2 demand accesses.
	StepL2 int
	// MaxApps caps the number of applications per suite (0 = all).
	MaxApps int

	// SMTCycles is the per-run cycle budget for SMT experiments.
	SMTCycles int64
	// EpochLen is the Hill Climbing epoch length in cycles.
	EpochLen int64
	// RREpochs and MainEpochs are the SMT bandit step lengths.
	RREpochs, MainEpochs int
	// MaxMixes caps the number of 2-thread mixes (0 = all).
	MaxMixes int

	// Seed is the base seed; every run derives a stable sub-seed.
	Seed uint64

	// Workers bounds the experiment engine's worker pool: independent
	// simulation runs fan out across this many goroutines. 0 (the
	// default) means runtime.GOMAXPROCS(0); 1 forces serial execution.
	// Results are assembled in input order, so rendered output is
	// byte-identical at every worker count.
	Workers int

	// Errs, when non-nil, collects failed jobs (including recovered
	// panics) so experiments render partial results and the CLI appends
	// an error appendix. When nil, a failed job panics on the
	// coordinating goroutine with full job attribution — never from
	// inside a worker.
	Errs *ErrorLog

	// Obs, when non-nil, collects telemetry from telemetry-capable
	// experiments (currently RobustWith): every run claims the
	// Collector slot matching its job index, so the assembled event
	// stream is byte-identical at every Workers count. The Collector's
	// Every field sets the snapshot/interval cadence in bandit steps.
	Obs *obs.Collector

	// Ctx, when non-nil, cancels the experiment engine cooperatively:
	// once done, in-flight simulations stop at their next chunk or epoch
	// boundary and report the statistics they accumulated, unstarted
	// jobs land in Errs as cancellations, and the experiment renders
	// partial results. Nil means run to completion.
	Ctx context.Context

	// ChunkCache, when non-nil, is shared across the experiment's runs:
	// trace-generator output is memoized at chunk granularity, so sweep
	// points simulating the same (generator, seed) trace replay stored
	// slabs instead of regenerating them. Replay is bit-identical and
	// correctness never depends on residency, so every output is
	// byte-identical with and without the cache.
	ChunkCache *trace.ChunkCache

	// SimCounters, when non-nil, accumulates simulator-effectiveness
	// totals (instructions simulated, instructions fast-forwarded,
	// chunk-cache hits/misses) across the experiment's prefetching runs;
	// the CI bench matrix reports them per vCPU count.
	SimCounters *SimCounters
}

// SimCounters aggregates simulator-effectiveness counters across an
// experiment's runs. Safe for concurrent use: runs fan out across the
// worker pool.
type SimCounters struct {
	Insts  atomic.Int64 // instructions simulated
	FF     atomic.Int64 // instructions advanced by fast-forward spans
	Hits   atomic.Int64 // chunk-cache hits
	Misses atomic.Int64 // chunk-cache misses
}

// FFCoverage returns the fraction of simulated instructions advanced by
// the steady-state fast-forward pass.
func (s *SimCounters) FFCoverage() float64 {
	if insts := s.Insts.Load(); insts > 0 {
		return float64(s.FF.Load()) / float64(insts)
	}
	return 0
}

// HitRate returns the chunk-cache hit rate over the accumulated runs, or
// 0 before any chunk traffic.
func (s *SimCounters) HitRate() float64 {
	h, m := s.Hits.Load(), s.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// gen wraps a freshly built trace generator in the shared chunk cache
// when one is configured. seed must be the seed the generator was built
// with: the cache key is the generator's name plus that seed —
// everything a catalog stream is a function of.
func (o Options) gen(g trace.Generator, seed uint64) trace.Generator {
	if o.ChunkCache == nil {
		return g
	}
	return o.ChunkCache.Source(fmt.Sprintf("%s:%x", g.Name(), seed), g)
}

// noteSim folds a finished run's simulator-effectiveness counters into
// SimCounters, when configured.
func (o Options) noteSim(c *cpu.Core) {
	if o.SimCounters == nil {
		return
	}
	o.SimCounters.Insts.Add(c.Insts())
	o.SimCounters.FF.Add(c.FFInsts())
	h, m := c.ChunkCacheStats()
	o.SimCounters.Hits.Add(h)
	o.SimCounters.Misses.Add(m)
}

// ctx resolves the engine context for simulation runners.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// simInsts drives one prefetching runner for the option's instruction
// budget under the engine context; on cancellation the runner's partial
// statistics stay valid.
func (o Options) simInsts(r *cpu.Runner) { _ = r.RunCtx(o.ctx(), o.Insts) }

// cycleRunner is any SMT-side runner with cancellable cycle driving
// (simsmt.Runner, simsmt.ARPARunner).
type cycleRunner interface {
	RunCyclesCtx(ctx context.Context, n int64) error
}

// simCycles drives one SMT runner for the option's cycle budget under
// the engine context.
func (o Options) simCycles(r cycleRunner) { _ = r.RunCyclesCtx(o.ctx(), o.SMTCycles) }

// workers resolves the pool size for runJobs.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return par.DefaultWorkers()
}

// runJobs fans an experiment's independent runs across the option's
// worker pool, returning results in input order. Every job must derive
// its own seed (Options.subSeed) and construct all simulation state
// locally; nothing may be shared across jobs.
//
// Jobs run with panic recovery: a panicking job yields its zero-valued
// result slot and is recorded in Options.Errs (or, with no log
// installed, re-panicked once all jobs finish — with the job index and
// original panic value, from the coordinating goroutine). Sibling jobs
// always run to completion, so experiments degrade to partial results
// instead of taking the whole engine down.
func runJobs[J, R any](o Options, jobs []J, fn func(J) R) []R {
	var results []R
	var errs []error
	if o.Ctx != nil {
		// Cancellable engine: once Ctx is done, running jobs finish early
		// (their simulators observe the same context) and unstarted jobs
		// come back as cancellation errors instead of running.
		results, errs = par.RunCtx(o.Ctx, par.CtxOpts{Workers: o.workers()}, jobs,
			func(_ context.Context, j J) (R, error) {
				return fn(j), nil
			})
	} else {
		results, errs = par.RunErr(o.workers(), jobs, func(j J) (R, error) {
			return fn(j), nil
		})
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		if o.Errs != nil {
			o.Errs.add(err)
			continue
		}
		panic(err)
	}
	return results
}

// Smoke returns the smallest preset: seconds-scale, used by unit tests
// and the benchmark harness.
func Smoke() Options {
	return Options{
		Insts: 300_000, StepL2: 200, MaxApps: 2,
		SMTCycles: 400_000, EpochLen: 4 * 1024, RREpochs: 4, MainEpochs: 2,
		MaxMixes: 3, Seed: 1,
	}
}

// Quick returns the default CLI preset: minutes-scale.
func Quick() Options {
	return Options{
		Insts: 1_500_000, StepL2: 500, MaxApps: 4,
		SMTCycles: 1_500_000, EpochLen: 8 * 1024, RREpochs: 8, MainEpochs: 2,
		MaxMixes: 12, Seed: 1,
	}
}

// Full returns the large preset: tens of minutes, full app/mix coverage.
func Full() Options {
	return Options{
		Insts: 4_000_000, StepL2: 1000, MaxApps: 0,
		SMTCycles: 3_000_000, EpochLen: 16 * 1024, RREpochs: 16, MainEpochs: 2,
		MaxMixes: 0, Seed: 1,
	}
}

// apps returns the experiment's application list under the MaxApps cap,
// preserving suite balance.
func (o Options) apps(all []trace.App) []trace.App {
	if o.MaxApps <= 0 {
		return all
	}
	perSuite := map[string]int{}
	var out []trace.App
	for _, a := range all {
		if perSuite[a.Suite] < o.MaxApps {
			out = append(out, a)
			perSuite[a.Suite]++
		}
	}
	return out
}

// mixes returns the experiment's mix list under the MaxMixes cap, spread
// evenly across the full list so heterogeneity is preserved.
func (o Options) mixes(all []smtwork.Mix) []smtwork.Mix {
	if o.MaxMixes <= 0 || o.MaxMixes >= len(all) {
		return all
	}
	out := make([]smtwork.Mix, 0, o.MaxMixes)
	stride := float64(len(all)) / float64(o.MaxMixes)
	for i := 0; i < o.MaxMixes; i++ {
		out = append(out, all[int(float64(i)*stride)])
	}
	return out
}

// subSeed derives a stable per-run seed. A separator byte is folded in
// after every part so distinct part lists hash distinctly
// (subSeed("ab","c") != subSeed("a","bc")).
func (o Options) subSeed(parts ...string) uint64 {
	h := o.Seed*0x9e3779b97f4a7c15 + 0x1234
	for _, p := range parts {
		for _, c := range []byte(p) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		h = (h ^ 0x1f) * 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------
// Prefetching machinery

// PfKind names a prefetcher configuration used across experiments.
type PfKind string

// Prefetcher configurations.
const (
	PfNone   PfKind = "NoPrefetch"
	PfStride PfKind = "Stride"
	PfBingo  PfKind = "Bingo"
	PfMLOP   PfKind = "MLOP"
	PfPythia PfKind = "Pythia"
	PfBandit PfKind = "Bandit"
)

// PrefetchRun is one (app, configuration) measurement.
type PrefetchRun struct {
	App   string
	Suite string
	Kind  string
	IPC   float64
	Stats mem.Stats
	Class mem.Classification
}

// banditController builds the paper's prefetching Bandit (DUCB, Table 6).
func banditController(seed uint64, arms int) core.Controller {
	return core.MustNew(core.Config{
		Arms:      arms,
		Policy:    core.NewDUCB(core.PrefetchC, core.PrefetchGamma),
		Normalize: true,
		Seed:      seed,
	})
}

// pfSetup instantiates a prefetcher configuration for one run.
func pfSetup(kind PfKind, seed uint64) (l2 prefetch.Prefetcher, ctrl core.Controller, tun prefetch.Tunable) {
	switch kind {
	case PfNone:
		return prefetch.Null{}, nil, nil
	case PfStride:
		return prefetch.NewIPStride(64, 4), nil, nil
	case PfBingo:
		return prefetch.NewBingo(64), nil, nil
	case PfMLOP:
		return prefetch.NewMLOP(), nil, nil
	case PfPythia:
		return prefetch.NewPythia(seed), nil, nil
	case PfBandit:
		ens := prefetch.NewTable7Ensemble()
		return ens, banditController(seed, ens.NumArms()), ens
	default:
		panic(fmt.Sprintf("harness: unknown prefetcher kind %q", kind))
	}
}

// runPrefetch simulates one app under one configuration.
func (o Options) runPrefetch(app trace.App, kind PfKind, memCfg mem.Config) PrefetchRun {
	seed := o.subSeed("pf", app.Name, string(kind))
	hier := mem.NewHierarchy(memCfg)
	c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
	l2, ctrl, tun := pfSetup(kind, seed)
	r := cpu.NewRunner(c, l2, ctrl, tun)
	r.StepL2 = o.StepL2
	o.simInsts(r)
	o.noteSim(c)
	return PrefetchRun{
		App: app.Name, Suite: app.Suite, Kind: string(kind),
		IPC: c.IPC(), Stats: hier.Stats(), Class: hier.Classify(),
	}
}

// runPrefetchCtrl simulates one app with the Table 7 ensemble under an
// arbitrary controller (bandit algorithm comparisons, best-static oracle).
func (o Options) runPrefetchCtrl(app trace.App, name string, ctrl core.Controller, memCfg mem.Config) PrefetchRun {
	seed := o.subSeed("pfctrl", app.Name, name)
	hier := mem.NewHierarchy(memCfg)
	c := cpu.New(cpu.DefaultConfig(), hier, o.gen(app.New(seed), seed))
	ens := prefetch.NewTable7Ensemble()
	r := cpu.NewRunner(c, ens, ctrl, ens)
	r.StepL2 = o.StepL2
	o.simInsts(r)
	o.noteSim(c)
	return PrefetchRun{
		App: app.Name, Suite: app.Suite, Kind: name,
		IPC: c.IPC(), Stats: hier.Stats(), Class: hier.Classify(),
	}
}

// ---------------------------------------------------------------------
// SMT machinery

// SMTRun is one (mix, configuration) measurement.
type SMTRun struct {
	Mix    string
	Kind   string
	SumIPC float64
	Rename simsmt.RenameStats
}

// runSMTFixed simulates a mix under a fixed policy (+ Hill Climbing).
func (o Options) runSMTFixed(mix smtwork.Mix, kind string, policy simsmt.Policy, hc bool) SMTRun {
	seed := o.subSeed("smt", mix.Name(), kind)
	sim := simsmt.NewSim(mix.A, mix.B, seed)
	r := simsmt.NewFixedRunner(sim, policy, hc)
	r.EpochLen = o.EpochLen
	o.simCycles(r)
	return SMTRun{Mix: mix.Name(), Kind: kind, SumIPC: sim.SumIPC(), Rename: sim.RenameStats()}
}

// runSMTCtrl simulates a mix with a controller over the Table 1 arms.
func (o Options) runSMTCtrl(mix smtwork.Mix, kind string, ctrl core.Controller) SMTRun {
	seed := o.subSeed("smtctrl", mix.Name(), kind)
	sim := simsmt.NewSim(mix.A, mix.B, seed)
	r := simsmt.NewRunner(sim, ctrl, simsmt.Table1Arms(), true)
	r.EpochLen = o.EpochLen
	r.RREpochs = o.RREpochs
	r.MainEpochs = o.MainEpochs
	o.simCycles(r)
	return SMTRun{Mix: mix.Name(), Kind: kind, SumIPC: sim.SumIPC(), Rename: sim.RenameStats()}
}

// banditAlgoOrder lists the banditAlgorithms keys in the papers' column
// order; parallel runners iterate this instead of the map so job lists
// are deterministic.
var banditAlgoOrder = []string{"Single", "Periodic", "eps-Greedy", "UCB", "DUCB"}

// smtBanditPolicies builds the per-algorithm controllers compared in
// Table 9 (and Table 8 for prefetching, with the prefetch
// hyperparameters).
func banditAlgorithms(seed uint64, arms int, smt bool) map[string]func() core.Controller {
	c, gamma := core.PrefetchC, core.PrefetchGamma
	if smt {
		c, gamma = core.SMTC, core.SMTGamma
	}
	mk := func(p func() core.Policy) func() core.Controller {
		return func() core.Controller {
			return core.MustNew(core.Config{
				Arms: arms, Policy: p(), Normalize: true, Seed: seed,
			})
		}
	}
	return map[string]func() core.Controller{
		"Single":     mk(func() core.Policy { return core.NewSingle() }),
		"Periodic":   mk(func() core.Policy { return core.NewPeriodic(8, 4) }),
		"eps-Greedy": mk(func() core.Policy { return core.NewEpsilonGreedy(0.05) }),
		"UCB":        mk(func() core.Policy { return core.NewUCB(c) }),
		"DUCB":       mk(func() core.Policy { return core.NewDUCB(c, gamma) }),
	}
}

// sortedKeys returns map keys in a stable order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
