package harness

import (
	"fmt"
	"io"
	"time"
)

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	// ID is the paper's table/figure identifier ("fig8", "table9", ...).
	ID string
	// Desc is a one-line description.
	Desc string
	// Run executes the experiment and returns its rendered result.
	Run func(o Options) string
}

// Experiments returns every reproducible table and figure plus the
// ablations, in the order the paper presents them.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig2", Desc: "Temporal homogeneity of Pythia's action space",
			Run: func(o Options) string { return Fig2(o).Render() }},
		{ID: "fig5", Desc: "Fetch PG policy design space vs Choi",
			Run: func(o Options) string { return Fig5(o).Render() }},
		{ID: "table8", Desc: "Bandit algorithms vs best static arm (prefetch tune set)",
			Run: func(o Options) string { return Table8(o).Render() }},
		{ID: "table9", Desc: "Bandit algorithms vs best static arm (SMT tune set)",
			Run: func(o Options) string { return Table9(o).Render() }},
		{ID: "fig7", Desc: "Exploration traces (prefetch + SMT panels)",
			Run: func(o Options) string {
				return RenderFig7(append(Fig7Prefetch(o), Fig7SMT(o)...))
			}},
		{ID: "fig8", Desc: "Single-core prefetcher comparison",
			Run: func(o Options) string { return Fig8(o).Render() }},
		{ID: "fig9", Desc: "Prefetch classification (timely/late/wrong)",
			Run: func(o Options) string { return Fig9(o).Render() }},
		{ID: "fig10", Desc: "DRAM bandwidth sweep (Pythia vs Bandit)",
			Run: func(o Options) string { return Fig10(o).Render() }},
		{ID: "fig11", Desc: "Alternative cache hierarchy",
			Run: func(o Options) string { return Fig11(o).Render() }},
		{ID: "fig12", Desc: "Multi-level prefetching",
			Run: func(o Options) string { return Fig12(o).Render() }},
		{ID: "fig13", Desc: "SMT Bandit vs Choi across mixes",
			Run: func(o Options) string { return Fig13(o).Render() }},
		{ID: "fig14", Desc: "Four-core prefetcher comparison",
			Run: func(o Options) string { return Fig14(o).Render() }},
		{ID: "fig15", Desc: "Rename-stage cycle breakdown",
			Run: func(o Options) string { return Fig15(o).Render() }},
		{ID: "areapower", Desc: "Storage / area / power model",
			Run: func(o Options) string { return AreaPower().Render() }},
		{ID: "ablations", Desc: "Design-choice ablations",
			Run: RenderAblations},
		{ID: "extras", Desc: "Extensions: BOP contrast (§8) and hierarchical bandit (§9)",
			Run: func(o Options) string { return Extras(o).Render() }},
		{ID: "rewards", Desc: "Alternative SMT reward metrics (§6.4)",
			Run: func(o Options) string { return RewardMetrics(o).Render() }},
		{ID: "tuning", Desc: "Hyperparameter tuning sweep (§6.3)",
			Run: func(o Options) string { return Tuning(o).Render() }},
		{ID: "robust", Desc: "Fault-injection robustness sweep (graceful degradation, §4.3)",
			Run: func(o Options) string { return Robust(o).Render() }},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and streams rendered results to w.
func RunAll(w io.Writer, o Options) {
	for _, e := range Experiments() {
		start := time.Now()
		fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Desc)
		fmt.Fprint(w, e.Run(o))
		fmt.Fprintf(w, "(%s: %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
