package harness

import (
	"fmt"
	"sort"
	"strings"

	"microbandit/internal/hw"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
)

// ---------------------------------------------------------------------
// Fig. 5 — the fetch PG policy design space

// Fig5Row is one mix's best/worst static policy relative to Choi.
type Fig5Row struct {
	Mix        string
	BestPolicy string
	BestDelta  float64 // IPC change vs Choi, fraction (+0.13 = +13%)
	WorstDelta float64
}

// Fig5Result reproduces the design-space motivation: for each 2-thread
// mix, the best- and worst-performing of the 64 fetch PG policies,
// relative to the Choi policy (IC_1011).
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 sweeps all 64 policies over the tune mixes. Policies here are
// static (no bandit), so Hill Climbing converges quickly and half the
// usual cycle budget suffices — this sweep is by far the largest run
// count in the harness (64 × mixes).
func Fig5(o Options) Fig5Result {
	var res Fig5Result
	half := o
	half.SMTCycles = o.SMTCycles / 2
	if half.SMTCycles < 200_000 {
		half.SMTCycles = o.SMTCycles
	}
	o = half
	policies := simsmt.AllPolicies()
	for _, mix := range o.mixes(smtwork.TuneMixes()) {
		choi := o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).SumIPC
		if choi <= 0 {
			continue
		}
		bestD, worstD := -2.0, 2.0
		bestP := ""
		for _, p := range policies {
			ipc := o.runSMTFixed(mix, p.String(), p, true).SumIPC
			d := ipc/choi - 1
			if d > bestD {
				bestD, bestP = d, p.String()
			}
			if d < worstD {
				worstD = d
			}
		}
		res.Rows = append(res.Rows, Fig5Row{
			Mix: mix.Name(), BestPolicy: bestP, BestDelta: bestD, WorstDelta: worstD,
		})
	}
	return res
}

// Render formats the design-space sweep.
func (r Fig5Result) Render() string {
	t := stats.NewTable("Fig. 5: best/worst fetch PG policy IPC change vs Choi (IC_1011)",
		"mix", "best policy", "best %", "worst %")
	for _, row := range r.Rows {
		t.AddRow(row.Mix, row.BestPolicy,
			fmt.Sprintf("%+.1f", row.BestDelta*100),
			fmt.Sprintf("%+.1f", row.WorstDelta*100))
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Table 9 — bandit algorithms vs best static arm (SMT tune set)

// Table9Result mirrors Table8Result with the Choi column added.
type Table9Result struct {
	Algos map[string]stats.Summary
	Order []string
}

// Table9 compares Choi, Single, Periodic, ε-Greedy, UCB, and DUCB to the
// best static Table 1 arm on the tune mixes.
func Table9(o Options) Table9Result {
	mixes := o.mixes(smtwork.TuneMixes())
	ratios := map[string][]float64{}
	for _, mix := range mixes {
		best, _ := o.bestStaticSMT(mix)
		if best <= 0 {
			continue
		}
		choi := o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true)
		ratios["Choi"] = append(ratios["Choi"], choi.SumIPC/best)
		arms := len(simsmt.Table1Arms())
		for name, mk := range banditAlgorithms(o.subSeed("t9", mix.Name()), arms, true) {
			res := o.runSMTCtrl(mix, name, mk())
			ratios[name] = append(ratios[name], res.SumIPC/best)
		}
	}
	out := Table9Result{
		Algos: map[string]stats.Summary{},
		Order: []string{"Choi", "Single", "Periodic", "eps-Greedy", "UCB", "DUCB"},
	}
	for name, rs := range ratios {
		out.Algos[name] = stats.Summarize(rs).AsPercent()
	}
	return out
}

// Render formats the table in the paper's layout.
func (r Table9Result) Render() string {
	t := stats.NewTable("Table 9: IPC as % of best static arm (SMT tune set)",
		append([]string{""}, r.Order...)...)
	addRow := func(label string, pick func(stats.Summary) float64) {
		cells := []string{label}
		for _, name := range r.Order {
			cells = append(cells, fmt.Sprintf("%.1f", pick(r.Algos[name])))
		}
		t.AddRow(cells...)
	}
	addRow("min", func(s stats.Summary) float64 { return s.Min })
	addRow("max", func(s stats.Summary) float64 { return s.Max })
	addRow("gmean", func(s stats.Summary) float64 { return s.GMean })
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 13 — Bandit vs Choi across all mixes

// Fig13Result holds the per-mix Bandit/Choi IPC ratios (sorted ascending,
// as in the paper's figure) plus the headline aggregates.
type Fig13Result struct {
	Mixes        []string  // sorted by ratio
	Ratios       []float64 // Bandit IPC / Choi IPC, same order
	GMeanVsChoi  float64
	GMeanVsIC    float64
	WinsOver4Pct int
	LossOver4Pct int
}

// Fig13 runs Bandit, Choi, and ICount on every mix.
func Fig13(o Options) Fig13Result {
	mixes := o.mixes(smtwork.Mixes())
	type row struct {
		name  string
		ratio float64
		vsIC  float64
	}
	var rows []row
	for _, mix := range mixes {
		choi := o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).SumIPC
		ic := o.runSMTFixed(mix, "icount", simsmt.ICountPolicy, false).SumIPC
		bandit := o.runSMTCtrl(mix, "bandit",
			simsmt.NewBanditAgent(o.subSeed("fig13", mix.Name()))).SumIPC
		if choi <= 0 || ic <= 0 {
			continue
		}
		rows = append(rows, row{name: mix.Name(), ratio: bandit / choi, vsIC: bandit / ic})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio < rows[j].ratio })

	var res Fig13Result
	var ratios, vsIC []float64
	for _, r := range rows {
		res.Mixes = append(res.Mixes, r.name)
		res.Ratios = append(res.Ratios, r.ratio)
		ratios = append(ratios, r.ratio)
		vsIC = append(vsIC, r.vsIC)
		if r.ratio > 1.04 {
			res.WinsOver4Pct++
		}
		if r.ratio < 0.96 {
			res.LossOver4Pct++
		}
	}
	res.GMeanVsChoi = stats.GeoMean(ratios)
	res.GMeanVsIC = stats.GeoMean(vsIC)
	return res
}

// Render plots the sorted ratio curve and the headline numbers.
func (r Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 13: Bandit IPC relative to Choi across 2-thread mixes (sorted)\n")
	s := stats.NewSeries("Bandit/Choi", r.Ratios)
	b.WriteString(stats.LinePlot("", []stats.Series{s}, 10, 64))
	fmt.Fprintf(&b, "gmean vs Choi: %+.1f%%   gmean vs ICount: %+.1f%%\n",
		stats.SpeedupPercent(r.GMeanVsChoi), stats.SpeedupPercent(r.GMeanVsIC))
	fmt.Fprintf(&b, "mixes >4%% better: %d   mixes >4%% worse: %d (of %d)\n",
		r.WinsOver4Pct, r.LossOver4Pct, len(r.Ratios))
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 15 — rename-stage activity breakdown

// Fig15Result holds the average fraction of cycles the rename stage spends
// in each state, for Bandit and Choi.
type Fig15Result struct {
	// Fractions[kind][state]; states ordered as StateOrder.
	Fractions map[string]map[string]float64
}

// Fig15StateOrder lists the paper's bar order.
var Fig15StateOrder = []string{"ROB full", "IQ full", "LQ full", "SQ full", "RF full", "stalled", "idle", "running"}

// Fig15 aggregates rename-stage accounting over the mixes.
func Fig15(o Options) Fig15Result {
	mixes := o.mixes(smtwork.Mixes())
	res := Fig15Result{Fractions: map[string]map[string]float64{}}
	accumulate := func(kind string, get func(mix smtwork.Mix) simsmt.RenameStats) {
		var sum simsmt.RenameStats
		for _, mix := range mixes {
			rs := get(mix)
			sum.StallROB += rs.StallROB
			sum.StallIQ += rs.StallIQ
			sum.StallLQ += rs.StallLQ
			sum.StallSQ += rs.StallSQ
			sum.StallRF += rs.StallRF
			sum.Idle += rs.Idle
			sum.Running += rs.Running
		}
		total := float64(sum.Total())
		if total == 0 {
			total = 1
		}
		res.Fractions[kind] = map[string]float64{
			"ROB full": float64(sum.StallROB) / total,
			"IQ full":  float64(sum.StallIQ) / total,
			"LQ full":  float64(sum.StallLQ) / total,
			"SQ full":  float64(sum.StallSQ) / total,
			"RF full":  float64(sum.StallRF) / total,
			"stalled":  float64(sum.Stalled()) / total,
			"idle":     float64(sum.Idle) / total,
			"running":  float64(sum.Running) / total,
		}
	}
	accumulate("Choi", func(mix smtwork.Mix) simsmt.RenameStats {
		return o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).Rename
	})
	accumulate("Bandit", func(mix smtwork.Mix) simsmt.RenameStats {
		return o.runSMTCtrl(mix, "bandit", simsmt.NewBanditAgent(o.subSeed("fig15", mix.Name()))).Rename
	})
	return res
}

// Render formats the breakdown table.
func (r Fig15Result) Render() string {
	t := stats.NewTable("Fig. 15: rename-stage cycle breakdown (% of cycles)",
		append([]string{"policy"}, Fig15StateOrder...)...)
	for _, kind := range []string{"Choi", "Bandit"} {
		cells := []string{kind}
		for _, s := range Fig15StateOrder {
			cells = append(cells, fmt.Sprintf("%.1f", r.Fractions[kind][s]*100))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 7 (SMT panels)

// Fig7SMT produces the SMT-side exploration panels (gcc-lbm and
// cactuBSSN-lbm under BestStatic, Single, UCB, DUCB).
func Fig7SMT(o Options) []Fig7Panel {
	var panels []Fig7Panel
	pairs := [][2]string{{"gcc", "lbm"}, {"cactuBSSN", "lbm"}}
	for _, pair := range pairs {
		a, errA := smtwork.ByName(pair[0])
		b, errB := smtwork.ByName(pair[1])
		if errA != nil || errB != nil {
			continue
		}
		mix := smtwork.Mix{A: a, B: b}
		_, bestArm := o.bestStaticSMT(mix)
		configs := []struct {
			name string
			run  func() ([]simsmt.ArmSample, float64)
		}{
			{"BestStatic", func() ([]simsmt.ArmSample, float64) {
				arms := simsmt.Table1Arms()
				res := o.runSMTFixed(mix, "best-static", arms[bestArm], true)
				return []simsmt.ArmSample{{Cycle: 0, Arm: bestArm}}, res.SumIPC
			}},
			{"Single", func() ([]simsmt.ArmSample, float64) {
				return o.runSMTTrace(mix, "Single")
			}},
			{"UCB", func() ([]simsmt.ArmSample, float64) {
				return o.runSMTTrace(mix, "UCB")
			}},
			{"DUCB", func() ([]simsmt.ArmSample, float64) {
				return o.runSMTTrace(mix, "DUCB")
			}},
		}
		for _, cfg := range configs {
			arms, ipc := cfg.run()
			panel := Fig7Panel{Algo: cfg.name, App: mix.Name(), IPC: ipc}
			for _, s := range arms {
				panel.Arms = append(panel.Arms, ArmPoint{Cycle: s.Cycle, Arm: s.Arm})
			}
			panels = append(panels, panel)
		}
	}
	return panels
}

// runSMTTrace runs a mix under a named bandit algorithm with arm tracing.
func (o Options) runSMTTrace(mix smtwork.Mix, algo string) ([]simsmt.ArmSample, float64) {
	arms := len(simsmt.Table1Arms())
	ctrl := banditAlgorithms(o.subSeed("fig7smt", mix.Name(), algo), arms, true)[algo]()
	seed := o.subSeed("fig7smtrun", mix.Name(), algo)
	sim := simsmt.NewSim(mix.A, mix.B, seed)
	r := simsmt.NewRunner(sim, ctrl, simsmt.Table1Arms(), true)
	r.EpochLen = o.EpochLen
	r.RREpochs = o.RREpochs
	r.MainEpochs = o.MainEpochs
	r.RecordArms()
	r.RunCycles(o.SMTCycles)
	return r.ArmTrace, sim.SumIPC()
}

// ---------------------------------------------------------------------
// §5.4 / §6.5 — storage, area, power

// AreaPowerResult carries the hardware-cost model outputs.
type AreaPowerResult struct {
	Prefetch  hw.AgentCost
	SMT       hw.AgentCost
	AreaFrac  float64
	PowerFrac float64
	Storage   []hw.StorageComparison
}

// AreaPower evaluates the hardware model for both use cases.
func AreaPower() AreaPowerResult {
	area, power := hw.DieOverhead()
	return AreaPowerResult{
		Prefetch:  hw.Agent(11),
		SMT:       hw.Agent(6),
		AreaFrac:  area,
		PowerFrac: power,
		Storage:   hw.StorageTable(11),
	}
}

// Render formats the hardware-cost summary.
func (r AreaPowerResult) Render() string {
	var b strings.Builder
	b.WriteString("Hardware cost model (§5.4, §6.5)\n")
	fmt.Fprintf(&b, "prefetching agent: %s\n", r.Prefetch)
	fmt.Fprintf(&b, "SMT agent:         %s\n", r.SMT)
	fmt.Fprintf(&b, "40-core die overhead: area %.5f%%  power %.5f%%\n",
		r.AreaFrac*100, r.PowerFrac*100)
	t := stats.NewTable("Storage comparison", "design", "bytes")
	for _, s := range r.Storage {
		t.AddRow(s.Name, fmt.Sprintf("%d", s.Bytes))
	}
	b.WriteString(t.Render())
	return b.String()
}
