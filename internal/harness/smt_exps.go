package harness

import (
	"fmt"
	"sort"
	"strings"

	"microbandit/internal/hw"
	"microbandit/internal/simsmt"
	"microbandit/internal/smtwork"
	"microbandit/internal/stats"
)

// ---------------------------------------------------------------------
// Fig. 5 — the fetch PG policy design space

// Fig5Row is one mix's best/worst static policy relative to Choi.
type Fig5Row struct {
	Mix        string
	BestPolicy string
	BestDelta  float64 // IPC change vs Choi, fraction (+0.13 = +13%)
	WorstDelta float64
}

// Fig5Result reproduces the design-space motivation: for each 2-thread
// mix, the best- and worst-performing of the 64 fetch PG policies,
// relative to the Choi policy (IC_1011).
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 sweeps all 64 policies over the tune mixes. Policies here are
// static (no bandit), so Hill Climbing converges quickly and half the
// usual cycle budget suffices — this sweep is by far the largest run
// count in the harness (64 × mixes) and the biggest beneficiary of the
// worker pool.
func Fig5(o Options) Fig5Result {
	half := o
	half.SMTCycles = o.SMTCycles / 2
	if half.SMTCycles < 200_000 {
		half.SMTCycles = o.SMTCycles
	}
	o = half
	policies := simsmt.AllPolicies()
	mixes := o.mixes(smtwork.TuneMixes())

	// policyIdx -1 is the Choi reference run for that mix.
	type job struct{ mixIdx, policyIdx int }
	jobs := make([]job, 0, len(mixes)*(len(policies)+1))
	for mi := range mixes {
		for pi := -1; pi < len(policies); pi++ {
			jobs = append(jobs, job{mi, pi})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		mix := mixes[j.mixIdx]
		if j.policyIdx < 0 {
			return o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).SumIPC
		}
		p := policies[j.policyIdx]
		return o.runSMTFixed(mix, p.String(), p, true).SumIPC
	})

	res := Fig5Result{Rows: make([]Fig5Row, 0, len(mixes))}
	stride := len(policies) + 1
	for mi, mix := range mixes {
		choi := ipcs[mi*stride]
		if choi <= 0 {
			continue
		}
		bestD, worstD := -2.0, 2.0
		bestP := ""
		for pi, p := range policies {
			d := ipcs[mi*stride+1+pi]/choi - 1
			if d > bestD {
				bestD, bestP = d, p.String()
			}
			if d < worstD {
				worstD = d
			}
		}
		res.Rows = append(res.Rows, Fig5Row{
			Mix: mix.Name(), BestPolicy: bestP, BestDelta: bestD, WorstDelta: worstD,
		})
	}
	return res
}

// Render formats the design-space sweep.
func (r Fig5Result) Render() string {
	t := stats.NewTable("Fig. 5: best/worst fetch PG policy IPC change vs Choi (IC_1011)",
		"mix", "best policy", "best %", "worst %")
	for _, row := range r.Rows {
		t.AddRow(row.Mix, row.BestPolicy,
			fmt.Sprintf("%+.1f", row.BestDelta*100),
			fmt.Sprintf("%+.1f", row.WorstDelta*100))
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Shared static-arm oracle sweep

// bestStaticSMTAll runs every Table 1 arm statically (with Hill
// Climbing) for every mix — one flat parallel sweep — and returns each
// mix's best sum-IPC and arm. Ties resolve toward the lower arm index,
// matching a serial ascending scan.
func (o Options) bestStaticSMTAll(mixes []smtwork.Mix) (bestIPC []float64, bestArm []int) {
	arms := simsmt.Table1Arms()
	type job struct{ mixIdx, arm int }
	jobs := make([]job, 0, len(mixes)*len(arms))
	for mi := range mixes {
		for arm := range arms {
			jobs = append(jobs, job{mi, arm})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		return o.runSMTFixed(mixes[j.mixIdx], fmt.Sprintf("static-%d", j.arm),
			arms[j.arm], true).SumIPC
	})
	bestIPC = make([]float64, len(mixes))
	bestArm = make([]int, len(mixes))
	for mi := range mixes {
		bestIPC[mi], bestArm[mi] = -1, -1
		for arm := range arms {
			if ipc := ipcs[mi*len(arms)+arm]; ipc > bestIPC[mi] {
				bestIPC[mi], bestArm[mi] = ipc, arm
			}
		}
	}
	return bestIPC, bestArm
}

// ---------------------------------------------------------------------
// Table 9 — bandit algorithms vs best static arm (SMT tune set)

// Table9Result mirrors Table8Result with the Choi column added.
type Table9Result struct {
	Algos map[string]stats.Summary
	Order []string
}

// Table9 compares Choi, Single, Periodic, ε-Greedy, UCB, and DUCB to the
// best static Table 1 arm on the tune mixes.
func Table9(o Options) Table9Result {
	mixes := o.mixes(smtwork.TuneMixes())
	arms := len(simsmt.Table1Arms())
	best, _ := o.bestStaticSMTAll(mixes)

	cols := append([]string{"Choi"}, banditAlgoOrder...)
	type job struct{ mixIdx, col int }
	jobs := make([]job, 0, len(mixes)*len(cols))
	for mi := range mixes {
		for ci := range cols {
			jobs = append(jobs, job{mi, ci})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		mix := mixes[j.mixIdx]
		name := cols[j.col]
		if name == "Choi" {
			return o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).SumIPC
		}
		mk := banditAlgorithms(o.subSeed("t9", mix.Name()), arms, true)[name]
		return o.runSMTCtrl(mix, name, mk()).SumIPC
	})

	ratios := make(map[string][]float64, len(cols))
	for mi := range mixes {
		if best[mi] <= 0 {
			continue
		}
		for ci, name := range cols {
			ratios[name] = append(ratios[name], ipcs[mi*len(cols)+ci]/best[mi])
		}
	}
	out := Table9Result{
		Algos: map[string]stats.Summary{},
		Order: []string{"Choi", "Single", "Periodic", "eps-Greedy", "UCB", "DUCB"},
	}
	for name, rs := range ratios {
		out.Algos[name] = stats.Summarize(rs).AsPercent()
	}
	return out
}

// Render formats the table in the paper's layout.
func (r Table9Result) Render() string {
	t := stats.NewTable("Table 9: IPC as % of best static arm (SMT tune set)",
		append([]string{""}, r.Order...)...)
	addRow := func(label string, pick func(stats.Summary) float64) {
		cells := []string{label}
		for _, name := range r.Order {
			cells = append(cells, fmt.Sprintf("%.1f", pick(r.Algos[name])))
		}
		t.AddRow(cells...)
	}
	addRow("min", func(s stats.Summary) float64 { return s.Min })
	addRow("max", func(s stats.Summary) float64 { return s.Max })
	addRow("gmean", func(s stats.Summary) float64 { return s.GMean })
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 13 — Bandit vs Choi across all mixes

// Fig13Result holds the per-mix Bandit/Choi IPC ratios (sorted ascending,
// as in the paper's figure) plus the headline aggregates.
type Fig13Result struct {
	Mixes        []string  // sorted by ratio
	Ratios       []float64 // Bandit IPC / Choi IPC, same order
	GMeanVsChoi  float64
	GMeanVsIC    float64
	WinsOver4Pct int
	LossOver4Pct int
}

// Fig13 runs Bandit, Choi, and ICount on every mix.
func Fig13(o Options) Fig13Result {
	mixes := o.mixes(smtwork.Mixes())
	runs := runJobs(o, mixes, func(mix smtwork.Mix) [3]float64 {
		return [3]float64{
			o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).SumIPC,
			o.runSMTFixed(mix, "icount", simsmt.ICountPolicy, false).SumIPC,
			o.runSMTCtrl(mix, "bandit",
				simsmt.NewBanditAgent(o.subSeed("fig13", mix.Name()))).SumIPC,
		}
	})

	type row struct {
		name  string
		ratio float64
		vsIC  float64
	}
	rows := make([]row, 0, len(mixes))
	for mi, mix := range mixes {
		choi, ic, bandit := runs[mi][0], runs[mi][1], runs[mi][2]
		if choi <= 0 || ic <= 0 {
			continue
		}
		rows = append(rows, row{name: mix.Name(), ratio: bandit / choi, vsIC: bandit / ic})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio < rows[j].ratio })

	var res Fig13Result
	ratios := make([]float64, 0, len(rows))
	vsIC := make([]float64, 0, len(rows))
	for _, r := range rows {
		res.Mixes = append(res.Mixes, r.name)
		res.Ratios = append(res.Ratios, r.ratio)
		ratios = append(ratios, r.ratio)
		vsIC = append(vsIC, r.vsIC)
		if r.ratio > 1.04 {
			res.WinsOver4Pct++
		}
		if r.ratio < 0.96 {
			res.LossOver4Pct++
		}
	}
	res.GMeanVsChoi = stats.GeoMean(ratios)
	res.GMeanVsIC = stats.GeoMean(vsIC)
	return res
}

// Render plots the sorted ratio curve and the headline numbers.
func (r Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 13: Bandit IPC relative to Choi across 2-thread mixes (sorted)\n")
	s := stats.NewSeries("Bandit/Choi", r.Ratios)
	b.WriteString(stats.LinePlot("", []stats.Series{s}, 10, 64))
	fmt.Fprintf(&b, "gmean vs Choi: %+.1f%%   gmean vs ICount: %+.1f%%\n",
		stats.SpeedupPercent(r.GMeanVsChoi), stats.SpeedupPercent(r.GMeanVsIC))
	fmt.Fprintf(&b, "mixes >4%% better: %d   mixes >4%% worse: %d (of %d)\n",
		r.WinsOver4Pct, r.LossOver4Pct, len(r.Ratios))
	return b.String()
}

// ---------------------------------------------------------------------
// Fig. 15 — rename-stage activity breakdown

// Fig15Result holds the average fraction of cycles the rename stage spends
// in each state, for Bandit and Choi.
type Fig15Result struct {
	// Fractions[kind][state]; states ordered as StateOrder.
	Fractions map[string]map[string]float64
}

// Fig15StateOrder lists the paper's bar order.
var Fig15StateOrder = []string{"ROB full", "IQ full", "LQ full", "SQ full", "RF full", "stalled", "idle", "running"}

// Fig15 aggregates rename-stage accounting over the mixes.
func Fig15(o Options) Fig15Result {
	mixes := o.mixes(smtwork.Mixes())
	res := Fig15Result{Fractions: map[string]map[string]float64{}}

	kinds := []string{"Choi", "Bandit"}
	type job struct{ kindIdx, mixIdx int }
	jobs := make([]job, 0, len(kinds)*len(mixes))
	for ki := range kinds {
		for mi := range mixes {
			jobs = append(jobs, job{ki, mi})
		}
	}
	renames := runJobs(o, jobs, func(j job) simsmt.RenameStats {
		mix := mixes[j.mixIdx]
		if kinds[j.kindIdx] == "Choi" {
			return o.runSMTFixed(mix, "choi", simsmt.ChoiPolicy, true).Rename
		}
		return o.runSMTCtrl(mix, "bandit",
			simsmt.NewBanditAgent(o.subSeed("fig15", mix.Name()))).Rename
	})

	for ki, kind := range kinds {
		var sum simsmt.RenameStats
		for _, rs := range renames[ki*len(mixes) : (ki+1)*len(mixes)] {
			sum.StallROB += rs.StallROB
			sum.StallIQ += rs.StallIQ
			sum.StallLQ += rs.StallLQ
			sum.StallSQ += rs.StallSQ
			sum.StallRF += rs.StallRF
			sum.Idle += rs.Idle
			sum.Running += rs.Running
		}
		total := float64(sum.Total())
		if total == 0 {
			total = 1
		}
		res.Fractions[kind] = map[string]float64{
			"ROB full": float64(sum.StallROB) / total,
			"IQ full":  float64(sum.StallIQ) / total,
			"LQ full":  float64(sum.StallLQ) / total,
			"SQ full":  float64(sum.StallSQ) / total,
			"RF full":  float64(sum.StallRF) / total,
			"stalled":  float64(sum.Stalled()) / total,
			"idle":     float64(sum.Idle) / total,
			"running":  float64(sum.Running) / total,
		}
	}
	return res
}

// Render formats the breakdown table.
func (r Fig15Result) Render() string {
	t := stats.NewTable("Fig. 15: rename-stage cycle breakdown (% of cycles)",
		append([]string{"policy"}, Fig15StateOrder...)...)
	for _, kind := range []string{"Choi", "Bandit"} {
		cells := []string{kind}
		for _, s := range Fig15StateOrder {
			cells = append(cells, fmt.Sprintf("%.1f", r.Fractions[kind][s]*100))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// ---------------------------------------------------------------------
// Fig. 7 (SMT panels)

// Fig7SMT produces the SMT-side exploration panels (gcc-lbm and
// cactuBSSN-lbm under BestStatic, Single, UCB, DUCB).
func Fig7SMT(o Options) []Fig7Panel {
	var mixes []smtwork.Mix
	for _, pair := range [][2]string{{"gcc", "lbm"}, {"cactuBSSN", "lbm"}} {
		a, errA := smtwork.ByName(pair[0])
		b, errB := smtwork.ByName(pair[1])
		if errA != nil || errB != nil {
			continue
		}
		mixes = append(mixes, smtwork.Mix{A: a, B: b})
	}
	// Phase 1: the static oracle that defines the BestStatic panel.
	_, bestArm := o.bestStaticSMTAll(mixes)

	// Phase 2: the exploration-trace runs, one job per (mix, algorithm).
	algos := []string{"BestStatic", "Single", "UCB", "DUCB"}
	type job struct{ mixIdx, algoIdx int }
	jobs := make([]job, 0, len(mixes)*len(algos))
	for mi := range mixes {
		for gi := range algos {
			jobs = append(jobs, job{mi, gi})
		}
	}
	return runJobs(o, jobs, func(j job) Fig7Panel {
		mix := mixes[j.mixIdx]
		name := algos[j.algoIdx]
		var arms []simsmt.ArmSample
		var ipc float64
		if name == "BestStatic" {
			table := simsmt.Table1Arms()
			res := o.runSMTFixed(mix, "best-static", table[bestArm[j.mixIdx]], true)
			arms, ipc = []simsmt.ArmSample{{Cycle: 0, Arm: bestArm[j.mixIdx]}}, res.SumIPC
		} else {
			arms, ipc = o.runSMTTrace(mix, name)
		}
		panel := Fig7Panel{Algo: name, App: mix.Name(), IPC: ipc}
		panel.Arms = make([]ArmPoint, 0, len(arms))
		for _, s := range arms {
			panel.Arms = append(panel.Arms, ArmPoint{Cycle: s.Cycle, Arm: s.Arm})
		}
		return panel
	})
}

// runSMTTrace runs a mix under a named bandit algorithm with arm tracing.
func (o Options) runSMTTrace(mix smtwork.Mix, algo string) ([]simsmt.ArmSample, float64) {
	arms := len(simsmt.Table1Arms())
	ctrl := banditAlgorithms(o.subSeed("fig7smt", mix.Name(), algo), arms, true)[algo]()
	seed := o.subSeed("fig7smtrun", mix.Name(), algo)
	sim := simsmt.NewSim(mix.A, mix.B, seed)
	r := simsmt.NewRunner(sim, ctrl, simsmt.Table1Arms(), true)
	r.EpochLen = o.EpochLen
	r.RREpochs = o.RREpochs
	r.MainEpochs = o.MainEpochs
	r.RecordArms()
	o.simCycles(r)
	return r.ArmTrace, sim.SumIPC()
}

// ---------------------------------------------------------------------
// §5.4 / §6.5 — storage, area, power

// AreaPowerResult carries the hardware-cost model outputs.
type AreaPowerResult struct {
	Prefetch  hw.AgentCost
	SMT       hw.AgentCost
	AreaFrac  float64
	PowerFrac float64
	Storage   []hw.StorageComparison
}

// AreaPower evaluates the hardware model for both use cases.
func AreaPower() AreaPowerResult {
	area, power := hw.DieOverhead()
	return AreaPowerResult{
		Prefetch:  hw.Agent(11),
		SMT:       hw.Agent(6),
		AreaFrac:  area,
		PowerFrac: power,
		Storage:   hw.StorageTable(11),
	}
}

// Render formats the hardware-cost summary.
func (r AreaPowerResult) Render() string {
	var b strings.Builder
	b.WriteString("Hardware cost model (§5.4, §6.5)\n")
	fmt.Fprintf(&b, "prefetching agent: %s\n", r.Prefetch)
	fmt.Fprintf(&b, "SMT agent:         %s\n", r.SMT)
	fmt.Fprintf(&b, "40-core die overhead: area %.5f%%  power %.5f%%\n",
		r.AreaFrac*100, r.PowerFrac*100)
	t := stats.NewTable("Storage comparison", "design", "bytes")
	for _, s := range r.Storage {
		t.AddRow(s.Name, fmt.Sprintf("%d", s.Bytes))
	}
	b.WriteString(t.Render())
	return b.String()
}
