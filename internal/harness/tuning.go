package harness

import (
	"fmt"

	"microbandit/internal/core"
	"microbandit/internal/mem"
	"microbandit/internal/stats"
	"microbandit/internal/trace"
)

// TuningResult reproduces the §6.3 methodology: sweep the Bandit's
// hyperparameters (exploration constant c, forgetting factor γ, bandit
// step length) on the tune set and report each combination's gmean IPC,
// so the Table 6 values can be seen to sit at or near the optimum of the
// sweep rather than being taken on faith.
type TuningResult struct {
	Rows []TuningRow
	// Best is the winning combination.
	Best TuningRow
}

// TuningRow is one hyperparameter combination's aggregate result.
type TuningRow struct {
	C         float64
	Gamma     float64
	StepScale float64 // multiple of the preset's bandit step
	GMeanIPC  float64
}

// Label renders the combination compactly.
func (r TuningRow) Label() string {
	return fmt.Sprintf("c=%.2f gamma=%.4f step=x%.1f", r.C, r.Gamma, r.StepScale)
}

// Tuning sweeps a compact grid around the paper's Table 6 values.
func Tuning(o Options) TuningResult {
	apps := o.apps(trace.TuneSet())
	memCfg := mem.DefaultConfig()

	cs := []float64{0.01, core.PrefetchC, 0.16}
	gammas := []float64{0.99, core.PrefetchGamma}
	stepScales := []float64{0.5, 1, 2}

	type combo struct{ c, gamma, scale float64 }
	combos := make([]combo, 0, len(cs)*len(gammas)*len(stepScales))
	for _, c := range cs {
		for _, gamma := range gammas {
			for _, scale := range stepScales {
				combos = append(combos, combo{c, gamma, scale})
			}
		}
	}

	type job struct{ comboIdx, appIdx int }
	jobs := make([]job, 0, len(combos)*len(apps))
	for ci := range combos {
		for ai := range apps {
			jobs = append(jobs, job{ci, ai})
		}
	}
	ipcs := runJobs(o, jobs, func(j job) float64 {
		cb := combos[j.comboIdx]
		app := apps[j.appIdx]
		oo := o
		oo.StepL2 = int(float64(o.StepL2) * cb.scale)
		if oo.StepL2 < 50 {
			oo.StepL2 = 50
		}
		ctrl := core.MustNew(core.Config{
			Arms:      core.PrefetchArms,
			Policy:    core.NewDUCB(cb.c, cb.gamma),
			Normalize: true,
			Seed:      oo.subSeed("tuning", app.Name, fmt.Sprint(cb.c, cb.gamma, cb.scale)),
		})
		return oo.runPrefetchCtrl(app, "tune", ctrl, memCfg).IPC
	})

	res := TuningResult{Rows: make([]TuningRow, 0, len(combos))}
	for ci, cb := range combos {
		row := TuningRow{C: cb.c, Gamma: cb.gamma, StepScale: cb.scale,
			GMeanIPC: stats.GeoMean(ipcs[ci*len(apps) : (ci+1)*len(apps)])}
		res.Rows = append(res.Rows, row)
		if row.GMeanIPC > res.Best.GMeanIPC {
			res.Best = row
		}
	}
	return res
}

// Render formats the sweep.
func (r TuningResult) Render() string {
	t := stats.NewTable("§6.3 tuning sweep: DUCB hyperparameters on the prefetch tune set",
		"combination", "gmean IPC")
	for _, row := range r.Rows {
		t.AddFloatRow(row.Label(), "%.4f", row.GMeanIPC)
	}
	t.AddRow("best: "+r.Best.Label(), fmt.Sprintf("%.4f", r.Best.GMeanIPC))
	return t.Render()
}
