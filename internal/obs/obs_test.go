package obs

import (
	"bytes"
	"encoding/csv"
	"math"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestBufferRecordsInOrder(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Record(Event{Kind: KindArm, Step: int64(i), Arm: i % 2})
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	for i, ev := range b.Events() {
		if ev.Step != int64(i) {
			t.Fatalf("event %d has step %d", i, ev.Step)
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
}

// TestCollectorSlotOrder claims slots from concurrent goroutines in a
// scrambled order and checks the assembled stream is in slot order —
// the determinism contract the Workers=1-vs-N tests rely on.
func TestCollectorSlotOrder(t *testing.T) {
	c := NewCollector(10)
	const n = 16
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := c.Slot(i, "run")
			b.Record(Event{Kind: KindReward, Step: int64(i)})
		}(i)
	}
	wg.Wait()
	if c.Runs() != n {
		t.Fatalf("Runs = %d, want %d", c.Runs(), n)
	}
	events := c.Events()
	if len(events) != 2*n {
		t.Fatalf("got %d events, want %d", len(events), 2*n)
	}
	for i := 0; i < n; i++ {
		if events[2*i].Kind != KindRunStart {
			t.Fatalf("slot %d does not start with run_start: %v", i, events[2*i].Kind)
		}
		if got := events[2*i+1].Step; got != int64(i) {
			t.Fatalf("slot %d carries step %d", i, got)
		}
	}
}

func TestCollectorDoubleClaimPanics(t *testing.T) {
	c := NewCollector(1)
	c.Slot(3, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("second Slot(3) did not panic")
		}
	}()
	c.Slot(3, "b")
}

func TestMarshalRoundTrip(t *testing.T) {
	evs := []Event{
		{Kind: KindRunStart, Label: "robust/lbm17/DUCB/noise:0.5:7"},
		{Kind: KindArm, Step: 12, Arm: 3, Forced: true},
		{Kind: KindReward, Step: 12, Arm: 3, Value: 1.25, Raw: 0.8},
		{Kind: KindSnapshot, Step: 100, RTable: []float64{1, 0.5}, NTable: []float64{7, 3}, NTotal: 10, RAvg: 0.75},
		{Kind: KindInterval, Step: 100, Cycle: 12345, Fields: NewFields().Set(FieldIPC, 1.2).Set(FieldMPKI, 3.4)},
		{Kind: KindRunEnd, Step: 200, Fields: NewFields().Set(FieldIPC, 1.1)},
	}
	for _, ev := range evs {
		line, err := Marshal(ev)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", ev, err)
		}
		got, err := Unmarshal(line)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", line, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Fatalf("round trip changed event:\n in  %#v\n out %#v", ev, got)
		}
	}
}

func TestMarshalSanitizesNonFinite(t *testing.T) {
	ev := Event{
		Kind:   KindSnapshot,
		Value:  math.NaN(),
		Raw:    math.Inf(1),
		RTable: []float64{math.Inf(-1), 1},
		Fields: NewFields().Set(FieldIPC, math.NaN()),
	}
	line, err := Marshal(ev)
	if err != nil {
		t.Fatalf("Marshal with non-finite floats: %v", err)
	}
	got, err := Unmarshal(line)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Value != 0 || got.Raw != math.MaxFloat64 || got.RTable[0] != -math.MaxFloat64 {
		t.Fatalf("sanitization wrong: %#v", got)
	}
	if v, ok := got.Fields.Get(FieldIPC); !ok || v != 0 {
		t.Fatalf("NaN field not squashed to 0: %#v", got.Fields)
	}
}

func TestJSONLWriteRead(t *testing.T) {
	events := []Event{
		{Kind: KindRunStart, Label: "a"},
		{Kind: KindReward, Step: 1, Arm: 2, Raw: 0.5},
		{Kind: KindRunEnd, Step: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(events) {
		t.Fatalf("got %d lines, want %d", n, len(events))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("read back %#v, want %#v", got, events)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"ev\":\"arm\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 decode error", err)
	}
}

// sampleStream is a two-run stream exercising the aggregators: run A
// explores arms 0/1 and settles on 1; run B never leaves arm 0.
func sampleStream() []Event {
	return []Event{
		{Kind: KindRunStart, Label: "A, with comma"},
		{Kind: KindArm, Step: 0, Arm: 0, Forced: true},
		{Kind: KindReward, Step: 0, Arm: 0, Raw: 1.0},
		{Kind: KindArm, Step: 1, Arm: 1, Forced: true},
		{Kind: KindReward, Step: 1, Arm: 1, Raw: 2.0},
		{Kind: KindArm, Step: 2, Arm: 1},
		{Kind: KindReward, Step: 2, Arm: 1, Raw: 2.0},
		{Kind: KindArm, Step: 3, Arm: 1},
		{Kind: KindReward, Step: 3, Arm: 1, Raw: 2.0},
		{Kind: KindRunEnd, Step: 4, Fields: NewFields().Set(FieldIPC, 1.75)},
		{Kind: KindRunStart, Label: "B"},
		{Kind: KindArm, Step: 0, Arm: 0},
		{Kind: KindReward, Step: 0, Arm: 0, Raw: 1.0},
		{Kind: KindArm, Step: 1, Arm: 0},
		{Kind: KindReward, Step: 1, Arm: 0, Raw: 1.0},
		{Kind: KindRunEnd, Step: 2},
	}
}

func TestTimelineCSV(t *testing.T) {
	got := TimelineCSV(sampleStream())
	rows := parseCSV(t, got)
	// Header + A: arm0@0, arm1@1 (collapsed after) + B: arm0@0.
	want := [][]string{
		{"run", "step", "arm", "forced"},
		{"A, with comma", "0", "0", "1"},
		{"A, with comma", "1", "1", "1"},
		{"B", "0", "0", "0"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("timeline rows:\n got %v\nwant %v", rows, want)
	}
}

func TestRegretCSV(t *testing.T) {
	got := RegretCSV(sampleStream(), 2)
	rows := parseCSV(t, got)
	// Run A: 4 rewards, best static arm = 1 (mean 2.0); samples at steps
	// 2 and 4. Step 4: cum = 7, regret = 2*4-7 = 1, explore = 1/4.
	// Run B: 2 rewards, best arm 0, regret 0.
	want := [][]string{
		{"run", "step", "arm_best_static", "cum_reward", "cum_regret", "explore_frac"},
		{"A, with comma", "2", "1", "3", "1", "0.5"},
		{"A, with comma", "4", "1", "7", "1", "0.25"},
		{"B", "2", "0", "2", "0", "0"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("regret rows:\n got %v\nwant %v", rows, want)
	}
}

func TestRegretCSVBareRewardStream(t *testing.T) {
	events := []Event{
		{Kind: KindReward, Step: 0, Arm: 0, Raw: 1},
		{Kind: KindReward, Step: 1, Arm: 0, Raw: 1},
	}
	rows := parseCSV(t, RegretCSV(events, 1))
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header+2", len(rows))
	}
}

func TestWriteFiles(t *testing.T) {
	// The target directory does not exist yet: WriteFiles creates it.
	dir := t.TempDir() + "/nested/tel"
	path := dir + "/out.jsonl"
	if err := WriteFiles(path, 2, sampleStream()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"out.jsonl", "timeline.csv", "regret.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
		if strings.HasSuffix(name, ".csv") {
			parseCSV(t, string(data))
		}
	}
}

// parseCSV asserts the CSV parses under encoding/csv and returns rows.
func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v\n%s", err, s)
	}
	return rows
}
