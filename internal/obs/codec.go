package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// This file is the JSONL event codec: one JSON object per line, fields
// in fixed struct order, zero-valued fields omitted. encoding/json is
// deterministic for this shape (struct fields encode in declaration
// order, map keys sort), so equal event streams always produce equal
// bytes — the property the Workers=1-vs-N tests pin down.

// Marshal encodes one event as a single JSON line (no trailing newline).
// Non-finite floats cannot be represented in JSON; rather than losing
// the whole line, Marshal squashes NaN to 0 and ±Inf to ±MaxFloat64
// before encoding. Emitters only produce finite values (simulated IPC,
// rewards, counts), so the squash is a safety net, not a code path.
func Marshal(ev Event) ([]byte, error) {
	sanitizeEvent(&ev)
	return json.Marshal(ev)
}

// Unmarshal decodes one JSONL line into an Event. Unknown JSON fields
// are ignored; a non-object line is an error.
func Unmarshal(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// sanitizeEvent replaces non-finite floats with JSON-encodable values.
func sanitizeEvent(ev *Event) {
	ev.Value = finite(ev.Value)
	ev.Raw = finite(ev.Raw)
	ev.NTotal = finite(ev.NTotal)
	ev.RAvg = finite(ev.RAvg)
	sanitizeSlice(ev.RTable)
	sanitizeSlice(ev.NTable)
	if ev.Fields.Len() == 0 {
		// An empty set encodes as {} but omitempty only drops a nil
		// pointer; canonicalize so empty and absent are the same bytes.
		ev.Fields = nil
		return
	}
	for k := FieldKey(0); k < numFieldKeys; k++ {
		if v, ok := ev.Fields.Get(k); ok {
			if f := finite(v); f != v {
				ev.Fields.Set(k, f)
			}
		}
	}
}

func sanitizeSlice(xs []float64) {
	for i, x := range xs {
		if f := finite(x); f != x {
			xs[i] = f
		}
	}
}

// finite maps NaN to 0 and ±Inf to ±MaxFloat64.
func finite(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case math.IsInf(x, 1):
		return math.MaxFloat64
	case math.IsInf(x, -1):
		return -math.MaxFloat64
	default:
		return x
	}
}

// WriteJSONL writes events to w, one JSON object per line, buffered.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	for i, ev := range events {
		line, err := Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: encoding event %d: %w", i, err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes an entire JSONL stream. Blank lines are skipped; a
// malformed line returns an error naming its 1-based line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := Unmarshal(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
