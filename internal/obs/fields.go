package obs

import (
	"encoding/json"
	"fmt"
)

// FieldKey names one interval/run-end metric. The telemetry schema is
// closed — every emitter picks from this enum — so Fields can store
// values in a fixed array instead of the per-event map[string]float64
// the emission hot path used to allocate and hash through.
type FieldKey uint8

// Field keys, in the alphabetical order of their wire names (the order
// encoding/json gives sorted map keys, which the JSONL codec preserves).
const (
	FieldChunkHitRate FieldKey = iota // chunk_hit_rate
	FieldDRAMBWUtil                   // dram_bw_util
	FieldFFCoverage                   // ff_coverage
	FieldIPC                          // ipc
	FieldIPC0                         // ipc0
	FieldIPC1                         // ipc1
	FieldMPKI                         // mpki
	FieldPrefAccuracy                 // pref_accuracy
	FieldPrefCoverage                 // pref_coverage
	FieldSumIPC                       // sum_ipc

	numFieldKeys
)

// fieldNames are the wire names, indexed by FieldKey.
var fieldNames = [numFieldKeys]string{
	"chunk_hit_rate",
	"dram_bw_util",
	"ff_coverage",
	"ipc",
	"ipc0",
	"ipc1",
	"mpki",
	"pref_accuracy",
	"pref_coverage",
	"sum_ipc",
}

// String returns the key's wire name.
func (k FieldKey) String() string {
	if k < numFieldKeys {
		return fieldNames[k]
	}
	return fmt.Sprintf("fieldkey(%d)", uint8(k))
}

// fieldKeyByName resolves a wire name, reporting failure for unknown
// names (the decoder drops those).
func fieldKeyByName(name string) (FieldKey, bool) {
	for k, n := range fieldNames {
		if n == name {
			return FieldKey(k), true
		}
	}
	return 0, false
}

// Fields is a small set of named metrics on an event: a presence mask
// plus a value per possible key. The zero value is empty and ready to
// use; Set returns its receiver so emitters can chain.
//
// On the wire Fields is the same JSON object the old map encoding
// produced — keys in sorted order, absent keys omitted — so recorded
// streams stay byte-identical.
type Fields struct {
	mask uint16
	vals [numFieldKeys]float64
}

// NewFields returns an empty field set.
func NewFields() *Fields { return &Fields{} }

// Set stores v under k and returns f.
func (f *Fields) Set(k FieldKey, v float64) *Fields {
	f.mask |= 1 << k
	f.vals[k] = v
	return f
}

// Get returns the value under k. It is nil-safe: a nil or empty Fields
// reports every key absent.
func (f *Fields) Get(k FieldKey) (float64, bool) {
	if f == nil || f.mask&(1<<k) == 0 {
		return 0, false
	}
	return f.vals[k], true
}

// Len returns the number of set keys. Nil-safe.
func (f *Fields) Len() int {
	if f == nil {
		return 0
	}
	n := 0
	for m := f.mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// MarshalJSON encodes the set keys as a JSON object. Encoding goes
// through a string map so the bytes match the historical map encoding
// exactly (sorted keys, identical float formatting).
func (f *Fields) MarshalJSON() ([]byte, error) {
	m := make(map[string]float64, f.Len())
	for k := FieldKey(0); k < numFieldKeys; k++ {
		if f.mask&(1<<k) != 0 {
			m[fieldNames[k]] = f.vals[k]
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a JSON object, dropping unknown keys — the same
// forward-compatibility contract the event codec applies to unknown
// event fields.
func (f *Fields) UnmarshalJSON(data []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*f = Fields{}
	for name, v := range m {
		if k, ok := fieldKeyByName(name); ok {
			f.Set(k, v)
		}
	}
	return nil
}
