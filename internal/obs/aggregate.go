package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"microbandit/internal/stats"
)

// This file is the in-memory aggregator: it folds a (possibly multi-run)
// event stream into the inspection artifacts the paper reads off the
// agent — arm-selection timelines (Fig. 7 / Fig. 11 style) and
// regret-vs-best-static plus exploration-fraction series. Both render as
// CSV through the shared stats quoting helper, so run labels carrying
// commas (e.g. fault-spec lists) stay parseable.

// TimelineCSV renders the arm-selection timeline of every run in the
// stream: one row per arm change, consecutive selections of the same arm
// collapsed (matching the runners' ArmTrace convention). Columns:
// run, step, arm, forced.
func TimelineCSV(events []Event) string {
	var b strings.Builder
	stats.WriteCSVRow(&b, "run", "step", "arm", "forced")
	run := ""
	lastArm, haveArm := 0, false
	for _, ev := range events {
		switch ev.Kind {
		case KindRunStart:
			run = ev.Label
			haveArm = false
		case KindArm:
			if haveArm && ev.Arm == lastArm {
				continue
			}
			lastArm, haveArm = ev.Arm, true
			forced := "0"
			if ev.Forced {
				forced = "1"
			}
			stats.WriteCSVRow(&b, run, fmt.Sprintf("%d", ev.Step),
				fmt.Sprintf("%d", ev.Arm), forced)
		}
	}
	return b.String()
}

// regretRun accumulates one run's reward stream for RegretCSV.
type regretRun struct {
	label   string
	arms    []int
	rewards []float64 // raw (pre-normalization) step rewards
}

// RegretCSV renders, for every run, the cumulative regret against the
// empirical best static arm and the exploration fraction, sampled every
// `every` steps (plus the final step). The best static arm is the arm
// with the highest mean raw reward over the whole run — the same oracle
// the paper's Tables 8/9 normalize against, estimated from the observed
// stream. Columns: run, step, arm_best_static, cum_reward, cum_regret,
// explore_frac (fraction of steps spent off the best static arm).
func RegretCSV(events []Event, every int) string {
	if every <= 0 {
		every = 1
	}
	var runs []regretRun
	cur := -1
	for _, ev := range events {
		switch ev.Kind {
		case KindRunStart:
			runs = append(runs, regretRun{label: ev.Label})
			cur = len(runs) - 1
		case KindReward:
			if cur < 0 {
				// Reward stream with no run envelope (e.g. a bare
				// agent): attribute to an unlabeled run.
				runs = append(runs, regretRun{})
				cur = 0
			}
			r := &runs[cur]
			r.arms = append(r.arms, ev.Arm)
			r.rewards = append(r.rewards, ev.Raw)
		}
	}

	var b strings.Builder
	stats.WriteCSVRow(&b, "run", "step", "arm_best_static", "cum_reward", "cum_regret", "explore_frac")
	for _, r := range runs {
		if len(r.rewards) == 0 {
			continue
		}
		best, bestMean := bestStaticArm(r.arms, r.rewards)
		cum, offBest := 0.0, 0
		for i := range r.rewards {
			cum += r.rewards[i]
			if r.arms[i] != best {
				offBest++
			}
			step := i + 1
			if step%every != 0 && step != len(r.rewards) {
				continue
			}
			regret := bestMean*float64(step) - cum
			stats.WriteCSVRow(&b, r.label,
				fmt.Sprintf("%d", step),
				fmt.Sprintf("%d", best),
				fmt.Sprintf("%.6g", cum),
				fmt.Sprintf("%.6g", regret),
				fmt.Sprintf("%.6g", float64(offBest)/float64(step)))
		}
	}
	return b.String()
}

// bestStaticArm returns the arm with the highest mean raw reward and
// that mean, ties broken by the lowest arm index.
func bestStaticArm(arms []int, rewards []float64) (int, float64) {
	sum := map[int]float64{}
	n := map[int]int{}
	maxArm := 0
	for i, a := range arms {
		sum[a] += rewards[i]
		n[a]++
		if a > maxArm {
			maxArm = a
		}
	}
	best, bestMean := 0, 0.0
	haveBest := false
	for a := 0; a <= maxArm; a++ {
		if n[a] == 0 {
			continue
		}
		mean := sum[a] / float64(n[a])
		if !haveBest || mean > bestMean {
			best, bestMean, haveBest = a, mean, true
		}
	}
	return best, bestMean
}

// WriteFiles persists a telemetry stream: the raw JSONL events at path,
// plus timeline.csv and regret.csv next to it (in path's directory,
// which is created if missing). every is the regret sampling cadence
// (the CLIs pass their -telemetry-every value).
func WriteFiles(path string, every int, events []Event) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "timeline.csv"), []byte(TimelineCSV(events)), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "regret.csv"), []byte(RegretCSV(events, every)), 0o644)
}
