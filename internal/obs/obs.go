// Package obs is the telemetry layer of the bandit stack: a typed event
// stream emitted by the agent (internal/core), the simulation runners
// (internal/cpu, internal/simsmt), and the experiment engine
// (internal/harness), consumed by recorders that either persist the raw
// stream (JSONL) or aggregate it into the paper's inspection artifacts —
// Table 3's per-arm rTable/nTable state, Fig. 7/11-style arm-selection
// timelines, §4.3 restart events, and regret-vs-best-static series.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Emitters hold a nil Recorder by default
//     and guard every emission with one nil check; no allocation, no
//     interface call, no atomic touches the hot path until telemetry is
//     switched on.
//   - Deterministic bytes. Events carry only simulated quantities (bandit
//     steps, cycles, rewards) — never wall-clock time, goroutine ids, or
//     map-ordered iteration. A multi-run stream assembled through a
//     Collector is byte-identical at any worker count because each run
//     records into its own pre-indexed slot and slots are concatenated in
//     input order.
//   - Race-clean. A Buffer is owned by exactly one goroutine; the only
//     shared structure is the Collector's slot table, guarded by a mutex.
package obs

import (
	"fmt"
	"sync"
)

// Kind names one event type in the stream.
type Kind string

// Event kinds.
const (
	// KindRunStart opens one simulation run; Label identifies it. All
	// following events up to the next KindRunStart belong to this run.
	KindRunStart Kind = "run_start"
	// KindRunEnd closes a run; Fields carries final headline metrics
	// (e.g. ipc) and Step the completed bandit-step count.
	KindRunEnd Kind = "run_end"
	// KindArm is one arm selection (the paper's nextArm): Step is the
	// bandit step the arm applies to, Forced marks round-robin
	// (initial phase or §4.3 restart sweep) selections.
	KindArm Kind = "arm"
	// KindReward is one observed step reward (the paper's updRew):
	// Value is the reward as the policy saw it (post-normalization),
	// Raw the reward as the hardware produced it.
	KindReward Kind = "reward"
	// KindSnapshot is a periodic copy of the agent's learned state:
	// RTable, NTable, NTotal, and the §4.3 normalization constant RAvg.
	KindSnapshot Kind = "snapshot"
	// KindRestart marks a §4.3 probabilistic round-robin restart.
	KindRestart Kind = "rr_restart"
	// KindMetaSwitch marks the §9 hierarchical agent switching which
	// low-level bandit drives the hardware; Arm is the new level index.
	KindMetaSwitch Kind = "meta_switch"
	// KindInterval is a periodic substrate measurement; Fields carries
	// metrics such as ipc, mpki, pref_accuracy, pref_coverage,
	// dram_bw_util (prefetching) or sum_ipc, ipc0, ipc1 (SMT).
	KindInterval Kind = "interval"
	// KindFault marks a fault-injection spec armed for the run
	// (Label is the kind:intensity[:seed] spec).
	KindFault Kind = "fault"
	// KindScenario marks which decision scenario a run exercises (Label
	// is the scenario name, e.g. "dramsched").
	KindScenario Kind = "scenario"
)

// Event is one telemetry record. A single flat struct (rather than one
// type per kind) keeps the JSONL codec trivial and lets recorders store
// mixed streams in one slice; unused fields stay at their zero value and
// are omitted from the encoded form.
type Event struct {
	Kind   Kind      `json:"ev"`
	Step   int64     `json:"step,omitempty"`
	Cycle  int64     `json:"cycle,omitempty"`
	Arm    int       `json:"arm,omitempty"`
	Forced bool      `json:"forced,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Raw    float64   `json:"raw,omitempty"`
	RTable []float64 `json:"rtable,omitempty"`
	NTable []float64 `json:"ntable,omitempty"`
	NTotal float64   `json:"ntotal,omitempty"`
	RAvg   float64   `json:"ravg,omitempty"`
	Fields *Fields   `json:"fields,omitempty"`
	Label  string    `json:"label,omitempty"`
}

// Recorder receives telemetry events. Implementations are not required
// to be safe for concurrent use: an emitter owns its recorder for the
// duration of a run (the Collector hands out one Buffer per run).
type Recorder interface {
	Record(ev Event)
}

// Nop is the disabled recorder: it drops every event. Emitters treat a
// nil Recorder the same way, so Nop exists mainly for tests and for APIs
// that want a non-nil default.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Event) {}

// Buffer is an in-memory recorder: events append in emission order. The
// zero value is ready to use. A Buffer must be used from one goroutine
// at a time.
type Buffer struct {
	events []Event
}

// Record implements Recorder.
func (b *Buffer) Record(ev Event) { b.events = append(b.events, ev) }

// Events returns the recorded events (not a copy).
func (b *Buffer) Events() []Event { return b.events }

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// Reset empties the buffer, keeping its capacity.
func (b *Buffer) Reset() { b.events = b.events[:0] }

// Collector assembles a deterministic multi-run event stream from
// concurrent simulation runs: each run claims a numbered slot (its index
// in the experiment's job list) and records into a private Buffer;
// Events concatenates the slots in index order, so the assembled stream
// is byte-identical at any worker count.
type Collector struct {
	// Every is the snapshot/interval cadence, in bandit steps, that
	// emitters wired to this collector should use.
	Every int

	mu    sync.Mutex
	slots []*Buffer
}

// NewCollector returns a collector with the given snapshot cadence.
func NewCollector(every int) *Collector { return &Collector{Every: every} }

// Slot returns the buffer for run index i, creating it on first use and
// opening it with a KindRunStart event labeled label. It panics on a
// negative index or a slot claimed twice — both are engine bugs, not
// runtime conditions. Slot is safe to call concurrently; the returned
// Buffer is not, and must stay within the claiming goroutine.
func (c *Collector) Slot(i int, label string) *Buffer {
	if i < 0 {
		panic(fmt.Sprintf("obs: negative collector slot %d", i))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.slots) <= i {
		c.slots = append(c.slots, nil)
	}
	if c.slots[i] != nil {
		panic(fmt.Sprintf("obs: collector slot %d claimed twice", i))
	}
	b := &Buffer{}
	b.Record(Event{Kind: KindRunStart, Label: label})
	c.slots[i] = b
	return b
}

// Events returns the concatenation of all claimed slots in index order.
// Call it only after every recording goroutine has finished.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, b := range c.slots {
		if b != nil {
			out = append(out, b.events...)
		}
	}
	return out
}

// Runs returns the number of claimed slots.
func (c *Collector) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.slots {
		if b != nil {
			n++
		}
	}
	return n
}

// Attach wires rec into any controller that exposes
// SetRecorder(Recorder, int) — core.Agent and core.MetaAgent do —
// without obs importing core. Controllers with no recorder support
// (fixed arms, fault wrappers) are left unwired; attach to the inner
// controller before wrapping it.
func Attach(ctrl any, rec Recorder, every int) {
	if sr, ok := ctrl.(interface{ SetRecorder(Recorder, int) }); ok {
		sr.SetRecorder(rec, every)
	}
}

// Compile-time interface checks.
var (
	_ Recorder = Nop{}
	_ Recorder = (*Buffer)(nil)
)
