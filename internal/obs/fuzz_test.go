package obs

import (
	"reflect"
	"testing"
)

// FuzzEventCodec fuzzes the JSONL event codec: Unmarshal must never
// panic on arbitrary input, and any line it accepts must survive a
// Marshal/Unmarshal round trip unchanged (idempotent normalization:
// unknown JSON fields are dropped on first decode, so the second decode
// must reproduce the first exactly).
func FuzzEventCodec(f *testing.F) {
	seeds := []Event{
		{Kind: KindRunStart, Label: "robust/lbm17/DUCB/noise:0.5:7"},
		{Kind: KindArm, Step: 3, Arm: 1, Forced: true},
		{Kind: KindReward, Step: 3, Arm: 1, Value: 1.5, Raw: 0.75},
		{Kind: KindSnapshot, Step: 100, RTable: []float64{1, 2}, NTable: []float64{3, 4}, NTotal: 7, RAvg: 0.9},
		{Kind: KindInterval, Step: 100, Cycle: 1 << 40, Fields: NewFields().Set(FieldIPC, 1.2)},
		{Kind: KindRestart, Step: 55},
		{Kind: KindMetaSwitch, Step: 10, Arm: 2},
		{Kind: KindFault, Label: "stuckarm:1:9"},
		{Kind: KindRunEnd, Step: 9, Fields: NewFields().Set(FieldIPC, 0.4)},
	}
	for _, ev := range seeds {
		line, err := Marshal(ev)
		if err != nil {
			f.Fatalf("seed %v: %v", ev, err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"ev":"arm","step":-1,"arm":-7,"unknown":[1,2]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"ev":"snapshot","rtable":[1e308,-1e308,0.1]}`))

	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := Unmarshal(line)
		if err != nil {
			return // malformed input: rejected, not crashed
		}
		enc, err := Marshal(ev)
		if err != nil {
			t.Fatalf("Marshal of decoded event failed: %v (event %#v)", err, ev)
		}
		ev2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-Unmarshal failed: %v (line %s)", err, enc)
		}
		// Marshal sanitizes non-finite floats, and JSON cannot carry
		// them, so a decoded event is always finite and the round trip
		// must be exact.
		if !reflect.DeepEqual(sanitized(ev), ev2) {
			t.Fatalf("round trip changed event:\n in  %#v\n out %#v", ev, ev2)
		}
	})
}

// sanitized returns ev after the codec's non-finite squash, with empty
// slices/maps canonicalized to nil (omitempty drops them on encode) —
// the form a round trip preserves.
func sanitized(ev Event) Event {
	sanitizeEvent(&ev)
	if len(ev.RTable) == 0 {
		ev.RTable = nil
	}
	if len(ev.NTable) == 0 {
		ev.NTable = nil
	}
	if ev.Fields.Len() == 0 {
		ev.Fields = nil
	}
	return ev
}
