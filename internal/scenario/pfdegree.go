package scenario

import (
	"fmt"

	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
)

// pfdegreeScenario: the bandit throttles a stream prefetcher's degree
// under DRAM bandwidth collapse. The scenario's fault set includes
// bwcollapse (it is the problem statement, not a perturbation): during
// collapsed windows the channel streams lines 8x slower, so aggressive
// prefetching steals bandwidth from demand misses and degree 0/1 wins;
// in clean windows degree 4 wins. The window pattern is unpredictable,
// so no static degree is right for the whole run.
type pfdegreeScenario struct{}

var pfdegreeLabels = []string{"off", "deg1", "deg2", "deg4"}

// pfdegreeDegrees maps arm index to the stream degree it programs.
var pfdegreeDegrees = []int{0, 1, 2, 4}

func (pfdegreeScenario) Name() string { return "pfdegree" }
func (pfdegreeScenario) Desc() string {
	return "prefetch-degree throttling (stream degree 0/1/2/4) under DRAM bandwidth collapse"
}
func (pfdegreeScenario) ArmLabels() []string { return pfdegreeLabels }
func (pfdegreeScenario) Apps() []string {
	return []string{"libquantum", "lbm17", "streamcluster", "mcf17"}
}
func (pfdegreeScenario) Faults() string    { return "bwcollapse:0.5" }
func (pfdegreeScenario) Columns() []Column { return banditAndStatics(pfdegreeLabels) }

func (s pfdegreeScenario) Wire(c *cpu.Core, h *mem.Hierarchy, seed uint64) Instance {
	tun := newDegreeThrottle()
	return Instance{Tunable: tun, Probe: NewIPCProbe(c), Pf: tun}
}

// degreeThrottle is a stream prefetcher whose arms are prefetch
// degrees. It embeds prefetch.Stream for Operate/Reset and shadows
// Name; degree 0 disables issuing (the Stream contract).
type degreeThrottle struct {
	*prefetch.Stream
}

// newDegreeThrottle builds the throttled stream prefetcher with the
// ensemble's tracker budget, starting at arm 0 (off).
func newDegreeThrottle() *degreeThrottle {
	return &degreeThrottle{Stream: prefetch.NewStream(64, pfdegreeDegrees[0])}
}

func (t *degreeThrottle) Name() string            { return "pfdegree" }
func (t *degreeThrottle) NumArms() int            { return len(pfdegreeDegrees) }
func (t *degreeThrottle) ArmLabel(arm int) string { return armLabel(pfdegreeLabels, arm) }
func (t *degreeThrottle) Apply(arm int) {
	if arm < 0 || arm >= len(pfdegreeDegrees) {
		panic(fmt.Sprintf("scenario: pfdegree arm %d out of range", arm))
	}
	t.Stream.Degree = pfdegreeDegrees[arm]
}

// compile-time checks: the throttle is both a scenario tunable and a
// prefetcher.
var (
	_ Tunable             = (*degreeThrottle)(nil)
	_ prefetch.Prefetcher = (*degreeThrottle)(nil)
)
