package scenario

import (
	"fmt"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
)

// agentselectScenario is the capstone: the decision is not a hardware
// knob but *which agent to trust*. A core.Selector runs ε-Greedy, UCB,
// DUCB, and contextual-DUCB candidates concurrently over the Table 7
// prefetcher ensemble and a high-level DUCB bandit learns, per
// workload, which candidate's choices to follow — the related work's
// "bandit framework for optimal selection of RL agents". The static
// columns run each candidate alone; the meta-bandit's job is to match
// the per-workload best without knowing it in advance.
type agentselectScenario struct{}

// agentselectLabels names the candidate agents — this scenario's
// decision space.
var agentselectLabels = []string{"eps", "ucb", "ducb", "ctx-ducb"}

func (agentselectScenario) Name() string { return "agentselect" }
func (agentselectScenario) Desc() string {
	return "meta-bandit agent selector: eps/UCB/DUCB/ctx-DUCB candidates over the prefetch ensemble"
}
func (agentselectScenario) ArmLabels() []string { return agentselectLabels }
func (agentselectScenario) Apps() []string {
	return []string{"gcc06", "mcf06", "lbm06", "xalancbmk"}
}
func (agentselectScenario) Faults() string { return "" }

// Columns: the selector, then each candidate running alone — the
// "static arms" of the agent-selection decision are whole agents, not
// FixedArm controllers.
func (s agentselectScenario) Columns() []Column {
	arms := len(prefetchLabels)
	cols := make([]Column, 0, len(agentselectLabels)+1)
	cols = append(cols, Column{Name: "bandit", New: func(seed uint64) core.Controller {
		return mustSelector(arms, seed)
	}})
	for i, name := range agentselectLabels {
		algo := name
		off := uint64(i)
		cols = append(cols, Column{Name: "static:" + algo, New: func(seed uint64) core.Controller {
			return mustCandidate(algo, arms, seed+off*0x9e37)
		}})
	}
	return cols
}

func (s agentselectScenario) Wire(c *cpu.Core, h *mem.Hierarchy, seed uint64) Instance {
	ens := prefetch.NewTable7Ensemble()
	return Instance{Tunable: &ensembleTunable{ens}, Pf: ens}
}

// mustCandidate builds one candidate agent by registry name.
func mustCandidate(algo string, arms int, seed uint64) core.Controller {
	ctrl, err := core.ParseAlgo(algo, arms, seed, false)
	if err != nil {
		panic(fmt.Sprintf("scenario: agentselect candidate %q: %v", algo, err))
	}
	return ctrl
}

// mustSelector builds the meta-bandit: a DUCB high-level bandit over
// the four candidates, each candidate seeded independently (the same
// sub-seeds the static columns use, so selection is compared against
// the identical learners it selects among).
func mustSelector(arms int, seed uint64) core.Controller {
	lows := make([]core.Controller, len(agentselectLabels))
	for i, algo := range agentselectLabels {
		lows[i] = mustCandidate(algo, arms, seed+uint64(i)*0x9e37)
	}
	sel, err := core.NewSelector(core.Config{
		Policy:    core.NewDUCB(core.PrefetchC, 0.999),
		Normalize: true,
		Seed:      seed ^ 0x53656c65, // "Sele"
	}, lows, agentselectLabels, arms)
	if err != nil {
		panic(fmt.Sprintf("scenario: agentselect selector: %v", err))
	}
	return sel
}
