package scenario

import (
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
)

// dramschedScenario: the bandit picks the DRAM channel's scheduling /
// row-buffer policy. Streaming workloads have high row locality and
// want open-page FCFS; pointer chases touch a fresh row per access and
// want close-page's flat activate cost; FR-FCFS open-page wins when
// requests queue with mixed locality. No static policy wins across —
// or even within — the phase-structured workloads, which is exactly the
// gap a per-step learner closes.
type dramschedScenario struct{}

var dramschedLabels = mem.SchedPolicyNames()

// dramschedPolicies maps arm index to the policy it installs, in
// ArmLabels order.
var dramschedPolicies = []mem.SchedPolicy{mem.SchedFCFSOpen, mem.SchedFCFSClose, mem.SchedFRFCFSOpen}

func (dramschedScenario) Name() string { return "dramsched" }
func (dramschedScenario) Desc() string {
	return "DRAM scheduling policy: FCFS open/close page + FR-FCFS reordering over the bandwidth-limited channel"
}
func (dramschedScenario) ArmLabels() []string { return dramschedLabels }
func (dramschedScenario) Apps() []string {
	return []string{"libquantum", "lbm06", "omnetpp06", "mcf06"}
}
func (dramschedScenario) Faults() string    { return "" }
func (dramschedScenario) Columns() []Column { return banditAndStatics(dramschedLabels) }

func (s dramschedScenario) Wire(c *cpu.Core, h *mem.Hierarchy, seed uint64) Instance {
	tun := &dramTunable{d: h.DRAM()}
	tun.Apply(0)
	return Instance{Tunable: tun, Probe: NewIPCProbe(c)}
}

// dramTunable switches the channel's scheduling policy.
type dramTunable struct{ d *mem.DRAM }

func (t *dramTunable) Name() string            { return "dramsched" }
func (t *dramTunable) NumArms() int            { return len(dramschedPolicies) }
func (t *dramTunable) ArmLabel(arm int) string { return armLabel(dramschedLabels, arm) }
func (t *dramTunable) Apply(arm int) {
	t.d.SetSchedPolicy(dramschedPolicies[arm])
}
