package scenario

import (
	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
)

// This file holds the per-scenario reward probes. A probe diffs
// substrate counters against its own previous call, so it must be
// called exactly once per bandit step (the runner guarantees it). All
// probes are allocation-free after construction.

// IPCProbe rewards the step's IPC — the paper's objective, made
// explicit as a probe so scenarios that want it still exercise the
// probe seam (and its fault-wrapper forwarding) end to end.
type IPCProbe struct {
	c          *cpu.Core
	lastInsts  int64
	lastCycles int64
}

// NewIPCProbe builds an IPC probe over the core.
func NewIPCProbe(c *cpu.Core) *IPCProbe { return &IPCProbe{c: c} }

// StepReward implements core.RewardProbe.
func (p *IPCProbe) StepReward() float64 {
	insts, cycles := p.c.Insts(), p.c.Cycles()
	dInsts, dCycles := insts-p.lastInsts, cycles-p.lastCycles
	p.lastInsts, p.lastCycles = insts, cycles
	if dCycles <= 0 {
		return 0
	}
	return float64(dInsts) / float64(dCycles)
}

// HitRateProbe rewards the step's LLC demand hit rate — the insertion
// policy's local objective, cleaner than IPC when DRAM queueing noise
// the policy cannot influence dominates cycle counts. An empty step
// (no LLC demand) rewards the previous rate, so a quiet step neither
// punishes nor rewards the arm that happened to be active.
type HitRateProbe struct {
	h          *mem.Hierarchy
	lastDemand int64
	lastMisses int64
	lastRate   float64
}

// NewHitRateProbe builds an LLC-demand-hit-rate probe over the
// hierarchy.
func NewHitRateProbe(h *mem.Hierarchy) *HitRateProbe { return &HitRateProbe{h: h} }

// StepReward implements core.RewardProbe.
func (p *HitRateProbe) StepReward() float64 {
	st := p.h.Stats()
	dDemand := st.LLCDemand - p.lastDemand
	dMisses := st.LLCMisses - p.lastMisses
	p.lastDemand, p.lastMisses = st.LLCDemand, st.LLCMisses
	if dDemand <= 0 {
		return p.lastRate
	}
	rate := 1 - float64(dMisses)/float64(dDemand)
	if rate < 0 {
		rate = 0
	}
	p.lastRate = rate
	return rate
}

var (
	_ core.RewardProbe = (*IPCProbe)(nil)
	_ core.RewardProbe = (*HitRateProbe)(nil)
)
