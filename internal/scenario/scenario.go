// Package scenario is the decision-scenario subsystem: the paper's core
// pitch is one tiny bandit reused across many microarchitecture decision
// problems, and this package is where those problems live. It lifts the
// prefetcher-only prefetch.Tunable contract into a generic Tunable
// (name/arms/apply plus a per-scenario reward probe) and registers one
// Scenario per decision problem:
//
//   - prefetch:    the paper's Table 7 prefetcher-ensemble selection
//   - dramsched:   DRAM scheduling policy (FCFS/FR-FCFS, open/close page)
//   - cacheins:    LLC insertion policy (LRU vs LIP/BIP insertion depth)
//   - pfdegree:    prefetch-degree throttling under bandwidth collapse
//   - agentselect: the meta-bandit selecting among whole agent configs
//
// A Scenario knows how to wire itself into a simulated core (Wire), which
// workloads exercise its decision meaningfully (Apps), which faults are
// part of its problem statement (Faults), and which comparison columns an
// experiment should run (Columns — index 0 is always the learning
// bandit, the rest are the static arms it must compete with).
package scenario

import (
	"fmt"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
)

// Tunable is the generic arm-controlled unit: what prefetch.Tunable is
// to prefetchers, for any microarchitecture decision problem. It
// satisfies cpu.Actuator (and fault.Applier) structurally, so runners
// and fault wrappers drive it exactly like a tunable prefetcher.
type Tunable interface {
	// Name identifies the decision problem the arms control.
	Name() string
	// NumArms returns the number of selectable arms.
	NumArms() int
	// ArmLabel returns the human-readable name of an arm.
	ArmLabel(arm int) string
	// Apply switches to the given arm; panics if out of range. Must be
	// idempotent and allocation-free in steady state (it runs on the
	// simulator hot path, after every bandit step).
	Apply(arm int)
}

// Instance is one wired-up occurrence of a scenario inside a simulated
// core: the tunable the controller drives, the scenario's reward probe
// (nil means the runner's default step-IPC reward), and the L2
// prefetcher the run uses (nil means none).
type Instance struct {
	Tunable Tunable
	Probe   core.RewardProbe
	Pf      prefetch.Prefetcher
}

// Column is one comparison column of a scenario experiment. New builds
// the column's controller for a run; seed derivation is the caller's
// job so determinism stays with the experiment engine.
type Column struct {
	Name string
	New  func(seed uint64) core.Controller
}

// Scenario is one decision problem the bandit can be dropped into.
type Scenario interface {
	// Name is the registry key ("dramsched", ...).
	Name() string
	// Desc is a one-line description for reports.
	Desc() string
	// ArmLabels returns the decision space's arm names in arm order.
	// Cheap: must not construct simulation state.
	ArmLabels() []string
	// Apps lists the catalog workloads the scenario's experiment runs
	// (chosen so the decision matters; the harness caps via MaxApps).
	Apps() []string
	// Faults returns the fault set inherent to the scenario's problem
	// statement (fault.ParseSet syntax; "" = none). pfdegree throttles
	// *because* bandwidth collapses, so the fault is part of the
	// scenario, not an external perturbation.
	Faults() string
	// Columns returns the experiment's comparison columns; index 0 is
	// the learning bandit, the rest the static alternatives.
	Columns() []Column
	// Wire instantiates the scenario inside a core: installs whatever
	// hooks the decision needs and returns the tunable/probe/prefetcher
	// bundle the runner drives.
	Wire(c *cpu.Core, h *mem.Hierarchy, seed uint64) Instance
}

// registry lists the scenarios in display order.
var registry = []Scenario{
	prefetchScenario{},
	dramschedScenario{},
	cacheinsScenario{},
	pfdegreeScenario{},
	agentselectScenario{},
}

// Names returns the registered scenario names in display order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name()
	}
	return out
}

// All returns the registered scenarios in display order.
func All() []Scenario {
	out := make([]Scenario, len(registry))
	copy(out, registry)
	return out
}

// NewByName returns the named scenario. Unknown names return an error
// listing the valid ones (the CLIs print it and exit 2).
func NewByName(name string) (Scenario, error) {
	for _, s := range registry {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// banditColumn builds the learning column: a DUCB agent with the
// paper's prefetching hyperparameters (Table 6) over the scenario's arm
// count — the same one-size configuration every scenario reuses, which
// is the reusability claim under test.
func banditColumn(arms int) Column {
	return Column{Name: "bandit", New: func(seed uint64) core.Controller {
		cfg, err := core.AlgoConfig("ducb", arms, seed, false)
		if err != nil {
			panic(fmt.Sprintf("scenario: bandit column: %v", err))
		}
		return core.MustNew(cfg)
	}}
}

// staticColumns builds one FixedArm column per arm label.
func staticColumns(labels []string) []Column {
	out := make([]Column, len(labels))
	for i, l := range labels {
		arm := i
		out[i] = Column{Name: "static:" + l, New: func(uint64) core.Controller {
			return core.FixedArm(arm)
		}}
	}
	return out
}

// banditAndStatics is the standard column set: the bandit, then every
// static arm.
func banditAndStatics(labels []string) []Column {
	cols := make([]Column, 0, len(labels)+1)
	cols = append(cols, banditColumn(len(labels)))
	cols = append(cols, staticColumns(labels)...)
	return cols
}

// armLabel is the shared ArmLabel implementation over a label slice.
func armLabel(labels []string, arm int) string {
	if arm < 0 || arm >= len(labels) {
		panic(fmt.Sprintf("scenario: arm %d out of range [0,%d)", arm, len(labels)))
	}
	return labels[arm]
}
