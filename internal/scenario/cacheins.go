package scenario

import (
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
)

// cacheinsScenario: the bandit picks the LLC's insertion policy. Classic
// LRU (MRU insertion) wins when the working set fits; thrashing scans
// larger than the LLC want LIP/BIP so the scan passes through one way
// per set instead of flushing everything. The phase-structured mcf
// workloads alternate between the two regimes, so any static choice
// loses half the time. The reward probe is the LLC demand hit rate —
// the insertion policy's own objective, less noisy than end-to-end IPC.
type cacheinsScenario struct{}

var cacheinsLabels = mem.InsertPolicyNames()

// cacheinsPolicies maps arm index to the policy it installs, in
// ArmLabels order.
var cacheinsPolicies = []mem.InsertPolicy{mem.InsertMRU, mem.InsertLIP, mem.InsertBIP32, mem.InsertBIP8}

func (cacheinsScenario) Name() string { return "cacheins" }
func (cacheinsScenario) Desc() string {
	return "LLC insertion policy: LRU vs LIP/BIP insertion depth on the intrusive per-set LRU"
}
func (cacheinsScenario) ArmLabels() []string { return cacheinsLabels }
func (cacheinsScenario) Apps() []string {
	return []string{"canneal", "omnetpp06", "mcf06", "streamcluster"}
}
func (cacheinsScenario) Faults() string    { return "" }
func (cacheinsScenario) Columns() []Column { return banditAndStatics(cacheinsLabels) }

func (s cacheinsScenario) Wire(c *cpu.Core, h *mem.Hierarchy, seed uint64) Instance {
	tun := &cacheinsTunable{llc: h.LLC()}
	tun.Apply(0)
	return Instance{Tunable: tun, Probe: NewHitRateProbe(h)}
}

// cacheinsTunable switches the LLC's insertion policy.
type cacheinsTunable struct{ llc *mem.Cache }

func (t *cacheinsTunable) Name() string            { return "cacheins" }
func (t *cacheinsTunable) NumArms() int            { return len(cacheinsPolicies) }
func (t *cacheinsTunable) ArmLabel(arm int) string { return armLabel(cacheinsLabels, arm) }
func (t *cacheinsTunable) Apply(arm int) {
	t.llc.SetInsertPolicy(cacheinsPolicies[arm])
}
