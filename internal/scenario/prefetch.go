package scenario

import (
	"microbandit/internal/cpu"
	"microbandit/internal/mem"
	"microbandit/internal/prefetch"
)

// prefetchScenario wraps the paper's original use case — Table 7
// prefetcher-ensemble selection — in the generic scenario contract, so
// the classic problem and the new ones run through one experiment path
// and the lifted Tunable provably covers the original.
type prefetchScenario struct{}

// prefetchLabels renders the Table 7 arm configurations once.
var prefetchLabels = func() []string {
	arms := prefetch.Table7Arms()
	out := make([]string, len(arms))
	for i, a := range arms {
		out[i] = a.String()
	}
	return out
}()

func (prefetchScenario) Name() string { return "prefetch" }
func (prefetchScenario) Desc() string {
	return "the paper's Table 7 prefetcher-ensemble selection (classic use case)"
}
func (prefetchScenario) ArmLabels() []string { return prefetchLabels }
func (prefetchScenario) Apps() []string {
	return []string{"gcc06", "mcf06", "libquantum", "omnetpp06"}
}
func (prefetchScenario) Faults() string    { return "" }
func (prefetchScenario) Columns() []Column { return banditAndStatics(prefetchLabels) }

func (s prefetchScenario) Wire(c *cpu.Core, h *mem.Hierarchy, seed uint64) Instance {
	ens := prefetch.NewTable7Ensemble()
	return Instance{Tunable: &ensembleTunable{ens}, Pf: ens}
}

// ensembleTunable adapts prefetch.Ensemble to the scenario contract
// (the ensemble lacks only ArmLabel).
type ensembleTunable struct{ *prefetch.Ensemble }

func (t *ensembleTunable) Name() string            { return "prefetch" }
func (t *ensembleTunable) ArmLabel(arm int) string { return armLabel(prefetchLabels, arm) }
