package scenario

import (
	"strings"
	"testing"

	"microbandit/internal/cpu"
	"microbandit/internal/fault"
	"microbandit/internal/mem"
	"microbandit/internal/trace"
)

// wire builds a minimal simulated core and wires sc into it.
func wire(t *testing.T, sc Scenario) (Instance, *cpu.Core) {
	t.Helper()
	hier := mem.NewHierarchy(mem.DefaultConfig())
	app, err := trace.ByName(sc.Apps()[0])
	if err != nil {
		t.Fatalf("scenario %s: %v", sc.Name(), err)
	}
	c := cpu.New(cpu.DefaultConfig(), hier, app.New(1))
	return sc.Wire(c, hier, 1), c
}

func TestRegistry(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) || len(names) < 5 {
		t.Fatalf("registry: %d names, %d scenarios, want >= 5 of each", len(names), len(all))
	}
	seen := map[string]bool{}
	for i, sc := range all {
		if sc.Name() != names[i] {
			t.Errorf("Names()[%d] = %q, All()[%d].Name() = %q", i, names[i], i, sc.Name())
		}
		if seen[sc.Name()] {
			t.Errorf("duplicate scenario name %q", sc.Name())
		}
		seen[sc.Name()] = true
		got, err := NewByName(sc.Name())
		if err != nil || got.Name() != sc.Name() {
			t.Errorf("NewByName(%q) = %v, %v", sc.Name(), got, err)
		}
	}
	for _, want := range []string{"prefetch", "dramsched", "cacheins", "pfdegree", "agentselect"} {
		if !seen[want] {
			t.Errorf("registry missing scenario %q", want)
		}
	}
}

// TestNewByNameUnknown pins the CLI contract: an unknown name errors
// and the message lists every valid name (the CLIs print it verbatim
// and exit 2).
func TestNewByNameUnknown(t *testing.T) {
	_, err := NewByName("nope")
	if err == nil {
		t.Fatal("NewByName accepted an unknown scenario")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nope"`) {
		t.Errorf("error %q does not name the bad input", msg)
	}
	for _, n := range Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("error %q does not list valid scenario %q", msg, n)
		}
	}
}

// TestScenarioContracts checks every registered scenario honors the
// interface contract the harness builds on: arm labels match the wired
// tunable, column 0 is the learning bandit, every column constructs,
// every app resolves, every arm applies, and the fault set parses.
func TestScenarioContracts(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			labels := sc.ArmLabels()
			if len(labels) < 2 {
				t.Fatalf("ArmLabels: %d arms, want >= 2", len(labels))
			}
			if sc.Desc() == "" {
				t.Error("empty Desc")
			}
			if _, err := fault.ParseSet(sc.Faults()); err != nil {
				t.Errorf("Faults %q does not parse: %v", sc.Faults(), err)
			}
			for _, name := range sc.Apps() {
				if _, err := trace.ByName(name); err != nil {
					t.Errorf("app %q: %v", name, err)
				}
			}
			cols := sc.Columns()
			if len(cols) < 2 {
				t.Fatalf("Columns: %d, want bandit + statics", len(cols))
			}
			if cols[0].Name != "bandit" {
				t.Errorf("Columns[0] = %q, want the bandit", cols[0].Name)
			}
			for _, col := range cols {
				if ctrl := col.New(7); ctrl == nil {
					t.Errorf("column %q built a nil controller", col.Name)
				}
			}

			inst, _ := wire(t, sc)
			if inst.Tunable == nil {
				t.Fatal("Wire returned a nil Tunable")
			}
			// agentselect's decision space is the candidate agents, but its
			// tunable is the substrate those agents drive (the prefetch
			// ensemble) — the one scenario where the two arm spaces differ.
			wantArms := labels
			if sc.Name() == "agentselect" {
				wantArms = prefetchLabels
			}
			if got := inst.Tunable.NumArms(); got != len(wantArms) {
				t.Fatalf("tunable NumArms = %d, want %d", got, len(wantArms))
			}
			for arm, want := range wantArms {
				if got := inst.Tunable.ArmLabel(arm); got != want {
					t.Errorf("ArmLabel(%d) = %q, want %q", arm, got, want)
				}
				inst.Tunable.Apply(arm) // must not panic on any valid arm
			}
			inst.Tunable.Apply(0)
		})
	}
}

// TestTunableApplyZeroAlloc pins the satellite guarantee: the
// arm-switch path of every scenario tunable — the bandit's actuation
// hot path — is allocation-free in steady state.
func TestTunableApplyZeroAlloc(t *testing.T) {
	for _, name := range []string{"dramsched", "cacheins", "pfdegree"} {
		sc, err := NewByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			inst, _ := wire(t, sc)
			arms := inst.Tunable.NumArms()
			i := 0
			if n := testing.AllocsPerRun(200, func() {
				inst.Tunable.Apply(i % arms)
				i++
			}); n != 0 {
				t.Fatalf("Apply allocates %.1f times per run, want 0", n)
			}
		})
	}
}

// TestIPCProbe pins the diff-against-last-call contract on a live core.
func TestIPCProbe(t *testing.T) {
	sc, err := NewByName("dramsched")
	if err != nil {
		t.Fatal(err)
	}
	inst, c := wire(t, sc)
	if inst.Probe == nil {
		t.Fatal("dramsched wired no probe")
	}
	c.RunInsts(20_000)
	r1 := inst.Probe.StepReward()
	if r1 <= 0 || r1 > 8 {
		t.Fatalf("first StepReward = %v, want a sane IPC", r1)
	}
	if r := inst.Probe.StepReward(); r != 0 {
		t.Fatalf("StepReward with no progress = %v, want 0", r)
	}
	c.RunInsts(20_000)
	if r := inst.Probe.StepReward(); r <= 0 {
		t.Fatalf("StepReward after more work = %v, want > 0", r)
	}
}

// TestHitRateProbe pins the hit-rate probe: rewards stay in [0,1] and a
// quiet step repeats the previous rate instead of punishing the arm.
func TestHitRateProbe(t *testing.T) {
	sc, err := NewByName("cacheins")
	if err != nil {
		t.Fatal(err)
	}
	inst, c := wire(t, sc)
	if inst.Probe == nil {
		t.Fatal("cacheins wired no probe")
	}
	c.RunInsts(50_000)
	r1 := inst.Probe.StepReward()
	if r1 < 0 || r1 > 1 {
		t.Fatalf("StepReward = %v, want within [0,1]", r1)
	}
	if r := inst.Probe.StepReward(); r != r1 {
		t.Fatalf("quiet-step StepReward = %v, want previous rate %v", r, r1)
	}
}
